// Quickstart: build the paper's Figure 1 graph by hand, compute topical
// authorities and Tr recommendation scores, and print the "who should A
// follow for technology?" answer worked through in Examples 1-2.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/recommender.h"
#include "graph/labeled_graph.h"
#include "topics/similarity_matrix.h"
#include "topics/vocabulary.h"

using namespace mbr;

int main() {
  const topics::Vocabulary& vocab = topics::TwitterVocabulary();
  const topics::TopicId tech = vocab.Id("technology");
  const topics::TopicId bigdata = vocab.Id("bigdata");

  // ---- 1. Build a labeled follow graph (Figure 1 of the paper).
  //
  //      A --{bigdata,technology}--> B --{technology}--> D
  //      A --{bigdata}-------------> C --{bigdata}-----> E
  //
  // plus the followers that give B and C the authority profile of
  // Example 1: B followed on 3 topic labelings (2x technology, 1x bigdata),
  // C on 6 (2x technology, 2x bigdata, 1x social, 1x leisure).
  enum { A, B, C, D, E, F1, F2, F3, F4, F5, kUsers };
  graph::GraphBuilder builder(kUsers, vocab.size());
  auto ts = [&](std::initializer_list<const char*> names) {
    topics::TopicSet s;
    for (const char* n : names) s.Add(vocab.Id(n));
    return s;
  };
  builder.SetNodeLabels(B, ts({"technology", "bigdata"}));
  builder.SetNodeLabels(C, ts({"technology", "bigdata", "social", "leisure"}));
  builder.AddEdge(A, B, ts({"bigdata", "technology"}));
  builder.AddEdge(A, C, ts({"bigdata"}));
  builder.AddEdge(B, D, ts({"technology"}));
  builder.AddEdge(C, E, ts({"bigdata"}));
  builder.AddEdge(F1, B, ts({"technology"}));          // B: tech x2, big x1
  builder.AddEdge(F2, C, ts({"technology", "bigdata"}));
  builder.AddEdge(F3, C, ts({"technology"}));  // C: tech x2, big x2, +2
  builder.AddEdge(F4, C, ts({"social"}));
  builder.AddEdge(F5, C, ts({"leisure"}));
  builder.AddEdge(F1, D, ts({"technology"}));
  builder.AddEdge(F2, E, ts({"bigdata"}));
  graph::LabeledGraph graph = std::move(builder).Build();

  std::printf("graph: %u users, %llu follow edges\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  // ---- 2. The recommender bundles the authority index (Example 1) and
  // the iterative scorer (Definition 1 / Algorithm 1). β and α default to
  // the paper's 0.0005 / 0.85.
  core::TrRecommender recommender(graph, topics::TwitterSimilarity());

  std::printf("\nauthority (Example 1):\n");
  std::printf("  auth(B, technology) = %.4f   (paper: 2/3)\n",
              recommender.authority().Authority(B, tech));
  std::printf("  auth(C, technology) = %.4f   (paper: 1/3)\n",
              recommender.authority().Authority(C, tech));
  std::printf("  auth(B, bigdata)    = %.4f\n",
              recommender.authority().Authority(B, bigdata));
  std::printf("  auth(C, bigdata)    = %.4f   (> B's: C is more followed "
              "on bigdata)\n",
              recommender.authority().Authority(C, bigdata));

  // ---- 3. Recommend accounts for A on technology (Example 2: D must be
  // ranked above E).
  const char* names[] = {"A", "B", "C", "D", "E", "F1", "F2", "F3", "F4",
                         "F5"};
  std::printf("\ntop recommendations for A on 'technology':\n");
  for (const util::ScoredId& rec : recommender.Recommend(A, tech, 4)) {
    std::printf("  %-3s σ = %.3e\n", names[rec.id], rec.score);
  }

  // ---- 4. A multi-topic query Q = {technology, bigdata} with weights —
  // the weighted linear combination of §3.2.
  std::printf("\ntop recommendations for A on Q = {technology:0.7, "
              "bigdata:0.3}:\n");
  for (const util::ScoredId& rec : recommender.RecommendQuery(
           A, {{tech, 0.7}, {bigdata, 0.3}}, 4)) {
    std::printf("  %-3s σ = %.3e\n", names[rec.id], rec.score);
  }
  return 0;
}
