// Evolving-graph scenario: keep serving landmark-based recommendations
// while the follow graph churns, refreshing landmarks with a small budget
// (the §6 "updating strategies" extension, end to end).
//
//   ./build/examples/evolving_graph [num_nodes] [rounds]

#include <cstdio>
#include <cstdlib>

#include "core/authority.h"
#include "datagen/twitter_generator.h"
#include "dynamic/churn.h"
#include "dynamic/delta_graph.h"
#include "dynamic/incremental_authority.h"
#include "dynamic/refresh.h"
#include "landmark/approx.h"
#include "landmark/index.h"
#include "landmark/selection.h"
#include "topics/similarity_matrix.h"
#include "topics/vocabulary.h"

using namespace mbr;

int main(int argc, char** argv) {
  uint32_t num_nodes = argc > 1 ? std::atoi(argv[1]) : 8000;
  int rounds = argc > 2 ? std::atoi(argv[2]) : 4;

  datagen::TwitterConfig config;
  config.num_nodes = num_nodes;
  datagen::GeneratedDataset ds = GenerateTwitter(config);
  const auto& sim = topics::TwitterSimilarity();
  std::printf("day 0: %u users, %llu follow edges\n", ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()));

  // Offline pre-processing at day 0.
  core::AuthorityIndex auth0(ds.graph);
  landmark::SelectionConfig scfg;
  scfg.num_landmarks = 80;
  auto sel = SelectLandmarks(ds.graph, landmark::SelectionStrategy::kFollow,
                             scfg);
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = 100;
  landmark::LandmarkIndex index(ds.graph, auth0, sim, sel.landmarks, icfg);

  // The serving stack: a churn-aware refresher (8 landmark recomputes per
  // day, most-churned first) + incrementally maintained authority.
  dynamic::LandmarkRefresher refresher(std::move(index),
                                       dynamic::RefreshPolicy::kMostChurned,
                                       8);
  dynamic::DeltaGraph overlay(&ds.graph);
  dynamic::IncrementalAuthority inc_auth(ds.graph);
  util::Rng rng(2026);
  dynamic::ChurnConfig churn;  // 5% unfollows + 5% follows per "day"

  const topics::TopicId tech = topics::TwitterVocabulary().Id("technology");
  const graph::NodeId user = 42;

  size_t add_cursor = 0, rem_cursor = 0;
  for (int day = 1; day <= rounds; ++day) {
    auto stats = ApplyChurnRound(&overlay, &inc_auth, churn, &rng);
    graph::LabeledGraph today = overlay.Materialize();
    core::AuthorityIndex fresh_auth(today);

    // Hand the refresher the day's change log.
    std::vector<dynamic::EdgeChange> changes;
    for (size_t i = add_cursor; i < overlay.additions().size(); ++i) {
      changes.push_back(overlay.additions()[i]);
    }
    for (size_t i = rem_cursor; i < overlay.removals().size(); ++i) {
      changes.push_back(overlay.removals()[i]);
    }
    add_cursor = overlay.additions().size();
    rem_cursor = overlay.removals().size();
    auto refreshed =
        refresher.RefreshRound(today, fresh_auth, sim, changes);

    // Periodic max refresh, as §3.2 prescribes.
    if (inc_auth.updates_since_refresh() > today.num_edges() / 10) {
      inc_auth.RefreshMax();
    }

    landmark::ApproxRecommender approx(today, fresh_auth, sim,
                                       refresher.index(), {});
    auto recs = approx.TopN(user, tech, 3);
    std::printf(
        "day %d: -%llu/+%llu edges, refreshed %zu landmarks; top tech "
        "recommendations for user %u:",
        day, static_cast<unsigned long long>(stats.edges_removed),
        static_cast<unsigned long long>(stats.edges_added),
        refreshed.size(), user);
    for (const auto& r : recs) std::printf("  #%u", r.id);
    std::printf("\n");
  }
  std::printf("total landmark recomputations: %llu (vs %zu x %d for full "
              "rebuilds)\n",
              static_cast<unsigned long long>(refresher.total_refreshed()),
              sel.landmarks.size(), rounds);
  return 0;
}
