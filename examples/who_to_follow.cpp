// Who-to-follow at scale: generate a Twitter-like graph, pre-process
// landmarks, and serve approximate recommendations (Algorithm 2) —
// comparing them against the exact computation on the way, like the
// production scenario the paper's §4 targets.
//
//   ./build/examples/who_to_follow [num_nodes] [num_landmarks]

#include <cstdio>
#include <cstdlib>

#include "core/recommender.h"
#include "datagen/twitter_generator.h"
#include "landmark/approx.h"
#include "landmark/index.h"
#include "landmark/selection.h"
#include "topics/similarity_matrix.h"
#include "topics/vocabulary.h"
#include "util/timer.h"

using namespace mbr;

int main(int argc, char** argv) {
  uint32_t num_nodes = argc > 1 ? std::atoi(argv[1]) : 20000;
  uint32_t num_landmarks = argc > 2 ? std::atoi(argv[2]) : 100;

  // ---- Dataset.
  datagen::TwitterConfig config;
  config.num_nodes = num_nodes;
  datagen::GeneratedDataset ds = datagen::GenerateTwitter(config);
  std::printf("generated follow graph: %u users, %llu edges\n",
              ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()));

  // ---- Offline: pick landmarks (popularity-weighted, §5.4's Follow
  // strategy) and pre-compute their recommendation lists (Algorithm 1).
  core::AuthorityIndex authority(ds.graph);
  landmark::SelectionConfig scfg;
  scfg.num_landmarks = num_landmarks;
  landmark::SelectionResult sel = SelectLandmarks(
      ds.graph, landmark::SelectionStrategy::kFollow, scfg);

  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = 100;
  util::WallTimer build_timer;
  landmark::LandmarkIndex index(ds.graph, authority,
                                topics::TwitterSimilarity(), sel.landmarks,
                                icfg);
  std::printf(
      "landmark index: %zu landmarks, %.1f KB stored, built in %.2f s "
      "(%.1f ms/landmark)\n",
      index.landmarks().size(), index.StorageBytes() / 1024.0,
      index.build_seconds_total(),
      index.build_seconds_per_landmark() * 1e3);

  // ---- Online: serve queries.
  landmark::ApproxConfig acfg;  // depth-2 exploration, paper defaults
  landmark::ApproxRecommender approx(ds.graph, authority,
                                     topics::TwitterSimilarity(), index,
                                     acfg);
  core::TrRecommender exact(ds.graph, topics::TwitterSimilarity());

  const topics::Vocabulary& vocab = topics::TwitterVocabulary();
  const topics::TopicId topic = vocab.Id("technology");
  for (graph::NodeId user : {42u, 4242u % num_nodes, 9001u % num_nodes}) {
    landmark::QueryStats stats;
    util::WallTimer approx_timer;
    auto scores = approx.ApproximateScores(user, topic, &stats);
    auto recs = approx.TopN(user, topic, 5);
    double approx_ms = approx_timer.ElapsedMillis();

    util::WallTimer exact_timer;
    auto exact_recs = exact.Recommend(user, topic, 5);
    double exact_ms = exact_timer.ElapsedMillis();

    std::printf(
        "\nuser %u, topic technology: %u landmarks met, %zu accounts "
        "scored, query %.3f ms (exact %.2f ms, gain %.0fx)\n",
        user, stats.landmarks_encountered, scores.size(), approx_ms,
        exact_ms, approx_ms > 0 ? exact_ms / approx_ms : 0.0);
    std::printf("  %-28s %-28s\n", "approximate top-5", "exact top-5");
    for (size_t i = 0; i < 5; ++i) {
      char a[64] = "-", e[64] = "-";
      if (i < recs.size()) {
        std::snprintf(a, sizeof(a), "#%u (%.2e)", recs[i].id, recs[i].score);
      }
      if (i < exact_recs.size()) {
        std::snprintf(e, sizeof(e), "#%u (%.2e)", exact_recs[i].id,
                      exact_recs[i].score);
      }
      std::printf("  %-28s %-28s\n", a, e);
    }
  }
  return 0;
}
