// Distributed deployment scenario (§6 future work): shard the follow graph
// across simulated workers, home the landmark lists on their partitions,
// and compare full-fidelity distributed queries (with their network cost)
// against zero-network partition-local ones.
//
//   ./build/examples/distributed_cluster [num_nodes] [workers]

#include <cstdio>
#include <cstdlib>

#include "core/authority.h"
#include "datagen/twitter_generator.h"
#include "distributed/cluster.h"
#include "distributed/partition.h"
#include "landmark/index.h"
#include "landmark/selection.h"
#include "topics/similarity_matrix.h"
#include "topics/vocabulary.h"

using namespace mbr;

int main(int argc, char** argv) {
  uint32_t num_nodes = argc > 1 ? std::atoi(argv[1]) : 8000;
  uint32_t workers = argc > 2 ? std::atoi(argv[2]) : 4;

  datagen::TwitterConfig config;
  config.num_nodes = num_nodes;
  datagen::GeneratedDataset ds = GenerateTwitter(config);
  const auto& sim = topics::TwitterSimilarity();
  core::AuthorityIndex auth(ds.graph);
  std::printf("graph: %u users, %llu edges; %u workers\n",
              ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()), workers);

  // Landmarks + global index (each landmark's lists live on its worker).
  landmark::SelectionConfig scfg;
  scfg.num_landmarks = 80;
  auto sel = SelectLandmarks(ds.graph, landmark::SelectionStrategy::kFollow,
                             scfg);
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = 100;
  landmark::LandmarkIndex index(ds.graph, auth, sim, sel.landmarks, icfg);

  // Community-aware sharding.
  distributed::PartitionConfig pcfg;
  pcfg.num_partitions = workers;
  distributed::Partitioning partitioning = PartitionGraph(
      ds.graph, distributed::PartitionStrategy::kCommunity, pcfg);
  std::printf("partitioning (Community-LPA): edge cut %.1f%%, balance %.2f\n",
              partitioning.edge_cut * 100, partitioning.balance);

  distributed::SimulatedCluster cluster(ds.graph, auth, sim, index,
                                        partitioning);
  for (uint32_t part = 0; part < workers; ++part) {
    std::printf("  worker %u: %zu landmarks homed\n", part,
                cluster.landmarks_by_partition()[part].size());
  }

  const topics::TopicId tech = topics::TwitterVocabulary().Id("technology");
  for (graph::NodeId user : {11u, 2048u % num_nodes, 4777u % num_nodes}) {
    distributed::QueryCost cost;
    const auto& global = cluster.Query(user, tech, &cost);
    const auto& local = cluster.LocalQuery(user, tech);
    std::printf(
        "\nuser %u (home worker %u): full query scored %zu accounts, cost "
        "%llu adjacency messages + %llu landmark pulls (%llu entries), "
        "%u workers touched; local-only scored %zu accounts at zero "
        "network cost\n",
        user, cluster.PartitionOf(user), global.size(),
        static_cast<unsigned long long>(cost.edge_messages),
        static_cast<unsigned long long>(cost.landmark_fetches),
        static_cast<unsigned long long>(cost.landmark_entries),
        cost.partitions_touched, local.size());
  }
  return 0;
}
