// Landmark tuning explorer: how the number of landmarks, the stored-list
// size, and the exploration depth trade pre-processing cost and index size
// against approximation quality — the §4/§5.4 design space, interactively.
//
//   ./build/examples/landmark_tuning [num_nodes]

#include <cstdio>
#include <cstdlib>

#include "core/authority.h"
#include "core/scorer.h"
#include "datagen/twitter_generator.h"
#include "eval/approx_eval.h"
#include "landmark/selection.h"
#include "topics/similarity_matrix.h"
#include "util/table_printer.h"

using namespace mbr;

int main(int argc, char** argv) {
  uint32_t num_nodes = argc > 1 ? std::atoi(argv[1]) : 10000;

  datagen::TwitterConfig config;
  config.num_nodes = num_nodes;
  datagen::GeneratedDataset ds = datagen::GenerateTwitter(config);
  core::AuthorityIndex auth(ds.graph);
  std::printf("graph: %u users, %llu edges\n", ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()));

  // ---- Sweep 1: number of landmarks (Follow strategy, top-100 stored).
  {
    util::TablePrinter tp({"#landmarks", "build s/landmark", "index KB",
                           "#lnd met", "tau@20", "query ms"});
    for (uint32_t count : {10u, 50u, 200u}) {
      eval::ApproxEvalConfig cfg;
      cfg.selection.num_landmarks = count;
      cfg.stored_top_ns = {100};
      cfg.num_queries = 10;
      cfg.compare_top_n = 20;
      eval::StrategyEvaluation ev =
          EvaluateStrategy(ds.graph, auth, topics::TwitterSimilarity(),
                           landmark::SelectionStrategy::kFollow, cfg);
      tp.AddRow({util::TablePrinter::Int(count),
                 util::TablePrinter::Num(ev.build_seconds_per_landmark, 4),
                 util::TablePrinter::Num(ev.index_bytes_largest / 1024.0, 1),
                 util::TablePrinter::Num(ev.avg_landmarks_met, 1),
                 util::TablePrinter::Num(ev.kendall_tau[0], 3),
                 util::TablePrinter::Num(ev.avg_query_seconds * 1e3, 3)});
    }
    tp.Print("More landmarks: better coverage, linearly costlier offline");
  }

  // ---- Sweep 2: stored top-n (100 landmarks).
  {
    util::TablePrinter tp({"stored top-n", "index KB", "tau@20"});
    eval::ApproxEvalConfig cfg;
    cfg.selection.num_landmarks = 100;
    cfg.stored_top_ns = {10, 100, 1000};
    cfg.num_queries = 10;
    cfg.compare_top_n = 20;
    eval::StrategyEvaluation ev =
        EvaluateStrategy(ds.graph, auth, topics::TwitterSimilarity(),
                         landmark::SelectionStrategy::kFollow, cfg);
    // Index size scales linearly with the stored list length.
    for (size_t i = 0; i < cfg.stored_top_ns.size(); ++i) {
      double kb = ev.index_bytes_largest / 1024.0 *
                  (static_cast<double>(cfg.stored_top_ns[i]) /
                   cfg.stored_top_ns.back());
      tp.AddRow({util::TablePrinter::Int(cfg.stored_top_ns[i]),
                 util::TablePrinter::Num(kb, 1),
                 util::TablePrinter::Num(ev.kendall_tau[i], 3)});
    }
    tp.Print("Stored list size: memory vs approximation quality (Table 6)");
  }

  // ---- Sweep 3: exploration depth of the online query (Algorithm 2).
  {
    util::TablePrinter tp({"query depth", "#lnd met", "tau@20", "query ms"});
    for (uint32_t depth : {1u, 2u, 3u}) {
      eval::ApproxEvalConfig cfg;
      cfg.selection.num_landmarks = 100;
      cfg.stored_top_ns = {100};
      cfg.num_queries = 10;
      cfg.compare_top_n = 20;
      cfg.query_depth = depth;
      eval::StrategyEvaluation ev =
          EvaluateStrategy(ds.graph, auth, topics::TwitterSimilarity(),
                           landmark::SelectionStrategy::kFollow, cfg);
      tp.AddRow({util::TablePrinter::Int(depth),
                 util::TablePrinter::Num(ev.avg_landmarks_met, 1),
                 util::TablePrinter::Num(ev.kendall_tau[0], 3),
                 util::TablePrinter::Num(ev.avg_query_seconds * 1e3, 3)});
    }
    tp.Print("Query depth: deeper BFS finds more landmarks but costs time");
  }
  return 0;
}
