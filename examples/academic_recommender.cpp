// Academic "who should I read/cite" recommender on the DBLP-like citation
// graph: compares Tr, Katz and TwitterRank for a researcher, both with and
// without the obvious-celebrity cap the paper's Table 3 study applies.
//
//   ./build/examples/academic_recommender [num_authors]

#include <cstdio>
#include <cstdlib>

#include "baselines/katz.h"
#include "baselines/twitterrank.h"
#include "core/recommender.h"
#include "datagen/dblp_generator.h"
#include "topics/similarity_matrix.h"
#include "topics/vocabulary.h"

using namespace mbr;

namespace {

void PrintTop(const char* title, const std::vector<util::ScoredId>& recs,
              const datagen::GeneratedDataset& ds, topics::TopicId topic) {
  std::printf("  %s\n", title);
  for (const util::ScoredId& r : recs) {
    std::printf("    author #%-6u score %.3e  citations %-5u  publishes-%s\n",
                r.id, r.score, ds.graph.InDegree(r.id),
                ds.true_topics[r.id].Contains(topic) ? "topic: yes"
                                                     : "topic: no");
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t num_authors = argc > 1 ? std::atoi(argv[1]) : 10000;

  datagen::DblpConfig config;
  config.num_nodes = num_authors;
  datagen::GeneratedDataset ds = datagen::GenerateDblp(config);
  std::printf("citation graph: %u authors, %llu citations\n",
              ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()));

  const topics::Vocabulary& vocab = topics::DblpVocabulary();
  const topics::TopicId databases = vocab.Id("databases");

  core::TrRecommender tr(ds.graph, topics::DblpSimilarity());
  baselines::KatzRecommender katz(ds.graph, topics::DblpSimilarity(), {});
  baselines::TwitterRank twr(ds.graph);

  // Pick a databases researcher with a decent citation record as the
  // querying author.
  graph::NodeId researcher = graph::kInvalidNode;
  for (graph::NodeId u = 0; u < ds.graph.num_nodes(); ++u) {
    if (ds.true_topics[u].Contains(databases) && ds.graph.OutDegree(u) >= 10) {
      researcher = u;
      break;
    }
  }
  std::printf("query: author #%u (databases, cites %u authors)\n\n",
              researcher, ds.graph.OutDegree(researcher));

  std::printf("recommendations on 'databases':\n");
  PrintTop("Tr (topology + semantics + authority):",
           tr.Recommend(researcher, databases, 3), ds, databases);
  PrintTop("Katz (pure topology):",
           katz.TopN(researcher, databases, 3), ds, databases);
  PrintTop("TwitterRank (global topical popularity):",
           twr.TopN(researcher, databases, 3), ds, databases);

  // The Table 3 protocol avoids "very popular and obvious authors": cap
  // the citation count and re-rank.
  const uint32_t cap = 40;
  std::printf("\nwith the <=%u-citations cap of the paper's user study:\n",
              cap);
  auto capped = [&](core::Recommender& rec) {
    std::vector<util::ScoredId> out;
    for (const util::ScoredId& r :
         rec.TopN(researcher, databases, 60)) {
      if (ds.graph.InDegree(r.id) <= cap) out.push_back(r);
      if (out.size() == 3) break;
    }
    return out;
  };
  PrintTop("Tr:", capped(tr), ds, databases);
  PrintTop("Katz:", capped(katz), ds, databases);
  PrintTop("TwitterRank:", capped(twr), ds, databases);
  return 0;
}
