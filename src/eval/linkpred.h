#ifndef MBR_EVAL_LINKPRED_H_
#define MBR_EVAL_LINKPRED_H_

// The link-prediction evaluation protocol of §5.3.
//
// A test set T of edges is sampled such that the target has in-degree >=
// kin and the source out-degree >= kout (both 3 in the paper), then removed
// from the graph. For each test edge u -> v with topic t, the true endpoint
// v is ranked against 1000 uniformly sampled accounts by each algorithm; a
// hit at N means v lands in the top-N of the ranked 1001-candidate list.
// recall@N = #hits / |T| and precision@N = #hits / (N * |T|), following
// Cremonesi et al. [6]. Results are averaged over independent trials.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/recommender_iface.h"
#include "graph/labeled_graph.h"
#include "topics/topic.h"
#include "util/rng.h"

namespace mbr::eval {

// Which targets qualify for test-edge sampling (Figure 8 slices by target
// popularity).
enum class PopularityFilter {
  kAll,
  kTop10Percent,     // most followed accounts
  kBottom10Percent,  // least followed accounts (among eligible targets)
};

struct LinkPredConfig {
  uint32_t test_edges = 100;  // |T|
  uint32_t negatives = 1000;
  uint32_t min_in_degree = 3;   // kin
  uint32_t min_out_degree = 3;  // kout
  uint32_t trials = 3;          // paper: 100; benches default lower
  uint32_t max_top_n = 20;      // evaluate N = 1 .. max_top_n
  PopularityFilter popularity = PopularityFilter::kAll;
  // If != kInvalidTopic, only test edges labeled with this topic are
  // sampled (Figure 9 slices by topic popularity).
  topics::TopicId fixed_topic = topics::kInvalidTopic;
  // Worker threads scoring test edges within a trial. Each worker builds
  // its own recommender instances (Scorer scratch is not thread-safe), so
  // >1 pays the per-algorithm build cost per worker; results are identical
  // for any thread count.
  uint32_t num_threads = 1;
  uint64_t seed = 2016;
};

struct TestEdge {
  graph::NodeId src = 0;
  graph::NodeId dst = 0;
  topics::TopicId topic = 0;
};

// An algorithm entry: display name + factory building the recommender on a
// given (test-edges-removed) graph.
struct Algorithm {
  std::string name;
  std::function<std::unique_ptr<core::Recommender>(
      const graph::LabeledGraph&)> make;
};

// recall/precision curves of one algorithm; index i holds the value at
// N = i + 1. mrr / ndcg_at_10 are averaged over all test edges (single
// relevant item per list, so MAP == MRR).
struct AccuracyCurve {
  std::string name;
  std::vector<double> recall_at;
  std::vector<double> precision_at;
  double mrr = 0.0;
  double ndcg_at_10 = 0.0;
  // Sample standard deviation of recall@10 across trials (0 for a single
  // trial); gives the tables an honest error bar.
  double recall_at_10_stddev = 0.0;
};

// Samples a test set satisfying the constraints. Returns fewer edges than
// requested if the graph cannot supply them.
std::vector<TestEdge> SampleTestEdges(const graph::LabeledGraph& g,
                                      const LinkPredConfig& config,
                                      util::Rng* rng);

// Runs the full protocol: per trial, sample test edges, remove them,
// instantiate every algorithm on the pruned graph, rank candidates, and
// accumulate hits. Returns one averaged curve per algorithm.
std::vector<AccuracyCurve> RunLinkPrediction(
    const graph::LabeledGraph& g, const std::vector<Algorithm>& algorithms,
    const LinkPredConfig& config);

// Rank (1-based) of `target_score` within the candidate scores: 1 + the
// number of candidates strictly better + ties broken pessimistically by
// counting ties ranked before the target with probability 1/2 (deterministic:
// half of ties, rounded down, rank ahead). Exposed for tests.
uint32_t RankOfTarget(double target_score,
                      const std::vector<double>& negative_scores);

}  // namespace mbr::eval

#endif  // MBR_EVAL_LINKPRED_H_
