#ifndef MBR_EVAL_ALGORITHMS_H_
#define MBR_EVAL_ALGORITHMS_H_

// The standard algorithm roster of §5.3: Tr, Katz, TwitterRank, and the two
// Tr ablations (Tr−auth, Tr−sim) of Figure 4 — as link-prediction
// factories, so every trial re-instantiates them on the pruned graph.

#include <memory>
#include <vector>

#include "baselines/katz.h"
#include "baselines/twitterrank.h"
#include "core/params.h"
#include "core/recommender.h"
#include "eval/linkpred.h"
#include "topics/similarity_matrix.h"

namespace mbr::eval {

inline std::vector<Algorithm> StandardAlgorithms(
    const topics::SimilarityMatrix& sim,
    const core::ScoreParams& base_params, bool include_ablations) {
  std::vector<Algorithm> algos;
  algos.push_back({"Tr", [&sim, base_params](const graph::LabeledGraph& g) {
                     core::ScoreParams p = base_params;
                     p.variant = core::ScoreVariant::kFull;
                     return std::unique_ptr<core::Recommender>(
                         new core::TrRecommender(g, sim, p));
                   }});
  algos.push_back({"Katz", [&sim, base_params](const graph::LabeledGraph& g) {
                     return std::unique_ptr<core::Recommender>(
                         new baselines::KatzRecommender(g, sim, base_params));
                   }});
  algos.push_back({"TwitterRank", [](const graph::LabeledGraph& g) {
                     return std::unique_ptr<core::Recommender>(
                         new baselines::TwitterRank(g));
                   }});
  if (include_ablations) {
    algos.push_back(
        {"Tr-auth", [&sim, base_params](const graph::LabeledGraph& g) {
           core::ScoreParams p = base_params;
           p.variant = core::ScoreVariant::kNoAuth;
           return std::unique_ptr<core::Recommender>(
               new core::TrRecommender(g, sim, p));
         }});
    algos.push_back(
        {"Tr-sim", [&sim, base_params](const graph::LabeledGraph& g) {
           core::ScoreParams p = base_params;
           p.variant = core::ScoreVariant::kNoSim;
           return std::unique_ptr<core::Recommender>(
               new core::TrRecommender(g, sim, p));
         }});
  }
  return algos;
}

}  // namespace mbr::eval

#endif  // MBR_EVAL_ALGORITHMS_H_
