#ifndef MBR_EVAL_APPROX_EVAL_H_
#define MBR_EVAL_APPROX_EVAL_H_

// Evaluation of the landmark-based approximation (§5.4, Tables 5 and 6):
// per selection strategy, landmark selection cost, pre-processing cost,
// query-time cost + speed-up over the exact computation, the average number
// of landmarks met by the depth-2 exploration, and the Kendall tau distance
// between the approximate and exact top-k lists for several stored-list
// sizes.

#include <vector>

#include "core/authority.h"
#include "core/params.h"
#include "graph/labeled_graph.h"
#include "landmark/approx.h"
#include "landmark/index.h"
#include "landmark/selection.h"
#include "topics/similarity_matrix.h"

namespace mbr::eval {

struct ApproxEvalConfig {
  landmark::SelectionConfig selection;
  // Stored-list sizes to evaluate (Table 6: L10 / L100 / L1000).
  std::vector<uint32_t> stored_top_ns = {10, 100, 1000};
  // Kendall tau compares the approximate vs exact top-`compare_top_n`
  // recommendations at the query node (paper: top-100).
  uint32_t compare_top_n = 100;
  uint32_t query_depth = 2;
  uint32_t num_queries = 20;
  core::ScoreParams params;
  uint64_t seed = 5;
};

struct StrategyEvaluation {
  landmark::SelectionStrategy strategy;
  double selection_millis_per_landmark = 0.0;  // Table 5 col 1
  double build_seconds_per_landmark = 0.0;     // Table 5 col 2
  double avg_landmarks_met = 0.0;              // Table 6 "#lnd"
  double avg_query_seconds = 0.0;              // Table 6 "time in s"
  double avg_exact_seconds = 0.0;
  double gain = 0.0;                           // exact / approx time
  // kendall_tau[i] corresponds to stored_top_ns[i].
  std::vector<double> kendall_tau;
  size_t index_bytes_largest = 0;  // storage at the largest stored top-n
};

// Runs the §5.4 experiment for one strategy on one dataset graph.
StrategyEvaluation EvaluateStrategy(const graph::LabeledGraph& g,
                                    const core::AuthorityIndex& authority,
                                    const topics::SimilarityMatrix& sim,
                                    landmark::SelectionStrategy strategy,
                                    const ApproxEvalConfig& config);

}  // namespace mbr::eval

#endif  // MBR_EVAL_APPROX_EVAL_H_
