#include "eval/user_study.h"

#include <algorithm>
#include <cmath>

#include "graph/bfs.h"
#include "util/logging.h"
#include "util/rng.h"

namespace mbr::eval {

namespace {

using graph::NodeId;
using topics::TopicId;

double Clamp01(double x) { return std::max(0.0, std::min(1.0, x)); }

}  // namespace

double ExpectedMark(double quality, double ambiguity) {
  // Ambiguity pulls the perceived relevance toward the 0.5 midpoint (the
  // paper: doubtful raters "mark with the average 2 or 3 value").
  double perceived = (1.0 - ambiguity) * quality + ambiguity * 0.5;
  return 1.0 + 4.0 * Clamp01(perceived);
}

std::vector<StudyOutcome> RunUserStudy(
    const datagen::GeneratedDataset& dataset,
    const std::vector<core::Recommender*>& algorithms, TopicId topic,
    const UserStudyConfig& config) {
  MBR_CHECK(!algorithms.empty());
  const graph::LabeledGraph& g = dataset.graph;
  util::Rng rng(config.seed);

  double ambiguity = config.default_ambiguity;
  if (topic < config.topic_ambiguity.size()) {
    ambiguity = config.topic_ambiguity[topic];
  }

  std::vector<StudyOutcome> outcomes(algorithms.size());
  for (size_t a = 0; a < algorithms.size(); ++a) {
    outcomes[a].name = algorithms[a]->name();
  }

  // Query users are drawn among accounts that truly engage with the topic
  // (the paper's raters evaluated recommendations for their own domain:
  // researchers rated authors "based on his DBLP entry").
  std::vector<NodeId> topical_users;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) > 0 && dataset.true_topics[u].Contains(topic)) {
      topical_users.push_back(u);
    }
  }

  uint32_t queries_done = 0;
  for (uint32_t q = 0; q < config.num_queries; ++q) {
    NodeId u;
    if (!topical_users.empty()) {
      u = topical_users[rng.UniformU64(topical_users.size())];
    } else {
      u = static_cast<NodeId>(rng.UniformU64(g.num_nodes()));
      if (g.OutDegree(u) == 0) continue;
    }

    // Every algorithm produces its top-k (over-fetch when a popularity cap
    // applies, then filter).
    std::vector<std::vector<NodeId>> lists(algorithms.size());
    bool all_nonempty = true;
    for (size_t a = 0; a < algorithms.size(); ++a) {
      size_t fetch = config.max_target_in_degree > 0 ? config.top_k * 20
                                                     : config.top_k;
      for (const util::ScoredId& r :
           algorithms[a]->TopN(u, topic, fetch)) {
        if (config.max_target_in_degree > 0 &&
            g.InDegree(r.id) > config.max_target_in_degree) {
          continue;
        }
        lists[a].push_back(r.id);
        if (lists[a].size() == config.top_k) break;
      }
      if (lists[a].empty()) all_nonempty = false;
    }
    if (!all_nonempty) continue;

    // Accounts within the query user's 2-hop out-neighbourhood are judged
    // as plausibly relevant; distant accounts are discounted (see config).
    std::vector<bool> near(g.num_nodes(), false);
    if (config.distant_relevance_penalty < 1.0) {
      for (const graph::VisitedNode& vn : graph::KVicinity(g, u, 2)) {
        near[vn.node] = true;
      }
    }

    // The rater pool marks every account of every list ("the
    // recommendation list is shuffled" — raters don't know the algorithm).
    std::vector<double> total_marks(algorithms.size(), 0.0);
    for (size_t a = 0; a < algorithms.size(); ++a) {
      for (NodeId account : lists[a]) {
        double quality = dataset.QualityOf(account, topic);
        if (config.distant_relevance_penalty < 1.0 && !near[account]) {
          quality *= config.distant_relevance_penalty;
        }
        double mark_sum = 0.0;
        for (uint32_t r = 0; r < config.num_raters; ++r) {
          double noisy = ExpectedMark(
              Clamp01(quality + rng.Normal(0.0, config.rater_noise)),
              ambiguity);
          double mark = std::round(std::max(1.0, std::min(5.0, noisy)));
          mark_sum += mark;
        }
        double avg = mark_sum / config.num_raters;
        outcomes[a].avg_mark += avg;
        if (avg >= 3.5) ++outcomes[a].marks_4_or_5;
        ++outcomes[a].accounts_rated;
        total_marks[a] += avg;
      }
      // Normalise by list length so shorter (capped) lists aren't punished.
      total_marks[a] /= static_cast<double>(lists[a].size());
    }

    // "Best answer": the algorithm whose top-k got the highest mean mark.
    size_t best = 0;
    for (size_t a = 1; a < algorithms.size(); ++a) {
      if (total_marks[a] > total_marks[best]) best = a;
    }
    outcomes[best].best_answer_frac += 1.0;
    ++queries_done;
  }

  for (auto& o : outcomes) {
    if (o.accounts_rated > 0) {
      o.avg_mark /= static_cast<double>(o.accounts_rated);
    }
    if (queries_done > 0) {
      o.best_answer_frac /= static_cast<double>(queries_done);
    }
  }
  return outcomes;
}

}  // namespace mbr::eval
