#include "eval/approx_eval.h"

#include <algorithm>

#include "core/recommender.h"
#include "core/scorer.h"
#include "util/kendall.h"
#include "util/rng.h"
#include "util/timer.h"
#include "util/top_k.h"

namespace mbr::eval {

namespace {

using graph::NodeId;
using topics::TopicId;

// Exact converged top-k at the query node for one topic.
std::vector<uint32_t> ExactTopK(const core::Scorer& scorer, NodeId u,
                                TopicId t, uint32_t k) {
  core::ExplorationResult res =
      scorer.Explore(u, topics::TopicSet::Single(t));
  util::TopK topk(k);
  for (NodeId v : res.reached()) {
    if (v == u) continue;
    double s = res.Sigma(v, t);
    if (s > 0.0) topk.Offer(v, s);
  }
  std::vector<uint32_t> ids;
  for (const util::ScoredId& r : topk.Take()) ids.push_back(r.id);
  return ids;
}

}  // namespace

StrategyEvaluation EvaluateStrategy(const graph::LabeledGraph& g,
                                    const core::AuthorityIndex& authority,
                                    const topics::SimilarityMatrix& sim,
                                    landmark::SelectionStrategy strategy,
                                    const ApproxEvalConfig& config) {
  MBR_CHECK(!config.stored_top_ns.empty());
  StrategyEvaluation out;
  out.strategy = strategy;

  // ---- Selection (Table 5, "select. (ms)").
  landmark::SelectionResult sel =
      SelectLandmarks(g, strategy, config.selection);
  out.selection_millis_per_landmark = sel.millis_per_landmark;

  // ---- Pre-processing: one Algorithm 1 pass at the largest stored size;
  // the smaller sizes are truncations of it (the stored list length does
  // not change Algorithm 1's exploration cost, §5.4 Table 5).
  uint32_t largest =
      *std::max_element(config.stored_top_ns.begin(),
                        config.stored_top_ns.end());
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = largest;
  icfg.params = config.params;
  landmark::LandmarkIndex full_index(g, authority, sim, sel.landmarks, icfg);
  out.build_seconds_per_landmark = full_index.build_seconds_per_landmark();
  out.index_bytes_largest = full_index.StorageBytes();
  std::vector<landmark::LandmarkIndex> indices;
  indices.reserve(config.stored_top_ns.size());
  for (uint32_t top_n : config.stored_top_ns) {
    indices.push_back(full_index.Truncated(top_n));
  }

  // ---- Queries.
  core::ScoreParams exact_params = config.params;
  core::Scorer exact_scorer(g, authority, sim, exact_params);

  util::Rng rng(config.seed);
  out.kendall_tau.assign(config.stored_top_ns.size(), 0.0);
  uint32_t queries_done = 0;
  for (uint32_t q = 0; q < config.num_queries; ++q) {
    NodeId u = static_cast<NodeId>(rng.UniformU64(g.num_nodes()));
    if (g.OutDegree(u) == 0) continue;
    TopicId t = static_cast<TopicId>(rng.UniformU64(g.num_topics()));

    // Exact reference (converged) + timing.
    util::WallTimer exact_timer;
    std::vector<uint32_t> exact_top =
        ExactTopK(exact_scorer, u, t, config.compare_top_n);
    out.avg_exact_seconds += exact_timer.ElapsedSeconds();

    // Approximate per stored size; stats measured once per index.
    for (size_t i = 0; i < indices.size(); ++i) {
      landmark::ApproxConfig acfg;
      acfg.query_depth = config.query_depth;
      acfg.params = config.params;
      landmark::ApproxRecommender approx(g, authority, sim, indices[i],
                                         acfg);
      landmark::QueryStats stats;
      auto scores = approx.ApproximateScores(u, t, &stats);
      util::TopK topk(config.compare_top_n);
      for (const auto& [v, s] : scores) {
        if (v != u && s > 0.0) topk.Offer(v, s);
      }
      std::vector<uint32_t> approx_top;
      for (const util::ScoredId& r : topk.Take()) approx_top.push_back(r.id);
      out.kendall_tau[i] += util::KendallTauTopK(approx_top, exact_top);
      if (i == 0) {
        out.avg_landmarks_met += stats.landmarks_encountered;
        out.avg_query_seconds += stats.seconds;
      }
    }
    ++queries_done;
  }

  if (queries_done > 0) {
    out.avg_landmarks_met /= queries_done;
    out.avg_query_seconds /= queries_done;
    out.avg_exact_seconds /= queries_done;
    for (double& k : out.kendall_tau) k /= queries_done;
  }
  out.gain = out.avg_query_seconds > 0.0
                 ? out.avg_exact_seconds / out.avg_query_seconds
                 : 0.0;
  return out;
}

}  // namespace mbr::eval
