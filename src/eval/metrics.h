#ifndef MBR_EVAL_METRICS_H_
#define MBR_EVAL_METRICS_H_

// Ranking metrics beyond the paper's recall/precision: reciprocal rank and
// nDCG for the single-relevant-item protocol (the removed edge's endpoint
// is the one relevant item per ranked list, so MAP == MRR).

#include <cmath>
#include <cstdint>

namespace mbr::eval {

// 1 / rank (rank is 1-based).
inline double ReciprocalRank(uint32_t rank) {
  return rank == 0 ? 0.0 : 1.0 / static_cast<double>(rank);
}

// nDCG@k with a single relevant item: 1/log2(1+rank) if rank <= k else 0
// (the ideal DCG is 1/log2(2) = 1).
inline double NdcgAtK(uint32_t rank, uint32_t k) {
  if (rank == 0 || rank > k) return 0.0;
  return 1.0 / std::log2(1.0 + static_cast<double>(rank));
}

// Accumulates per-query ranks into averaged metrics.
class RankAccumulator {
 public:
  void Add(uint32_t rank) {
    mrr_sum_ += ReciprocalRank(rank);
    ndcg10_sum_ += NdcgAtK(rank, 10);
    ++count_;
  }

  uint64_t count() const { return count_; }
  double MeanReciprocalRank() const {
    return count_ == 0 ? 0.0 : mrr_sum_ / static_cast<double>(count_);
  }
  double MeanNdcgAt10() const {
    return count_ == 0 ? 0.0 : ndcg10_sum_ / static_cast<double>(count_);
  }

 private:
  double mrr_sum_ = 0.0;
  double ndcg10_sum_ = 0.0;
  uint64_t count_ = 0;
};

}  // namespace mbr::eval

#endif  // MBR_EVAL_METRICS_H_
