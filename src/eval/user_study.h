#ifndef MBR_EVAL_USER_STUDY_H_
#define MBR_EVAL_USER_STUDY_H_

// Simulated user-validation study (substitute for the paper's 54 IT raters
// on Twitter / 47 researchers on DBLP; see DESIGN.md for the substitution
// rationale).
//
// Each simulated rater marks a recommended account for a topic on the
// paper's 1..5 scale. The mark is driven by the account's ground-truth
// content quality on the topic (known to the generator, invisible to the
// recommenders), blurred by (a) rater noise and (b) per-topic ambiguity:
// the paper observed that raters score ambiguous topics (social) around the
// 2-3 midpoint because the tweets are hard to attribute, while clear topics
// (technology, leisure) produce decisive marks.

#include <string>
#include <vector>

#include "core/recommender_iface.h"
#include "datagen/dataset.h"
#include "topics/topic.h"

namespace mbr::eval {

struct UserStudyConfig {
  uint32_t num_raters = 54;
  uint32_t num_queries = 30;   // query users whose recommendations are rated
  uint32_t top_k = 3;          // paper: top-3 per algorithm
  double rater_noise = 0.18;   // stddev of the per-rater perception noise
  // Per-topic ambiguity in [0, 1]: how strongly a topic's marks regress to
  // the 2-3 midpoint. Index = TopicId; missing entries default to
  // `default_ambiguity`.
  std::vector<double> topic_ambiguity;
  double default_ambiguity = 0.25;
  // Only recommend accounts with at most this in-degree (Table 3's DBLP
  // study caps authors at 100 citations "so we avoid to propose very
  // popular and obvious authors"); 0 disables the cap.
  uint32_t max_target_in_degree = 0;
  // Relevance multiplier for recommended accounts outside the query user's
  // 2-hop out-neighbourhood. The DBLP raters judged whether "the proposed
  // author could have been cited regarding the past publications done by
  // the researcher" — a globally popular but unconnected author is not
  // (the paper blames TwitterRank's poor Table 3 marks on exactly this);
  // Twitter raters judge content quality mostly regardless of proximity.
  double distant_relevance_penalty = 1.0;
  uint64_t seed = 54;
};

// Aggregated outcome per algorithm (Figure 10 bars / Table 3 rows).
struct StudyOutcome {
  std::string name;
  double avg_mark = 0.0;        // over all (query, rank, rater) marks
  uint64_t marks_4_or_5 = 0;    // Table 3 row 2 (per-query-account averages)
  double best_answer_frac = 0.0;  // fraction of queries this algo won
  uint64_t accounts_rated = 0;
};

// Rates each algorithm's top-k for `num_queries` random query users on the
// given topic. All algorithms are rated on the same queries by the same
// simulated rater pool.
std::vector<StudyOutcome> RunUserStudy(
    const datagen::GeneratedDataset& dataset,
    const std::vector<core::Recommender*>& algorithms, topics::TopicId topic,
    const UserStudyConfig& config);

// The per-account mark model, exposed for tests: the mean mark a rater pool
// converges to for an account of quality q on a topic with ambiguity a.
double ExpectedMark(double quality, double ambiguity);

}  // namespace mbr::eval

#endif  // MBR_EVAL_USER_STUDY_H_
