#include "eval/linkpred.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <thread>

#include "eval/metrics.h"
#include "util/logging.h"

namespace mbr::eval {

namespace {

using graph::NodeId;
using topics::TopicId;
using topics::TopicSet;

// Eligible target nodes under the popularity filter (in-degree >= kin, and
// within the requested decile among eligible targets).
std::vector<bool> EligibleTargets(const graph::LabeledGraph& g,
                                  const LinkPredConfig& config) {
  std::vector<NodeId> eligible;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InDegree(v) >= config.min_in_degree) eligible.push_back(v);
  }
  std::vector<bool> ok(g.num_nodes(), false);
  if (config.popularity == PopularityFilter::kAll) {
    for (NodeId v : eligible) ok[v] = true;
    return ok;
  }
  std::sort(eligible.begin(), eligible.end(), [&](NodeId a, NodeId b) {
    if (g.InDegree(a) != g.InDegree(b)) {
      return g.InDegree(a) > g.InDegree(b);
    }
    return a < b;
  });
  size_t decile = std::max<size_t>(1, eligible.size() / 10);
  if (config.popularity == PopularityFilter::kTop10Percent) {
    for (size_t i = 0; i < decile; ++i) ok[eligible[i]] = true;
  } else {
    for (size_t i = eligible.size() - decile; i < eligible.size(); ++i) {
      ok[eligible[i]] = true;
    }
  }
  return ok;
}

}  // namespace

std::vector<TestEdge> SampleTestEdges(const graph::LabeledGraph& g,
                                      const LinkPredConfig& config,
                                      util::Rng* rng) {
  std::vector<bool> target_ok = EligibleTargets(g, config);

  // Collect all admissible (src, dst) pairs lazily via rejection sampling
  // over random sources; fall back to a full scan if rejection stalls.
  std::vector<TestEdge> picked;
  std::vector<std::pair<NodeId, size_t>> pool;  // (src, out index)
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) < config.min_out_degree) continue;
    auto nbrs = g.OutNeighbors(u);
    auto labs = g.OutEdgeLabels(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (!target_ok[nbrs[i]]) continue;
      if (labs[i].empty()) continue;  // need a ground-truth topic
      if (config.fixed_topic != topics::kInvalidTopic &&
          !labs[i].Contains(config.fixed_topic)) {
        continue;
      }
      pool.push_back({u, i});
    }
  }
  if (pool.empty()) return picked;

  uint32_t want = std::min<uint32_t>(config.test_edges,
                                     static_cast<uint32_t>(pool.size()));
  auto chosen = rng->SampleWithoutReplacement(
      static_cast<uint32_t>(pool.size()), want);
  picked.reserve(want);
  for (uint32_t idx : chosen) {
    auto [u, i] = pool[idx];
    NodeId v = g.OutNeighbors(u)[i];
    TopicSet labels = g.OutEdgeLabels(u)[i];
    TopicId topic = config.fixed_topic;
    if (topic == topics::kInvalidTopic) {
      // Pick one of the edge's topics uniformly: the paper scores "on the
      // topics of e" and forms one ranked list per topic; sampling one
      // keeps the per-edge cost constant.
      int pick = static_cast<int>(rng->UniformU64(labels.size()));
      for (TopicId t : labels) {
        if (pick-- == 0) {
          topic = t;
          break;
        }
      }
    }
    picked.push_back({u, v, topic});
  }
  return picked;
}

uint32_t RankOfTarget(double target_score,
                      const std::vector<double>& negative_scores) {
  uint32_t better = 0, ties = 0;
  for (double s : negative_scores) {
    if (s > target_score) {
      ++better;
    } else if (s == target_score) {
      ++ties;
    }
  }
  // Deterministic tie handling: half of the tied negatives (rounded down)
  // rank ahead of the target.
  return 1 + better + ties / 2;
}

std::vector<AccuracyCurve> RunLinkPrediction(
    const graph::LabeledGraph& g, const std::vector<Algorithm>& algorithms,
    const LinkPredConfig& config) {
  MBR_CHECK(!algorithms.empty());
  MBR_CHECK(config.max_top_n > 0);
  util::Rng rng(config.seed);

  std::vector<AccuracyCurve> curves(algorithms.size());
  std::vector<RankAccumulator> ranks(algorithms.size());
  for (size_t a = 0; a < algorithms.size(); ++a) {
    curves[a].name = algorithms[a].name;
    curves[a].recall_at.assign(config.max_top_n, 0.0);
    curves[a].precision_at.assign(config.max_top_n, 0.0);
  }

  uint64_t total_tests = 0;
  // Per-trial recall@10 samples, per algorithm.
  std::vector<std::vector<double>> trial_recall10(algorithms.size());
  for (uint32_t trial = 0; trial < config.trials; ++trial) {
    util::Rng trial_rng = rng.Fork(trial + 1);
    std::vector<TestEdge> tests = SampleTestEdges(g, config, &trial_rng);
    if (tests.empty()) continue;

    // "All edges from T are then removed from the graph."
    std::vector<std::pair<NodeId, NodeId>> removed;
    removed.reserve(tests.size());
    for (const TestEdge& e : tests) removed.push_back({e.src, e.dst});
    graph::LabeledGraph pruned = g.WithoutEdges(removed);

    // Candidate lists are drawn up front (deterministic in the trial seed,
    // independent of the worker count).
    std::vector<std::vector<NodeId>> candidate_lists(tests.size());
    for (size_t i = 0; i < tests.size(); ++i) {
      const TestEdge& e = tests[i];
      std::vector<NodeId>& candidates = candidate_lists[i];
      candidates.reserve(config.negatives + 1);
      while (candidates.size() < config.negatives) {
        NodeId c = static_cast<NodeId>(trial_rng.UniformU64(g.num_nodes()));
        if (c != e.src && c != e.dst) candidates.push_back(c);
      }
      candidates.push_back(e.dst);
    }

    // rank_matrix[i * A + a]: rank of test edge i under algorithm a.
    const size_t num_algos = algorithms.size();
    std::vector<uint32_t> rank_matrix(tests.size() * num_algos, 0);
    const uint32_t threads =
        std::max<uint32_t>(1, std::min<uint32_t>(config.num_threads,
                                                 static_cast<uint32_t>(
                                                     tests.size())));
    auto worker = [&](uint32_t tid) {
      // Each worker owns its recommender instances.
      std::vector<std::unique_ptr<core::Recommender>> recs;
      recs.reserve(num_algos);
      for (const Algorithm& algo : algorithms) {
        recs.push_back(algo.make(pruned));
      }
      for (size_t i = tid; i < tests.size(); i += threads) {
        const TestEdge& e = tests[i];
        for (size_t a = 0; a < num_algos; ++a) {
          std::vector<double> scores =
              recs[a]->CandidateScores(e.src, e.topic, candidate_lists[i]);
          double target_score = scores.back();
          scores.pop_back();
          rank_matrix[i * num_algos + a] =
              RankOfTarget(target_score, scores);
        }
      }
    };
    if (threads == 1) {
      worker(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (uint32_t tid = 0; tid < threads; ++tid) {
        pool.emplace_back(worker, tid);
      }
      for (std::thread& th : pool) th.join();
    }

    // Aggregate in deterministic edge order.
    std::vector<uint64_t> trial_hits10(num_algos, 0);
    for (size_t i = 0; i < tests.size(); ++i) {
      for (size_t a = 0; a < num_algos; ++a) {
        uint32_t rank = rank_matrix[i * num_algos + a];
        ranks[a].Add(rank);
        if (rank <= 10 && config.max_top_n >= 10) ++trial_hits10[a];
        if (rank <= config.max_top_n) {
          for (uint32_t n = rank; n <= config.max_top_n; ++n) {
            curves[a].recall_at[n - 1] += 1.0;
          }
        }
      }
      ++total_tests;
    }
    for (size_t a = 0; a < algorithms.size(); ++a) {
      trial_recall10[a].push_back(static_cast<double>(trial_hits10[a]) /
                                  static_cast<double>(tests.size()));
    }
  }

  if (total_tests > 0) {
    for (size_t a = 0; a < curves.size(); ++a) {
      for (uint32_t n = 1; n <= config.max_top_n; ++n) {
        curves[a].recall_at[n - 1] /= static_cast<double>(total_tests);
        curves[a].precision_at[n - 1] =
            curves[a].recall_at[n - 1] / static_cast<double>(n);
      }
      curves[a].mrr = ranks[a].MeanReciprocalRank();
      curves[a].ndcg_at_10 = ranks[a].MeanNdcgAt10();
      const auto& samples = trial_recall10[a];
      if (samples.size() > 1) {
        double mean = 0;
        for (double r : samples) mean += r;
        mean /= static_cast<double>(samples.size());
        double var = 0;
        for (double r : samples) var += (r - mean) * (r - mean);
        curves[a].recall_at_10_stddev =
            std::sqrt(var / static_cast<double>(samples.size() - 1));
      }
    }
  }
  return curves;
}

}  // namespace mbr::eval
