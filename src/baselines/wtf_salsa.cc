#include "baselines/wtf_salsa.h"

#include <algorithm>

#include "util/logging.h"
#include "util/top_k.h"

namespace mbr::baselines {

namespace {
using graph::NodeId;
}  // namespace

WtfSalsa::WtfSalsa(const graph::LabeledGraph& g, const WtfConfig& config)
    : g_(g), config_(config) {
  MBR_CHECK(config.circle_size > 0);
  MBR_CHECK(config.ppr_teleport > 0.0 && config.ppr_teleport < 1.0);
}

std::vector<util::ScoredId> WtfSalsa::CircleOfTrust(NodeId u) const {
  // Sparse personalised PageRank: the walk mass stays in u's neighbourhood,
  // so we iterate over hash maps instead of dense vectors.
  std::unordered_map<NodeId, double> rank;
  rank[u] = 1.0;
  const double gamma = config_.ppr_teleport;
  for (uint32_t it = 0; it < config_.ppr_iterations; ++it) {
    std::unordered_map<NodeId, double> next;
    next.reserve(rank.size() * 4);
    double restart = 0.0;  // teleports + dangling mass return to the ego
    for (const auto& [node, mass] : rank) {
      auto nbrs = g_.OutNeighbors(node);
      if (nbrs.empty()) {
        restart += mass;
        continue;
      }
      restart += gamma * mass;
      double share = (1.0 - gamma) * mass / static_cast<double>(nbrs.size());
      for (NodeId v : nbrs) next[v] += share;
    }
    next[u] += restart;
    rank = std::move(next);
  }

  util::TopK topk(config_.circle_size);
  for (const auto& [node, mass] : rank) {
    if (node != u && mass > 0.0) topk.Offer(node, mass);
  }
  return topk.Take();
}

std::unordered_map<NodeId, double> WtfSalsa::AuthorityScores(NodeId u) const {
  std::vector<util::ScoredId> circle = CircleOfTrust(u);
  std::unordered_map<NodeId, double> authority;
  if (circle.empty()) return authority;

  // Bipartite graph: hubs (circle) -> authorities (their followees).
  std::vector<NodeId> hubs;
  hubs.reserve(circle.size());
  for (const util::ScoredId& c : circle) {
    if (g_.OutDegree(c.id) > 0) hubs.push_back(c.id);
  }
  if (hubs.empty()) return authority;

  std::unordered_map<NodeId, uint32_t> authority_in_degree;
  for (NodeId h : hubs) {
    for (NodeId a : g_.OutNeighbors(h)) ++authority_in_degree[a];
  }

  // SALSA: authority score a(v) and hub score h(x), alternately pushed
  // across the bipartite edges with degree normalisation.
  std::unordered_map<NodeId, double> hub;
  double init = 1.0 / static_cast<double>(hubs.size());
  for (NodeId h : hubs) hub[h] = init;

  for (uint32_t it = 0; it < config_.salsa_iterations; ++it) {
    // Hub -> authority: each hub splits its score across its followees.
    for (auto& [a, score] : authority) score = 0.0;
    for (NodeId h : hubs) {
      double share = hub[h] / static_cast<double>(g_.OutDegree(h));
      for (NodeId a : g_.OutNeighbors(h)) authority[a] += share;
    }
    // Authority -> hub: each authority splits its score across the hubs
    // following it (its bipartite in-degree). Walked via the forward
    // adjacency, which only touches the small hub set.
    for (NodeId h : hubs) {
      double acc = 0.0;
      for (NodeId a : g_.OutNeighbors(h)) {
        acc += authority[a] / static_cast<double>(authority_in_degree[a]);
      }
      hub[h] = acc;
    }
  }
  return authority;
}

util::Result<core::Ranking> WtfSalsa::Recommend(const core::Query& q) const {
  MBR_RETURN_IF_ERROR(CheckDeadline(q));
  auto authority = AuthorityScores(q.user);
  MBR_RETURN_IF_ERROR(CheckDeadline(q));
  if (q.scoring_mode()) {
    core::Ranking r;
    r.entries.reserve(q.candidates.size());
    for (NodeId v : q.candidates) {
      auto it = authority.find(v);
      r.entries.push_back({v, it == authority.end() ? 0.0 : it->second});
    }
    return r;
  }
  core::RankingBuilder builder(q);
  for (const auto& [v, score] : authority) {
    builder.Offer(v, score);
  }
  return builder.Take();
}

}  // namespace mbr::baselines
