#ifndef MBR_BASELINES_WTF_SALSA_H_
#define MBR_BASELINES_WTF_SALSA_H_

// "Who to Follow" baseline (Gupta et al., WWW 2013 [10]) — Twitter's
// production recommender the paper discusses in related work:
//
//   1. Circle of trust: the top-k nodes of an egocentric random walk
//      (personalised PageRank with teleport to the query user) over the
//      follow graph.
//   2. A bipartite hub/authority graph: hubs = the circle of trust,
//      authorities = everyone the hubs follow; SALSA iterations
//      (Lempel & Moran [15]) alternately distribute hub and authority
//      scores across its edges.
//   3. Recommendations = authorities ranked by SALSA authority score.
//
// Personalised by construction (unlike TwitterRank) but content-blind
// (unlike Tr): the topic argument is ignored, which is exactly the
// contrast the paper draws with its labeled-graph approach.

#include <string>
#include <unordered_map>
#include <vector>

#include "core/recommender_iface.h"
#include "graph/labeled_graph.h"

namespace mbr::baselines {

struct WtfConfig {
  uint32_t circle_size = 50;      // |circle of trust|
  double ppr_teleport = 0.15;     // restart probability of the ego walk
  uint32_t ppr_iterations = 20;
  uint32_t salsa_iterations = 10;
};

class WtfSalsa : public core::Recommender {
 public:
  explicit WtfSalsa(const graph::LabeledGraph& g, const WtfConfig& config = {});

  std::string name() const override { return "WTF-SALSA"; }

  // Authority scores of all candidates reachable through the circle of
  // trust of `u` (empty if u follows nobody).
  std::unordered_map<graph::NodeId, double> AuthorityScores(
      graph::NodeId u) const;

  // The circle of trust itself, ranked by personalised PageRank (u
  // excluded). Exposed for tests.
  std::vector<util::ScoredId> CircleOfTrust(graph::NodeId u) const;

  util::Result<core::Ranking> Recommend(const core::Query& q) const override;

 private:
  const graph::LabeledGraph& g_;
  WtfConfig config_;
};

}  // namespace mbr::baselines

#endif  // MBR_BASELINES_WTF_SALSA_H_
