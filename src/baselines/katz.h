#ifndef MBR_BASELINES_KATZ_H_
#define MBR_BASELINES_KATZ_H_

// Katz score baseline (Liben-Nowell & Kleinberg [16], Equation 2 of the
// paper): topo_β(u, v) = Σ_{p: u ❀ v} β^|p| — the Tr score with the topical
// relevance fixed to 1. Purely topological; the topic argument of the
// Recommender interface is ignored.

#include <string>
#include <vector>

#include "core/authority.h"
#include "core/params.h"
#include "core/recommender_iface.h"
#include "core/scorer.h"
#include "graph/labeled_graph.h"
#include "topics/similarity_matrix.h"

namespace mbr::baselines {

class KatzRecommender : public core::Recommender {
 public:
  KatzRecommender(const graph::LabeledGraph& g,
                  const topics::SimilarityMatrix& sim,
                  const core::ScoreParams& params = {});

  std::string name() const override { return "Katz"; }

  util::Result<core::Ranking> Recommend(const core::Query& q) const override;

 private:
  const graph::LabeledGraph& g_;
  core::AuthorityIndex authority_;  // unused by the score; Scorer needs it
  core::Scorer scorer_;
};

}  // namespace mbr::baselines

#endif  // MBR_BASELINES_KATZ_H_
