#include "baselines/neighborhood.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/top_k.h"

namespace mbr::baselines {

namespace {
using graph::NodeId;
}  // namespace

const char* NeighborhoodScoreName(NeighborhoodScore score) {
  switch (score) {
    case NeighborhoodScore::kCommonNeighbors:
      return "CommonNeighbors";
    case NeighborhoodScore::kAdamicAdar:
      return "AdamicAdar";
    case NeighborhoodScore::kJaccard:
      return "Jaccard";
    case NeighborhoodScore::kPreferentialAttachment:
      return "PrefAttachment";
  }
  return "?";
}

NeighborhoodRecommender::NeighborhoodRecommender(const graph::LabeledGraph& g,
                                                 NeighborhoodScore score)
    : g_(g), score_(score) {}

double NeighborhoodRecommender::Score(NodeId u, NodeId v) const {
  if (score_ == NeighborhoodScore::kPreferentialAttachment) {
    return static_cast<double>(g_.OutDegree(u)) *
           static_cast<double>(g_.InDegree(v));
  }
  // Intersection of Out(u) and In(v): both are sorted id lists.
  auto out = g_.OutNeighbors(u);
  auto in = g_.InNeighbors(v);
  double acc = 0.0;
  uint32_t common = 0;
  size_t i = 0, j = 0;
  while (i < out.size() && j < in.size()) {
    if (out[i] < in[j]) {
      ++i;
    } else if (out[i] > in[j]) {
      ++j;
    } else {
      ++common;
      if (score_ == NeighborhoodScore::kAdamicAdar) {
        acc += 1.0 / std::log(2.0 + g_.OutDegree(out[i]));
      }
      ++i;
      ++j;
    }
  }
  switch (score_) {
    case NeighborhoodScore::kCommonNeighbors:
      return common;
    case NeighborhoodScore::kAdamicAdar:
      return acc;
    case NeighborhoodScore::kJaccard: {
      double uni = static_cast<double>(out.size()) +
                   static_cast<double>(in.size()) - common;
      return uni > 0 ? common / uni : 0.0;
    }
    default:
      return 0.0;
  }
}

util::Result<core::Ranking> NeighborhoodRecommender::Recommend(
    const core::Query& q) const {
  MBR_RETURN_IF_ERROR(CheckDeadline(q));
  if (q.scoring_mode()) {
    core::Ranking r;
    r.entries.reserve(q.candidates.size());
    for (NodeId v : q.candidates) {
      r.entries.push_back({v, Score(q.user, v)});
    }
    return r;
  }
  core::RankingBuilder builder(q);
  if (score_ == NeighborhoodScore::kPreferentialAttachment) {
    // Global candidate set; score is monotone in in-degree.
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      builder.OfferAllowZero(v, Score(q.user, v));
    }
    return builder.Take();
  }
  // Only the 2-hop out-neighbourhood can score > 0.
  std::unordered_map<NodeId, bool> seen;
  for (NodeId x : g_.OutNeighbors(q.user)) {
    for (NodeId v : g_.OutNeighbors(x)) {
      if (v == q.user || seen.count(v)) continue;
      seen.emplace(v, true);
      builder.Offer(v, Score(q.user, v));
    }
  }
  return builder.Take();
}

}  // namespace mbr::baselines
