#include "baselines/neighborhood.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/top_k.h"

namespace mbr::baselines {

namespace {
using graph::NodeId;
}  // namespace

const char* NeighborhoodScoreName(NeighborhoodScore score) {
  switch (score) {
    case NeighborhoodScore::kCommonNeighbors:
      return "CommonNeighbors";
    case NeighborhoodScore::kAdamicAdar:
      return "AdamicAdar";
    case NeighborhoodScore::kJaccard:
      return "Jaccard";
    case NeighborhoodScore::kPreferentialAttachment:
      return "PrefAttachment";
  }
  return "?";
}

NeighborhoodRecommender::NeighborhoodRecommender(const graph::LabeledGraph& g,
                                                 NeighborhoodScore score)
    : g_(g), score_(score) {}

double NeighborhoodRecommender::Score(NodeId u, NodeId v) const {
  if (score_ == NeighborhoodScore::kPreferentialAttachment) {
    return static_cast<double>(g_.OutDegree(u)) *
           static_cast<double>(g_.InDegree(v));
  }
  // Intersection of Out(u) and In(v): both are sorted id lists.
  auto out = g_.OutNeighbors(u);
  auto in = g_.InNeighbors(v);
  double acc = 0.0;
  uint32_t common = 0;
  size_t i = 0, j = 0;
  while (i < out.size() && j < in.size()) {
    if (out[i] < in[j]) {
      ++i;
    } else if (out[i] > in[j]) {
      ++j;
    } else {
      ++common;
      if (score_ == NeighborhoodScore::kAdamicAdar) {
        acc += 1.0 / std::log(2.0 + g_.OutDegree(out[i]));
      }
      ++i;
      ++j;
    }
  }
  switch (score_) {
    case NeighborhoodScore::kCommonNeighbors:
      return common;
    case NeighborhoodScore::kAdamicAdar:
      return acc;
    case NeighborhoodScore::kJaccard: {
      double uni = static_cast<double>(out.size()) +
                   static_cast<double>(in.size()) - common;
      return uni > 0 ? common / uni : 0.0;
    }
    default:
      return 0.0;
  }
}

std::vector<double> NeighborhoodRecommender::ScoreCandidates(
    NodeId u, topics::TopicId /*t*/,
    const std::vector<NodeId>& candidates) const {
  std::vector<double> out;
  out.reserve(candidates.size());
  for (NodeId v : candidates) out.push_back(Score(u, v));
  return out;
}

std::vector<util::ScoredId> NeighborhoodRecommender::RecommendTopN(
    NodeId u, topics::TopicId /*t*/, size_t n) const {
  util::TopK topk(n);
  if (score_ == NeighborhoodScore::kPreferentialAttachment) {
    // Global candidate set; score is monotone in in-degree.
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      if (v == u) continue;
      topk.Offer(v, Score(u, v));
    }
    return topk.Take();
  }
  // Only the 2-hop out-neighbourhood can score > 0.
  std::unordered_map<NodeId, bool> seen;
  for (NodeId x : g_.OutNeighbors(u)) {
    for (NodeId v : g_.OutNeighbors(x)) {
      if (v == u || seen.count(v)) continue;
      seen.emplace(v, true);
      double s = Score(u, v);
      if (s > 0) topk.Offer(v, s);
    }
  }
  return topk.Take();
}

}  // namespace mbr::baselines
