#ifndef MBR_BASELINES_NEIGHBORHOOD_H_
#define MBR_BASELINES_NEIGHBORHOOD_H_

// Neighborhood-based link-prediction baselines from Liben-Nowell &
// Kleinberg [16] (the paper the Katz baseline and the evaluation protocol
// come from), adapted to the directed follow graph: a candidate v is scored
// from the 2-hop evidence "u follows x and x follows v":
//
//   common-neighbors   |Out(u) ∩ In(v)|
//   adamic-adar        Σ_{x ∈ Out(u) ∩ In(v)} 1 / log(1 + |Out(x)|)
//   jaccard            |Out(u) ∩ In(v)| / |Out(u) ∪ In(v)|
//   pref-attachment    |Out(u)| · |In(v)|
//
// All purely topological (the topic argument is ignored); they slot into
// the same evaluation harness for extended comparisons.

#include <string>
#include <vector>

#include "core/recommender_iface.h"
#include "graph/labeled_graph.h"

namespace mbr::baselines {

enum class NeighborhoodScore {
  kCommonNeighbors,
  kAdamicAdar,
  kJaccard,
  kPreferentialAttachment,
};

const char* NeighborhoodScoreName(NeighborhoodScore score);

class NeighborhoodRecommender : public core::Recommender {
 public:
  NeighborhoodRecommender(const graph::LabeledGraph& g,
                          NeighborhoodScore score);

  std::string name() const override {
    return NeighborhoodScoreName(score_);
  }

  // Score of a single (u, v) pair.
  double Score(graph::NodeId u, graph::NodeId v) const;

  util::Result<core::Ranking> Recommend(const core::Query& q) const override;

 private:
  const graph::LabeledGraph& g_;
  NeighborhoodScore score_;
};

}  // namespace mbr::baselines

#endif  // MBR_BASELINES_NEIGHBORHOOD_H_
