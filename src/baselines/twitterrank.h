#ifndef MBR_BASELINES_TWITTERRANK_H_
#define MBR_BASELINES_TWITTERRANK_H_

// TwitterRank baseline (Weng, Lim, Jiang & He, WSDM 2010 [26]): a
// topic-sensitive PageRank over the follow graph.
//
// For each topic t, a surfer at follower s moves to followee v with
// probability proportional to |τ_v| · sim_t(s, v), where |τ_v| is v's
// publication volume and sim_t(s, v) = 1 - |DT'[s][t] - DT'[v][t]| compares
// the users' (row-normalised) topic distributions; with probability γ the
// surfer teleports to the topic-specific distribution E_t ∝ DT[.][t].
//
// Where the original derives DT from LDA over tweets, we derive it from the
// labeled graph's node profiles (uniform mass over a user's topics) and use
// the in-degree+1 as the publication-volume proxy — the paper under
// reproduction notes TwitterRank's recommendations are "essentially based on
// the popularity (in-degree) of an account", which this preserves.
//
// TwitterRank scores are global per topic (not personalised): the query
// user only selects *which* topic ranking is consulted.

#include <string>
#include <vector>

#include "core/recommender_iface.h"
#include "graph/labeled_graph.h"

namespace mbr::baselines {

struct TwitterRankConfig {
  double teleport = 0.15;  // γ, same role as TwitterRank's γ = 0.15
  uint32_t max_iterations = 50;
  double tolerance = 1e-10;  // L1 change per iteration
};

class TwitterRank : public core::Recommender {
 public:
  // Computes all per-topic rank vectors eagerly (one power iteration per
  // topic of the graph's vocabulary).
  explicit TwitterRank(const graph::LabeledGraph& g,
                       const TwitterRankConfig& config = {});

  std::string name() const override { return "TwitterRank"; }

  // Global rank of v on topic t.
  double Score(graph::NodeId v, topics::TopicId t) const {
    return rank_[static_cast<size_t>(t) * num_nodes_ + v];
  }

  util::Result<core::Ranking> Recommend(const core::Query& q) const override;

  uint32_t iterations_run(topics::TopicId t) const {
    return iterations_[t];
  }

 private:
  void ComputeTopic(const graph::LabeledGraph& g, topics::TopicId t,
                    const std::vector<double>& dt_norm,
                    const std::vector<double>& volume);

  graph::NodeId num_nodes_ = 0;
  int num_topics_ = 0;
  TwitterRankConfig config_;
  std::vector<double> rank_;  // num_topics x num_nodes
  std::vector<uint32_t> iterations_;
};

}  // namespace mbr::baselines

#endif  // MBR_BASELINES_TWITTERRANK_H_
