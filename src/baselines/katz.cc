#include "baselines/katz.h"

#include "util/top_k.h"

namespace mbr::baselines {

KatzRecommender::KatzRecommender(const graph::LabeledGraph& g,
                                 const topics::SimilarityMatrix& sim,
                                 const core::ScoreParams& params)
    : g_(g), authority_(g), scorer_(g, authority_, sim, params) {}

util::Result<core::Ranking> KatzRecommender::Recommend(
    const core::Query& q) const {
  MBR_RETURN_IF_ERROR(CheckDeadline(q));
  const core::ExplorationResult& res =
      scorer_.Explore(q.user, topics::TopicSet());
  MBR_RETURN_IF_ERROR(CheckDeadline(q));
  if (q.scoring_mode()) {
    core::Ranking r;
    r.entries.reserve(q.candidates.size());
    for (graph::NodeId v : q.candidates) {
      r.entries.push_back({v, res.TopoBeta(v)});
    }
    return r;
  }
  core::RankingBuilder builder(q);
  for (graph::NodeId v : res.reached()) {
    builder.Offer(v, res.TopoBeta(v));
  }
  return builder.Take();
}

}  // namespace mbr::baselines
