#include "baselines/katz.h"

#include "util/top_k.h"

namespace mbr::baselines {

KatzRecommender::KatzRecommender(const graph::LabeledGraph& g,
                                 const topics::SimilarityMatrix& sim,
                                 const core::ScoreParams& params)
    : g_(g), authority_(g), scorer_(g, authority_, sim, params) {}

std::vector<double> KatzRecommender::ScoreCandidates(
    graph::NodeId u, topics::TopicId /*t*/,
    const std::vector<graph::NodeId>& candidates) const {
  core::ExplorationResult res = scorer_.Explore(u, topics::TopicSet());
  std::vector<double> out;
  out.reserve(candidates.size());
  for (graph::NodeId v : candidates) out.push_back(res.TopoBeta(v));
  return out;
}

std::vector<util::ScoredId> KatzRecommender::RecommendTopN(
    graph::NodeId u, topics::TopicId /*t*/, size_t n) const {
  core::ExplorationResult res = scorer_.Explore(u, topics::TopicSet());
  util::TopK topk(n);
  for (graph::NodeId v : res.reached()) {
    if (v == u) continue;
    double s = res.TopoBeta(v);
    if (s > 0.0) topk.Offer(v, s);
  }
  return topk.Take();
}

}  // namespace mbr::baselines
