#include "baselines/twitterrank.h"

#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/top_k.h"

namespace mbr::baselines {

TwitterRank::TwitterRank(const graph::LabeledGraph& g,
                         const TwitterRankConfig& config)
    : num_nodes_(g.num_nodes()),
      num_topics_(g.num_topics()),
      config_(config) {
  MBR_CHECK(config.teleport > 0.0 && config.teleport < 1.0);
  rank_.assign(static_cast<size_t>(num_topics_) * num_nodes_, 0.0);
  iterations_.assign(num_topics_, 0);

  // DT'[u][t]: row-normalised topic distribution of u from node labels.
  std::vector<double> dt_norm(static_cast<size_t>(num_nodes_) * num_topics_,
                              0.0);
  for (graph::NodeId u = 0; u < num_nodes_; ++u) {
    topics::TopicSet labels = g.NodeLabels(u);
    if (labels.empty()) continue;
    double mass = 1.0 / labels.size();
    for (topics::TopicId t : labels) {
      dt_norm[static_cast<size_t>(u) * num_topics_ + t] = mass;
    }
  }

  // Publication-volume proxy |τ_v|.
  std::vector<double> volume(num_nodes_);
  for (graph::NodeId v = 0; v < num_nodes_; ++v) {
    volume[v] = 1.0 + static_cast<double>(g.InDegree(v));
  }

  for (int t = 0; t < num_topics_; ++t) {
    ComputeTopic(g, static_cast<topics::TopicId>(t), dt_norm, volume);
  }
}

void TwitterRank::ComputeTopic(const graph::LabeledGraph& g,
                               topics::TopicId t,
                               const std::vector<double>& dt_norm,
                               const std::vector<double>& volume) {
  const graph::NodeId n = num_nodes_;
  const double gamma = config_.teleport;

  // Topic-specific teleport distribution E_t ∝ DT[.][t].
  std::vector<double> et(n, 0.0);
  double et_total = 0.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    et[v] = dt_norm[static_cast<size_t>(v) * num_topics_ + t];
    et_total += et[v];
  }
  if (et_total == 0.0) {
    // Nobody publishes on t: uniform teleport.
    for (graph::NodeId v = 0; v < n; ++v) et[v] = 1.0 / n;
  } else {
    for (graph::NodeId v = 0; v < n; ++v) et[v] /= et_total;
  }

  // Per-source normalisers: Σ_{a ∈ out(s)} sim_t(s,a)·|τ_a|.
  std::vector<double> norm(n, 0.0);
  auto sim_t = [&](graph::NodeId s, graph::NodeId v) {
    double ds = dt_norm[static_cast<size_t>(s) * num_topics_ + t];
    double dv = dt_norm[static_cast<size_t>(v) * num_topics_ + t];
    return 1.0 - std::fabs(ds - dv);
  };
  for (graph::NodeId s = 0; s < n; ++s) {
    for (graph::NodeId v : g.OutNeighbors(s)) {
      norm[s] += sim_t(s, v) * volume[v];
    }
  }

  std::vector<double> x(n, 1.0 / n), y(n);
  uint32_t it = 0;
  for (; it < config_.max_iterations; ++it) {
    std::fill(y.begin(), y.end(), 0.0);
    double dangling = 0.0;
    for (graph::NodeId s = 0; s < n; ++s) {
      if (norm[s] <= 0.0) {
        dangling += x[s];
        continue;
      }
      double xs = x[s] / norm[s];
      if (xs == 0.0) continue;
      for (graph::NodeId v : g.OutNeighbors(s)) {
        y[v] += xs * sim_t(s, v) * volume[v];
      }
    }
    // Walk mass + dangling mass redistributed to E_t, plus teleport.
    double l1 = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      double nv = gamma * et[v] + (1.0 - gamma) * (y[v] + dangling * et[v]);
      l1 += std::fabs(nv - x[v]);
      y[v] = nv;
    }
    x.swap(y);
    if (l1 < config_.tolerance) {
      ++it;
      break;
    }
  }
  iterations_[t] = it;
  double* out = &rank_[static_cast<size_t>(t) * n];
  for (graph::NodeId v = 0; v < n; ++v) out[v] = x[v];
}

util::Result<core::Ranking> TwitterRank::Recommend(
    const core::Query& q) const {
  MBR_RETURN_IF_ERROR(CheckDeadline(q));
  if (q.scoring_mode()) {
    core::Ranking r;
    r.entries.reserve(q.candidates.size());
    for (graph::NodeId v : q.candidates) {
      r.entries.push_back({v, Score(v, q.topic)});
    }
    return r;
  }
  // The per-topic rank vector covers every node; zero mass is still a rank.
  core::RankingBuilder builder(q);
  for (graph::NodeId v = 0; v < num_nodes_; ++v) {
    builder.OfferAllowZero(v, Score(v, q.topic));
  }
  return builder.Take();
}

}  // namespace mbr::baselines
