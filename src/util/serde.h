#ifndef MBR_UTIL_SERDE_H_
#define MBR_UTIL_SERDE_H_

// Hardened binary serialisation shared by every persisted artifact
// (landmark indexes, graph snapshots, ...).
//
// The pre-processing these files hold is the expensive asset of the system
// (Table 5: seconds of Algorithm 1 per landmark; §5.4: ~1.4 MB per landmark
// at top-1000), and in a production deployment it is built once and shipped
// to many serving workers. A loader that trusts the bytes it reads turns a
// corrupt replica into a crashed worker — so this layer treats every input
// as hostile:
//
//   * container header: magic, artifact kind, per-artifact format version —
//     wrong kind or unknown version is a clean InvalidArgument;
//   * framed sections: {id, payload length, CRC32} + payload. The CRC is
//     verified before any payload byte is interpreted, so random corruption
//     is caught up front with overwhelming probability;
//   * length-prefixed arrays whose element counts are validated against a
//     caller-supplied bound AND the section's actual byte size *before* the
//     allocation happens — a flipped length byte can never demand more
//     memory than the file itself occupies;
//   * every failure path is a util::Status. The Reader never throws, never
//     reads out of bounds, and never trips undefined behaviour on malformed
//     input (tests/serde_corruption_test.cc bit-flips and truncates whole
//     golden files to hold it to that).
//
// The on-disk format is little-endian; the implementation memcpys
// trivially-copyable values and therefore requires a little-endian host
// (statically asserted below). Big-endian support would swap in the Put/Read
// primitives without changing the format.

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace mbr::util::serde {

static_assert(std::endian::native == std::endian::little,
              "serde assumes a little-endian host");

// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), the checksum used
// for every section payload.
uint32_t Crc32(const void* data, size_t size);

// First 8 bytes of every serde container file ("MBRSERD1").
inline constexpr uint64_t kContainerMagic = 0x3144524553524d42ULL;

// What the file holds; a loader only accepts its own kind, so handing a
// graph snapshot to the landmark-index loader fails cleanly.
enum class ArtifactKind : uint32_t {
  kLandmarkIndex = 1,
  kGraphSnapshot = 2,
  kShardPlan = 3,
};

// Builds a container in memory: header, then sections in call order. Usage:
//
//   Writer w(ArtifactKind::kGraphSnapshot, /*version=*/1);
//   w.BeginSection(kHeaderSection);
//   w.PutU64(num_nodes);
//   w.EndSection();
//   ...
//   MBR_RETURN_IF_ERROR(w.WriteToFile(path));
//
// Writing cannot fail until WriteToFile (all framing is in memory).
class Writer {
 public:
  Writer(ArtifactKind kind, uint32_t version);

  // Sections must not nest; every BeginSection needs a matching EndSection
  // before the next BeginSection / WriteToFile / buffer().
  void BeginSection(uint32_t id);
  void EndSection();

  void PutU32(uint32_t v) { PutPod(v); }
  void PutU64(uint64_t v) { PutPod(v); }
  void PutDouble(double v) { PutPod(v); }

  // uint64 element count followed by the raw elements.
  template <typename T>
  void PutPodArray(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutU64(v.size());
    PutBytes(v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  void PutPodArray(const std::vector<T>& v) {
    PutPodArray(std::span<const T>(v.data(), v.size()));
  }

  // The complete container (header + all finished sections).
  const std::vector<uint8_t>& buffer() const;

  // Writes buffer() to `path` (atomically enough for our purposes: a short
  // write is reported as IoError and leaves a file the Reader will reject).
  util::Status WriteToFile(const std::string& path) const;

 private:
  template <typename T>
  void PutPod(T v) {
    PutBytes(&v, sizeof(v));
  }
  void PutBytes(const void* data, size_t size);

  std::vector<uint8_t> buf_;
  // Offset of the in-progress section's frame, or npos when closed.
  size_t frame_off_ = npos_;
  static constexpr size_t npos_ = static_cast<size_t>(-1);
};

// Validating cursor over a container. Every malformed input — bad magic,
// wrong kind, unknown section id, CRC mismatch, truncation, oversized array
// count — comes back as a non-OK Status from the call that detected it.
class Reader {
 public:
  // Reads the whole file into memory and validates the container header.
  // `max_bytes` caps the file size accepted (default 4 GiB) so a bogus
  // path never OOMs the loader.
  static util::Result<Reader> FromFile(const std::string& path,
                                       ArtifactKind expected_kind,
                                       size_t max_bytes = kDefaultMaxBytes);
  // Same, over bytes already in memory (copied; the span may die after).
  static util::Result<Reader> FromBuffer(std::span<const uint8_t> data,
                                         ArtifactKind expected_kind);

  // Artifact format version from the container header. The caller decides
  // which versions it understands.
  uint32_t version() const { return version_; }

  // Enters the next section, checking its id and payload CRC. All Read*
  // calls until ExitSection() consume this section's payload.
  util::Status EnterSection(uint32_t expected_id);
  // Leaves the current section; unconsumed payload bytes are an error
  // (catches writer/reader schema drift).
  util::Status ExitSection();
  // OK iff every byte of the container has been consumed.
  util::Status ExpectEnd() const;

  util::Status ReadU32(uint32_t* out) { return ReadPod(out); }
  util::Status ReadU64(uint64_t* out) { return ReadPod(out); }
  util::Status ReadDouble(double* out) { return ReadPod(out); }

  // Reads a length-prefixed array. The element count is validated against
  // `max_count` and against the bytes actually left in the section before
  // `out` is resized — malformed lengths cannot trigger a large allocation.
  template <typename T>
  util::Status ReadPodArray(std::vector<T>* out, uint64_t max_count) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    MBR_RETURN_IF_ERROR(ReadU64(&count));
    if (count > max_count) {
      return util::Status::InvalidArgument(
          "array length " + std::to_string(count) + " exceeds bound " +
          std::to_string(max_count));
    }
    const size_t left = SectionBytesLeft();
    if (count > left / sizeof(T)) {
      return util::Status::InvalidArgument(
          "array length " + std::to_string(count) +
          " exceeds remaining section bytes");
    }
    out->resize(static_cast<size_t>(count));
    return ReadBytes(out->data(), static_cast<size_t>(count) * sizeof(T));
  }

 private:
  static constexpr size_t kDefaultMaxBytes = size_t{4} << 30;

  explicit Reader(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}

  util::Status ValidateHeader(ArtifactKind expected_kind);
  template <typename T>
  util::Status ReadPod(T* out) {
    return ReadBytes(out, sizeof(T));
  }
  util::Status ReadBytes(void* out, size_t size);
  size_t SectionBytesLeft() const;

  std::vector<uint8_t> bytes_;
  size_t pos_ = 0;           // cursor into bytes_
  size_t section_end_ = 0;   // payload end of the open section; 0 = closed
  bool in_section_ = false;
  uint32_t version_ = 0;
};

}  // namespace mbr::util::serde

#endif  // MBR_UTIL_SERDE_H_
