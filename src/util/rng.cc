#include "util/rng.h"

#include <cmath>
#include <unordered_set>

namespace mbr::util {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  MBR_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MBR_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full range
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    MBR_CHECK(w >= 0.0);
    total += w;
  }
  MBR_CHECK(total > 0.0);
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  MBR_CHECK(k <= n);
  std::vector<uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // For dense requests use a partial Fisher-Yates over an index array; for
  // sparse requests use hash-set rejection.
  if (k * 3 >= n) {
    std::vector<uint32_t> idx(n);
    for (uint32_t i = 0; i < n; ++i) idx[i] = i;
    for (uint32_t i = 0; i < k; ++i) {
      uint32_t j = i + static_cast<uint32_t>(UniformU64(n - i));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
  } else {
    std::unordered_set<uint32_t> seen;
    seen.reserve(k * 2);
    while (out.size() < k) {
      uint32_t v = static_cast<uint32_t>(UniformU64(n));
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

Rng Rng::Fork(uint64_t salt) const {
  uint64_t sm = seed_ ^ (0x6a09e667f3bcc909ULL + salt * 0x3c6ef372fe94f82bULL);
  return Rng(SplitMix64(&sm));
}

}  // namespace mbr::util
