#ifndef MBR_UTIL_THREAD_POOL_H_
#define MBR_UTIL_THREAD_POOL_H_

// Fixed-size worker pool with stable worker ids.
//
// Tasks receive the executing worker's id in [0, num_workers()), so a
// caller can keep per-worker state — e.g. one core::Scorer per worker, as
// the Scorer scratch-buffer contract demands — and index it lock-free from
// inside the task. Submission is thread-safe from any number of producer
// threads; the destructor drains every already-queued task before joining,
// so submitted work is never silently dropped.

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace mbr::util {

class ThreadPool {
 public:
  using Task = std::function<void(uint32_t worker_id)>;

  // num_threads == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(uint32_t num_threads) {
    uint32_t n = num_threads != 0
                     ? num_threads
                     : std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(n);
    for (uint32_t w = 0; w < n; ++w) {
      workers_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_workers() const {
    return static_cast<uint32_t>(workers_.size());
  }

  // Enqueues `task`; it runs on some worker as soon as one is free.
  // Preconditions: the pool is not being destroyed concurrently.
  void Submit(Task task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      MBR_CHECK(!stopping_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  void WorkerLoop(uint32_t id) {
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping and fully drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task(id);
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mbr::util

#endif  // MBR_UTIL_THREAD_POOL_H_
