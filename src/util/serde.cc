#include "util/serde.h"

#include <array>
#include <cstdio>

namespace mbr::util::serde {

namespace {

// Section frame layout: u32 id, u64 payload length, u32 payload CRC32.
constexpr size_t kFrameBytes = 4 + 8 + 4;
// Container header layout: u64 magic, u32 artifact kind, u32 version.
constexpr size_t kHeaderBytes = 8 + 4 + 4;

constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = MakeCrcTable();

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kCrcTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---- Writer.

Writer::Writer(ArtifactKind kind, uint32_t version) {
  PutPod(kContainerMagic);
  PutPod(static_cast<uint32_t>(kind));
  PutPod(version);
}

void Writer::PutBytes(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

void Writer::BeginSection(uint32_t id) {
  MBR_CHECK(frame_off_ == npos_);
  frame_off_ = buf_.size();
  PutPod(id);
  PutPod(uint64_t{0});  // payload length, patched by EndSection
  PutPod(uint32_t{0});  // payload CRC32, patched by EndSection
}

void Writer::EndSection() {
  MBR_CHECK(frame_off_ != npos_);
  const size_t payload_off = frame_off_ + kFrameBytes;
  const uint64_t len = buf_.size() - payload_off;
  const uint32_t crc = Crc32(buf_.data() + payload_off, len);
  std::memcpy(buf_.data() + frame_off_ + 4, &len, sizeof(len));
  std::memcpy(buf_.data() + frame_off_ + 12, &crc, sizeof(crc));
  frame_off_ = npos_;
}

const std::vector<uint8_t>& Writer::buffer() const {
  MBR_CHECK(frame_off_ == npos_);  // no section left open
  return buf_;
}

util::Status Writer::WriteToFile(const std::string& path) const {
  const std::vector<uint8_t>& bytes = buffer();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open for write: " + path);
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return util::Status::IoError("short write: " + path);
  return util::Status::Ok();
}

// ---- Reader.

util::Result<Reader> Reader::FromFile(const std::string& path,
                                      ArtifactKind expected_kind,
                                      size_t max_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open for read: " + path);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return util::Status::IoError("cannot seek: " + path);
  }
  const long size = std::ftell(f);
  if (size < 0 || static_cast<uint64_t>(size) > max_bytes) {
    std::fclose(f);
    return util::Status::InvalidArgument("implausible file size: " + path);
  }
  std::rewind(f);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const bool ok = bytes.empty() ||
                  std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) return util::Status::IoError("short read: " + path);
  Reader r(std::move(bytes));
  MBR_RETURN_IF_ERROR(r.ValidateHeader(expected_kind));
  return r;
}

util::Result<Reader> Reader::FromBuffer(std::span<const uint8_t> data,
                                        ArtifactKind expected_kind) {
  Reader r(std::vector<uint8_t>(data.begin(), data.end()));
  MBR_RETURN_IF_ERROR(r.ValidateHeader(expected_kind));
  return r;
}

util::Status Reader::ValidateHeader(ArtifactKind expected_kind) {
  if (bytes_.size() < kHeaderBytes) {
    return util::Status::InvalidArgument("container shorter than its header");
  }
  uint64_t magic = 0;
  uint32_t kind = 0;
  MBR_RETURN_IF_ERROR(ReadPod(&magic));
  MBR_RETURN_IF_ERROR(ReadPod(&kind));
  MBR_RETURN_IF_ERROR(ReadPod(&version_));
  if (magic != kContainerMagic) {
    return util::Status::InvalidArgument("bad container magic");
  }
  if (kind != static_cast<uint32_t>(expected_kind)) {
    return util::Status::InvalidArgument(
        "container holds artifact kind " + std::to_string(kind) +
        ", expected " +
        std::to_string(static_cast<uint32_t>(expected_kind)));
  }
  return util::Status::Ok();
}

util::Status Reader::ReadBytes(void* out, size_t size) {
  // Reads inside a section may not cross its payload end.
  const size_t limit = in_section_ ? section_end_ : bytes_.size();
  if (size > limit - pos_) {
    return util::Status::InvalidArgument("truncated container");
  }
  std::memcpy(out, bytes_.data() + pos_, size);
  pos_ += size;
  return util::Status::Ok();
}

size_t Reader::SectionBytesLeft() const {
  const size_t limit = in_section_ ? section_end_ : bytes_.size();
  return limit - pos_;
}

util::Status Reader::EnterSection(uint32_t expected_id) {
  MBR_CHECK(!in_section_);
  uint32_t id = 0;
  uint64_t len = 0;
  uint32_t crc = 0;
  MBR_RETURN_IF_ERROR(ReadPod(&id));
  MBR_RETURN_IF_ERROR(ReadPod(&len));
  MBR_RETURN_IF_ERROR(ReadPod(&crc));
  if (id != expected_id) {
    return util::Status::InvalidArgument(
        "expected section " + std::to_string(expected_id) + ", found " +
        std::to_string(id));
  }
  if (len > bytes_.size() - pos_) {
    return util::Status::InvalidArgument(
        "section " + std::to_string(id) + " longer than the container");
  }
  if (Crc32(bytes_.data() + pos_, static_cast<size_t>(len)) != crc) {
    return util::Status::InvalidArgument(
        "checksum mismatch in section " + std::to_string(id));
  }
  section_end_ = pos_ + static_cast<size_t>(len);
  in_section_ = true;
  return util::Status::Ok();
}

util::Status Reader::ExitSection() {
  MBR_CHECK(in_section_);
  in_section_ = false;
  if (pos_ != section_end_) {
    return util::Status::InvalidArgument("unconsumed bytes in section");
  }
  return util::Status::Ok();
}

util::Status Reader::ExpectEnd() const {
  MBR_CHECK(!in_section_);
  if (pos_ != bytes_.size()) {
    return util::Status::InvalidArgument("trailing bytes after last section");
  }
  return util::Status::Ok();
}

}  // namespace mbr::util::serde
