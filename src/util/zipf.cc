#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mbr::util {

ZipfDistribution::ZipfDistribution(uint32_t n, double s) : s_(s) {
  MBR_CHECK(n > 0);
  MBR_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (uint32_t k = 0; k < n; ++k) cdf_[k] /= total;
  cdf_.back() = 1.0;
}

uint32_t ZipfDistribution::Sample(Rng* rng) const {
  double r = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
  if (it == cdf_.end()) --it;
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint32_t k) const {
  MBR_CHECK(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace mbr::util
