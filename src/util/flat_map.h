#ifndef MBR_UTIL_FLAT_MAP_H_
#define MBR_UTIL_FLAT_MAP_H_

// Open-addressing hash map for the scoring hot path.
//
// std::unordered_map allocates one node per entry and chases a pointer per
// lookup; the per-query score accumulation (landmark::ApproxRecommender)
// pays that on every reached node. FlatMap is the standard serving-side
// replacement: power-of-two capacity, linear probing over two flat arrays
// (entries + occupancy bytes), CRC32 hardware hashing where the ISA has it
// and a Fibonacci multiply otherwise. There is no erase, hence no
// tombstones — growth rehashes into a clean table — and Clear() keeps
// capacity, so a warm map costs zero heap allocations per query.
//
// Iteration order is slot order: deterministic for a fixed insertion
// sequence and capacity. Ranked outputs must not depend on it (util::TopK's
// score-desc/id-asc total order already guarantees that).
//
// Keys and values must be trivially copyable (NodeId -> double in the hot
// path); the map is not thread-safe.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

#include "util/logging.h"

namespace mbr::util {

// Mixes an integral key into a table index. CRC32C instruction when
// compiled for an ISA that has it, otherwise a Fibonacci (golden-ratio)
// multiply — both spread sequential NodeIds, the common key shape, across
// the whole table.
inline uint64_t HashScatter64(uint64_t x) {
#if defined(__SSE4_2__)
  // CRC32C of both halves, re-spread with the golden ratio so the high
  // bits (used by the mask) are mixed too.
  uint32_t c = _mm_crc32_u32(0x9e3779b9u, static_cast<uint32_t>(x));
  c = _mm_crc32_u32(c, static_cast<uint32_t>(x >> 32));
  return static_cast<uint64_t>(c) * 0x9e3779b97f4a7c15ULL;
#else
  x *= 0x9e3779b97f4a7c15ULL;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 32;
  return x;
#endif
}

template <typename Key, typename Value>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<Key> &&
                    std::is_trivially_copyable_v<Value>,
                "FlatMap stores entries in flat arrays: trivial types only");
  static_assert(std::is_integral_v<Key> || std::is_enum_v<Key>,
                "FlatMap hashes integral keys");

 public:
  struct Entry {
    Key key;
    Value value;
  };

  FlatMap() = default;
  explicit FlatMap(size_t expected_entries) { Reserve(expected_entries); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return entries_.size(); }

  // Drops all entries, keeping capacity (one memset over the occupancy
  // bytes — no heap traffic).
  void Clear() {
    if (!used_.empty()) std::memset(used_.data(), 0, used_.size());
    size_ = 0;
  }

  // Ensures capacity for `n` entries without rehashing mid-accumulation.
  void Reserve(size_t n) {
    size_t want = kMinCapacity;
    while (want * kMaxLoadNum < n * kMaxLoadDen) want <<= 1;
    if (want > entries_.size()) Rehash(want);
  }

  // Insert-or-find: returns the value slot for `key`, default-initialised
  // on first insertion. The accumulation idiom is `map[v] += delta`.
  Value& operator[](const Key& key) {
    if ((size_ + 1) * kMaxLoadDen > entries_.size() * kMaxLoadNum) {
      Rehash(entries_.empty() ? kMinCapacity : entries_.size() * 2);
    }
    size_t i = Probe(key);
    if (!used_[i]) {
      used_[i] = 1;
      entries_[i].key = key;
      entries_[i].value = Value{};
      ++size_;
    }
    return entries_[i].value;
  }

  // Pointer to the value for `key`, or nullptr when absent.
  const Value* Find(const Key& key) const {
    if (entries_.empty()) return nullptr;
    size_t i = Probe(key);
    return used_[i] ? &entries_[i].value : nullptr;
  }
  Value* Find(const Key& key) {
    return const_cast<Value*>(std::as_const(*this).Find(key));
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  // Const iteration over occupied slots, in slot order.
  class const_iterator {
   public:
    const_iterator(const FlatMap* m, size_t i) : m_(m), i_(i) { Skip(); }
    std::pair<const Key&, const Value&> operator*() const {
      return {m_->entries_[i_].key, m_->entries_[i_].value};
    }
    const_iterator& operator++() {
      ++i_;
      Skip();
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }

   private:
    void Skip() {
      while (i_ < m_->entries_.size() && !m_->used_[i_]) ++i_;
    }
    const FlatMap* m_;
    size_t i_;
  };

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, entries_.size()}; }

 private:
  static constexpr size_t kMinCapacity = 16;
  // Max load factor 7/8: linear probe chains stay short while the table
  // stays dense enough to be cache-friendly.
  static constexpr size_t kMaxLoadNum = 7;
  static constexpr size_t kMaxLoadDen = 8;

  // Index of `key`'s slot: its entry if present, else the empty slot where
  // it would be inserted. Preconditions: capacity > 0 and not full.
  size_t Probe(const Key& key) const {
    const size_t mask = entries_.size() - 1;
    size_t i = HashScatter64(static_cast<uint64_t>(key)) & mask;
    while (used_[i] && entries_[i].key != key) i = (i + 1) & mask;
    return i;
  }

  void Rehash(size_t new_capacity) {
    MBR_DCHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Entry> old_entries = std::move(entries_);
    std::vector<uint8_t> old_used = std::move(used_);
    entries_.assign(new_capacity, Entry{});
    used_.assign(new_capacity, 0);
    const size_t mask = new_capacity - 1;
    for (size_t j = 0; j < old_entries.size(); ++j) {
      if (!old_used[j]) continue;
      size_t i =
          HashScatter64(static_cast<uint64_t>(old_entries[j].key)) & mask;
      while (used_[i]) i = (i + 1) & mask;
      used_[i] = 1;
      entries_[i] = old_entries[j];
    }
  }

  std::vector<Entry> entries_;
  std::vector<uint8_t> used_;
  size_t size_ = 0;
};

}  // namespace mbr::util

#endif  // MBR_UTIL_FLAT_MAP_H_
