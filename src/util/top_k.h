#ifndef MBR_UTIL_TOP_K_H_
#define MBR_UTIL_TOP_K_H_

// Bounded top-k accumulator over (id, score) pairs.
//
// Keeps the k highest-scoring entries seen so far using a min-heap;
// Take() returns them sorted by descending score (ties broken by ascending
// id so results are deterministic). Used for landmark inverted lists and
// for producing ranked recommendation lists.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace mbr::util {

struct ScoredId {
  uint32_t id = 0;
  double score = 0.0;

  friend bool operator==(const ScoredId& a, const ScoredId& b) {
    return a.id == b.id && a.score == b.score;
  }
};

// Descending score, ascending id on ties: the canonical ranked-list order.
inline bool RankedBefore(const ScoredId& a, const ScoredId& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

class TopK {
 public:
  // Preconditions: k > 0.
  explicit TopK(size_t k) : k_(k) { MBR_CHECK(k > 0); }

  // Offers an entry; keeps it only if it ranks within the current top-k.
  void Offer(uint32_t id, double score) {
    if (heap_.size() < k_) {
      heap_.push_back({id, score});
      std::push_heap(heap_.begin(), heap_.end(), HeapCmp);
      return;
    }
    // heap_.front() is the *worst* kept entry.
    if (RankedBefore({id, score}, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapCmp);
      heap_.back() = {id, score};
      std::push_heap(heap_.begin(), heap_.end(), HeapCmp);
    }
  }

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return k_; }

  // Worst currently-kept score; only meaningful once size() == capacity().
  double Threshold() const {
    MBR_CHECK(!heap_.empty());
    return heap_.front().score;
  }

  // Returns the kept entries in ranked order and resets the accumulator.
  std::vector<ScoredId> Take() {
    std::vector<ScoredId> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(), RankedBefore);
    return out;
  }

  // Allocation-free Take(): writes the ranked entries into *out (capacity
  // reused) and resets the accumulator for the next query, keeping the
  // heap's own capacity. The serving hot path pairs one persistent TopK
  // with one persistent output vector so a warm ranked query never touches
  // the heap.
  void TakeInto(std::vector<ScoredId>* out) {
    out->assign(heap_.begin(), heap_.end());
    heap_.clear();
    std::sort(out->begin(), out->end(), RankedBefore);
  }

  // Drops accumulated entries (capacity kept) and retargets to `k`.
  void Reset(size_t k) {
    MBR_CHECK(k > 0);
    k_ = k;
    heap_.clear();
  }

 private:
  // Min-heap on the ranked order: the root is the entry that would be
  // evicted first.
  static bool HeapCmp(const ScoredId& a, const ScoredId& b) {
    return RankedBefore(a, b);
  }

  size_t k_;
  std::vector<ScoredId> heap_;
};

}  // namespace mbr::util

#endif  // MBR_UTIL_TOP_K_H_
