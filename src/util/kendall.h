#ifndef MBR_UTIL_KENDALL_H_
#define MBR_UTIL_KENDALL_H_

// Kendall tau distances between ranked lists.
//
// The paper (Table 6) reports the "average Kendall Tau distance between the
// approximate computation and the exact computation" for top-k lists. Since
// two top-k lists need not contain the same items, we implement the Fagin /
// Kumar / Sivakumar generalisation of Kendall tau to top-k lists with
// optimistic penalty p = 0, normalised by k*k so the result lies in [0, 1]
// (0 = identical lists, 1 = maximally different).

#include <cstdint>
#include <vector>

namespace mbr::util {

// Kendall tau distance between two full permutations of the same item set,
// normalised to [0, 1] by n(n-1)/2. Items missing from either list are a
// programmer error (checked).
double KendallTauFull(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b);

// Fagin et al. K^(p) distance with p = 0 between two top-k lists (possibly
// over different item sets), normalised to [0, 1]. Lists shorter than k are
// allowed; k is taken as max(a.size(), b.size()).
double KendallTauTopK(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b);

}  // namespace mbr::util

#endif  // MBR_UTIL_KENDALL_H_
