#ifndef MBR_UTIL_TIMER_H_
#define MBR_UTIL_TIMER_H_

// Wall-clock timer for the benchmark harnesses.

#include <chrono>

namespace mbr::util {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mbr::util

#endif  // MBR_UTIL_TIMER_H_
