#ifndef MBR_UTIL_ZIPF_H_
#define MBR_UTIL_ZIPF_H_

// Zipf (power-law) sampling over ranks 0..n-1: P(k) ∝ 1 / (k+1)^s.
//
// Used by the dataset generators to reproduce the biased edge-per-topic
// distribution the paper observes (Figure 3, "similar to Yahoo! Directory")
// and the heavy-tailed popularity of accounts.

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace mbr::util {

class ZipfDistribution {
 public:
  // Preconditions: n > 0, s >= 0 (s == 0 degenerates to uniform).
  ZipfDistribution(uint32_t n, double s);

  // Samples a rank in [0, n).
  uint32_t Sample(Rng* rng) const;

  // Probability mass of rank k. Preconditions: k < n.
  double Pmf(uint32_t k) const;

  uint32_t n() const { return static_cast<uint32_t>(cdf_.size()); }
  double s() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // inclusive cumulative masses, cdf_.back() == 1
};

}  // namespace mbr::util

#endif  // MBR_UTIL_ZIPF_H_
