#ifndef MBR_UTIL_LOGGING_H_
#define MBR_UTIL_LOGGING_H_

// Minimal CHECK / logging macros. Following the no-exceptions policy, a
// failed invariant aborts the process with a source location; these guard
// programmer errors, not recoverable conditions (use util::Status for those).

#include <cstdio>
#include <cstdlib>

namespace mbr::util {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace mbr::util

#define MBR_CHECK(expr)                                     \
  do {                                                      \
    if (!(expr)) {                                          \
      ::mbr::util::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                       \
  } while (0)

#define MBR_DCHECK(expr) MBR_CHECK(expr)

#endif  // MBR_UTIL_LOGGING_H_
