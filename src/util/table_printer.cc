#include "util/table_printer.h"

#include <cinttypes>
#include <cstdio>

#include "util/logging.h"

namespace mbr::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  MBR_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(const std::string& title) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());

  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  auto print_sep = [&]() {
    std::printf("+");
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };

  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
  std::fflush(stdout);
}

std::string TablePrinter::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::Int(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  std::string raw = buf;
  bool neg = !raw.empty() && raw[0] == '-';
  std::string digits = neg ? raw.substr(1) : raw;
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace mbr::util
