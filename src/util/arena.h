#ifndef MBR_UTIL_ARENA_H_
#define MBR_UTIL_ARENA_H_

// Per-worker bump allocator for query-scoped scratch memory.
//
// The serving hot path (core::Scorer, landmark::ApproxRecommender) keeps
// its frontier and per-topic accumulation rows in typed spans carved out of
// one QueryArena. The arena hands out raw storage with a pointer bump —
// no per-allocation bookkeeping, no per-query malloc — and Reset() reclaims
// everything in O(#blocks) while keeping the backing memory, so a warm
// worker re-carves the same spans from the same bytes on the next capacity
// rebuild. Steady state is a single block sized to the largest working set
// the worker has ever needed: after warmup, AllocSpan never touches the
// heap (the zero-allocation invariant tracked by bench/micro_benchmarks
// and BENCH_hotpath.json).
//
// Contract: an arena is single-caller, like the Scorer that owns it —
// service::QueryEngine creates one arena per worker thread and threads it
// through BuildWorkers so it survives Rebind (the blocks outlive the
// scorers carved from them). Reset() invalidates every span previously
// handed out; only the owner that performs the Reset may hold spans.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/logging.h"

namespace mbr::util {

class QueryArena {
 public:
  QueryArena() = default;
  explicit QueryArena(size_t initial_bytes) {
    if (initial_bytes > 0) AddBlock(initial_bytes);
  }

  QueryArena(const QueryArena&) = delete;
  QueryArena& operator=(const QueryArena&) = delete;

  // Carves `count` default-constructible Ts off the bump pointer. The span
  // is valid until the next Reset(). Contents are NOT zeroed — callers
  // owning the zero-between-queries invariant (Scorer scratch) fill once
  // after carving. T must be trivial: Reset() never runs destructors.
  template <typename T>
  std::span<T> AllocSpan(size_t count) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_copyable_v<T>,
                  "QueryArena spans are raw storage: trivial types only");
    if (count == 0) return {};
    void* p = AllocBytes(count * sizeof(T), alignof(T));
    return {static_cast<T*>(p), count};
  }

  // Reclaims every span in O(1) amortised, keeping capacity. If allocation
  // ever spilled into a second block, the blocks are coalesced into one of
  // their combined size so the next carve sequence fits without touching
  // the heap — the self-sizing that makes steady state allocation-free.
  void Reset() {
    if (blocks_.size() > 1) {
      size_t total = 0;
      for (const Block& b : blocks_) total += b.size;
      blocks_.clear();
      AddBlock(total);
    }
    if (!blocks_.empty()) blocks_.back().used = 0;
    bytes_used_ = 0;
  }

  // Total backing bytes reserved across blocks.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  // Bytes handed out since the last Reset (including alignment padding).
  size_t bytes_used() const { return bytes_used_; }
  size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  static constexpr size_t kMinBlockBytes = 4096;

  void AddBlock(size_t bytes) {
    Block b;
    b.size = bytes < kMinBlockBytes ? kMinBlockBytes : bytes;
    b.data = std::make_unique<std::byte[]>(b.size);
    blocks_.push_back(std::move(b));
  }

  void* AllocBytes(size_t bytes, size_t align) {
    MBR_DCHECK(align > 0 && (align & (align - 1)) == 0);
    if (!blocks_.empty()) {
      Block& b = blocks_.back();
      size_t aligned = (b.used + align - 1) & ~(align - 1);
      if (aligned + bytes <= b.size) {
        void* p = b.data.get() + aligned;
        bytes_used_ += (aligned - b.used) + bytes;
        b.used = aligned + bytes;
        return p;
      }
    }
    // Spill: open a new block at least twice the current reserve so the
    // block count stays logarithmic in the final working-set size.
    AddBlock(std::max(bytes + align, 2 * bytes_reserved()));
    Block& b = blocks_.back();
    size_t aligned = (align - 1) & ~(align - 1);  // == 0; data is max-aligned
    (void)aligned;
    void* p = b.data.get();
    b.used = bytes;
    bytes_used_ += bytes;
    return p;
  }

  std::vector<Block> blocks_;
  size_t bytes_used_ = 0;
};

}  // namespace mbr::util

#endif  // MBR_UTIL_ARENA_H_
