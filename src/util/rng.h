#ifndef MBR_UTIL_RNG_H_
#define MBR_UTIL_RNG_H_

// Deterministic pseudo-random number generation.
//
// All experiments must be reproducible from a single seed, so the library
// never touches std::random_device or global RNG state. Rng wraps
// xoshiro256** (public-domain algorithm by Blackman & Vigna) seeded via
// SplitMix64, and offers the handful of sampling primitives the generators
// and the evaluation harness need.

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace mbr::util {

// SplitMix64 step; used for seeding and cheap hashing of ids into seeds.
uint64_t SplitMix64(uint64_t* state);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Next raw 64 random bits.
  uint64_t NextU64();

  // Uniform in [0, bound). Preconditions: bound > 0.
  uint64_t UniformU64(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Preconditions: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Samples an index in [0, weights.size()) with probability proportional
  // to weights[i]. Preconditions: at least one weight > 0.
  size_t Discrete(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // k distinct values sampled uniformly from [0, n). Preconditions: k <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  // Forks a child generator with an independent stream; deterministic in
  // (parent seed, salt).
  Rng Fork(uint64_t salt) const;

 private:
  uint64_t s_[4];
  uint64_t seed_;
};

}  // namespace mbr::util

#endif  // MBR_UTIL_RNG_H_
