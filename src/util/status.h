#ifndef MBR_UTIL_STATUS_H_
#define MBR_UTIL_STATUS_H_

// Status / Result error handling (no exceptions across API boundaries).
//
// Status carries an error code and a human-readable message; Result<T>
// carries either a value or a Status. Both are cheap to move and are used
// for recoverable failures (I/O, malformed input, bad configuration).

#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace mbr::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kIoError,
  kUnavailable,       // transient overload/shutdown: retrying may succeed
  kDeadlineExceeded,  // the caller's deadline passed before completion
};

// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
// ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: the message".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    MBR_CHECK(!std::get<Status>(value_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(value_);
  }

  // Preconditions: ok().
  const T& value() const& {
    MBR_CHECK(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    MBR_CHECK(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    MBR_CHECK(ok());
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace mbr::util

#define MBR_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::mbr::util::Status _st = (expr);          \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // MBR_UTIL_STATUS_H_
