#ifndef MBR_UTIL_LRU_CACHE_H_
#define MBR_UTIL_LRU_CACHE_H_

// Sharded LRU cache.
//
// The key space is split across N shards (N rounded up to a power of two);
// each shard is an independent LRU list + hash map behind its own mutex, so
// queries hitting different shards never contend. Capacity is divided
// evenly across the shards, which makes eviction approximate-LRU globally
// but exact-LRU per shard — the standard serving-cache trade for
// concurrency. Values are returned by copy; keep them small (the serving
// layer stores top-n lists of ~10-100 entries).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace mbr::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;  // Put() calls that created a new entry
    uint64_t updates = 0;     // Put() calls that overwrote an existing entry
    uint64_t evictions = 0;   // LRU evictions (EraseIf removals not counted)
  };

  // `capacity` is the total entry budget across all shards (at least one
  // entry per shard is always granted). Preconditions: capacity > 0,
  // num_shards > 0.
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 16) {
    MBR_CHECK(capacity > 0);
    MBR_CHECK(num_shards > 0);
    size_t shards = 1;
    while (shards < num_shards) shards <<= 1;
    shard_mask_ = shards - 1;
    size_t per_shard = (capacity + shards - 1) / shards;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
      shards_.back()->capacity = std::max<size_t>(1, per_shard);
    }
  }

  // Copies the cached value into *out and marks the entry most-recently
  // used. Returns false (and leaves *out untouched) on a miss.
  bool Get(const Key& key, Value* out) {
    Shard& sh = ShardFor(key);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.map.find(key);
    if (it == sh.map.end()) {
      ++sh.stats.misses;
      return false;
    }
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    *out = it->second->second;
    ++sh.stats.hits;
    return true;
  }

  // Inserts or overwrites; the entry becomes most-recently used. Evicts the
  // shard's least-recently-used entry when the shard is over budget.
  void Put(const Key& key, Value value) {
    Shard& sh = ShardFor(key);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.map.find(key);
    if (it != sh.map.end()) {
      it->second->second = std::move(value);
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
      ++sh.stats.updates;
      return;
    }
    sh.lru.emplace_front(key, std::move(value));
    sh.map.emplace(key, sh.lru.begin());
    ++sh.stats.insertions;
    if (sh.map.size() > sh.capacity) {
      sh.map.erase(sh.lru.back().first);
      sh.lru.pop_back();
      ++sh.stats.evictions;
    }
  }

  void Clear() {
    for (auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->mu);
      sh->map.clear();
      sh->lru.clear();
    }
  }

  // Removes every entry whose key satisfies `pred`; returns how many were
  // removed. One per-shard sweep under that shard's lock — the epoch-bump
  // path uses this to purge entries keyed to dead epochs, which ordinary
  // LRU pressure would otherwise keep resident (they can never be hit
  // again, but they still count against capacity).
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t erased = 0;
    for (auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->mu);
      for (auto it = sh->lru.begin(); it != sh->lru.end();) {
        if (pred(it->first)) {
          sh->map.erase(it->first);
          it = sh->lru.erase(it);
          ++erased;
        } else {
          ++it;
        }
      }
    }
    return erased;
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->mu);
      total += sh->map.size();
    }
    return total;
  }

  size_t capacity() const {
    size_t total = 0;
    for (const auto& sh : shards_) total += sh->capacity;
    return total;
  }

  size_t num_shards() const { return shards_.size(); }

  Stats stats() const {
    Stats out;
    for (const auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->mu);
      out.hits += sh->stats.hits;
      out.misses += sh->stats.misses;
      out.insertions += sh->stats.insertions;
      out.updates += sh->stats.updates;
      out.evictions += sh->stats.evictions;
    }
    return out;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    // front = most recently used.
    std::list<std::pair<Key, Value>> lru;
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        map;
    size_t capacity = 0;
    Stats stats;
  };

  Shard& ShardFor(const Key& key) {
    // Re-mix the hash so shard choice uses different bits than the shard's
    // own hash-map bucketing.
    uint64_t h = static_cast<uint64_t>(Hash{}(key));
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return *shards_[h & shard_mask_];
  }

  size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mbr::util

#endif  // MBR_UTIL_LRU_CACHE_H_
