#include "util/kendall.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace mbr::util {

double KendallTauFull(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b) {
  MBR_CHECK(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  std::unordered_map<uint32_t, size_t> pos_b;
  pos_b.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) pos_b[b[i]] = i;

  // Map a's items into b's rank space, then count inversions (O(n^2) is fine
  // for the list sizes we use, <= a few thousand).
  std::vector<size_t> ranks(n);
  for (size_t i = 0; i < n; ++i) {
    auto it = pos_b.find(a[i]);
    MBR_CHECK(it != pos_b.end());
    ranks[i] = it->second;
  }
  size_t inversions = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (ranks[i] > ranks[j]) ++inversions;
    }
  }
  return static_cast<double>(inversions) /
         (static_cast<double>(n) * (n - 1) / 2.0);
}

double KendallTauTopK(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b) {
  const size_t k = std::max(a.size(), b.size());
  if (k == 0) return 0.0;
  std::unordered_map<uint32_t, size_t> pa, pb;
  pa.reserve(a.size() * 2);
  pb.reserve(b.size() * 2);
  for (size_t i = 0; i < a.size(); ++i) pa[a[i]] = i;
  for (size_t i = 0; i < b.size(); ++i) pb[b[i]] = i;

  // Union of items.
  std::vector<uint32_t> items;
  items.reserve(pa.size() + pb.size());
  for (const auto& [id, _] : pa) items.push_back(id);
  for (const auto& [id, _] : pb) {
    if (!pa.count(id)) items.push_back(id);
  }

  double penalty = 0.0;
  for (size_t x = 0; x < items.size(); ++x) {
    for (size_t y = x + 1; y < items.size(); ++y) {
      uint32_t i = items[x], j = items[y];
      auto ia = pa.find(i), ja = pa.find(j);
      auto ib = pb.find(i), jb = pb.find(j);
      bool i_in_a = ia != pa.end(), j_in_a = ja != pa.end();
      bool i_in_b = ib != pb.end(), j_in_b = jb != pb.end();

      if (i_in_a && j_in_a && i_in_b && j_in_b) {
        // Case 1: both items in both lists — classic discordance.
        bool ord_a = ia->second < ja->second;
        bool ord_b = ib->second < jb->second;
        if (ord_a != ord_b) penalty += 1.0;
      } else if (i_in_a && j_in_a) {
        // Case 2: both in a, at most one in b. If the one present in b is
        // ranked *behind* the absent one in a, that's a discordance.
        if (i_in_b && ja->second < ia->second) penalty += 1.0;
        if (j_in_b && ia->second < ja->second) penalty += 1.0;
      } else if (i_in_b && j_in_b) {
        if (i_in_a && jb->second < ib->second) penalty += 1.0;
        if (j_in_a && ib->second < jb->second) penalty += 1.0;
      } else if ((i_in_a && j_in_b) || (j_in_a && i_in_b)) {
        // Case 3: i only in one list, j only in the other — definite
        // discordance.
        penalty += 1.0;
      }
      // Case 4 (one item in one list only, other in neither… cannot happen
      // since items come from the union) and the p-penalty case (both items
      // in a, neither in b) score 0 with p = 0.
    }
  }
  return penalty / (static_cast<double>(k) * static_cast<double>(k));
}

}  // namespace mbr::util
