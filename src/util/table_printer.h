#ifndef MBR_UTIL_TABLE_PRINTER_H_
#define MBR_UTIL_TABLE_PRINTER_H_

// Console table rendering for the per-table/per-figure benchmark binaries.
//
// Collect rows of strings, then Print() renders an aligned ASCII table
// matching the layout of the paper's tables so results can be compared by
// eye (and diffed between runs).

#include <string>
#include <vector>

namespace mbr::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders to stdout. `title` is printed above the table if non-empty.
  void Print(const std::string& title = "") const;

  // Formats a double with `digits` digits after the point.
  static std::string Num(double v, int digits = 3);
  // Formats an integer with thousands separators ("2,182,867").
  static std::string Int(int64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mbr::util

#endif  // MBR_UTIL_TABLE_PRINTER_H_
