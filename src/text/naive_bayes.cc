#include "text/naive_bayes.h"

#include <cmath>

#include "util/logging.h"

namespace mbr::text {

NaiveBayesClassifier::NaiveBayesClassifier(int num_topics,
                                           const NaiveBayesConfig& config)
    : num_topics_(num_topics),
      config_(config),
      tokenizer_(config.feature_dim) {
  MBR_CHECK(num_topics > 0 && num_topics <= topics::kMaxTopics);
  MBR_CHECK(config.smoothing > 0.0);
}

void NaiveBayesClassifier::Train(const std::vector<LabeledDocument>& train) {
  MBR_CHECK(!train.empty());
  const uint32_t dim = config_.feature_dim;
  const double alpha = config_.smoothing;

  // counts[t][f] = token occurrences of feature f in documents labeled t;
  // we also need the complement counts, derived from the global totals.
  std::vector<double> pos_counts(static_cast<size_t>(num_topics_) * dim, 0.0);
  std::vector<double> all_counts(dim, 0.0);
  std::vector<double> pos_tokens(num_topics_, 0.0);
  double all_tokens = 0.0;
  std::vector<double> pos_docs(num_topics_, 0.0);

  for (const LabeledDocument& doc : train) {
    MBR_CHECK(!doc.labels.empty());
    auto feats = tokenizer_.Features(doc.text);
    for (uint32_t f : feats) {
      all_counts[f] += 1.0;
      for (topics::TopicId t : doc.labels) {
        pos_counts[static_cast<size_t>(t) * dim + f] += 1.0;
      }
    }
    all_tokens += static_cast<double>(feats.size());
    for (topics::TopicId t : doc.labels) {
      pos_tokens[t] += static_cast<double>(feats.size());
      pos_docs[t] += 1.0;
    }
  }

  log_ratio_.assign(static_cast<size_t>(num_topics_) * (dim + 1), 0.0);
  const double total_docs = static_cast<double>(train.size());
  for (int t = 0; t < num_topics_; ++t) {
    const double* pos = &pos_counts[static_cast<size_t>(t) * dim];
    double* out = &log_ratio_[static_cast<size_t>(t) * (dim + 1)];
    double neg_tokens = all_tokens - pos_tokens[t];
    double pos_denom = pos_tokens[t] + alpha * dim;
    double neg_denom = neg_tokens + alpha * dim;
    for (uint32_t f = 0; f < dim; ++f) {
      double p_pos = (pos[f] + alpha) / pos_denom;
      double p_neg = (all_counts[f] - pos[f] + alpha) / neg_denom;
      out[f] = std::log(p_pos) - std::log(p_neg);
    }
    // Smoothed class prior.
    double p_t = (pos_docs[t] + 1.0) / (total_docs + 2.0);
    out[dim] = std::log(p_t) - std::log(1.0 - p_t);
  }
  trained_ = true;
}

std::vector<double> NaiveBayesClassifier::Scores(
    const std::string& text) const {
  MBR_CHECK(trained_);
  const uint32_t dim = config_.feature_dim;
  auto feats = tokenizer_.Features(text);
  std::vector<double> scores(num_topics_, 0.0);
  for (int t = 0; t < num_topics_; ++t) {
    const double* row = &log_ratio_[static_cast<size_t>(t) * (dim + 1)];
    double margin = row[dim];
    for (uint32_t f : feats) margin += row[f];
    scores[t] = margin;
  }
  return scores;
}

topics::TopicSet NaiveBayesClassifier::Predict(const std::string& text) const {
  std::vector<double> scores = Scores(text);
  topics::TopicSet out;
  int best = 0;
  for (int t = 0; t < num_topics_; ++t) {
    if (scores[t] > 0.0) out.Add(static_cast<topics::TopicId>(t));
    if (scores[t] > scores[best]) best = t;
  }
  if (out.empty()) out.Add(static_cast<topics::TopicId>(best));
  return out;
}

MultiLabelMetrics NaiveBayesClassifier::Evaluate(
    const std::vector<LabeledDocument>& gold) const {
  MultiLabelMetrics m;
  m.num_documents = gold.size();
  double tp = 0, fp = 0, fn = 0;
  for (const auto& doc : gold) {
    topics::TopicSet pred = Predict(doc.text);
    int inter = pred.Intersect(doc.labels).size();
    tp += inter;
    fp += pred.size() - inter;
    fn += doc.labels.size() - inter;
  }
  m.precision = (tp + fp) > 0 ? tp / (tp + fp) : 0.0;
  m.recall = (tp + fn) > 0 ? tp / (tp + fn) : 0.0;
  m.f1 = (m.precision + m.recall) > 0
             ? 2 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

}  // namespace mbr::text
