#include "text/pipeline.h"

#include "text/naive_bayes.h"

#include <algorithm>
#include <functional>
#include <string>

#include "util/logging.h"

namespace mbr::text {

topics::TopicSet BuildFollowerProfile(
    const std::vector<topics::TopicSet>& followee_profiles,
    double min_frequency, int max_topics) {
  if (followee_profiles.empty() || max_topics <= 0) return topics::TopicSet();
  int counts[topics::kMaxTopics] = {0};
  for (topics::TopicSet p : followee_profiles) {
    for (topics::TopicId t : p) ++counts[t];
  }
  const double n = static_cast<double>(followee_profiles.size());
  std::vector<std::pair<int, topics::TopicId>> ranked;
  for (int t = 0; t < topics::kMaxTopics; ++t) {
    if (counts[t] > 0 && static_cast<double>(counts[t]) / n >= min_frequency) {
      ranked.push_back({counts[t], static_cast<topics::TopicId>(t)});
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (static_cast<int>(ranked.size()) > max_topics) ranked.resize(max_topics);
  // Never return an empty profile if the user follows anyone: fall back to
  // the single most frequent topic.
  if (ranked.empty()) {
    int best = -1, best_count = 0;
    for (int t = 0; t < topics::kMaxTopics; ++t) {
      if (counts[t] > best_count) {
        best = t;
        best_count = counts[t];
      }
    }
    topics::TopicSet s;
    if (best >= 0) s.Add(static_cast<topics::TopicId>(best));
    return s;
  }
  topics::TopicSet s;
  for (const auto& [count, t] : ranked) s.Add(t);
  return s;
}

PipelineResult RunTopicExtraction(
    const graph::LabeledGraph& topology,
    const std::vector<topics::TopicSet>& true_topics,
    const TopicLanguageModel& lm, const PipelineConfig& config) {
  const graph::NodeId n = topology.num_nodes();
  MBR_CHECK(true_topics.size() == n);
  for (graph::NodeId u = 0; u < n; ++u) MBR_CHECK(!true_topics[u].empty());

  util::Rng rng(config.seed);
  PipelineResult result;

  // 1. Tweet streams -> one concatenated document per user.
  std::vector<std::string> documents(n);
  {
    util::Rng tweet_rng = rng.Fork(1);
    for (graph::NodeId u = 0; u < n; ++u) {
      std::string doc;
      for (const std::string& tweet : lm.GenerateUserTweets(
               true_topics[u], config.tweets_per_user, &tweet_rng)) {
        doc += tweet;
        doc.push_back(' ');
      }
      documents[u] = std::move(doc);
    }
  }

  // 2. Seed selection ("OpenCalais-tagged" users).
  util::Rng seed_rng = rng.Fork(2);
  uint32_t num_seeds = std::max<uint32_t>(
      2, static_cast<uint32_t>(config.seed_label_fraction * n));
  num_seeds = std::min(num_seeds, n);
  std::vector<uint32_t> seeds = seed_rng.SampleWithoutReplacement(n, num_seeds);
  uint32_t num_holdout =
      std::min<uint32_t>(num_seeds - 1,
                         std::max<uint32_t>(
                             1, static_cast<uint32_t>(config.holdout_fraction *
                                                      num_seeds)));

  std::vector<LabeledDocument> train, holdout;
  for (uint32_t i = 0; i < seeds.size(); ++i) {
    LabeledDocument doc{documents[seeds[i]], true_topics[seeds[i]]};
    if (i < num_holdout) {
      holdout.push_back(std::move(doc));
    } else {
      train.push_back(std::move(doc));
    }
  }

  // 3. Train the classifier, measure on the holdout, and predict publisher
  //    profiles for all non-seed users (seed users keep their gold labels).
  std::function<topics::TopicSet(const std::string&)> predict;
  MultiLabelClassifier perceptron(topology.num_topics(), config.classifier);
  NaiveBayesClassifier bayes(topology.num_topics());
  if (config.classifier_kind == ClassifierKind::kNaiveBayes) {
    bayes.Train(train);
    result.classifier_metrics = bayes.Evaluate(holdout);
    predict = [&bayes](const std::string& d) { return bayes.Predict(d); };
  } else {
    perceptron.Train(train);
    result.classifier_metrics = perceptron.Evaluate(holdout);
    predict = [&perceptron](const std::string& d) {
      return perceptron.Predict(d);
    };
  }

  std::vector<bool> is_seed(n, false);
  for (uint32_t s : seeds) is_seed[s] = true;
  result.publisher_profiles.resize(n);
  for (graph::NodeId u = 0; u < n; ++u) {
    result.publisher_profiles[u] =
        is_seed[u] ? true_topics[u] : predict(documents[u]);
  }

  // 4. Follower profiles from followee publisher profiles.
  result.follower_profiles.resize(n);
  for (graph::NodeId u = 0; u < n; ++u) {
    std::vector<topics::TopicSet> followee_profiles;
    auto followees = topology.OutNeighbors(u);
    followee_profiles.reserve(followees.size());
    for (graph::NodeId v : followees) {
      followee_profiles.push_back(result.publisher_profiles[v]);
    }
    result.follower_profiles[u] = BuildFollowerProfile(
        followee_profiles, config.follower_min_frequency,
        config.follower_max_topics);
  }

  // 5. Edge labels = follower ∩ publisher; rebuild the labeled graph.
  graph::GraphBuilder builder(n, topology.num_topics());
  uint64_t empty_labels = 0;
  for (graph::NodeId u = 0; u < n; ++u) {
    builder.SetNodeLabels(u, result.publisher_profiles[u]);
    for (graph::NodeId v : topology.OutNeighbors(u)) {
      topics::TopicSet label =
          result.follower_profiles[u].Intersect(result.publisher_profiles[v]);
      if (label.empty()) ++empty_labels;
      builder.AddEdge(u, v, label);
    }
  }
  result.labeled_graph = std::move(builder).Build();
  result.empty_edge_label_fraction =
      topology.num_edges() == 0
          ? 0.0
          : static_cast<double>(empty_labels) /
                static_cast<double>(topology.num_edges());
  return result;
}

}  // namespace mbr::text
