#ifndef MBR_TEXT_CLASSIFIER_H_
#define MBR_TEXT_CLASSIFIER_H_

// One-vs-rest multi-label text classifier (averaged perceptron over hashed
// bag-of-words).
//
// Substitute for the paper's OpenCalais + Mulan-trained multi-label SVM
// (§5.1, reported precision 0.90): documents (a user's concatenated tweets)
// are mapped to hashed term-frequency vectors; one averaged-perceptron
// binary classifier per topic decides membership; users whose score clears
// no topic get their single best topic (every publisher has a profile).

#include <string>
#include <vector>

#include "text/tokenizer.h"
#include "topics/topic.h"
#include "util/rng.h"
#include "util/status.h"

namespace mbr::text {

struct ClassifierConfig {
  uint32_t feature_dim = 1 << 13;
  int epochs = 6;
  uint64_t shuffle_seed = 1;
};

struct LabeledDocument {
  std::string text;
  topics::TopicSet labels;
};

// Multi-label quality metrics (micro-averaged over (doc, topic) decisions).
struct MultiLabelMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t num_documents = 0;
};

class MultiLabelClassifier {
 public:
  // Preconditions: 0 < num_topics <= topics::kMaxTopics.
  MultiLabelClassifier(int num_topics, const ClassifierConfig& config = {});

  // Trains from scratch on `train`. Preconditions: non-empty, every
  // document has at least one label.
  void Train(const std::vector<LabeledDocument>& train);

  // Per-topic margins for a document (unnormalised).
  std::vector<double> Scores(const std::string& text) const;

  // Predicted label set: all topics with positive margin; if none, the
  // single argmax topic (profiles are never empty).
  topics::TopicSet Predict(const std::string& text) const;

  // Micro-averaged precision/recall/F1 of Predict() against gold labels.
  MultiLabelMetrics Evaluate(const std::vector<LabeledDocument>& gold) const;

  int num_topics() const { return num_topics_; }
  bool trained() const { return trained_; }

 private:
  std::vector<std::pair<uint32_t, double>> Vectorize(
      const std::string& text) const;

  int num_topics_;
  ClassifierConfig config_;
  Tokenizer tokenizer_;
  bool trained_ = false;
  // weights_[t] is the averaged weight vector (+ bias at index dim) of
  // topic t's binary classifier.
  std::vector<std::vector<double>> weights_;
};

}  // namespace mbr::text

#endif  // MBR_TEXT_CLASSIFIER_H_
