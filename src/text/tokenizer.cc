#include "text/tokenizer.h"

#include <cctype>

#include "util/logging.h"

namespace mbr::text {

uint64_t HashToken(std::string_view token) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : token) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Tokenizer::Tokenizer(uint32_t feature_dim) : dim_(feature_dim) {
  MBR_CHECK(feature_dim > 0);
  MBR_CHECK((feature_dim & (feature_dim - 1)) == 0);  // power of two
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : text) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c) || c == '_') {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::vector<uint32_t> Tokenizer::Features(std::string_view text) const {
  std::vector<uint32_t> feats;
  for (const std::string& tok : Tokenize(text)) {
    feats.push_back(static_cast<uint32_t>(HashToken(tok) & (dim_ - 1)));
  }
  return feats;
}

}  // namespace mbr::text
