#ifndef MBR_TEXT_CORPUS_H_
#define MBR_TEXT_CORPUS_H_

// Synthetic tweet corpus generation.
//
// Substitute for the 2.3B-tweet crawl: each topic owns a Zipf-distributed
// specific word list, all topics share a common-word tail, and configurable
// "ambiguity" pairs share part of their specific vocabulary (the paper's
// user study observed that e.g. `social` posts mix with health / politics
// and are hard to classify — we reproduce that confusability explicitly).
// A user's tweets are sampled from the mixture of his topics.

#include <string>
#include <vector>

#include "topics/topic.h"
#include "topics/vocabulary.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace mbr::text {

struct CorpusConfig {
  int words_per_topic = 200;       // size of each topic-specific lexicon
  int common_words = 400;          // shared tail lexicon size
  double common_word_prob = 0.35;  // per-token probability of a common word
  double zipf_exponent = 1.05;     // within-lexicon word popularity skew
  int min_tweet_tokens = 6;
  int max_tweet_tokens = 16;
  // Probability that a token of an "ambiguous" topic is drawn from a
  // confusable partner topic's lexicon instead.
  double ambiguity_leak = 0.45;
};

// Topic-conditioned unigram language model over a generated lexicon.
class TopicLanguageModel {
 public:
  // `ambiguous_pairs` lists (a, b) topic pairs whose lexicons leak into
  // each other (both directions).
  TopicLanguageModel(
      const topics::Vocabulary& vocab, const CorpusConfig& config,
      const std::vector<std::pair<topics::TopicId, topics::TopicId>>&
          ambiguous_pairs,
      uint64_t seed);

  // One tweet about a topic drawn uniformly from `user_topics` (which must
  // be non-empty). The chosen topic is written to *chosen if non-null.
  std::string GenerateTweet(topics::TopicSet user_topics, util::Rng* rng,
                            topics::TopicId* chosen = nullptr) const;

  // `count` tweets for a user with the given topics.
  std::vector<std::string> GenerateUserTweets(topics::TopicSet user_topics,
                                              int count,
                                              util::Rng* rng) const;

  const CorpusConfig& config() const { return config_; }
  int num_topics() const { return static_cast<int>(topic_words_.size()); }

  // Confusable partner topics of t (possibly empty).
  const std::vector<topics::TopicId>& Partners(topics::TopicId t) const {
    return partners_[t];
  }

 private:
  const std::string& SampleTopicWord(topics::TopicId t, util::Rng* rng) const;

  CorpusConfig config_;
  std::vector<std::vector<std::string>> topic_words_;
  std::vector<std::string> common_words_;
  util::ZipfDistribution topic_zipf_;
  util::ZipfDistribution common_zipf_;
  std::vector<std::vector<topics::TopicId>> partners_;
};

// The Twitter corpus model with the paper-motivated ambiguity structure:
// social<->health, social<->politics.
TopicLanguageModel MakeTwitterLanguageModel(uint64_t seed,
                                            const CorpusConfig& config = {});

}  // namespace mbr::text

#endif  // MBR_TEXT_CORPUS_H_
