#ifndef MBR_TEXT_PIPELINE_H_
#define MBR_TEXT_PIPELINE_H_

// Topic-extraction pipeline (§5.1), end to end:
//
//   1. every user gets a synthetic tweet stream drawn from his true topical
//      affinities (TopicLanguageModel);
//   2. a seed fraction of users (paper: 10%, via OpenCalais) is tagged with
//      gold topic labels;
//   3. a multi-label classifier trained on the seeds (paper: Mulan SVM,
//      precision 0.90) assigns every user his *publisher profile*;
//   4. each user's *follower profile* collects the high-frequency topics
//      among the publisher profiles of the accounts he follows;
//   5. each edge (u -> v) is labeled with
//      follower_profile(u) ∩ publisher_profile(v).
//
// The output is the fully labeled social graph used by all experiments.

#include <vector>

#include "graph/labeled_graph.h"
#include "text/classifier.h"
#include "text/corpus.h"
#include "topics/topic.h"
#include "util/rng.h"

namespace mbr::text {

// Which classifier family completes the seed labeling (§5.1 trains a
// multi-label SVM via Mulan; we offer a discriminative and a generative
// substitute).
enum class ClassifierKind {
  kAveragedPerceptron,
  kNaiveBayes,
};

struct PipelineConfig {
  double seed_label_fraction = 0.10;  // users with gold labels
  double holdout_fraction = 0.20;     // of the seeds, kept for metrics
  int tweets_per_user = 12;
  ClassifierKind classifier_kind = ClassifierKind::kAveragedPerceptron;
  // Follower profile: keep topics occurring in at least this fraction of
  // followed publishers' profiles...
  double follower_min_frequency = 0.15;
  // ...and at most this many topics (highest counts first).
  int follower_max_topics = 6;
  ClassifierConfig classifier;
  uint64_t seed = 7;
};

struct PipelineResult {
  graph::LabeledGraph labeled_graph;
  std::vector<topics::TopicSet> publisher_profiles;
  std::vector<topics::TopicSet> follower_profiles;
  MultiLabelMetrics classifier_metrics;  // on the held-out gold seeds
  double empty_edge_label_fraction = 0.0;
};

// Runs the pipeline over `topology` (its existing labels are ignored).
// `true_topics[u]` is the ground-truth topical affinity of user u and must
// be non-empty for every node. The returned graph has the same nodes/edges
// as `topology` with fresh labels.
PipelineResult RunTopicExtraction(const graph::LabeledGraph& topology,
                                  const std::vector<topics::TopicSet>& true_topics,
                                  const TopicLanguageModel& lm,
                                  const PipelineConfig& config);

// Computes a follower profile from the publisher profiles of followees:
// topic counts over `followee_profiles`, thresholded and capped as in
// PipelineConfig. Exposed for testing.
topics::TopicSet BuildFollowerProfile(
    const std::vector<topics::TopicSet>& followee_profiles,
    double min_frequency, int max_topics);

}  // namespace mbr::text

#endif  // MBR_TEXT_PIPELINE_H_
