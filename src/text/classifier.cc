#include "text/classifier.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace mbr::text {

MultiLabelClassifier::MultiLabelClassifier(int num_topics,
                                           const ClassifierConfig& config)
    : num_topics_(num_topics),
      config_(config),
      tokenizer_(config.feature_dim) {
  MBR_CHECK(num_topics > 0 && num_topics <= topics::kMaxTopics);
  MBR_CHECK(config.epochs > 0);
}

std::vector<std::pair<uint32_t, double>> MultiLabelClassifier::Vectorize(
    const std::string& text) const {
  std::unordered_map<uint32_t, double> tf;
  auto feats = tokenizer_.Features(text);
  for (uint32_t f : feats) tf[f] += 1.0;
  std::vector<std::pair<uint32_t, double>> vec(tf.begin(), tf.end());
  // L2 normalisation keeps the margin scale independent of document length.
  double norm = 0.0;
  for (auto& [f, w] : vec) norm += w * w;
  norm = std::sqrt(norm);
  if (norm > 0) {
    for (auto& [f, w] : vec) w /= norm;
  }
  std::sort(vec.begin(), vec.end());
  return vec;
}

void MultiLabelClassifier::Train(const std::vector<LabeledDocument>& train) {
  MBR_CHECK(!train.empty());
  const uint32_t dim = config_.feature_dim;

  std::vector<std::vector<std::pair<uint32_t, double>>> vectors;
  vectors.reserve(train.size());
  for (const auto& doc : train) {
    MBR_CHECK(!doc.labels.empty());
    vectors.push_back(Vectorize(doc.text));
  }

  // Averaged perceptron per topic. `w` is the live weight vector, `acc` the
  // running sum of w over all updates (lazily materialised via timestamps).
  weights_.assign(num_topics_, std::vector<double>(dim + 1, 0.0));
  util::Rng rng(config_.shuffle_seed);
  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int t = 0; t < num_topics_; ++t) {
    std::vector<double> w(dim + 1, 0.0);
    std::vector<double> acc(dim + 1, 0.0);
    std::vector<int64_t> last(dim + 1, 0);
    int64_t step = 1;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
      rng.Shuffle(&order);
      for (size_t idx : order) {
        const auto& vec = vectors[idx];
        double margin = w[dim];  // bias
        for (const auto& [f, x] : vec) margin += w[f] * x;
        double y = train[idx].labels.Contains(static_cast<topics::TopicId>(t))
                       ? 1.0
                       : -1.0;
        if (y * margin <= 0.0) {
          for (const auto& [f, x] : vec) {
            acc[f] += w[f] * static_cast<double>(step - last[f]);
            last[f] = step;
            w[f] += y * x;
          }
          acc[dim] += w[dim] * static_cast<double>(step - last[dim]);
          last[dim] = step;
          w[dim] += y;
        }
        ++step;
      }
    }
    // Finalise the average.
    for (uint32_t f = 0; f <= dim; ++f) {
      acc[f] += w[f] * static_cast<double>(step - last[f]);
      weights_[t][f] = acc[f] / static_cast<double>(step);
    }
  }
  trained_ = true;
}

std::vector<double> MultiLabelClassifier::Scores(
    const std::string& text) const {
  MBR_CHECK(trained_);
  const uint32_t dim = config_.feature_dim;
  auto vec = Vectorize(text);
  std::vector<double> scores(num_topics_, 0.0);
  for (int t = 0; t < num_topics_; ++t) {
    double margin = weights_[t][dim];
    for (const auto& [f, x] : vec) margin += weights_[t][f] * x;
    scores[t] = margin;
  }
  return scores;
}

topics::TopicSet MultiLabelClassifier::Predict(const std::string& text) const {
  std::vector<double> scores = Scores(text);
  topics::TopicSet out;
  int best = 0;
  for (int t = 0; t < num_topics_; ++t) {
    if (scores[t] > 0.0) out.Add(static_cast<topics::TopicId>(t));
    if (scores[t] > scores[best]) best = t;
  }
  if (out.empty()) out.Add(static_cast<topics::TopicId>(best));
  return out;
}

MultiLabelMetrics MultiLabelClassifier::Evaluate(
    const std::vector<LabeledDocument>& gold) const {
  MultiLabelMetrics m;
  m.num_documents = gold.size();
  double tp = 0, fp = 0, fn = 0;
  for (const auto& doc : gold) {
    topics::TopicSet pred = Predict(doc.text);
    tp += pred.Intersect(doc.labels).size();
    fp += pred.size() - pred.Intersect(doc.labels).size();
    fn += doc.labels.size() - pred.Intersect(doc.labels).size();
  }
  m.precision = (tp + fp) > 0 ? tp / (tp + fp) : 0.0;
  m.recall = (tp + fn) > 0 ? tp / (tp + fn) : 0.0;
  m.f1 = (m.precision + m.recall) > 0
             ? 2 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

}  // namespace mbr::text
