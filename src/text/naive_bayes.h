#ifndef MBR_TEXT_NAIVE_BAYES_H_
#define MBR_TEXT_NAIVE_BAYES_H_

// Multinomial Naive Bayes multi-label classifier — the second classifier
// family for the §5.1 topic-extraction pipeline (one-vs-rest, like the
// Mulan SVM setup, but generative). Useful both as a baseline for the
// averaged perceptron and as the faster option for large corpora: training
// is a single counting pass.
//
// Per topic t we estimate P(w | t) and P(w | ¬t) with Laplace smoothing
// over hashed token counts and predict t iff
//   log P(t) + Σ_w log P(w|t)  >  log P(¬t) + Σ_w log P(w|¬t).

#include <string>
#include <vector>

#include "text/classifier.h"
#include "text/tokenizer.h"
#include "topics/topic.h"

namespace mbr::text {

struct NaiveBayesConfig {
  uint32_t feature_dim = 1 << 13;
  double smoothing = 1.0;  // Laplace alpha
};

class NaiveBayesClassifier {
 public:
  // Preconditions: 0 < num_topics <= topics::kMaxTopics.
  NaiveBayesClassifier(int num_topics, const NaiveBayesConfig& config = {});

  // Single counting pass over the corpus.
  void Train(const std::vector<LabeledDocument>& train);

  // Per-topic decision margins log P(t|d) - log P(¬t|d) (unnormalised).
  std::vector<double> Scores(const std::string& text) const;

  // All topics with positive margin; argmax if none (never empty).
  topics::TopicSet Predict(const std::string& text) const;

  // Micro-averaged precision/recall/F1, same contract as
  // MultiLabelClassifier::Evaluate.
  MultiLabelMetrics Evaluate(const std::vector<LabeledDocument>& gold) const;

  int num_topics() const { return num_topics_; }
  bool trained() const { return trained_; }

 private:
  int num_topics_;
  NaiveBayesConfig config_;
  Tokenizer tokenizer_;
  bool trained_ = false;
  // log_ratio_[t * (dim+1) + f]: log P(f|t) - log P(f|¬t); slot dim is the
  // prior term log P(t) - log P(¬t).
  std::vector<double> log_ratio_;
};

}  // namespace mbr::text

#endif  // MBR_TEXT_NAIVE_BAYES_H_
