#ifndef MBR_TEXT_TOKENIZER_H_
#define MBR_TEXT_TOKENIZER_H_

// Tokenisation + feature hashing for the bag-of-words classifier.
//
// Tweets are short, so we tokenise on non-alphanumeric boundaries,
// lowercase, and hash each token into a fixed-size feature space
// (the classic "hashing trick"), avoiding a mutable dictionary.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mbr::text {

// FNV-1a 64-bit hash of a token.
uint64_t HashToken(std::string_view token);

class Tokenizer {
 public:
  // Preconditions: feature_dim is a power of two.
  explicit Tokenizer(uint32_t feature_dim);

  uint32_t feature_dim() const { return dim_; }

  // Lowercased alphanumeric tokens of `text`.
  std::vector<std::string> Tokenize(std::string_view text) const;

  // Hashed feature ids (< feature_dim) of the tokens of `text`.
  std::vector<uint32_t> Features(std::string_view text) const;

 private:
  uint32_t dim_;
};

}  // namespace mbr::text

#endif  // MBR_TEXT_TOKENIZER_H_
