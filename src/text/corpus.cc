#include "text/corpus.h"

#include <utility>

#include "util/logging.h"

namespace mbr::text {

namespace {

std::string MakeWord(const char* prefix, int topic, int index) {
  char buf[32];
  if (topic >= 0) {
    std::snprintf(buf, sizeof(buf), "%s%d_%d", prefix, topic, index);
  } else {
    std::snprintf(buf, sizeof(buf), "%s_%d", prefix, index);
  }
  return buf;
}

}  // namespace

TopicLanguageModel::TopicLanguageModel(
    const topics::Vocabulary& vocab, const CorpusConfig& config,
    const std::vector<std::pair<topics::TopicId, topics::TopicId>>&
        ambiguous_pairs,
    uint64_t seed)
    : config_(config),
      topic_zipf_(static_cast<uint32_t>(config.words_per_topic),
                  config.zipf_exponent),
      common_zipf_(static_cast<uint32_t>(config.common_words),
                   config.zipf_exponent) {
  MBR_CHECK(config.words_per_topic > 0);
  MBR_CHECK(config.common_words > 0);
  MBR_CHECK(config.min_tweet_tokens > 0);
  MBR_CHECK(config.max_tweet_tokens >= config.min_tweet_tokens);
  (void)seed;  // lexicons are deterministic given the vocabulary

  topic_words_.resize(vocab.size());
  partners_.resize(vocab.size());
  for (topics::TopicId t : vocab.Ids()) {
    topic_words_[t].reserve(config.words_per_topic);
    for (int i = 0; i < config.words_per_topic; ++i) {
      topic_words_[t].push_back(MakeWord("tw", t, i));
    }
  }
  common_words_.reserve(config.common_words);
  for (int i = 0; i < config.common_words; ++i) {
    common_words_.push_back(MakeWord("common", -1, i));
  }
  for (const auto& [a, b] : ambiguous_pairs) {
    MBR_CHECK(a < vocab.size() && b < vocab.size());
    partners_[a].push_back(b);
    partners_[b].push_back(a);
  }
}

const std::string& TopicLanguageModel::SampleTopicWord(
    topics::TopicId t, util::Rng* rng) const {
  return topic_words_[t][topic_zipf_.Sample(rng)];
}

std::string TopicLanguageModel::GenerateTweet(topics::TopicSet user_topics,
                                              util::Rng* rng,
                                              topics::TopicId* chosen) const {
  MBR_CHECK(!user_topics.empty());
  // Uniform choice among the user's topics.
  int pick = static_cast<int>(rng->UniformU64(user_topics.size()));
  topics::TopicId topic = 0;
  for (topics::TopicId t : user_topics) {
    if (pick-- == 0) {
      topic = t;
      break;
    }
  }
  if (chosen != nullptr) *chosen = topic;

  int len = static_cast<int>(rng->UniformInt(config_.min_tweet_tokens,
                                             config_.max_tweet_tokens));
  std::string out;
  for (int i = 0; i < len; ++i) {
    if (i > 0) out.push_back(' ');
    if (rng->Bernoulli(config_.common_word_prob)) {
      out += common_words_[common_zipf_.Sample(rng)];
      continue;
    }
    topics::TopicId source = topic;
    const auto& partners = partners_[topic];
    if (!partners.empty() && rng->Bernoulli(config_.ambiguity_leak)) {
      source = partners[rng->UniformU64(partners.size())];
    }
    out += SampleTopicWord(source, rng);
  }
  return out;
}

std::vector<std::string> TopicLanguageModel::GenerateUserTweets(
    topics::TopicSet user_topics, int count, util::Rng* rng) const {
  std::vector<std::string> tweets;
  tweets.reserve(count);
  for (int i = 0; i < count; ++i) {
    tweets.push_back(GenerateTweet(user_topics, rng));
  }
  return tweets;
}

TopicLanguageModel MakeTwitterLanguageModel(uint64_t seed,
                                            const CorpusConfig& config) {
  const topics::Vocabulary& v = topics::TwitterVocabulary();
  topics::TopicId social = v.Id("social");
  topics::TopicId health = v.Id("health");
  topics::TopicId politics = v.Id("politics");
  MBR_CHECK(social != topics::kInvalidTopic);
  return TopicLanguageModel(
      v, config, {{social, health}, {social, politics}}, seed);
}

}  // namespace mbr::text
