#include "coord/router.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "core/recommender_iface.h"
#include "landmark/compose.h"
#include "obs/prometheus.h"
#include "util/flat_map.h"
#include "util/logging.h"
#include "util/timer.h"

namespace mbr::coord {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// Blocking full write (connection threads are one-per-client and may block).
util::Status SendAll(int fd, std::span<const uint8_t> bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      ::poll(&p, 1, 100);
      continue;
    }
    return util::Status::IoError(Errno("send"));
  }
  return util::Status::Ok();
}

}  // namespace

Router::Router(const ShardPlan& plan, const RouterConfig& config)
    : plan_(plan), config_(config) {
  if (config_.registry != nullptr) {
    registry_ = config_.registry;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  metrics_.requests = registry_->GetCounter(
      "mbr_coord_requests_total", "Client queries routed by the coordinator.");
  metrics_.fanout = registry_->GetCounter(
      "mbr_coord_fanout_total", "Shard RPCs issued by the coordinator.");
  metrics_.partial = registry_->GetCounter(
      "mbr_coord_partial_total",
      "Routed replies degraded to a partial merge (shard down/late).");
  metrics_.shard_errors = registry_->GetCounter(
      "mbr_coord_shard_errors_total", "Failed shard RPCs.");
  metrics_.landmark_fetches = registry_->GetCounter(
      "mbr_coord_landmark_fetches_total",
      "LANDMARK_FETCH RPCs for lists homed off the query's home shard.");
  metrics_.shard_latency_us = registry_->GetHistogram(
      "mbr_coord_shard_latency_us",
      "Per-shard RPC round-trip latency in microseconds.");

  std::vector<net::ClientConfig> endpoints;
  endpoints.reserve(plan_.num_shards());
  for (uint32_t s = 0; s < plan_.num_shards(); ++s) {
    net::ClientConfig c = config_.shard_client;
    c.host = plan_.endpoints()[s].host;
    c.port = static_cast<uint16_t>(plan_.endpoints()[s].port);
    c.protocol_version = net::kProtocolVersion;  // shards always speak v5
    c.request_timeout_ms = config_.shard_timeout_ms;
    endpoints.push_back(std::move(c));
  }
  pool_ = std::make_unique<net::ClientPool>(std::move(endpoints),
                                            config_.pool_idle);
}

Router::~Router() {
  if (started_) {
    RequestStop();
    Wait();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

util::Status Router::Start() {
  if (started_) return util::Status::FailedPrecondition("already started");
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return util::Status::IoError(Errno("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("bad host address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return util::Status::IoError(Errno("bind"));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return util::Status::IoError(Errno("getsockname"));
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    return util::Status::IoError(Errno("listen"));
  }
  started_ = true;
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return util::Status::Ok();
}

void Router::RequestStop() { stop_.store(true, std::memory_order_release); }

void Router::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  running_.store(false, std::memory_order_release);
}

void Router::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd p{listen_fd_, POLLIN, 0};
    int r = ::poll(&p, 1, 100);
    if (r <= 0) continue;
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    if (open_connections_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(threads_mu_);
    conn_threads_.emplace_back([this, fd] {
      ServeConnection(fd);
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  // Operators poll running() to learn the stop request took effect (the
  // connection threads watch stop_ themselves and drain right after).
  running_.store(false, std::memory_order_release);
}

void Router::ServeConnection(int fd) {
  net::Connection conn(fd, /*gen=*/0, config_.limits);
  uint8_t buf[65536];
  bool alive = true;
  while (alive && !stop_.load(std::memory_order_acquire)) {
    pollfd p{fd, POLLIN, 0};
    int r = ::poll(&p, 1, 100);
    if (r < 0 && errno != EINTR) break;
    if (r <= 0) continue;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    std::vector<net::Connection::Frame> frames;
    if (!conn.Ingest(buf, static_cast<size_t>(n), &frames).ok()) {
      break;  // framing broken: close without reply
    }
    for (const net::Connection::Frame& f : frames) {
      alive = HandleClientFrame(&conn, f);
      if (conn.has_pending_write()) {
        if (!SendAll(fd, conn.pending_write()).ok()) {
          alive = false;
          break;
        }
        conn.ConsumeWritten(conn.pending_write().size());
      }
      if (!alive) break;
    }
  }
  ::close(fd);
}

bool Router::QueueError(net::Connection* conn, uint64_t request_id,
                        uint16_t version, net::WireError code,
                        const std::string& message) {
  std::vector<uint8_t> payload = net::EncodeError({code, message});
  return conn->QueueReply(net::MessageKind::kError, request_id, payload,
                          version);
}

bool Router::HandleClientFrame(net::Connection* conn,
                               const net::Connection::Frame& frame) {
  const net::FrameHeader& h = frame.header;
  if (h.version < net::kMinProtocolVersion ||
      h.version > net::kProtocolVersion) {
    QueueError(conn, h.request_id, net::kProtocolVersion,
               net::WireError::kUnsupportedVersion,
               "router speaks protocol v" +
                   std::to_string(net::kMinProtocolVersion) + "-v" +
                   std::to_string(net::kProtocolVersion) +
                   ", client sent v" + std::to_string(h.version));
    return false;
  }
  if (util::Status st = net::VerifyPayloadCrc(h, frame.payload); !st.ok()) {
    return QueueError(conn, h.request_id, h.version,
                      net::WireError::kBadFrame, st.message());
  }

  switch (h.kind) {
    case net::MessageKind::kPing:
      return conn->QueueReply(net::MessageKind::kPong, h.request_id, {},
                              h.version);
    case net::MessageKind::kShutdown: {
      bool ok = conn->QueueReply(net::MessageKind::kShutdownAck,
                                 h.request_id, {}, h.version);
      RequestStop();
      return ok && false;  // close this connection after the ack flushes
    }
    case net::MessageKind::kStats: {
      service::StatsSnapshot s = RollupStats();
      std::vector<uint8_t> payload = net::EncodeStats(s, h.version);
      return conn->QueueReply(net::MessageKind::kStatsResult, h.request_id,
                              payload, h.version);
    }
    case net::MessageKind::kMetrics: {
      if (h.version < 2) {
        return QueueError(conn, h.request_id, h.version,
                          net::WireError::kUnknownKind,
                          "METRICS requires protocol v2");
      }
      std::string text = obs::RenderPrometheus(*registry_);
      if (text.size() + 4 > config_.limits.max_payload_bytes) {
        text.resize(config_.limits.max_payload_bytes > 4
                        ? config_.limits.max_payload_bytes - 4
                        : 0);
        size_t nl = text.rfind('\n');
        text.resize(nl == std::string::npos ? 0 : nl + 1);
      }
      std::vector<uint8_t> payload = net::EncodeMetricsResult(text);
      return conn->QueueReply(net::MessageKind::kMetricsResult, h.request_id,
                              payload, h.version);
    }
    case net::MessageKind::kFollow:
    case net::MessageKind::kUnfollow:
    case net::MessageKind::kRelabel:
      if (h.version < 3) {
        return QueueError(conn, h.request_id, h.version,
                          net::WireError::kUnknownKind,
                          "mutation ops require protocol v3");
      }
      return QueueError(conn, h.request_id, h.version,
                        net::WireError::kInvalidArgument,
                        "the partitioned tier serves read-only "
                        "(mutations are not routed)");
    case net::MessageKind::kRecommendPartial:
    case net::MessageKind::kLandmarkFetch:
      return QueueError(conn, h.request_id, h.version,
                        net::WireError::kInvalidArgument,
                        "shard ops are answered by shards, not the router");
    case net::MessageKind::kRecommend:
    case net::MessageKind::kRecommendBatch:
      break;
    default:
      return QueueError(conn, h.request_id, h.version,
                        net::WireError::kUnknownKind,
                        "unhandled message kind " +
                            std::to_string(static_cast<uint16_t>(h.kind)));
  }

  std::vector<net::RecommendRequest> decoded;
  if (h.kind == net::MessageKind::kRecommend) {
    net::RecommendRequest r;
    if (util::Status st = net::DecodeRecommend(frame.payload, config_.limits,
                                               h.version, &r);
        !st.ok()) {
      return QueueError(conn, h.request_id, h.version,
                        net::WireError::kBadFrame, st.message());
    }
    decoded.push_back(std::move(r));
  } else {
    if (util::Status st = net::DecodeRecommendBatch(
            frame.payload, config_.limits, h.version, &decoded);
        !st.ok()) {
      return QueueError(conn, h.request_id, h.version,
                        net::WireError::kBadFrame, st.message());
    }
  }
  // Same admission checks a single-node server applies: bounds against the
  // plan's universe, worst-case reply size against the frame cap.
  const size_t per_list_overhead =
      h.version >= 5 ? 13 : h.version >= 3 ? 12 : 4;
  size_t reply_bytes =
      4 + (h.version >= 4 ? net::kCoordTrailerBytes : 0);
  for (const net::RecommendRequest& r : decoded) {
    if (r.user >= plan_.num_nodes() || r.topic >= plan_.num_topics()) {
      return QueueError(
          conn, h.request_id, h.version, net::WireError::kInvalidArgument,
          "query out of range: user " + std::to_string(r.user) + " (nodes " +
              std::to_string(plan_.num_nodes()) + "), topic " +
              std::to_string(r.topic) + " (topics " +
              std::to_string(plan_.num_topics()) + ")");
    }
    reply_bytes += per_list_overhead +
                   static_cast<size_t>(r.top_n) * net::kResultEntryBytes;
  }
  if (reply_bytes > config_.limits.max_payload_bytes) {
    return QueueError(conn, h.request_id, h.version,
                      net::WireError::kInvalidArgument,
                      "reply would exceed the " +
                          std::to_string(config_.limits.max_payload_bytes) +
                          "-byte frame payload cap");
  }

  std::vector<Routed> routed;
  routed.reserve(decoded.size());
  for (const net::RecommendRequest& r : decoded) {
    util::Result<Routed> one = RouteOne(r);
    if (!one.ok()) {
      // First failure speaks for the frame, mirroring the single-node
      // batch contract.
      const util::StatusCode code = one.status().code();
      const net::WireError wire =
          code == util::StatusCode::kDeadlineExceeded
              ? net::WireError::kDeadlineExceeded
              : code == util::StatusCode::kInvalidArgument
                    ? net::WireError::kInvalidArgument
                    : net::WireError::kInternal;
      return QueueError(conn, h.request_id, h.version, wire,
                        one.status().message());
    }
    routed.push_back(std::move(*one));
  }

  if (h.kind == net::MessageKind::kRecommend) {
    Routed& one = routed.front();
    std::vector<uint8_t> payload =
        net::EncodeResult(one.entries, one.graph_epoch, h.version, one.coord,
                          one.served_tier);
    return conn->QueueReply(net::MessageKind::kResult, h.request_id, payload,
                            h.version);
  }
  std::vector<net::RankedList> lists;
  std::vector<uint64_t> epochs;
  std::vector<uint8_t> tiers;
  lists.reserve(routed.size());
  epochs.reserve(routed.size());
  tiers.reserve(routed.size());
  // Per-frame trailer: one partially-merged query marks the whole batch,
  // and the frame reports the worst shard coverage seen. Tiers stay
  // per-list (like epochs): each query names the tier that served it.
  net::CoordTrailer coord;
  coord.shards_total = static_cast<uint16_t>(plan_.num_shards());
  coord.shards_answered = coord.shards_total;
  for (Routed& one : routed) {
    if (one.coord.partial != 0) coord.partial = 1;
    coord.shards_answered =
        std::min(coord.shards_answered, one.coord.shards_answered);
    epochs.push_back(one.graph_epoch);
    tiers.push_back(one.served_tier);
    lists.push_back(std::move(one.entries));
  }
  std::vector<uint8_t> payload =
      net::EncodeResultBatch(lists, epochs, h.version, coord, tiers);
  return conn->QueueReply(net::MessageKind::kResultBatch, h.request_id,
                          payload, h.version);
}

template <typename Fn>
auto Router::CallShard(uint32_t shard, Fn&& fn)
    -> decltype(fn(std::declval<net::Client&>())) {
  metrics_.fanout->Increment();
  util::WallTimer timer;
  auto checkout = pool_->Checkout(shard);
  if (!checkout.ok()) {
    metrics_.shard_errors->Increment();
    return checkout.status();
  }
  auto result = fn(**checkout);
  metrics_.shard_latency_us->Record(
      static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6));
  if (result.ok()) {
    pool_->Return(shard, std::move(*checkout));
  } else {
    metrics_.shard_errors->Increment();  // connection dropped, not pooled
  }
  return result;
}

uint32_t Router::ShardDeadlineMs(uint32_t client_deadline_ms) const {
  if (client_deadline_ms == 0) return config_.shard_timeout_ms;
  if (config_.shard_timeout_ms == 0) return client_deadline_ms;
  return std::min(client_deadline_ms, config_.shard_timeout_ms);
}

bool Router::IsShardLoss(const util::Status& status,
                         uint32_t client_deadline_ms) const {
  switch (status.code()) {
    case util::StatusCode::kUnavailable:  // refused / shed / clean close
    case util::StatusCode::kIoError:      // EPIPE / ECONNRESET mid-RPC
      return true;
    case util::StatusCode::kDeadlineExceeded:
      // Only the router's own shard_timeout_ms backstop expired: the
      // client asked for no deadline, so it must not see an error a
      // single-node server would never have produced.
      return client_deadline_ms == 0;
    default:
      return false;
  }
}

util::Result<Router::Routed> Router::RouteOne(
    const net::RecommendRequest& req) {
  metrics_.requests->Increment();
  const uint32_t home = plan_.ShardOf(req.user);
  return config_.landmark_mode ? RouteLandmark(req, home)
                               : RouteExact(req, home);
}

util::Result<Router::Routed> Router::RouteExact(
    const net::RecommendRequest& req, uint32_t home) {
  Routed out;
  out.coord.shards_total = static_cast<uint16_t>(plan_.num_shards());
  net::RecommendRequest sreq = req;
  sreq.deadline_ms = ShardDeadlineMs(req.deadline_ms);
  auto reply =
      CallShard(home, [&](net::Client& c) { return c.RecommendEx(sreq); });
  if (!reply.ok()) {
    if (IsShardLoss(reply.status(), req.deadline_ms)) {
      if (!config_.degrade_partial) {
        return util::Status::Unavailable("home shard " + std::to_string(home) +
                                         " lost: " + reply.status().message());
      }
      // Home shard down/overloaded: degrade, never hang or fail the client.
      metrics_.partial->Increment();
      out.coord.partial = 1;
      out.coord.shards_answered = 0;
      return out;
    }
    return reply.status();  // relayed unchanged (deadline, invalid, ...)
  }
  out.entries = std::move(reply->entries);
  out.graph_epoch = reply->graph_epoch;
  out.served_tier = reply->served_tier;  // max over {home} = the home's tier
  out.coord.shards_answered = 1;
  return out;
}

util::Result<Router::Routed> Router::RouteLandmark(
    const net::RecommendRequest& req, uint32_t home) {
  Routed out;
  out.coord.shards_total = static_cast<uint16_t>(plan_.num_shards());
  net::RecommendRequest sreq = req;
  sreq.deadline_ms = ShardDeadlineMs(req.deadline_ms);
  auto partial = CallShard(
      home, [&](net::Client& c) { return c.RecommendPartial(sreq); });
  if (!partial.ok()) {
    if (IsShardLoss(partial.status(), req.deadline_ms)) {
      if (!config_.degrade_partial) {
        return util::Status::Unavailable("home shard " + std::to_string(home) +
                                         " lost: " +
                                         partial.status().message());
      }
      metrics_.partial->Increment();
      out.coord.partial = 1;
      out.coord.shards_answered = 0;
      return out;
    }
    return partial.status();
  }
  net::PartialReply preply = std::move(*partial);
  out.graph_epoch = preply.graph_epoch;
  // The merged ranking is the landmark approximation by construction, so
  // the routed tier is kApprox regardless of how relaxed the shards were.
  out.served_tier = static_cast<uint8_t>(core::Tier::kApprox);

  // Gather the stored lists of landmarks homed off the home shard, one
  // LANDMARK_FETCH per distinct home. A failed fetch degrades those
  // landmarks' contributions (partial merge), mirroring the shard-down
  // policy, instead of failing the query.
  std::vector<std::vector<uint32_t>> want(plan_.num_shards());
  for (const net::PartialRecord& rec : preply.records) {
    if ((rec.flags & net::kPartialFlagLandmark) != 0 &&
        (rec.flags & net::kPartialFlagInline) == 0) {
      want[plan_.ShardOf(rec.node)].push_back(rec.node);
    }
  }
  uint16_t contacted = 1;  // the home shard
  uint16_t answered = 1;
  std::vector<net::LandmarkVectorsReply> fetched;
  for (uint32_t s = 0; s < plan_.num_shards(); ++s) {
    if (want[s].empty()) continue;
    ++contacted;
    metrics_.landmark_fetches->Increment();
    auto vectors = CallShard(s, [&](net::Client& c) {
      return c.FetchLandmarks(req.topic, want[s]);
    });
    if (!vectors.ok()) {
      if (!config_.degrade_partial) {
        return util::Status::Unavailable("landmark shard " +
                                         std::to_string(s) + " lost: " +
                                         vectors.status().message());
      }
      continue;
    }
    ++answered;
    fetched.push_back(std::move(*vectors));
  }
  std::unordered_map<uint32_t, const net::LandmarkList*> lists;
  for (const net::LandmarkList& l : preply.lists) lists[l.landmark] = &l;
  for (const net::LandmarkVectorsReply& reply : fetched) {
    for (const net::LandmarkList& l : reply.lists) lists[l.landmark] = &l;
  }

  // Replay of ApproxRecommender::ScoresFlat's combine loop over the wire
  // records: records preserve reached order and each stored list is a
  // verbatim copy, so every per-key addition happens in the same order,
  // with the same ComposeViaLandmark expression, as on a single node —
  // the accumulated doubles are bit-identical.
  const uint32_t u = req.user;
  util::FlatMap<graph::NodeId, double> scores(preply.records.size() * 2);
  bool missing_list = false;
  for (const net::PartialRecord& rec : preply.records) {
    scores[rec.node] += rec.sigma;
    if ((rec.flags & net::kPartialFlagLandmark) == 0) continue;
    auto it = lists.find(rec.node);
    if (it == lists.end()) {
      missing_list = true;  // fetch failed or plan/shard disagreement
      continue;
    }
    for (const net::LandmarkEntry& e : it->second->entries) {
      if (e.node == u) continue;
      scores[e.node] += landmark::ComposeViaLandmark(
          rec.sigma, rec.topo_alphabeta, e.sigma, e.topo_beta);
    }
  }

  // Identical ranking semantics to the single-node path: RankingBuilder
  // drops non-positive scores, the query user, and excluded ids; TopK's
  // total order (score desc, id asc) makes offer order irrelevant.
  core::Query q;
  q.user = req.user;
  q.topic = static_cast<topics::TopicId>(req.topic);
  q.top_n = req.top_n;
  q.exclude.assign(req.exclude.begin(), req.exclude.end());
  core::RankingBuilder builder(q);
  for (const auto& [node, score] : scores) builder.Offer(node, score);
  out.entries = builder.Take().entries;

  out.coord.shards_answered = answered;
  if (answered < contacted || missing_list) {
    if (!config_.degrade_partial) {
      return util::Status::Unavailable(
          "landmark merge incomplete with degrade off");
    }
    metrics_.partial->Increment();
    out.coord.partial = 1;
  }
  return out;
}

service::StatsSnapshot Router::RollupStats() {
  service::StatsSnapshot s;
  uint32_t up = 0;
  for (uint32_t shard = 0; shard < plan_.num_shards(); ++shard) {
    auto snap = CallShard(shard, [](net::Client& c) { return c.Stats(); });
    if (!snap.ok()) continue;
    ++up;
    s.queries += snap->queries;
    s.batches += snap->batches;
    s.cache_hits += snap->cache_hits;
    s.cache_misses += snap->cache_misses;
    s.invalidations += snap->invalidations;
    s.deadline_exceeded += snap->deadline_exceeded;
    s.shed_overload += snap->shed_overload;
    s.shed_deadline += snap->shed_deadline;
    s.connections_accepted += snap->connections_accepted;
    s.connections_open += snap->connections_open;
    s.tier_exact += snap->tier_exact;
    s.tier_approx += snap->tier_approx;
    s.tier_stale += snap->tier_stale;
    s.degraded += snap->degraded;
    s.params_epoch = std::max(s.params_epoch, snap->params_epoch);
    // Percentile floors: the fleet's p99 is at least the worst shard's.
    s.p50_us = std::max(s.p50_us, snap->p50_us);
    s.p90_us = std::max(s.p90_us, snap->p90_us);
    s.p99_us = std::max(s.p99_us, snap->p99_us);
  }
  s.shards_total = plan_.num_shards();
  s.shards_up = up;
  return s;
}

}  // namespace mbr::coord
