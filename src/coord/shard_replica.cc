#include "coord/shard_replica.h"

#include <queue>
#include <utility>

#include "util/logging.h"

namespace mbr::coord {

graph::LabeledGraph BuildHaloSubgraph(const graph::LabeledGraph& full,
                                      const ShardPlan& plan, uint32_t shard,
                                      uint32_t halo_depth) {
  const graph::NodeId n = full.num_nodes();
  MBR_CHECK(plan.num_nodes() == n);
  MBR_CHECK(shard < plan.num_shards());

  // Multi-source out-BFS from the owned nodes. depth[v] is the hop count
  // at which v was first reached; nodes at depth <= halo_depth contribute
  // their out-adjacency (an exploration of depth halo_depth + 1 expands
  // exactly those frontiers).
  std::vector<uint32_t> depth(n, UINT32_MAX);
  std::queue<graph::NodeId> frontier;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (plan.ShardOf(v) == shard) {
      depth[v] = 0;
      frontier.push(v);
    }
  }
  while (!frontier.empty()) {
    const graph::NodeId u = frontier.front();
    frontier.pop();
    if (depth[u] >= halo_depth) continue;
    for (graph::NodeId v : full.OutNeighbors(u)) {
      if (depth[v] != UINT32_MAX) continue;
      depth[v] = depth[u] + 1;
      frontier.push(v);
    }
  }

  graph::GraphBuilder b(n, full.num_topics());
  for (graph::NodeId v = 0; v < n; ++v) {
    b.SetNodeLabels(v, full.NodeLabels(v));
    if (depth[v] > halo_depth) continue;  // UINT32_MAX for unreached nodes
    std::span<const graph::NodeId> nbrs = full.OutNeighbors(v);
    std::span<const topics::TopicSet> labs = full.OutEdgeLabels(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      b.AddEdge(v, nbrs[i], labs[i]);
    }
  }
  return std::move(b).Build();
}

util::Result<std::unique_ptr<ShardContext>> BuildShardContext(
    const graph::LabeledGraph& full, const topics::SimilarityMatrix& sim,
    const ShardPlan& plan, uint32_t shard,
    const landmark::LandmarkIndex* global_index,
    service::EngineConfig engine_config) {
  if (plan.num_nodes() != full.num_nodes()) {
    return util::Status::InvalidArgument(
        "shard plan covers " + std::to_string(plan.num_nodes()) +
        " nodes but the graph has " + std::to_string(full.num_nodes()));
  }
  if (static_cast<int>(plan.num_topics()) != full.num_topics()) {
    return util::Status::InvalidArgument(
        "shard plan topic count does not match the graph");
  }
  if (shard >= plan.num_shards()) {
    return util::Status::InvalidArgument(
        "shard " + std::to_string(shard) + " outside plan of " +
        std::to_string(plan.num_shards()) + " shards");
  }
  // Landmark-mode explorations run to query_depth (2); exact engines run
  // to params.max_depth. Either way the halo must cover depth - 1 hops.
  const uint32_t needed =
      global_index != nullptr
          ? engine_config.approx.query_depth - 1
          : engine_config.params.max_depth - 1;
  if (plan.halo_depth() < needed) {
    return util::Status::InvalidArgument(
        "plan halo depth " + std::to_string(plan.halo_depth()) +
        " cannot serve explorations needing depth " + std::to_string(needed));
  }

  auto ctx = std::make_unique<ShardContext>();
  ctx->shard = shard;
  ctx->shards_total = plan.num_shards();
  ctx->owned = plan.OwnedMask(shard);
  ctx->subgraph = std::make_unique<graph::LabeledGraph>(
      BuildHaloSubgraph(full, plan, shard, plan.halo_depth()));
  // Authority is a global quantity — always from the full graph.
  ctx->authority = std::make_unique<core::AuthorityIndex>(full);
  if (global_index != nullptr) {
    ctx->index = std::make_unique<landmark::LandmarkIndex>(
        global_index->Restricted(ctx->owned));
    engine_config.landmarks = ctx->index.get();
  } else {
    engine_config.landmarks = nullptr;
  }
  ctx->engine = std::make_unique<service::QueryEngine>(
      *ctx->subgraph, *ctx->authority, sim, engine_config);
  return ctx;
}

}  // namespace mbr::coord
