#ifndef MBR_COORD_ROUTER_H_
#define MBR_COORD_ROUTER_H_

// The coordinator/router tier (DESIGN.md §6.7): one process that makes N
// `mbrec serve --shard <i>` processes look like a single recommender.
//
// Clients speak the ordinary v1–v4 protocol to the router (RECOMMEND,
// RECOMMEND_BATCH, STATS, METRICS, PING, SHUTDOWN); the router
// scatter-gathers over the shard fleet through a pooled net::Client set
// and merges shard answers so the routed reply is **byte-identical** to
// what a single-node QueryEngine over the full graph would produce:
//
//   * landmark mode: the user's home shard answers RECOMMEND_PARTIAL with
//     the decomposed exploration records (reached order preserved) plus
//     the inline stored lists of its own landmarks; lists of landmarks
//     homed elsewhere are gathered via LANDMARK_FETCH. The router then
//     replays the exact ScoresFlat combine loop — same per-key addition
//     order, same landmark::ComposeViaLandmark expression (one inline
//     definition shared with approx.cc, so compiler contraction cannot
//     diverge) — and ranks through the same core::RankingBuilder /
//     util::TopK total order (score desc, id asc). Only landmark
//     contributions ever cross shard boundaries (Prop. 4).
//   * exact mode: exploration never leaves the home shard's halo
//     (halo_depth >= max_depth - 1), so the router simply forwards the
//     RECOMMEND to the home shard and relays the reply.
//
// Partial-result policy: each shard call gets a deadline derived from the
// client deadline (min with shard_timeout_ms). A shard that is down,
// overloaded, or times out degrades the reply to a *partial* merge — the
// v4 trailer carries partial=1 and the answered/total shard counts, and
// mbr_coord_partial_total is bumped — rather than failing or hanging the
// client (`degrade_partial = false` turns that loss into an ERROR
// instead, for deployments that prefer failing fast over partial
// answers). Errors a single-node server would return for the same query
// (DEADLINE_EXCEEDED, INVALID_ARGUMENT) are relayed as ERROR unchanged.
// Mutations are rejected: the partitioned tier serves read-only.
//
// Tier merge (protocol v5): every shard reply names the degradation-
// ladder tier that served it, and the routed reply carries the *max*
// (most degraded) tier over the shard replies that fed it — a pressured
// shard degrades the whole routed answer, composing with (but orthogonal
// to) the v4 partial trailer. In landmark mode the merged ranking is the
// landmark approximation by construction, so the routed tier is at least
// kApprox.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "coord/shard_plan.h"
#include "net/client.h"
#include "net/client_pool.h"
#include "net/connection.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "service/serving_stats.h"
#include "util/status.h"

namespace mbr::coord {

struct RouterConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral (see Router::port())
  uint32_t max_connections = 64;
  // Per-shard round-trip budget. The wire deadline sent to a shard is
  // min(client deadline_ms, shard_timeout_ms); the transport backstop is
  // shard_timeout_ms so a hung shard can never hang the client.
  uint32_t shard_timeout_ms = 2000;
  // true: RECOMMEND_PARTIAL + LANDMARK_FETCH merge (landmark engines on
  // the shards). false: forward RECOMMEND to the home shard (exact
  // engines; needs plan halo_depth >= max_depth - 1).
  bool landmark_mode = true;
  // true (default): a lost shard (down / shed / timed out) degrades the
  // reply to a partial merge. false: it becomes an ERROR (UNAVAILABLE) —
  // the `mbrec route --degrade off` policy.
  bool degrade_partial = true;
  net::WireLimits limits;
  // Template for the per-shard client connections (timeouts, reconnect
  // backoff). host/port/protocol_version are overwritten per shard.
  net::ClientConfig shard_client;
  // mbr_coord_* series registry. nullptr = router-owned private registry.
  obs::Registry* registry = nullptr;
  // Idle pooled connections kept per shard.
  size_t pool_idle = 4;
};

class Router {
 public:
  // Endpoints are taken from `plan` (after any SetEndpoint overrides).
  Router(const ShardPlan& plan, const RouterConfig& config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Binds, listens, and spawns the accept loop.
  util::Status Start();
  // The bound port (useful with config.port == 0). Valid after Start().
  uint16_t port() const { return port_; }
  // Initiates shutdown: stop accepting, wake connection threads. Idempotent.
  void RequestStop();
  // Blocks until the accept loop and every connection thread have exited.
  void Wait();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // The coordinator STATS rollup: sum of the shard snapshots (counters
  // summed, percentile floors maxed) plus shards_total/shards_up.
  service::StatsSnapshot RollupStats();

  obs::Registry& registry() { return *registry_; }

 private:
  // One routed RECOMMEND: the merged ranked list, the home shard's graph
  // epoch, the max served tier over contributing shard replies, and the
  // coordinator trailer. A non-OK result is relayed to the client as
  // ERROR (the same statuses a single-node server would send).
  struct Routed {
    net::RankedList entries;
    uint64_t graph_epoch = 0;
    uint8_t served_tier = 0;
    net::CoordTrailer coord;
  };

  void AcceptLoop();
  void ServeConnection(int fd);
  // Returns false when the connection must close (fatal framing error or
  // SHUTDOWN).
  bool HandleClientFrame(net::Connection* conn,
                         const net::Connection::Frame& frame);
  bool QueueError(net::Connection* conn, uint64_t request_id,
                  uint16_t version, net::WireError code,
                  const std::string& message);

  util::Result<Routed> RouteOne(const net::RecommendRequest& req);
  util::Result<Routed> RouteLandmark(const net::RecommendRequest& req,
                                     uint32_t home);
  util::Result<Routed> RouteExact(const net::RecommendRequest& req,
                                  uint32_t home);
  // Runs `fn(client)` against `shard` through the pool, recording shard
  // latency and errors; the connection returns to the pool only on success.
  template <typename Fn>
  auto CallShard(uint32_t shard, Fn&& fn)
      -> decltype(fn(std::declval<net::Client&>()));
  // min(client deadline, shard_timeout_ms); 0 only if both are unset.
  uint32_t ShardDeadlineMs(uint32_t client_deadline_ms) const;
  // Is this shard-RPC failure an infrastructure loss (down / shed /
  // conn-loss / the shard_timeout_ms backstop) — degrade to a partial
  // merge — or an error a single-node server would also have returned for
  // this query (relay as ERROR)? A deadline expiry counts as loss only
  // when the client itself set no deadline (the expired budget was purely
  // the router's backstop).
  bool IsShardLoss(const util::Status& status,
                   uint32_t client_deadline_ms) const;

  struct Metrics {
    obs::Counter* requests = nullptr;          // client RECOMMENDs routed
    obs::Counter* fanout = nullptr;            // shard RPCs issued
    obs::Counter* partial = nullptr;           // replies degraded to partial
    obs::Counter* shard_errors = nullptr;      // failed shard RPCs
    obs::Counter* landmark_fetches = nullptr;  // LANDMARK_FETCH RPCs
    obs::Histogram* shard_latency_us = nullptr;
  };

  ShardPlan plan_;
  RouterConfig config_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  Metrics metrics_;
  std::unique_ptr<net::ClientPool> pool_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<uint32_t> open_connections_{0};

  std::thread accept_thread_;
  std::mutex threads_mu_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace mbr::coord

#endif  // MBR_COORD_ROUTER_H_
