#include "coord/shard_plan.h"

#include "util/serde.h"

namespace mbr::coord {

namespace {

// Section ids of the kShardPlan container.
constexpr uint32_t kSecHeader = 1;     // counts, strategy, halo, stats
constexpr uint32_t kSecAssignment = 2; // part_of array
constexpr uint32_t kSecEndpoints = 3;  // per-shard host bytes + port

constexpr uint32_t kNumStrategies =
    static_cast<uint32_t>(
        distributed::PartitionStrategy::kCommunityPopularity) +
    1;

}  // namespace

ShardPlan::ShardPlan(distributed::Partitioning partitioning,
                     distributed::PartitionStrategy strategy,
                     uint32_t halo_depth, uint32_t num_topics,
                     std::vector<ShardEndpoint> endpoints)
    : partitioning_(std::move(partitioning)),
      strategy_(strategy),
      halo_depth_(halo_depth),
      num_topics_(num_topics),
      endpoints_(std::move(endpoints)) {
  MBR_CHECK(partitioning_.num_partitions > 0);
  MBR_CHECK(endpoints_.size() == partitioning_.num_partitions);
}

std::vector<bool> ShardPlan::OwnedMask(uint32_t shard) const {
  std::vector<bool> owned(partitioning_.part_of.size(), false);
  for (size_t v = 0; v < partitioning_.part_of.size(); ++v) {
    owned[v] = partitioning_.part_of[v] == shard;
  }
  return owned;
}

void ShardPlan::SetEndpoint(uint32_t shard, ShardEndpoint ep) {
  MBR_CHECK(shard < endpoints_.size());
  endpoints_[shard] = std::move(ep);
}

util::serde::Writer ShardPlan::BuildContainer() const {
  util::serde::Writer w(util::serde::ArtifactKind::kShardPlan,
                        kFormatVersion);
  w.BeginSection(kSecHeader);
  w.PutU32(partitioning_.num_partitions);
  w.PutU64(partitioning_.part_of.size());
  w.PutU32(num_topics_);
  w.PutU32(static_cast<uint32_t>(strategy_));
  w.PutU32(halo_depth_);
  w.PutDouble(partitioning_.edge_cut);
  w.PutDouble(partitioning_.balance);
  w.EndSection();

  w.BeginSection(kSecAssignment);
  w.PutPodArray(partitioning_.part_of);
  w.EndSection();

  w.BeginSection(kSecEndpoints);
  for (const ShardEndpoint& ep : endpoints_) {
    w.PutPodArray(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(ep.host.data()), ep.host.size()));
    w.PutU32(ep.port);
  }
  w.EndSection();
  return w;
}

std::vector<uint8_t> ShardPlan::Serialize() const {
  return BuildContainer().buffer();
}

util::Status ShardPlan::SaveTo(const std::string& path) const {
  return BuildContainer().WriteToFile(path);
}

util::Result<ShardPlan> ShardPlan::LoadFrom(const std::string& path) {
  auto reader = util::serde::Reader::FromFile(
      path, util::serde::ArtifactKind::kShardPlan);
  if (!reader.ok()) return reader.status();
  return FromReader(std::move(*reader));
}

util::Result<ShardPlan> ShardPlan::LoadFromBuffer(
    std::span<const uint8_t> data) {
  auto reader = util::serde::Reader::FromBuffer(
      data, util::serde::ArtifactKind::kShardPlan);
  if (!reader.ok()) return reader.status();
  return FromReader(std::move(*reader));
}

util::Result<ShardPlan> ShardPlan::FromReader(util::serde::Reader r) {
  if (r.version() != kFormatVersion) {
    return util::Status::InvalidArgument(
        "unsupported shard plan format version " +
        std::to_string(r.version()));
  }
  ShardPlan plan;

  MBR_RETURN_IF_ERROR(r.EnterSection(kSecHeader));
  uint32_t num_shards = 0;
  uint64_t num_nodes = 0;
  uint32_t strategy_raw = 0;
  MBR_RETURN_IF_ERROR(r.ReadU32(&num_shards));
  MBR_RETURN_IF_ERROR(r.ReadU64(&num_nodes));
  MBR_RETURN_IF_ERROR(r.ReadU32(&plan.num_topics_));
  MBR_RETURN_IF_ERROR(r.ReadU32(&strategy_raw));
  MBR_RETURN_IF_ERROR(r.ReadU32(&plan.halo_depth_));
  MBR_RETURN_IF_ERROR(r.ReadDouble(&plan.partitioning_.edge_cut));
  MBR_RETURN_IF_ERROR(r.ReadDouble(&plan.partitioning_.balance));
  MBR_RETURN_IF_ERROR(r.ExitSection());
  if (num_shards == 0 || num_shards > kMaxShards) {
    return util::Status::InvalidArgument(
        "shard count " + std::to_string(num_shards) +
        " outside [1, " + std::to_string(kMaxShards) + "]");
  }
  if (num_nodes > kMaxNodes) {
    return util::Status::InvalidArgument("node count " +
                                         std::to_string(num_nodes) +
                                         " exceeds bound");
  }
  if (strategy_raw >= kNumStrategies) {
    return util::Status::InvalidArgument("unknown partition strategy " +
                                         std::to_string(strategy_raw));
  }
  plan.strategy_ = static_cast<distributed::PartitionStrategy>(strategy_raw);
  plan.partitioning_.num_partitions = num_shards;

  MBR_RETURN_IF_ERROR(r.EnterSection(kSecAssignment));
  MBR_RETURN_IF_ERROR(
      r.ReadPodArray(&plan.partitioning_.part_of, num_nodes));
  MBR_RETURN_IF_ERROR(r.ExitSection());
  if (plan.partitioning_.part_of.size() != num_nodes) {
    return util::Status::InvalidArgument(
        "assignment length does not match declared node count");
  }
  for (uint32_t p : plan.partitioning_.part_of) {
    if (p >= num_shards) {
      return util::Status::InvalidArgument(
          "assignment names shard " + std::to_string(p) + " of " +
          std::to_string(num_shards));
    }
  }

  MBR_RETURN_IF_ERROR(r.EnterSection(kSecEndpoints));
  plan.endpoints_.resize(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    std::vector<uint8_t> host;
    MBR_RETURN_IF_ERROR(r.ReadPodArray(&host, kMaxHostBytes));
    if (host.empty()) {
      return util::Status::InvalidArgument("empty endpoint host");
    }
    plan.endpoints_[i].host.assign(
        reinterpret_cast<const char*>(host.data()), host.size());
    MBR_RETURN_IF_ERROR(r.ReadU32(&plan.endpoints_[i].port));
    if (plan.endpoints_[i].port > 65535) {
      return util::Status::InvalidArgument(
          "endpoint port " + std::to_string(plan.endpoints_[i].port) +
          " outside [0, 65535]");
    }
  }
  MBR_RETURN_IF_ERROR(r.ExitSection());
  MBR_RETURN_IF_ERROR(r.ExpectEnd());
  return plan;
}

}  // namespace mbr::coord
