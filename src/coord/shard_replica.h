#ifndef MBR_COORD_SHARD_REPLICA_H_
#define MBR_COORD_SHARD_REPLICA_H_

// Per-shard warm-start state of a partitioned deployment (DESIGN.md §6.7).
//
// A shard serves queries whose user it owns under the plan. To make the
// shard-local exploration byte-identical to single-node, the shard keeps a
// *halo subgraph*: the full node-id universe, but out-adjacency only for
// nodes within `plan.halo_depth()` out-hops of an owned node. A depth-d
// exploration from an owned user expands the out-edges of nodes at depth
// < d, so halo_depth = d - 1 guarantees every edge the single-node scorer
// would traverse exists in the halo — CSR adjacency is sorted by neighbor
// id on both graphs, so OutNeighbors() of any halo-interior node is the
// identical span of ids and labels. Extra reachable edges (the halo is an
// over-approximation for multi-shard owners) are never traversed and
// cannot perturb scores.
//
// Authority is global by definition (follower counts over the FULL graph,
// §3.2), so the shard's AuthorityIndex is built from the full graph, not
// the halo. The landmark index keeps the global landmark set and mask
// (pruned exploration must stop at the same nodes everywhere) but stores
// the inverted lists of locally-homed landmarks only — Restricted() copies
// kept lists verbatim, so a shard's list is bit-identical to single-node.

#include <cstdint>
#include <memory>
#include <vector>

#include "coord/shard_plan.h"
#include "core/authority.h"
#include "graph/labeled_graph.h"
#include "landmark/index.h"
#include "service/query_engine.h"
#include "topics/similarity_matrix.h"
#include "util/status.h"

namespace mbr::coord {

// The halo subgraph of `shard`: same num_nodes/num_topics/node labels as
// `full`, out-edges of every node within `halo_depth` out-hops of an
// owned node (owned nodes themselves are depth 0).
graph::LabeledGraph BuildHaloSubgraph(const graph::LabeledGraph& full,
                                      const ShardPlan& plan, uint32_t shard,
                                      uint32_t halo_depth);

// Everything one `mbrec serve --shard <i>` process holds. Heap state is
// owned through unique_ptrs so the context can be moved after the engine
// has captured references into it.
struct ShardContext {
  uint32_t shard = 0;
  uint32_t shards_total = 1;
  std::vector<bool> owned;  // full node universe
  std::unique_ptr<graph::LabeledGraph> subgraph;
  std::unique_ptr<core::AuthorityIndex> authority;  // from the FULL graph
  // Restricted landmark index (null for exact-mode shards).
  std::unique_ptr<landmark::LandmarkIndex> index;
  std::unique_ptr<service::QueryEngine> engine;
};

// Builds a shard's serving state from the full graph and the plan.
// `global_index` may be null (exact-mode shard: the engine runs converged
// scoring over the halo, which needs halo_depth >= params.max_depth - 1).
// `sim` must outlive the returned context (the engine keeps a pointer);
// `full` and `global_index` are only read during the build.
util::Result<std::unique_ptr<ShardContext>> BuildShardContext(
    const graph::LabeledGraph& full, const topics::SimilarityMatrix& sim,
    const ShardPlan& plan, uint32_t shard,
    const landmark::LandmarkIndex* global_index,
    service::EngineConfig engine_config);

}  // namespace mbr::coord

#endif  // MBR_COORD_SHARD_REPLICA_H_
