#ifndef MBR_COORD_SHARD_PLAN_H_
#define MBR_COORD_SHARD_PLAN_H_

// The shard plan artifact — the single source of truth a partitioned
// deployment is wired from (DESIGN.md §6.7).
//
// A plan binds together (a) the node→shard assignment produced by one of
// the distributed:: partitioners (plus the strategy that produced it and
// its quality stats), (b) the halo depth the shard subgraphs were planned
// for (how many out-hops beyond owned nodes each shard replicates so a
// home-shard exploration is byte-identical to single-node, see
// shard_replica.h), and (c) the per-shard endpoint table the router
// scatter-gathers over. `mbrec shard-plan` writes one; `mbrec serve
// --shard <i>` and `mbrec route` consume it.
//
// Persistence uses the util::serde container (magic + kind + per-section
// CRC32, bounded reads): a malformed, truncated, or corrupted plan yields
// a util::Status, never UB — tests/serde_corruption_test.cc sweeps every
// truncation length and bit flip over a serialized plan.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "distributed/partition.h"
#include "util/status.h"

namespace mbr::util::serde {
class Reader;
class Writer;
}  // namespace mbr::util::serde

namespace mbr::coord {

struct ShardEndpoint {
  std::string host = "127.0.0.1";
  uint32_t port = 0;
};

class ShardPlan {
 public:
  // Current artifact format version (serde container header).
  static constexpr uint32_t kFormatVersion = 1;
  // Decode-side bounds: shards per plan, bytes per endpoint host, nodes
  // per assignment. Semantic caps checked before any allocation.
  static constexpr uint32_t kMaxShards = 4096;
  static constexpr uint32_t kMaxHostBytes = 256;
  static constexpr uint64_t kMaxNodes = uint64_t{1} << 31;

  ShardPlan() = default;
  ShardPlan(distributed::Partitioning partitioning,
            distributed::PartitionStrategy strategy, uint32_t halo_depth,
            uint32_t num_topics, std::vector<ShardEndpoint> endpoints);

  uint32_t num_shards() const { return partitioning_.num_partitions; }
  uint64_t num_nodes() const { return partitioning_.part_of.size(); }
  uint32_t num_topics() const { return num_topics_; }
  uint32_t halo_depth() const { return halo_depth_; }
  distributed::PartitionStrategy strategy() const { return strategy_; }
  const distributed::Partitioning& partitioning() const {
    return partitioning_;
  }
  const std::vector<ShardEndpoint>& endpoints() const { return endpoints_; }

  // Home shard of a node (and of a landmark's stored lists).
  uint32_t ShardOf(graph::NodeId v) const { return partitioning_.part_of[v]; }
  // Ownership mask of one shard, in the full node universe.
  std::vector<bool> OwnedMask(uint32_t shard) const;

  // The router may learn real ports only after shards bind ephemeral
  // ports; tools and tests overwrite the table in place.
  void SetEndpoint(uint32_t shard, ShardEndpoint ep);

  // Serialization round-trips byte-stably: Serialize(LoadFromBuffer(
  // Serialize(p))) == Serialize(p) (pinned by tests/coord_shard_plan_test).
  std::vector<uint8_t> Serialize() const;
  util::Status SaveTo(const std::string& path) const;
  static util::Result<ShardPlan> LoadFrom(const std::string& path);
  static util::Result<ShardPlan> LoadFromBuffer(std::span<const uint8_t> data);

 private:
  // Builds the serde container (shared by Serialize and SaveTo so the file
  // and the in-memory buffer can never drift).
  util::serde::Writer BuildContainer() const;
  // Decodes a validated serde container (shared by LoadFrom/LoadFromBuffer).
  static util::Result<ShardPlan> FromReader(util::serde::Reader r);

  distributed::Partitioning partitioning_;
  distributed::PartitionStrategy strategy_ =
      distributed::PartitionStrategy::kHash;
  uint32_t halo_depth_ = 1;
  uint32_t num_topics_ = 0;
  std::vector<ShardEndpoint> endpoints_;
};

}  // namespace mbr::coord

#endif  // MBR_COORD_SHARD_PLAN_H_
