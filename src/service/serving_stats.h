#ifndef MBR_SERVICE_SERVING_STATS_H_
#define MBR_SERVICE_SERVING_STATS_H_

// One plain-struct view of "how is this replica serving" shared by every
// consumer: the STATS wire message (net/protocol encodes the fields as-is),
// the `mbrec serve` periodic log line, and tests. Keeping a single snapshot
// type means the network answer and the operator log can never drift apart.

#include <cstdint>
#include <string>

#include "service/query_engine.h"

namespace mbr::service {

// Flat, trivially-copyable snapshot of serving counters. Engine-only
// deployments leave the shed/connection fields zero; the network server
// fills them in.
struct StatsSnapshot {
  uint64_t queries = 0;        // total queries admitted by the engine
  uint64_t batches = 0;        // RecommendMany calls
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t invalidations = 0;
  // Queries the engine answered kDeadlineExceeded (admission or worker).
  uint64_t deadline_exceeded = 0;
  uint64_t params_epoch = 0;
  // Admission control (network layer): requests refused with OVERLOADED,
  // and requests whose deadline expired before a dispatcher picked them up.
  uint64_t shed_overload = 0;
  uint64_t shed_deadline = 0;
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  // Latency percentiles out of the engine's log2 histogram (lower bounds,
  // microseconds; see EngineStats::LatencyPercentileMicros).
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  // Coordinator rollup (protocol v4): a coord::Router answers STATS with
  // the sum of its shards' snapshots plus these; single-node replicas
  // leave them zero.
  uint32_t shards_total = 0;
  uint32_t shards_up = 0;
  // Degradation ladder (protocol v5): replies served per tier, indexed by
  // core::Tier's numeric value, and replies served below the engine's
  // best tier.
  uint64_t tier_exact = 0;
  uint64_t tier_approx = 0;
  uint64_t tier_stale = 0;
  uint64_t degraded = 0;

  double HitRate() const {
    uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
};

// Projects the engine's counters (histogram included) into the flat
// snapshot; shed/connection fields are left for the caller.
StatsSnapshot MakeStatsSnapshot(const EngineStats& s);

// The canonical one-line rendering, e.g.
//   "queries=120 hit=41.7% shed=3+0 expired=1 conns=2/17 p50=128us
//    p90=512us p99=1024us tiers=100/15/5 degraded=20"
// (shed is overload+deadline at the network layer, expired is the engine's
// own deadline-exceeded count, conns is open/accepted, tiers is
// exact/approx/stale).
std::string FormatStatsLine(const StatsSnapshot& s);

}  // namespace mbr::service

#endif  // MBR_SERVICE_SERVING_STATS_H_
