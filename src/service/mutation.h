#ifndef MBR_SERVICE_MUTATION_H_
#define MBR_SERVICE_MUTATION_H_

// Live graph mutation for the serving path (ROADMAP item 2, paper §6).
//
// A MutationApplier owns a persistent dynamic::DeltaGraph plus a
// persistent dynamic::IncrementalAuthority over the warm-start base graph
// and turns wire FOLLOW/UNFOLLOW/RELABEL batches into serving-replica
// updates:
//
//   Apply(batch)  — validate + apply each record to the delta (and, on the
//                   incremental pipeline, feed the authority counters in
//                   true op order), and if anything applied: produce a new
//                   graph generation, a matching authority index, and
//                   QueryEngine::Rebind() onto them. Rebind bumps the
//                   engine epoch, so the graph epoch advances exactly
//                   once per applied batch and every cached result keyed
//                   on the old epoch becomes unreachable.
//
// Pipelines (DESIGN.md §6.9). The default kIncremental path costs O(Δ)
// per batch: DeltaGraph::MaterializeFrom patches only the touched
// adjacency rows of the previous generation, and the authority index is
// snapshotted from the incremental counters (touched rows + changed-max
// columns) instead of rescanned from the graph. With the default
// authority-refresh period of 1 the per-topic maxima are repaired exactly
// every batch (dirty-topic rescan) and serving output is byte-identical
// to kFullRebuild — pinned by tests/dynamic_serving_differential_test.cc.
// A refresh period n > 1 is the paper's "re-computed periodically" mode:
// between refreshes the stored maxima are upper bounds, so served
// authority is bounded above by the true values, and the drift is counted
// in mbr_authority_drift_topics_total.
//
// Graph generations are held as shared_ptrs: the previous generation is
// released only after Rebind() has drained the queries that might still
// be scoring against it, and the optional LandmarkRepairer keeps its own
// reference to the generation it repairs against, so a generation can
// never be freed under a reader.
//
// Per-record rejection (out-of-range ids, self-loops, duplicate follows,
// unfollowing an absent edge, empty/out-of-vocabulary label sets) is not
// an error: the batch answer counts applied vs rejected, mirroring the
// MUTATE_ACK wire payload. A batch where nothing applied does not bump
// the epoch.
//
// Thread-safety: Apply() serializes on `apply_mu_` — concurrent wire
// mutators are applied in some total order, each batch atomically with
// respect to queries (which only ever see fully materialized generations
// via Rebind's exclusive lock). The published generation pointers are
// guarded by the separate narrow `mu_`, which is never held across
// materialization or Rebind — current_graph()/current_authority() readers
// get an answer immediately even while a batch is draining the engine.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/authority.h"
#include "dynamic/delta_graph.h"
#include "dynamic/incremental_authority.h"
#include "graph/labeled_graph.h"
#include "obs/metrics.h"
#include "service/query_engine.h"
#include "topics/topic.h"

namespace mbr::service {

class LandmarkRepairer;

enum class MutationOp : uint8_t { kFollow, kUnfollow, kRelabel };

const char* MutationOpName(MutationOp op);

struct Mutation {
  MutationOp op = MutationOp::kFollow;
  graph::NodeId src = 0;
  graph::NodeId dst = 0;
  topics::TopicSet labels;  // ignored for kUnfollow
};

struct MutationOutcome {
  uint32_t applied = 0;
  uint32_t rejected = 0;
  uint64_t graph_epoch = 0;  // engine epoch after the batch
};

// How Apply() turns an applied batch into the next serving generation.
struct MutationConfig {
  enum class Pipeline : uint8_t {
    // Full DeltaGraph::Materialize + AuthorityIndex graph rescan per
    // batch — O(graph). Kept runnable for differential tests and the
    // apply-latency bench baseline.
    kFullRebuild,
    // O(Δ) path: MaterializeFrom + counter-snapshot authority.
    kIncremental,
  };
  Pipeline pipeline = Pipeline::kIncremental;
  // Period, in applied batches, of the *exact* per-topic max refresh (the
  // paper's "re-computed periodically"). 1 = repair dirty maxima every
  // batch (byte-identical serving, the default); n > 1 = defer, serving
  // bounded-above authority between refreshes. Only meaningful on the
  // incremental pipeline. Surfaced as `mbrec serve --authority-refresh`.
  uint32_t authority_refresh_batches = 1;
};

class MutationApplier {
 public:
  // `base` and `base_authority` are the generation the engine is currently
  // bound to (warm start); both must outlive the applier. Counters are
  // registered in the engine's registry.
  MutationApplier(const graph::LabeledGraph& base,
                  const core::AuthorityIndex& base_authority,
                  QueryEngine& engine, const MutationConfig& config = {});

  MutationApplier(const MutationApplier&) = delete;
  MutationApplier& operator=(const MutationApplier&) = delete;

  // Optional: notify a repairer after every applied batch. Install before
  // serving traffic; the repairer must outlive the applier (or be stopped
  // first).
  void SetRepairer(LandmarkRepairer* repairer) { repairer_ = repairer; }

  // Applies one ordered batch. Never throws on bad records — they count
  // as rejected. Thread-safe.
  MutationOutcome Apply(std::span<const Mutation> batch);

  uint64_t batches_applied() const;

  const MutationConfig& config() const { return config_; }

  // Topics whose stored authority max is currently an unverified upper
  // bound (0 whenever serving is exact; can be non-zero only with an
  // authority-refresh period > 1).
  int authority_drift_topics() const;

  // The live generation (for tests and the churn bench). The returned
  // pointers stay valid even across later batches. Never blocks on an
  // in-progress Apply()'s materialization or rebind.
  std::shared_ptr<const graph::LabeledGraph> current_graph() const;
  std::shared_ptr<const core::AuthorityIndex> current_authority() const;

 private:
  bool ApplyOne(const Mutation& m);

  QueryEngine* engine_;
  LandmarkRepairer* repairer_ = nullptr;
  MutationConfig config_;

  // Serializes Apply() end-to-end. Ordered before mu_ (Apply takes
  // apply_mu_ then briefly mu_; nothing takes them in the other order).
  mutable std::mutex apply_mu_;
  // Guarded by apply_mu_: the delta overlay, the incremental counters,
  // and the refresh cadence.
  dynamic::DeltaGraph delta_;
  dynamic::IncrementalAuthority inc_auth_;
  uint32_t batches_since_refresh_ = 0;

  // Narrow state lock: published generation + batch count only.
  mutable std::mutex mu_;
  std::shared_ptr<const graph::LabeledGraph> cur_graph_;
  std::shared_ptr<const core::AuthorityIndex> cur_authority_;
  uint64_t batches_applied_ = 0;

  obs::Counter* applied_total_ = nullptr;
  obs::Counter* rejected_total_ = nullptr;
  obs::Counter* batches_total_ = nullptr;
  obs::Counter* authority_refreshes_ = nullptr;
  obs::Counter* authority_drift_ = nullptr;
};

}  // namespace mbr::service

#endif  // MBR_SERVICE_MUTATION_H_
