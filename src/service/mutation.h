#ifndef MBR_SERVICE_MUTATION_H_
#define MBR_SERVICE_MUTATION_H_

// Live graph mutation for the serving path (ROADMAP item 2, paper §6).
//
// A MutationApplier owns a persistent dynamic::DeltaGraph over the
// warm-start base graph and turns wire FOLLOW/UNFOLLOW/RELABEL batches
// into serving-replica updates:
//
//   Apply(batch)  — validate + apply each record to the delta, and if
//                   anything applied: Materialize() a new graph
//                   generation, rebuild the authority index, and
//                   QueryEngine::Rebind() onto it. Rebind bumps the
//                   engine epoch, so the graph epoch advances exactly
//                   once per applied batch and every cached result keyed
//                   on the old epoch becomes unreachable.
//
// Graph generations are held as shared_ptrs: the previous generation is
// released only after Rebind() has drained the queries that might still
// be scoring against it, and the optional LandmarkRepairer keeps its own
// reference to the generation it repairs against, so a generation can
// never be freed under a reader.
//
// Per-record rejection (out-of-range ids, self-loops, duplicate follows,
// unfollowing an absent edge, empty/out-of-vocabulary label sets) is not
// an error: the batch answer counts applied vs rejected, mirroring the
// MUTATE_ACK wire payload. A batch where nothing applied does not bump
// the epoch.
//
// Thread-safety: Apply() serializes on an internal mutex — concurrent
// wire mutators are applied in some total order, each batch atomically
// with respect to queries (which only ever see fully materialized
// generations via Rebind's exclusive lock).

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/authority.h"
#include "dynamic/delta_graph.h"
#include "graph/labeled_graph.h"
#include "obs/metrics.h"
#include "service/query_engine.h"
#include "topics/topic.h"

namespace mbr::service {

class LandmarkRepairer;

enum class MutationOp : uint8_t { kFollow, kUnfollow, kRelabel };

const char* MutationOpName(MutationOp op);

struct Mutation {
  MutationOp op = MutationOp::kFollow;
  graph::NodeId src = 0;
  graph::NodeId dst = 0;
  topics::TopicSet labels;  // ignored for kUnfollow
};

struct MutationOutcome {
  uint32_t applied = 0;
  uint32_t rejected = 0;
  uint64_t graph_epoch = 0;  // engine epoch after the batch
};

class MutationApplier {
 public:
  // `base` and `base_authority` are the generation the engine is currently
  // bound to (warm start); both must outlive the applier. Counters are
  // registered in the engine's registry.
  MutationApplier(const graph::LabeledGraph& base,
                  const core::AuthorityIndex& base_authority,
                  QueryEngine& engine);

  MutationApplier(const MutationApplier&) = delete;
  MutationApplier& operator=(const MutationApplier&) = delete;

  // Optional: notify a repairer after every applied batch. Install before
  // serving traffic; the repairer must outlive the applier (or be stopped
  // first).
  void SetRepairer(LandmarkRepairer* repairer) { repairer_ = repairer; }

  // Applies one ordered batch. Never throws on bad records — they count
  // as rejected. Thread-safe.
  MutationOutcome Apply(std::span<const Mutation> batch);

  uint64_t batches_applied() const;

  // The live generation (for tests and the churn bench). The returned
  // pointers stay valid even across later batches.
  std::shared_ptr<const graph::LabeledGraph> current_graph() const;
  std::shared_ptr<const core::AuthorityIndex> current_authority() const;

 private:
  bool ApplyOne(const Mutation& m);

  QueryEngine* engine_;
  LandmarkRepairer* repairer_ = nullptr;

  mutable std::mutex mu_;
  dynamic::DeltaGraph delta_;
  std::shared_ptr<const graph::LabeledGraph> cur_graph_;
  std::shared_ptr<const core::AuthorityIndex> cur_authority_;
  uint64_t batches_applied_ = 0;

  obs::Counter* applied_total_ = nullptr;
  obs::Counter* rejected_total_ = nullptr;
  obs::Counter* batches_total_ = nullptr;
};

}  // namespace mbr::service

#endif  // MBR_SERVICE_MUTATION_H_
