#include "service/mutation.h"

#include "service/landmark_repair.h"

namespace mbr::service {

namespace {

// Labels must be non-empty and inside the graph's topic vocabulary.
bool ValidLabels(topics::TopicSet labels, int num_topics) {
  if (labels.empty()) return false;
  if (num_topics >= 64) return true;
  return (labels.bits() >> num_topics) == 0;
}

}  // namespace

const char* MutationOpName(MutationOp op) {
  switch (op) {
    case MutationOp::kFollow:
      return "follow";
    case MutationOp::kUnfollow:
      return "unfollow";
    case MutationOp::kRelabel:
      return "relabel";
  }
  return "unknown";
}

MutationApplier::MutationApplier(const graph::LabeledGraph& base,
                                 const core::AuthorityIndex& base_authority,
                                 QueryEngine& engine)
    : engine_(&engine),
      delta_(&base),
      // The warm-start generation is caller-owned: hold it with no-op
      // deleters so generation handling is uniform from the first batch.
      cur_graph_(&base, [](const graph::LabeledGraph*) {}),
      cur_authority_(&base_authority, [](const core::AuthorityIndex*) {}) {
  obs::Registry& reg = engine.registry();
  applied_total_ = reg.GetCounter("mbr_mutation_applied_total",
                                  "Mutation records applied to the graph.");
  rejected_total_ = reg.GetCounter(
      "mbr_mutation_rejected_total",
      "Mutation records rejected by per-record validation.");
  batches_total_ = reg.GetCounter(
      "mbr_mutation_batches_total",
      "Mutation batches that applied at least one record (epoch bumps).");
}

bool MutationApplier::ApplyOne(const Mutation& m) {
  const graph::NodeId n = delta_.num_nodes();
  if (m.src >= n || m.dst >= n || m.src == m.dst) return false;
  const int num_topics = delta_.base().num_topics();
  switch (m.op) {
    case MutationOp::kFollow:
      return ValidLabels(m.labels, num_topics) &&
             delta_.AddEdge(m.src, m.dst, m.labels);
    case MutationOp::kUnfollow:
      return delta_.RemoveEdge(m.src, m.dst);
    case MutationOp::kRelabel:
      return ValidLabels(m.labels, num_topics) &&
             delta_.RelabelEdge(m.src, m.dst, m.labels);
  }
  return false;
}

MutationOutcome MutationApplier::Apply(std::span<const Mutation> batch) {
  std::lock_guard<std::mutex> lock(mu_);
  MutationOutcome out;
  std::vector<graph::NodeId> touched;
  touched.reserve(batch.size() * 2);
  for (const Mutation& m : batch) {
    if (ApplyOne(m)) {
      ++out.applied;
      touched.push_back(m.src);
      touched.push_back(m.dst);
    } else {
      ++out.rejected;
    }
  }
  applied_total_->Increment(out.applied);
  rejected_total_->Increment(out.rejected);
  if (out.applied > 0) {
    batches_total_->Increment();
    ++batches_applied_;
    auto g = std::make_shared<graph::LabeledGraph>(delta_.Materialize());
    auto auth = std::make_shared<core::AuthorityIndex>(*g);
    // Rebind blocks until in-flight queries drain, then bumps the epoch;
    // only after it returns is it safe to drop the previous generation
    // (which happens below when cur_graph_/cur_authority_ are reassigned).
    engine_->Rebind(*g, *auth);
    cur_graph_ = std::move(g);
    cur_authority_ = std::move(auth);
    if (repairer_ != nullptr) {
      repairer_->OnBatchApplied(cur_graph_, cur_authority_, touched);
    }
  }
  out.graph_epoch = engine_->params_epoch();
  return out;
}

uint64_t MutationApplier::batches_applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_applied_;
}

std::shared_ptr<const graph::LabeledGraph> MutationApplier::current_graph()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return cur_graph_;
}

std::shared_ptr<const core::AuthorityIndex>
MutationApplier::current_authority() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cur_authority_;
}

}  // namespace mbr::service
