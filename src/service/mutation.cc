#include "service/mutation.h"

#include "service/landmark_repair.h"

namespace mbr::service {

namespace {

// Labels must be non-empty and inside the graph's topic vocabulary.
bool ValidLabels(topics::TopicSet labels, int num_topics) {
  if (labels.empty()) return false;
  if (num_topics >= 64) return true;
  return (labels.bits() >> num_topics) == 0;
}

}  // namespace

const char* MutationOpName(MutationOp op) {
  switch (op) {
    case MutationOp::kFollow:
      return "follow";
    case MutationOp::kUnfollow:
      return "unfollow";
    case MutationOp::kRelabel:
      return "relabel";
  }
  return "unknown";
}

MutationApplier::MutationApplier(const graph::LabeledGraph& base,
                                 const core::AuthorityIndex& base_authority,
                                 QueryEngine& engine,
                                 const MutationConfig& config)
    : engine_(&engine),
      config_(config),
      delta_(&base),
      inc_auth_(base),
      // The warm-start generation is caller-owned: hold it with no-op
      // deleters so generation handling is uniform from the first batch.
      cur_graph_(&base, [](const graph::LabeledGraph*) {}),
      cur_authority_(&base_authority, [](const core::AuthorityIndex*) {}) {
  obs::Registry& reg = engine.registry();
  applied_total_ = reg.GetCounter("mbr_mutation_applied_total",
                                  "Mutation records applied to the graph.");
  rejected_total_ = reg.GetCounter(
      "mbr_mutation_rejected_total",
      "Mutation records rejected by per-record validation.");
  batches_total_ = reg.GetCounter(
      "mbr_mutation_batches_total",
      "Mutation batches that applied at least one record (epoch bumps).");
  authority_refreshes_ = reg.GetCounter(
      "mbr_authority_refresh_topics_total",
      "Per-topic authority max rescans (targeted dirty repairs plus full "
      "periodic refreshes).");
  authority_drift_ = reg.GetCounter(
      "mbr_authority_drift_topics_total",
      "Topic maxima snapshotted as unverified upper bounds (deferred "
      "refresh), summed over applied batches.");
}

bool MutationApplier::ApplyOne(const Mutation& m) {
  const graph::NodeId n = delta_.num_nodes();
  if (m.src >= n || m.dst >= n || m.src == m.dst) return false;
  const int num_topics = delta_.base().num_topics();
  const bool incremental =
      config_.pipeline == MutationConfig::Pipeline::kIncremental;
  switch (m.op) {
    case MutationOp::kFollow: {
      if (!ValidLabels(m.labels, num_topics) ||
          !delta_.AddEdge(m.src, m.dst, m.labels)) {
        return false;
      }
      if (incremental) inc_auth_.OnEdgeAdded(m.src, m.dst, m.labels);
      return true;
    }
    case MutationOp::kUnfollow: {
      // The live labels must be captured before the removal erases them.
      const topics::TopicSet old = delta_.EdgeLabels(m.src, m.dst);
      if (!delta_.RemoveEdge(m.src, m.dst)) return false;
      if (incremental) inc_auth_.OnEdgeRemoved(m.src, m.dst, old);
      return true;
    }
    case MutationOp::kRelabel: {
      if (!ValidLabels(m.labels, num_topics)) return false;
      const topics::TopicSet old = delta_.EdgeLabels(m.src, m.dst);
      if (!delta_.RelabelEdge(m.src, m.dst, m.labels)) return false;
      if (incremental) {
        // Mirror the delta's listener-suppressed remove + re-add so the
        // counters replay the exact op order.
        inc_auth_.OnEdgeRemoved(m.src, m.dst, old);
        inc_auth_.OnEdgeAdded(m.src, m.dst, m.labels);
      }
      return true;
    }
  }
  return false;
}

MutationOutcome MutationApplier::Apply(std::span<const Mutation> batch) {
  std::lock_guard<std::mutex> apply_lock(apply_mu_);
  MutationOutcome out;
  std::vector<graph::NodeId> touched;
  touched.reserve(batch.size() * 2);
  for (const Mutation& m : batch) {
    if (ApplyOne(m)) {
      ++out.applied;
      touched.push_back(m.src);
      touched.push_back(m.dst);
    } else {
      ++out.rejected;
    }
  }
  applied_total_->Increment(out.applied);
  rejected_total_->Increment(out.rejected);
  if (out.applied > 0) {
    batches_total_->Increment();
    // Snapshot the previous generation under the narrow lock, then build
    // the next one without holding it — readers of current_graph() /
    // current_authority() never wait on materialization or the rebind
    // drain. prev_* keeps the old generation alive until Rebind returns.
    std::shared_ptr<const graph::LabeledGraph> prev_graph;
    std::shared_ptr<const core::AuthorityIndex> prev_auth;
    {
      std::lock_guard<std::mutex> lock(mu_);
      prev_graph = cur_graph_;
      prev_auth = cur_authority_;
    }
    std::shared_ptr<const graph::LabeledGraph> g;
    std::shared_ptr<const core::AuthorityIndex> auth;
    if (config_.pipeline == MutationConfig::Pipeline::kIncremental) {
      g = std::make_shared<graph::LabeledGraph>(
          delta_.MaterializeFrom(*prev_graph, touched));
      if (config_.authority_refresh_batches <= 1) {
        // Exact maxima every batch: targeted O(n)-per-dirty-topic repair
        // keeps the snapshot byte-identical to a from-scratch index.
        authority_refreshes_->Increment(inc_auth_.RefreshDirtyMax());
      } else if (++batches_since_refresh_ >=
                 config_.authority_refresh_batches) {
        inc_auth_.RefreshMax();
        batches_since_refresh_ = 0;
        authority_refreshes_->Increment(inc_auth_.num_topics());
      } else {
        // Deferred mode: stored maxima may overestimate, which shrinks
        // the global factor — served authority is bounded above by the
        // true values until the next refresh. Count the drifting topics.
        authority_drift_->Increment(inc_auth_.dirty_topic_count());
      }
      auth = std::make_shared<core::AuthorityIndex>(
          *prev_auth, inc_auth_.Counters(), touched);
    } else {
      g = std::make_shared<graph::LabeledGraph>(delta_.Materialize());
      auth = std::make_shared<core::AuthorityIndex>(*g);
    }
    // Rebind blocks until in-flight queries drain, then bumps the epoch;
    // only after it returns is it safe to drop the previous generation.
    engine_->Rebind(*g, *auth);
    {
      std::lock_guard<std::mutex> lock(mu_);
      cur_graph_ = g;
      cur_authority_ = auth;
      ++batches_applied_;
    }
    if (repairer_ != nullptr) {
      repairer_->OnBatchApplied(std::move(g), std::move(auth), touched);
    }
  }
  out.graph_epoch = engine_->params_epoch();
  return out;
}

uint64_t MutationApplier::batches_applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_applied_;
}

int MutationApplier::authority_drift_topics() const {
  std::lock_guard<std::mutex> lock(apply_mu_);
  return inc_auth_.dirty_topic_count();
}

std::shared_ptr<const graph::LabeledGraph> MutationApplier::current_graph()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return cur_graph_;
}

std::shared_ptr<const core::AuthorityIndex>
MutationApplier::current_authority() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cur_authority_;
}

}  // namespace mbr::service
