#include "service/query_engine.h"

#include <algorithm>
#include <chrono>
#include <latch>

#include "obs/slow_query_log.h"
#include "obs/span.h"
#include "util/timer.h"

namespace mbr::service {

namespace {

inline uint8_t TierV(core::Tier t) { return static_cast<uint8_t>(t); }

}  // namespace

double EngineStats::LatencyPercentileMicros(double p) const {
  uint64_t total = 0;
  for (uint64_t c : latency_log2_us) total += c;
  if (total == 0) return 0.0;
  uint64_t need = static_cast<uint64_t>(p * static_cast<double>(total));
  if (need < 1) need = 1;
  uint64_t seen = 0;
  for (int b = 0; b < kLatencyBuckets; ++b) {
    seen += latency_log2_us[b];
    // Bucket b spans [2^b, 2^(b+1)); report its lower bound.
    if (seen >= need) return static_cast<double>(uint64_t{1} << b);
  }
  return static_cast<double>(uint64_t{1} << (kLatencyBuckets - 1));
}

QueryEngine::QueryEngine(const graph::LabeledGraph& g,
                         const core::AuthorityIndex& authority,
                         const topics::SimilarityMatrix& sim,
                         const EngineConfig& config)
    : g_(&g),
      authority_(&authority),
      sim_(&sim),
      config_(config),
      monitor_(config.degrade.pressure),
      pool_(config.num_threads) {
  // The ladder needs the approx tier as its middle rung; without a
  // landmark index it silently stays off (single exact tier).
  degrade_enabled_ = config_.degrade.enabled && config_.landmarks != nullptr;
  has_approx_ = config_.landmarks != nullptr;
  // A landmark engine without the ladder serves approx only (the
  // pre-ladder behaviour); with it, exact is the unpressured tier.
  has_exact_ = config_.landmarks == nullptr || degrade_enabled_;
  base_tier_ = has_exact_ ? core::Tier::kExact : core::Tier::kApprox;
  if (config_.registry != nullptr) {
    registry_ = config_.registry;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  metrics_.queries = registry_->GetCounter(
      "mbr_engine_queries_total", "Queries admitted by the engine.");
  metrics_.batches = registry_->GetCounter("mbr_engine_batches_total",
                                           "RecommendMany calls.");
  metrics_.cache_hits = registry_->GetCounter(
      "mbr_engine_cache_hits_total", "Queries answered from the result cache.");
  metrics_.cache_misses = registry_->GetCounter(
      "mbr_engine_cache_misses_total", "Queries that ran a scorer.");
  metrics_.invalidations = registry_->GetCounter(
      "mbr_engine_invalidations_total",
      "Cache invalidations (params-epoch bumps).");
  metrics_.cache_purged = registry_->GetCounter(
      "mbr_engine_cache_purged_total",
      "Dead-epoch result-cache entries swept out on invalidation.");
  metrics_.deadline_exceeded = registry_->GetCounter(
      "mbr_engine_deadline_exceeded_total",
      "Queries answered kDeadlineExceeded by the engine.");
  for (int t = 0; t < 3; ++t) {
    metrics_.tier_served[t] = registry_->GetCounter(
        "mbr_engine_tier_served_total",
        "Replies served, by degradation-ladder tier.",
        {{"tier", core::TierName(static_cast<core::Tier>(t))}});
  }
  metrics_.degraded = registry_->GetCounter(
      "mbr_engine_degraded_total",
      "Replies served below the engine's best tier.");
  metrics_.latency_us = registry_->GetHistogram(
      "mbr_engine_latency_us",
      "Per-query engine latency in microseconds (hits and misses).");
  if (config_.cache_capacity > 0) {
    cache_ = std::make_unique<Cache>(config_.cache_capacity,
                                     std::max(1u, config_.cache_shards));
  }
  arenas_.reserve(pool_.num_workers());
  for (uint32_t i = 0; i < pool_.num_workers(); ++i) {
    arenas_.push_back(std::make_unique<util::QueryArena>());
  }
  BuildWorkers();
}

void QueryEngine::BuildWorkers() {
  workers_.clear();
  workers_.resize(pool_.num_workers());
  for (size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = workers_[i];
    // Each worker's scorer borrows the worker's long-lived arena: Rebind()
    // replaces the scorer but the warmed scratch block carries over, so the
    // first query after a rebind still runs allocation-free. With the
    // ladder on, the approx recommender's internal scorer shares the same
    // arena — workers are single-caller, so the scratch is never live in
    // both at once.
    util::QueryArena* arena = arenas_[i].get();
    if (has_approx_) {
      landmark::ApproxConfig ac = config_.approx;
      ac.params = config_.params;
      w.approx = std::make_unique<landmark::ApproxRecommender>(
          *g_, *authority_, *sim_, *config_.landmarks, ac, arena);
    }
    if (has_exact_) {
      w.scorer = std::make_unique<core::Scorer>(
          *g_, *authority_, *sim_, config_.params,
          has_approx_ ? nullptr : arena);
    }
  }
}

void QueryEngine::RecordLatencySeconds(double seconds) {
  metrics_.latency_us->Record(static_cast<uint64_t>(seconds * 1e6));
}

void QueryEngine::CountServed(core::Tier tier) {
  metrics_.tier_served[TierV(tier)]->Increment();
  if (TierV(tier) > TierV(base_tier_)) metrics_.degraded->Increment();
}

bool QueryEngine::CacheLookup(const CacheKey& key, CachedList* out) {
  if (cache_ == nullptr) return false;
  return cache_->Get(key, out);
}

bool QueryEngine::StaleLookup(const core::Query& q, uint64_t epoch,
                              CachedList* out, uint32_t* age) {
  if (cache_ == nullptr) return false;
  const uint32_t keep = config_.degrade.stale_keep_epochs;
  for (uint32_t a = 1; a <= keep && a <= epoch; ++a) {
    if (CacheLookup(CacheKey{q.user, q.topic, q.top_n, epoch - a}, out)) {
      *age = a;
      return true;
    }
  }
  return false;
}

core::Tier QueryEngine::ChooseScoredTier(const core::Query& q) const {
  core::Tier allowed = base_tier_;
  if (degrade_enabled_) {
    const core::Tier pressured = monitor_.AllowedTier();
    if (TierV(pressured) > TierV(allowed)) allowed = pressured;
  }
  // The caller's floor: never serve a tier more degraded than min_tier.
  if (TierV(allowed) > TierV(q.min_tier)) allowed = q.min_tier;
  // Clamp to the recommenders actually built. A "stale" verdict landing
  // here means the stale probe missed — serve the cheapest scored tier.
  if (allowed == core::Tier::kStale) {
    allowed = has_approx_ ? core::Tier::kApprox : core::Tier::kExact;
  }
  if (allowed == core::Tier::kApprox && !has_approx_) {
    allowed = core::Tier::kExact;
  }
  if (allowed == core::Tier::kExact && !has_exact_) {
    // min_tier = kExact on an exact-less engine is rejected at admission,
    // so serving approx here never violates the caller's floor.
    allowed = core::Tier::kApprox;
  }
  return allowed;
}

util::Result<Response> QueryEngine::ExecuteQuery(uint32_t wid,
                                                const core::Query& q) {
  util::WallTimer timer;
  // Trace the scored path: spans opened below (and inside the scorers)
  // attach their timings, and the whole breakdown lands in the slow-query
  // log when the query crosses the threshold.
  obs::QueryTrace trace(obs::Enabled() ? &obs::SlowQueryLog::Default()
                                       : nullptr,
                        q.user, q.topic, q.top_n);
  const core::Tier tier = ChooseScoredTier(q);
  obs::QueryTrace::SetServedTier(core::TierName(tier));
  util::Result<Response> out = [&]() -> util::Result<Response> {
    MBR_SPAN("engine.execute");
    const bool repair_stale = stale_probe_ && stale_probe_();
    Worker& w = workers_[wid];
    Response resp;
    resp.meta.served_tier = tier;
    if (tier == core::Tier::kApprox) {
      util::Result<core::Ranking> r = w.approx->Recommend(q);
      if (!r.ok()) return r.status();
      resp.ranking = std::move(r.value());
      // The composition above may have consulted a marked-but-unrepaired
      // landmark list, so answer honestly at the stale tier. Exact-tier
      // scoring never reads stored lists and keeps its tier.
      if (repair_stale) resp.meta.served_tier = core::Tier::kStale;
      return resp;
    }
    if (q.expired()) {
      return util::Status::DeadlineExceeded("query deadline expired");
    }
    const core::ExplorationResult& res =
        w.scorer->Explore(q.user, topics::TopicSet::Single(q.topic));
    core::RankingBuilder builder(q);
    for (graph::NodeId v : res.reached()) {
      builder.Offer(v, res.Sigma(v, q.topic));
    }
    resp.ranking = builder.Take();
    return resp;
  }();
  RecordLatencySeconds(timer.ElapsedSeconds());
  if (!out.ok() && out.status().code() == util::StatusCode::kDeadlineExceeded) {
    metrics_.deadline_exceeded->Increment();
  }
  if (out.ok()) CountServed(out.value().meta.served_tier);
  return out;
}

util::Result<Response> QueryEngine::Recommend(const core::Query& query) {
  auto results = RecommendMany(std::span<const core::Query>(&query, 1));
  return std::move(results.front());
}

util::Result<std::vector<util::ScoredId>> QueryEngine::TopN(
    graph::NodeId user, topics::TopicId topic, uint32_t top_n) {
  util::Result<Response> r = Recommend(Query::TopN(user, topic, top_n));
  if (!r.ok()) return r.status();
  return std::move(r.value().ranking.entries);
}

std::vector<util::Result<Response>> QueryEngine::RecommendMany(
    std::span<const core::Query> queries) {
  metrics_.batches->Increment();
  metrics_.queries->Increment(queries.size());
  std::vector<util::Result<Response>> results(
      queries.size(),
      util::Result<Response>(util::Status::Internal("unanswered")));
  if (queries.empty()) return results;

  std::vector<size_t> misses;
  misses.reserve(queries.size());
  uint64_t expired_at_admission = 0;
  {
    // Shared lock: validation reads the current graph, which Rebind swaps
    // under the exclusive lock. Released before the latch wait below so a
    // concurrent Rebind can never deadlock against in-flight batches.
    std::shared_lock<std::shared_mutex> lock(rebind_mu_);
    // The epoch is read under the same lock hold that reads the graph, so
    // (graph, epoch) is a consistent pair: a hit under `epoch` was cached
    // by a query that scored the same graph generation.
    const uint64_t epoch = epoch_.load(std::memory_order_acquire);
    for (const core::Query& q : queries) {
      MBR_CHECK(q.user < g_->num_nodes());
      MBR_CHECK(q.topic < g_->num_topics());
      MBR_CHECK(q.top_n > 0);
      MBR_CHECK(q.candidates.empty());  // serving is top-n only
    }
    // Resolve cache hits inline on the calling thread — a warm repeat
    // query never touches the pool. Queries with exclusions or deadlines
    // already blown skip the cache.
    for (size_t i = 0; i < queries.size(); ++i) {
      const core::Query& q = queries[i];
      if (q.min_tier == core::Tier::kExact) {
        // Pinning exact is a contract, not a preference: it must be
        // rejected up front when the engine can never honour it.
        if (!has_exact_) {
          results[i] = util::Status::InvalidArgument(
              "min_tier=exact on an engine with no exact tier");
          continue;
        }
        if (q.expired()) {
          results[i] = util::Status::InvalidArgument(
              "min_tier=exact with no deadline headroom");
          continue;
        }
      }
      if (q.expired()) {
        results[i] = util::Status::DeadlineExceeded("query deadline expired");
        ++expired_at_admission;
        continue;
      }
      if (!q.exclude.empty()) {
        misses.push_back(i);
        continue;
      }
      util::WallTimer timer;
      CachedList cached;
      if (CacheLookup(CacheKey{q.user, q.topic, q.top_n, epoch}, &cached)) {
        metrics_.cache_hits->Increment();
        const double seconds = timer.ElapsedSeconds();
        RecordLatencySeconds(seconds);
        monitor_.Observe(static_cast<uint64_t>(seconds * 1e6));
        Response resp;
        resp.ranking.entries = std::move(cached.entries);
        resp.meta.served_tier = cached.tier;
        resp.meta.cache_hit = true;
        resp.meta.graph_epoch = epoch;
        CountServed(cached.tier);
        results[i] = std::move(resp);
        continue;
      }
      // Stale tier: at the deepest watermark, a dead-epoch entry beats
      // scoring at all — serve it (honestly stamped with its old epoch)
      // instead of queueing work.
      if (degrade_enabled_ && TierV(q.min_tier) >= TierV(core::Tier::kStale) &&
          monitor_.AllowedTier() == core::Tier::kStale) {
        uint32_t age = 0;
        if (StaleLookup(q, epoch, &cached, &age)) {
          metrics_.cache_hits->Increment();
          const double seconds = timer.ElapsedSeconds();
          RecordLatencySeconds(seconds);
          monitor_.Observe(static_cast<uint64_t>(seconds * 1e6));
          Response resp;
          resp.ranking.entries = std::move(cached.entries);
          resp.meta.served_tier = core::Tier::kStale;
          resp.meta.cache_hit = true;
          resp.meta.graph_epoch = epoch - age;
          resp.meta.stale_age_epochs = age;
          CountServed(core::Tier::kStale);
          results[i] = std::move(resp);
          continue;
        }
      }
      misses.push_back(i);
    }
  }
  metrics_.deadline_exceeded->Increment(expired_at_admission);
  metrics_.cache_misses->Increment(misses.size());
  if (misses.empty()) return results;

  // Pressure accounting: every miss is inflight from admission until its
  // worker finishes it, so queue depth (not just active scoring) drives
  // the watermarks. The admission timestamp makes the observed latency
  // include queue wait.
  const auto admitted = std::chrono::steady_clock::now();
  if (degrade_enabled_) {
    for (size_t m = 0; m < misses.size(); ++m) monitor_.Begin();
  }

  // Fan the misses across the pool in contiguous chunks (several queries
  // per task keeps queue overhead negligible for large batches).
  const size_t num_chunks =
      std::min<size_t>(misses.size(),
                       static_cast<size_t>(pool_.num_workers()) * 4);
  const size_t chunk = (misses.size() + num_chunks - 1) / num_chunks;
  std::latch done(static_cast<ptrdiff_t>(num_chunks));
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(begin + chunk, misses.size());
    pool_.Submit([this, &queries, &results, &misses, begin, end, admitted,
                  &done](uint32_t wid) {
      {
        std::shared_lock<std::shared_mutex> lock(rebind_mu_);
        // The scoring epoch is re-read under THIS lock hold — not carried
        // over from admission — so the stamp (and the cache key) always
        // names the graph generation the scorer actually ran against. If a
        // Rebind slipped between admission and here, the entry lands under
        // the new epoch and honestly claims it.
        const uint64_t scoring_epoch = epoch_.load(std::memory_order_acquire);
        for (size_t m = begin; m < end; ++m) {
          const size_t i = misses[m];
          const core::Query& q = queries[i];
          results[i] = ExecuteQuery(wid, q);
          if (degrade_enabled_) {
            const auto waited = std::chrono::steady_clock::now() - admitted;
            monitor_.End(static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(waited)
                    .count()));
          }
          if (results[i].ok()) {
            Response& resp = results[i].value();
            resp.meta.graph_epoch = scoring_epoch;
            if (cache_ != nullptr && q.exclude.empty()) {
              cache_->Put(
                  CacheKey{q.user, q.topic, q.top_n, scoring_epoch},
                  CachedList{resp.ranking.entries, resp.meta.served_tier});
            }
          }
        }
      }
      done.count_down();
    });
  }
  done.wait();
  return results;
}

util::Result<QueryEngine::PartialExploration> QueryEngine::ExplorePartial(
    const core::Query& q) {
  metrics_.queries->Increment();
  metrics_.cache_misses->Increment();  // always scored, never cached
  util::Result<PartialExploration> result(
      util::Status::Internal("unanswered"));
  std::latch done(1);
  pool_.Submit([this, &q, &result, &done](uint32_t wid) {
    {
      std::shared_lock<std::shared_mutex> lock(rebind_mu_);
      result = [&]() -> util::Result<PartialExploration> {
        if (!(q.user < g_->num_nodes()) || !(q.topic < g_->num_topics())) {
          return util::Status::InvalidArgument("query out of graph bounds");
        }
        Worker& w = workers_[wid];
        if (w.approx == nullptr) {
          return util::Status::InvalidArgument(
              "partial exploration requires a landmark engine");
        }
        util::WallTimer timer;
        PartialExploration p;
        // Same lock hold as the exploration: the epoch names the graph
        // generation the records were computed against.
        p.graph_epoch = epoch_.load(std::memory_order_acquire);
        util::Status st = w.approx->ExploreDecomposed(q, &p.records);
        RecordLatencySeconds(timer.ElapsedSeconds());
        if (!st.ok()) {
          if (st.code() == util::StatusCode::kDeadlineExceeded) {
            metrics_.deadline_exceeded->Increment();
          }
          return st;
        }
        return p;
      }();
    }
    done.count_down();
  });
  done.wait();
  return result;
}

uint32_t QueryEngine::num_nodes() const {
  std::shared_lock<std::shared_mutex> lock(rebind_mu_);
  return g_->num_nodes();
}

uint32_t QueryEngine::num_topics() const {
  std::shared_lock<std::shared_mutex> lock(rebind_mu_);
  return static_cast<uint32_t>(g_->num_topics());
}

void QueryEngine::Invalidate() {
  const uint64_t new_epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  metrics_.invalidations->Increment();
  if (cache_ != nullptr) {
    // Entries keyed to epochs below `new_epoch` can never be hit by a
    // fresh lookup again (those always use the current epoch). Without
    // the ladder they are swept immediately so they stop occupying LRU
    // capacity; with it, the newest `stale_keep_epochs` dead generations
    // are retained as the stale tier's inventory and only older ones go.
    // The sweep is best-effort against a racing Put() that read the old
    // epoch under a shared-lock hold — that straggler is unreachable (or
    // merely stale-served) too and the next invalidation's sweep collects
    // it.
    const uint64_t keep = degrade_enabled_
                              ? config_.degrade.stale_keep_epochs
                              : 0;
    const uint64_t purge_below =
        new_epoch > keep ? new_epoch - keep : 0;
    size_t purged = cache_->EraseIf([purge_below](const CacheKey& k) {
      return k.epoch < purge_below;
    });
    metrics_.cache_purged->Increment(purged);
  }
}

void QueryEngine::Rebind(const graph::LabeledGraph& g,
                         const core::AuthorityIndex& authority) {
  std::unique_lock<std::shared_mutex> lock(rebind_mu_);
  // Delta-aware fast path (DESIGN.md §6.9): when the node/topic universe is
  // unchanged — every mutation batch, since DeltaGraph materialization
  // preserves it — the workers' recommenders are re-pointed in place and
  // their warmed arena scratch (carved per num_nodes) stays valid, so the
  // first query after the rebind is still allocation-free. Only a
  // universe-changing swap (tests binding an unrelated graph) pays the full
  // worker reconstruction.
  const bool same_universe = g.num_nodes() == g_->num_nodes() &&
                             g.num_topics() == g_->num_topics();
  g_ = &g;
  authority_ = &authority;
  if (same_universe) {
    for (Worker& w : workers_) {
      if (w.scorer != nullptr) w.scorer->Rebind(g, authority);
      if (w.approx != nullptr) w.approx->Rebind(g, authority);
    }
  } else {
    BuildWorkers();
  }
  Invalidate();
}

void QueryEngine::RunExclusive(const std::function<void()>& fn) {
  std::unique_lock<std::shared_mutex> lock(rebind_mu_);
  fn();
  Invalidate();
}

void QueryEngine::SetStaleProbe(std::function<bool()> probe) {
  stale_probe_ = std::move(probe);
}

EngineStats QueryEngine::Stats() const {
  EngineStats s;
  s.queries = metrics_.queries->Value();
  s.batches = metrics_.batches->Value();
  s.cache_hits = metrics_.cache_hits->Value();
  s.cache_misses = metrics_.cache_misses->Value();
  s.invalidations = metrics_.invalidations->Value();
  s.deadline_exceeded = metrics_.deadline_exceeded->Value();
  s.params_epoch = epoch_.load(std::memory_order_relaxed);
  for (int t = 0; t < 3; ++t) s.tier_served[t] = metrics_.tier_served[t]->Value();
  s.degraded = metrics_.degraded->Value();
  obs::Histogram::Snapshot snap = metrics_.latency_us->TakeSnapshot();
  s.latency_log2_us = snap.buckets;
  return s;
}

}  // namespace mbr::service
