#include "service/query_engine.h"

#include <algorithm>
#include <latch>

#include "obs/slow_query_log.h"
#include "obs/span.h"
#include "util/timer.h"

namespace mbr::service {

double EngineStats::LatencyPercentileMicros(double p) const {
  uint64_t total = 0;
  for (uint64_t c : latency_log2_us) total += c;
  if (total == 0) return 0.0;
  uint64_t need = static_cast<uint64_t>(p * static_cast<double>(total));
  if (need < 1) need = 1;
  uint64_t seen = 0;
  for (int b = 0; b < kLatencyBuckets; ++b) {
    seen += latency_log2_us[b];
    // Bucket b spans [2^b, 2^(b+1)); report its lower bound.
    if (seen >= need) return static_cast<double>(uint64_t{1} << b);
  }
  return static_cast<double>(uint64_t{1} << (kLatencyBuckets - 1));
}

QueryEngine::QueryEngine(const graph::LabeledGraph& g,
                         const core::AuthorityIndex& authority,
                         const topics::SimilarityMatrix& sim,
                         const EngineConfig& config)
    : g_(&g),
      authority_(&authority),
      sim_(&sim),
      config_(config),
      pool_(config.num_threads) {
  if (config_.registry != nullptr) {
    registry_ = config_.registry;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  metrics_.queries = registry_->GetCounter(
      "mbr_engine_queries_total", "Queries admitted by the engine.");
  metrics_.batches = registry_->GetCounter("mbr_engine_batches_total",
                                           "RecommendMany calls.");
  metrics_.cache_hits = registry_->GetCounter(
      "mbr_engine_cache_hits_total", "Queries answered from the result cache.");
  metrics_.cache_misses = registry_->GetCounter(
      "mbr_engine_cache_misses_total", "Queries that ran a scorer.");
  metrics_.invalidations = registry_->GetCounter(
      "mbr_engine_invalidations_total",
      "Cache invalidations (params-epoch bumps).");
  metrics_.cache_purged = registry_->GetCounter(
      "mbr_engine_cache_purged_total",
      "Dead-epoch result-cache entries swept out on invalidation.");
  metrics_.deadline_exceeded = registry_->GetCounter(
      "mbr_engine_deadline_exceeded_total",
      "Queries answered kDeadlineExceeded by the engine.");
  metrics_.latency_us = registry_->GetHistogram(
      "mbr_engine_latency_us",
      "Per-query engine latency in microseconds (hits and misses).");
  if (config_.cache_capacity > 0) {
    cache_ = std::make_unique<Cache>(config_.cache_capacity,
                                     std::max(1u, config_.cache_shards));
  }
  arenas_.reserve(pool_.num_workers());
  for (uint32_t i = 0; i < pool_.num_workers(); ++i) {
    arenas_.push_back(std::make_unique<util::QueryArena>());
  }
  BuildWorkers();
}

void QueryEngine::BuildWorkers() {
  workers_.clear();
  workers_.resize(pool_.num_workers());
  for (size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = workers_[i];
    // Each worker's scorer borrows the worker's long-lived arena: Rebind()
    // replaces the scorer but the warmed scratch block carries over, so the
    // first query after a rebind still runs allocation-free.
    util::QueryArena* arena = arenas_[i].get();
    if (config_.landmarks != nullptr) {
      landmark::ApproxConfig ac = config_.approx;
      ac.params = config_.params;
      w.approx = std::make_unique<landmark::ApproxRecommender>(
          *g_, *authority_, *sim_, *config_.landmarks, ac, arena);
    } else {
      w.scorer = std::make_unique<core::Scorer>(*g_, *authority_, *sim_,
                                                config_.params, arena);
    }
  }
}

void QueryEngine::RecordLatencySeconds(double seconds) {
  metrics_.latency_us->Record(static_cast<uint64_t>(seconds * 1e6));
}

bool QueryEngine::CacheLookup(const CacheKey& key,
                              std::vector<util::ScoredId>* out) {
  if (cache_ == nullptr) return false;
  return cache_->Get(key, out);
}

util::Result<core::Ranking> QueryEngine::ExecuteQuery(uint32_t wid,
                                                      const core::Query& q) {
  util::WallTimer timer;
  // Trace the scored path: spans opened below (and inside the scorers)
  // attach their timings, and the whole breakdown lands in the slow-query
  // log when the query crosses the threshold.
  obs::QueryTrace trace(obs::Enabled() ? &obs::SlowQueryLog::Default()
                                       : nullptr,
                        q.user, q.topic, q.top_n);
  util::Result<core::Ranking> out = [&]() -> util::Result<core::Ranking> {
    MBR_SPAN("engine.execute");
    if (stale_probe_) stale_probe_();
    Worker& w = workers_[wid];
    if (w.approx != nullptr) {
      return w.approx->Recommend(q);
    }
    if (q.expired()) {
      return util::Status::DeadlineExceeded("query deadline expired");
    }
    const core::ExplorationResult& res =
        w.scorer->Explore(q.user, topics::TopicSet::Single(q.topic));
    core::RankingBuilder builder(q);
    for (graph::NodeId v : res.reached()) {
      builder.Offer(v, res.Sigma(v, q.topic));
    }
    return builder.Take();
  }();
  RecordLatencySeconds(timer.ElapsedSeconds());
  if (!out.ok() && out.status().code() == util::StatusCode::kDeadlineExceeded) {
    metrics_.deadline_exceeded->Increment();
  }
  return out;
}

util::Result<core::Ranking> QueryEngine::Recommend(const core::Query& query) {
  auto results = RecommendMany(std::span<const core::Query>(&query, 1));
  return std::move(results.front());
}

util::Result<std::vector<util::ScoredId>> QueryEngine::TopN(
    graph::NodeId user, topics::TopicId topic, uint32_t top_n) {
  util::Result<core::Ranking> r = Recommend(Query::TopN(user, topic, top_n));
  if (!r.ok()) return r.status();
  return std::move(r.value().entries);
}

std::vector<util::Result<core::Ranking>> QueryEngine::RecommendMany(
    std::span<const core::Query> queries) {
  metrics_.batches->Increment();
  metrics_.queries->Increment(queries.size());
  std::vector<util::Result<core::Ranking>> results(
      queries.size(),
      util::Result<core::Ranking>(util::Status::Internal("unanswered")));
  if (queries.empty()) return results;

  std::vector<size_t> misses;
  misses.reserve(queries.size());
  uint64_t expired_at_admission = 0;
  {
    // Shared lock: validation reads the current graph, which Rebind swaps
    // under the exclusive lock. Released before the latch wait below so a
    // concurrent Rebind can never deadlock against in-flight batches.
    std::shared_lock<std::shared_mutex> lock(rebind_mu_);
    // The epoch is read under the same lock hold that reads the graph, so
    // (graph, epoch) is a consistent pair: a hit under `epoch` was cached
    // by a query that scored the same graph generation.
    const uint64_t epoch = epoch_.load(std::memory_order_acquire);
    for (const core::Query& q : queries) {
      MBR_CHECK(q.user < g_->num_nodes());
      MBR_CHECK(q.topic < g_->num_topics());
      MBR_CHECK(q.top_n > 0);
      MBR_CHECK(q.candidates.empty());  // serving is top-n only
    }
    // Resolve cache hits inline on the calling thread — a warm repeat
    // query never touches the pool. Queries with exclusions or deadlines
    // already blown skip the cache.
    for (size_t i = 0; i < queries.size(); ++i) {
      const core::Query& q = queries[i];
      if (q.expired()) {
        results[i] = util::Status::DeadlineExceeded("query deadline expired");
        ++expired_at_admission;
        continue;
      }
      if (!q.exclude.empty()) {
        misses.push_back(i);
        continue;
      }
      CacheKey key{q.user, q.topic, q.top_n, epoch};
      util::WallTimer timer;
      std::vector<util::ScoredId> cached;
      if (CacheLookup(key, &cached)) {
        metrics_.cache_hits->Increment();
        RecordLatencySeconds(timer.ElapsedSeconds());
        core::Ranking rk;
        rk.entries = std::move(cached);
        rk.graph_epoch = epoch;
        results[i] = std::move(rk);
      } else {
        misses.push_back(i);
      }
    }
  }
  metrics_.deadline_exceeded->Increment(expired_at_admission);
  metrics_.cache_misses->Increment(misses.size());
  if (misses.empty()) return results;

  // Fan the misses across the pool in contiguous chunks (several queries
  // per task keeps queue overhead negligible for large batches).
  const size_t num_chunks =
      std::min<size_t>(misses.size(),
                       static_cast<size_t>(pool_.num_workers()) * 4);
  const size_t chunk = (misses.size() + num_chunks - 1) / num_chunks;
  std::latch done(static_cast<ptrdiff_t>(num_chunks));
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(begin + chunk, misses.size());
    pool_.Submit([this, &queries, &results, &misses, begin, end,
                  &done](uint32_t wid) {
      {
        std::shared_lock<std::shared_mutex> lock(rebind_mu_);
        // The scoring epoch is re-read under THIS lock hold — not carried
        // over from admission — so the stamp (and the cache key) always
        // names the graph generation the scorer actually ran against. If a
        // Rebind slipped between admission and here, the entry lands under
        // the new epoch and honestly claims it.
        const uint64_t scoring_epoch = epoch_.load(std::memory_order_acquire);
        for (size_t m = begin; m < end; ++m) {
          const size_t i = misses[m];
          const core::Query& q = queries[i];
          results[i] = ExecuteQuery(wid, q);
          if (results[i].ok()) {
            results[i].value().graph_epoch = scoring_epoch;
            if (cache_ != nullptr && q.exclude.empty()) {
              cache_->Put(CacheKey{q.user, q.topic, q.top_n, scoring_epoch},
                          results[i].value().entries);
            }
          }
        }
      }
      done.count_down();
    });
  }
  done.wait();
  return results;
}

util::Result<QueryEngine::PartialExploration> QueryEngine::ExplorePartial(
    const core::Query& q) {
  metrics_.queries->Increment();
  metrics_.cache_misses->Increment();  // always scored, never cached
  util::Result<PartialExploration> result(
      util::Status::Internal("unanswered"));
  std::latch done(1);
  pool_.Submit([this, &q, &result, &done](uint32_t wid) {
    {
      std::shared_lock<std::shared_mutex> lock(rebind_mu_);
      result = [&]() -> util::Result<PartialExploration> {
        if (!(q.user < g_->num_nodes()) || !(q.topic < g_->num_topics())) {
          return util::Status::InvalidArgument("query out of graph bounds");
        }
        Worker& w = workers_[wid];
        if (w.approx == nullptr) {
          return util::Status::InvalidArgument(
              "partial exploration requires a landmark engine");
        }
        util::WallTimer timer;
        PartialExploration p;
        // Same lock hold as the exploration: the epoch names the graph
        // generation the records were computed against.
        p.graph_epoch = epoch_.load(std::memory_order_acquire);
        util::Status st = w.approx->ExploreDecomposed(q, &p.records);
        RecordLatencySeconds(timer.ElapsedSeconds());
        if (!st.ok()) {
          if (st.code() == util::StatusCode::kDeadlineExceeded) {
            metrics_.deadline_exceeded->Increment();
          }
          return st;
        }
        return p;
      }();
    }
    done.count_down();
  });
  done.wait();
  return result;
}

uint32_t QueryEngine::num_nodes() const {
  std::shared_lock<std::shared_mutex> lock(rebind_mu_);
  return g_->num_nodes();
}

uint32_t QueryEngine::num_topics() const {
  std::shared_lock<std::shared_mutex> lock(rebind_mu_);
  return static_cast<uint32_t>(g_->num_topics());
}

void QueryEngine::Invalidate() {
  const uint64_t new_epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  metrics_.invalidations->Increment();
  if (cache_ != nullptr) {
    // Entries keyed to epochs below `new_epoch` can never be hit again
    // (lookups always use the current epoch), but without this sweep they
    // would sit in the LRU lists until evicted by pressure, silently
    // shrinking the cache's effective capacity after every rebind. The
    // sweep is best-effort against a racing Put() that read the old epoch
    // under a shared-lock hold — that straggler is unreachable too and the
    // next invalidation's sweep collects it.
    size_t purged =
        cache_->EraseIf([new_epoch](const CacheKey& k) {
          return k.epoch < new_epoch;
        });
    metrics_.cache_purged->Increment(purged);
  }
}

void QueryEngine::Rebind(const graph::LabeledGraph& g,
                         const core::AuthorityIndex& authority) {
  std::unique_lock<std::shared_mutex> lock(rebind_mu_);
  g_ = &g;
  authority_ = &authority;
  BuildWorkers();
  Invalidate();
}

void QueryEngine::RunExclusive(const std::function<void()>& fn) {
  std::unique_lock<std::shared_mutex> lock(rebind_mu_);
  fn();
  Invalidate();
}

void QueryEngine::SetStaleProbe(std::function<void()> probe) {
  stale_probe_ = std::move(probe);
}

EngineStats QueryEngine::Stats() const {
  EngineStats s;
  s.queries = metrics_.queries->Value();
  s.batches = metrics_.batches->Value();
  s.cache_hits = metrics_.cache_hits->Value();
  s.cache_misses = metrics_.cache_misses->Value();
  s.invalidations = metrics_.invalidations->Value();
  s.deadline_exceeded = metrics_.deadline_exceeded->Value();
  s.params_epoch = epoch_.load(std::memory_order_relaxed);
  obs::Histogram::Snapshot snap = metrics_.latency_us->TakeSnapshot();
  s.latency_log2_us = snap.buckets;
  return s;
}

}  // namespace mbr::service
