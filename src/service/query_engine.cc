#include "service/query_engine.h"

#include <algorithm>
#include <latch>

#include "util/timer.h"

namespace mbr::service {

double EngineStats::LatencyPercentileMicros(double p) const {
  uint64_t total = 0;
  for (uint64_t c : latency_log2_us) total += c;
  if (total == 0) return 0.0;
  uint64_t need = static_cast<uint64_t>(p * static_cast<double>(total));
  if (need < 1) need = 1;
  uint64_t seen = 0;
  for (int b = 0; b < kLatencyBuckets; ++b) {
    seen += latency_log2_us[b];
    // Bucket b spans [2^b, 2^(b+1)); report its lower bound.
    if (seen >= need) return static_cast<double>(uint64_t{1} << b);
  }
  return static_cast<double>(uint64_t{1} << (kLatencyBuckets - 1));
}

QueryEngine::QueryEngine(const graph::LabeledGraph& g,
                         const core::AuthorityIndex& authority,
                         const topics::SimilarityMatrix& sim,
                         const EngineConfig& config)
    : g_(&g),
      authority_(&authority),
      sim_(&sim),
      config_(config),
      pool_(config.num_threads) {
  if (config_.cache_capacity > 0) {
    cache_ = std::make_unique<Cache>(config_.cache_capacity,
                                     std::max(1u, config_.cache_shards));
  }
  BuildWorkers();
}

void QueryEngine::BuildWorkers() {
  workers_.clear();
  workers_.resize(pool_.num_workers());
  for (Worker& w : workers_) {
    if (config_.landmarks != nullptr) {
      landmark::ApproxConfig ac = config_.approx;
      ac.params = config_.params;
      w.approx = std::make_unique<landmark::ApproxRecommender>(
          *g_, *authority_, *sim_, *config_.landmarks, ac);
    } else {
      w.scorer = std::make_unique<core::Scorer>(*g_, *authority_, *sim_,
                                                config_.params);
    }
  }
}

void QueryEngine::RecordLatencySeconds(double seconds) {
  uint64_t us = static_cast<uint64_t>(seconds * 1e6);
  latency_[LatencyBucket(us)].fetch_add(1, std::memory_order_relaxed);
}

bool QueryEngine::CacheLookup(const CacheKey& key,
                              std::vector<util::ScoredId>* out) {
  if (cache_ == nullptr) return false;
  return cache_->Get(key, out);
}

std::vector<util::ScoredId> QueryEngine::ExecuteQuery(uint32_t wid,
                                                      const Query& q) {
  util::WallTimer timer;
  Worker& w = workers_[wid];
  std::vector<util::ScoredId> out;
  if (w.approx != nullptr) {
    out = w.approx->RecommendTopN(q.user, q.topic, q.top_n);
  } else {
    core::ExplorationResult res =
        w.scorer->Explore(q.user, topics::TopicSet::Single(q.topic));
    util::TopK topk(q.top_n);
    for (graph::NodeId v : res.reached()) {
      if (v == q.user) continue;
      double s = res.Sigma(v, q.topic);
      if (s > 0.0) topk.Offer(v, s);
    }
    out = topk.Take();
  }
  RecordLatencySeconds(timer.ElapsedSeconds());
  return out;
}

std::vector<util::ScoredId> QueryEngine::Recommend(graph::NodeId user,
                                                   topics::TopicId topic,
                                                   uint32_t top_n) {
  Query q{user, topic, top_n};
  auto results = RecommendMany({q});
  return std::move(results.front());
}

std::vector<std::vector<util::ScoredId>> QueryEngine::RecommendMany(
    const std::vector<Query>& queries) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(queries.size(), std::memory_order_relaxed);
  std::vector<std::vector<util::ScoredId>> results(queries.size());
  if (queries.empty()) return results;

  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  std::vector<size_t> misses;
  misses.reserve(queries.size());
  {
    // Shared lock: validation reads the current graph, which Rebind swaps
    // under the exclusive lock. Released before the latch wait below so a
    // concurrent Rebind can never deadlock against in-flight batches.
    std::shared_lock<std::shared_mutex> lock(rebind_mu_);
    for (const Query& q : queries) {
      MBR_CHECK(q.user < g_->num_nodes());
      MBR_CHECK(q.topic < g_->num_topics());
      MBR_CHECK(q.top_n > 0);
    }
    // Resolve cache hits inline on the calling thread — a warm repeat
    // query never touches the pool.
    for (size_t i = 0; i < queries.size(); ++i) {
      const Query& q = queries[i];
      CacheKey key{q.user, q.topic, q.top_n, epoch};
      util::WallTimer timer;
      if (CacheLookup(key, &results[i])) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        RecordLatencySeconds(timer.ElapsedSeconds());
      } else {
        misses.push_back(i);
      }
    }
  }
  cache_misses_.fetch_add(misses.size(), std::memory_order_relaxed);
  if (misses.empty()) return results;

  // Fan the misses across the pool in contiguous chunks (several queries
  // per task keeps queue overhead negligible for large batches).
  const size_t num_chunks =
      std::min<size_t>(misses.size(),
                       static_cast<size_t>(pool_.num_workers()) * 4);
  const size_t chunk = (misses.size() + num_chunks - 1) / num_chunks;
  std::latch done(static_cast<ptrdiff_t>(num_chunks));
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(begin + chunk, misses.size());
    pool_.Submit([this, &queries, &results, &misses, begin, end, epoch,
                  &done](uint32_t wid) {
      {
        std::shared_lock<std::shared_mutex> lock(rebind_mu_);
        for (size_t m = begin; m < end; ++m) {
          const size_t i = misses[m];
          const Query& q = queries[i];
          results[i] = ExecuteQuery(wid, q);
          if (cache_ != nullptr) {
            cache_->Put(CacheKey{q.user, q.topic, q.top_n, epoch},
                        results[i]);
          }
        }
      }
      done.count_down();
    });
  }
  done.wait();
  return results;
}

uint32_t QueryEngine::num_nodes() const {
  std::shared_lock<std::shared_mutex> lock(rebind_mu_);
  return g_->num_nodes();
}

uint32_t QueryEngine::num_topics() const {
  std::shared_lock<std::shared_mutex> lock(rebind_mu_);
  return static_cast<uint32_t>(g_->num_topics());
}

void QueryEngine::Invalidate() {
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void QueryEngine::Rebind(const graph::LabeledGraph& g,
                         const core::AuthorityIndex& authority) {
  std::unique_lock<std::shared_mutex> lock(rebind_mu_);
  g_ = &g;
  authority_ = &authority;
  BuildWorkers();
  Invalidate();
}

EngineStats QueryEngine::Stats() const {
  EngineStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.params_epoch = epoch_.load(std::memory_order_relaxed);
  for (int b = 0; b < kLatencyBuckets; ++b) {
    s.latency_log2_us[b] = latency_[b].load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace mbr::service
