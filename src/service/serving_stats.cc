#include "service/serving_stats.h"

#include <cstdio>

namespace mbr::service {

StatsSnapshot MakeStatsSnapshot(const EngineStats& s) {
  StatsSnapshot out;
  out.queries = s.queries;
  out.batches = s.batches;
  out.cache_hits = s.cache_hits;
  out.cache_misses = s.cache_misses;
  out.invalidations = s.invalidations;
  out.deadline_exceeded = s.deadline_exceeded;
  out.params_epoch = s.params_epoch;
  out.p50_us = s.LatencyPercentileMicros(0.50);
  out.p90_us = s.LatencyPercentileMicros(0.90);
  out.p99_us = s.LatencyPercentileMicros(0.99);
  out.tier_exact = s.tier_served[0];
  out.tier_approx = s.tier_served[1];
  out.tier_stale = s.tier_served[2];
  out.degraded = s.degraded;
  return out;
}

std::string FormatStatsLine(const StatsSnapshot& s) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "queries=%llu hit=%.1f%% shed=%llu+%llu expired=%llu conns=%llu/%llu "
      "p50=%.0fus p90=%.0fus p99=%.0fus tiers=%llu/%llu/%llu degraded=%llu",
      static_cast<unsigned long long>(s.queries), 100.0 * s.HitRate(),
      static_cast<unsigned long long>(s.shed_overload),
      static_cast<unsigned long long>(s.shed_deadline),
      static_cast<unsigned long long>(s.deadline_exceeded),
      static_cast<unsigned long long>(s.connections_open),
      static_cast<unsigned long long>(s.connections_accepted), s.p50_us,
      s.p90_us, s.p99_us, static_cast<unsigned long long>(s.tier_exact),
      static_cast<unsigned long long>(s.tier_approx),
      static_cast<unsigned long long>(s.tier_stale),
      static_cast<unsigned long long>(s.degraded));
  return buf;
}

}  // namespace mbr::service
