#include "service/serving_stats.h"

#include <cstdio>

namespace mbr::service {

StatsSnapshot MakeStatsSnapshot(const EngineStats& s) {
  StatsSnapshot out;
  out.queries = s.queries;
  out.batches = s.batches;
  out.cache_hits = s.cache_hits;
  out.cache_misses = s.cache_misses;
  out.invalidations = s.invalidations;
  out.deadline_exceeded = s.deadline_exceeded;
  out.params_epoch = s.params_epoch;
  out.p50_us = s.LatencyPercentileMicros(0.50);
  out.p90_us = s.LatencyPercentileMicros(0.90);
  out.p99_us = s.LatencyPercentileMicros(0.99);
  return out;
}

std::string FormatStatsLine(const StatsSnapshot& s) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "queries=%llu hit=%.1f%% shed=%llu+%llu expired=%llu conns=%llu/%llu "
      "p50=%.0fus p90=%.0fus p99=%.0fus",
      static_cast<unsigned long long>(s.queries), 100.0 * s.HitRate(),
      static_cast<unsigned long long>(s.shed_overload),
      static_cast<unsigned long long>(s.shed_deadline),
      static_cast<unsigned long long>(s.deadline_exceeded),
      static_cast<unsigned long long>(s.connections_open),
      static_cast<unsigned long long>(s.connections_accepted), s.p50_us,
      s.p90_us, s.p99_us);
  return buf;
}

}  // namespace mbr::service
