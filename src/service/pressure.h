#ifndef MBR_SERVICE_PRESSURE_H_
#define MBR_SERVICE_PRESSURE_H_

// Lock-free serving-pressure monitor driving the degradation ladder
// (DESIGN.md §6.8).
//
// Two signals, both cheap enough to consult on every query:
//   * inflight watermarks — queries currently inside the engine, tracked
//     by Begin()/End(). Crossing `approx_at` caps the ladder at the
//     landmark approximation; crossing `stale_at` caps it at stale cache
//     hits (the last tier before the server's admission control sheds).
//   * recent-p99 — a ring of the last kWindow per-query latencies plus an
//     incrementally-maintained count of samples over `p99_target_us`.
//     When more than 1% of the window is over target (i.e. the windowed
//     p99 exceeds the target), the ladder degrades one extra step.
//
// Everything is relaxed atomics: the monitor tolerates torn views (a
// query may see a watermark a beat late) because the ladder is a policy,
// not a correctness boundary — tier choice never affects result
// integrity, only fidelity. The over-target counter stays exact under
// races because ring slots are replaced with exchange(): every displaced
// sample is decremented by exactly one writer.

#include <atomic>
#include <cstdint>

#include "core/recommender_iface.h"

namespace mbr::service {

struct PressureConfig {
  // Inflight watermark at which the ladder caps at kApprox.
  // kNeverDegrade disables the watermark; 0 means "always".
  uint32_t approx_at = kNeverDegrade;
  // Inflight watermark at which the ladder caps at kStale.
  uint32_t stale_at = kNeverDegrade;
  // Recent-p99 latency target in µs; 0 disables the latency signal.
  uint64_t p99_target_us = 0;

  static constexpr uint32_t kNeverDegrade = UINT32_MAX;
};

class PressureMonitor {
 public:
  // Latency window: power of two so the ring index is a mask.
  static constexpr uint32_t kWindow = 256;

  explicit PressureMonitor(const PressureConfig& config) : config_(config) {}

  PressureMonitor(const PressureMonitor&) = delete;
  PressureMonitor& operator=(const PressureMonitor&) = delete;

  // One query entered the engine / left it (with its latency). Thread-safe.
  void Begin() { inflight_.fetch_add(1, std::memory_order_relaxed); }
  void End(uint64_t latency_us) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    Observe(latency_us);
  }

  // Records a latency sample without the inflight bookkeeping (cache hits
  // resolved on the calling thread still inform the p99 signal).
  void Observe(uint64_t latency_us) {
    if (config_.p99_target_us == 0) return;
    const uint32_t i =
        samples_written_.fetch_add(1, std::memory_order_relaxed) &
        (kWindow - 1);
    // Encode "occupied" in bit 63 so an empty slot (0) is distinguishable
    // from a genuine 0µs sample without a separate occupancy array.
    const uint64_t enc = latency_us | kOccupied;
    const uint64_t old = ring_[i].exchange(enc, std::memory_order_relaxed);
    const bool was_over =
        (old & kOccupied) != 0 && (old & ~kOccupied) > config_.p99_target_us;
    const bool is_over = latency_us > config_.p99_target_us;
    if (is_over && !was_over) over_target_.fetch_add(1, std::memory_order_relaxed);
    if (was_over && !is_over) over_target_.fetch_sub(1, std::memory_order_relaxed);
  }

  // The most faithful tier currently allowed by pressure. Thread-safe.
  core::Tier AllowedTier() const {
    const uint32_t inflight = inflight_.load(std::memory_order_relaxed);
    int tier = 0;
    if (inflight >= config_.stale_at) {
      tier = 2;
    } else if (inflight >= config_.approx_at) {
      tier = 1;
    }
    if (RecentP99OverTarget() && tier < 2) ++tier;
    return static_cast<core::Tier>(tier);
  }

  // True when the windowed p99 of observed latencies exceeds the target:
  // strictly more than 1% of the (filled part of the) window is over it.
  bool RecentP99OverTarget() const {
    if (config_.p99_target_us == 0) return false;
    const uint64_t written = samples_written_.load(std::memory_order_relaxed);
    const uint64_t filled = written < kWindow ? written : kWindow;
    if (filled == 0) return false;
    const int64_t over = over_target_.load(std::memory_order_relaxed);
    return over * 100 > static_cast<int64_t>(filled);
  }

  uint32_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  int64_t samples_over_target() const {
    return over_target_.load(std::memory_order_relaxed);
  }
  const PressureConfig& config() const { return config_; }

 private:
  static constexpr uint64_t kOccupied = 1ULL << 63;

  PressureConfig config_;
  std::atomic<uint32_t> inflight_{0};
  std::atomic<uint32_t> samples_written_{0};
  std::atomic<int64_t> over_target_{0};
  std::atomic<uint64_t> ring_[kWindow] = {};
};

}  // namespace mbr::service

#endif  // MBR_SERVICE_PRESSURE_H_
