#ifndef MBR_SERVICE_QUERY_ENGINE_H_
#define MBR_SERVICE_QUERY_ENGINE_H_

// Concurrent query-serving engine — the first piece of real serving
// infrastructure over the paper's recommenders.
//
// Architecture:
//   * a fixed util::ThreadPool; every worker owns its own core::Scorer
//     (and landmark::ApproxRecommender when a landmark index is
//     configured), so the Scorer single-caller contract holds by
//     construction and any number of application threads may call
//     Recommend()/RecommendMany() concurrently;
//   * a sharded util::ShardedLruCache in front of the scorers, keyed on
//     (user, topic, top_n, params_epoch) and storing the ranked top-n
//     list. Invalidate() bumps the epoch, which makes every cached entry
//     unreachable in O(1) — stale entries are then evicted by ordinary LRU
//     pressure. The dynamic-update path wires
//     dynamic::DeltaGraph::SetChangeListener to Invalidate() so serving
//     never returns results from before an edge change. Queries carrying
//     an exclusion list bypass the cache entirely (the key space is
//     (user, topic, top_n) only);
//   * serving counters and the per-query log2 latency histogram live in an
//     obs::Registry (EngineConfig::registry, or a private one), so the
//     STATS projection, the log line, and Prometheus exposition all read
//     the same source of truth.
//
// Requests are core::Query objects: deadline expiry is answered with
// kDeadlineExceeded (checked at admission and again on the worker before
// scoring), and exclusion lists are honored by the scorers' shared
// RankingBuilder. Candidate-scoring mode is not served here (it exists for
// the offline evaluation protocol): queries must have empty `candidates`.
//
// Epoch scheme: the epoch only ever grows, and doubles as the *graph
// epoch* surfaced on every reply (bumped once per Rebind / applied
// mutation batch by the live-mutation path, see service::MutationApplier).
// Epochs are observed under the rebind lock, so a query sees one
// consistent (graph, epoch) pair end-to-end: a scored result is stamped
// with — and cached under — the epoch read under the same shared-lock hold
// that scored it, and a cache hit is stamped with the lookup epoch, which
// by key equality is exactly the epoch its entry was computed at. A reply
// can therefore never claim a newer epoch than the graph its ranking was
// computed against — correctness never depends on the cache.
//
// Degradation ladder (DESIGN.md §6.8): with `EngineConfig::degrade`
// enabled (and a landmark index configured), every worker owns BOTH an
// exact scorer and the landmark approximation, and a
// service::PressureMonitor picks the serving tier per query:
// exact → approx at the first inflight watermark (or when the recent p99
// is over target), and at the second watermark dead-epoch cache entries —
// which Invalidate() then *retains* for `stale_keep_epochs` generations
// instead of purging — become a last-resort stale tier before the network
// layer sheds. Every reply says which tier served it (ServeMeta);
// `core::Query::min_tier` caps how far an individual query may degrade.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "core/authority.h"
#include "core/params.h"
#include "core/recommender_iface.h"
#include "core/scorer.h"
#include "graph/labeled_graph.h"
#include "landmark/approx.h"
#include "landmark/index.h"
#include "obs/metrics.h"
#include "service/pressure.h"
#include "service/response.h"
#include "topics/similarity_matrix.h"
#include "topics/topic.h"
#include "util/arena.h"
#include "util/lru_cache.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/top_k.h"

namespace mbr::service {

// The serving request is the core request object.
using Query = core::Query;

// Degradation-ladder policy (DESIGN.md §6.8). Off by default: a plain
// engine keeps today's single-tier behaviour (exact, or approx when a
// landmark index is configured) and purges dead-epoch cache entries
// eagerly.
struct DegradeConfig {
  // Enables the ladder. Requires EngineConfig::landmarks (the approx tier
  // is the ladder's middle rung); ignored without one.
  bool enabled = false;
  // Watermarks + recent-p99 target driving tier choice.
  PressureConfig pressure;
  // How many dead epochs of cached results Invalidate() retains as the
  // stale tier's inventory (0 = keep none, stale tier never hits).
  uint32_t stale_keep_epochs = 4;
};

struct EngineConfig {
  // Worker threads: 0 = hardware concurrency.
  uint32_t num_threads = 0;
  // Total cached result lists across all shards; 0 disables the cache.
  size_t cache_capacity = 0;
  uint32_t cache_shards = 16;
  core::ScoreParams params;
  // When non-null, queries are served by the landmark approximation
  // (Algorithm 2) instead of converged exact scoring. Must outlive the
  // engine; `approx.params` is overridden by `params`.
  const landmark::LandmarkIndex* landmarks = nullptr;
  landmark::ApproxConfig approx;
  // Degradation ladder. With `degrade.enabled` and a landmark index, the
  // engine serves exact when unpressured and walks the ladder under load
  // (each worker then owns both recommenders).
  DegradeConfig degrade;
  // Where the engine registers its counters/histogram. nullptr = the
  // engine owns a private registry (hermetic stats in tests); `mbrec
  // serve` passes &obs::Registry::Default() so one exposition covers the
  // whole process. Must outlive the engine.
  obs::Registry* registry = nullptr;
};

// The engine's latency histogram uses the obs floor-log2 bucketing (the
// PR-2 convention: bucket b counts [2^b, 2^(b+1)) µs, bucket 0 also holds
// sub-microsecond samples, 1 µs lands in bucket 0 and exactly 2^k µs in
// bucket k).
inline constexpr int kLatencyBuckets = obs::kHistogramBuckets;

inline int LatencyBucket(uint64_t us) { return obs::Log2Bucket(us); }

// Snapshot of the engine's serving counters (a projection of the registry
// series; see StatsSnapshot for the wire/log-line projection on top).
struct EngineStats {
  uint64_t queries = 0;   // total queries admitted
  uint64_t batches = 0;   // RecommendMany calls
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;  // queries that ran a scorer
  uint64_t invalidations = 0;
  uint64_t deadline_exceeded = 0;  // queries answered kDeadlineExceeded
  uint64_t params_epoch = 0;
  // Per-tier serving counters (mbr_engine_tier_served_total{tier=…}),
  // indexed by core::Tier's numeric value, plus the count of queries
  // served below the engine's best tier (mbr_engine_degraded_total).
  std::array<uint64_t, 3> tier_served{};
  uint64_t degraded = 0;
  // latency_log2_us[b] counts queries with latency in [2^b, 2^(b+1)) µs
  // (bucket 0 also holds sub-microsecond samples); see LatencyBucket().
  // Cache hits and scored queries both land here (hits in the lowest
  // buckets).
  std::array<uint64_t, kLatencyBuckets> latency_log2_us{};

  double HitRate() const {
    uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
  // Lower bound 2^b (µs) of the bucket containing the p-th percentile
  // sample — a floor estimate, exact for power-of-two latencies (a stream
  // of 1 µs queries reports p99 = 1, not 2). p in [0, 1].
  double LatencyPercentileMicros(double p) const;
};

class QueryEngine {
 public:
  // All references must outlive the engine (or be replaced via Rebind
  // before they die). The authority index must match `g`.
  QueryEngine(const graph::LabeledGraph& g,
              const core::AuthorityIndex& authority,
              const topics::SimilarityMatrix& sim,
              const EngineConfig& config);
  ~QueryEngine() = default;

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Blocking single query. Thread-safe; cache hits resolve on the calling
  // thread, misses score on a pool worker. Expired deadlines yield
  // kDeadlineExceeded; `min_tier = kExact` with an already-blown deadline
  // (a demand the ladder can never honour) or on an engine with no exact
  // tier yields kInvalidArgument. Preconditions: user < num_nodes,
  // topic < num_topics, top_n > 0, candidates empty.
  util::Result<Response> Recommend(const core::Query& query);

  // Batched queries, fanned across the worker pool. results[i] always
  // answers queries[i] (input order is preserved regardless of which
  // worker served which query). Thread-safe.
  std::vector<util::Result<Response>> RecommendMany(
      std::span<const core::Query> queries);

  // The home shard's half of a coordinator query (DESIGN.md §6.7): the
  // pruned decomposed exploration of Algorithm 2, run on a pool worker
  // under the rebind lock and stamped with the epoch observed under the
  // same hold. Only landmark engines serve it (exact engines answer
  // kInvalidArgument); out-of-bounds queries answer kInvalidArgument
  // rather than aborting, since the op arrives over the wire. Bypasses
  // the result cache — partial records are merged remotely. Thread-safe.
  struct PartialExploration {
    uint64_t graph_epoch = 0;
    std::vector<landmark::DecomposedRecord> records;
  };
  util::Result<PartialExploration> ExplorePartial(const core::Query& q);

  // Convenience over Recommend() for in-process callers with no deadline
  // or exclusions (CLI, tests, benchmarks): the ranked entries, or the
  // error Recommend() reported (deadline expiry, admission failures).
  // Recoverable serving errors propagate — they never abort the process.
  util::Result<std::vector<util::ScoredId>> TopN(graph::NodeId user,
                                                 topics::TopicId topic,
                                                 uint32_t top_n);

  // Drops all cached results in O(1) by bumping the params epoch, then
  // sweeps entries keyed to dead epochs out of the cache so they stop
  // occupying capacity (they are unreachable by fresh-lookup key equality
  // the moment the epoch moves). With the degradation ladder enabled the
  // sweep retains the newest `stale_keep_epochs` dead generations — the
  // stale tier's inventory — and only purges older ones. Wire this to
  // dynamic::DeltaGraph::SetChangeListener so edge churn can never serve
  // stale lists as fresh.
  void Invalidate();

  // Points the engine at a new graph snapshot (e.g. a materialised
  // DeltaGraph) and rebuilds every worker's scorer against it. Implies
  // Invalidate(). Blocks until in-flight queries drain; both references
  // must outlive the engine, and the new graph must keep the old node-id
  // universe (DeltaGraph::Materialize does).
  void Rebind(const graph::LabeledGraph& g,
              const core::AuthorityIndex& authority);

  // Runs `fn` while holding the rebind lock exclusively (no query in
  // flight), then bumps the epoch. The in-place landmark repair path uses
  // this to refresh one landmark's stored lists without queries observing
  // a half-written list.
  void RunExclusive(const std::function<void()>& fn);

  // Installs a hook invoked once per scored (cache-miss) query, under the
  // shared rebind lock. It returns whether any landmark list is currently
  // marked-but-unrepaired; the landmark repairer's probe also counts such
  // queries (mbr_repair_stale_reads_total). An approx-tier query scored
  // while the probe reports staleness may have composed an outdated
  // stored list, so its reply is stamped served_tier = kStale. Not
  // thread-safe against in-flight queries: install before serving
  // traffic.
  void SetStaleProbe(std::function<bool()> probe);

  uint64_t params_epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }
  uint32_t num_workers() const { return pool_.num_workers(); }
  // Bounds of the currently-bound graph, for callers (e.g. the network
  // server) that must validate queries before Recommend()'s hard
  // preconditions. Consistent under a concurrent Rebind.
  uint32_t num_nodes() const;
  uint32_t num_topics() const;
  bool cache_enabled() const { return cache_ != nullptr; }
  // The best tier this engine can serve (kExact, or kApprox for a
  // landmark-only engine without the ladder).
  core::Tier base_tier() const { return base_tier_; }
  bool degrade_enabled() const { return degrade_enabled_; }
  // The ladder's pressure signal (watermark state, recent p99). Valid for
  // the engine's lifetime; read-only observers are thread-safe.
  const PressureMonitor& pressure() const { return monitor_; }

  // The registry holding the engine's series (the configured one, or the
  // engine-owned private registry).
  obs::Registry& registry() { return *registry_; }

  EngineStats Stats() const;

 private:
  struct CacheKey {
    graph::NodeId user = 0;
    topics::TopicId topic = 0;
    uint32_t top_n = 0;
    uint64_t epoch = 0;
    friend bool operator==(const CacheKey&, const CacheKey&) = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const {
      uint64_t h = (static_cast<uint64_t>(k.user) << 32) |
                   ((static_cast<uint64_t>(k.topic) << 16) ^ k.top_n);
      h ^= k.epoch + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };
  // Cached value: the ranked list plus the tier that computed it, so a
  // hit's reply can name its true provenance.
  struct CachedList {
    std::vector<util::ScoredId> entries;
    core::Tier tier = core::Tier::kExact;
  };
  using Cache = util::ShardedLruCache<CacheKey, CachedList, CacheKeyHash>;

  // Per-worker scoring state; indexed by the pool's worker id. With the
  // ladder enabled both recommenders exist; otherwise exactly one does.
  struct Worker {
    std::unique_ptr<core::Scorer> scorer;
    std::unique_ptr<landmark::ApproxRecommender> approx;
  };

  // Registry-backed serving counters.
  struct Metrics {
    obs::Counter* queries = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* invalidations = nullptr;
    obs::Counter* cache_purged = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* tier_served[3] = {nullptr, nullptr, nullptr};
    obs::Counter* degraded = nullptr;
    obs::Histogram* latency_us = nullptr;
  };

  void BuildWorkers();
  // Scores one query on worker `wid` (cache miss path) at the tier the
  // ladder currently allows, records its latency, and stamps the tier.
  // Caller must hold rebind_mu_ shared.
  util::Result<Response> ExecuteQuery(uint32_t wid, const core::Query& q);
  // The tier a scored (miss-path) query serves at right now: pressure
  // capped by q.min_tier, clamped to the recommenders actually built.
  // Never returns kStale (admission resolves the ladder's stale tier;
  // ExecuteQuery may still downgrade an approx reply to kStale when the
  // stale probe reports unrepaired landmark lists).
  core::Tier ChooseScoredTier(const core::Query& q) const;
  // Counts one served reply in the per-tier/degraded series.
  void CountServed(core::Tier tier);
  void RecordLatencySeconds(double seconds);
  bool CacheLookup(const CacheKey& key, CachedList* out);
  // Probes dead-epoch cache keys (newest first) for the stale tier.
  // Returns true and fills *out / *age on a hit.
  bool StaleLookup(const core::Query& q, uint64_t epoch, CachedList* out,
                   uint32_t* age);

  const graph::LabeledGraph* g_;
  const core::AuthorityIndex* authority_;
  const topics::SimilarityMatrix* sim_;
  EngineConfig config_;
  std::function<bool()> stale_probe_;

  // Ladder state, derived from config in the constructor.
  bool degrade_enabled_ = false;
  core::Tier base_tier_ = core::Tier::kExact;
  bool has_exact_ = true;
  bool has_approx_ = false;
  PressureMonitor monitor_;

  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  Metrics metrics_;

  // Queries hold this shared; Rebind holds it exclusive to swap scorers.
  // Mutable so const accessors (num_nodes) can take the shared side.
  mutable std::shared_mutex rebind_mu_;
  // Per-worker query arenas (DESIGN.md §6.6). Created once in the
  // constructor and handed to each worker's scorer, so the warmed scratch
  // survives Rebind() scorer swaps. Declared before workers_ so the
  // scorers (which hold raw arena pointers) destruct first.
  std::vector<std::unique_ptr<util::QueryArena>> arenas_;
  std::vector<Worker> workers_;
  std::unique_ptr<Cache> cache_;

  std::atomic<uint64_t> epoch_{0};

  // Declared last so its destructor joins the workers while the scorers
  // and cache above are still alive.
  util::ThreadPool pool_;
};

}  // namespace mbr::service

#endif  // MBR_SERVICE_QUERY_ENGINE_H_
