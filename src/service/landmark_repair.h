#ifndef MBR_SERVICE_LANDMARK_REPAIR_H_
#define MBR_SERVICE_LANDMARK_REPAIR_H_

// Lazy landmark-list repair under live graph churn — the serving-side
// answer to the paper's §6 "graph dynamicity may impact the scores stored
// by the landmarks", following the valkey-search HNSW repair pattern
// (SNIPPETS.md Snippet 3): version counters mark work stale, queries
// detect staleness cheaply, and an asynchronous thread repairs lazily
// instead of rebuilding the whole index.
//
// State machine, per landmark slot (version counters, monotone u64):
//
//   marked_seq[s]   — bumped (to a fresh global sequence number) when a
//                     mutation batch touches a vertex that appears in
//                     slot s's stored lists, or is the landmark itself;
//   repaired_seq[s] — set to the marked_seq observed at the start of a
//                     repair, once that repair completes.
//
//   slot s is STALE  iff  marked_seq[s] > repaired_seq[s].
//
// A repair that races with a new marking leaves the slot stale (its
// marked_seq moved past the sequence the repair observed) — re-repair, not
// lost updates. The repair unit is LandmarkIndex::RefreshLandmark (re-run
// Algorithm 1 for one landmark), executed under QueryEngine::RunExclusive
// so queries never observe a half-written stored list; RunExclusive also
// bumps the graph epoch, keeping cached rankings from before the repair
// unreachable.
//
// Stale *detection at query time* is one atomic load: the engine's stale
// probe (install via MakeStaleProbe) increments
// mbr_repair_stale_reads_total whenever a query is scored while any slot
// is stale — the serving-visible measure of repair lag that the churn
// drift bench correlates with recall/Kendall-tau.
//
// Mode kTouched repairs only slots whose stored lists can have changed;
// kAll marks every slot on every batch (an upper bound used by the
// differential oracle: after Quiesce() the index is byte-identical to a
// fresh build, because RefreshLandmark is deterministic).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/authority.h"
#include "graph/labeled_graph.h"
#include "landmark/index.h"
#include "obs/metrics.h"
#include "service/query_engine.h"
#include "topics/similarity_matrix.h"

namespace mbr::service {

struct RepairConfig {
  enum class Mode { kTouched, kAll };
  Mode mode = Mode::kTouched;
};

class LandmarkRepairer {
 public:
  // `index` is the live index the engine serves from (repaired in place);
  // `graph`/`authority` are the generation it currently matches. All
  // references must outlive the repairer; destroy (or Stop) the repairer
  // before the engine and index.
  LandmarkRepairer(landmark::LandmarkIndex& index, QueryEngine& engine,
                   const topics::SimilarityMatrix& sim,
                   std::shared_ptr<const graph::LabeledGraph> graph,
                   std::shared_ptr<const core::AuthorityIndex> authority,
                   const RepairConfig& config = {});
  ~LandmarkRepairer();

  LandmarkRepairer(const LandmarkRepairer&) = delete;
  LandmarkRepairer& operator=(const LandmarkRepairer&) = delete;

  // Starts / stops the background repair thread. Without Start(),
  // Quiesce() drains the stale set synchronously on the calling thread
  // (deterministic single-threaded tests).
  void Start();
  void Stop();

  // Called by the MutationApplier after every applied batch: adopt the
  // new generation and mark affected slots stale. Thread-safe.
  void OnBatchApplied(std::shared_ptr<const graph::LabeledGraph> graph,
                      std::shared_ptr<const core::AuthorityIndex> authority,
                      std::span<const graph::NodeId> touched);

  // Blocks until no slot is stale and no repair is in flight. With the
  // thread running this waits; otherwise it repairs inline.
  void Quiesce();

  size_t stale_count() const {
    return stale_count_.load(std::memory_order_relaxed);
  }
  uint64_t repairs_done() const;

  // Probe for QueryEngine::SetStaleProbe: counts queries scored while any
  // landmark list is stale and reports that staleness to the engine, which
  // downgrades approx-tier replies to kStale until the repairs land.
  std::function<bool()> MakeStaleProbe();

 private:
  void MarkSlotLocked(uint32_t slot);
  void RecomputeStaleLocked();
  // Rebuilds the node -> slots reverse index entry set for `slot` from its
  // current stored lists.
  void ReindexSlotLocked(uint32_t slot);
  // Repairs one stale slot (the lowest). Returns false if none was stale.
  // Caller must hold `lock` (it is released around the refresh).
  bool RepairOneLocked(std::unique_lock<std::mutex>& lock);
  void RepairLoop();

  landmark::LandmarkIndex* index_;
  QueryEngine* engine_;
  const topics::SimilarityMatrix* sim_;
  RepairConfig config_;

  obs::Counter* stale_marked_ = nullptr;
  obs::Counter* repaired_ = nullptr;
  obs::Counter* stale_reads_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<const graph::LabeledGraph> graph_;
  std::shared_ptr<const core::AuthorityIndex> authority_;
  uint64_t seq_ = 0;
  std::vector<uint64_t> marked_seq_;
  std::vector<uint64_t> repaired_seq_;
  // node -> slots whose stored lists contain the node (sorted, unique) —
  // how a touched vertex finds the landmarks it can invalidate.
  std::vector<std::vector<uint32_t>> node_to_slots_;
  // members_[slot]: nodes currently indexed for the slot (to unindex on
  // refresh).
  std::vector<std::vector<graph::NodeId>> members_;
  bool repair_in_flight_ = false;
  bool stop_ = false;
  bool running_ = false;
  uint64_t repairs_done_ = 0;

  std::atomic<size_t> stale_count_{0};
  std::thread thread_;
};

}  // namespace mbr::service

#endif  // MBR_SERVICE_LANDMARK_REPAIR_H_
