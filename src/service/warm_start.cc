#include "service/warm_start.h"

#include <utility>

#include "graph/snapshot.h"

namespace mbr::service {

util::Result<std::unique_ptr<ServingReplica>> WarmStart(
    const std::string& snapshot_path, const std::string& index_path,
    const topics::SimilarityMatrix& sim, EngineConfig config) {
  auto g = graph::Snapshot::Load(snapshot_path);
  if (!g.ok()) return g.status();

  auto replica = std::make_unique<ServingReplica>();
  replica->graph = std::move(*g);
  replica->authority =
      std::make_unique<core::AuthorityIndex>(replica->graph);

  config.landmarks = nullptr;
  if (!index_path.empty()) {
    auto idx = landmark::LandmarkIndex::LoadFrom(index_path,
                                                 replica->graph.num_nodes());
    if (!idx.ok()) return idx.status();
    if (idx->num_topics() != replica->graph.num_topics()) {
      return util::Status::InvalidArgument(
          "landmark index has " + std::to_string(idx->num_topics()) +
          " topics, snapshot has " +
          std::to_string(replica->graph.num_topics()));
    }
    replica->landmarks =
        std::make_unique<landmark::LandmarkIndex>(std::move(*idx));
    config.landmarks = replica->landmarks.get();
    // Serve with the parameters the stored σ lists were built under —
    // Proposition 4 composes query-time and stored scores, so a params
    // mismatch silently skews every approximate result.
    config.params = replica->landmarks->config().params;
  }

  replica->engine = std::make_unique<QueryEngine>(
      replica->graph, *replica->authority, sim, config);
  return replica;
}

}  // namespace mbr::service
