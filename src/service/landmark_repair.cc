#include "service/landmark_repair.h"

#include <algorithm>

#include "util/logging.h"

namespace mbr::service {

namespace {
constexpr uint32_t kNoSlot = 0xFFFFFFFFu;
}  // namespace

LandmarkRepairer::LandmarkRepairer(
    landmark::LandmarkIndex& index, QueryEngine& engine,
    const topics::SimilarityMatrix& sim,
    std::shared_ptr<const graph::LabeledGraph> graph,
    std::shared_ptr<const core::AuthorityIndex> authority,
    const RepairConfig& config)
    : index_(&index),
      engine_(&engine),
      sim_(&sim),
      config_(config),
      graph_(std::move(graph)),
      authority_(std::move(authority)) {
  obs::Registry& reg = engine.registry();
  stale_marked_ = reg.GetCounter(
      "mbr_repair_stale_marked_total",
      "Landmark slots marked stale by mutation batches.");
  repaired_ = reg.GetCounter("mbr_repair_repaired_total",
                             "Landmark refreshes completed by the repairer.");
  stale_reads_ = reg.GetCounter(
      "mbr_repair_stale_reads_total",
      "Queries scored while at least one landmark list was stale.");
  const size_t num_slots = index_->landmarks().size();
  marked_seq_.assign(num_slots, 0);
  repaired_seq_.assign(num_slots, 0);
  members_.resize(num_slots);
  node_to_slots_.resize(graph_->num_nodes());
  for (uint32_t s = 0; s < num_slots; ++s) ReindexSlotLocked(s);
}

LandmarkRepairer::~LandmarkRepairer() { Stop(); }

void LandmarkRepairer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { RepairLoop(); });
}

void LandmarkRepairer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

std::function<bool()> LandmarkRepairer::MakeStaleProbe() {
  return [this] {
    if (stale_count_.load(std::memory_order_relaxed) == 0) return false;
    stale_reads_->Increment();
    return true;
  };
}

uint64_t LandmarkRepairer::repairs_done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return repairs_done_;
}

void LandmarkRepairer::MarkSlotLocked(uint32_t slot) {
  ++seq_;
  marked_seq_[slot] = seq_;
  stale_marked_->Increment();
}

void LandmarkRepairer::RecomputeStaleLocked() {
  size_t stale = 0;
  for (size_t s = 0; s < marked_seq_.size(); ++s) {
    if (marked_seq_[s] > repaired_seq_[s]) ++stale;
  }
  stale_count_.store(stale, std::memory_order_relaxed);
}

void LandmarkRepairer::ReindexSlotLocked(uint32_t slot) {
  for (graph::NodeId n : members_[slot]) {
    auto& slots = node_to_slots_[n];
    slots.erase(std::remove(slots.begin(), slots.end(), slot), slots.end());
  }
  std::vector<graph::NodeId> members;
  const graph::NodeId lm = index_->landmarks()[slot];
  for (int t = 0; t < index_->num_topics(); ++t) {
    for (const landmark::StoredRec& rec :
         index_->Recommendations(lm, static_cast<topics::TopicId>(t))) {
      members.push_back(rec.node);
    }
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  for (graph::NodeId n : members) {
    if (n < node_to_slots_.size()) node_to_slots_[n].push_back(slot);
  }
  members_[slot] = std::move(members);
}

void LandmarkRepairer::OnBatchApplied(
    std::shared_ptr<const graph::LabeledGraph> graph,
    std::shared_ptr<const core::AuthorityIndex> authority,
    std::span<const graph::NodeId> touched) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    graph_ = std::move(graph);
    authority_ = std::move(authority);
    if (config_.mode == RepairConfig::Mode::kAll) {
      for (uint32_t s = 0; s < marked_seq_.size(); ++s) MarkSlotLocked(s);
    } else {
      // A touched vertex can change (a) the stored lists that contain it
      // and (b) — when it is a landmark — its own exploration. Everything
      // else is conservatively assumed unaffected; that is the repair-lag
      // approximation the drift bench quantifies.
      for (graph::NodeId n : touched) {
        if (n >= node_to_slots_.size()) continue;
        for (uint32_t s : node_to_slots_[n]) MarkSlotLocked(s);
        if (index_->IsLandmark(n)) {
          const auto& lms = index_->landmarks();
          for (uint32_t s = 0; s < lms.size(); ++s) {
            if (lms[s] == n) {
              MarkSlotLocked(s);
              break;
            }
          }
        }
      }
    }
    RecomputeStaleLocked();
  }
  cv_.notify_all();
}

bool LandmarkRepairer::RepairOneLocked(std::unique_lock<std::mutex>& lock) {
  uint32_t slot = kNoSlot;
  for (uint32_t s = 0; s < marked_seq_.size(); ++s) {
    if (marked_seq_[s] > repaired_seq_[s]) {
      slot = s;
      break;
    }
  }
  if (slot == kNoSlot) return false;
  const uint64_t mark = marked_seq_[slot];
  // Snapshot the generation to refresh against, then release the lock for
  // the expensive part: markings that land during the refresh keep the
  // slot stale (marked_seq moves past `mark`) and trigger a re-repair.
  std::shared_ptr<const graph::LabeledGraph> g = graph_;
  std::shared_ptr<const core::AuthorityIndex> auth = authority_;
  const graph::NodeId lm = index_->landmarks()[slot];
  repair_in_flight_ = true;
  lock.unlock();
  engine_->RunExclusive(
      [&] { index_->RefreshLandmark(lm, *g, *auth, *sim_); });
  lock.lock();
  repaired_->Increment();
  ++repairs_done_;
  if (repaired_seq_[slot] < mark) repaired_seq_[slot] = mark;
  ReindexSlotLocked(slot);
  RecomputeStaleLocked();
  repair_in_flight_ = false;
  cv_.notify_all();
  return true;
}

void LandmarkRepairer::RepairLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] {
      return stop_ || stale_count_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_) return;
    RepairOneLocked(lock);
  }
}

void LandmarkRepairer::Quiesce() {
  std::unique_lock<std::mutex> lock(mu_);
  if (running_) {
    cv_.wait(lock, [&] {
      return stale_count_.load(std::memory_order_relaxed) == 0 &&
             !repair_in_flight_;
    });
  } else {
    while (RepairOneLocked(lock)) {
    }
  }
}

}  // namespace mbr::service
