#ifndef MBR_SERVICE_WARM_START_H_
#define MBR_SERVICE_WARM_START_H_

// Warm-starting a serving worker from persisted artifacts.
//
// The production deployment story is: pre-process once (graph snapshot via
// `mbrec save-graph`, landmark index via `mbrec landmarks`), ship the files
// to every serving worker, and boot each worker straight from them — no
// edge-list parsing, no Algorithm 1 re-runs. WarmStart() loads both
// artifacts through the hardened serde loaders, rebuilds the (cheap)
// AuthorityIndex, and assembles a ready QueryEngine; any malformed file is
// a clean util::Status, never a crashed worker.
//
// When a landmark index is present, the engine's ScoreParams are taken from
// the index file — an index built for an ablation variant (or a non-default
// β/α) must be composed via Proposition 4 with exactly the parameters it
// was built with, not whatever the serving config defaults to.

#include <memory>
#include <string>

#include "core/authority.h"
#include "graph/labeled_graph.h"
#include "landmark/index.h"
#include "service/query_engine.h"
#include "topics/similarity_matrix.h"
#include "util/status.h"

namespace mbr::service {

// A serving worker's loaded state. The engine holds references into the
// sibling members, so a replica lives behind a unique_ptr (stable
// addresses) and is not copyable or movable.
struct ServingReplica {
  graph::LabeledGraph graph;
  std::unique_ptr<core::AuthorityIndex> authority;
  // Null when serving exact (converged) scoring instead of Algorithm 2.
  std::unique_ptr<landmark::LandmarkIndex> landmarks;
  std::unique_ptr<QueryEngine> engine;

  ServingReplica() = default;
  ServingReplica(const ServingReplica&) = delete;
  ServingReplica& operator=(const ServingReplica&) = delete;
};

// Boots a replica from a graph snapshot and an optional landmark index
// (empty `index_path` = exact scoring). `config.landmarks` and — when an
// index is given — `config.params` are overwritten from the loaded
// artifacts. `sim` must match the snapshot's topic vocabulary and outlive
// the replica.
util::Result<std::unique_ptr<ServingReplica>> WarmStart(
    const std::string& snapshot_path, const std::string& index_path,
    const topics::SimilarityMatrix& sim, EngineConfig config);

}  // namespace mbr::service

#endif  // MBR_SERVICE_WARM_START_H_
