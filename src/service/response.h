#ifndef MBR_SERVICE_RESPONSE_H_
#define MBR_SERVICE_RESPONSE_H_

// The serving reply value object (DESIGN.md §6.8).
//
// Offline recommenders answer with a bare core::Ranking — a pure ranked
// list. The serving engine wraps that list in a Response that additionally
// says *how* it was served: which tier of the degradation ladder produced
// it, whether it came out of the result cache, and which graph epoch the
// ranking was computed under. Callers that only care about the list read
// `.ranking`; callers that surface serving provenance (the wire encoder,
// the stats rollup, the router's tier merge) read `.meta`.

#include <cstdint>

#include "core/recommender_iface.h"

namespace mbr::service {

// Serving provenance for one answered query.
struct ServeMeta {
  // The ladder tier that produced the ranking. For cache hits this is the
  // tier that originally computed the cached list, not the (free) lookup.
  core::Tier served_tier = core::Tier::kExact;
  // True when the ranking came out of the result cache (fresh- or
  // stale-epoch hit) rather than a scorer run.
  bool cache_hit = false;
  // Graph epoch the ranking was computed under. A stale-tier reply carries
  // the dead epoch its entry was cached at — never the current one.
  uint64_t graph_epoch = 0;
  // How many epochs behind the current graph this reply is; 0 for every
  // tier but kStale.
  uint32_t stale_age_epochs = 0;
};

struct Response {
  core::Ranking ranking;
  ServeMeta meta;
};

}  // namespace mbr::service

#endif  // MBR_SERVICE_RESPONSE_H_
