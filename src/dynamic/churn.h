#ifndef MBR_DYNAMIC_CHURN_H_
#define MBR_DYNAMIC_CHURN_H_

// Follow-graph churn workloads for the §6 dynamicity study: unfollows
// (random live edges, biased towards low-interest ones) and new follows
// (popularity-weighted targets sharing a topic with the follower — the same
// mechanisms the Twitter generator uses, so churned graphs stay
// distributionally faithful).

#include <cstdint>

#include "dynamic/delta_graph.h"
#include "dynamic/incremental_authority.h"
#include "util/rng.h"

namespace mbr::dynamic {

struct ChurnConfig {
  // Fraction of the current edge count to remove and to add per round
  // (e.g. 0.05 -> 5% unfollows + 5% new follows).
  double unfollow_fraction = 0.05;
  double follow_fraction = 0.05;
  uint64_t seed = 33;
};

struct ChurnStats {
  uint64_t edges_removed = 0;
  uint64_t edges_added = 0;
};

// Applies one churn round to `overlay` and (if non-null) keeps `authority`
// in sync edge by edge. Returns what was done.
ChurnStats ApplyChurnRound(DeltaGraph* overlay,
                           IncrementalAuthority* authority,
                           const ChurnConfig& config, util::Rng* rng);

}  // namespace mbr::dynamic

#endif  // MBR_DYNAMIC_CHURN_H_
