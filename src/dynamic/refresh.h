#ifndef MBR_DYNAMIC_REFRESH_H_
#define MBR_DYNAMIC_REFRESH_H_

// Landmark refresh policies — the "updating strategies" the paper's §6
// proposes to study. Re-running Algorithm 1 for every landmark after each
// batch of churn is exact but costs the full pre-processing; with a fixed
// refresh budget of k landmarks per round, the policy decides *which*
// landmarks to recompute:
//
//   kNone        — never refresh (the staleness baseline)
//   kRoundRobin  — cycle through the landmarks obliviously
//   kMostChurned — refresh the landmarks most affected by the round's edge
//                  changes, estimated from the change log: a change (u, v)
//                  touches λ if u or v is λ itself or appears in one of
//                  λ's stored recommendation lists (those are exactly the
//                  walks the stored scores summed over).

#include <cstdint>
#include <vector>

#include "core/authority.h"
#include "dynamic/delta_graph.h"
#include "graph/labeled_graph.h"
#include "landmark/index.h"
#include "topics/similarity_matrix.h"

namespace mbr::dynamic {

enum class RefreshPolicy {
  kNone,
  kRoundRobin,
  kMostChurned,
};

const char* RefreshPolicyName(RefreshPolicy p);

// Maintains a landmark index against a churning graph with a per-round
// refresh budget.
class LandmarkRefresher {
 public:
  // Snapshots the landmark list and configuration from `index`; the
  // refresher then owns the evolving index.
  LandmarkRefresher(landmark::LandmarkIndex index, RefreshPolicy policy,
                    uint32_t budget_per_round);

  const landmark::LandmarkIndex& index() const { return index_; }

  // Scores each landmark's exposure to `changes` (additions + removals
  // since the last round): the number of changes touching the landmark or
  // its stored recommendations. Exposed for tests.
  std::vector<uint64_t> ChurnExposure(
      const std::vector<EdgeChange>& changes) const;

  // Applies one refresh round: picks up to `budget` landmarks according to
  // the policy and recomputes their stored lists on `current` (the
  // materialised post-churn graph). Returns the refreshed landmark ids.
  std::vector<graph::NodeId> RefreshRound(
      const graph::LabeledGraph& current,
      const core::AuthorityIndex& authority,
      const topics::SimilarityMatrix& sim,
      const std::vector<EdgeChange>& changes_since_last_round);

  uint64_t total_refreshed() const { return total_refreshed_; }

 private:
  landmark::LandmarkIndex index_;
  RefreshPolicy policy_;
  uint32_t budget_;
  uint32_t round_robin_cursor_ = 0;
  // kMostChurned: churn exposure accumulated since each landmark's last
  // refresh (index-aligned with index_.landmarks()).
  std::vector<uint64_t> accumulated_exposure_;
  uint64_t total_refreshed_ = 0;
};

}  // namespace mbr::dynamic

#endif  // MBR_DYNAMIC_REFRESH_H_
