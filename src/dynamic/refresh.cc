#include "dynamic/refresh.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/logging.h"

namespace mbr::dynamic {

namespace {
using graph::NodeId;
}  // namespace

const char* RefreshPolicyName(RefreshPolicy p) {
  switch (p) {
    case RefreshPolicy::kNone:
      return "None";
    case RefreshPolicy::kRoundRobin:
      return "RoundRobin";
    case RefreshPolicy::kMostChurned:
      return "MostChurned";
  }
  return "?";
}

LandmarkRefresher::LandmarkRefresher(landmark::LandmarkIndex index,
                                     RefreshPolicy policy,
                                     uint32_t budget_per_round)
    : index_(std::move(index)), policy_(policy), budget_(budget_per_round) {}

std::vector<uint64_t> LandmarkRefresher::ChurnExposure(
    const std::vector<EdgeChange>& changes) const {
  const auto& landmarks = index_.landmarks();
  // node -> landmark slots whose stored lists contain it (or that ARE it),
  // deduplicated per (node, slot) via the last-pushed marker.
  std::unordered_map<NodeId, std::vector<uint32_t>> watchers;
  auto watch = [&](NodeId node, uint32_t slot) {
    auto& v = watchers[node];
    if (v.empty() || v.back() != slot) v.push_back(slot);
  };
  for (uint32_t i = 0; i < landmarks.size(); ++i) {
    watch(landmarks[i], i);
    for (int t = 0; t < index_.num_topics(); ++t) {
      for (const landmark::StoredRec& rec : index_.Recommendations(
               landmarks[i], static_cast<topics::TopicId>(t))) {
        watch(rec.node, i);
      }
    }
  }

  std::vector<uint64_t> exposure(landmarks.size(), 0);
  for (const EdgeChange& change : changes) {
    for (NodeId endpoint : {change.src, change.dst}) {
      auto it = watchers.find(endpoint);
      if (it == watchers.end()) continue;
      for (uint32_t slot : it->second) ++exposure[slot];
    }
  }
  return exposure;
}

std::vector<NodeId> LandmarkRefresher::RefreshRound(
    const graph::LabeledGraph& current,
    const core::AuthorityIndex& authority,
    const topics::SimilarityMatrix& sim,
    const std::vector<EdgeChange>& changes_since_last_round) {
  const auto& landmarks = index_.landmarks();
  std::vector<NodeId> refreshed;
  if (policy_ == RefreshPolicy::kNone || landmarks.empty() || budget_ == 0) {
    return refreshed;
  }
  uint32_t budget = std::min<uint32_t>(
      budget_, static_cast<uint32_t>(landmarks.size()));

  if (policy_ == RefreshPolicy::kRoundRobin) {
    for (uint32_t k = 0; k < budget; ++k) {
      NodeId lm = landmarks[round_robin_cursor_];
      round_robin_cursor_ =
          (round_robin_cursor_ + 1) % static_cast<uint32_t>(landmarks.size());
      index_.RefreshLandmark(lm, current, authority, sim);
      refreshed.push_back(lm);
    }
  } else {  // kMostChurned
    // Staleness accumulates: exposure adds up across rounds and resets
    // only when a landmark is actually refreshed, so the budget spreads
    // over everything the churn touched instead of re-polishing the same
    // hot landmarks every round.
    std::vector<uint64_t> exposure = ChurnExposure(changes_since_last_round);
    if (accumulated_exposure_.size() != landmarks.size()) {
      accumulated_exposure_.assign(landmarks.size(), 0);
    }
    for (size_t i = 0; i < landmarks.size(); ++i) {
      accumulated_exposure_[i] += exposure[i];
    }
    std::vector<uint32_t> order(landmarks.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      if (accumulated_exposure_[a] != accumulated_exposure_[b]) {
        return accumulated_exposure_[a] > accumulated_exposure_[b];
      }
      return a < b;
    });
    for (uint32_t k = 0; k < budget; ++k) {
      if (accumulated_exposure_[order[k]] == 0) break;  // nothing stale left
      NodeId lm = landmarks[order[k]];
      index_.RefreshLandmark(lm, current, authority, sim);
      accumulated_exposure_[order[k]] = 0;
      refreshed.push_back(lm);
    }
  }
  total_refreshed_ += refreshed.size();
  return refreshed;
}

}  // namespace mbr::dynamic
