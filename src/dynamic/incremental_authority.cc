#include "dynamic/incremental_authority.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mbr::dynamic {

IncrementalAuthority::IncrementalAuthority(const graph::LabeledGraph& g) {
  num_topics_ = g.num_topics();
  const graph::NodeId n = g.num_nodes();
  followers_on_topic_.assign(static_cast<size_t>(n) * num_topics_, 0);
  label_mass_.assign(n, 0);
  in_degree_.assign(n, 0);
  max_followers_.assign(num_topics_, 0);
  max_dirty_.assign(num_topics_, 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    in_degree_[v] = g.InDegree(v);
    uint32_t* row = &followers_on_topic_[static_cast<size_t>(v) * num_topics_];
    for (topics::TopicSet labels : g.InEdgeLabels(v)) {
      for (topics::TopicId t : labels) {
        ++row[t];
        ++label_mass_[v];
      }
    }
    for (int t = 0; t < num_topics_; ++t) {
      max_followers_[t] = std::max(max_followers_[t], row[t]);
    }
  }
}

void IncrementalAuthority::OnEdgeAdded(graph::NodeId /*u*/, graph::NodeId v,
                                       topics::TopicSet labels) {
  uint32_t* row = &followers_on_topic_[static_cast<size_t>(v) * num_topics_];
  for (topics::TopicId t : labels) {
    MBR_CHECK(t < num_topics_);
    ++row[t];
    ++label_mass_[v];
    if (row[t] >= max_followers_[t]) {
      // Reaching (or passing) the stored bound proves it tight again.
      max_followers_[t] = row[t];
      if (max_dirty_[t]) {
        max_dirty_[t] = 0;
        --dirty_count_;
      }
    }
  }
  ++in_degree_[v];
  ++updates_since_refresh_;
}

void IncrementalAuthority::OnEdgeRemoved(graph::NodeId /*u*/,
                                         graph::NodeId v,
                                         topics::TopicSet labels) {
  uint32_t* row = &followers_on_topic_[static_cast<size_t>(v) * num_topics_];
  for (topics::TopicId t : labels) {
    MBR_CHECK(t < num_topics_);
    MBR_CHECK(row[t] > 0);
    const bool held_max = row[t] == max_followers_[t];
    --row[t];
    MBR_CHECK(label_mass_[v] > 0);
    --label_mass_[v];
    // Only losing a follower from a max-holding row can invalidate the
    // bound; RefreshDirtyMax()/RefreshMax() repairs it.
    if (held_max && !max_dirty_[t]) {
      max_dirty_[t] = 1;
      ++dirty_count_;
    }
  }
  MBR_CHECK(in_degree_[v] > 0);
  --in_degree_[v];
  ++updates_since_refresh_;
}

double IncrementalAuthority::Authority(graph::NodeId v,
                                       topics::TopicId t) const {
  MBR_DCHECK(t < num_topics_);
  uint32_t count =
      followers_on_topic_[static_cast<size_t>(v) * num_topics_ + t];
  if (count == 0 || label_mass_[v] == 0 || max_followers_[t] == 0) {
    return 0.0;
  }
  double local =
      static_cast<double>(count) / static_cast<double>(label_mass_[v]);
  double global = std::log(1.0 + count) /
                  std::log(1.0 + static_cast<double>(max_followers_[t]));
  return local * global;
}

void IncrementalAuthority::RefreshMax() {
  std::fill(max_followers_.begin(), max_followers_.end(), 0);
  const size_t n = label_mass_.size();
  for (size_t v = 0; v < n; ++v) {
    const uint32_t* row = &followers_on_topic_[v * num_topics_];
    for (int t = 0; t < num_topics_; ++t) {
      max_followers_[t] = std::max(max_followers_[t], row[t]);
    }
  }
  std::fill(max_dirty_.begin(), max_dirty_.end(), 0);
  dirty_count_ = 0;
  updates_since_refresh_ = 0;
}

int IncrementalAuthority::RefreshDirtyMax() {
  if (dirty_count_ == 0) return 0;
  const size_t n = label_mass_.size();
  int rescanned = 0;
  for (int t = 0; t < num_topics_; ++t) {
    if (!max_dirty_[t]) continue;
    uint32_t max = 0;
    for (size_t v = 0; v < n; ++v) {
      max = std::max(max, followers_on_topic_[v * num_topics_ + t]);
    }
    max_followers_[t] = max;
    max_dirty_[t] = 0;
    ++rescanned;
  }
  dirty_count_ = 0;
  return rescanned;
}

}  // namespace mbr::dynamic
