#include "dynamic/delta_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace mbr::dynamic {

namespace {
using graph::NodeId;
using topics::TopicSet;

using OverlayList = std::vector<std::pair<NodeId, TopicSet>>;

OverlayList::const_iterator FindIn(const OverlayList& list, NodeId v) {
  auto it = std::lower_bound(
      list.begin(), list.end(), v,
      [](const std::pair<NodeId, TopicSet>& e, NodeId n) {
        return e.first < n;
      });
  if (it != list.end() && it->first == v) return it;
  return list.end();
}

}  // namespace

DeltaGraph::DeltaGraph(const graph::LabeledGraph* base)
    : base_(base),
      num_edges_(base->num_edges()),
      added_(base->num_nodes()),
      in_degree_delta_pos_(base->num_nodes(), 0),
      in_degree_delta_neg_(base->num_nodes(), 0) {}

bool DeltaGraph::IsAdded(NodeId u, NodeId v) const {
  return FindIn(added_[u], v) != added_[u].end();
}

bool DeltaGraph::AddEdge(NodeId u, NodeId v, TopicSet labels) {
  MBR_CHECK(u < num_nodes() && v < num_nodes());
  if (u == v) return false;
  if (HasEdge(u, v)) return false;
  // Re-adding a previously removed base edge keeps the tombstone and
  // stores the edge (with its new labels) in the overlay — the overlay
  // entry shadows the base edge on every read path.
  auto& list = added_[u];
  auto it = std::lower_bound(
      list.begin(), list.end(), v,
      [](const std::pair<NodeId, TopicSet>& e, NodeId n) {
        return e.first < n;
      });
  list.insert(it, {v, labels});
  ++num_edges_;
  ++in_degree_delta_pos_[v];
  additions_.push_back({u, v, labels});
  if (on_change_) on_change_();
  return true;
}

bool DeltaGraph::RemoveEdge(NodeId u, NodeId v) {
  MBR_CHECK(u < num_nodes() && v < num_nodes());
  // Overlay edge?
  auto& list = added_[u];
  auto it = FindIn(list, v);
  if (it != list.end()) {
    removals_.push_back({u, v, it->second});
    list.erase(list.begin() + (it - list.cbegin()));
    --num_edges_;
    MBR_CHECK(in_degree_delta_pos_[v] > 0);
    --in_degree_delta_pos_[v];
    if (on_change_) on_change_();
    return true;
  }
  // Base edge not yet tombstoned?
  if (base_->HasEdge(u, v) && !IsRemoved(u, v)) {
    removals_.push_back({u, v, base_->EdgeLabels(u, v)});
    removed_.insert(Key(u, v));
    --num_edges_;
    ++in_degree_delta_neg_[v];
    if (on_change_) on_change_();
    return true;
  }
  return false;
}

bool DeltaGraph::RelabelEdge(NodeId u, NodeId v, TopicSet labels) {
  MBR_CHECK(u < num_nodes() && v < num_nodes());
  if (!HasEdge(u, v)) return false;
  // Remove + re-add with the listener suppressed: all degree counters,
  // tombstones, and the change log evolve exactly as for the two primitive
  // mutations, and the listener observes one logical change.
  std::function<void()> listener = std::move(on_change_);
  on_change_ = nullptr;
  MBR_CHECK(RemoveEdge(u, v));
  MBR_CHECK(AddEdge(u, v, labels));
  on_change_ = std::move(listener);
  if (on_change_) on_change_();
  return true;
}

bool DeltaGraph::HasEdge(NodeId u, NodeId v) const {
  if (IsAdded(u, v)) return true;
  return base_->HasEdge(u, v) && !IsRemoved(u, v);
}

TopicSet DeltaGraph::EdgeLabels(NodeId u, NodeId v) const {
  auto it = FindIn(added_[u], v);
  if (it != added_[u].end()) return it->second;
  if (base_->HasEdge(u, v) && !IsRemoved(u, v)) {
    return base_->EdgeLabels(u, v);
  }
  return TopicSet();
}

uint32_t DeltaGraph::OutDegree(NodeId u) const {
  uint32_t removed_here = 0;
  for (NodeId v : base_->OutNeighbors(u)) {
    if (IsRemoved(u, v)) ++removed_here;
  }
  return base_->OutDegree(u) - removed_here +
         static_cast<uint32_t>(added_[u].size());
}

uint32_t DeltaGraph::InDegree(NodeId v) const {
  return base_->InDegree(v) + in_degree_delta_pos_[v] -
         in_degree_delta_neg_[v];
}

graph::LabeledGraph DeltaGraph::Materialize() const {
  graph::GraphBuilder builder(num_nodes(), base_->num_topics());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    builder.SetNodeLabels(u, base_->NodeLabels(u));
    ForEachOutNeighbor(u, [&](NodeId v, TopicSet labels) {
      builder.AddEdge(u, v, labels);
    });
  }
  return std::move(builder).Build();
}

}  // namespace mbr::dynamic
