#include "dynamic/delta_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace mbr::dynamic {

namespace {
using graph::NodeId;
using topics::TopicSet;

using OverlayList = std::vector<std::pair<NodeId, TopicSet>>;

OverlayList::const_iterator FindIn(const OverlayList& list, NodeId v) {
  auto it = std::lower_bound(
      list.begin(), list.end(), v,
      [](const std::pair<NodeId, TopicSet>& e, NodeId n) {
        return e.first < n;
      });
  if (it != list.end() && it->first == v) return it;
  return list.end();
}

}  // namespace

DeltaGraph::DeltaGraph(const graph::LabeledGraph* base)
    : base_(base),
      num_edges_(base->num_edges()),
      added_(base->num_nodes()),
      added_in_(base->num_nodes()),
      in_degree_delta_pos_(base->num_nodes(), 0),
      in_degree_delta_neg_(base->num_nodes(), 0) {}

bool DeltaGraph::IsAdded(NodeId u, NodeId v) const {
  return FindIn(added_[u], v) != added_[u].end();
}

bool DeltaGraph::AddEdge(NodeId u, NodeId v, TopicSet labels) {
  MBR_CHECK(u < num_nodes() && v < num_nodes());
  if (u == v) return false;
  if (HasEdge(u, v)) return false;
  // Re-adding a previously removed base edge keeps the tombstone and
  // stores the edge (with its new labels) in the overlay — the overlay
  // entry shadows the base edge on every read path.
  auto& list = added_[u];
  auto it = std::lower_bound(
      list.begin(), list.end(), v,
      [](const std::pair<NodeId, TopicSet>& e, NodeId n) {
        return e.first < n;
      });
  list.insert(it, {v, labels});
  auto& rlist = added_in_[v];
  auto rit = std::lower_bound(
      rlist.begin(), rlist.end(), u,
      [](const std::pair<NodeId, TopicSet>& e, NodeId n) {
        return e.first < n;
      });
  rlist.insert(rit, {u, labels});
  ++num_edges_;
  ++in_degree_delta_pos_[v];
  additions_.push_back({u, v, labels});
  if (on_change_) on_change_();
  return true;
}

bool DeltaGraph::RemoveEdge(NodeId u, NodeId v) {
  MBR_CHECK(u < num_nodes() && v < num_nodes());
  // Overlay edge?
  auto& list = added_[u];
  auto it = FindIn(list, v);
  if (it != list.end()) {
    removals_.push_back({u, v, it->second});
    list.erase(list.begin() + (it - list.cbegin()));
    auto& rlist = added_in_[v];
    auto rit = FindIn(rlist, u);
    MBR_CHECK(rit != rlist.end());
    rlist.erase(rlist.begin() + (rit - rlist.cbegin()));
    --num_edges_;
    MBR_CHECK(in_degree_delta_pos_[v] > 0);
    --in_degree_delta_pos_[v];
    if (on_change_) on_change_();
    return true;
  }
  // Base edge not yet tombstoned?
  if (base_->HasEdge(u, v) && !IsRemoved(u, v)) {
    removals_.push_back({u, v, base_->EdgeLabels(u, v)});
    removed_.insert(Key(u, v));
    --num_edges_;
    ++in_degree_delta_neg_[v];
    if (on_change_) on_change_();
    return true;
  }
  return false;
}

bool DeltaGraph::RelabelEdge(NodeId u, NodeId v, TopicSet labels) {
  MBR_CHECK(u < num_nodes() && v < num_nodes());
  if (!HasEdge(u, v)) return false;
  // Remove + re-add with the listener suppressed: all degree counters,
  // tombstones, and the change log evolve exactly as for the two primitive
  // mutations, and the listener observes one logical change.
  std::function<void()> listener = std::move(on_change_);
  on_change_ = nullptr;
  MBR_CHECK(RemoveEdge(u, v));
  MBR_CHECK(AddEdge(u, v, labels));
  on_change_ = std::move(listener);
  if (on_change_) on_change_();
  return true;
}

bool DeltaGraph::HasEdge(NodeId u, NodeId v) const {
  if (IsAdded(u, v)) return true;
  return base_->HasEdge(u, v) && !IsRemoved(u, v);
}

TopicSet DeltaGraph::EdgeLabels(NodeId u, NodeId v) const {
  auto it = FindIn(added_[u], v);
  if (it != added_[u].end()) return it->second;
  if (base_->HasEdge(u, v) && !IsRemoved(u, v)) {
    return base_->EdgeLabels(u, v);
  }
  return TopicSet();
}

uint32_t DeltaGraph::OutDegree(NodeId u) const {
  uint32_t removed_here = 0;
  for (NodeId v : base_->OutNeighbors(u)) {
    if (IsRemoved(u, v)) ++removed_here;
  }
  return base_->OutDegree(u) - removed_here +
         static_cast<uint32_t>(added_[u].size());
}

uint32_t DeltaGraph::InDegree(NodeId v) const {
  return base_->InDegree(v) + in_degree_delta_pos_[v] -
         in_degree_delta_neg_[v];
}

namespace {

// Merges a base CSR row (minus tombstoned ids) with a sorted overlay list
// into one row sorted by neighbor id. The two inputs are disjoint: an
// overlay entry for a live base edge is impossible (AddEdge rejects
// present edges), and a re-added base edge is tombstoned in the base row.
void MergeRow(std::span<const NodeId> base_ids,
              std::span<const TopicSet> base_labs, const OverlayList& overlay,
              const std::function<bool(NodeId)>& is_removed,
              graph::LabeledGraph::RowPatch* out) {
  out->nbrs.reserve(base_ids.size() + overlay.size());
  out->labs.reserve(base_ids.size() + overlay.size());
  size_t i = 0, j = 0;
  while (i < base_ids.size() || j < overlay.size()) {
    if (j == overlay.size() ||
        (i < base_ids.size() && base_ids[i] < overlay[j].first)) {
      if (!is_removed(base_ids[i])) {
        out->nbrs.push_back(base_ids[i]);
        out->labs.push_back(base_labs[i]);
      }
      ++i;
    } else {
      out->nbrs.push_back(overlay[j].first);
      out->labs.push_back(overlay[j].second);
      ++j;
    }
  }
}

}  // namespace

graph::LabeledGraph DeltaGraph::MaterializeFrom(
    const graph::LabeledGraph& prev,
    std::span<const graph::NodeId> touched) const {
  MBR_CHECK(prev.num_nodes() == num_nodes());
  std::vector<NodeId> nodes(touched.begin(), touched.end());
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  std::vector<graph::LabeledGraph::RowPatch> out_patches(nodes.size());
  std::vector<graph::LabeledGraph::RowPatch> in_patches(nodes.size());
  for (size_t k = 0; k < nodes.size(); ++k) {
    const NodeId u = nodes[k];
    MBR_CHECK(u < num_nodes());
    out_patches[k].node = u;
    MergeRow(base_->OutNeighbors(u), base_->OutEdgeLabels(u), added_[u],
             [&](NodeId v) { return IsRemoved(u, v); }, &out_patches[k]);
    in_patches[k].node = u;
    MergeRow(base_->InNeighbors(u), base_->InEdgeLabels(u), added_in_[u],
             [&](NodeId w) { return IsRemoved(w, u); }, &in_patches[k]);
  }
  return graph::LabeledGraph::PatchAdjacency(prev, out_patches, in_patches);
}

graph::LabeledGraph DeltaGraph::Materialize() const {
  graph::GraphBuilder builder(num_nodes(), base_->num_topics());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    builder.SetNodeLabels(u, base_->NodeLabels(u));
    ForEachOutNeighbor(u, [&](NodeId v, TopicSet labels) {
      builder.AddEdge(u, v, labels);
    });
  }
  return std::move(builder).Build();
}

}  // namespace mbr::dynamic
