#ifndef MBR_DYNAMIC_INCREMENTAL_AUTHORITY_H_
#define MBR_DYNAMIC_INCREMENTAL_AUTHORITY_H_

// Incrementally-maintained topical authority (§3.2 + §6).
//
// The paper observes that |Γu| and |Γu(t)| "can be computed on local
// information of each user, without graph exploration", while the global
// max_v |Γv(t)| "may be costly ... we can assume this value is stored (and
// re-computed periodically)". This class implements exactly that contract:
// O(|labels|) updates per edge change, exact increase-side max maintenance,
// and an explicit RefreshMax() for the periodic recomputation (after
// removals the stored max is an upper bound, which the log dampens — the
// paper's argument).

#include <cstdint>
#include <vector>

#include "core/authority.h"
#include "graph/labeled_graph.h"
#include "topics/topic.h"

namespace mbr::dynamic {

class IncrementalAuthority {
 public:
  // Seeds the counters from the base graph.
  explicit IncrementalAuthority(const graph::LabeledGraph& g);

  // u started following v with interest `labels`.
  void OnEdgeAdded(graph::NodeId u, graph::NodeId v, topics::TopicSet labels);
  // u unfollowed v; `labels` must be the labels the edge carried.
  void OnEdgeRemoved(graph::NodeId u, graph::NodeId v,
                     topics::TopicSet labels);

  // auth(v, t) under the current counters and the (possibly slightly
  // stale) per-topic maxima.
  double Authority(graph::NodeId v, topics::TopicId t) const;

  uint32_t FollowersOnTopic(graph::NodeId v, topics::TopicId t) const {
    return followers_on_topic_[static_cast<size_t>(v) * num_topics_ + t];
  }
  uint32_t MaxFollowersOnTopic(topics::TopicId t) const {
    return max_followers_[t];
  }

  // Recomputes the per-topic maxima exactly (the paper's periodic refresh).
  void RefreshMax();

  // Targeted exact repair: rescans only the *dirty* topics — those where a
  // removal hit a row that held the stored max, so the bound may now
  // overestimate (adds keep the max exact). Afterwards every stored max is
  // exact again, at O(n) per dirty topic instead of RefreshMax()'s O(n·T).
  // Returns the number of topics rescanned.
  int RefreshDirtyMax();

  // Topics whose stored max is currently an unverified upper bound. 0
  // means every max is exact and a snapshot taken now is byte-identical
  // to a from-scratch AuthorityIndex.
  int dirty_topic_count() const { return dirty_count_; }

  // Borrowed view of the counters for core::AuthorityIndex's incremental
  // snapshot ctor. Valid until the next mutation of this object.
  core::AuthorityCounters Counters() const {
    return core::AuthorityCounters{
        num_topics_, followers_on_topic_, in_degree_, max_followers_};
  }

  // Edge changes applied since the last RefreshMax() / construction.
  uint64_t updates_since_refresh() const { return updates_since_refresh_; }
  int num_topics() const { return num_topics_; }

 private:
  int num_topics_ = 0;
  std::vector<uint32_t> followers_on_topic_;  // n x T
  std::vector<uint64_t> label_mass_;          // Σ_t |Γv(t)| per node
  std::vector<uint32_t> in_degree_;           // |Γv| per node
  std::vector<uint32_t> max_followers_;       // per topic (upper bound)
  std::vector<uint8_t> max_dirty_;            // per topic: bound unverified
  int dirty_count_ = 0;
  uint64_t updates_since_refresh_ = 0;
};

}  // namespace mbr::dynamic

#endif  // MBR_DYNAMIC_INCREMENTAL_AUTHORITY_H_
