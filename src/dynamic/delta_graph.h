#ifndef MBR_DYNAMIC_DELTA_GRAPH_H_
#define MBR_DYNAMIC_DELTA_GRAPH_H_

// Dynamic follow-graph overlay — the substrate for the paper's §6 future
// work ("many following links have a short lifespan. This graph dynamicity
// may impact the scores stored by the landmarks").
//
// A DeltaGraph layers edge insertions and deletions over an immutable base
// LabeledGraph: reads see base ∪ added ∖ removed. Mutations are O(log d);
// Materialize() compacts everything into a fresh CSR graph when a batch of
// churn has been applied (the paper's "re-computed periodically" model).

#include <functional>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/labeled_graph.h"
#include "topics/topic.h"

namespace mbr::dynamic {

struct EdgeChange {
  graph::NodeId src = 0;
  graph::NodeId dst = 0;
  topics::TopicSet labels;  // empty for removals
};

class DeltaGraph {
 public:
  // `base` must outlive the overlay.
  explicit DeltaGraph(const graph::LabeledGraph* base);

  const graph::LabeledGraph& base() const { return *base_; }
  graph::NodeId num_nodes() const { return base_->num_nodes(); }
  uint64_t num_edges() const { return num_edges_; }

  // Adds u -> v. Returns false (no-op) for self-loops or already-present
  // edges. Re-adding a previously removed base edge is allowed (possibly
  // with new labels).
  bool AddEdge(graph::NodeId u, graph::NodeId v, topics::TopicSet labels);

  // Removes u -> v (from the base or the overlay). Returns false if the
  // edge is not currently present.
  bool RemoveEdge(graph::NodeId u, graph::NodeId v);

  // Replaces the labels of the live edge u -> v (the wire RELABEL op).
  // Returns false if the edge is not currently present. Implemented as a
  // listener-suppressed RemoveEdge + AddEdge so every degree counter and
  // the change log stay consistent; the change listener fires once.
  bool RelabelEdge(graph::NodeId u, graph::NodeId v, topics::TopicSet labels);

  bool HasEdge(graph::NodeId u, graph::NodeId v) const;

  // Labels of the live edge u -> v (empty set if absent).
  topics::TopicSet EdgeLabels(graph::NodeId u, graph::NodeId v) const;

  // Current out-degree / in-degree of a node.
  uint32_t OutDegree(graph::NodeId u) const;
  uint32_t InDegree(graph::NodeId v) const;

  // Visits every live out-neighbor of u: fn(v, labels).
  template <typename Fn>
  void ForEachOutNeighbor(graph::NodeId u, Fn&& fn) const {
    auto nbrs = base_->OutNeighbors(u);
    auto labs = base_->OutEdgeLabels(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (!IsRemoved(u, nbrs[i])) fn(nbrs[i], labs[i]);
    }
    for (const auto& [v, labels] : added_[u]) fn(v, labels);
  }

  // Compacts base + overlay into an immutable graph (node labels are
  // carried over from the base).
  graph::LabeledGraph Materialize() const;

  // O(Δ) materialization (DESIGN.md §6.9): a new generation built from
  // `prev` by replacing only the adjacency rows of `touched` nodes
  // (duplicates/unsorted ids are fine) and block-copying everything else.
  // Byte-identical to Materialize() provided `prev` already reflects every
  // mutation applied to this overlay except those touching `touched` —
  // i.e. prev is the previous generation and `touched` covers the src and
  // dst of every edge change applied since it was materialized.
  graph::LabeledGraph MaterializeFrom(
      const graph::LabeledGraph& prev,
      std::span<const graph::NodeId> touched) const;

  // Applied change log (in application order; useful for incremental
  // index maintenance and tests).
  const std::vector<EdgeChange>& additions() const { return additions_; }
  const std::vector<EdgeChange>& removals() const { return removals_; }

  // Invalidation hook: `fn` runs after every successful AddEdge/RemoveEdge
  // (the mutation is already visible when it fires; no-op mutations do not
  // fire). The serving layer registers an epoch bump here so cached query
  // results keyed on the pre-change graph become unreachable
  // (service::QueryEngine::Invalidate). The callback runs on the mutating
  // thread and must not re-enter this DeltaGraph.
  void SetChangeListener(std::function<void()> fn) {
    on_change_ = std::move(fn);
  }

 private:
  static uint64_t Key(graph::NodeId u, graph::NodeId v) {
    return (static_cast<uint64_t>(u) << 32) | v;
  }
  bool IsRemoved(graph::NodeId u, graph::NodeId v) const {
    return removed_.count(Key(u, v)) > 0;
  }
  bool IsAdded(graph::NodeId u, graph::NodeId v) const;

  const graph::LabeledGraph* base_;
  uint64_t num_edges_;
  // Per-node overlay adjacency (sorted by dst) and a global tombstone set.
  std::vector<std::vector<std::pair<graph::NodeId, topics::TopicSet>>> added_;
  // Reverse overlay: added_in_[v] lists (src, labels) of overlay edges into
  // v, sorted by src — the in-row counterpart MaterializeFrom merges
  // against the base in-adjacency.
  std::vector<std::vector<std::pair<graph::NodeId, topics::TopicSet>>>
      added_in_;
  std::unordered_set<uint64_t> removed_;
  std::vector<uint32_t> in_degree_delta_pos_;  // added in-edges per node
  std::vector<uint32_t> in_degree_delta_neg_;  // removed in-edges per node
  std::vector<EdgeChange> additions_;
  std::vector<EdgeChange> removals_;
  std::function<void()> on_change_;
};

}  // namespace mbr::dynamic

#endif  // MBR_DYNAMIC_DELTA_GRAPH_H_
