#include "dynamic/churn.h"

#include <vector>

#include "util/logging.h"

namespace mbr::dynamic {

namespace {

using graph::NodeId;
using topics::TopicId;
using topics::TopicSet;

TopicId RandomTopicOf(TopicSet s, util::Rng* rng) {
  MBR_CHECK(!s.empty());
  int pick = static_cast<int>(rng->UniformU64(s.size()));
  for (TopicId t : s) {
    if (pick-- == 0) return t;
  }
  return 0;
}

}  // namespace

ChurnStats ApplyChurnRound(DeltaGraph* overlay,
                           IncrementalAuthority* authority,
                           const ChurnConfig& config, util::Rng* rng) {
  MBR_CHECK(overlay != nullptr);
  const graph::LabeledGraph& base = overlay->base();
  const NodeId n = overlay->num_nodes();
  ChurnStats stats;

  uint64_t to_remove = static_cast<uint64_t>(config.unfollow_fraction *
                                             static_cast<double>(overlay->num_edges()));
  uint64_t to_add = static_cast<uint64_t>(config.follow_fraction *
                                          static_cast<double>(overlay->num_edges()));

  // ---- Unfollows: sample random live edges via random (node, position)
  // probes on the base graph (the overlay additions are a small minority).
  uint64_t guard = 0;
  while (stats.edges_removed < to_remove && guard < to_remove * 50 + 100) {
    ++guard;
    NodeId u = static_cast<NodeId>(rng->UniformU64(n));
    auto nbrs = base.OutNeighbors(u);
    if (nbrs.empty()) continue;
    NodeId v = nbrs[rng->UniformU64(nbrs.size())];
    TopicSet labels = overlay->EdgeLabels(u, v);
    if (!overlay->RemoveEdge(u, v)) continue;
    if (authority != nullptr) authority->OnEdgeRemoved(u, v, labels);
    ++stats.edges_removed;
  }

  // ---- New follows: popularity-weighted target among the follower's
  // topical peers (sample two random nodes publishing the topic, keep the
  // more followed).
  guard = 0;
  while (stats.edges_added < to_add && guard < to_add * 50 + 100) {
    ++guard;
    NodeId u = static_cast<NodeId>(rng->UniformU64(n));
    TopicSet interests = base.NodeLabels(u);
    if (interests.empty()) continue;
    TopicId t = RandomTopicOf(interests, rng);
    NodeId a = static_cast<NodeId>(rng->UniformU64(n));
    NodeId b = static_cast<NodeId>(rng->UniformU64(n));
    NodeId v = overlay->InDegree(a) >= overlay->InDegree(b) ? a : b;
    if (v == u) continue;
    TopicSet publisher = base.NodeLabels(v);
    TopicSet label = interests.Intersect(publisher);
    if (label.empty()) {
      if (publisher.empty()) continue;
      label.Add(RandomTopicOf(publisher, rng));
    } else if (!label.Contains(t) && publisher.Contains(t)) {
      label.Add(t);
    }
    if (!overlay->AddEdge(u, v, label)) continue;
    if (authority != nullptr) authority->OnEdgeAdded(u, v, label);
    ++stats.edges_added;
  }
  return stats;
}

}  // namespace mbr::dynamic
