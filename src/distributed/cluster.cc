#include "distributed/cluster.h"

#include <deque>
#include <unordered_set>

#include "util/logging.h"

namespace mbr::distributed {

namespace {
using graph::NodeId;
}  // namespace

SimulatedCluster::SimulatedCluster(const graph::LabeledGraph& g,
                                   const core::AuthorityIndex& authority,
                                   const topics::SimilarityMatrix& sim,
                                   const landmark::LandmarkIndex& index,
                                   const Partitioning& partitioning,
                                   const landmark::ApproxConfig& config)
    : g_(g),
      index_(index),
      partitioning_(partitioning),
      config_(config),
      landmarks_by_partition_(partitioning.num_partitions) {
  MBR_CHECK(partitioning.part_of.size() == g.num_nodes());
  for (NodeId lm : index.landmarks()) {
    landmarks_by_partition_[partitioning.part_of[lm]].push_back(lm);
  }

  global_approx_ = std::make_unique<landmark::ApproxRecommender>(
      g, authority, sim, index, config);

  // Build one shard per partition: intra-partition subgraph, its own
  // authority index, and a landmark index restricted to local landmarks
  // (pre-processed on the *subgraph* — a worker cannot explore beyond its
  // shard either).
  shards_.resize(partitioning.num_partitions);
  for (uint32_t part = 0; part < partitioning.num_partitions; ++part) {
    auto shard = std::make_unique<LocalShard>();
    graph::GraphBuilder builder(g.num_nodes(), g.num_topics());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      builder.SetNodeLabels(u, g.NodeLabels(u));
      if (partitioning.part_of[u] != part) continue;
      auto nbrs = g.OutNeighbors(u);
      auto labs = g.OutEdgeLabels(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        if (partitioning.part_of[nbrs[i]] == part) {
          builder.AddEdge(u, nbrs[i], labs[i]);
        }
      }
    }
    shard->subgraph = std::move(builder).Build();
    // Shards score with the *global* authority: §3.2 notes |Γu| and |Γu(t)|
    // are per-node local metadata (no graph exploration), so replicating
    // the counters cluster-wide is cheap — and it keeps every local score
    // a true lower bound of the exact one (only the walk set shrinks).
    landmark::LandmarkIndexConfig icfg;
    icfg.top_n = index.config().top_n;
    icfg.params = index.config().params;
    shard->index = std::make_unique<landmark::LandmarkIndex>(
        shard->subgraph, authority, sim, landmarks_by_partition_[part],
        icfg);
    shard->approx = std::make_unique<landmark::ApproxRecommender>(
        shard->subgraph, authority, sim, *shard->index, config);
    shards_[part] = std::move(shard);
  }
}

const util::FlatMap<NodeId, double>& SimulatedCluster::Query(
    NodeId u, topics::TopicId t, QueryCost* cost) const {
  if (cost != nullptr) {
    *cost = QueryCost();
    // Cost model: a depth-k BFS with landmark pruning; each node expanded
    // fetches its adjacency (remote if on another partition than the
    // expander... the adjacency of a node lives on the node's partition, so
    // the coordinator — u's partition — pays one message per expanded node
    // homed elsewhere, plus one list pull per remote landmark met).
    const uint32_t home = partitioning_.part_of[u];
    std::unordered_set<uint32_t> touched = {home};
    std::vector<bool> seen(g_.num_nodes(), false);
    std::deque<std::pair<NodeId, uint32_t>> queue;
    queue.push_back({u, 0});
    seen[u] = true;
    while (!queue.empty()) {
      auto [x, depth] = queue.front();
      queue.pop_front();
      bool is_landmark = index_.IsLandmark(x) && x != u;
      if (is_landmark) {
        touched.insert(partitioning_.part_of[x]);
        if (partitioning_.part_of[x] != home) {
          ++cost->landmark_fetches;
          cost->landmark_entries +=
              index_.Recommendations(x, t).size();
        }
      }
      if (depth == config_.query_depth) continue;
      if (is_landmark && config_.prune_at_landmarks) continue;
      if (partitioning_.part_of[x] != home && x != u) {
        ++cost->edge_messages;  // remote adjacency fetch
        touched.insert(partitioning_.part_of[x]);
      }
      for (NodeId v : g_.OutNeighbors(x)) {
        if (!seen[v]) {
          seen[v] = true;
          queue.push_back({v, depth + 1});
        }
      }
    }
    cost->partitions_touched = static_cast<uint32_t>(touched.size());
  }
  return global_approx_->ScoresFlat(u, t);
}

const util::FlatMap<NodeId, double>& SimulatedCluster::LocalQuery(
    NodeId u, topics::TopicId t) const {
  return shards_[partitioning_.part_of[u]]->approx->ScoresFlat(u, t);
}

}  // namespace mbr::distributed
