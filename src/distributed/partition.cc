#include "distributed/partition.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"
#include "util/rng.h"

namespace mbr::distributed {

namespace {
using graph::NodeId;
}  // namespace

const char* PartitionStrategyName(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kHash:
      return "Hash";
    case PartitionStrategy::kBfsChunks:
      return "BFS-Chunks";
    case PartitionStrategy::kCommunity:
      return "Community-LPA";
    case PartitionStrategy::kCommunityPopularity:
      return "Community-PopBal";
  }
  return "?";
}

void ComputePartitionStats(const graph::LabeledGraph& g, Partitioning* p) {
  MBR_CHECK(p->part_of.size() == g.num_nodes());
  uint64_t cut = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (p->part_of[u] != p->part_of[v]) ++cut;
    }
  }
  p->edge_cut = g.num_edges() == 0
                    ? 0.0
                    : static_cast<double>(cut) /
                          static_cast<double>(g.num_edges());
  std::vector<uint64_t> sizes(p->num_partitions, 0);
  for (uint32_t part : p->part_of) ++sizes[part];
  uint64_t largest = *std::max_element(sizes.begin(), sizes.end());
  double ideal = static_cast<double>(g.num_nodes()) /
                 static_cast<double>(p->num_partitions);
  p->balance = ideal > 0 ? static_cast<double>(largest) / ideal : 0.0;
}

namespace {

Partitioning HashPartition(const graph::LabeledGraph& g,
                           const PartitionConfig& config) {
  Partitioning p;
  p.num_partitions = config.num_partitions;
  p.part_of.resize(g.num_nodes());
  uint64_t state = config.seed;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    uint64_t h = state ^ (u * 0x9e3779b97f4a7c15ULL);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    p.part_of[u] = static_cast<uint32_t>(h % config.num_partitions);
  }
  return p;
}

Partitioning BfsChunkPartition(const graph::LabeledGraph& g,
                               const PartitionConfig& config) {
  Partitioning p;
  p.num_partitions = config.num_partitions;
  p.part_of.assign(g.num_nodes(), 0);
  const uint64_t chunk =
      std::max<uint64_t>(1, (g.num_nodes() + config.num_partitions - 1) /
                                config.num_partitions);
  std::vector<bool> visited(g.num_nodes(), false);
  uint64_t assigned = 0;
  uint32_t current = 0;
  std::deque<NodeId> queue;
  for (NodeId seed = 0; seed < g.num_nodes(); ++seed) {
    if (visited[seed]) continue;
    queue.push_back(seed);
    visited[seed] = true;
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      p.part_of[u] = current;
      ++assigned;
      if (assigned % chunk == 0 && current + 1 < config.num_partitions) {
        ++current;
      }
      for (NodeId v : g.OutNeighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          queue.push_back(v);
        }
      }
      // Follow in-edges too: chunks should capture mutual neighbourhoods.
      for (NodeId v : g.InNeighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  return p;
}

Partitioning CommunityPartition(const graph::LabeledGraph& g,
                                const PartitionConfig& config,
                                bool balance_popularity) {
  // Capacity-constrained label propagation over the undirected view. With
  // balance_popularity the capacity is measured in in-degree mass (+1 per
  // node so isolated nodes still count), spreading celebrity accounts
  // evenly across workers.
  Partitioning p = HashPartition(g, config);  // random initial labels
  const uint32_t parts = config.num_partitions;
  auto weight_of = [&](NodeId u) -> uint64_t {
    return balance_popularity ? 1 + g.InDegree(u) : 1;
  };
  uint64_t total_weight = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) total_weight += weight_of(u);
  const uint64_t capacity = static_cast<uint64_t>(
      config.capacity_slack * static_cast<double>(total_weight) / parts + 1);
  std::vector<uint64_t> sizes(parts, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    sizes[p.part_of[u]] += weight_of(u);
  }

  util::Rng rng(config.seed ^ 0xabcdULL);
  std::vector<NodeId> order(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) order[u] = u;

  std::vector<uint32_t> counts(parts, 0);
  for (uint32_t it = 0; it < config.lpa_iterations; ++it) {
    rng.Shuffle(&order);
    uint64_t moves = 0;
    for (NodeId u : order) {
      std::fill(counts.begin(), counts.end(), 0);
      for (NodeId v : g.OutNeighbors(u)) ++counts[p.part_of[v]];
      for (NodeId v : g.InNeighbors(u)) ++counts[p.part_of[v]];
      uint32_t best = p.part_of[u];
      uint32_t best_count = counts[best];
      uint64_t w = weight_of(u);
      for (uint32_t part = 0; part < parts; ++part) {
        if (part == p.part_of[u]) continue;
        if (counts[part] > best_count && sizes[part] + w <= capacity) {
          best = part;
          best_count = counts[part];
        }
      }
      if (best != p.part_of[u]) {
        sizes[p.part_of[u]] -= w;
        sizes[best] += w;
        p.part_of[u] = best;
        ++moves;
      }
    }
    if (moves == 0) break;
  }
  return p;
}

}  // namespace

Partitioning PartitionGraph(const graph::LabeledGraph& g,
                            PartitionStrategy strategy,
                            const PartitionConfig& config) {
  MBR_CHECK(config.num_partitions > 0);
  Partitioning p;
  switch (strategy) {
    case PartitionStrategy::kHash:
      p = HashPartition(g, config);
      break;
    case PartitionStrategy::kBfsChunks:
      p = BfsChunkPartition(g, config);
      break;
    case PartitionStrategy::kCommunity:
      p = CommunityPartition(g, config, /*balance_popularity=*/false);
      break;
    case PartitionStrategy::kCommunityPopularity:
      p = CommunityPartition(g, config, /*balance_popularity=*/true);
      break;
  }
  ComputePartitionStats(g, &p);
  return p;
}

}  // namespace mbr::distributed
