#ifndef MBR_DISTRIBUTED_CLUSTER_H_
#define MBR_DISTRIBUTED_CLUSTER_H_

// Simulated recommendation cluster (§6 future work).
//
// The graph is sharded across workers by a Partitioning; each worker holds
// its nodes' out-adjacency and the landmark lists of the landmarks homed on
// it. A query starting at node u runs the Algorithm 2 exploration:
//
//   * every remote adjacency fetch (a cross-partition edge reached within
//     the exploration depth) costs one network message;
//   * every landmark encountered whose home is not u's partition costs one
//     landmark-list fetch of `top_n` entries.
//
// LocalQuery() is the degraded mode the paper speculates about — evaluation
// that never leaves u's partition (cross-partition edges dropped, remote
// landmarks unavailable) — trading recommendation quality for zero network
// cost. The bench compares both across partitioners.

#include <memory>
#include <vector>

#include "core/authority.h"
#include "distributed/partition.h"
#include "graph/labeled_graph.h"
#include "landmark/approx.h"
#include "landmark/index.h"
#include "topics/similarity_matrix.h"
#include "util/flat_map.h"

namespace mbr::distributed {

struct QueryCost {
  uint64_t edge_messages = 0;       // remote adjacency fetches
  uint64_t landmark_fetches = 0;    // remote landmark-list pulls
  uint64_t landmark_entries = 0;    // entries shipped by those pulls
  uint32_t partitions_touched = 0;  // distinct partitions involved
};

class SimulatedCluster {
 public:
  // All references must outlive the cluster. `index` is the global landmark
  // index; each landmark's lists are homed on its node's partition.
  SimulatedCluster(const graph::LabeledGraph& g,
                   const core::AuthorityIndex& authority,
                   const topics::SimilarityMatrix& sim,
                   const landmark::LandmarkIndex& index,
                   const Partitioning& partitioning,
                   const landmark::ApproxConfig& config = {});

  // Full-fidelity distributed query: identical scores to the single-node
  // ApproxRecommender, plus the network cost it would have incurred. The
  // returned table is owned by the underlying recommender and valid until
  // the next Query() on this cluster (same single-caller contract as
  // ApproxRecommender::ScoresFlat — no per-query heap allocation).
  const util::FlatMap<graph::NodeId, double>& Query(graph::NodeId u,
                                                    topics::TopicId t,
                                                    QueryCost* cost) const;

  // Partition-local query: exploration cannot cross partitions and only
  // local landmarks contribute. Zero network cost by construction. The
  // returned table is owned by u's shard and valid until the next
  // LocalQuery() routed to that shard.
  const util::FlatMap<graph::NodeId, double>& LocalQuery(
      graph::NodeId u, topics::TopicId t) const;

  uint32_t PartitionOf(graph::NodeId u) const {
    return partitioning_.part_of[u];
  }
  const std::vector<std::vector<graph::NodeId>>& landmarks_by_partition()
      const {
    return landmarks_by_partition_;
  }

 private:
  struct LocalShard {
    graph::LabeledGraph subgraph;  // intra-partition edges only
    std::unique_ptr<landmark::LandmarkIndex> index;
    std::unique_ptr<landmark::ApproxRecommender> approx;
  };

  const graph::LabeledGraph& g_;
  const landmark::LandmarkIndex& index_;
  const Partitioning& partitioning_;
  landmark::ApproxConfig config_;
  std::vector<std::vector<graph::NodeId>> landmarks_by_partition_;
  std::unique_ptr<landmark::ApproxRecommender> global_approx_;
  std::vector<std::unique_ptr<LocalShard>> shards_;
};

}  // namespace mbr::distributed

#endif  // MBR_DISTRIBUTED_CLUSTER_H_
