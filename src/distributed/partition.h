#ifndef MBR_DISTRIBUTED_PARTITION_H_
#define MBR_DISTRIBUTED_PARTITION_H_

// Graph partitioning for the distributed-recommendation study (§6 future
// work: "distribution implies to split the graph by taking into account
// connectivity, but also to perform landmark selections and distributions
// that allow a node to evaluate the recommendation scores 'locally'
// minimizing network transfer costs").
//
// Three partitioners with increasing connectivity awareness:
//   kHash       — uniform node hashing (the baseline every sharded system
//                 starts from; ignores the topology entirely)
//   kBfsChunks  — contiguous BFS chunks (locality by reachability)
//   kCommunity  — capacity-constrained label propagation (locality by
//                 community structure)

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"

namespace mbr::distributed {

enum class PartitionStrategy {
  kHash,
  kBfsChunks,
  kCommunity,
  // Label propagation whose capacity constraint balances *in-degree mass*
  // (authority) instead of node count: every worker keeps a fair share of
  // the popular accounts, so partition-local evaluation retains quality —
  // the landmark/authority-aware placement the paper's §6 calls for.
  kCommunityPopularity,
};

const char* PartitionStrategyName(PartitionStrategy s);

struct PartitionConfig {
  uint32_t num_partitions = 4;
  // Label propagation rounds (kCommunity only).
  uint32_t lpa_iterations = 8;
  // A partition may exceed the ideal size n/num_partitions by this factor.
  double capacity_slack = 1.2;
  uint64_t seed = 17;
};

struct Partitioning {
  std::vector<uint32_t> part_of;  // node -> partition id
  uint32_t num_partitions = 0;

  // Fraction of edges whose endpoints live on different partitions.
  double edge_cut = 0.0;
  // Size of the largest partition divided by the ideal size (balance >= 1).
  double balance = 0.0;
};

Partitioning PartitionGraph(const graph::LabeledGraph& g,
                            PartitionStrategy strategy,
                            const PartitionConfig& config);

// Recomputes edge_cut/balance for an assignment (exposed for tests).
void ComputePartitionStats(const graph::LabeledGraph& g, Partitioning* p);

}  // namespace mbr::distributed

#endif  // MBR_DISTRIBUTED_PARTITION_H_
