#include "datagen/dblp_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "topics/vocabulary.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace mbr::datagen {

namespace {

using graph::NodeId;
using topics::TopicId;
using topics::TopicSet;

TopicId RandomTopicOf(TopicSet s, util::Rng* rng) {
  int pick = static_cast<int>(rng->UniformU64(s.size()));
  for (TopicId t : s) {
    if (pick-- == 0) return t;
  }
  MBR_CHECK(false);
  return 0;
}

}  // namespace

GeneratedDataset GenerateDblp(const DblpConfig& config) {
  const topics::Vocabulary& vocab = topics::DblpVocabulary();
  const int nt = vocab.size();
  const uint32_t n = config.num_nodes;
  MBR_CHECK(n >= 10);
  util::Rng rng(config.seed);

  GeneratedDataset ds;
  ds.num_topics = nt;

  // ---- 1. Areas (research communities). Sizes are mildly skewed.
  util::ZipfDistribution area_pop(static_cast<uint32_t>(nt),
                                  config.area_zipf_exponent);
  ds.true_topics.resize(n);
  std::vector<std::vector<NodeId>> area_members(nt);
  {
    util::Rng arng = rng.Fork(1);
    for (uint32_t u = 0; u < n; ++u) {
      TopicSet s;
      TopicId primary = static_cast<TopicId>(area_pop.Sample(&arng));
      s.Add(primary);
      if (arng.Bernoulli(config.second_area_prob)) {
        s.Add(static_cast<TopicId>(area_pop.Sample(&arng)));
      }
      ds.true_topics[u] = s;
      for (TopicId t : s) area_members[t].push_back(u);
    }
  }

  // ---- 2. Quality ground truth (strong on own areas).
  ds.quality.assign(static_cast<size_t>(n) * nt, 0.0f);
  {
    util::Rng qrng = rng.Fork(2);
    for (uint32_t u = 0; u < n; ++u) {
      for (int t = 0; t < nt; ++t) {
        float q = ds.true_topics[u].Contains(static_cast<TopicId>(t))
                      ? 0.4f + 0.6f * static_cast<float>(qrng.UniformDouble())
                      : 0.1f * static_cast<float>(qrng.UniformDouble());
        ds.quality[static_cast<size_t>(u) * nt + t] = q;
      }
    }
  }

  // ---- 3. Citations. Tight research groups (chunked within each area) +
  // sub-linear preferential attachment inside areas (sqrt weighting keeps
  // the top decile comparatively uniform) + triadic closure for the
  // shared-bibliography effect.
  util::Rng grng = rng.Fork(3);
  std::vector<uint32_t> in_degree(n, 0);

  // Research groups: consecutive chunks of each area's member list.
  std::vector<std::vector<NodeId>> groups;
  std::vector<uint32_t> group_of(n, 0);
  {
    const uint32_t gs = std::max<uint32_t>(3, config.group_size);
    for (int a = 0; a < nt; ++a) {
      const auto& members = area_members[a];
      for (size_t start = 0; start < members.size(); start += gs) {
        std::vector<NodeId> grp(
            members.begin() + start,
            members.begin() + std::min(members.size(), start + gs));
        for (NodeId u : grp) group_of[u] = static_cast<uint32_t>(groups.size());
        groups.push_back(std::move(grp));
      }
    }
    // Nodes whose primary area differs from the sampled group chunk get the
    // group of their first listed area; multi-area authors may therefore
    // sit in a group of their secondary area — harmless.
  }

  // Per-area cumulative pick: sample two uniform members, keep the one with
  // higher sqrt(in_degree)+1 weight probabilistically — cheap approximation
  // of sub-linear PA without maintaining weighted structures.
  auto pick_weighted = [&](const std::vector<NodeId>& pool) -> NodeId {
    NodeId a = pool[grng.UniformU64(pool.size())];
    NodeId b = pool[grng.UniformU64(pool.size())];
    double wa = std::sqrt(static_cast<double>(in_degree[a])) + 1.0;
    double wb = std::sqrt(static_cast<double>(in_degree[b])) + 1.0;
    return grng.UniformDouble() < wa / (wa + wb) ? a : b;
  };
  auto pick_in_area = [&](TopicId t) -> NodeId {
    return pick_weighted(area_members[t]);
  };

  graph::GraphBuilder builder(n, nt);
  std::unordered_set<uint64_t> edge_set;
  auto edge_key = [](NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  // Adjacency built so far (targets per source) for triadic closure.
  std::vector<std::vector<NodeId>> cites(n);

  std::vector<NodeId> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  grng.Shuffle(&order);

  for (NodeId u : order) {
    double pareto = std::pow(1.0 - grng.UniformDouble(),
                             -1.0 / config.out_degree_alpha);
    uint32_t degree = static_cast<uint32_t>(
        std::min<double>(config.out_degree_cap,
                         std::max(1.0, config.out_degree_min * pareto)));
    degree = std::min(degree, n - 1);

    NodeId last_target = graph::kInvalidNode;
    for (uint32_t k = 0; k < degree; ++k) {
      NodeId v = graph::kInvalidNode;
      for (int attempt = 0; attempt < 8 && v == graph::kInvalidNode;
           ++attempt) {
        NodeId cand = graph::kInvalidNode;
        // Triadic closure: cite something the previous target cites.
        if (last_target != graph::kInvalidNode &&
            !cites[last_target].empty() &&
            grng.Bernoulli(config.triadic_closure_prob)) {
          const auto& bib = cites[last_target];
          cand = bib[grng.UniformU64(bib.size())];
        } else if (groups[group_of[u]].size() > 1 &&
                   grng.Bernoulli(config.intra_group_fraction)) {
          // Research-group citation (self-citation flavour).
          cand = pick_weighted(groups[group_of[u]]);
        } else if (grng.Bernoulli(config.intra_community_fraction)) {
          cand = pick_in_area(RandomTopicOf(ds.true_topics[u], &grng));
        } else {
          cand = static_cast<NodeId>(grng.UniformU64(n));
        }
        if (cand == u || edge_set.count(edge_key(u, cand))) continue;
        v = cand;
      }
      if (v == graph::kInvalidNode) continue;
      edge_set.insert(edge_key(u, v));
      builder.AddEdge(u, v, TopicSet());
      cites[u].push_back(v);
      ++in_degree[v];
      last_target = v;
    }
  }

  graph::LabeledGraph topology = std::move(builder).Build();

  // ---- 4. Labels: an author's profile is his areas (paper: author
  // profiles from the topics of their published papers); a citation edge is
  // labeled with the shared areas, else with the cited author's area — the
  // citation is *about* the cited paper's area.
  util::Rng lrng = rng.Fork(4);
  graph::GraphBuilder labeled(n, nt);
  for (NodeId u = 0; u < n; ++u) {
    labeled.SetNodeLabels(u, ds.true_topics[u]);
    for (NodeId v : topology.OutNeighbors(u)) {
      TopicSet label = ds.true_topics[u].Intersect(ds.true_topics[v]);
      if (label.empty()) {
        label.Add(RandomTopicOf(ds.true_topics[v], &lrng));
      }
      labeled.AddEdge(u, v, label);
    }
  }
  ds.graph = std::move(labeled).Build();
  return ds;
}

}  // namespace mbr::datagen
