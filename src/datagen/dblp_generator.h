#ifndef MBR_DATAGEN_DBLP_GENERATOR_H_
#define MBR_DATAGEN_DBLP_GENERATOR_H_

// Synthetic DBLP-like author-citation graph (substitute for the merged
// ArnetMiner dumps of §5.1).
//
// Structural targets the paper's DBLP findings depend on:
//   * strong community structure — authors cite mostly inside their research
//     area ("researchers cite / are cited by mainly researchers from their
//     community");
//   * self-citation-style clustering: when u cites v, u often also cites
//     what v cites (triadic closure), which the paper credits for the faster
//     recall rise of Katz / Tr on DBLP;
//   * milder popularity skew than Twitter: the top-decile in-degree is "a
//     more uniform dataset regarding the in-degree", so max_in/avg_in is
//     far smaller than on Twitter (Table 2: 9,897 vs 348,595 at comparable
//     node counts);
//   * denser graph (higher avg degree relative to reachable community).

#include <cstdint>

#include "datagen/dataset.h"

namespace mbr::datagen {

struct DblpConfig {
  uint32_t num_nodes = 10000;
  // Citations made per author: min * Pareto(alpha), capped.
  double out_degree_min = 14.0;
  double out_degree_alpha = 3.0;  // milder tail than Twitter
  uint32_t out_degree_cap = 400;
  // Research groups: tight sub-communities inside an area whose members
  // cite each other heavily (the paper's self-citation phenomenon: "authors
  // from a given paper often cite one or several of their previous papers
  // on the topic" and co-authors share bibliographies).
  uint32_t group_size = 25;
  double intra_group_fraction = 0.45;
  // Probability a citation stays inside the author's own area (when not a
  // group citation).
  double intra_community_fraction = 0.75;
  // Probability of closing a triangle (cite a citation of the last target).
  double triadic_closure_prob = 0.45;
  // Zipf exponent of area sizes.
  double area_zipf_exponent = 0.6;  // more balanced than Twitter topics
  // Probability an author has a secondary area.
  double second_area_prob = 0.3;
  uint64_t seed = 19360423;  // DBLP's namesake W. Ley's field's birthday-ish
};

GeneratedDataset GenerateDblp(const DblpConfig& config);

}  // namespace mbr::datagen

#endif  // MBR_DATAGEN_DBLP_GENERATOR_H_
