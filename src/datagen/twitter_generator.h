#ifndef MBR_DATAGEN_TWITTER_GENERATOR_H_
#define MBR_DATAGEN_TWITTER_GENERATOR_H_

// Synthetic Twitter-like follow graph (substitute for the paper's 2015
// crawl, §5.1 / Table 2 / Figure 3).
//
// Shape targets, at reduced scale:
//   * heavy-tailed in-degree (few celebrity accounts) with
//     max_in ≫ avg_in — preferential attachment;
//   * heavy-tailed out-degree (a few compulsive followers) — Pareto
//     out-degree draws;
//   * Zipf-biased topic popularity (Figure 3: edges-per-topic distribution
//     "similar to the one observed for Web sites in Yahoo! Directory");
//   * topical homophily: most follow edges point at accounts publishing a
//     topic the follower cares about (that assumption — a link expresses
//     topical interest — is the premise of the paper's model).
//
// Labels are produced either by the full §5.1 text pipeline (OpenCalais +
// SVM substitute) or directly from ground truth (fast path for the large
// efficiency benches).

#include <cstdint>

#include "datagen/dataset.h"
#include "text/pipeline.h"

namespace mbr::datagen {

enum class LabelMode {
  kTextPipeline,  // run the §5.1 tweet -> classifier -> profiles pipeline
  kDirect,        // label from ground truth (fast; tests & big benches)
};

struct TwitterConfig {
  uint32_t num_nodes = 20000;
  // Out-degree = min(cap, out_min * Pareto(alpha)); mean lands near the
  // Table 2 avg out-degree when scaled.
  double out_degree_min = 12.0;
  double out_degree_alpha = 2.2;
  uint32_t out_degree_cap = 2000;
  // Fine-grained social circles: each node belongs to one community of
  // roughly `community_size` members sharing a primary topic, and
  // `community_fraction` of its follows stay inside it. This produces the
  // dense co-follow clustering of real follow graphs — removing one follow
  // edge leaves several 2-hop paths via fellow community members, which is
  // what makes the removed edge recoverable for path-based scores (§5.3).
  uint32_t community_size = 40;
  double community_fraction = 0.5;
  // Fraction of follow edges chosen by topical homophily (the rest by pure
  // preferential attachment — celebrity following).
  double homophily_fraction = 0.7;
  // Probability that an edge closes a triangle instead: u follows someone
  // his existing followees follow. Real follow graphs are strongly
  // clustered ("who to follow" suggestions, communities); without this,
  // removing a follow edge leaves no short alternative paths and every
  // path-based recommender (Katz, Tr) is artificially blinded.
  double triadic_closure_prob = 0.55;
  // Probability a new follow is reciprocated (v follows back). Myers et
  // al. [18] measure ~44% reciprocity on the real follow graph.
  double reciprocation_prob = 0.30;
  // Intrinsic-attractiveness (fitness) tail: initial attachment weight of a
  // node is a Pareto(alpha) draw, capped. Small alpha -> few accounts start
  // out far more attractive -> celebrity in-degrees (Table 2's
  // max_in/avg_in ratio of several thousand at full scale).
  double fitness_alpha = 1.5;
  double fitness_cap = 400.0;
  // Zipf exponent of topic popularity across accounts (Fig. 3 bias).
  double topic_zipf_exponent = 1.0;
  // Probability that an account truly publishes on 2 / 3 topics.
  double second_topic_prob = 0.45;
  double third_topic_prob = 0.15;
  LabelMode label_mode = LabelMode::kDirect;
  text::PipelineConfig pipeline;  // used when label_mode == kTextPipeline
  uint64_t seed = 20160315;       // EDBT 2016 opening day
};

GeneratedDataset GenerateTwitter(const TwitterConfig& config);

}  // namespace mbr::datagen

#endif  // MBR_DATAGEN_TWITTER_GENERATOR_H_
