#include "datagen/twitter_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "topics/vocabulary.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace mbr::datagen {

namespace {

using graph::NodeId;
using topics::TopicId;
using topics::TopicSet;

// Picks one member topic of `s` uniformly. Preconditions: !s.empty().
TopicId RandomTopicOf(TopicSet s, util::Rng* rng) {
  int pick = static_cast<int>(rng->UniformU64(s.size()));
  for (TopicId t : s) {
    if (pick-- == 0) return t;
  }
  MBR_CHECK(false);
  return 0;
}

}  // namespace

GeneratedDataset GenerateTwitter(const TwitterConfig& config) {
  const topics::Vocabulary& vocab = topics::TwitterVocabulary();
  const int nt = vocab.size();
  const uint32_t n = config.num_nodes;
  MBR_CHECK(n >= 10);
  util::Rng rng(config.seed);

  GeneratedDataset ds;
  ds.num_topics = nt;

  // ---- 1. Communities (social circles) and ground-truth topical
  //         affinities. A node's primary topic is its community's topic;
  //         community topics follow the Zipf popularity bias (Fig. 3).
  util::ZipfDistribution topic_pop(static_cast<uint32_t>(nt),
                                   config.topic_zipf_exponent);
  const uint32_t num_communities =
      std::max<uint32_t>(1, n / std::max<uint32_t>(2, config.community_size));
  std::vector<TopicId> community_topic(num_communities);
  std::vector<uint32_t> community_of(n);
  std::vector<std::vector<NodeId>> community_members(num_communities);
  ds.true_topics.resize(n);
  {
    util::Rng trng = rng.Fork(1);
    for (uint32_t c = 0; c < num_communities; ++c) {
      community_topic[c] = static_cast<TopicId>(topic_pop.Sample(&trng));
    }
    for (uint32_t u = 0; u < n; ++u) {
      uint32_t c = static_cast<uint32_t>(trng.UniformU64(num_communities));
      community_of[u] = c;
      community_members[c].push_back(u);
      TopicSet s;
      s.Add(community_topic[c]);
      if (trng.Bernoulli(config.second_topic_prob)) {
        s.Add(static_cast<TopicId>(topic_pop.Sample(&trng)));
      }
      if (trng.Bernoulli(config.third_topic_prob)) {
        s.Add(static_cast<TopicId>(topic_pop.Sample(&trng)));
      }
      ds.true_topics[u] = s;
    }
  }

  // ---- 3. Topology: Pareto out-degrees; targets by topical homophily
  //         (popularity-weighted within a topic) or global preferential
  //         attachment.
  util::Rng grng = rng.Fork(3);

  // Per-topic and global PA lists: a node appears once per "attractiveness
  // unit" (one base entry + one entry per received follow).
  std::vector<std::vector<NodeId>> topic_pa(nt);
  std::vector<NodeId> global_pa;
  global_pa.reserve(n * 8);
  for (uint32_t u = 0; u < n; ++u) {
    // Fitness: intrinsic attractiveness with a heavy tail, so a handful of
    // accounts become celebrities regardless of arrival order.
    double fitness =
        std::min(config.fitness_cap,
                 std::pow(1.0 - grng.UniformDouble(),
                          -1.0 / config.fitness_alpha));
    uint32_t entries = static_cast<uint32_t>(std::max(1.0, fitness));
    for (uint32_t e = 0; e < entries; ++e) {
      global_pa.push_back(u);
      topic_pa[RandomTopicOf(ds.true_topics[u], &grng)].push_back(u);
    }
  }

  graph::GraphBuilder builder(n, nt);
  std::vector<NodeId> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  grng.Shuffle(&order);

  std::unordered_set<uint64_t> edge_set;
  auto edge_key = [](NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  };

  // Followees chosen so far, per node, for triadic closure; running
  // in-degree for the intra-community popularity weighting.
  std::vector<std::vector<NodeId>> follows(n);
  std::vector<uint32_t> in_degree(n, 0);

  // Sub-linear popularity pick inside a community: sample two members,
  // keep the more-followed one probabilistically.
  auto pick_in_community = [&](uint32_t c, util::Rng* r) -> NodeId {
    const auto& pool = community_members[c];
    NodeId a = pool[r->UniformU64(pool.size())];
    NodeId b = pool[r->UniformU64(pool.size())];
    double wa = std::sqrt(static_cast<double>(in_degree[a])) + 1.0;
    double wb = std::sqrt(static_cast<double>(in_degree[b])) + 1.0;
    return r->UniformDouble() < wa / (wa + wb) ? a : b;
  };

  // Remember which topic motivated each homophily edge so direct labeling
  // can reflect the follower's actual interest.
  std::vector<std::pair<uint64_t, TopicId>> homophily_topic;

  for (NodeId u : order) {
    double pareto = std::pow(1.0 - grng.UniformDouble(),
                             -1.0 / config.out_degree_alpha);
    uint32_t degree = static_cast<uint32_t>(
        std::min<double>(config.out_degree_cap,
                         std::max(1.0, config.out_degree_min * pareto)));
    degree = std::min(degree, n - 1);

    for (uint32_t k = 0; k < degree; ++k) {
      NodeId v = graph::kInvalidNode;
      TopicId motive = topics::kInvalidTopic;
      bool homophily = grng.Bernoulli(config.homophily_fraction);
      for (int attempt = 0; attempt < 8 && v == graph::kInvalidNode;
           ++attempt) {
        NodeId cand = graph::kInvalidNode;
        motive = topics::kInvalidTopic;
        // Triadic closure first: follow someone a current followee follows.
        if (!follows[u].empty() &&
            grng.Bernoulli(config.triadic_closure_prob)) {
          NodeId w = follows[u][grng.UniformU64(follows[u].size())];
          if (!follows[w].empty()) {
            cand = follows[w][grng.UniformU64(follows[w].size())];
          }
        }
        // Then the social circle: follow a (locally popular) member of
        // one's own community.
        if (cand == graph::kInvalidNode &&
            grng.Bernoulli(config.community_fraction) &&
            community_members[community_of[u]].size() > 1) {
          cand = pick_in_community(community_of[u], &grng);
          motive = community_topic[community_of[u]];
        }
        if (cand == graph::kInvalidNode) {
          if (homophily) {
            TopicId t = RandomTopicOf(ds.true_topics[u], &grng);
            const auto& pool = topic_pa[t];
            cand = pool[grng.UniformU64(pool.size())];
            motive = t;
          } else {
            motive = topics::kInvalidTopic;
            cand = global_pa[grng.UniformU64(global_pa.size())];
          }
        }
        if (cand == u || edge_set.count(edge_key(u, cand))) continue;
        v = cand;
      }
      if (v == graph::kInvalidNode) continue;
      edge_set.insert(edge_key(u, v));
      builder.AddEdge(u, v, TopicSet());  // labels assigned below
      follows[u].push_back(v);
      ++in_degree[v];
      if (motive != topics::kInvalidTopic) {
        homophily_topic.push_back({edge_key(u, v), motive});
      }
      // Rich get richer: v becomes more attractive globally and on one of
      // its topics.
      global_pa.push_back(v);
      topic_pa[RandomTopicOf(ds.true_topics[v], &grng)].push_back(v);

      // Follow-back (Myers et al. reciprocity).
      if (grng.Bernoulli(config.reciprocation_prob) &&
          !edge_set.count(edge_key(v, u))) {
        edge_set.insert(edge_key(v, u));
        builder.AddEdge(v, u, TopicSet());
        follows[v].push_back(u);
        ++in_degree[u];
        global_pa.push_back(u);
        topic_pa[RandomTopicOf(ds.true_topics[u], &grng)].push_back(u);
      }
    }
  }

  graph::LabeledGraph topology = std::move(builder).Build();

  // ---- 2 (deferred). Ground-truth content quality, used only by the
  // simulated user study: strong on the account's true topics, weak
  // elsewhere, with a broad-appeal bonus for popular accounts — human
  // raters judge a celebrity's off-topic content as watchable, which is
  // why TwitterRank's popularity-driven picks score decently in the
  // paper's Twitter study while failing link prediction.
  ds.quality.assign(static_cast<size_t>(n) * nt, 0.0f);
  {
    util::Rng qrng = rng.Fork(2);
    uint32_t max_in = 1;
    for (uint32_t u = 0; u < n; ++u) {
      max_in = std::max(max_in, topology.InDegree(u));
    }
    const double log_max = std::log(1.0 + max_in);
    for (uint32_t u = 0; u < n; ++u) {
      double pop = std::log(1.0 + topology.InDegree(u)) / log_max;
      for (int t = 0; t < nt; ++t) {
        double q =
            ds.true_topics[u].Contains(static_cast<TopicId>(t))
                ? 0.35 + 0.5 * qrng.UniformDouble() + 0.15 * pop
                : 0.1 * qrng.UniformDouble() + 0.35 * pop;
        ds.quality[static_cast<size_t>(u) * nt + t] =
            static_cast<float>(std::min(1.0, q));
      }
    }
  }

  // ---- 4. Labels.
  if (config.label_mode == LabelMode::kTextPipeline) {
    text::TopicLanguageModel lm =
        text::MakeTwitterLanguageModel(config.seed ^ 0xfeedULL);
    text::PipelineResult res = text::RunTopicExtraction(
        topology, ds.true_topics, lm, config.pipeline);
    ds.graph = std::move(res.labeled_graph);
    ds.pipeline_metrics = res.classifier_metrics;
    return ds;
  }

  // Direct labeling from ground truth: publisher profile = true topics;
  // edge label = shared topics, plus the homophily motive, or (if nothing
  // is shared) one topic of the publisher — a follow always expresses
  // interest in *something* the publisher posts (§3.1 assumption).
  std::unordered_map<uint64_t, TopicId> motives;
  motives.reserve(homophily_topic.size() * 2);
  for (const auto& [key, t] : homophily_topic) motives.emplace(key, t);

  util::Rng lrng = rng.Fork(4);
  graph::GraphBuilder labeled(n, nt);
  for (NodeId u = 0; u < n; ++u) {
    labeled.SetNodeLabels(u, ds.true_topics[u]);
    for (NodeId v : topology.OutNeighbors(u)) {
      TopicSet label = ds.true_topics[u].Intersect(ds.true_topics[v]);
      auto it = motives.find(edge_key(u, v));
      if (it != motives.end() &&
          ds.true_topics[v].Contains(it->second)) {
        label.Add(it->second);
      }
      if (label.empty()) {
        label.Add(RandomTopicOf(ds.true_topics[v], &lrng));
      }
      labeled.AddEdge(u, v, label);
    }
  }
  ds.graph = std::move(labeled).Build();
  return ds;
}

}  // namespace mbr::datagen
