#ifndef MBR_DATAGEN_DATASET_H_
#define MBR_DATAGEN_DATASET_H_

// A generated dataset: the labeled graph all algorithms consume, plus the
// generator's ground truth (true topical affinities and per-topic account
// quality) which only the tests and the user-study simulator may read —
// the recommenders never see it.

#include <vector>

#include "graph/labeled_graph.h"
#include "text/classifier.h"
#include "topics/topic.h"

namespace mbr::datagen {

struct GeneratedDataset {
  graph::LabeledGraph graph;

  // Ground truth: the topics each account truly publishes about.
  std::vector<topics::TopicSet> true_topics;

  // Ground truth: quality[u * num_topics + t] in [0, 1] — how good u's
  // content on topic t really is. Used by eval::UserStudySimulator.
  std::vector<float> quality;
  int num_topics = 0;

  // Metrics of the topic-extraction pipeline if it was used to label the
  // graph (zeroed for direct labeling).
  text::MultiLabelMetrics pipeline_metrics;

  float QualityOf(graph::NodeId u, topics::TopicId t) const {
    return quality[static_cast<size_t>(u) * num_topics + t];
  }
};

}  // namespace mbr::datagen

#endif  // MBR_DATAGEN_DATASET_H_
