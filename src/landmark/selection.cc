#include "landmark/selection.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/bfs.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace mbr::landmark {

namespace {

using graph::NodeId;

// Top-k nodes by `score` (descending, id ascending on ties).
std::vector<NodeId> TopByScore(const std::vector<double>& score, uint32_t k) {
  std::vector<NodeId> ids(score.size());
  std::iota(ids.begin(), ids.end(), 0);
  k = std::min<uint32_t>(k, static_cast<uint32_t>(ids.size()));
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                    [&](NodeId a, NodeId b) {
                      if (score[a] != score[b]) return score[a] > score[b];
                      return a < b;
                    });
  ids.resize(k);
  return ids;
}

// Weighted sampling without replacement via exponential keys
// (Efraimidis-Spirakis): keep the k largest U^(1/w), i.e. the k smallest
// -log(U)/w.
std::vector<NodeId> WeightedSample(const std::vector<double>& weights,
                                   uint32_t k, util::Rng* rng) {
  std::vector<std::pair<double, NodeId>> keys;
  keys.reserve(weights.size());
  for (NodeId v = 0; v < weights.size(); ++v) {
    if (weights[v] <= 0.0) continue;
    double u = rng->UniformDouble();
    while (u <= 0.0) u = rng->UniformDouble();
    keys.push_back({-std::log(u) / weights[v], v});
  }
  k = std::min<uint32_t>(k, static_cast<uint32_t>(keys.size()));
  std::partial_sort(keys.begin(), keys.begin() + k, keys.end());
  std::vector<NodeId> out(k);
  for (uint32_t i = 0; i < k; ++i) out[i] = keys[i].second;
  return out;
}

// Uniform sample from the nodes whose `degree` lies in [lo, hi]; falls back
// to the whole node set if the band is empty.
std::vector<NodeId> BandSample(const graph::LabeledGraph& g,
                               bool use_in_degree, uint32_t lo, uint32_t hi,
                               uint32_t k, util::Rng* rng) {
  std::vector<NodeId> band;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    uint32_t d = use_in_degree ? g.InDegree(v) : g.OutDegree(v);
    if (d >= lo && d <= hi) band.push_back(v);
  }
  if (band.empty()) {
    band.resize(g.num_nodes());
    std::iota(band.begin(), band.end(), 0);
  }
  k = std::min<uint32_t>(k, static_cast<uint32_t>(band.size()));
  auto idx = rng->SampleWithoutReplacement(
      static_cast<uint32_t>(band.size()), k);
  std::vector<NodeId> out(k);
  for (uint32_t i = 0; i < k; ++i) out[i] = band[idx[i]];
  return out;
}

// Normalised (max = 1) coverage scores; `reach_seeds` selects the Out-Cen
// direction (how many seeds a node reaches) vs Central (how many seeds
// reach the node).
std::vector<double> CoverageScores(const graph::LabeledGraph& g,
                                   const SelectionConfig& config,
                                   bool reach_seeds, util::Rng* rng) {
  uint32_t num_seeds = std::min<uint32_t>(config.num_seeds, g.num_nodes());
  auto seed_idx = rng->SampleWithoutReplacement(g.num_nodes(), num_seeds);
  std::vector<NodeId> seeds(seed_idx.begin(), seed_idx.end());
  // Central: forward BFS from seeds marks nodes the seeds reach.
  // Out-Cen: backward BFS from seeds marks nodes that reach the seeds.
  auto counts = graph::SeedCoverageCounts(
      g, seeds, config.coverage_depth,
      reach_seeds ? graph::Direction::kIn : graph::Direction::kOut);
  double mx = 0.0;
  for (uint32_t c : counts) mx = std::max(mx, static_cast<double>(c));
  std::vector<double> out(counts.size(), 0.0);
  if (mx > 0.0) {
    for (NodeId v = 0; v < counts.size(); ++v) out[v] = counts[v] / mx;
  }
  return out;
}

}  // namespace

const std::vector<SelectionStrategy>& AllStrategies() {
  static const std::vector<SelectionStrategy>& all =
      *new std::vector<SelectionStrategy>{
          SelectionStrategy::kRandom,  SelectionStrategy::kFollow,
          SelectionStrategy::kPublish, SelectionStrategy::kInDeg,
          SelectionStrategy::kBtwFol,  SelectionStrategy::kOutDeg,
          SelectionStrategy::kBtwPub,  SelectionStrategy::kCentral,
          SelectionStrategy::kOutCen,  SelectionStrategy::kCombine,
          SelectionStrategy::kCombine2};
  return all;
}

const char* StrategyName(SelectionStrategy s) {
  switch (s) {
    case SelectionStrategy::kRandom:
      return "Random";
    case SelectionStrategy::kFollow:
      return "Follow";
    case SelectionStrategy::kPublish:
      return "Publish";
    case SelectionStrategy::kInDeg:
      return "In-Deg";
    case SelectionStrategy::kBtwFol:
      return "Btw-Fol";
    case SelectionStrategy::kOutDeg:
      return "Out-Deg";
    case SelectionStrategy::kBtwPub:
      return "Btw-Pub";
    case SelectionStrategy::kCentral:
      return "Central";
    case SelectionStrategy::kOutCen:
      return "Out-Cen";
    case SelectionStrategy::kCombine:
      return "Combine";
    case SelectionStrategy::kCombine2:
      return "Combine2";
  }
  return "?";
}

SelectionResult SelectLandmarks(const graph::LabeledGraph& g,
                                SelectionStrategy strategy,
                                const SelectionConfig& config) {
  MBR_CHECK(config.num_landmarks > 0);
  MBR_CHECK(g.num_nodes() > 0);
  util::Rng rng(config.seed);
  util::WallTimer timer;
  const uint32_t k = std::min<uint32_t>(config.num_landmarks, g.num_nodes());

  SelectionResult result;
  switch (strategy) {
    case SelectionStrategy::kRandom: {
      auto idx = rng.SampleWithoutReplacement(g.num_nodes(), k);
      result.landmarks.assign(idx.begin(), idx.end());
      break;
    }
    case SelectionStrategy::kFollow: {
      std::vector<double> w(g.num_nodes());
      for (NodeId v = 0; v < g.num_nodes(); ++v) w[v] = g.InDegree(v);
      result.landmarks = WeightedSample(w, k, &rng);
      break;
    }
    case SelectionStrategy::kPublish: {
      std::vector<double> w(g.num_nodes());
      for (NodeId v = 0; v < g.num_nodes(); ++v) w[v] = g.OutDegree(v);
      result.landmarks = WeightedSample(w, k, &rng);
      break;
    }
    case SelectionStrategy::kInDeg: {
      std::vector<double> w(g.num_nodes());
      for (NodeId v = 0; v < g.num_nodes(); ++v) w[v] = g.InDegree(v);
      result.landmarks = TopByScore(w, k);
      break;
    }
    case SelectionStrategy::kOutDeg: {
      std::vector<double> w(g.num_nodes());
      for (NodeId v = 0; v < g.num_nodes(); ++v) w[v] = g.OutDegree(v);
      result.landmarks = TopByScore(w, k);
      break;
    }
    case SelectionStrategy::kBtwFol:
      result.landmarks = BandSample(g, /*use_in_degree=*/true,
                                    config.band_min, config.band_max, k, &rng);
      break;
    case SelectionStrategy::kBtwPub:
      result.landmarks = BandSample(g, /*use_in_degree=*/false,
                                    config.band_min, config.band_max, k, &rng);
      break;
    case SelectionStrategy::kCentral: {
      auto scores = CoverageScores(g, config, /*reach_seeds=*/false, &rng);
      result.landmarks = TopByScore(scores, k);
      break;
    }
    case SelectionStrategy::kOutCen: {
      auto scores = CoverageScores(g, config, /*reach_seeds=*/true, &rng);
      result.landmarks = TopByScore(scores, k);
      break;
    }
    case SelectionStrategy::kCombine: {
      auto central = CoverageScores(g, config, /*reach_seeds=*/false, &rng);
      auto outcen = CoverageScores(g, config, /*reach_seeds=*/true, &rng);
      std::vector<double> mix(g.num_nodes());
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        mix[v] = config.combine_weight * central[v] +
                 (1.0 - config.combine_weight) * outcen[v];
      }
      result.landmarks = TopByScore(mix, k);
      break;
    }
    case SelectionStrategy::kCombine2: {
      uint32_t k1 = static_cast<uint32_t>(
          std::round(config.combine_weight * k));
      auto a = BandSample(g, /*use_in_degree=*/true, config.band_min,
                          config.band_max, k1, &rng);
      auto b = BandSample(g, /*use_in_degree=*/false, config.band_min,
                          config.band_max, k - k1, &rng);
      result.landmarks = a;
      for (NodeId v : b) result.landmarks.push_back(v);
      break;
    }
  }

  // De-duplicate (Combine2 mixes two draws) preserving order.
  std::vector<bool> seen(g.num_nodes(), false);
  std::vector<NodeId> uniq;
  uniq.reserve(result.landmarks.size());
  for (NodeId v : result.landmarks) {
    if (!seen[v]) {
      seen[v] = true;
      uniq.push_back(v);
    }
  }
  result.landmarks = std::move(uniq);

  result.total_millis = timer.ElapsedMillis();
  result.millis_per_landmark =
      result.landmarks.empty()
          ? 0.0
          : result.total_millis / static_cast<double>(result.landmarks.size());
  return result;
}

}  // namespace mbr::landmark
