#ifndef MBR_LANDMARK_SELECTION_H_
#define MBR_LANDMARK_SELECTION_H_

// The 11 landmark selection strategies of Table 4.
//
// | Random   | uniform draw                                              |
// | Follow   | draw with probability ∝ #followers (in-degree)            |
// | Publish  | draw with probability ∝ #publishers (out-degree)          |
// | In-Deg   | the nodes with highest in-degree                          |
// | Btw-Fol  | uniform among nodes with #followers in [min, max]         |
// | Out-Deg  | the nodes with highest out-degree                         |
// | Btw-Pub  | uniform among nodes with #publishers in [min, max]        |
// | Central  | nodes reachable within d hops from the most seed nodes    |
// | Out-Cen  | nodes covering (reaching) the most seed nodes             |
// | Combine  | weighted combination of Central and Out-Cen               |
// | Combine2 | weighted mix of Btw-Fol and Btw-Pub                       |

#include <string>
#include <vector>

#include "graph/labeled_graph.h"

namespace mbr::landmark {

enum class SelectionStrategy {
  kRandom,
  kFollow,
  kPublish,
  kInDeg,
  kBtwFol,
  kOutDeg,
  kBtwPub,
  kCentral,
  kOutCen,
  kCombine,
  kCombine2,
};

// All 11 strategies in Table 4 / Table 5 / Table 6 row order.
const std::vector<SelectionStrategy>& AllStrategies();

// Display name matching the paper's tables ("Random", "Btw-Fol", ...).
const char* StrategyName(SelectionStrategy s);

struct SelectionConfig {
  uint32_t num_landmarks = 100;
  uint64_t seed = 1;
  // Btw-Fol / Btw-Pub / Combine2: the admissible degree band.
  uint32_t band_min = 5;
  uint32_t band_max = 500;
  // Central / Out-Cen / Combine: seed count and BFS coverage depth.
  uint32_t num_seeds = 64;
  uint32_t coverage_depth = 2;
  // Combine / Combine2: weight of the first component in [0, 1].
  double combine_weight = 0.5;
};

struct SelectionResult {
  std::vector<graph::NodeId> landmarks;  // distinct nodes
  double total_millis = 0.0;             // wall time of the selection
  double millis_per_landmark = 0.0;      // Table 5's "select. (ms)" column
};

SelectionResult SelectLandmarks(const graph::LabeledGraph& g,
                                SelectionStrategy strategy,
                                const SelectionConfig& config);

}  // namespace mbr::landmark

#endif  // MBR_LANDMARK_SELECTION_H_
