#include "landmark/index.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>

#include "util/serde.h"
#include "util/timer.h"
#include "util/top_k.h"

namespace mbr::landmark {

namespace {

// Runs Algorithm 1 from `lm` and writes the per-topic top-n lists into
// lists[0..num_topics), each ranked by σ descending.
void ComputeLandmarkLists(core::Scorer* scorer, graph::NodeId lm,
                          int num_topics, uint32_t top_n,
                          topics::TopicSet all_topics,
                          std::vector<StoredRec>* lists) {
  const core::ExplorationResult& res = scorer->Explore(lm, all_topics);
  for (int t = 0; t < num_topics; ++t) {
    util::TopK topk(top_n);
    for (graph::NodeId v : res.reached()) {
      if (v == lm) continue;
      double s = res.Sigma(v, static_cast<topics::TopicId>(t));
      if (s > 0.0) topk.Offer(v, s);
    }
    auto ranked = topk.Take();
    auto& out = lists[t];
    out.clear();
    out.reserve(ranked.size());
    for (const util::ScoredId& r : ranked) {
      out.push_back({r.id, r.score, res.TopoBeta(r.id)});
    }
  }
}

}  // namespace

LandmarkIndex::LandmarkIndex(const graph::LabeledGraph& g,
                             const core::AuthorityIndex& authority,
                             const topics::SimilarityMatrix& sim,
                             const std::vector<graph::NodeId>& landmarks,
                             const LandmarkIndexConfig& config)
    : config_(config),
      num_topics_(g.num_topics()),
      landmarks_(landmarks),
      landmark_slot_(g.num_nodes(), kNoSlot),
      mask_(g.num_nodes(), false) {
  MBR_CHECK(config.top_n > 0);
  for (uint32_t i = 0; i < landmarks_.size(); ++i) {
    graph::NodeId lm = landmarks_[i];
    MBR_CHECK(lm < g.num_nodes());
    MBR_CHECK(landmark_slot_[lm] == kNoSlot);  // distinct landmarks
    landmark_slot_[lm] = i;
    mask_[lm] = true;
  }

  topics::TopicSet all_topics;
  for (int t = 0; t < num_topics_; ++t) {
    all_topics.Add(static_cast<topics::TopicId>(t));
  }

  recs_.assign(landmarks_.size() * num_topics_, {});
  util::WallTimer timer;

  // One Scorer (with its scratch buffers) per worker; landmark slots are
  // disjoint, so workers never touch the same output entry.
  uint32_t threads = config.num_threads != 0
                         ? config.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<uint32_t>(
      threads, std::max<uint32_t>(1, static_cast<uint32_t>(landmarks_.size())));

  std::atomic<uint32_t> next{0};
  auto worker = [&]() {
    core::Scorer scorer(g, authority, sim, config_.params);
    for (;;) {
      uint32_t i = next.fetch_add(1);
      if (i >= landmarks_.size()) break;
      // Algorithm 1 run to convergence on the full topic vocabulary.
      ComputeLandmarkLists(&scorer, landmarks_[i], num_topics_,
                           config_.top_n, all_topics,
                           &recs_[static_cast<size_t>(i) * num_topics_]);
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (uint32_t w = 0; w < threads; ++w) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }
  build_seconds_total_ = timer.ElapsedSeconds();
  build_seconds_per_landmark_ =
      landmarks_.empty()
          ? 0.0
          : build_seconds_total_ / static_cast<double>(landmarks_.size());
}

const std::vector<StoredRec>& LandmarkIndex::Recommendations(
    graph::NodeId lambda, topics::TopicId t) const {
  uint32_t slot = landmark_slot_[lambda];
  MBR_CHECK(slot != kNoSlot);
  MBR_CHECK(t < num_topics_);
  return recs_[static_cast<size_t>(slot) * num_topics_ + t];
}

void LandmarkIndex::RefreshLandmark(graph::NodeId lm,
                                    const graph::LabeledGraph& g,
                                    const core::AuthorityIndex& authority,
                                    const topics::SimilarityMatrix& sim) {
  uint32_t slot = landmark_slot_[lm];
  MBR_CHECK(slot != kNoSlot);
  MBR_CHECK(g.num_topics() == num_topics_);
  core::Scorer scorer(g, authority, sim, config_.params);
  topics::TopicSet all_topics;
  for (int t = 0; t < num_topics_; ++t) {
    all_topics.Add(static_cast<topics::TopicId>(t));
  }
  ComputeLandmarkLists(&scorer, lm, num_topics_, config_.top_n, all_topics,
                       &recs_[static_cast<size_t>(slot) * num_topics_]);
}

LandmarkIndex LandmarkIndex::Truncated(uint32_t top_n) const {
  MBR_CHECK(top_n > 0);
  MBR_CHECK(top_n <= config_.top_n);
  LandmarkIndex out;
  out.config_ = config_;
  out.config_.top_n = top_n;
  out.num_topics_ = num_topics_;
  out.landmarks_ = landmarks_;
  out.landmark_slot_ = landmark_slot_;
  out.mask_ = mask_;
  out.build_seconds_per_landmark_ = build_seconds_per_landmark_;
  out.build_seconds_total_ = build_seconds_total_;
  out.recs_.reserve(recs_.size());
  for (const auto& list : recs_) {
    out.recs_.emplace_back(
        list.begin(),
        list.begin() + std::min<size_t>(list.size(), top_n));
  }
  return out;
}

LandmarkIndex LandmarkIndex::Restricted(const std::vector<bool>& keep) const {
  MBR_CHECK(keep.size() == landmark_slot_.size());
  LandmarkIndex out;
  out.config_ = config_;
  out.num_topics_ = num_topics_;
  out.landmarks_ = landmarks_;
  out.landmark_slot_ = landmark_slot_;
  out.mask_ = mask_;
  out.build_seconds_per_landmark_ = build_seconds_per_landmark_;
  out.build_seconds_total_ = build_seconds_total_;
  out.recs_.resize(recs_.size());
  for (size_t slot = 0; slot < landmarks_.size(); ++slot) {
    if (!keep[landmarks_[slot]]) continue;
    for (int t = 0; t < num_topics_; ++t) {
      const size_t i = slot * static_cast<size_t>(num_topics_) + t;
      out.recs_[i] = recs_[i];
    }
  }
  return out;
}

size_t LandmarkIndex::StorageBytes() const {
  size_t bytes = 0;
  for (const auto& list : recs_) bytes += list.size() * sizeof(StoredRec);
  return bytes;
}

namespace {

// Magic of the unversioned pre-serde index format ("MBRLMIDX"), recognised
// only to report a clear compatibility error.
constexpr uint64_t kLegacyMagic = 0x4d42524c4d494458ULL;

// Format version 2: serde container (version 1 is the retired raw format,
// which persisted only β/α of the ScoreParams — an index built for an
// ablation variant silently reverted to kFull at query time).
constexpr uint32_t kIndexFormatVersion = 2;

// Section ids of format version 2.
enum : uint32_t {
  kSecHeader = 1,     // u32 num_topics, u64 num_landmarks, u32 top_n
  kSecParams = 2,     // full core::ScoreParams
  kSecLandmarks = 3,  // NodeId[num_landmarks]
  kSecLists = 4,      // columnar stored lists (lens, nodes, sigmas, topos)
};

// Plausibility cap on top_n: far above anything the paper evaluates
// (L1000), small enough that a forged header cannot demand huge per-list
// allocations.
constexpr uint32_t kMaxTopN = 1u << 24;

bool StartsWithLegacyMagic(std::span<const uint8_t> bytes) {
  uint64_t magic = 0;
  if (bytes.size() < sizeof(magic)) return false;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  return magic == kLegacyMagic;
}

}  // namespace

util::Result<LandmarkIndex> LandmarkIndex::FromReader(
    util::serde::Reader reader, graph::NodeId num_nodes) {
  if (reader.version() != kIndexFormatVersion) {
    return util::Status::InvalidArgument(
        "unsupported landmark index version " +
        std::to_string(reader.version()) + " (expected " +
        std::to_string(kIndexFormatVersion) + "); rebuild the index");
  }
  LandmarkIndex idx;
  MBR_RETURN_IF_ERROR(reader.EnterSection(kSecHeader));
  uint32_t num_topics = 0;
  uint64_t num_landmarks = 0;
  uint32_t top_n = 0;
  MBR_RETURN_IF_ERROR(reader.ReadU32(&num_topics));
  MBR_RETURN_IF_ERROR(reader.ReadU64(&num_landmarks));
  MBR_RETURN_IF_ERROR(reader.ReadU32(&top_n));
  MBR_RETURN_IF_ERROR(reader.ExitSection());
  // Bound every untrusted header field before any allocation.
  if (num_topics == 0 ||
      num_topics > static_cast<uint32_t>(topics::kMaxTopics) ||
      num_landmarks > num_nodes || top_n == 0 || top_n > kMaxTopN) {
    return util::Status::InvalidArgument("implausible landmark index header");
  }
  idx.num_topics_ = static_cast<int>(num_topics);
  idx.config_.top_n = top_n;

  // The full ScoreParams: a loaded index composes stored σ values via
  // Proposition 4, so serving must see exactly the parameters (including
  // the ablation variant) the lists were built with.
  MBR_RETURN_IF_ERROR(reader.EnterSection(kSecParams));
  core::ScoreParams& p = idx.config_.params;
  uint32_t variant = 0;
  MBR_RETURN_IF_ERROR(reader.ReadDouble(&p.beta));
  MBR_RETURN_IF_ERROR(reader.ReadDouble(&p.alpha));
  MBR_RETURN_IF_ERROR(reader.ReadDouble(&p.tolerance));
  MBR_RETURN_IF_ERROR(reader.ReadDouble(&p.frontier_epsilon));
  MBR_RETURN_IF_ERROR(reader.ReadU32(&p.max_depth));
  MBR_RETURN_IF_ERROR(reader.ReadU32(&variant));
  MBR_RETURN_IF_ERROR(reader.ExitSection());
  if (!std::isfinite(p.beta) || !std::isfinite(p.alpha) ||
      !std::isfinite(p.tolerance) || !std::isfinite(p.frontier_epsilon) ||
      variant > static_cast<uint32_t>(core::ScoreVariant::kNoSim)) {
    return util::Status::InvalidArgument("implausible score params in index");
  }
  p.variant = static_cast<core::ScoreVariant>(variant);

  MBR_RETURN_IF_ERROR(reader.EnterSection(kSecLandmarks));
  MBR_RETURN_IF_ERROR(reader.ReadPodArray(&idx.landmarks_, num_landmarks));
  MBR_RETURN_IF_ERROR(reader.ExitSection());
  if (idx.landmarks_.size() != num_landmarks) {
    return util::Status::InvalidArgument("landmark count mismatch");
  }

  // Stored lists, columnar: per-list lengths (each bounded by top_n), then
  // the concatenated node / σ / topo_β columns whose total size is bounded
  // by the validated lengths — a corrupt length can never out-allocate the
  // file itself.
  const uint64_t num_lists = num_landmarks * num_topics;
  std::vector<uint32_t> lens;
  std::vector<graph::NodeId> nodes;
  std::vector<double> sigmas;
  std::vector<double> topos;
  MBR_RETURN_IF_ERROR(reader.EnterSection(kSecLists));
  MBR_RETURN_IF_ERROR(reader.ReadPodArray(&lens, num_lists));
  if (lens.size() != num_lists) {
    return util::Status::InvalidArgument("stored list count mismatch");
  }
  uint64_t total = 0;
  for (uint32_t len : lens) {
    if (len > top_n) {
      return util::Status::InvalidArgument(
          "stored list length exceeds top_n");
    }
    total += len;
  }
  MBR_RETURN_IF_ERROR(reader.ReadPodArray(&nodes, total));
  MBR_RETURN_IF_ERROR(reader.ReadPodArray(&sigmas, total));
  MBR_RETURN_IF_ERROR(reader.ReadPodArray(&topos, total));
  MBR_RETURN_IF_ERROR(reader.ExitSection());
  MBR_RETURN_IF_ERROR(reader.ExpectEnd());
  if (nodes.size() != total || sigmas.size() != total ||
      topos.size() != total) {
    return util::Status::InvalidArgument("stored column size mismatch");
  }

  idx.recs_.resize(num_lists);
  uint64_t off = 0;
  for (uint64_t i = 0; i < num_lists; ++i) {
    auto& list = idx.recs_[i];
    list.resize(lens[i]);
    for (uint32_t j = 0; j < lens[i]; ++j) {
      list[j] = {nodes[off + j], sigmas[off + j], topos[off + j]};
    }
    off += lens[i];
  }

  idx.landmark_slot_.assign(num_nodes, LandmarkIndex::kNoSlot);
  idx.mask_.assign(num_nodes, false);
  for (uint32_t i = 0; i < idx.landmarks_.size(); ++i) {
    graph::NodeId lm = idx.landmarks_[i];
    if (lm >= num_nodes || idx.landmark_slot_[lm] != LandmarkIndex::kNoSlot) {
      return util::Status::InvalidArgument(
          "index does not match the graph: landmark " + std::to_string(lm));
    }
    idx.landmark_slot_[lm] = i;
    idx.mask_[lm] = true;
  }
  for (const auto& list : idx.recs_) {
    for (const StoredRec& r : list) {
      if (r.node >= num_nodes) {
        return util::Status::InvalidArgument(
            "index does not match the graph: stored node " +
            std::to_string(r.node));
      }
    }
  }
  return idx;
}

std::vector<uint8_t> LandmarkIndex::Serialize() const {
  util::serde::Writer w(util::serde::ArtifactKind::kLandmarkIndex,
                        kIndexFormatVersion);
  w.BeginSection(kSecHeader);
  w.PutU32(static_cast<uint32_t>(num_topics_));
  w.PutU64(landmarks_.size());
  w.PutU32(config_.top_n);
  w.EndSection();
  w.BeginSection(kSecParams);
  w.PutDouble(config_.params.beta);
  w.PutDouble(config_.params.alpha);
  w.PutDouble(config_.params.tolerance);
  w.PutDouble(config_.params.frontier_epsilon);
  w.PutU32(config_.params.max_depth);
  w.PutU32(static_cast<uint32_t>(config_.params.variant));
  w.EndSection();
  w.BeginSection(kSecLandmarks);
  w.PutPodArray(landmarks_);
  w.EndSection();
  // Columnar stored lists: serialising field-by-field keeps StoredRec's
  // struct padding out of the file, so equal indexes produce byte-identical
  // containers.
  std::vector<uint32_t> lens;
  std::vector<graph::NodeId> nodes;
  std::vector<double> sigmas;
  std::vector<double> topos;
  lens.reserve(recs_.size());
  for (const auto& list : recs_) {
    lens.push_back(static_cast<uint32_t>(list.size()));
    for (const StoredRec& r : list) {
      nodes.push_back(r.node);
      sigmas.push_back(r.sigma);
      topos.push_back(r.topo_beta);
    }
  }
  w.BeginSection(kSecLists);
  w.PutPodArray(lens);
  w.PutPodArray(nodes);
  w.PutPodArray(sigmas);
  w.PutPodArray(topos);
  w.EndSection();
  return w.buffer();
}

util::Status LandmarkIndex::SaveTo(const std::string& path) const {
  std::vector<uint8_t> bytes = Serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open for write: " + path);
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return util::Status::IoError("short write: " + path);
  return util::Status::Ok();
}

util::Result<LandmarkIndex> LandmarkIndex::LoadFrom(const std::string& path,
                                                    graph::NodeId num_nodes) {
  auto reader = util::serde::Reader::FromFile(
      path, util::serde::ArtifactKind::kLandmarkIndex);
  if (!reader.ok()) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f != nullptr) {
      uint8_t head[8] = {};
      size_t got = std::fread(head, 1, sizeof(head), f);
      std::fclose(f);
      if (StartsWithLegacyMagic({head, got})) {
        return util::Status::InvalidArgument(
            "pre-versioned landmark index (no checksum, partial params): "
            "rebuild it with `mbrec landmarks`: " +
            path);
      }
    }
    return reader.status();
  }
  return FromReader(std::move(*reader), num_nodes);
}

util::Result<LandmarkIndex> LandmarkIndex::LoadFromBuffer(
    std::span<const uint8_t> bytes, graph::NodeId num_nodes) {
  if (StartsWithLegacyMagic(bytes)) {
    return util::Status::InvalidArgument(
        "pre-versioned landmark index buffer");
  }
  auto reader = util::serde::Reader::FromBuffer(
      bytes, util::serde::ArtifactKind::kLandmarkIndex);
  if (!reader.ok()) return reader.status();
  return FromReader(std::move(*reader), num_nodes);
}

}  // namespace mbr::landmark
