#include "landmark/index.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>

#include "util/timer.h"
#include "util/top_k.h"

namespace mbr::landmark {

namespace {

// Runs Algorithm 1 from `lm` and writes the per-topic top-n lists into
// lists[0..num_topics), each ranked by σ descending.
void ComputeLandmarkLists(core::Scorer* scorer, graph::NodeId lm,
                          int num_topics, uint32_t top_n,
                          topics::TopicSet all_topics,
                          std::vector<StoredRec>* lists) {
  core::ExplorationResult res = scorer->Explore(lm, all_topics);
  for (int t = 0; t < num_topics; ++t) {
    util::TopK topk(top_n);
    for (graph::NodeId v : res.reached()) {
      if (v == lm) continue;
      double s = res.Sigma(v, static_cast<topics::TopicId>(t));
      if (s > 0.0) topk.Offer(v, s);
    }
    auto ranked = topk.Take();
    auto& out = lists[t];
    out.clear();
    out.reserve(ranked.size());
    for (const util::ScoredId& r : ranked) {
      out.push_back({r.id, r.score, res.TopoBeta(r.id)});
    }
  }
}

}  // namespace

LandmarkIndex::LandmarkIndex(const graph::LabeledGraph& g,
                             const core::AuthorityIndex& authority,
                             const topics::SimilarityMatrix& sim,
                             const std::vector<graph::NodeId>& landmarks,
                             const LandmarkIndexConfig& config)
    : config_(config),
      num_topics_(g.num_topics()),
      landmarks_(landmarks),
      landmark_slot_(g.num_nodes(), kNoSlot),
      mask_(g.num_nodes(), false) {
  MBR_CHECK(config.top_n > 0);
  for (uint32_t i = 0; i < landmarks_.size(); ++i) {
    graph::NodeId lm = landmarks_[i];
    MBR_CHECK(lm < g.num_nodes());
    MBR_CHECK(landmark_slot_[lm] == kNoSlot);  // distinct landmarks
    landmark_slot_[lm] = i;
    mask_[lm] = true;
  }

  topics::TopicSet all_topics;
  for (int t = 0; t < num_topics_; ++t) {
    all_topics.Add(static_cast<topics::TopicId>(t));
  }

  recs_.assign(landmarks_.size() * num_topics_, {});
  util::WallTimer timer;

  // One Scorer (with its scratch buffers) per worker; landmark slots are
  // disjoint, so workers never touch the same output entry.
  uint32_t threads = config.num_threads != 0
                         ? config.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<uint32_t>(
      threads, std::max<uint32_t>(1, static_cast<uint32_t>(landmarks_.size())));

  std::atomic<uint32_t> next{0};
  auto worker = [&]() {
    core::Scorer scorer(g, authority, sim, config_.params);
    for (;;) {
      uint32_t i = next.fetch_add(1);
      if (i >= landmarks_.size()) break;
      // Algorithm 1 run to convergence on the full topic vocabulary.
      ComputeLandmarkLists(&scorer, landmarks_[i], num_topics_,
                           config_.top_n, all_topics,
                           &recs_[static_cast<size_t>(i) * num_topics_]);
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (uint32_t w = 0; w < threads; ++w) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }
  build_seconds_total_ = timer.ElapsedSeconds();
  build_seconds_per_landmark_ =
      landmarks_.empty()
          ? 0.0
          : build_seconds_total_ / static_cast<double>(landmarks_.size());
}

const std::vector<StoredRec>& LandmarkIndex::Recommendations(
    graph::NodeId lambda, topics::TopicId t) const {
  uint32_t slot = landmark_slot_[lambda];
  MBR_CHECK(slot != kNoSlot);
  MBR_CHECK(t < num_topics_);
  return recs_[static_cast<size_t>(slot) * num_topics_ + t];
}

void LandmarkIndex::RefreshLandmark(graph::NodeId lm,
                                    const graph::LabeledGraph& g,
                                    const core::AuthorityIndex& authority,
                                    const topics::SimilarityMatrix& sim) {
  uint32_t slot = landmark_slot_[lm];
  MBR_CHECK(slot != kNoSlot);
  MBR_CHECK(g.num_topics() == num_topics_);
  core::Scorer scorer(g, authority, sim, config_.params);
  topics::TopicSet all_topics;
  for (int t = 0; t < num_topics_; ++t) {
    all_topics.Add(static_cast<topics::TopicId>(t));
  }
  ComputeLandmarkLists(&scorer, lm, num_topics_, config_.top_n, all_topics,
                       &recs_[static_cast<size_t>(slot) * num_topics_]);
}

LandmarkIndex LandmarkIndex::Truncated(uint32_t top_n) const {
  MBR_CHECK(top_n > 0);
  MBR_CHECK(top_n <= config_.top_n);
  LandmarkIndex out;
  out.config_ = config_;
  out.config_.top_n = top_n;
  out.num_topics_ = num_topics_;
  out.landmarks_ = landmarks_;
  out.landmark_slot_ = landmark_slot_;
  out.mask_ = mask_;
  out.build_seconds_per_landmark_ = build_seconds_per_landmark_;
  out.build_seconds_total_ = build_seconds_total_;
  out.recs_.reserve(recs_.size());
  for (const auto& list : recs_) {
    out.recs_.emplace_back(
        list.begin(),
        list.begin() + std::min<size_t>(list.size(), top_n));
  }
  return out;
}

size_t LandmarkIndex::StorageBytes() const {
  size_t bytes = 0;
  for (const auto& list : recs_) bytes += list.size() * sizeof(StoredRec);
  return bytes;
}

namespace {
constexpr uint64_t kIndexMagic = 0x4d42524c4d494458ULL;  // "MBRLMIDX"
}  // namespace

util::Status LandmarkIndex::SaveTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open for write: " + path);
  }
  bool ok = true;
  uint64_t header[4] = {kIndexMagic, static_cast<uint64_t>(num_topics_),
                        landmarks_.size(), config_.top_n};
  ok = ok && std::fwrite(header, sizeof(header), 1, f) == 1;
  double params[2] = {config_.params.beta, config_.params.alpha};
  ok = ok && std::fwrite(params, sizeof(params), 1, f) == 1;
  ok = ok && (landmarks_.empty() ||
              std::fwrite(landmarks_.data(), sizeof(graph::NodeId),
                          landmarks_.size(), f) == landmarks_.size());
  for (const auto& list : recs_) {
    uint64_t len = list.size();
    ok = ok && std::fwrite(&len, sizeof(len), 1, f) == 1;
    ok = ok && (list.empty() ||
                std::fwrite(list.data(), sizeof(StoredRec), list.size(), f) ==
                    list.size());
  }
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return util::Status::IoError("short write: " + path);
  return util::Status::Ok();
}

util::Result<LandmarkIndex> LandmarkIndex::LoadFrom(const std::string& path,
                                                    graph::NodeId num_nodes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open for read: " + path);
  }
  LandmarkIndex idx;
  uint64_t header[4];
  bool ok = std::fread(header, sizeof(header), 1, f) == 1;
  if (ok && header[0] != kIndexMagic) {
    std::fclose(f);
    return util::Status::InvalidArgument("bad magic in " + path);
  }
  // Bound the untrusted header fields before any allocation.
  if (ok && (header[1] == 0 ||
             header[1] > static_cast<uint64_t>(topics::kMaxTopics) ||
             header[2] > num_nodes || header[3] == 0)) {
    std::fclose(f);
    return util::Status::InvalidArgument("implausible header in " + path);
  }
  double params[2] = {0, 0};
  ok = ok && std::fread(params, sizeof(params), 1, f) == 1;
  if (ok) {
    idx.num_topics_ = static_cast<int>(header[1]);
    idx.config_.top_n = static_cast<uint32_t>(header[3]);
    idx.config_.params.beta = params[0];
    idx.config_.params.alpha = params[1];
    idx.landmarks_.resize(header[2]);
    ok = idx.landmarks_.empty() ||
         std::fread(idx.landmarks_.data(), sizeof(graph::NodeId),
                    idx.landmarks_.size(), f) == idx.landmarks_.size();
  }
  if (ok) {
    idx.recs_.resize(idx.landmarks_.size() * idx.num_topics_);
    for (auto& list : idx.recs_) {
      uint64_t len = 0;
      ok = ok && std::fread(&len, sizeof(len), 1, f) == 1;
      if (!ok) break;
      list.resize(len);
      ok = list.empty() ||
           std::fread(list.data(), sizeof(StoredRec), len, f) == len;
      if (!ok) break;
    }
  }
  std::fclose(f);
  if (!ok) return util::Status::IoError("short read: " + path);

  idx.landmark_slot_.assign(num_nodes, kNoSlot);
  idx.mask_.assign(num_nodes, false);
  for (uint32_t i = 0; i < idx.landmarks_.size(); ++i) {
    graph::NodeId lm = idx.landmarks_[i];
    if (lm >= num_nodes || idx.landmark_slot_[lm] != kNoSlot) {
      return util::Status::InvalidArgument(
          "index does not match the graph: landmark " + std::to_string(lm));
    }
    idx.landmark_slot_[lm] = i;
    idx.mask_[lm] = true;
  }
  for (const auto& list : idx.recs_) {
    for (const StoredRec& r : list) {
      if (r.node >= num_nodes) {
        return util::Status::InvalidArgument(
            "index does not match the graph: stored node " +
            std::to_string(r.node));
      }
    }
  }
  return idx;
}

}  // namespace mbr::landmark
