#ifndef MBR_LANDMARK_COMPOSE_H_
#define MBR_LANDMARK_COMPOSE_H_

// Proposition 4's single-landmark contribution:
//
//   σ̃_λ(u, v, t) = σ(u, λ, t) · topo_β(λ, v) + topo_{αβ}(u, λ) · σ(λ, v, t)
//
// Factored into one shared inline helper because the expression is
// evaluated in two places that must agree bit-for-bit: the single-node
// combine loop (landmark/approx.cc) and the coordinator's scatter-gather
// merge (coord/router.cc), whose replies are pinned byte-identical by
// tests/coord_differential_test.cc. One definition means one compiler
// contraction choice, so the two translation units cannot drift.

namespace mbr::landmark {

inline double ComposeViaLandmark(double sigma_ul, double topo_ab_ul,
                                 double rec_sigma, double rec_topo_beta) {
  return sigma_ul * rec_topo_beta + topo_ab_ul * rec_sigma;
}

}  // namespace mbr::landmark

#endif  // MBR_LANDMARK_COMPOSE_H_
