#ifndef MBR_LANDMARK_APPROX_H_
#define MBR_LANDMARK_APPROX_H_

// Fast approximate recommendation (§4.2 / Algorithm 2).
//
// Query-time: a shallow exploration (depth 2 in the paper) from the query
// user u computes σ(u, ·, t), topo_β and topo_{αβ} for the close vicinity,
// pruning expansion at landmark nodes so no walk through a landmark is
// counted twice (§5.4). Every node reached directly contributes its exact
// short-walk score; every landmark λ encountered additionally contributes
// its stored top-n via Proposition 4:
//
//   σ̃_λ(u, v, t) = σ(u, λ, t) · topo_β(λ, v) + topo_{αβ}(u, λ) · σ(λ, v, t)
//
// With pruning on, the result is a lower bound of the exact score (walks
// that neither stay within the vicinity nor pass a landmark are missed).
//
// Estimator choice when pruning is OFF (prune_at_landmarks = false): the
// exploration then walks *through* landmarks, so a short path u ❀ λ ❀ v is
// counted twice — once exactly by the direct σ(u, v, t) term and once
// approximately by λ's Proposition 4 composition. This double count is
// deliberate: it is precisely the quantity the §5.4 pruning ablation
// measures, and de-duplicating it would require per-path bookkeeping that
// Algorithm 2 is designed to avoid. Production serving should keep pruning
// on; tests/landmark_approx_test.cc pins both behaviours against the
// brute-force oracle.
//
// Hot path (DESIGN.md §6.6): score accumulation runs in a reused
// util::FlatMap, the exploration scratch lives in the (optionally
// per-worker) util::QueryArena, and ScoresFlat() hands the table out by
// reference — zero heap allocations per warm query. ApproximateScores()
// is the offline-friendly copy of the same table.

#include <string>
#include <unordered_map>
#include <vector>

#include "core/authority.h"
#include "core/params.h"
#include "core/recommender.h"
#include "core/recommender_iface.h"
#include "core/scorer.h"
#include "landmark/index.h"
#include "topics/similarity_matrix.h"
#include "util/arena.h"
#include "util/flat_map.h"

namespace mbr::landmark {

struct ApproxConfig {
  // Exploration depth k of Algorithm 2 (paper: 2).
  uint32_t query_depth = 2;
  // Stop expanding at landmarks (§5.4's pruning). Disabling this is the
  // ablation measuring how much the pruning saves / double-counts: without
  // it, any depth-≤ query_depth path through a landmark contributes both
  // its direct σ term and the landmark's Proposition 4 composition (see the
  // estimator note in the file header). Keep it on in production.
  bool prune_at_landmarks = true;
  core::ScoreParams params;
};

// Telemetry of the last query (Table 6 columns).
struct QueryStats {
  uint32_t landmarks_encountered = 0;
  uint32_t nodes_reached = 0;
  double seconds = 0.0;
};

// One node of the decomposed exploration (coordinator tier, DESIGN.md
// §6.7): the exact per-node quantities the combine loop consumes, in
// first-reached order, so a remote merger can replay the ScoresFlat()
// accumulation addition-for-addition.
struct DecomposedRecord {
  graph::NodeId node = 0;
  bool is_landmark = false;
  double sigma = 0.0;           // σ(u, node, t)
  double topo_alphabeta = 0.0;  // topo_αβ(u, node); 0 for non-landmarks
};

// Thread affinity: an ApproxRecommender owns a core::Scorer and reused
// score tables and inherits the scorer's single-caller contract — create
// one instance per serving thread (service::QueryEngine does). The
// landmark index and graph are shared read-only.
class ApproxRecommender : public core::Recommender {
 public:
  // All references must outlive the recommender. `arena` (optional) is
  // handed to the internal Scorer — pass the per-worker arena so scratch
  // survives engine rebinds; nullptr lets the scorer own one.
  ApproxRecommender(const graph::LabeledGraph& g,
                    const core::AuthorityIndex& authority,
                    const topics::SimilarityMatrix& sim,
                    const LandmarkIndex& index, const ApproxConfig& config,
                    util::QueryArena* arena = nullptr);

  std::string name() const override { return "Tr-landmark"; }

  // One ScoresFlat() table, then lookups (scoring mode) or a ranked
  // top-n with exclusions.
  util::Result<core::Ranking> Recommend(const core::Query& q) const override;

  // Weighted multi-topic query Q = {(t_i, w_i)} (§3.2's linear
  // combination), served from the landmark index: Σ_i w_i · σ̃(u, v, t_i).
  std::vector<util::ScoredId> RecommendQuery(
      graph::NodeId u, const std::vector<core::WeightedTopic>& query,
      size_t n) const;

  // Full approximate score table for (u, t): node -> σ̃ (direct + landmark
  // contributions). Stats for the run are written to *stats if non-null.
  // The returned reference is owned by the recommender and valid until the
  // next query on this instance (single-caller, like the scorer).
  const util::FlatMap<graph::NodeId, double>& ScoresFlat(
      graph::NodeId u, topics::TopicId t, QueryStats* stats = nullptr) const;

  // Offline-friendly copy of ScoresFlat() for callers that keep or merge
  // tables (evaluation harness, distributed simulation, tests).
  std::unordered_map<graph::NodeId, double> ApproximateScores(
      graph::NodeId u, topics::TopicId t, QueryStats* stats = nullptr) const;

  // Re-points the internal scorer at a new graph generation, keeping the
  // warmed arena scratch (same contract as core::Scorer::Rebind: node/topic
  // universe unchanged, no query in flight). The landmark index is shared
  // and repaired in place, so it is not rebound here.
  void Rebind(const graph::LabeledGraph& g,
              const core::AuthorityIndex& authority) {
    scorer_.Rebind(g, authority);
  }

  // The home shard's half of the coordinator split: runs the same pruned
  // exploration as ScoresFlat(q.user, q.topic) but exports the ordered
  // per-node records instead of the merged table — the landmark list
  // compositions are left to the caller (the router fills them in from
  // shard-homed lists, see net::PartialReply). Honours q's deadline like
  // Recommend(). The query user itself is never emitted (the combine loop
  // skips it on both its terms).
  util::Status ExploreDecomposed(const core::Query& q,
                                 std::vector<DecomposedRecord>* out) const;

 private:
  const LandmarkIndex& index_;
  ApproxConfig config_;
  core::Scorer scorer_;
  // Reused per-query score tables (cleared, never shrunk): direct +
  // composed scores, and the multi-topic combination of RecommendQuery.
  mutable util::FlatMap<graph::NodeId, double> scores_;
  mutable util::FlatMap<graph::NodeId, double> combined_;
};

}  // namespace mbr::landmark

#endif  // MBR_LANDMARK_APPROX_H_
