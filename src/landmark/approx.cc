#include "landmark/approx.h"

#include "landmark/compose.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/timer.h"
#include "util/top_k.h"

namespace mbr::landmark {

namespace {

// Table 6 columns as live distributions: how wide the depth-2 BFS fans out
// and how many stored landmark lists each query consults.
obs::Histogram* LandmarksConsultedHistogram() {
  static obs::Histogram* h = obs::Registry::Default().GetHistogram(
      "mbr_landmark_consulted",
      "Landmarks whose stored lists were composed per approximate query.");
  return h;
}

obs::Histogram* NodesReachedHistogram() {
  static obs::Histogram* h = obs::Registry::Default().GetHistogram(
      "mbr_landmark_nodes_reached",
      "Nodes reached by the bounded-depth exploration per approximate "
      "query.");
  return h;
}

}  // namespace

ApproxRecommender::ApproxRecommender(const graph::LabeledGraph& g,
                                     const core::AuthorityIndex& authority,
                                     const topics::SimilarityMatrix& sim,
                                     const LandmarkIndex& index,
                                     const ApproxConfig& config,
                                     util::QueryArena* arena)
    : index_(index),
      config_([&] {
        ApproxConfig c = config;
        c.params.max_depth = config.query_depth;
        return c;
      }()),
      scorer_(g, authority, sim, config_.params, arena) {}

const util::FlatMap<graph::NodeId, double>& ApproxRecommender::ScoresFlat(
    graph::NodeId u, topics::TopicId t, QueryStats* stats) const {
  util::WallTimer timer;
  const std::vector<bool>* pruned =
      config_.prune_at_landmarks ? &index_.landmark_mask() : nullptr;
  const core::ExplorationResult& res = [&]() -> decltype(auto) {
    MBR_SPAN("landmark.bfs");
    return scorer_.Explore(u, topics::TopicSet::Single(t), pruned);
  }();

  MBR_SPAN("landmark.combine");
  util::FlatMap<graph::NodeId, double>& scores = scores_;
  scores.Clear();
  uint32_t landmarks_met = 0;

  for (graph::NodeId v : res.reached()) {
    if (v != u) scores[v] += res.Sigma(v, t);
    if (!index_.IsLandmark(v) || v == u) continue;
    ++landmarks_met;
    // Proposition 4 composition with λ = v's stored lists.
    const double sigma_ul = res.Sigma(v, t);
    const double topo_ab_ul = res.TopoAlphaBeta(v);
    for (const StoredRec& rec : index_.Recommendations(v, t)) {
      if (rec.node == u) continue;
      scores[rec.node] +=
          ComposeViaLandmark(sigma_ul, topo_ab_ul, rec.sigma, rec.topo_beta);
    }
  }

  LandmarksConsultedHistogram()->Record(landmarks_met);
  NodesReachedHistogram()->Record(res.reached().size());
  if (stats != nullptr) {
    stats->landmarks_encountered = landmarks_met;
    stats->nodes_reached = static_cast<uint32_t>(res.reached().size());
    stats->seconds = timer.ElapsedSeconds();
  }
  return scores;
}

std::unordered_map<graph::NodeId, double> ApproxRecommender::ApproximateScores(
    graph::NodeId u, topics::TopicId t, QueryStats* stats) const {
  const util::FlatMap<graph::NodeId, double>& flat = ScoresFlat(u, t, stats);
  std::unordered_map<graph::NodeId, double> out;
  out.reserve(flat.size() * 2);
  for (const auto& [v, s] : flat) out.emplace(v, s);
  return out;
}

util::Status ApproxRecommender::ExploreDecomposed(
    const core::Query& q, std::vector<DecomposedRecord>* out) const {
  MBR_RETURN_IF_ERROR(CheckDeadline(q));
  const graph::NodeId u = q.user;
  const topics::TopicId t = q.topic;
  const std::vector<bool>* pruned =
      config_.prune_at_landmarks ? &index_.landmark_mask() : nullptr;
  const core::ExplorationResult& res = [&]() -> decltype(auto) {
    MBR_SPAN("landmark.bfs");
    return scorer_.Explore(u, topics::TopicSet::Single(t), pruned);
  }();
  MBR_RETURN_IF_ERROR(CheckDeadline(q));

  out->clear();
  out->reserve(res.reached().size());
  uint32_t landmarks_met = 0;
  for (graph::NodeId v : res.reached()) {
    if (v == u) continue;  // both combine-loop terms skip the query user
    DecomposedRecord rec;
    rec.node = v;
    rec.sigma = res.Sigma(v, t);
    rec.is_landmark = index_.IsLandmark(v);
    if (rec.is_landmark) {
      rec.topo_alphabeta = res.TopoAlphaBeta(v);
      ++landmarks_met;
    }
    out->push_back(rec);
  }
  LandmarksConsultedHistogram()->Record(landmarks_met);
  NodesReachedHistogram()->Record(res.reached().size());
  return util::Status::Ok();
}

util::Result<core::Ranking> ApproxRecommender::Recommend(
    const core::Query& q) const {
  MBR_RETURN_IF_ERROR(CheckDeadline(q));
  const util::FlatMap<graph::NodeId, double>& scores =
      ScoresFlat(q.user, q.topic);
  MBR_RETURN_IF_ERROR(CheckDeadline(q));
  if (q.scoring_mode()) {
    core::Ranking r;
    r.entries.reserve(q.candidates.size());
    for (graph::NodeId v : q.candidates) {
      const double* s = scores.Find(v);
      r.entries.push_back({v, s == nullptr ? 0.0 : *s});
    }
    return r;
  }
  core::RankingBuilder builder(q);
  for (const auto& [v, s] : scores) {
    builder.Offer(v, s);
  }
  return builder.Take();
}

std::vector<util::ScoredId> ApproxRecommender::RecommendQuery(
    graph::NodeId u, const std::vector<core::WeightedTopic>& query,
    size_t n) const {
  MBR_CHECK(!query.empty());
  combined_.Clear();
  for (const core::WeightedTopic& wt : query) {
    for (const auto& [v, s] : ScoresFlat(u, wt.topic)) {
      combined_[v] += wt.weight * s;
    }
  }
  util::TopK topk(n);
  for (const auto& [v, s] : combined_) {
    if (s > 0.0) topk.Offer(v, s);
  }
  return topk.Take();
}

}  // namespace mbr::landmark
