#ifndef MBR_LANDMARK_INDEX_H_
#define MBR_LANDMARK_INDEX_H_

// Landmark pre-processing (§4.1 / Algorithm 1).
//
// For every landmark λ the index stores, per topic t, the top-n
// recommendations σ(λ, v, t) as an inverted list — together with each
// recommended node's topological score topo_β(λ, v), which Proposition 4
// needs at query time:
//
//   σ̃_λ(u, v, t) = σ(u, λ, t) · topo_β(λ, v) + topo_{αβ}(u, λ) · σ(λ, v, t)
//
// §5.2: "We stored the landmark recommendations as inverted lists: for each
// landmark, we have a set of accounts recommended along with their
// recommendation score for each topic from T."

#include <span>
#include <string>
#include <vector>

#include "core/authority.h"
#include "core/params.h"
#include "core/scorer.h"
#include "graph/labeled_graph.h"
#include "topics/similarity_matrix.h"

namespace mbr::util::serde {
class Reader;
}  // namespace mbr::util::serde

namespace mbr::landmark {

// One stored recommendation of a landmark.
struct StoredRec {
  graph::NodeId node = graph::kInvalidNode;
  double sigma = 0.0;      // σ(λ, node, t)
  double topo_beta = 0.0;  // topo_β(λ, node)
};

struct LandmarkIndexConfig {
  // Recommendations stored per (landmark, topic): the paper evaluates
  // top-10 / top-100 / top-1000 (Table 6's L10 / L100 / L1000).
  uint32_t top_n = 100;
  // Scoring parameters; preprocessing runs Algorithm 1 to convergence, so
  // params.max_depth acts as a safety bound only.
  core::ScoreParams params;
  // Worker threads for the per-landmark Algorithm 1 runs (results are
  // bit-identical regardless): 0 = hardware concurrency, 1 = serial.
  uint32_t num_threads = 0;
};

class LandmarkIndex {
 public:
  // Runs Algorithm 1 (all topics) from every landmark. `landmarks` must be
  // distinct, valid node ids.
  LandmarkIndex(const graph::LabeledGraph& g,
                const core::AuthorityIndex& authority,
                const topics::SimilarityMatrix& sim,
                const std::vector<graph::NodeId>& landmarks,
                const LandmarkIndexConfig& config);

  bool IsLandmark(graph::NodeId v) const {
    return landmark_slot_[v] != kNoSlot;
  }
  const std::vector<graph::NodeId>& landmarks() const { return landmarks_; }
  const std::vector<bool>& landmark_mask() const { return mask_; }

  // Stored top-n list of landmark λ for topic t (ranked by σ desc).
  // Preconditions: IsLandmark(λ).
  const std::vector<StoredRec>& Recommendations(graph::NodeId lambda,
                                                topics::TopicId t) const;

  // A copy of this index keeping only the top `top_n` entries of every
  // stored list. Preconditions: top_n <= config().top_n. Lets experiments
  // compare stored-list sizes (Table 6's L10/L100/L1000) with a single
  // Algorithm 1 pre-processing pass.
  LandmarkIndex Truncated(uint32_t top_n) const;

  // A copy of this index keeping the global landmark set/mask (so pruned
  // exploration behaves identically everywhere) but the stored lists of
  // only the landmarks for which keep[λ] is true — the per-shard
  // restriction of the coordinator tier (DESIGN.md §6.7). Kept lists are
  // copied verbatim, so a shard's list is bit-identical to the single-node
  // one; dropped lists become empty. Preconditions: keep.size() ==
  // landmark_slot_.size() (the node universe).
  LandmarkIndex Restricted(const std::vector<bool>& keep) const;

  // Re-runs Algorithm 1 for one landmark against `g` (typically the graph
  // after a batch of updates) and replaces its stored lists in place — the
  // unit of work of the §6 refresh policies. Preconditions: IsLandmark(lm);
  // g has the node/topic counts this index was built with.
  void RefreshLandmark(graph::NodeId lm, const graph::LabeledGraph& g,
                       const core::AuthorityIndex& authority,
                       const topics::SimilarityMatrix& sim);

  const LandmarkIndexConfig& config() const { return config_; }
  int num_topics() const { return num_topics_; }

  // Table 5's "comput. (s)" column: mean Algorithm 1 time per landmark.
  double build_seconds_per_landmark() const {
    return build_seconds_per_landmark_;
  }
  double build_seconds_total() const { return build_seconds_total_; }

  // Bytes used by the stored inverted lists (§5.4 notes ~1.4 MB per
  // landmark when storing top-1000 for all topics).
  size_t StorageBytes() const;

  // Binary persistence, so the expensive pre-processing can be done once
  // and shipped (e.g. to the workers of a distributed deployment). The
  // loaded index must be used with the same graph it was built on.
  //
  // The file is a util::serde container (versioned, CRC32 per section) that
  // persists the FULL ScoreParams — including tolerance, max_depth,
  // frontier_epsilon and the ablation variant — so a loaded index is never
  // silently mis-composed via Proposition 4 under default parameters.
  // Malformed or truncated files come back as a non-OK Status, never UB;
  // files in the retired unversioned format fail with a clear
  // InvalidArgument asking for a rebuild.
  util::Status SaveTo(const std::string& path) const;
  static util::Result<LandmarkIndex> LoadFrom(const std::string& path,
                                              graph::NodeId num_nodes);

  // In-memory variants (corruption tests, shipping an index over RPC).
  std::vector<uint8_t> Serialize() const;
  static util::Result<LandmarkIndex> LoadFromBuffer(
      std::span<const uint8_t> bytes, graph::NodeId num_nodes);

 private:
  static constexpr uint32_t kNoSlot = 0xffffffff;

  LandmarkIndex() = default;  // for Truncated()

  // Decodes a validated serde container (shared by LoadFrom/LoadFromBuffer).
  static util::Result<LandmarkIndex> FromReader(util::serde::Reader reader,
                                                graph::NodeId num_nodes);

  LandmarkIndexConfig config_;
  int num_topics_ = 0;
  std::vector<graph::NodeId> landmarks_;
  std::vector<uint32_t> landmark_slot_;  // node -> index into landmarks_
  std::vector<bool> mask_;
  // recs_[slot * num_topics + t] = stored list.
  std::vector<std::vector<StoredRec>> recs_;
  double build_seconds_per_landmark_ = 0.0;
  double build_seconds_total_ = 0.0;
};

}  // namespace mbr::landmark

#endif  // MBR_LANDMARK_INDEX_H_
