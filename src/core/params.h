#ifndef MBR_CORE_PARAMS_H_
#define MBR_CORE_PARAMS_H_

// Scoring parameters shared by the exact and landmark-based computations.

#include <cstdint>

namespace mbr::core {

// Ablation variants evaluated in Figure 4.
enum class ScoreVariant {
  kFull,    // Tr: edge similarity x authority (Equations 3 + 4)
  kNoAuth,  // Tr-auth: edge similarity only (auth term = 1)
  kNoSim,   // Tr-sim: authority only (similarity term = 1)
};

struct ScoreParams {
  // Path decay factor β of Equation 1 and edge decay factor α of
  // Equation 3; §5.2 uses β = 0.0005 (as for Katz in [16]) and α = 0.85
  // (as for TwitterRank in [26]).
  double beta = 0.0005;
  double alpha = 0.85;

  // Iterations stop when the per-topic average of the newly added score
  // mass drops below this (Algorithm 1, line 15) or when max_depth is hit.
  double tolerance = 1e-12;
  uint32_t max_depth = 8;

  // Frontier entries whose pending deltas are all below this are pruned;
  // 0 disables pruning (needed when comparing against the oracle exactly).
  double frontier_epsilon = 1e-15;

  ScoreVariant variant = ScoreVariant::kFull;
};

}  // namespace mbr::core

#endif  // MBR_CORE_PARAMS_H_
