#include "core/spectral.h"

#include <cmath>
#include <vector>

namespace mbr::core {

double EstimateSpectralRadius(const graph::LabeledGraph& g,
                              uint32_t iterations) {
  const graph::NodeId n = g.num_nodes();
  if (n == 0 || g.num_edges() == 0) return 0.0;

  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> y(n, 0.0);
  double lambda = 0.0;
  for (uint32_t it = 0; it < iterations; ++it) {
    std::fill(y.begin(), y.end(), 0.0);
    // y = A x with A[v][u] = 1 iff u follows v (mass flows along edges).
    for (graph::NodeId u = 0; u < n; ++u) {
      double xu = x[u];
      if (xu == 0.0) continue;
      for (graph::NodeId v : g.OutNeighbors(u)) y[v] += xu;
    }
    double norm = 0.0;
    for (double v : y) norm += v * v;
    norm = std::sqrt(norm);
    if (norm == 0.0) return 0.0;  // start vector in the nilpotent part
    lambda = norm;
    for (graph::NodeId i = 0; i < n; ++i) x[i] = y[i] / norm;
  }
  return lambda;
}

}  // namespace mbr::core
