#include "core/scorer.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/span.h"

namespace mbr::core {

namespace {

// Convergence telemetry for Proposition 3's bound: how many iterations the
// frontier actually needed vs the β-derived depth cap, and how wide each
// expansion was.
struct ScorerMetrics {
  obs::Histogram* frontier_size;
  obs::Histogram* iterations;
  obs::Counter* converged;
  obs::Counter* depth_capped;

  static const ScorerMetrics& Get() {
    static ScorerMetrics m = [] {
      obs::Registry& r = obs::Registry::Default();
      ScorerMetrics out;
      out.frontier_size = r.GetHistogram(
          "mbr_scorer_frontier_size",
          "Frontier width at each exploration iteration.");
      out.iterations = r.GetHistogram(
          "mbr_scorer_iterations",
          "Iterations run per exploration before convergence or depth cap.");
      out.converged = r.GetCounter(
          "mbr_scorer_converged_total",
          "Explorations that converged (tolerance or exhausted frontier).");
      out.depth_capped = r.GetCounter(
          "mbr_scorer_depth_capped_total",
          "Explorations stopped by max_depth with frontier mass remaining.");
      return out;
    }();
    return m;
  }
};

// Enforces the single-caller contract: aborts if two Explore() calls on the
// same Scorer ever overlap (e.g. the instance was shared across threads).
class ExploreGuard {
 public:
  explicit ExploreGuard(std::atomic<bool>& flag) : flag_(flag) {
    MBR_CHECK(!flag_.exchange(true, std::memory_order_acquire) &&
              "Scorer is single-caller: create one Scorer per thread");
  }
  ~ExploreGuard() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool>& flag_;
};

}  // namespace

Scorer::Scorer(const graph::LabeledGraph& g, const AuthorityIndex& authority,
               const topics::SimilarityMatrix& sim, const ScoreParams& params)
    : g_(g), authority_(authority), sim_(sim), params_(params) {
  MBR_CHECK(sim.num_topics() >= g.num_topics());
  MBR_CHECK(authority.num_topics() == g.num_topics());
  MBR_CHECK(params.beta > 0.0 && params.beta < 1.0);
  MBR_CHECK(params.alpha > 0.0 && params.alpha <= 1.0);
}

double Scorer::EdgeTopicWeight(topics::TopicSet labels, graph::NodeId v,
                               topics::TopicId t) const {
  double s;
  switch (params_.variant) {
    case ScoreVariant::kFull:
      s = sim_.MaxSim(labels, t);
      break;
    case ScoreVariant::kNoAuth:
      s = sim_.MaxSim(labels, t);
      return params_.beta * params_.alpha * s;
    case ScoreVariant::kNoSim:
      s = 1.0;
      break;
    default:
      s = 0.0;
  }
  return params_.beta * params_.alpha * s * authority_.Authority(v, t);
}

ExplorationResult Scorer::Explore(graph::NodeId source,
                                  topics::TopicSet query_topics,
                                  const std::vector<bool>* pruned) const {
  MBR_CHECK(source < g_.num_nodes());
  ExploreGuard guard(exploring_);
  MBR_SPAN("scorer.explore");
  const ScorerMetrics& metrics = ScorerMetrics::Get();
  const int nt = g_.num_topics();
  const double beta = params_.beta;
  const double alphabeta = params_.alpha * params_.beta;

  // Dense query-topic list (usually 1 topic at query time, all topics in
  // landmark pre-processing). Sigma scratch rows are packed with stride
  // qt.size().
  std::vector<topics::TopicId> qt;
  for (topics::TopicId t : query_topics) {
    MBR_CHECK(t < nt);
    qt.push_back(t);
  }
  const size_t qn = qt.size();

  ExplorationResult result(g_.num_nodes(), nt);

  // Grow scratch lazily; all entries are zero between calls (touched
  // entries are restored below), so queries cost O(vicinity) not O(n).
  const graph::NodeId n = g_.num_nodes();
  Scratch& s = scratch_;
  if (s.delta_b.size() < n) {
    s.delta_b.assign(n, 0.0);
    s.delta_ab.assign(n, 0.0);
    s.next_b.assign(n, 0.0);
    s.next_ab.assign(n, 0.0);
    s.in_next.assign(n, false);
  }
  if (s.delta_sigma.size() < static_cast<size_t>(n) * qn) {
    s.delta_sigma.assign(static_cast<size_t>(n) * qn, 0.0);
    s.next_sigma.assign(static_cast<size_t>(n) * qn, 0.0);
  }

  std::vector<graph::NodeId> frontier = {source};
  s.delta_b[source] = 1.0;
  s.delta_ab[source] = 1.0;
  // delta_sigma[source] stays 0: σ(u,u)=0 initially (walks of length 0
  // carry no topical mass).

  uint32_t depth = 0;
  while (depth < params_.max_depth && !frontier.empty()) {
    metrics.frontier_size->Record(frontier.size());
    std::vector<graph::NodeId> next_frontier;
    double added_mass = 0.0;

    for (graph::NodeId u : frontier) {
      const double db = s.delta_b[u];
      const double dab = s.delta_ab[u];
      const double* dsig = s.delta_sigma.data() + static_cast<size_t>(u) * qn;

      auto nbrs = g_.OutNeighbors(u);
      auto labs = g_.OutEdgeLabels(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const graph::NodeId v = nbrs[i];
        if (!s.in_next[v]) {
          s.in_next[v] = true;
          next_frontier.push_back(v);
        }
        s.next_b[v] += beta * db;
        s.next_ab[v] += alphabeta * dab;
        double* nsig = s.next_sigma.data() + static_cast<size_t>(v) * qn;
        for (size_t qi = 0; qi < qn; ++qi) {
          double w = EdgeTopicWeight(labs[i], v, qt[qi]);
          nsig[qi] += beta * dsig[qi] + dab * w;
        }
      }
    }

    // Clear the consumed deltas.
    for (graph::NodeId u : frontier) {
      s.delta_b[u] = 0.0;
      s.delta_ab[u] = 0.0;
      double* dsig = s.delta_sigma.data() + static_cast<size_t>(u) * qn;
      for (size_t qi = 0; qi < qn; ++qi) dsig[qi] = 0.0;
    }

    // Commit the new walk length: accumulate totals, move next -> delta,
    // prune below-epsilon frontier entries and landmark-pruned nodes.
    std::vector<graph::NodeId> new_frontier;
    new_frontier.reserve(next_frontier.size());
    for (graph::NodeId v : next_frontier) {
      s.in_next[v] = false;
      uint32_t slot = result.SlotFor(v);
      result.topo_beta_[slot] += s.next_b[v];
      result.topo_alphabeta_[slot] += s.next_ab[v];
      double* rsig = &result.sigma_[static_cast<size_t>(slot) * nt];
      double* nsig = s.next_sigma.data() + static_cast<size_t>(v) * qn;
      double node_mass = 0.0;
      for (size_t qi = 0; qi < qn; ++qi) {
        rsig[qt[qi]] += nsig[qi];
        node_mass += nsig[qi];
      }
      added_mass += node_mass;

      bool expand = true;
      if (pruned != nullptr && (*pruned)[v]) expand = false;
      if (params_.frontier_epsilon > 0.0 &&
          s.next_b[v] < params_.frontier_epsilon &&
          s.next_ab[v] < params_.frontier_epsilon &&
          node_mass < params_.frontier_epsilon) {
        expand = false;
      }
      if (expand) {
        s.delta_b[v] = s.next_b[v];
        s.delta_ab[v] = s.next_ab[v];
        double* dsig = s.delta_sigma.data() + static_cast<size_t>(v) * qn;
        for (size_t qi = 0; qi < qn; ++qi) dsig[qi] = nsig[qi];
        new_frontier.push_back(v);
      }
      s.next_b[v] = 0.0;
      s.next_ab[v] = 0.0;
      for (size_t qi = 0; qi < qn; ++qi) nsig[qi] = 0.0;
    }

    frontier = std::move(new_frontier);
    ++depth;
    result.iterations_run_ = depth;

    // Algorithm 1 line 15: stop when the newly added average score mass is
    // negligible.
    if (qn > 0) {
      double denom = static_cast<double>(result.reached_.size()) *
                     static_cast<double>(qn);
      if (denom > 0.0 && added_mass / denom < params_.tolerance &&
          depth >= 2) {
        result.converged_ = true;
        break;
      }
    }
  }
  if (frontier.empty()) {
    result.converged_ = true;
  } else {
    // Restore the invariant: zero the deltas the aborted frontier left.
    for (graph::NodeId u : frontier) {
      s.delta_b[u] = 0.0;
      s.delta_ab[u] = 0.0;
      double* dsig = s.delta_sigma.data() + static_cast<size_t>(u) * qn;
      for (size_t qi = 0; qi < qn; ++qi) dsig[qi] = 0.0;
    }
  }
  metrics.iterations->Record(result.iterations_run_);
  if (result.converged_) {
    metrics.converged->Increment();
  } else {
    metrics.depth_capped->Increment();
  }
  return result;
}

}  // namespace mbr::core
