#include "core/scorer.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/span.h"

namespace mbr::core {

namespace {

// Convergence telemetry for Proposition 3's bound: how many iterations the
// frontier actually needed vs the β-derived depth cap, and how wide each
// expansion was.
struct ScorerMetrics {
  obs::Histogram* frontier_size;
  obs::Histogram* iterations;
  obs::Counter* converged;
  obs::Counter* depth_capped;

  static const ScorerMetrics& Get() {
    static ScorerMetrics m = [] {
      obs::Registry& r = obs::Registry::Default();
      ScorerMetrics out;
      out.frontier_size = r.GetHistogram(
          "mbr_scorer_frontier_size",
          "Frontier width at each exploration iteration.");
      out.iterations = r.GetHistogram(
          "mbr_scorer_iterations",
          "Iterations run per exploration before convergence or depth cap.");
      out.converged = r.GetCounter(
          "mbr_scorer_converged_total",
          "Explorations that converged (tolerance or exhausted frontier).");
      out.depth_capped = r.GetCounter(
          "mbr_scorer_depth_capped_total",
          "Explorations stopped by max_depth with frontier mass remaining.");
      return out;
    }();
    return m;
  }
};

// Enforces the single-caller contract: aborts if two Explore() calls on the
// same Scorer ever overlap (e.g. the instance was shared across threads).
class ExploreGuard {
 public:
  explicit ExploreGuard(std::atomic<bool>& flag) : flag_(flag) {
    MBR_CHECK(!flag_.exchange(true, std::memory_order_acquire) &&
              "Scorer is single-caller: create one Scorer per thread");
  }
  ~ExploreGuard() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool>& flag_;
};

// max_{x in labels} srow[x] — MaxSim against a precomputed similarity row.
// The max over a set is order-independent, so this is bit-identical to
// SimilarityMatrix::MaxSim without the per-label triangular-index math.
inline double RowMaxSim(const double* srow, topics::TopicSet labels) {
  double best = 0.0;
  for (topics::TopicId x : labels) {
    const double s = srow[x];
    if (s > best) best = s;
  }
  return best;
}

// Compile-time weight policies, one per ScoreVariant. Each reproduces
// EdgeTopicWeight's arithmetic bit-for-bit (`ab` is β·α multiplied in the
// same order; `srow` is the query topic's similarity row, `arow` the
// target node's authority row), but is inlined into the edge loop with no
// per-edge switch and no per-topic row recomputation.
struct FullWeight {  // Tr: edge similarity x authority
  static double Weight(const double* srow, const double* arow, double ab,
                       topics::TopicSet labels, topics::TopicId t) {
    return ab * RowMaxSim(srow, labels) * arow[t];
  }
};

struct NoAuthWeight {  // Tr−auth: edge similarity only
  static double Weight(const double* srow, const double* /*arow*/, double ab,
                       topics::TopicSet labels, topics::TopicId /*t*/) {
    return ab * RowMaxSim(srow, labels);
  }
};

struct NoSimWeight {  // Tr−sim: authority only (similarity term = 1)
  static double Weight(const double* /*srow*/, const double* arow, double ab,
                       topics::TopicSet /*labels*/, topics::TopicId t) {
    return ab * arow[t];
  }
};

}  // namespace

Scorer::Scorer(const graph::LabeledGraph& g, const AuthorityIndex& authority,
               const topics::SimilarityMatrix& sim, const ScoreParams& params,
               util::QueryArena* arena)
    : g_(&g), authority_(&authority), sim_(sim), params_(params) {
  MBR_CHECK(sim.num_topics() >= g.num_topics());
  MBR_CHECK(authority.num_topics() == g.num_topics());
  MBR_CHECK(params.beta > 0.0 && params.beta < 1.0);
  MBR_CHECK(params.alpha > 0.0 && params.alpha <= 1.0);
  if (arena != nullptr) {
    arena_ = arena;
  } else {
    owned_arena_ = std::make_unique<util::QueryArena>();
    arena_ = owned_arena_.get();
  }
}

void Scorer::Rebind(const graph::LabeledGraph& g,
                    const AuthorityIndex& authority) {
  MBR_CHECK(!exploring_.load(std::memory_order_acquire) &&
            "Rebind must not race an in-flight Explore");
  MBR_CHECK(g.num_nodes() == g_->num_nodes());
  MBR_CHECK(g.num_topics() == g_->num_topics());
  MBR_CHECK(authority.num_topics() == g.num_topics());
  g_ = &g;
  authority_ = &authority;
}

double Scorer::EdgeTopicWeight(topics::TopicSet labels, graph::NodeId v,
                               topics::TopicId t) const {
  double s;
  switch (params_.variant) {
    case ScoreVariant::kFull:
      s = sim_.MaxSim(labels, t);
      break;
    case ScoreVariant::kNoAuth:
      s = sim_.MaxSim(labels, t);
      return params_.beta * params_.alpha * s;
    case ScoreVariant::kNoSim:
      s = 1.0;
      break;
    default:
      // An unknown variant must never silently zero every score.
      MBR_CHECK(false && "unknown ScoreVariant");
      __builtin_unreachable();
  }
  return params_.beta * params_.alpha * s * authority_->Authority(v, t);
}

void Scorer::EnsureScratch(size_t qn) const {
  const graph::NodeId n = g_->num_nodes();
  const size_t want_qn = std::max<size_t>(qn, 1);
  if (scratch_nodes_ == n && want_qn <= scratch_qn_) return;

  scratch_nodes_ = n;
  scratch_qn_ = std::max(want_qn, scratch_qn_);
  arena_->Reset();
  delta_b_ = arena_->AllocSpan<double>(n);
  delta_ab_ = arena_->AllocSpan<double>(n);
  next_b_ = arena_->AllocSpan<double>(n);
  next_ab_ = arena_->AllocSpan<double>(n);
  const size_t sig = static_cast<size_t>(n) * scratch_qn_;
  delta_sigma_ = arena_->AllocSpan<double>(sig);
  next_sigma_ = arena_->AllocSpan<double>(sig);
  in_next_ = arena_->AllocSpan<uint8_t>(n);
  frontier_buf_ = arena_->AllocSpan<graph::NodeId>(n);
  next_buf_ = arena_->AllocSpan<graph::NodeId>(n);
  new_buf_ = arena_->AllocSpan<graph::NodeId>(n);
  qt_ = arena_->AllocSpan<topics::TopicId>(topics::kMaxTopics);
  wrow_ = arena_->AllocSpan<double>(topics::kMaxTopics);
  srow_ = arena_->AllocSpan<double>(static_cast<size_t>(topics::kMaxTopics) *
                                    topics::kMaxTopics);

  // Establish the all-zero invariant once; queries restore the entries
  // they touch, so this O(n) fill never reruns in steady state.
  std::fill(delta_b_.begin(), delta_b_.end(), 0.0);
  std::fill(delta_ab_.begin(), delta_ab_.end(), 0.0);
  std::fill(next_b_.begin(), next_b_.end(), 0.0);
  std::fill(next_ab_.begin(), next_ab_.end(), 0.0);
  std::fill(delta_sigma_.begin(), delta_sigma_.end(), 0.0);
  std::fill(next_sigma_.begin(), next_sigma_.end(), 0.0);
  std::fill(in_next_.begin(), in_next_.end(), 0);
}

const ExplorationResult& Scorer::Explore(graph::NodeId source,
                                         topics::TopicSet query_topics,
                                         const std::vector<bool>* pruned)
    const {
  MBR_CHECK(source < g_->num_nodes());
  ExploreGuard guard(exploring_);
  MBR_SPAN("scorer.explore");
  const int nt = g_->num_topics();

  // Dense query-topic list (usually 1 topic at query time, all topics in
  // landmark pre-processing). Sigma scratch rows are packed with stride
  // qt_[0..qn).
  EnsureScratch(static_cast<size_t>(query_topics.size()));
  size_t qn = 0;
  for (topics::TopicId t : query_topics) {
    MBR_CHECK(t < nt);
    qt_[qn++] = t;
  }
  // Similarity rows for the query topics (qn x nt doubles — negligible next
  // to the exploration itself).
  for (size_t qi = 0; qi < qn; ++qi) {
    double* row = srow_.data() + qi * static_cast<size_t>(nt);
    for (int x = 0; x < nt; ++x) {
      row[x] = sim_.Sim(static_cast<topics::TopicId>(x), qt_[qi]);
    }
  }

  switch (params_.variant) {
    case ScoreVariant::kFull:
      return ExploreImpl<FullWeight>(source, qn, pruned);
    case ScoreVariant::kNoAuth:
      return ExploreImpl<NoAuthWeight>(source, qn, pruned);
    case ScoreVariant::kNoSim:
      return ExploreImpl<NoSimWeight>(source, qn, pruned);
  }
  MBR_CHECK(false && "unknown ScoreVariant");
  __builtin_unreachable();
}

template <typename WeightPolicy>
const ExplorationResult& Scorer::ExploreImpl(
    graph::NodeId source, size_t qn, const std::vector<bool>* pruned) const {
  const ScorerMetrics& metrics = ScorerMetrics::Get();
  const int nt = g_->num_topics();
  const double beta = params_.beta;
  const double alphabeta = params_.alpha * params_.beta;
  // EdgeTopicWeight multiplies β·α in this order; keep it so the policy
  // kernels are bit-identical to the reference arithmetic.
  const double ab = params_.beta * params_.alpha;

  ExplorationResult& result = result_;
  result.Reset(g_->num_nodes(), nt);

  double* const delta_b = delta_b_.data();
  double* const delta_ab = delta_ab_.data();
  double* const next_b = next_b_.data();
  double* const next_ab = next_ab_.data();
  double* const delta_sigma = delta_sigma_.data();
  double* const next_sigma = next_sigma_.data();
  uint8_t* const in_next = in_next_.data();
  const topics::TopicId* const qt = qt_.data();
  double* const wrow = wrow_.data();
  const double* const srow = srow_.data();
  const size_t nts = static_cast<size_t>(nt);

  graph::NodeId* frontier = frontier_buf_.data();
  graph::NodeId* next_frontier = next_buf_.data();
  graph::NodeId* new_frontier = new_buf_.data();
  size_t frontier_n = 0;

  frontier[frontier_n++] = source;
  delta_b[source] = 1.0;
  delta_ab[source] = 1.0;
  // delta_sigma[source] stays 0: σ(u,u)=0 initially (walks of length 0
  // carry no topical mass).

  uint32_t depth = 0;
  while (depth < params_.max_depth && frontier_n > 0) {
    metrics.frontier_size->Record(frontier_n);
    size_t next_n = 0;
    double added_mass = 0.0;

    if (qn == 1) {
      // Single-topic fast path — the serving case. One sigma cell per
      // node, no per-topic loops.
      const topics::TopicId t0 = qt[0];
      for (size_t fi = 0; fi < frontier_n; ++fi) {
        const graph::NodeId u = frontier[fi];
        const double db = delta_b[u];
        const double dab = delta_ab[u];
        const double dsig0 = delta_sigma[u];

        auto nbrs = g_->OutNeighbors(u);
        auto labs = g_->OutEdgeLabels(u);
        for (size_t i = 0; i < nbrs.size(); ++i) {
          const graph::NodeId v = nbrs[i];
          if (!in_next[v]) {
            in_next[v] = 1;
            next_frontier[next_n++] = v;
          }
          next_b[v] += beta * db;
          next_ab[v] += alphabeta * dab;
          const double w = WeightPolicy::Weight(
              srow, authority_->AuthorityRow(v), ab, labs[i], t0);
          next_sigma[v] += beta * dsig0 + dab * w;
        }
      }
    } else {
      for (size_t fi = 0; fi < frontier_n; ++fi) {
        const graph::NodeId u = frontier[fi];
        const double db = delta_b[u];
        const double dab = delta_ab[u];
        const double* dsig = delta_sigma + static_cast<size_t>(u) * qn;

        auto nbrs = g_->OutNeighbors(u);
        auto labs = g_->OutEdgeLabels(u);
        for (size_t i = 0; i < nbrs.size(); ++i) {
          const graph::NodeId v = nbrs[i];
          if (!in_next[v]) {
            in_next[v] = 1;
            next_frontier[next_n++] = v;
          }
          next_b[v] += beta * db;
          next_ab[v] += alphabeta * dab;
          // Batched sigma kernel: materialise the per-edge weight row,
          // then accumulate the packed per-topic rows — two flat loops the
          // compiler can vectorise, in place of a per-(edge, topic)
          // switch.
          const topics::TopicSet elab = labs[i];
          const double* const arow = authority_->AuthorityRow(v);
          for (size_t qi = 0; qi < qn; ++qi) {
            wrow[qi] =
                WeightPolicy::Weight(srow + qi * nts, arow, ab, elab, qt[qi]);
          }
          double* nsig = next_sigma + static_cast<size_t>(v) * qn;
          for (size_t qi = 0; qi < qn; ++qi) {
            nsig[qi] += beta * dsig[qi] + dab * wrow[qi];
          }
        }
      }
    }

    // Clear the consumed deltas.
    for (size_t fi = 0; fi < frontier_n; ++fi) {
      const graph::NodeId u = frontier[fi];
      delta_b[u] = 0.0;
      delta_ab[u] = 0.0;
      double* dsig = delta_sigma + static_cast<size_t>(u) * qn;
      for (size_t qi = 0; qi < qn; ++qi) dsig[qi] = 0.0;
    }

    // Commit the new walk length: accumulate totals, move next -> delta,
    // prune below-epsilon frontier entries and landmark-pruned nodes.
    size_t new_n = 0;
    for (size_t ni = 0; ni < next_n; ++ni) {
      const graph::NodeId v = next_frontier[ni];
      in_next[v] = 0;
      uint32_t slot = result.SlotFor(v);
      result.topo_beta_[slot] += next_b[v];
      result.topo_alphabeta_[slot] += next_ab[v];
      double* rsig = &result.sigma_[static_cast<size_t>(slot) * nt];
      double* nsig = next_sigma + static_cast<size_t>(v) * qn;
      double node_mass = 0.0;
      for (size_t qi = 0; qi < qn; ++qi) {
        rsig[qt[qi]] += nsig[qi];
        node_mass += nsig[qi];
      }
      added_mass += node_mass;

      bool expand = true;
      if (pruned != nullptr && (*pruned)[v]) expand = false;
      if (params_.frontier_epsilon > 0.0 &&
          next_b[v] < params_.frontier_epsilon &&
          next_ab[v] < params_.frontier_epsilon &&
          node_mass < params_.frontier_epsilon) {
        expand = false;
      }
      if (expand) {
        delta_b[v] = next_b[v];
        delta_ab[v] = next_ab[v];
        double* dsig = delta_sigma + static_cast<size_t>(v) * qn;
        for (size_t qi = 0; qi < qn; ++qi) dsig[qi] = nsig[qi];
        new_frontier[new_n++] = v;
      }
      next_b[v] = 0.0;
      next_ab[v] = 0.0;
      for (size_t qi = 0; qi < qn; ++qi) nsig[qi] = 0.0;
    }

    std::swap(frontier, new_frontier);
    frontier_n = new_n;
    ++depth;
    result.iterations_run_ = depth;

    // Algorithm 1 line 15: stop when the newly added average score mass is
    // negligible.
    if (qn > 0) {
      double denom = static_cast<double>(result.reached_.size()) *
                     static_cast<double>(qn);
      if (denom > 0.0 && added_mass / denom < params_.tolerance &&
          depth >= 2) {
        result.converged_ = true;
        break;
      }
    }
  }
  if (frontier_n == 0) {
    result.converged_ = true;
  } else {
    // Restore the invariant: zero the deltas the aborted frontier left.
    for (size_t fi = 0; fi < frontier_n; ++fi) {
      const graph::NodeId u = frontier[fi];
      delta_b[u] = 0.0;
      delta_ab[u] = 0.0;
      double* dsig = delta_sigma + static_cast<size_t>(u) * qn;
      for (size_t qi = 0; qi < qn; ++qi) dsig[qi] = 0.0;
    }
  }
  metrics.iterations->Record(result.iterations_run_);
  if (result.converged_) {
    metrics.converged->Increment();
  } else {
    metrics.depth_capped->Increment();
  }
  return result;
}

}  // namespace mbr::core
