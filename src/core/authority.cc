#include "core/authority.h"

#include <algorithm>
#include <cmath>

namespace mbr::core {

AuthorityIndex::AuthorityIndex(const graph::LabeledGraph& g) {
  num_topics_ = g.num_topics();
  const graph::NodeId n = g.num_nodes();
  const int nt = num_topics_;
  total_followers_.resize(n);
  followers_on_topic_.assign(static_cast<size_t>(n) * nt, 0);
  max_followers_on_topic_.assign(nt, 0);

  for (graph::NodeId u = 0; u < n; ++u) {
    total_followers_[u] = g.InDegree(u);
    uint32_t* row = &followers_on_topic_[static_cast<size_t>(u) * nt];
    for (topics::TopicSet labels : g.InEdgeLabels(u)) {
      for (topics::TopicId t : labels) ++row[t];
    }
    for (int t = 0; t < nt; ++t) {
      max_followers_on_topic_[t] =
          std::max(max_followers_on_topic_[t], row[t]);
    }
  }

  authority_.assign(static_cast<size_t>(n) * nt, 0.0);
  std::vector<double> log_max(nt);
  for (int t = 0; t < nt; ++t) {
    log_max[t] = std::log(1.0 + max_followers_on_topic_[t]);
  }
  for (graph::NodeId u = 0; u < n; ++u) {
    const uint32_t* row = &followers_on_topic_[static_cast<size_t>(u) * nt];
    // Example 1 semantics: the denominator is the count of topic labelings
    // over all in-edges of u.
    uint64_t label_mass = 0;
    for (int t = 0; t < nt; ++t) label_mass += row[t];
    if (label_mass == 0) continue;  // auth(u, .) = 0
    double* out = &authority_[static_cast<size_t>(u) * nt];
    for (int t = 0; t < nt; ++t) {
      if (row[t] == 0 || log_max[t] == 0.0) continue;
      double local = static_cast<double>(row[t]) / static_cast<double>(label_mass);
      double global = std::log(1.0 + row[t]) / log_max[t];
      out[t] = local * global;
    }
  }
}

}  // namespace mbr::core
