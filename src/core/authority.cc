#include "core/authority.h"

#include <algorithm>
#include <cmath>

namespace mbr::core {

namespace {

// auth(u, t) for one (count, mass, log-max) cell. Every construction path
// funnels through this expression, so two indexes built from the same
// counters agree bit-for-bit (IEEE division/multiplication/log are
// deterministic; the build is compiled without -ffast-math).
inline double AuthorityCell(uint32_t count, uint64_t label_mass,
                            double log_max_t) {
  if (count == 0 || label_mass == 0 || log_max_t == 0.0) return 0.0;
  double local =
      static_cast<double>(count) / static_cast<double>(label_mass);
  double global = std::log(1.0 + count) / log_max_t;
  return local * global;
}

}  // namespace

void AuthorityIndex::FillAuthorityRow(const uint32_t* row, int nt,
                                      const double* log_max,
                                      uint64_t label_mass, double* out) {
  for (int t = 0; t < nt; ++t) {
    out[t] = AuthorityCell(row[t], label_mass, log_max[t]);
  }
}

AuthorityIndex::AuthorityIndex(const graph::LabeledGraph& g) {
  num_topics_ = g.num_topics();
  const graph::NodeId n = g.num_nodes();
  const int nt = num_topics_;
  total_followers_.resize(n);
  followers_on_topic_.assign(static_cast<size_t>(n) * nt, 0);
  max_followers_on_topic_.assign(nt, 0);
  label_mass_.assign(n, 0);

  for (graph::NodeId u = 0; u < n; ++u) {
    total_followers_[u] = g.InDegree(u);
    uint32_t* row = &followers_on_topic_[static_cast<size_t>(u) * nt];
    for (topics::TopicSet labels : g.InEdgeLabels(u)) {
      for (topics::TopicId t : labels) ++row[t];
    }
    for (int t = 0; t < nt; ++t) {
      max_followers_on_topic_[t] =
          std::max(max_followers_on_topic_[t], row[t]);
    }
  }

  authority_.assign(static_cast<size_t>(n) * nt, 0.0);
  std::vector<double> log_max(nt);
  for (int t = 0; t < nt; ++t) {
    log_max[t] = std::log(1.0 + max_followers_on_topic_[t]);
  }
  for (graph::NodeId u = 0; u < n; ++u) {
    const uint32_t* row = &followers_on_topic_[static_cast<size_t>(u) * nt];
    // Example 1 semantics: the denominator is the count of topic labelings
    // over all in-edges of u.
    uint64_t label_mass = 0;
    for (int t = 0; t < nt; ++t) label_mass += row[t];
    label_mass_[u] = label_mass;
    FillAuthorityRow(row, nt, log_max.data(),
                     label_mass, &authority_[static_cast<size_t>(u) * nt]);
  }
}

AuthorityIndex::AuthorityIndex(const AuthorityIndex& prev,
                               const AuthorityCounters& counters,
                               std::span<const graph::NodeId> touched) {
  num_topics_ = prev.num_topics_;
  const int nt = num_topics_;
  const size_t n = prev.total_followers_.size();
  MBR_CHECK(counters.num_topics == nt);
  MBR_CHECK(counters.followers_on_topic.size() == n * nt);
  MBR_CHECK(counters.in_degree.size() == n);
  MBR_CHECK(counters.max_followers.size() == static_cast<size_t>(nt));

  total_followers_ = prev.total_followers_;
  followers_on_topic_ = prev.followers_on_topic_;
  label_mass_ = prev.label_mass_;
  authority_ = prev.authority_;
  max_followers_on_topic_.assign(counters.max_followers.begin(),
                                 counters.max_followers.end());

  std::vector<double> log_max(nt);
  for (int t = 0; t < nt; ++t) {
    log_max[t] = std::log(1.0 + max_followers_on_topic_[t]);
  }

  // Touched rows: adopt the counters and re-derive the whole row.
  for (graph::NodeId u : touched) {
    MBR_CHECK(u < n);
    const size_t off = static_cast<size_t>(u) * nt;
    const uint32_t* row = &counters.followers_on_topic[off];
    std::copy(row, row + nt, &followers_on_topic_[off]);
    total_followers_[u] = counters.in_degree[u];
    uint64_t label_mass = 0;
    for (int t = 0; t < nt; ++t) label_mass += row[t];
    label_mass_[u] = label_mass;
    FillAuthorityRow(row, nt, log_max.data(), label_mass, &authority_[off]);
  }

  // Topics whose max moved change the `global` factor of *every* node:
  // re-derive those columns (touched rows get the same value again).
  for (int t = 0; t < nt; ++t) {
    if (prev.max_followers_on_topic_[t] == max_followers_on_topic_[t]) {
      continue;
    }
    for (size_t u = 0; u < n; ++u) {
      authority_[u * nt + t] = AuthorityCell(followers_on_topic_[u * nt + t],
                                             label_mass_[u], log_max[t]);
    }
  }
}

}  // namespace mbr::core
