#ifndef MBR_CORE_SCORER_H_
#define MBR_CORE_SCORER_H_

// The iterative score computation of §3.3 / Algorithm 1.
//
// Starting from a source node s, one frontier propagation step extends every
// walk by one hop. For walks p: s ❀ v of length k (1-indexed edge positions
// j with edge similarity s_j and end-node authority auth_j):
//
//   total path score   ω_p(t)  = β^k Σ_j α^j s_j(t) auth_j(t)
//   topological scores topo_β  = Σ_p β^|p|,  topo_αβ = Σ_p (αβ)^|p|
//   recommendation     σ(s,v,t) = Σ_p ω_p(t)                 (Equation 1)
//
// maintained incrementally via Proposition 1:
//
//   σ^(k+1)[v][t] += β σ^(k)[u][t] + topo_αβ^(k)[u] · (βα · s(u→v,t) · auth(v,t))
//   topo_β^(k+1)[v]  += β  topo_β^(k)[u]
//   topo_αβ^(k+1)[v] += αβ topo_αβ^(k)[u]
//
// The engine serves all three uses in the paper: exact recommendation
// (converged exploration), landmark pre-processing (Algorithm 1 proper),
// and the query-side shallow BFS of Algorithm 2 (with optional pruning at
// landmark nodes so paths through a landmark are not double-counted, §5.4).

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/authority.h"
#include "core/params.h"
#include "graph/labeled_graph.h"
#include "topics/similarity_matrix.h"
#include "topics/topic.h"

namespace mbr::core {

// Scores of every node reached from the source. Node u's scores live at
// index `slot[u]`; nodes not reached have slot kNoSlot.
class ExplorationResult {
 public:
  static constexpr uint32_t kNoSlot = 0xffffffff;

  ExplorationResult(graph::NodeId num_nodes, int num_topics)
      : num_topics_(num_topics), slot_(num_nodes, kNoSlot) {}

  bool Reached(graph::NodeId v) const { return slot_[v] != kNoSlot; }

  // σ(source, v, t); 0 if unreached.
  double Sigma(graph::NodeId v, topics::TopicId t) const {
    uint32_t s = slot_[v];
    if (s == kNoSlot) return 0.0;
    return sigma_[static_cast<size_t>(s) * num_topics_ + t];
  }
  // topo_β(source, v); 0 if unreached.
  double TopoBeta(graph::NodeId v) const {
    uint32_t s = slot_[v];
    return s == kNoSlot ? 0.0 : topo_beta_[s];
  }
  // topo_αβ(source, v); 0 if unreached.
  double TopoAlphaBeta(graph::NodeId v) const {
    uint32_t s = slot_[v];
    return s == kNoSlot ? 0.0 : topo_alphabeta_[s];
  }

  // All reached nodes, in first-reached order (source excluded: a node's
  // score counts walks of length >= 1, so the source appears only if it
  // lies on a cycle).
  const std::vector<graph::NodeId>& reached() const { return reached_; }

  int num_topics() const { return num_topics_; }
  uint32_t iterations_run() const { return iterations_run_; }
  bool converged() const { return converged_; }

 private:
  friend class Scorer;

  uint32_t SlotFor(graph::NodeId v) {
    if (slot_[v] == kNoSlot) {
      slot_[v] = static_cast<uint32_t>(reached_.size());
      reached_.push_back(v);
      sigma_.resize(sigma_.size() + num_topics_, 0.0);
      topo_beta_.push_back(0.0);
      topo_alphabeta_.push_back(0.0);
    }
    return slot_[v];
  }

  int num_topics_;
  std::vector<uint32_t> slot_;
  std::vector<graph::NodeId> reached_;
  std::vector<double> sigma_;  // reached x num_topics
  std::vector<double> topo_beta_;
  std::vector<double> topo_alphabeta_;
  uint32_t iterations_run_ = 0;
  bool converged_ = false;
};

// Thread-affinity contract: a Scorer is SINGLE-CALLER. Explore() reuses
// internal scratch buffers so repeated queries cost O(|vicinity|), not
// O(|graph|) — which means two overlapping Explore() calls on the same
// instance would corrupt each other's state. Create one Scorer per worker
// thread (landmark::LandmarkIndex and service::QueryEngine both do this);
// overlapping calls on one instance are a programmer error and abort via a
// reentrancy check. The referenced graph / authority / similarity objects
// are only read, so any number of scorers may share them.
class Scorer {
 public:
  // All references must outlive the scorer. The similarity matrix must
  // cover the graph's topic vocabulary.
  Scorer(const graph::LabeledGraph& g, const AuthorityIndex& authority,
         const topics::SimilarityMatrix& sim, const ScoreParams& params);

  // Runs Algorithm 1 from `source` for all topics in `query_topics`,
  // exploring at most params.max_depth hops or until the added score mass
  // falls below params.tolerance. If `pruned` is non-null, nodes for which
  // (*pruned)[v] is true have their scores computed but are not expanded
  // (Algorithm 2's landmark pruning).
  ExplorationResult Explore(graph::NodeId source,
                            topics::TopicSet query_topics,
                            const std::vector<bool>* pruned = nullptr) const;

  const ScoreParams& params() const { return params_; }

  // The per-edge topical weight ω_{u→v}(t) = βα · s(u→v,t) · auth(v,t),
  // honouring the configured ablation variant. `labels` are the edge's
  // labels. Exposed for tests.
  double EdgeTopicWeight(topics::TopicSet labels, graph::NodeId v,
                         topics::TopicId t) const;

 private:
  // Reusable per-query buffers; every touched entry is restored to zero
  // before Explore returns, so a fresh call never sees stale state.
  struct Scratch {
    std::vector<double> delta_sigma;  // >= n * |query topics|, stride packed
    std::vector<double> next_sigma;
    std::vector<double> delta_b, delta_ab, next_b, next_ab;  // n each
    std::vector<bool> in_next;                               // n
  };

  const graph::LabeledGraph& g_;
  const AuthorityIndex& authority_;
  const topics::SimilarityMatrix& sim_;
  ScoreParams params_;
  mutable Scratch scratch_;
  // Reentrancy guard enforcing the single-caller contract above.
  mutable std::atomic<bool> exploring_{false};
};

}  // namespace mbr::core

#endif  // MBR_CORE_SCORER_H_
