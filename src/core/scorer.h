#ifndef MBR_CORE_SCORER_H_
#define MBR_CORE_SCORER_H_

// The iterative score computation of §3.3 / Algorithm 1.
//
// Starting from a source node s, one frontier propagation step extends every
// walk by one hop. For walks p: s ❀ v of length k (1-indexed edge positions
// j with edge similarity s_j and end-node authority auth_j):
//
//   total path score   ω_p(t)  = β^k Σ_j α^j s_j(t) auth_j(t)
//   topological scores topo_β  = Σ_p β^|p|,  topo_αβ = Σ_p (αβ)^|p|
//   recommendation     σ(s,v,t) = Σ_p ω_p(t)                 (Equation 1)
//
// maintained incrementally via Proposition 1:
//
//   σ^(k+1)[v][t] += β σ^(k)[u][t] + topo_αβ^(k)[u] · (βα · s(u→v,t) · auth(v,t))
//   topo_β^(k+1)[v]  += β  topo_β^(k)[u]
//   topo_αβ^(k+1)[v] += αβ topo_αβ^(k)[u]
//
// The engine serves all three uses in the paper: exact recommendation
// (converged exploration), landmark pre-processing (Algorithm 1 proper),
// and the query-side shallow BFS of Algorithm 2 (with optional pruning at
// landmark nodes so paths through a landmark are not double-counted, §5.4).
//
// Hot-path layout (DESIGN.md §6.6): the per-query working set — frontier
// triple-buffer, per-node delta rows, packed per-topic sigma rows — lives
// in typed spans carved from a util::QueryArena, and the scorer variant
// (Tr / Tr−auth / Tr−sim) is a compile-time weight policy, so the inner
// edge loop carries no switch and the per-topic accumulation is a flat
// autovectorizable kernel. In steady state Explore() performs zero heap
// allocations and returns a reference to a reused ExplorationResult.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/authority.h"
#include "core/params.h"
#include "graph/labeled_graph.h"
#include "topics/similarity_matrix.h"
#include "topics/topic.h"
#include "util/arena.h"

namespace mbr::core {

// Scores of every node reached from the source. Node u's scores live at
// index `slot[u]`; nodes not reached have slot kNoSlot.
class ExplorationResult {
 public:
  static constexpr uint32_t kNoSlot = 0xffffffff;

  ExplorationResult() = default;
  ExplorationResult(graph::NodeId num_nodes, int num_topics)
      : num_topics_(num_topics), slot_(num_nodes, kNoSlot) {}

  bool Reached(graph::NodeId v) const { return slot_[v] != kNoSlot; }

  // σ(source, v, t); 0 if unreached.
  double Sigma(graph::NodeId v, topics::TopicId t) const {
    uint32_t s = slot_[v];
    if (s == kNoSlot) return 0.0;
    return sigma_[static_cast<size_t>(s) * num_topics_ + t];
  }
  // topo_β(source, v); 0 if unreached.
  double TopoBeta(graph::NodeId v) const {
    uint32_t s = slot_[v];
    return s == kNoSlot ? 0.0 : topo_beta_[s];
  }
  // topo_αβ(source, v); 0 if unreached.
  double TopoAlphaBeta(graph::NodeId v) const {
    uint32_t s = slot_[v];
    return s == kNoSlot ? 0.0 : topo_alphabeta_[s];
  }

  // All reached nodes, in first-reached order (source excluded: a node's
  // score counts walks of length >= 1, so the source appears only if it
  // lies on a cycle).
  const std::vector<graph::NodeId>& reached() const { return reached_; }

  int num_topics() const { return num_topics_; }
  uint32_t iterations_run() const { return iterations_run_; }
  bool converged() const { return converged_; }

 private:
  friend class Scorer;

  // Restores the empty state in O(|previously reached|), keeping every
  // buffer's capacity: after warmup a reused result never allocates.
  void Reset(graph::NodeId num_nodes, int num_topics) {
    if (slot_.size() != num_nodes) {
      slot_.assign(num_nodes, kNoSlot);
    } else {
      for (graph::NodeId v : reached_) slot_[v] = kNoSlot;
    }
    reached_.clear();
    sigma_.clear();
    topo_beta_.clear();
    topo_alphabeta_.clear();
    num_topics_ = num_topics;
    iterations_run_ = 0;
    converged_ = false;
  }

  uint32_t SlotFor(graph::NodeId v) {
    if (slot_[v] == kNoSlot) {
      slot_[v] = static_cast<uint32_t>(reached_.size());
      reached_.push_back(v);
      sigma_.resize(sigma_.size() + num_topics_, 0.0);
      topo_beta_.push_back(0.0);
      topo_alphabeta_.push_back(0.0);
    }
    return slot_[v];
  }

  int num_topics_ = 0;
  std::vector<uint32_t> slot_;
  std::vector<graph::NodeId> reached_;
  std::vector<double> sigma_;  // reached x num_topics
  std::vector<double> topo_beta_;
  std::vector<double> topo_alphabeta_;
  uint32_t iterations_run_ = 0;
  bool converged_ = false;
};

// Thread-affinity contract: a Scorer is SINGLE-CALLER. Explore() reuses
// internal scratch buffers AND returns a reference to a reused result —
// repeated queries cost O(|vicinity|), not O(|graph|) — which means two
// overlapping Explore() calls on the same instance would corrupt each
// other's state, and a returned reference is invalidated by the next
// Explore() (copy-construct an ExplorationResult to keep one). Create one
// Scorer per worker thread (landmark::LandmarkIndex and
// service::QueryEngine both do this); overlapping calls on one instance
// are a programmer error and abort via a reentrancy check. The referenced
// graph / authority / similarity objects are only read, so any number of
// scorers may share them.
class Scorer {
 public:
  // All references must outlive the scorer. The similarity matrix must
  // cover the graph's topic vocabulary. `arena` (optional) supplies the
  // scratch storage: pass a per-worker arena to keep the warm working set
  // alive across scorer rebuilds (service::QueryEngine::BuildWorkers); the
  // arena must outlive the scorer and must not be shared with another live
  // scorer. When null, the scorer owns a private arena.
  Scorer(const graph::LabeledGraph& g, const AuthorityIndex& authority,
         const topics::SimilarityMatrix& sim, const ScoreParams& params,
         util::QueryArena* arena = nullptr);

  // Runs Algorithm 1 from `source` for all topics in `query_topics`,
  // exploring at most params.max_depth hops or until the added score mass
  // falls below params.tolerance. If `pruned` is non-null, nodes for which
  // (*pruned)[v] is true have their scores computed but are not expanded
  // (Algorithm 2's landmark pruning). The returned reference is owned by
  // the scorer and valid until the next Explore() call.
  const ExplorationResult& Explore(
      graph::NodeId source, topics::TopicSet query_topics,
      const std::vector<bool>* pruned = nullptr) const;

  // Re-points the scorer at a new graph generation without discarding the
  // warmed arena scratch (the O(Δ) rebind path, DESIGN.md §6.9). The new
  // graph must keep the old node-id and topic universe — the scratch spans
  // are carved per num_nodes — and the authority index must match it. Must
  // not race an in-flight Explore() (the engine calls this under its
  // exclusive rebind lock).
  void Rebind(const graph::LabeledGraph& g, const AuthorityIndex& authority);

  const ScoreParams& params() const { return params_; }

  // The per-edge topical weight ω_{u→v}(t) = βα · s(u→v,t) · auth(v,t),
  // honouring the configured ablation variant. `labels` are the edge's
  // labels. Exposed for tests; the hot loop uses the compile-time policy
  // equivalents instead (see scorer.cc).
  double EdgeTopicWeight(topics::TopicSet labels, graph::NodeId v,
                         topics::TopicId t) const;

 private:
  // One weight-policy instantiation per ScoreVariant; Explore() dispatches
  // once per query so the inner loop is branch-free on the variant.
  template <typename WeightPolicy>
  const ExplorationResult& ExploreImpl(graph::NodeId source, size_t qn,
                                       const std::vector<bool>* pruned) const;

  // (Re)carves the arena-backed scratch spans when the needed capacity
  // grows (first query, or a wider topic set than ever seen). All spans
  // are zero-filled afterwards; between queries every touched entry is
  // restored to zero, so a fresh call never sees stale state.
  void EnsureScratch(size_t qn) const;

  // Pointers (not references) so Rebind() can swap generations in place;
  // never null, and only read.
  const graph::LabeledGraph* g_;
  const AuthorityIndex* authority_;
  const topics::SimilarityMatrix& sim_;
  ScoreParams params_;

  std::unique_ptr<util::QueryArena> owned_arena_;
  util::QueryArena* arena_;  // owned_arena_.get() or the caller's

  // Arena-backed scratch. delta/next rows are n wide; sigma rows are
  // packed n x scratch_qn_ (stride = the query's topic count).
  mutable std::span<double> delta_b_, delta_ab_, next_b_, next_ab_;
  mutable std::span<double> delta_sigma_, next_sigma_;
  mutable std::span<uint8_t> in_next_;
  // Frontier triple-buffer: current, next (deduped), and surviving-after-
  // pruning; each holds at most n node ids.
  mutable std::span<graph::NodeId> frontier_buf_, next_buf_, new_buf_;
  // Dense query-topic list and the per-edge weight row of the batched
  // sigma kernel (both kMaxTopics wide).
  mutable std::span<topics::TopicId> qt_;
  mutable std::span<double> wrow_;
  // Per-query similarity rows: srow_[qi * num_topics + x] = Sim(x, qt[qi]).
  // Turns MaxSim's per-label triangular-index math into a flat load inside
  // the edge loop (kMaxTopics^2 doubles, filled per Explore).
  mutable std::span<double> srow_;
  mutable size_t scratch_nodes_ = 0;  // 0 = scratch not yet carved
  mutable size_t scratch_qn_ = 0;

  // Reused across queries; handed out by const reference.
  mutable ExplorationResult result_;
  // Reentrancy guard enforcing the single-caller contract above.
  mutable std::atomic<bool> exploring_{false};
};

}  // namespace mbr::core

#endif  // MBR_CORE_SCORER_H_
