#include "core/recommender_iface.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace mbr::core {

std::vector<util::Result<Ranking>> Recommender::RecommendBatch(
    std::span<const Query> queries) const {
  std::vector<util::Result<Ranking>> out;
  out.reserve(queries.size());
  for (const Query& q : queries) {
    out.push_back(Recommend(q));
  }
  return out;
}

std::vector<util::ScoredId> Recommender::TopN(graph::NodeId u,
                                              topics::TopicId t,
                                              size_t n) const {
  util::Result<Ranking> r = Recommend(Query::TopN(u, t, static_cast<uint32_t>(n)));
  MBR_CHECK(r.ok());
  return std::move(r.value().entries);
}

std::vector<double> Recommender::CandidateScores(
    graph::NodeId u, topics::TopicId t,
    const std::vector<graph::NodeId>& candidates) const {
  util::Result<Ranking> r = Recommend(Query::Scores(u, t, candidates));
  MBR_CHECK(r.ok());
  const Ranking& ranking = r.value();
  MBR_CHECK(ranking.entries.size() == candidates.size());
  std::vector<double> scores;
  scores.reserve(ranking.entries.size());
  for (const util::ScoredId& e : ranking.entries) scores.push_back(e.score);
  return scores;
}

util::Status Recommender::CheckDeadline(const Query& q) {
  if (!q.expired()) return util::Status::Ok();
  static obs::Counter* expired = obs::Registry::Default().GetCounter(
      "mbr_recommender_deadline_exceeded_total",
      "Queries rejected because their deadline expired before or during "
      "scoring.");
  expired->Increment();
  return util::Status::DeadlineExceeded("query deadline expired");
}

}  // namespace mbr::core
