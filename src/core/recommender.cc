#include "core/recommender.h"

#include <algorithm>

namespace mbr::core {

TrRecommender::TrRecommender(const graph::LabeledGraph& g,
                             const topics::SimilarityMatrix& sim,
                             const ScoreParams& params)
    : g_(g), params_(params), authority_(g), scorer_(g, authority_, sim, params) {}

std::string TrRecommender::name() const {
  switch (params_.variant) {
    case ScoreVariant::kFull:
      return "Tr";
    case ScoreVariant::kNoAuth:
      return "Tr-auth";
    case ScoreVariant::kNoSim:
      return "Tr-sim";
  }
  return "Tr?";
}

std::vector<util::ScoredId> TrRecommender::Recommend(
    graph::NodeId u, topics::TopicId t, size_t n,
    bool exclude_followees) const {
  return RecommendQuery(u, {{t, 1.0}}, n, exclude_followees);
}

std::vector<util::ScoredId> TrRecommender::RecommendQuery(
    graph::NodeId u, const std::vector<WeightedTopic>& query, size_t n,
    bool exclude_followees) const {
  MBR_CHECK(!query.empty());
  topics::TopicSet topics_needed;
  for (const WeightedTopic& wt : query) topics_needed.Add(wt.topic);
  const ExplorationResult& res = scorer_.Explore(u, topics_needed);

  util::TopK topk(n);
  for (graph::NodeId v : res.reached()) {
    if (v == u) continue;
    if (exclude_followees && g_.HasEdge(u, v)) continue;
    double score = 0.0;
    for (const WeightedTopic& wt : query) {
      score += wt.weight * res.Sigma(v, wt.topic);
    }
    if (score > 0.0) topk.Offer(v, score);
  }
  return topk.Take();
}

util::Result<Ranking> TrRecommender::Recommend(const Query& q) const {
  MBR_RETURN_IF_ERROR(CheckDeadline(q));
  const ExplorationResult& res =
      scorer_.Explore(q.user, topics::TopicSet::Single(q.topic));
  MBR_RETURN_IF_ERROR(CheckDeadline(q));
  Ranking r;
  if (q.scoring_mode()) {
    r.entries.reserve(q.candidates.size());
    for (graph::NodeId v : q.candidates) {
      r.entries.push_back({v, res.Sigma(v, q.topic)});
    }
    return r;
  }
  RankingBuilder builder(q);
  for (graph::NodeId v : res.reached()) {
    builder.Offer(v, res.Sigma(v, q.topic));
  }
  return builder.Take();
}

}  // namespace mbr::core
