#ifndef MBR_CORE_RECOMMENDER_H_
#define MBR_CORE_RECOMMENDER_H_

// Exact Tr recommendation (§3): converged iterative scoring from the query
// user. This is the reference computation the landmark approximation of §4
// is benchmarked against.

#include <vector>

#include "core/authority.h"
#include "core/params.h"
#include "core/recommender_iface.h"
#include "core/scorer.h"
#include "graph/labeled_graph.h"
#include "topics/similarity_matrix.h"
#include "util/top_k.h"

namespace mbr::core {

// One topic of a multi-topic query Q = {t1..tn} with its weight (§3.2: the
// final score is a weighted linear combination over the query topics).
struct WeightedTopic {
  topics::TopicId topic = 0;
  double weight = 1.0;
};

class TrRecommender : public Recommender {
 public:
  // Builds the authority index for `g`. Both references must outlive the
  // recommender.
  TrRecommender(const graph::LabeledGraph& g,
                const topics::SimilarityMatrix& sim,
                const ScoreParams& params = {});

  // Top-n users for `u` on a single topic, ranked by σ(u, v, t). The query
  // user and (optionally) the accounts he already follows are excluded.
  std::vector<util::ScoredId> Recommend(graph::NodeId u, topics::TopicId t,
                                        size_t n,
                                        bool exclude_followees = false) const;

  // Weighted multi-topic query: Σ_i weight_i · σ(u, v, t_i).
  std::vector<util::ScoredId> RecommendQuery(
      graph::NodeId u, const std::vector<WeightedTopic>& query, size_t n,
      bool exclude_followees = false) const;

  // ---- core::Recommender interface.
  // "Tr", "Tr-auth" or "Tr-sim" depending on the configured variant.
  std::string name() const override;
  // One exploration from q.user, then σ lookups: a ranked top-n (with
  // exclusions), or candidate-order scores in scoring mode (candidates
  // never reached score 0).
  util::Result<Ranking> Recommend(const Query& q) const override;

  // Full exploration from u (all topics of `query_topics`), exposed for
  // the landmark pre-processing and tests.
  ExplorationResult Explore(graph::NodeId u,
                            topics::TopicSet query_topics) const {
    return scorer_.Explore(u, query_topics);
  }

  const AuthorityIndex& authority() const { return authority_; }
  const Scorer& scorer() const { return scorer_; }
  const ScoreParams& params() const { return params_; }

 private:
  const graph::LabeledGraph& g_;
  ScoreParams params_;
  AuthorityIndex authority_;
  Scorer scorer_;
};

}  // namespace mbr::core

#endif  // MBR_CORE_RECOMMENDER_H_
