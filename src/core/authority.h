#ifndef MBR_CORE_AUTHORITY_H_
#define MBR_CORE_AUTHORITY_H_

// Per-node topical authority auth(u, t) of §3.2:
//
//   auth(u, t) = |Γu(t)| / |Γu|                      (local specialisation)
//              x log(1 + |Γu(t)|) / log(1 + max_v |Γv(t)|)   (global pop.)
//
// where Γu(t) is the set of followers of u whose follow edge is labeled
// with t. Following the paper's worked Example 1 (local authority 2/3 for an
// account followed on 3 topic labelings, 2 of them technology; 2/6 for one
// followed on 6 labelings), the |Γu| denominator counts *topic labelings*
// over in-edges, i.e. Σ_t' |Γu(t')| — an account followed on many topics is
// less specialised. Both factors are precomputed from the in-adjacency in
// one pass; the paper notes the max_v term can be cached and refreshed
// periodically — here the index is simply rebuilt per graph version.

#include <vector>

#include "graph/labeled_graph.h"
#include "topics/topic.h"

namespace mbr::core {

class AuthorityIndex {
 public:
  explicit AuthorityIndex(const graph::LabeledGraph& g);

  // |Γu(t)|: followers of u on topic t.
  uint32_t FollowersOnTopic(graph::NodeId u, topics::TopicId t) const {
    MBR_DCHECK(t < num_topics_);
    return followers_on_topic_[static_cast<size_t>(u) * num_topics_ + t];
  }

  // max_v |Γv(t)|.
  uint32_t MaxFollowersOnTopic(topics::TopicId t) const {
    MBR_DCHECK(t < num_topics_);
    return max_followers_on_topic_[t];
  }

  // auth(u, t) in [0, 1].
  double Authority(graph::NodeId u, topics::TopicId t) const {
    MBR_DCHECK(u < total_followers_.size());
    return authority_[static_cast<size_t>(u) * num_topics_ + t];
  }

  // Row pointer auth(u, ·): row[t] == Authority(u, t). Lets the scoring
  // inner loop hoist the row computation out of its per-topic loop.
  const double* AuthorityRow(graph::NodeId u) const {
    MBR_DCHECK(u < total_followers_.size());
    return &authority_[static_cast<size_t>(u) * num_topics_];
  }

  int num_topics() const { return num_topics_; }

 private:
  int num_topics_ = 0;
  std::vector<uint32_t> total_followers_;       // |Γu|
  std::vector<uint32_t> followers_on_topic_;    // n x T
  std::vector<uint32_t> max_followers_on_topic_;
  std::vector<double> authority_;               // n x T, precomputed
};

}  // namespace mbr::core

#endif  // MBR_CORE_AUTHORITY_H_
