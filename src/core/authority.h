#ifndef MBR_CORE_AUTHORITY_H_
#define MBR_CORE_AUTHORITY_H_

// Per-node topical authority auth(u, t) of §3.2:
//
//   auth(u, t) = |Γu(t)| / |Γu|                      (local specialisation)
//              x log(1 + |Γu(t)|) / log(1 + max_v |Γv(t)|)   (global pop.)
//
// where Γu(t) is the set of followers of u whose follow edge is labeled
// with t. Following the paper's worked Example 1 (local authority 2/3 for an
// account followed on 3 topic labelings, 2 of them technology; 2/6 for one
// followed on 6 labelings), the |Γu| denominator counts *topic labelings*
// over in-edges, i.e. Σ_t' |Γu(t')| — an account followed on many topics is
// less specialised. Both factors are precomputed from the in-adjacency in
// one pass; the paper notes the max_v term can be cached and refreshed
// periodically — here the index is simply rebuilt per graph version.

#include <span>
#include <vector>

#include "graph/labeled_graph.h"
#include "topics/topic.h"

namespace mbr::core {

// Borrowed view of externally maintained follower counters — the
// construction seam that lets an AuthorityIndex be snapshotted from
// dynamic::IncrementalAuthority in O(touched × topics) instead of a full
// graph scan (DESIGN.md §6.9). `max_followers` must be *exact* for the
// snapshot to be byte-identical to a from-scratch build; with the paper's
// deferred periodic refresh it is an upper bound and the resulting
// authority values are bounded above by the true ones.
struct AuthorityCounters {
  int num_topics = 0;
  std::span<const uint32_t> followers_on_topic;  // n x T, |Γu(t)|
  std::span<const uint32_t> in_degree;           // n, |followers of u|
  std::span<const uint32_t> max_followers;       // T, max_v |Γv(t)|
};

class AuthorityIndex {
 public:
  explicit AuthorityIndex(const graph::LabeledGraph& g);

  // Incremental snapshot: copies `prev` and re-derives only the rows of
  // `touched` nodes (from `counters`) plus the columns of topics whose
  // max_followers changed — both through the same arithmetic as the full
  // ctor, so identical counters yield bit-identical authority values.
  // Requirements: counters cover the same node/topic universe as prev,
  // and every node whose counters changed since `prev` was built appears
  // in `touched` (duplicates/unsorted are fine).
  AuthorityIndex(const AuthorityIndex& prev, const AuthorityCounters& counters,
                 std::span<const graph::NodeId> touched);

  // |Γu(t)|: followers of u on topic t.
  uint32_t FollowersOnTopic(graph::NodeId u, topics::TopicId t) const {
    MBR_DCHECK(t < num_topics_);
    return followers_on_topic_[static_cast<size_t>(u) * num_topics_ + t];
  }

  // max_v |Γv(t)|.
  uint32_t MaxFollowersOnTopic(topics::TopicId t) const {
    MBR_DCHECK(t < num_topics_);
    return max_followers_on_topic_[t];
  }

  // auth(u, t) in [0, 1].
  double Authority(graph::NodeId u, topics::TopicId t) const {
    MBR_DCHECK(u < total_followers_.size());
    return authority_[static_cast<size_t>(u) * num_topics_ + t];
  }

  // Row pointer auth(u, ·): row[t] == Authority(u, t). Lets the scoring
  // inner loop hoist the row computation out of its per-topic loop.
  const double* AuthorityRow(graph::NodeId u) const {
    MBR_DCHECK(u < total_followers_.size());
    return &authority_[static_cast<size_t>(u) * num_topics_];
  }

  int num_topics() const { return num_topics_; }

 private:
  // Fills authority_[u * nt .. u * nt + nt) from one counter row. Both
  // construction paths funnel through this helper so incremental snapshots
  // stay bit-identical to full rebuilds.
  static void FillAuthorityRow(const uint32_t* row, int nt,
                               const double* log_max, uint64_t label_mass,
                               double* out);

  int num_topics_ = 0;
  std::vector<uint32_t> total_followers_;       // |Γu|
  std::vector<uint32_t> followers_on_topic_;    // n x T
  std::vector<uint32_t> max_followers_on_topic_;
  std::vector<uint64_t> label_mass_;            // Σ_t |Γu(t)| per node
  std::vector<double> authority_;               // n x T, precomputed
};

}  // namespace mbr::core

#endif  // MBR_CORE_AUTHORITY_H_
