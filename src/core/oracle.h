#ifndef MBR_CORE_ORACLE_H_
#define MBR_CORE_ORACLE_H_

// Brute-force walk enumeration implementing Definition 1 literally.
//
// For testing only: enumerates every walk p : source ❀ v of length <= max_len
// and accumulates
//
//   σ(source, v, t) = Σ_p β^|p| Σ_{j=1..|p|} α^j · maxsim(label(e_j), t) ·
//                                             auth(end(e_j), t)
//   topo_β  = Σ_p β^|p|,  topo_αβ = Σ_p (αβ)^|p|
//
// independently of the iterative engine, so the two implementations check
// each other. Exponential in max_len — tiny graphs only.

#include <unordered_map>

#include "core/authority.h"
#include "core/params.h"
#include "graph/labeled_graph.h"
#include "topics/similarity_matrix.h"

namespace mbr::core {

struct OracleScores {
  std::unordered_map<graph::NodeId, double> sigma;
  std::unordered_map<graph::NodeId, double> topo_beta;
  std::unordered_map<graph::NodeId, double> topo_alphabeta;

  double Sigma(graph::NodeId v) const {
    auto it = sigma.find(v);
    return it == sigma.end() ? 0.0 : it->second;
  }
  double TopoBeta(graph::NodeId v) const {
    auto it = topo_beta.find(v);
    return it == topo_beta.end() ? 0.0 : it->second;
  }
  double TopoAlphaBeta(graph::NodeId v) const {
    auto it = topo_alphabeta.find(v);
    return it == topo_alphabeta.end() ? 0.0 : it->second;
  }
};

OracleScores BruteForceScores(const graph::LabeledGraph& g,
                              const AuthorityIndex& authority,
                              const topics::SimilarityMatrix& sim,
                              const ScoreParams& params,
                              graph::NodeId source, topics::TopicId topic,
                              uint32_t max_len);

}  // namespace mbr::core

#endif  // MBR_CORE_ORACLE_H_
