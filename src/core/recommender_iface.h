#ifndef MBR_CORE_RECOMMENDER_IFACE_H_
#define MBR_CORE_RECOMMENDER_IFACE_H_

// Common interface all recommenders implement (Tr and its ablations, Katz,
// TwitterRank, and the landmark-based approximation), so the evaluation
// harness and the benchmark binaries can treat them uniformly.

#include <string>
#include <vector>

#include "graph/labeled_graph.h"
#include "topics/topic.h"
#include "util/top_k.h"

namespace mbr::core {

class Recommender {
 public:
  virtual ~Recommender() = default;

  // Display name ("Tr", "Katz", "TwitterRank", ...).
  virtual std::string name() const = 0;

  // Scores of each candidate for recommending to `u` on topic `t`
  // (same order as `candidates`; unreachable/unknown candidates score 0).
  virtual std::vector<double> ScoreCandidates(
      graph::NodeId u, topics::TopicId t,
      const std::vector<graph::NodeId>& candidates) const = 0;

  // Top-n ranked recommendations for `u` on topic `t` (excluding u).
  virtual std::vector<util::ScoredId> RecommendTopN(graph::NodeId u,
                                                    topics::TopicId t,
                                                    size_t n) const = 0;
};

}  // namespace mbr::core

#endif  // MBR_CORE_RECOMMENDER_IFACE_H_
