#ifndef MBR_CORE_RECOMMENDER_IFACE_H_
#define MBR_CORE_RECOMMENDER_IFACE_H_

// Common interface all recommenders implement (Tr and its ablations, Katz,
// TwitterRank, the neighborhood/SALSA baselines, and the landmark-based
// approximation), so the evaluation harness, the serving engine, and the
// benchmark binaries can treat them uniformly.
//
// The request is a value object (core::Query) rather than positional
// arguments: it carries the ranking size, an exclusion list, an optional
// deadline, and — for the evaluation protocol — an explicit candidate list
// to score. Implementations answer with util::Result<Ranking> so deadline
// expiry and invalid requests travel the normal error channel
// (kDeadlineExceeded is also counted in the default obs registry).

#include <chrono>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/labeled_graph.h"
#include "topics/topic.h"
#include "util/status.h"
#include "util/top_k.h"

namespace mbr::core {

// Serving tiers, ordered by degradation (lower = higher fidelity). The
// serving engine's degradation ladder (DESIGN.md §6.8) walks down this
// order under pressure; offline recommenders always produce the tier that
// names their algorithm (core::Scorer → kExact, landmark approximation →
// kApprox). The numeric values are the wire encoding (protocol v5
// `served_tier` byte) — do not reorder.
enum class Tier : uint8_t {
  kExact = 0,   // converged exact Tr scoring
  kApprox = 1,  // landmark approximation (Algorithm 2)
  kStale = 2,   // dead-epoch cached result (last resort before shedding)
};

inline const char* TierName(Tier t) {
  switch (t) {
    case Tier::kExact:
      return "exact";
    case Tier::kApprox:
      return "approx";
    case Tier::kStale:
      return "stale";
  }
  return "unknown";
}

// A single recommendation request.
//
// Two modes, selected by `candidates`:
//  - top-n (candidates empty): rank the best `top_n` users for `user` on
//    `topic`, excluding `user` itself and every id in `exclude`.
//  - candidate scoring (candidates non-empty): return one entry per
//    candidate, in the given order, carrying σ(user, candidate, topic)
//    (0 for unreachable candidates). `top_n` and `exclude` are ignored —
//    the evaluation protocol wants raw scores for its own ranking.
struct Query {
  graph::NodeId user = 0;
  topics::TopicId topic = 0;
  uint32_t top_n = 10;
  std::vector<graph::NodeId> exclude;
  std::vector<graph::NodeId> candidates;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  // The most degraded tier the caller accepts (default: anything). A
  // latency-tolerant caller pins `WithMinTier(Tier::kExact)` to opt out of
  // the degradation ladder entirely; the serving engine never serves a
  // tier numerically above this. Offline recommenders ignore it.
  Tier min_tier = Tier::kStale;

  static Query TopN(graph::NodeId user, topics::TopicId topic,
                    uint32_t top_n) {
    Query q;
    q.user = user;
    q.topic = topic;
    q.top_n = top_n;
    return q;
  }

  static Query Scores(graph::NodeId user, topics::TopicId topic,
                      std::vector<graph::NodeId> candidates) {
    Query q;
    q.user = user;
    q.topic = topic;
    q.candidates = std::move(candidates);
    return q;
  }

  Query&& WithExclude(std::vector<graph::NodeId> ids) && {
    exclude = std::move(ids);
    return std::move(*this);
  }

  Query&& WithDeadline(std::chrono::milliseconds budget) && {
    deadline = std::chrono::steady_clock::now() + budget;
    return std::move(*this);
  }

  Query&& WithMinTier(Tier t) && {
    min_tier = t;
    return std::move(*this);
  }

  bool scoring_mode() const { return !candidates.empty(); }

  bool expired() const {
    return deadline.has_value() && std::chrono::steady_clock::now() > *deadline;
  }

  // Linear scan: exclusion lists are user-sized (followees), not graph-sized.
  bool IsExcluded(graph::NodeId v) const {
    for (graph::NodeId e : exclude) {
      if (e == v) return true;
    }
    return false;
  }
};

// A ranked (or, in scoring mode, candidate-ordered) answer: a pure ranked
// list. Serving metadata (graph epoch, serving tier, cache provenance)
// lives in service::ServeMeta — offline recommenders have no epoch or
// tier notion, so the list is all they produce.
struct Ranking {
  std::vector<util::ScoredId> entries;
};

// Accumulates a Ranking for a top-n Query, applying the shared exclusion
// rules (query user, exclude list, non-positive scores) so implementations
// only iterate their score source and Offer().
class RankingBuilder {
 public:
  explicit RankingBuilder(const Query& q) : q_(q), topk_(q.top_n > 0 ? q.top_n : 1) {}

  void Offer(graph::NodeId v, double score) {
    if (score <= 0.0) return;
    OfferAllowZero(v, score);
  }

  // For scores where zero is a legitimate rank position (e.g. global
  // PageRank-style vectors that list every node).
  void OfferAllowZero(graph::NodeId v, double score) {
    if (v == q_.user || q_.IsExcluded(v)) return;
    topk_.Offer(v, score);
  }

  Ranking Take() {
    Ranking r;
    if (q_.top_n > 0) r.entries = topk_.Take();
    return r;
  }

 private:
  const Query& q_;
  util::TopK topk_;
};

class Recommender {
 public:
  virtual ~Recommender() = default;

  // Display name ("Tr", "Katz", "TwitterRank", ...).
  virtual std::string name() const = 0;

  // Answers one query (both modes). Deadline expiry yields
  // kDeadlineExceeded; malformed requests yield kInvalidArgument.
  virtual util::Result<Ranking> Recommend(const Query& q) const = 0;

  // Answers each query independently, results in request order. The default
  // implementation is a sequential loop; implementations with batching
  // leverage (shared exploration, worker pools) override it.
  virtual std::vector<util::Result<Ranking>> RecommendBatch(
      std::span<const Query> queries) const;

  // ---- Conveniences over Recommend(). Non-virtual: every caller funnels
  // through the request-object entry point above.

  // Top-n entries for `u` on `t`; aborts on error (in-process callers with
  // no deadline — CLI, tests, benchmarks).
  std::vector<util::ScoredId> TopN(graph::NodeId u, topics::TopicId t,
                                   size_t n) const;

  // Scores for an explicit candidate list, in candidate order (the
  // evaluation protocol ranks 1 true endpoint + 1000 sampled accounts).
  std::vector<double> CandidateScores(
      graph::NodeId u, topics::TopicId t,
      const std::vector<graph::NodeId>& candidates) const;

 protected:
  // Returns kDeadlineExceeded (and counts it in the default registry) when
  // `q` is past its deadline; implementations call this on entry and at
  // natural re-check points of long computations.
  static util::Status CheckDeadline(const Query& q);
};

}  // namespace mbr::core

#endif  // MBR_CORE_RECOMMENDER_IFACE_H_
