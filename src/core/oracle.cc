#include "core/oracle.h"

#include <cmath>

namespace mbr::core {

namespace {

struct WalkState {
  const graph::LabeledGraph& g;
  const AuthorityIndex& authority;
  const topics::SimilarityMatrix& sim;
  const ScoreParams& params;
  topics::TopicId topic;
  uint32_t max_len;
  OracleScores* out;
};

// Extends the walk currently ending at `u` with length `len` and topical
// sum `relevance` = Σ_{j<=len} α^j s_j auth_j.
void Extend(WalkState& st, graph::NodeId u, uint32_t len, double relevance) {
  if (len == st.max_len) return;
  auto nbrs = st.g.OutNeighbors(u);
  auto labs = st.g.OutEdgeLabels(u);
  const uint32_t next_len = len + 1;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    graph::NodeId v = nbrs[i];
    double s, a;
    switch (st.params.variant) {
      case ScoreVariant::kFull:
        s = st.sim.MaxSim(labs[i], st.topic);
        a = st.authority.Authority(v, st.topic);
        break;
      case ScoreVariant::kNoAuth:
        s = st.sim.MaxSim(labs[i], st.topic);
        a = 1.0;
        break;
      case ScoreVariant::kNoSim:
        s = 1.0;
        a = st.authority.Authority(v, st.topic);
        break;
      default:
        s = a = 0.0;
    }
    double rel = relevance + std::pow(st.params.alpha, next_len) * s * a;
    double beta_k = std::pow(st.params.beta, next_len);
    st.out->sigma[v] += beta_k * rel;
    st.out->topo_beta[v] += beta_k;
    st.out->topo_alphabeta[v] +=
        std::pow(st.params.alpha * st.params.beta, next_len);
    Extend(st, v, next_len, rel);
  }
}

}  // namespace

OracleScores BruteForceScores(const graph::LabeledGraph& g,
                              const AuthorityIndex& authority,
                              const topics::SimilarityMatrix& sim,
                              const ScoreParams& params,
                              graph::NodeId source, topics::TopicId topic,
                              uint32_t max_len) {
  OracleScores out;
  WalkState st{g, authority, sim, params, topic, max_len, &out};
  Extend(st, source, 0, 0.0);
  return out;
}

}  // namespace mbr::core
