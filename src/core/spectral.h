#ifndef MBR_CORE_SPECTRAL_H_
#define MBR_CORE_SPECTRAL_H_

// Spectral-radius estimation for the convergence bound of Proposition 3:
// the iterative score computation converges when β < 1 / σ_max(A).

#include <cstdint>

#include "graph/labeled_graph.h"

namespace mbr::core {

// Largest-magnitude eigenvalue of the adjacency matrix, estimated with
// `iterations` rounds of power iteration (deterministic start vector).
// Returns 0 for edgeless graphs.
double EstimateSpectralRadius(const graph::LabeledGraph& g,
                              uint32_t iterations = 50);

// The Proposition 3 bound: the largest provably-convergent β.
inline double MaxConvergentBeta(const graph::LabeledGraph& g,
                                uint32_t iterations = 50) {
  double radius = EstimateSpectralRadius(g, iterations);
  return radius > 0.0 ? 1.0 / radius : 1.0;
}

}  // namespace mbr::core

#endif  // MBR_CORE_SPECTRAL_H_
