#include "net/protocol.h"

#include "util/serde.h"

namespace mbr::net {

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPing:
      return "PING";
    case MessageKind::kRecommend:
      return "RECOMMEND";
    case MessageKind::kRecommendBatch:
      return "RECOMMEND_BATCH";
    case MessageKind::kStats:
      return "STATS";
    case MessageKind::kShutdown:
      return "SHUTDOWN";
    case MessageKind::kMetrics:
      return "METRICS";
    case MessageKind::kFollow:
      return "FOLLOW";
    case MessageKind::kUnfollow:
      return "UNFOLLOW";
    case MessageKind::kRelabel:
      return "RELABEL";
    case MessageKind::kRecommendPartial:
      return "RECOMMEND_PARTIAL";
    case MessageKind::kLandmarkFetch:
      return "LANDMARK_FETCH";
    case MessageKind::kPong:
      return "PONG";
    case MessageKind::kResult:
      return "RESULT";
    case MessageKind::kResultBatch:
      return "RESULT_BATCH";
    case MessageKind::kStatsResult:
      return "STATS_RESULT";
    case MessageKind::kShutdownAck:
      return "SHUTDOWN_ACK";
    case MessageKind::kError:
      return "ERROR";
    case MessageKind::kOverloaded:
      return "OVERLOADED";
    case MessageKind::kMetricsResult:
      return "METRICS_RESULT";
    case MessageKind::kMutateAck:
      return "MUTATE_ACK";
    case MessageKind::kPartialResult:
      return "PARTIAL_RESULT";
    case MessageKind::kLandmarkVectors:
      return "LANDMARK_VECTORS";
  }
  return "UNKNOWN";
}

bool IsRequestKind(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPing:
    case MessageKind::kRecommend:
    case MessageKind::kRecommendBatch:
    case MessageKind::kStats:
    case MessageKind::kShutdown:
    case MessageKind::kMetrics:
    case MessageKind::kFollow:
    case MessageKind::kUnfollow:
    case MessageKind::kRelabel:
    case MessageKind::kRecommendPartial:
    case MessageKind::kLandmarkFetch:
      return true;
    default:
      return false;
  }
}

bool IsReplyKind(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPong:
    case MessageKind::kResult:
    case MessageKind::kResultBatch:
    case MessageKind::kStatsResult:
    case MessageKind::kShutdownAck:
    case MessageKind::kError:
    case MessageKind::kOverloaded:
    case MessageKind::kMetricsResult:
    case MessageKind::kMutateAck:
    case MessageKind::kPartialResult:
    case MessageKind::kLandmarkVectors:
      return true;
    default:
      return false;
  }
}

bool IsMutationKind(MessageKind kind) {
  return kind == MessageKind::kFollow || kind == MessageKind::kUnfollow ||
         kind == MessageKind::kRelabel;
}

const char* WireErrorName(WireError e) {
  switch (e) {
    case WireError::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case WireError::kBadFrame:
      return "BAD_FRAME";
    case WireError::kUnsupportedVersion:
      return "UNSUPPORTED_VERSION";
    case WireError::kUnknownKind:
      return "UNKNOWN_KIND";
    case WireError::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case WireError::kShuttingDown:
      return "SHUTTING_DOWN";
    case WireError::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

namespace {

template <typename T>
void AppendPod(T v, std::vector<uint8_t>* out) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

}  // namespace

void AppendFrame(MessageKind kind, uint64_t request_id,
                 std::span<const uint8_t> payload, std::vector<uint8_t>* out,
                 uint16_t version) {
  out->reserve(out->size() + kFrameHeaderBytes + payload.size());
  AppendPod(kFrameMagic, out);
  AppendPod(version, out);
  AppendPod(static_cast<uint16_t>(kind), out);
  AppendPod(request_id, out);
  AppendPod(static_cast<uint32_t>(payload.size()), out);
  AppendPod(util::serde::Crc32(payload.data(), payload.size()), out);
  out->insert(out->end(), payload.begin(), payload.end());
}

HeaderParse ParseFrameHeader(std::span<const uint8_t> buf,
                             const WireLimits& limits, FrameHeader* out) {
  if (buf.size() < kFrameHeaderBytes) return HeaderParse::kNeedMore;
  size_t off = 0;
  auto read = [&](auto* v) {
    std::memcpy(v, buf.data() + off, sizeof(*v));
    off += sizeof(*v);
  };
  uint32_t magic = 0;
  uint16_t kind_raw = 0;
  read(&magic);
  read(&out->version);
  read(&kind_raw);
  read(&out->request_id);
  read(&out->payload_len);
  read(&out->payload_crc);
  out->kind = static_cast<MessageKind>(kind_raw);
  if (magic != kFrameMagic) return HeaderParse::kMalformed;
  if (out->payload_len > limits.max_payload_bytes) {
    return HeaderParse::kMalformed;
  }
  return HeaderParse::kOk;
}

util::Status VerifyPayloadCrc(const FrameHeader& header,
                              std::span<const uint8_t> payload) {
  if (payload.size() != header.payload_len) {
    return util::Status::InvalidArgument("payload size mismatch");
  }
  const uint32_t crc = util::serde::Crc32(payload.data(), payload.size());
  if (crc != header.payload_crc) {
    return util::Status::InvalidArgument("payload CRC mismatch");
  }
  return util::Status::Ok();
}

void PayloadWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  const uint8_t* p = reinterpret_cast<const uint8_t*>(s.data());
  buf_.insert(buf_.end(), p, p + s.size());
}

util::Status PayloadReader::ReadString(std::string* out, uint32_t max_len) {
  uint32_t len = 0;
  MBR_RETURN_IF_ERROR(ReadU32(&len));
  if (len > max_len) {
    return util::Status::InvalidArgument("string length " +
                                         std::to_string(len) +
                                         " exceeds bound " +
                                         std::to_string(max_len));
  }
  if (len > remaining()) {
    return util::Status::InvalidArgument(
        "string length exceeds remaining payload bytes");
  }
  out->assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return util::Status::Ok();
}

util::Status PayloadReader::ExpectEnd() const {
  if (remaining() != 0) {
    return util::Status::InvalidArgument(
        std::to_string(remaining()) + " unconsumed payload bytes");
  }
  return util::Status::Ok();
}

// --------------------------------------------------------------------------
// Typed payloads.

namespace {

void PutQuery(const RecommendRequest& req, uint16_t version,
              PayloadWriter* w) {
  w->PutU32(req.user);
  w->PutU32(req.topic);
  w->PutU32(req.top_n);
  if (version >= 2) {
    w->PutU32(req.deadline_ms);
    w->PutU32(static_cast<uint32_t>(req.exclude.size()));
    for (uint32_t id : req.exclude) w->PutU32(id);
  }
}

util::Status ReadQuery(PayloadReader* r, const WireLimits& limits,
                       uint16_t version, RecommendRequest* out) {
  MBR_RETURN_IF_ERROR(r->ReadU32(&out->user));
  MBR_RETURN_IF_ERROR(r->ReadU32(&out->topic));
  MBR_RETURN_IF_ERROR(r->ReadU32(&out->top_n));
  out->deadline_ms = 0;
  out->exclude.clear();
  if (version >= 2) {
    MBR_RETURN_IF_ERROR(r->ReadU32(&out->deadline_ms));
    uint32_t n = 0;
    MBR_RETURN_IF_ERROR(r->ReadU32(&n));
    if (n > limits.max_exclude) {
      return util::Status::InvalidArgument(
          "exclude list length " + std::to_string(n) + " exceeds bound " +
          std::to_string(limits.max_exclude));
    }
    if (n > r->remaining() / 4) {
      return util::Status::InvalidArgument(
          "exclude list length exceeds remaining payload bytes");
    }
    out->exclude.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      MBR_RETURN_IF_ERROR(r->ReadU32(&out->exclude[i]));
    }
  }
  return util::Status::Ok();
}

// Fixed prefix of a query (user/topic/top_n); v2 queries append a
// variable-length tail on top of this.
constexpr size_t kQueryBytes = 12;
constexpr size_t kEntryBytes = kResultEntryBytes;  // id:u32 + score:f64

void PutList(const RankedList& list, PayloadWriter* w) {
  w->PutU32(static_cast<uint32_t>(list.size()));
  for (const util::ScoredId& e : list) {
    w->PutU32(e.id);
    w->PutDouble(e.score);
  }
}

util::Status ReadList(PayloadReader* r, const WireLimits& limits,
                      RankedList* out) {
  uint32_t n = 0;
  MBR_RETURN_IF_ERROR(r->ReadU32(&n));
  if (n > limits.max_list) {
    return util::Status::InvalidArgument("ranked list length " +
                                         std::to_string(n) +
                                         " exceeds bound " +
                                         std::to_string(limits.max_list));
  }
  if (n > r->remaining() / kEntryBytes) {
    return util::Status::InvalidArgument(
        "ranked list length exceeds remaining payload bytes");
  }
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    MBR_RETURN_IF_ERROR(r->ReadU32(&(*out)[i].id));
    MBR_RETURN_IF_ERROR(r->ReadDouble(&(*out)[i].score));
  }
  return util::Status::Ok();
}

}  // namespace

std::vector<uint8_t> EncodeRecommend(const RecommendRequest& req,
                                     uint16_t version) {
  PayloadWriter w;
  PutQuery(req, version, &w);
  return w.Take();
}

util::Status DecodeRecommend(std::span<const uint8_t> payload,
                             const WireLimits& limits, uint16_t version,
                             RecommendRequest* out) {
  PayloadReader r(payload);
  MBR_RETURN_IF_ERROR(ReadQuery(&r, limits, version, out));
  MBR_RETURN_IF_ERROR(r.ExpectEnd());
  if (out->top_n == 0 || out->top_n > limits.max_list) {
    return util::Status::InvalidArgument(
        "top_n must be in [1, " + std::to_string(limits.max_list) + "]");
  }
  return util::Status::Ok();
}

std::vector<uint8_t> EncodeRecommendBatch(
    const std::vector<RecommendRequest>& reqs, uint16_t version) {
  PayloadWriter w;
  w.PutU32(static_cast<uint32_t>(reqs.size()));
  for (const RecommendRequest& q : reqs) PutQuery(q, version, &w);
  return w.Take();
}

util::Status DecodeRecommendBatch(std::span<const uint8_t> payload,
                                  const WireLimits& limits, uint16_t version,
                                  std::vector<RecommendRequest>* out) {
  PayloadReader r(payload);
  uint32_t n = 0;
  MBR_RETURN_IF_ERROR(r.ReadU32(&n));
  if (n == 0 || n > limits.max_batch) {
    return util::Status::InvalidArgument(
        "batch size must be in [1, " + std::to_string(limits.max_batch) +
        "], got " + std::to_string(n));
  }
  if (n > r.remaining() / kQueryBytes) {
    return util::Status::InvalidArgument(
        "batch size exceeds remaining payload bytes");
  }
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    MBR_RETURN_IF_ERROR(ReadQuery(&r, limits, version, &(*out)[i]));
    if ((*out)[i].top_n == 0 || (*out)[i].top_n > limits.max_list) {
      return util::Status::InvalidArgument(
          "top_n must be in [1, " + std::to_string(limits.max_list) + "]");
    }
  }
  return r.ExpectEnd();
}

namespace {

// v5 served_tier byte: read + range-check (core::Tier has 3 values; an
// out-of-range byte is a corrupt or hostile frame, not a future tier —
// new tiers mean a new protocol version).
util::Status ReadServedTier(PayloadReader* r, uint8_t* out) {
  uint8_t t = 0;
  MBR_RETURN_IF_ERROR(r->ReadU8(&t));
  if (t > kMaxServedTier) {
    return util::Status::InvalidArgument("served_tier byte " +
                                         std::to_string(t) +
                                         " out of range");
  }
  if (out != nullptr) *out = t;
  return util::Status::Ok();
}

}  // namespace

std::vector<uint8_t> EncodeResult(const RankedList& list, uint64_t graph_epoch,
                                  uint16_t version, const CoordTrailer& coord,
                                  uint8_t served_tier) {
  PayloadWriter w;
  if (version >= 3) w.PutU64(graph_epoch);
  if (version >= 5) w.PutU8(served_tier);
  PutList(list, &w);
  if (version >= 4) {
    w.PutU8(coord.partial);
    w.PutU16(coord.shards_answered);
    w.PutU16(coord.shards_total);
  }
  return w.Take();
}

util::Status DecodeResult(std::span<const uint8_t> payload,
                          const WireLimits& limits, uint16_t version,
                          RankedList* out, uint64_t* graph_epoch,
                          CoordTrailer* coord, uint8_t* served_tier) {
  PayloadReader r(payload);
  uint64_t epoch = 0;
  if (version >= 3) MBR_RETURN_IF_ERROR(r.ReadU64(&epoch));
  if (graph_epoch != nullptr) *graph_epoch = epoch;
  uint8_t tier = 0;
  if (version >= 5) MBR_RETURN_IF_ERROR(ReadServedTier(&r, &tier));
  if (served_tier != nullptr) *served_tier = tier;
  MBR_RETURN_IF_ERROR(ReadList(&r, limits, out));
  CoordTrailer c;
  if (version >= 4) {
    MBR_RETURN_IF_ERROR(r.ReadU8(&c.partial));
    MBR_RETURN_IF_ERROR(r.ReadU16(&c.shards_answered));
    MBR_RETURN_IF_ERROR(r.ReadU16(&c.shards_total));
  }
  if (coord != nullptr) *coord = c;
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeResultBatch(const std::vector<RankedList>& lists,
                                       std::span<const uint64_t> epochs,
                                       uint16_t version,
                                       const CoordTrailer& coord,
                                       std::span<const uint8_t> tiers) {
  PayloadWriter w;
  w.PutU32(static_cast<uint32_t>(lists.size()));
  for (size_t i = 0; i < lists.size(); ++i) {
    if (version >= 3) w.PutU64(epochs.empty() ? 0 : epochs[i]);
    if (version >= 5) w.PutU8(tiers.empty() ? 0 : tiers[i]);
    PutList(lists[i], &w);
  }
  if (version >= 4) {
    w.PutU8(coord.partial);
    w.PutU16(coord.shards_answered);
    w.PutU16(coord.shards_total);
  }
  return w.Take();
}

util::Status DecodeResultBatch(std::span<const uint8_t> payload,
                               const WireLimits& limits, uint16_t version,
                               std::vector<RankedList>* out,
                               std::vector<uint64_t>* epochs,
                               CoordTrailer* coord,
                               std::vector<uint8_t>* tiers) {
  PayloadReader r(payload);
  uint32_t n = 0;
  MBR_RETURN_IF_ERROR(r.ReadU32(&n));
  if (n > limits.max_batch) {
    return util::Status::InvalidArgument("result batch length " +
                                         std::to_string(n) +
                                         " exceeds bound " +
                                         std::to_string(limits.max_batch));
  }
  // Each list costs at least its 4-byte length prefix (plus the 8-byte
  // epoch at v3 and the tier byte at v5).
  const size_t per_list_min = version >= 5 ? 13 : version >= 3 ? 12 : 4;
  if (n > r.remaining() / per_list_min) {
    return util::Status::InvalidArgument(
        "result batch length exceeds remaining payload bytes");
  }
  out->resize(n);
  if (epochs != nullptr) epochs->assign(n, 0);
  if (tiers != nullptr) tiers->assign(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    if (version >= 3) {
      uint64_t e = 0;
      MBR_RETURN_IF_ERROR(r.ReadU64(&e));
      if (epochs != nullptr) (*epochs)[i] = e;
    }
    if (version >= 5) {
      uint8_t t = 0;
      MBR_RETURN_IF_ERROR(ReadServedTier(&r, &t));
      if (tiers != nullptr) (*tiers)[i] = t;
    }
    MBR_RETURN_IF_ERROR(ReadList(&r, limits, &(*out)[i]));
  }
  CoordTrailer c;
  if (version >= 4) {
    MBR_RETURN_IF_ERROR(r.ReadU8(&c.partial));
    MBR_RETURN_IF_ERROR(r.ReadU16(&c.shards_answered));
    MBR_RETURN_IF_ERROR(r.ReadU16(&c.shards_total));
  }
  if (coord != nullptr) *coord = c;
  return r.ExpectEnd();
}

namespace {

// Wire sizes of the v4 shard payload pieces: a non-landmark record is
// node:u32 + flags:u8 + sigma:f64, a landmark record appends topo_αβ:f64,
// a landmark-list entry is node:u32 + sigma:f64 + topo_β:f64.
constexpr size_t kPartialRecordMinBytes = 13;
constexpr size_t kLandmarkEntryBytes = 20;

void PutLandmarkList(const LandmarkList& list, PayloadWriter* w) {
  w->PutU32(list.landmark);
  w->PutU32(static_cast<uint32_t>(list.entries.size()));
  for (const LandmarkEntry& e : list.entries) {
    w->PutU32(e.node);
    w->PutDouble(e.sigma);
    w->PutDouble(e.topo_beta);
  }
}

util::Status ReadLandmarkList(PayloadReader* r, const WireLimits& limits,
                              LandmarkList* out) {
  MBR_RETURN_IF_ERROR(r->ReadU32(&out->landmark));
  uint32_t n = 0;
  MBR_RETURN_IF_ERROR(r->ReadU32(&n));
  if (n > limits.max_list) {
    return util::Status::InvalidArgument(
        "landmark list length " + std::to_string(n) + " exceeds bound " +
        std::to_string(limits.max_list));
  }
  if (n > r->remaining() / kLandmarkEntryBytes) {
    return util::Status::InvalidArgument(
        "landmark list length exceeds remaining payload bytes");
  }
  out->entries.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    LandmarkEntry& e = out->entries[i];
    MBR_RETURN_IF_ERROR(r->ReadU32(&e.node));
    MBR_RETURN_IF_ERROR(r->ReadDouble(&e.sigma));
    MBR_RETURN_IF_ERROR(r->ReadDouble(&e.topo_beta));
  }
  return util::Status::Ok();
}

}  // namespace

std::vector<uint8_t> EncodePartialReply(const PartialReply& reply) {
  PayloadWriter w;
  w.PutU64(reply.graph_epoch);
  w.PutU32(static_cast<uint32_t>(reply.records.size()));
  for (const PartialRecord& rec : reply.records) {
    w.PutU32(rec.node);
    w.PutU8(rec.flags);
    w.PutDouble(rec.sigma);
    if (rec.flags & kPartialFlagLandmark) w.PutDouble(rec.topo_alphabeta);
  }
  w.PutU32(static_cast<uint32_t>(reply.lists.size()));
  for (const LandmarkList& list : reply.lists) PutLandmarkList(list, &w);
  return w.Take();
}

util::Status DecodePartialReply(std::span<const uint8_t> payload,
                                const WireLimits& limits, PartialReply* out) {
  PayloadReader r(payload);
  MBR_RETURN_IF_ERROR(r.ReadU64(&out->graph_epoch));
  uint32_t n = 0;
  MBR_RETURN_IF_ERROR(r.ReadU32(&n));
  if (n > limits.max_partial) {
    return util::Status::InvalidArgument(
        "partial record count " + std::to_string(n) + " exceeds bound " +
        std::to_string(limits.max_partial));
  }
  if (n > r.remaining() / kPartialRecordMinBytes) {
    return util::Status::InvalidArgument(
        "partial record count exceeds remaining payload bytes");
  }
  out->records.resize(n);
  uint32_t inline_lists = 0;
  for (uint32_t i = 0; i < n; ++i) {
    PartialRecord& rec = out->records[i];
    MBR_RETURN_IF_ERROR(r.ReadU32(&rec.node));
    MBR_RETURN_IF_ERROR(r.ReadU8(&rec.flags));
    if (rec.flags &
        ~static_cast<uint8_t>(kPartialFlagLandmark | kPartialFlagInline)) {
      return util::Status::InvalidArgument("unknown partial record flags");
    }
    if ((rec.flags & kPartialFlagInline) &&
        !(rec.flags & kPartialFlagLandmark)) {
      return util::Status::InvalidArgument(
          "inline flag on a non-landmark partial record");
    }
    MBR_RETURN_IF_ERROR(r.ReadDouble(&rec.sigma));
    rec.topo_alphabeta = 0.0;
    if (rec.flags & kPartialFlagLandmark) {
      MBR_RETURN_IF_ERROR(r.ReadDouble(&rec.topo_alphabeta));
    }
    if (rec.flags & kPartialFlagInline) ++inline_lists;
  }
  uint32_t lists = 0;
  MBR_RETURN_IF_ERROR(r.ReadU32(&lists));
  if (lists != inline_lists) {
    return util::Status::InvalidArgument(
        "inline list count " + std::to_string(lists) +
        " does not match flagged records (" + std::to_string(inline_lists) +
        ")");
  }
  out->lists.resize(lists);
  for (uint32_t i = 0; i < lists; ++i) {
    MBR_RETURN_IF_ERROR(ReadLandmarkList(&r, limits, &out->lists[i]));
  }
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeLandmarkFetch(const LandmarkFetchRequest& req) {
  PayloadWriter w;
  w.PutU32(req.topic);
  w.PutU32(static_cast<uint32_t>(req.landmarks.size()));
  for (uint32_t id : req.landmarks) w.PutU32(id);
  return w.Take();
}

util::Status DecodeLandmarkFetch(std::span<const uint8_t> payload,
                                 const WireLimits& limits,
                                 LandmarkFetchRequest* out) {
  PayloadReader r(payload);
  MBR_RETURN_IF_ERROR(r.ReadU32(&out->topic));
  uint32_t n = 0;
  MBR_RETURN_IF_ERROR(r.ReadU32(&n));
  if (n == 0 || n > limits.max_list) {
    return util::Status::InvalidArgument(
        "landmark fetch count must be in [1, " +
        std::to_string(limits.max_list) + "], got " + std::to_string(n));
  }
  if (n > r.remaining() / 4) {
    return util::Status::InvalidArgument(
        "landmark fetch count exceeds remaining payload bytes");
  }
  out->landmarks.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    MBR_RETURN_IF_ERROR(r.ReadU32(&out->landmarks[i]));
  }
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeLandmarkVectors(const LandmarkVectorsReply& reply) {
  PayloadWriter w;
  w.PutU64(reply.graph_epoch);
  w.PutU32(static_cast<uint32_t>(reply.lists.size()));
  for (const LandmarkList& list : reply.lists) PutLandmarkList(list, &w);
  return w.Take();
}

util::Status DecodeLandmarkVectors(std::span<const uint8_t> payload,
                                   const WireLimits& limits,
                                   LandmarkVectorsReply* out) {
  PayloadReader r(payload);
  MBR_RETURN_IF_ERROR(r.ReadU64(&out->graph_epoch));
  uint32_t n = 0;
  MBR_RETURN_IF_ERROR(r.ReadU32(&n));
  if (n > limits.max_list) {
    return util::Status::InvalidArgument(
        "landmark vectors count " + std::to_string(n) + " exceeds bound " +
        std::to_string(limits.max_list));
  }
  // Each list costs at least its 8-byte id+length prefix.
  if (n > r.remaining() / 8) {
    return util::Status::InvalidArgument(
        "landmark vectors count exceeds remaining payload bytes");
  }
  out->lists.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    MBR_RETURN_IF_ERROR(ReadLandmarkList(&r, limits, &out->lists[i]));
  }
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeMutation(
    MessageKind kind, const std::vector<MutationRecord>& records) {
  const bool has_labels = kind != MessageKind::kUnfollow;
  PayloadWriter w;
  w.PutU32(static_cast<uint32_t>(records.size()));
  for (const MutationRecord& rec : records) {
    w.PutU32(rec.src);
    w.PutU32(rec.dst);
    if (has_labels) w.PutU64(rec.labels);
  }
  return w.Take();
}

util::Status DecodeMutation(std::span<const uint8_t> payload,
                            const WireLimits& limits, MessageKind kind,
                            std::vector<MutationRecord>* out) {
  if (!IsMutationKind(kind)) {
    return util::Status::InvalidArgument("not a mutation kind");
  }
  const bool has_labels = kind != MessageKind::kUnfollow;
  const size_t rec_bytes = has_labels ? 16 : 8;
  PayloadReader r(payload);
  uint32_t n = 0;
  MBR_RETURN_IF_ERROR(r.ReadU32(&n));
  if (n == 0 || n > limits.max_mutations) {
    return util::Status::InvalidArgument(
        "mutation count must be in [1, " +
        std::to_string(limits.max_mutations) + "], got " + std::to_string(n));
  }
  if (n > r.remaining() / rec_bytes) {
    return util::Status::InvalidArgument(
        "mutation count exceeds remaining payload bytes");
  }
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    MutationRecord& rec = (*out)[i];
    MBR_RETURN_IF_ERROR(r.ReadU32(&rec.src));
    MBR_RETURN_IF_ERROR(r.ReadU32(&rec.dst));
    rec.labels = 0;
    if (has_labels) MBR_RETURN_IF_ERROR(r.ReadU64(&rec.labels));
  }
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeMutateAck(const MutateAck& ack) {
  PayloadWriter w;
  w.PutU32(ack.applied);
  w.PutU32(ack.rejected);
  w.PutU64(ack.graph_epoch);
  return w.Take();
}

util::Status DecodeMutateAck(std::span<const uint8_t> payload, MutateAck* out) {
  PayloadReader r(payload);
  MBR_RETURN_IF_ERROR(r.ReadU32(&out->applied));
  MBR_RETURN_IF_ERROR(r.ReadU32(&out->rejected));
  MBR_RETURN_IF_ERROR(r.ReadU64(&out->graph_epoch));
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeStats(const service::StatsSnapshot& s,
                                 uint16_t version) {
  PayloadWriter w;
  w.PutU64(s.queries);
  w.PutU64(s.batches);
  w.PutU64(s.cache_hits);
  w.PutU64(s.cache_misses);
  w.PutU64(s.invalidations);
  if (version >= 2) w.PutU64(s.deadline_exceeded);
  w.PutU64(s.params_epoch);
  w.PutU64(s.shed_overload);
  w.PutU64(s.shed_deadline);
  w.PutU64(s.connections_accepted);
  w.PutU64(s.connections_open);
  w.PutDouble(s.p50_us);
  w.PutDouble(s.p90_us);
  w.PutDouble(s.p99_us);
  if (version >= 4) {
    w.PutU32(s.shards_total);
    w.PutU32(s.shards_up);
  }
  if (version >= 5) {
    w.PutU64(s.tier_exact);
    w.PutU64(s.tier_approx);
    w.PutU64(s.tier_stale);
    w.PutU64(s.degraded);
  }
  return w.Take();
}

util::Status DecodeStats(std::span<const uint8_t> payload, uint16_t version,
                         service::StatsSnapshot* out) {
  PayloadReader r(payload);
  MBR_RETURN_IF_ERROR(r.ReadU64(&out->queries));
  MBR_RETURN_IF_ERROR(r.ReadU64(&out->batches));
  MBR_RETURN_IF_ERROR(r.ReadU64(&out->cache_hits));
  MBR_RETURN_IF_ERROR(r.ReadU64(&out->cache_misses));
  MBR_RETURN_IF_ERROR(r.ReadU64(&out->invalidations));
  out->deadline_exceeded = 0;
  if (version >= 2) {
    MBR_RETURN_IF_ERROR(r.ReadU64(&out->deadline_exceeded));
  }
  MBR_RETURN_IF_ERROR(r.ReadU64(&out->params_epoch));
  MBR_RETURN_IF_ERROR(r.ReadU64(&out->shed_overload));
  MBR_RETURN_IF_ERROR(r.ReadU64(&out->shed_deadline));
  MBR_RETURN_IF_ERROR(r.ReadU64(&out->connections_accepted));
  MBR_RETURN_IF_ERROR(r.ReadU64(&out->connections_open));
  MBR_RETURN_IF_ERROR(r.ReadDouble(&out->p50_us));
  MBR_RETURN_IF_ERROR(r.ReadDouble(&out->p90_us));
  MBR_RETURN_IF_ERROR(r.ReadDouble(&out->p99_us));
  out->shards_total = 0;
  out->shards_up = 0;
  if (version >= 4) {
    MBR_RETURN_IF_ERROR(r.ReadU32(&out->shards_total));
    MBR_RETURN_IF_ERROR(r.ReadU32(&out->shards_up));
  }
  out->tier_exact = 0;
  out->tier_approx = 0;
  out->tier_stale = 0;
  out->degraded = 0;
  if (version >= 5) {
    MBR_RETURN_IF_ERROR(r.ReadU64(&out->tier_exact));
    MBR_RETURN_IF_ERROR(r.ReadU64(&out->tier_approx));
    MBR_RETURN_IF_ERROR(r.ReadU64(&out->tier_stale));
    MBR_RETURN_IF_ERROR(r.ReadU64(&out->degraded));
  }
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeMetricsResult(const std::string& text) {
  PayloadWriter w;
  w.PutString(text);
  return w.Take();
}

util::Status DecodeMetricsResult(std::span<const uint8_t> payload,
                                 const WireLimits& limits, std::string* out) {
  PayloadReader r(payload);
  MBR_RETURN_IF_ERROR(r.ReadString(out, limits.max_payload_bytes));
  return r.ExpectEnd();
}

std::vector<uint8_t> EncodeError(const ErrorReply& err) {
  PayloadWriter w;
  w.PutU32(static_cast<uint32_t>(err.code));
  w.PutString(err.message);
  return w.Take();
}

util::Status DecodeError(std::span<const uint8_t> payload,
                         const WireLimits& limits, ErrorReply* out) {
  PayloadReader r(payload);
  uint32_t code = 0;
  MBR_RETURN_IF_ERROR(r.ReadU32(&code));
  if (code < static_cast<uint32_t>(WireError::kInvalidArgument) ||
      code > static_cast<uint32_t>(WireError::kInternal)) {
    out->code = WireError::kInternal;
  } else {
    out->code = static_cast<WireError>(code);
  }
  MBR_RETURN_IF_ERROR(r.ReadString(&out->message, limits.max_error_msg));
  return r.ExpectEnd();
}

util::Status ErrorReplyToStatus(const ErrorReply& err) {
  std::string msg =
      std::string(WireErrorName(err.code)) + " from server: " + err.message;
  switch (err.code) {
    case WireError::kInvalidArgument:
    case WireError::kBadFrame:
    case WireError::kUnsupportedVersion:
    case WireError::kUnknownKind:
      return util::Status::InvalidArgument(std::move(msg));
    case WireError::kDeadlineExceeded:
      return util::Status::DeadlineExceeded(std::move(msg));
    case WireError::kShuttingDown:
      return util::Status::Unavailable(std::move(msg));
    case WireError::kInternal:
      return util::Status::Internal(std::move(msg));
  }
  return util::Status::Internal(std::move(msg));
}

}  // namespace mbr::net
