#ifndef MBR_NET_SERVER_H_
#define MBR_NET_SERVER_H_

// Epoll-based non-blocking network front end for service::QueryEngine.
//
// Threading model:
//   * ONE event-loop thread owns every socket and Connection object: it
//     accepts, reads, frames, admits, and writes. No connection state is
//     ever touched from another thread.
//   * `dispatch_threads` dispatcher threads pop admitted requests from a
//     bounded queue, run the (blocking) QueryEngine call, encode the reply
//     frame, and post it to a completion queue; an eventfd wakes the event
//     loop to copy the bytes into the right connection's write buffer.
//     Completions are routed by (fd, generation), so a connection that
//     died mid-request simply drops its reply.
//
// Admission control / overload behavior: at most `max_inflight` requests
// may be queued-or-executing at once. A request arriving beyond that is
// answered immediately with an OVERLOADED frame by the event loop — the
// server sheds load explicitly instead of queueing unboundedly, and the
// shed count is visible through STATS. Each admitted request carries a
// deadline (`request_deadline_ms`); if it expires before a dispatcher
// picks the request up, the client gets ERROR(DEADLINE_EXCEEDED) instead
// of a late answer.
//
// Graceful drain: RequestStop() (async-signal-safe; wired to SIGINT/
// SIGTERM by `mbrec serve`) or a SHUTDOWN frame stops accepting — the
// listen socket closes, so new connects are refused by the kernel —
// finishes every in-flight request, flushes replies, then closes all
// connections and returns from Wait(). Requests arriving on existing
// connections during the drain get ERROR(SHUTTING_DOWN). A
// `drain_grace_ms` backstop force-closes connections whose peers refuse
// to read their last replies.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/connection.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "service/mutation.h"
#include "service/query_engine.h"
#include "service/serving_stats.h"
#include "util/status.h"

namespace mbr::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = OS-assigned ephemeral port (see Server::port())
  uint32_t max_connections = 256;
  // Admission bound: requests queued-or-executing before OVERLOADED sheds.
  uint32_t max_inflight = 64;
  uint32_t dispatch_threads = 2;
  // Per-request deadline measured from admission; 0 disables.
  uint32_t request_deadline_ms = 1000;
  // Drain backstop: force-close connections this long after Stop.
  uint32_t drain_grace_ms = 5000;
  WireLimits limits;
  // Where the server registers its mbr_net_* series and what the METRICS
  // op renders. nullptr = the engine's registry, so one exposition covers
  // engine + network counters by default. Must outlive the server.
  obs::Registry* registry = nullptr;
  // v3 mutation ops (FOLLOW/UNFOLLOW/RELABEL) apply through this. nullptr
  // = read-only serving: well-formed mutation frames are answered with
  // ERROR(INVALID_ARGUMENT) and never touch the graph. Must outlive the
  // server.
  service::MutationApplier* applier = nullptr;
  // Shard serving (coordinator tier, DESIGN.md §6.7). When `shard_owned`
  // and `shard_index` are both set the server answers the v4 shard ops:
  // RECOMMEND_PARTIAL for users it owns (decomposed exploration records
  // plus the inline stored lists of locally-homed landmarks) and
  // LANDMARK_FETCH for the stored lists of landmarks it homes.
  // `shard_index` is the per-shard restricted index the engine serves
  // from; both must outlive the server. Shard serving is read-only
  // (`applier` must stay null), so the index and epoch are stable and the
  // fetch path needs no locking. Null = single-node serving; shard ops
  // answer ERROR(INVALID_ARGUMENT).
  const std::vector<bool>* shard_owned = nullptr;
  const landmark::LandmarkIndex* shard_index = nullptr;
  uint32_t shard = 0;
  uint32_t shards_total = 1;
};

// Snapshot of the server's registry-backed counters (see also
// StatsNow(), and the METRICS op for the full exposition).
struct ServerCounters {
  uint64_t accepted = 0;         // connections accepted
  uint64_t refused = 0;          // connections closed at accept (cap/drain)
  uint64_t closed = 0;           // connections fully closed
  uint64_t requests = 0;         // work requests admitted
  uint64_t shed_overload = 0;    // OVERLOADED replies
  uint64_t shed_deadline = 0;    // DEADLINE_EXCEEDED replies
  uint64_t protocol_errors = 0;  // malformed frames / bad payloads
};

class Server {
 public:
  // `engine` must outlive the server.
  Server(service::QueryEngine& engine, const ServerConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and spawns the event loop + dispatcher threads.
  util::Status Start();

  // The bound port (useful with config.port == 0). Valid after Start().
  uint16_t port() const { return port_; }

  // Initiates graceful drain. Async-signal-safe (one eventfd write), so it
  // may be called straight from a SIGINT/SIGTERM handler. Idempotent.
  void RequestStop();

  // Blocks until the drain completes and all threads are joined.
  void Wait();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Engine stats + server shed/connection counters, merged into the shared
  // snapshot struct — the STATS wire reply and the `mbrec serve` log line
  // both come from here.
  service::StatsSnapshot StatsNow() const;

  ServerCounters counters() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct PendingRequest {
    int conn_fd = -1;
    uint64_t conn_gen = 0;
    uint64_t request_id = 0;
    // Protocol version the request arrived with; echoed on the reply.
    uint16_t version = kProtocolVersion;
    MessageKind kind = MessageKind::kRecommend;
    std::vector<service::Query> queries;
    std::vector<service::Mutation> mutations;  // mutation kinds only
    Clock::time_point deadline{};
    bool has_deadline = false;
  };
  struct Completion {
    int conn_fd = -1;
    uint64_t conn_gen = 0;
    std::vector<uint8_t> frame;
  };

  void EventLoop();
  void DispatchLoop();
  void HandleAccept();
  void HandleConnectionEvent(int fd, uint32_t events);
  void HandleFrame(Connection* conn, const Connection::Frame& frame);
  // Returns false when the connection had to be closed (write overflow) —
  // `conn` is dangling in that case.
  bool QueueError(Connection* conn, uint64_t request_id, uint16_t version,
                  WireError code, const std::string& message);
  void ProcessCompletions();
  void FlushWrites(Connection* conn);
  void UpdateEpollInterest(Connection* conn);
  void CloseConnection(int fd);
  void BeginDrain();
  bool DrainComplete();
  void FinishShutdown();

  // Registry-backed serving counters (mbr_net_* series). The raw-pointer
  // handles are stable for the registry's lifetime.
  struct Metrics {
    obs::Counter* accepted = nullptr;
    obs::Counter* refused = nullptr;
    obs::Counter* closed = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* shed_overload = nullptr;
    obs::Counter* shed_deadline = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* bytes_read = nullptr;
    obs::Counter* bytes_written = nullptr;
    obs::Histogram* recommend_latency_us = nullptr;
    obs::Histogram* batch_latency_us = nullptr;
    obs::Histogram* mutate_latency_us = nullptr;
    obs::Histogram* partial_latency_us = nullptr;
  };

  service::QueryEngine* engine_;
  ServerConfig config_;
  obs::Registry* registry_ = nullptr;
  Metrics metrics_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int stop_event_fd_ = -1;
  int completion_event_fd_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;

  std::thread event_thread_;
  std::vector<std::thread> dispatchers_;
  std::mutex join_mu_;

  // Event-loop-owned state.
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::unordered_map<int, bool> read_shutdown_;  // EOF seen from peer
  uint64_t next_gen_ = 1;
  bool draining_ = false;
  bool loop_done_ = false;
  Clock::time_point drain_start_{};

  // Dispatch queue (event loop -> dispatchers).
  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;
  std::deque<PendingRequest> dispatch_queue_;
  bool dispatch_stop_ = false;

  // Completion queue (dispatchers -> event loop).
  std::mutex completion_mu_;
  std::vector<Completion> completions_;

  std::atomic<bool> running_{false};
  // Admission-control state (compared against max_inflight on the event
  // loop); the registry counters above are monotonic and can serve stats
  // but not this bound, which must read-modify-write.
  std::atomic<uint32_t> inflight_{0};
};

}  // namespace mbr::net

#endif  // MBR_NET_SERVER_H_
