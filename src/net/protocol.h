#ifndef MBR_NET_PROTOCOL_H_
#define MBR_NET_PROTOCOL_H_

// Versioned length-prefixed binary wire protocol for the serving subsystem.
//
// Every message on the wire is one frame:
//
//   frame  := magic:u32 ("MBW1") version:u16 kind:u16
//             request_id:u64 payload_len:u32 payload_crc:u32
//             payload[payload_len]
//
// 24 header bytes, little-endian throughout (same host assumption as
// util/serde, statically asserted there). The CRC32 (util::serde::Crc32)
// covers the payload only; the header fields are each individually
// validated, so a flipped header byte is caught by the magic/version/kind/
// length checks and a flipped payload byte by the CRC — before any payload
// field is interpreted.
//
// Decoding follows the util/serde bounded-read discipline: a PayloadReader
// never reads past the frame's declared payload, every array length is
// validated against both a semantic bound (WireLimits) and the bytes
// actually present before anything is allocated, and every failure is a
// util::Status — a malformed, truncated, or hostile frame yields a clean
// error reply or connection close, never UB
// (tests/net_corruption_test.cc holds a live server to that).
//
// Versioning/compat: kProtocolVersion is bumped on any layout change and
// the frame header carries the version its payload was encoded with.
// Version history:
//   v1 — initial protocol (PR 3): RECOMMEND = user/topic/top_n.
//   v2 — RECOMMEND/RECOMMEND_BATCH gain deadline_ms + exclude list, STATS
//        gains deadline_exceeded, new METRICS op (Prometheus exposition).
//   v3 — live graph mutation: new FOLLOW/UNFOLLOW/RELABEL ops answered by
//        MUTATE_ACK (applied/rejected counts + the graph epoch after the
//        batch), and RESULT/RESULT_BATCH carry the graph epoch each ranking
//        was computed under (per-list in the batch: two queries of one
//        batch may legitimately observe different epochs).
//   v4 — partitioned serving (DESIGN.md §6.7): shard-scoped
//        RECOMMEND_PARTIAL answered by PARTIAL_RESULT (the home shard's
//        exploration records plus the stored lists of locally-homed
//        landmarks, per Prop. 4's decomposition), LANDMARK_FETCH answered
//        by LANDMARK_VECTORS (stored lists by landmark id, so only
//        landmark contributions cross shard boundaries), RESULT/
//        RESULT_BATCH gain a coordinator trailer (partial flag +
//        shards answered/total), and STATS gains the coordinator rollup
//        (shards_total/shards_up).
//   v5 — degradation ladder (DESIGN.md §6.8): RESULT/RESULT_BATCH carry a
//        served_tier byte right after the graph epoch (per-list in the
//        batch — queries of one batch may serve at different tiers), and
//        STATS appends the per-tier serving counters
//        (tier_exact/tier_approx/tier_stale/degraded).
// Servers accept any version in [kMinProtocolVersion, kProtocolVersion],
// decode payloads by the frame's declared version, and echo that version
// on the reply — a v1 client keeps working against a v5 server. Versions
// outside the window get ERROR (UNSUPPORTED_VERSION) naming both; ops
// newer than the frame's version (METRICS below v2, mutations below v3,
// shard ops below v4) get ERROR (UNKNOWN_KIND).

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "service/serving_stats.h"
#include "util/status.h"
#include "util/top_k.h"

namespace mbr::net {

// "MBW1" when the little-endian u32 is viewed as bytes.
inline constexpr uint32_t kFrameMagic = 0x3157424DU;
inline constexpr uint16_t kProtocolVersion = 5;
// Oldest version still decoded; replies are encoded with the request's
// version so old clients never see fields they don't know.
inline constexpr uint16_t kMinProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 24;

enum class MessageKind : uint16_t {
  // Requests.
  kPing = 1,
  kRecommend = 2,
  kRecommendBatch = 3,
  kStats = 4,
  kShutdown = 5,
  kMetrics = 6,  // v2+: Prometheus text exposition of the server registry
  // v3+: live graph mutations; each frame is one ordered batch of records,
  // answered with MUTATE_ACK after the batch has been applied (or ERROR if
  // the payload is malformed — a malformed frame never mutates the graph).
  kFollow = 7,
  kUnfollow = 8,
  kRelabel = 9,
  // v4+: shard-scoped ops used by the coordinator tier (src/coord). A
  // RECOMMEND_PARTIAL carries an ordinary RECOMMEND payload and asks the
  // user's home shard for the Prop.-4 decomposition of the query instead
  // of a merged ranking; LANDMARK_FETCH asks a shard for the stored lists
  // of landmarks it homes.
  kRecommendPartial = 10,
  kLandmarkFetch = 11,
  // Replies.
  kPong = 64,
  kResult = 65,
  kResultBatch = 66,
  kStatsResult = 67,
  kShutdownAck = 68,
  kError = 69,
  kOverloaded = 70,
  kMetricsResult = 71,  // v2+
  kMutateAck = 72,      // v3+
  kPartialResult = 73,     // v4+
  kLandmarkVectors = 74,   // v4+
};

const char* MessageKindName(MessageKind kind);
bool IsRequestKind(MessageKind kind);
bool IsReplyKind(MessageKind kind);
// FOLLOW / UNFOLLOW / RELABEL.
bool IsMutationKind(MessageKind kind);

// Decode-side bounds. Both peers use the same limits so a reply the server
// is willing to send is a reply the client is willing to parse.
struct WireLimits {
  uint32_t max_payload_bytes = 1u << 20;  // frame payload cap
  uint32_t max_batch = 4096;              // queries per RECOMMEND_BATCH
  uint32_t max_list = 4096;               // entries per ranked list / top_n
  uint32_t max_error_msg = 1024;          // bytes of ERROR message text
  uint32_t max_exclude = 4096;            // v2: ids per exclusion list
  uint32_t max_mutations = 4096;          // v3: records per mutation frame
  uint32_t max_partial = 1u << 16;        // v4: records per PARTIAL_RESULT
};

struct FrameHeader {
  uint16_t version = 0;
  MessageKind kind = MessageKind::kPing;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

// Appends one complete frame (header + payload) to `out`. `version` is
// stamped into the header and must match how `payload` was encoded.
void AppendFrame(MessageKind kind, uint64_t request_id,
                 std::span<const uint8_t> payload, std::vector<uint8_t>* out,
                 uint16_t version = kProtocolVersion);

// Incremental header parse over a receive buffer.
enum class HeaderParse {
  kOk,        // *out filled; frame payload follows
  kNeedMore,  // fewer than kFrameHeaderBytes available
  kMalformed  // bad magic or payload_len over the limit: close the stream
};
// Only framing-level properties are checked here (magic, length cap).
// Version and kind are surfaced in *out so the caller can still answer
// with a typed ERROR that echoes the request id.
HeaderParse ParseFrameHeader(std::span<const uint8_t> buf,
                             const WireLimits& limits, FrameHeader* out);

// Verifies the payload CRC declared in `header`.
util::Status VerifyPayloadCrc(const FrameHeader& header,
                              std::span<const uint8_t> payload);

// ---------------------------------------------------------------------------
// Bounded payload cursor (serde discipline, frame-local: no sections).

class PayloadWriter {
 public:
  void PutU8(uint8_t v) { PutPod(v); }
  void PutU16(uint16_t v) { PutPod(v); }
  void PutU32(uint32_t v) { PutPod(v); }
  void PutU64(uint64_t v) { PutPod(v); }
  void PutDouble(double v) { PutPod(v); }
  void PutString(const std::string& s);  // u32 length prefix + bytes

  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  template <typename T>
  void PutPod(T v) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }
  std::vector<uint8_t> buf_;
};

class PayloadReader {
 public:
  explicit PayloadReader(std::span<const uint8_t> data) : data_(data) {}

  util::Status ReadU8(uint8_t* out) { return ReadPod(out); }
  util::Status ReadU16(uint16_t* out) { return ReadPod(out); }
  util::Status ReadU32(uint32_t* out) { return ReadPod(out); }
  util::Status ReadU64(uint64_t* out) { return ReadPod(out); }
  util::Status ReadDouble(double* out) { return ReadPod(out); }
  // Length-prefixed string, length validated against `max_len` AND the
  // bytes actually remaining before the allocation.
  util::Status ReadString(std::string* out, uint32_t max_len);

  size_t remaining() const { return data_.size() - pos_; }
  // Trailing unread bytes are a schema mismatch, same as serde's
  // ExitSection rule.
  util::Status ExpectEnd() const;

 private:
  template <typename T>
  util::Status ReadPod(T* out) {
    if (remaining() < sizeof(T)) {
      return util::Status::InvalidArgument("payload truncated");
    }
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return util::Status::Ok();
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Typed payloads.

struct RecommendRequest {
  uint32_t user = 0;
  uint32_t topic = 0;
  uint32_t top_n = 10;
  // v2 fields; a v1 peer neither sends nor receives them. deadline_ms = 0
  // means "no client deadline" (the server still applies its own).
  uint32_t deadline_ms = 0;
  std::vector<uint32_t> exclude;
};

// Wire size of one ranked-list entry (id:u32 + score:f64); used to bound a
// request's worst-case reply against max_payload_bytes at admission.
inline constexpr size_t kResultEntryBytes = 12;

using RankedList = std::vector<util::ScoredId>;

// v4 coordinator trailer on RESULT / RESULT_BATCH: whether the reply was
// degraded to a partial merge (a shard was down/overloaded/late) and how
// many shards answered. The defaults describe a single-node reply, which
// is exactly what a plain server stamps when a v4 client asks it directly.
struct CoordTrailer {
  uint8_t partial = 0;
  uint16_t shards_answered = 1;
  uint16_t shards_total = 1;
};
// Wire size of the trailer (partial:u8 + answered:u16 + total:u16).
inline constexpr size_t kCoordTrailerBytes = 5;

// A decoded RESULT: the ranked list plus the graph epoch it was computed
// under (v3 field; 0 when decoded at v1/v2), the degradation-ladder tier
// that served it (v5 field, core::Tier numeric; 0 = exact when decoded
// below v5), and the coordinator trailer (v4 field; defaults when decoded
// at v1–v3).
struct ResultReply {
  RankedList entries;
  uint64_t graph_epoch = 0;
  uint8_t served_tier = 0;
  CoordTrailer coord;
};

// Highest core::Tier numeric value a v5 served_tier byte may carry;
// decoders reject anything above it.
inline constexpr uint8_t kMaxServedTier = 2;

// Error codes carried in ERROR replies; a superset mapping of
// util::StatusCode plus protocol-specific conditions.
enum class WireError : uint32_t {
  kInvalidArgument = 1,
  kBadFrame = 2,            // payload CRC mismatch or undecodable payload
  kUnsupportedVersion = 3,  // peer speaks a different kProtocolVersion
  kUnknownKind = 4,
  kDeadlineExceeded = 5,
  kShuttingDown = 6,
  kInternal = 7,
};
const char* WireErrorName(WireError e);

struct ErrorReply {
  WireError code = WireError::kInternal;
  std::string message;
};

// RECOMMEND / RECOMMEND_BATCH are version-gated: v1 payloads carry
// user/topic/top_n only, v2 appends deadline_ms and the exclusion list.
// Encoding at v1 drops the v2 fields (callers that need them must speak
// v2); decoding fills defaults for them.
std::vector<uint8_t> EncodeRecommend(const RecommendRequest& req,
                                     uint16_t version = kProtocolVersion);
util::Status DecodeRecommend(std::span<const uint8_t> payload,
                             const WireLimits& limits, uint16_t version,
                             RecommendRequest* out);

std::vector<uint8_t> EncodeRecommendBatch(
    const std::vector<RecommendRequest>& reqs,
    uint16_t version = kProtocolVersion);
util::Status DecodeRecommendBatch(std::span<const uint8_t> payload,
                                  const WireLimits& limits, uint16_t version,
                                  std::vector<RecommendRequest>* out);

// RESULT / RESULT_BATCH are version-gated: v3 prepends the graph epoch the
// ranking was computed under (per-list in the batch), v4 appends the
// coordinator trailer after the list(s), v5 inserts the served_tier byte
// between the epoch and the list (per-list in the batch). Encoding at
// v1/v2 drops the epoch (and below v5 the tier); decoding fills 0 for
// them (and defaults for the trailer below v4).
std::vector<uint8_t> EncodeResult(const RankedList& list,
                                  uint64_t graph_epoch = 0,
                                  uint16_t version = kProtocolVersion,
                                  const CoordTrailer& coord = {},
                                  uint8_t served_tier = 0);
util::Status DecodeResult(std::span<const uint8_t> payload,
                          const WireLimits& limits, uint16_t version,
                          RankedList* out, uint64_t* graph_epoch = nullptr,
                          CoordTrailer* coord = nullptr,
                          uint8_t* served_tier = nullptr);

// `epochs` / `tiers` must be empty (all zero) or parallel to `lists`. The
// trailer is per-frame: one batch that was partially merged marks the
// whole frame.
std::vector<uint8_t> EncodeResultBatch(const std::vector<RankedList>& lists,
                                       std::span<const uint64_t> epochs = {},
                                       uint16_t version = kProtocolVersion,
                                       const CoordTrailer& coord = {},
                                       std::span<const uint8_t> tiers = {});
util::Status DecodeResultBatch(std::span<const uint8_t> payload,
                               const WireLimits& limits, uint16_t version,
                               std::vector<RankedList>* out,
                               std::vector<uint64_t>* epochs = nullptr,
                               CoordTrailer* coord = nullptr,
                               std::vector<uint8_t>* tiers = nullptr);

// ---------------------------------------------------------------------------
// v4 shard payloads (coordinator tier, DESIGN.md §6.7).
//
// A RECOMMEND_PARTIAL request reuses the RECOMMEND payload (user / topic /
// top_n / deadline / exclude; the shard only interprets user, topic and
// deadline — ranking policy stays on the router). The PARTIAL_RESULT reply
// is the home shard's half of Prop. 4: every node reached by the pruned
// depth-limited exploration, in first-reached order, with its σ(u,v,t)
// (and topo_αβ(u,v) when v is a landmark), plus the stored recommendation
// lists of the landmarks met that this shard homes, inlined in record
// order. Landmarks met but homed elsewhere carry no list — the router
// fetches those via LANDMARK_FETCH from their home shards. Replaying the
// records (and lists) in wire order reproduces the single-node combine
// loop addition-for-addition, which is what makes routed replies
// byte-identical to single-node ones.

// PartialRecord.flags bits.
inline constexpr uint8_t kPartialFlagLandmark = 1;  // node is a landmark
inline constexpr uint8_t kPartialFlagInline = 2;    // its list is inlined

struct PartialRecord {
  uint32_t node = 0;
  uint8_t flags = 0;
  double sigma = 0.0;          // σ(u, node, t)
  double topo_alphabeta = 0.0; // topo_αβ(u, node); only sent for landmarks
};

// One stored landmark list: entries mirror landmark::StoredRec order.
struct LandmarkEntry {
  uint32_t node = 0;
  double sigma = 0.0;      // σ(λ, node, t)
  double topo_beta = 0.0;  // topo_β(λ, node)
};
struct LandmarkList {
  uint32_t landmark = 0;
  std::vector<LandmarkEntry> entries;
};

struct PartialReply {
  uint64_t graph_epoch = 0;
  std::vector<PartialRecord> records;  // first-reached order
  std::vector<LandmarkList> lists;     // inline lists, record order
};

struct LandmarkFetchRequest {
  uint32_t topic = 0;
  std::vector<uint32_t> landmarks;
};

struct LandmarkVectorsReply {
  uint64_t graph_epoch = 0;
  std::vector<LandmarkList> lists;  // requested-id order
};

std::vector<uint8_t> EncodePartialReply(const PartialReply& reply);
util::Status DecodePartialReply(std::span<const uint8_t> payload,
                                const WireLimits& limits, PartialReply* out);

std::vector<uint8_t> EncodeLandmarkFetch(const LandmarkFetchRequest& req);
util::Status DecodeLandmarkFetch(std::span<const uint8_t> payload,
                                 const WireLimits& limits,
                                 LandmarkFetchRequest* out);

std::vector<uint8_t> EncodeLandmarkVectors(const LandmarkVectorsReply& reply);
util::Status DecodeLandmarkVectors(std::span<const uint8_t> payload,
                                   const WireLimits& limits,
                                   LandmarkVectorsReply* out);

// ---------------------------------------------------------------------------
// v3 mutation payloads.
//
// FOLLOW / RELABEL record: src:u32 dst:u32 labels:u64 (TopicSet bits).
// UNFOLLOW record:         src:u32 dst:u32 (labels omitted on the wire).
// Frame payload: count:u32 then `count` records; count must be in
// [1, max_mutations] and match the bytes present.

struct MutationRecord {
  uint32_t src = 0;
  uint32_t dst = 0;
  uint64_t labels = 0;  // ignored for UNFOLLOW
};

struct MutateAck {
  uint32_t applied = 0;
  uint32_t rejected = 0;
  uint64_t graph_epoch = 0;  // engine epoch after the batch
};

std::vector<uint8_t> EncodeMutation(MessageKind kind,
                                    const std::vector<MutationRecord>& records);
util::Status DecodeMutation(std::span<const uint8_t> payload,
                            const WireLimits& limits, MessageKind kind,
                            std::vector<MutationRecord>* out);

std::vector<uint8_t> EncodeMutateAck(const MutateAck& ack);
util::Status DecodeMutateAck(std::span<const uint8_t> payload, MutateAck* out);

// STATS is version-gated: v2 appends deadline_exceeded, v4 appends the
// coordinator rollup (shards_total / shards_up), v5 appends the per-tier
// serving counters (tier_exact / tier_approx / tier_stale / degraded).
std::vector<uint8_t> EncodeStats(const service::StatsSnapshot& s,
                                 uint16_t version = kProtocolVersion);
util::Status DecodeStats(std::span<const uint8_t> payload, uint16_t version,
                         service::StatsSnapshot* out);

// METRICS_RESULT carries the Prometheus exposition text (v2+). The text
// is bounded by max_payload_bytes like any other payload.
std::vector<uint8_t> EncodeMetricsResult(const std::string& text);
util::Status DecodeMetricsResult(std::span<const uint8_t> payload,
                                 const WireLimits& limits, std::string* out);

std::vector<uint8_t> EncodeError(const ErrorReply& err);
util::Status DecodeError(std::span<const uint8_t> payload,
                         const WireLimits& limits, ErrorReply* out);

// Converts a received ERROR reply into the util::Status a client returns.
util::Status ErrorReplyToStatus(const ErrorReply& err);

}  // namespace mbr::net

#endif  // MBR_NET_PROTOCOL_H_
