#ifndef MBR_NET_CLIENT_H_
#define MBR_NET_CLIENT_H_

// Blocking client for the mbr wire protocol (net/protocol.h).
//
// One Client owns one TCP connection and runs one request/reply round trip
// at a time (it is not thread-safe; use one Client per thread). Both the
// connect and each request carry explicit timeouts, enforced with poll() so
// a dead or stalled server surfaces as DEADLINE_EXCEEDED rather than a
// hang. Typed wrappers decode the reply payloads with the same bounded
// readers the server uses; an ERROR reply maps onto util::Status via
// ErrorReplyToStatus, and an OVERLOADED shed maps to
// StatusCode::kUnavailable so callers can retry-with-backoff on exactly
// that code.

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "service/serving_stats.h"
#include "util/status.h"

namespace mbr::net {

struct ClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint32_t connect_timeout_ms = 2000;
  uint32_t request_timeout_ms = 10000;
  // Protocol version to speak, in [kMinProtocolVersion, kProtocolVersion].
  // Drop to 1 to talk like a pre-v2 client (no deadline_ms/exclude on the
  // wire, no METRICS op); the server echoes whichever version we send.
  uint16_t protocol_version = kProtocolVersion;
  WireLimits limits;

  // Connect retry policy: up to `connect_attempts` tries, re-attempted only
  // on kUnavailable (refused/reset — the cases where a restarting server
  // will come back). Other failures (bad address, timeout) surface
  // immediately. Between attempt k and k+1 the client sleeps
  // BackoffDelayMs(config, k): exponential doubling from
  // backoff_initial_ms capped at backoff_max_ms, plus a deterministic
  // jitter in [0, backoff_jitter_ms) derived from backoff_seed — bounded,
  // reproducible, and unit-testable (tests/net_client_retry_test.cc).
  uint32_t connect_attempts = 1;  // total attempts; 1 = no retry
  uint32_t backoff_initial_ms = 50;
  uint32_t backoff_max_ms = 2000;
  uint32_t backoff_jitter_ms = 0;
  uint64_t backoff_seed = 0x9e3779b97f4a7c15ULL;
};

// The delay slept after failed attempt `attempt` (0-based). Pure function
// of the config — the schedule can be asserted exactly in tests.
uint32_t BackoffDelayMs(const ClientConfig& config, uint32_t attempt);

class Client {
 public:
  // Establishes the TCP connection (bounded by connect_timeout_ms).
  static util::Result<Client> Connect(const ClientConfig& config);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // The ranked top-n for (user, topic); empty list is a valid answer.
  util::Result<RankedList> Recommend(uint32_t user, uint32_t topic,
                                     uint32_t top_n);
  // Full request form: deadline_ms and exclude travel on the wire when the
  // client speaks v2 (they are silently dropped at v1).
  util::Result<RankedList> Recommend(const RecommendRequest& req);
  // Like Recommend, but also surfaces the graph epoch the ranking was
  // computed under (v3 field; 0 when the client speaks v1/v2) and the
  // coordinator trailer (v4 field; defaults when speaking v1-v3).
  util::Result<ResultReply> RecommendEx(const RecommendRequest& req);
  // Order-preserving batched variant (one RECOMMEND_BATCH frame).
  util::Result<std::vector<RankedList>> RecommendBatch(
      const std::vector<RecommendRequest>& queries);
  // Epoch-carrying batched variant.
  util::Result<std::vector<ResultReply>> RecommendBatchEx(
      const std::vector<RecommendRequest>& queries);
  // One mutation batch (v3+ only; kind selects FOLLOW/UNFOLLOW/RELABEL).
  // The ack counts applied vs rejected records and carries the graph epoch
  // after the batch.
  util::Result<MutateAck> Mutate(MessageKind kind,
                                 const std::vector<MutationRecord>& records);
  util::Result<MutateAck> Follow(const std::vector<MutationRecord>& records);
  util::Result<MutateAck> Unfollow(
      const std::vector<MutationRecord>& records);
  util::Result<MutateAck> Relabel(const std::vector<MutationRecord>& records);
  // Shard-scoped half of a coordinator query (v4+ only): the decomposed
  // exploration records for req.user plus the inline stored lists of the
  // landmarks homed on the answering shard.
  util::Result<PartialReply> RecommendPartial(const RecommendRequest& req);
  // Stored lists of the given landmarks for one topic (v4+ only). The
  // answering shard returns lists only for landmarks it homes.
  util::Result<LandmarkVectorsReply> FetchLandmarks(
      uint32_t topic, const std::vector<uint32_t>& landmarks);
  util::Result<service::StatsSnapshot> Stats();
  // Prometheus text exposition of the server's registry (v2+ only).
  util::Result<std::string> Metrics();
  util::Status Ping();
  // Asks the server to drain and waits for the acknowledgement.
  util::Status Shutdown();

 private:
  struct Reply {
    FrameHeader header;
    std::vector<uint8_t> payload;
  };

  Client(int fd, const ClientConfig& config) : fd_(fd), config_(config) {}

  // One TCP connect attempt (no retry).
  static util::Result<Client> ConnectOnce(const ClientConfig& config);

  util::Result<Reply> RoundTrip(MessageKind kind,
                                std::span<const uint8_t> payload);

  int fd_ = -1;
  ClientConfig config_;
  uint64_t next_request_id_ = 1;
};

}  // namespace mbr::net

#endif  // MBR_NET_CLIENT_H_
