#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <thread>

namespace mbr::net {

namespace {

using Clock = std::chrono::steady_clock;

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

int RemainingMs(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

// Waits until `fd` is ready for `events` or the deadline passes.
util::Status PollFor(int fd, short events, Clock::time_point deadline,
                     const char* what) {
  for (;;) {
    pollfd p{fd, events, 0};
    int remaining = RemainingMs(deadline);
    if (remaining == 0) {
      return util::Status::DeadlineExceeded(std::string(what) + " timed out");
    }
    int r = ::poll(&p, 1, remaining);
    if (r > 0) return util::Status::Ok();
    if (r == 0) {
      return util::Status::DeadlineExceeded(std::string(what) + " timed out");
    }
    if (errno != EINTR) return util::Status::IoError(Errno("poll"));
  }
}

util::Status SendAll(int fd, std::span<const uint8_t> bytes,
                     Clock::time_point deadline) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      MBR_RETURN_IF_ERROR(PollFor(fd, POLLOUT, deadline, "send"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return util::Status::IoError(Errno("send"));
  }
  return util::Status::Ok();
}

util::Status RecvExactly(int fd, uint8_t* out, size_t size,
                         Clock::time_point deadline) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::recv(fd, out + off, size - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return util::Status::Unavailable("connection closed by server");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      MBR_RETURN_IF_ERROR(PollFor(fd, POLLIN, deadline, "recv"));
      continue;
    }
    if (errno == EINTR) continue;
    return util::Status::IoError(Errno("recv"));
  }
  return util::Status::Ok();
}

}  // namespace

uint32_t BackoffDelayMs(const ClientConfig& config, uint32_t attempt) {
  // Exponential doubling from the initial delay, saturating at the cap
  // (the loop breaks on reaching it, so large attempt numbers can't
  // overflow the doubling).
  uint64_t base = config.backoff_initial_ms;
  for (uint32_t i = 0; i < attempt && base < config.backoff_max_ms; ++i) {
    base *= 2;
  }
  base = std::min<uint64_t>(base, config.backoff_max_ms);
  if (config.backoff_jitter_ms > 0) {
    // splitmix64-style mix of (seed, attempt): deterministic, spread.
    uint64_t x = config.backoff_seed + 0x9e3779b97f4a7c15ULL * (attempt + 1);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    base += x % config.backoff_jitter_ms;
  }
  return static_cast<uint32_t>(
      std::min<uint64_t>(base, std::numeric_limits<uint32_t>::max()));
}

util::Result<Client> Client::Connect(const ClientConfig& config) {
  const uint32_t attempts = std::max<uint32_t>(1, config.connect_attempts);
  util::Status last = util::Status::Unavailable("no connect attempt made");
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffDelayMs(config, attempt - 1)));
    }
    auto client = ConnectOnce(config);
    if (client.ok()) return client;
    last = client.status();
    // Only kUnavailable (refused/reset) is retryable; a bad address or a
    // connect timeout will not improve with repetition.
    if (last.code() != util::StatusCode::kUnavailable) return last;
  }
  return last;
}

util::Result<Client> Client::ConnectOnce(const ClientConfig& config) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return util::Status::IoError(Errno("socket"));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument("bad host address: " + config.host);
  }

  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config.connect_timeout_ms);
  int r = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (r != 0 && errno != EINPROGRESS) {
    util::Status st = util::Status::Unavailable(Errno("connect"));
    ::close(fd);
    return st;
  }
  if (r != 0) {
    util::Status st = PollFor(fd, POLLOUT, deadline, "connect");
    if (!st.ok()) {
      ::close(fd);
      return st;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return util::Status::Unavailable(std::string("connect: ") +
                                       std::strerror(err));
    }
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd, config);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      config_(std::move(other.config_)),
      next_request_id_(other.next_request_id_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    config_ = std::move(other.config_);
    next_request_id_ = other.next_request_id_;
    other.fd_ = -1;
  }
  return *this;
}

util::Result<Client::Reply> Client::RoundTrip(
    MessageKind kind, std::span<const uint8_t> payload) {
  if (fd_ < 0) return util::Status::FailedPrecondition("client moved-from");
  const uint64_t request_id = next_request_id_++;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.request_timeout_ms);

  std::vector<uint8_t> frame;
  AppendFrame(kind, request_id, payload, &frame, config_.protocol_version);
  MBR_RETURN_IF_ERROR(SendAll(fd_, frame, deadline));

  uint8_t header_buf[kFrameHeaderBytes];
  MBR_RETURN_IF_ERROR(
      RecvExactly(fd_, header_buf, kFrameHeaderBytes, deadline));
  Reply reply;
  switch (ParseFrameHeader({header_buf, kFrameHeaderBytes}, config_.limits,
                           &reply.header)) {
    case HeaderParse::kOk:
      break;
    case HeaderParse::kNeedMore:  // unreachable: we read exactly 24 bytes
    case HeaderParse::kMalformed:
      return util::Status::Internal("malformed reply frame from server");
  }
  // The server echoes the request's version; anything else means the
  // reply payload would be decoded with the wrong layout.
  if (reply.header.version != config_.protocol_version &&
      reply.header.kind != MessageKind::kError) {
    return util::Status::Internal(
        "server replied with protocol v" +
        std::to_string(reply.header.version) + ", client speaks v" +
        std::to_string(config_.protocol_version));
  }
  reply.payload.resize(reply.header.payload_len);
  MBR_RETURN_IF_ERROR(RecvExactly(fd_, reply.payload.data(),
                                  reply.payload.size(), deadline));
  MBR_RETURN_IF_ERROR(VerifyPayloadCrc(reply.header, reply.payload));
  if (reply.header.request_id != request_id) {
    return util::Status::Internal("reply for request " +
                                  std::to_string(reply.header.request_id) +
                                  ", expected " + std::to_string(request_id));
  }

  if (reply.header.kind == MessageKind::kError) {
    ErrorReply err;
    MBR_RETURN_IF_ERROR(DecodeError(reply.payload, config_.limits, &err));
    return ErrorReplyToStatus(err);
  }
  if (reply.header.kind == MessageKind::kOverloaded) {
    return util::Status::Unavailable("server overloaded: request shed");
  }
  return reply;
}

util::Result<RankedList> Client::Recommend(uint32_t user, uint32_t topic,
                                           uint32_t top_n) {
  RecommendRequest req;
  req.user = user;
  req.topic = topic;
  req.top_n = top_n;
  return Recommend(req);
}

util::Result<RankedList> Client::Recommend(const RecommendRequest& req) {
  auto reply = RecommendEx(req);
  if (!reply.ok()) return reply.status();
  return std::move(reply.value().entries);
}

util::Result<ResultReply> Client::RecommendEx(const RecommendRequest& req) {
  auto reply = RoundTrip(MessageKind::kRecommend,
                         EncodeRecommend(req, config_.protocol_version));
  if (!reply.ok()) return reply.status();
  if (reply->header.kind != MessageKind::kResult) {
    return util::Status::Internal(
        std::string("unexpected reply kind ") +
        MessageKindName(reply->header.kind));
  }
  ResultReply out;
  MBR_RETURN_IF_ERROR(DecodeResult(reply->payload, config_.limits,
                                   config_.protocol_version, &out.entries,
                                   &out.graph_epoch, &out.coord,
                                   &out.served_tier));
  return out;
}

util::Result<std::vector<RankedList>> Client::RecommendBatch(
    const std::vector<RecommendRequest>& queries) {
  auto replies = RecommendBatchEx(queries);
  if (!replies.ok()) return replies.status();
  std::vector<RankedList> lists;
  lists.reserve(replies->size());
  for (ResultReply& r : replies.value()) {
    lists.push_back(std::move(r.entries));
  }
  return lists;
}

util::Result<std::vector<ResultReply>> Client::RecommendBatchEx(
    const std::vector<RecommendRequest>& queries) {
  auto reply = RoundTrip(
      MessageKind::kRecommendBatch,
      EncodeRecommendBatch(queries, config_.protocol_version));
  if (!reply.ok()) return reply.status();
  if (reply->header.kind != MessageKind::kResultBatch) {
    return util::Status::Internal(
        std::string("unexpected reply kind ") +
        MessageKindName(reply->header.kind));
  }
  std::vector<RankedList> lists;
  std::vector<uint64_t> epochs;
  std::vector<uint8_t> tiers;
  CoordTrailer coord;
  MBR_RETURN_IF_ERROR(DecodeResultBatch(reply->payload, config_.limits,
                                        config_.protocol_version, &lists,
                                        &epochs, &coord, &tiers));
  if (lists.size() != queries.size()) {
    return util::Status::Internal(
        "server answered " + std::to_string(lists.size()) + " lists for " +
        std::to_string(queries.size()) + " queries");
  }
  std::vector<ResultReply> out(lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    out[i].entries = std::move(lists[i]);
    out[i].graph_epoch = epochs[i];
    out[i].served_tier = tiers[i];
    out[i].coord = coord;  // per-frame trailer (see EncodeResultBatch)
  }
  return out;
}

util::Result<PartialReply> Client::RecommendPartial(
    const RecommendRequest& req) {
  if (config_.protocol_version < 4) {
    return util::Status::FailedPrecondition(
        "RECOMMEND_PARTIAL requires protocol v4; this client speaks v" +
        std::to_string(config_.protocol_version));
  }
  auto reply = RoundTrip(MessageKind::kRecommendPartial,
                         EncodeRecommend(req, config_.protocol_version));
  if (!reply.ok()) return reply.status();
  if (reply->header.kind != MessageKind::kPartialResult) {
    return util::Status::Internal(
        std::string("unexpected reply kind ") +
        MessageKindName(reply->header.kind));
  }
  PartialReply out;
  MBR_RETURN_IF_ERROR(
      DecodePartialReply(reply->payload, config_.limits, &out));
  return out;
}

util::Result<LandmarkVectorsReply> Client::FetchLandmarks(
    uint32_t topic, const std::vector<uint32_t>& landmarks) {
  if (config_.protocol_version < 4) {
    return util::Status::FailedPrecondition(
        "LANDMARK_FETCH requires protocol v4; this client speaks v" +
        std::to_string(config_.protocol_version));
  }
  LandmarkFetchRequest req;
  req.topic = topic;
  req.landmarks = landmarks;
  auto reply =
      RoundTrip(MessageKind::kLandmarkFetch, EncodeLandmarkFetch(req));
  if (!reply.ok()) return reply.status();
  if (reply->header.kind != MessageKind::kLandmarkVectors) {
    return util::Status::Internal(
        std::string("unexpected reply kind ") +
        MessageKindName(reply->header.kind));
  }
  LandmarkVectorsReply out;
  MBR_RETURN_IF_ERROR(
      DecodeLandmarkVectors(reply->payload, config_.limits, &out));
  return out;
}

util::Result<MutateAck> Client::Mutate(
    MessageKind kind, const std::vector<MutationRecord>& records) {
  if (!IsMutationKind(kind)) {
    return util::Status::InvalidArgument("not a mutation kind");
  }
  if (config_.protocol_version < 3) {
    return util::Status::FailedPrecondition(
        "mutation ops require protocol v3; this client speaks v" +
        std::to_string(config_.protocol_version));
  }
  auto reply = RoundTrip(kind, EncodeMutation(kind, records));
  if (!reply.ok()) return reply.status();
  if (reply->header.kind != MessageKind::kMutateAck) {
    return util::Status::Internal(
        std::string("unexpected reply kind ") +
        MessageKindName(reply->header.kind));
  }
  MutateAck ack;
  MBR_RETURN_IF_ERROR(DecodeMutateAck(reply->payload, &ack));
  return ack;
}

util::Result<MutateAck> Client::Follow(
    const std::vector<MutationRecord>& records) {
  return Mutate(MessageKind::kFollow, records);
}

util::Result<MutateAck> Client::Unfollow(
    const std::vector<MutationRecord>& records) {
  return Mutate(MessageKind::kUnfollow, records);
}

util::Result<MutateAck> Client::Relabel(
    const std::vector<MutationRecord>& records) {
  return Mutate(MessageKind::kRelabel, records);
}

util::Result<service::StatsSnapshot> Client::Stats() {
  auto reply = RoundTrip(MessageKind::kStats, {});
  if (!reply.ok()) return reply.status();
  if (reply->header.kind != MessageKind::kStatsResult) {
    return util::Status::Internal(
        std::string("unexpected reply kind ") +
        MessageKindName(reply->header.kind));
  }
  service::StatsSnapshot s;
  MBR_RETURN_IF_ERROR(
      DecodeStats(reply->payload, config_.protocol_version, &s));
  return s;
}

util::Result<std::string> Client::Metrics() {
  if (config_.protocol_version < 2) {
    return util::Status::FailedPrecondition(
        "METRICS requires protocol v2; this client speaks v" +
        std::to_string(config_.protocol_version));
  }
  auto reply = RoundTrip(MessageKind::kMetrics, {});
  if (!reply.ok()) return reply.status();
  if (reply->header.kind != MessageKind::kMetricsResult) {
    return util::Status::Internal(
        std::string("unexpected reply kind ") +
        MessageKindName(reply->header.kind));
  }
  std::string text;
  MBR_RETURN_IF_ERROR(
      DecodeMetricsResult(reply->payload, config_.limits, &text));
  return text;
}

util::Status Client::Ping() {
  auto reply = RoundTrip(MessageKind::kPing, {});
  if (!reply.ok()) return reply.status();
  if (reply->header.kind != MessageKind::kPong) {
    return util::Status::Internal("unexpected reply kind to PING");
  }
  return util::Status::Ok();
}

util::Status Client::Shutdown() {
  auto reply = RoundTrip(MessageKind::kShutdown, {});
  if (!reply.ok()) return reply.status();
  if (reply->header.kind != MessageKind::kShutdownAck) {
    return util::Status::Internal("unexpected reply kind to SHUTDOWN");
  }
  return util::Status::Ok();
}

}  // namespace mbr::net
