#ifndef MBR_NET_CONNECTION_H_
#define MBR_NET_CONNECTION_H_

// Per-connection read/write state machine for the epoll server.
//
// A Connection is owned and touched by the event-loop thread only —
// dispatcher threads never see it (they post encoded reply bytes through
// the server's completion queue, keyed by the connection's generation, and
// the event loop copies them in). That single-owner rule is what keeps the
// whole connection layer lock-free.
//
// Read side: bytes stream into `read_buf_`; Ingest() peels off complete
// frames. The buffer is capped at header + max_payload_bytes, so a peer
// cannot grow server memory by streaming an unbounded frame — the length
// field is validated (ParseFrameHeader) before any payload is buffered.
//
// Write side: encoded reply frames append to `write_buf_`; the event loop
// flushes opportunistically and arms EPOLLOUT only while bytes remain. A
// peer that stops reading eventually overflows the write cap and is
// closed — replies are shed rather than buffered without bound.

#include <cstdint>
#include <vector>

#include "net/protocol.h"
#include "util/status.h"

namespace mbr::net {

class Connection {
 public:
  struct Frame {
    FrameHeader header;
    std::vector<uint8_t> payload;
  };

  // `gen` is the server-unique generation used to route dispatcher
  // completions back to a connection that may have died meanwhile.
  Connection(int fd, uint64_t gen, const WireLimits& limits)
      : fd_(fd), gen_(gen), limits_(limits) {}

  int fd() const { return fd_; }
  uint64_t gen() const { return gen_; }

  // Appends freshly-read bytes and extracts every complete frame into
  // `out`. A framing-level violation (bad magic, oversized declared
  // payload) returns non-OK: the connection can no longer be trusted to
  // be frame-aligned and must be closed.
  util::Status Ingest(const uint8_t* data, size_t size,
                      std::vector<Frame>* out);

  // Queues one encoded reply frame, stamped with `version` (the server
  // echoes each request's protocol version). Returns false when the write
  // buffer cap is exceeded (slow consumer): the caller should close.
  bool QueueReply(MessageKind kind, uint64_t request_id,
                  std::span<const uint8_t> payload,
                  uint16_t version = kProtocolVersion);
  bool QueueEncoded(std::span<const uint8_t> frame_bytes);

  // Bytes waiting to be written (starting at the unflushed offset).
  std::span<const uint8_t> pending_write() const {
    return {write_buf_.data() + write_off_, write_buf_.size() - write_off_};
  }
  bool has_pending_write() const { return write_off_ < write_buf_.size(); }
  // Marks `n` pending bytes as flushed, compacting once drained.
  void ConsumeWritten(size_t n);

  // After this, the event loop closes the fd once the write buffer drains
  // (used for fatal protocol errors that still deserve an ERROR reply,
  // and for SHUTDOWN acks).
  void set_close_after_flush() { close_after_flush_ = true; }
  bool close_after_flush() const { return close_after_flush_; }

  // In-flight requests the dispatcher still owes this connection.
  void add_inflight() { ++inflight_; }
  void sub_inflight() { --inflight_; }
  uint32_t inflight() const { return inflight_; }

 private:
  int fd_;
  uint64_t gen_;
  WireLimits limits_;

  std::vector<uint8_t> read_buf_;
  std::vector<uint8_t> write_buf_;
  size_t write_off_ = 0;
  bool close_after_flush_ = false;
  uint32_t inflight_ = 0;
};

}  // namespace mbr::net

#endif  // MBR_NET_CONNECTION_H_
