#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/prometheus.h"
#include "util/timer.h"

namespace mbr::net {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Server::Server(service::QueryEngine& engine, const ServerConfig& config)
    : engine_(&engine), config_(config) {
  if (config_.max_inflight == 0) config_.max_inflight = 1;
  if (config_.dispatch_threads == 0) config_.dispatch_threads = 1;
  registry_ = config_.registry != nullptr ? config_.registry
                                          : &engine_->registry();
  metrics_.accepted = registry_->GetCounter(
      "mbr_net_connections_accepted_total", "Connections accepted.");
  metrics_.refused = registry_->GetCounter(
      "mbr_net_connections_refused_total",
      "Connections closed at accept (cap reached or draining).");
  metrics_.closed = registry_->GetCounter("mbr_net_connections_closed_total",
                                          "Connections fully closed.");
  metrics_.requests = registry_->GetCounter("mbr_net_requests_total",
                                            "Work requests admitted.");
  metrics_.shed_overload = registry_->GetCounter(
      "mbr_net_shed_overload_total", "Requests answered OVERLOADED.");
  metrics_.shed_deadline = registry_->GetCounter(
      "mbr_net_shed_deadline_total",
      "Requests whose deadline expired before a dispatcher picked them up.");
  metrics_.protocol_errors = registry_->GetCounter(
      "mbr_net_protocol_errors_total", "Malformed frames / bad payloads.");
  metrics_.bytes_read = registry_->GetCounter("mbr_net_bytes_read_total",
                                              "Payload bytes read from peers.");
  metrics_.bytes_written = registry_->GetCounter(
      "mbr_net_bytes_written_total", "Reply bytes written to peers.");
  metrics_.recommend_latency_us = registry_->GetHistogram(
      "mbr_net_request_latency_us",
      "Dispatcher latency per request in microseconds, by op.",
      {{"op", "recommend"}});
  metrics_.batch_latency_us = registry_->GetHistogram(
      "mbr_net_request_latency_us",
      "Dispatcher latency per request in microseconds, by op.",
      {{"op", "recommend_batch"}});
  metrics_.mutate_latency_us = registry_->GetHistogram(
      "mbr_net_request_latency_us",
      "Dispatcher latency per request in microseconds, by op.",
      {{"op", "mutate"}});
  metrics_.partial_latency_us = registry_->GetHistogram(
      "mbr_net_request_latency_us",
      "Dispatcher latency per request in microseconds, by op.",
      {{"op", "recommend_partial"}});
}

Server::~Server() {
  if (started_) {
    RequestStop();
    Wait();
  }
  for (int fd : {listen_fd_, epoll_fd_, stop_event_fd_, completion_event_fd_}) {
    if (fd >= 0) ::close(fd);
  }
}

util::Status Server::Start() {
  if (started_) return util::Status::FailedPrecondition("already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return util::Status::IoError(Errno("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("bad host address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return util::Status::IoError(Errno("bind"));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return util::Status::IoError(Errno("getsockname"));
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 128) != 0) {
    return util::Status::IoError(Errno("listen"));
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  stop_event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  completion_event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || stop_event_fd_ < 0 || completion_event_fd_ < 0) {
    return util::Status::IoError(Errno("epoll_create1/eventfd"));
  }
  for (int fd : {listen_fd_, stop_event_fd_, completion_event_fd_}) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return util::Status::IoError(Errno("epoll_ctl ADD"));
    }
  }

  started_ = true;
  running_.store(true, std::memory_order_release);
  for (uint32_t i = 0; i < config_.dispatch_threads; ++i) {
    dispatchers_.emplace_back([this] { DispatchLoop(); });
  }
  event_thread_ = std::thread([this] { EventLoop(); });
  return util::Status::Ok();
}

void Server::RequestStop() {
  if (stop_event_fd_ < 0) return;
  uint64_t v = 1;
  // write(2) is async-signal-safe; ignore the (impossible for eventfd)
  // short-write result.
  [[maybe_unused]] ssize_t n = ::write(stop_event_fd_, &v, sizeof(v));
}

void Server::Wait() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (event_thread_.joinable()) event_thread_.join();
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
}

service::StatsSnapshot Server::StatsNow() const {
  service::StatsSnapshot s = service::MakeStatsSnapshot(engine_->Stats());
  // A leaf server is its own one-shard "deployment"; the router overwrites
  // these with the real rollup in its STATS path.
  s.shards_total = 1;
  s.shards_up = 1;
  s.shed_overload = metrics_.shed_overload->Value();
  s.shed_deadline = metrics_.shed_deadline->Value();
  s.connections_accepted = metrics_.accepted->Value();
  const uint64_t acc = s.connections_accepted;
  const uint64_t closed = metrics_.closed->Value();
  s.connections_open = acc >= closed ? acc - closed : 0;
  return s;
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.accepted = metrics_.accepted->Value();
  c.refused = metrics_.refused->Value();
  c.closed = metrics_.closed->Value();
  c.requests = metrics_.requests->Value();
  c.shed_overload = metrics_.shed_overload->Value();
  c.shed_deadline = metrics_.shed_deadline->Value();
  c.protocol_errors = metrics_.protocol_errors->Value();
  return c;
}

// ---------------------------------------------------------------------------
// Event loop.

void Server::EventLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!loop_done_) {
    // Short timeout while draining so the drain-complete / grace checks run
    // even with no socket activity.
    const int timeout_ms = draining_ ? 20 : 500;
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd broken: unrecoverable
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        HandleAccept();
      } else if (fd == stop_event_fd_) {
        uint64_t v;
        while (::read(stop_event_fd_, &v, sizeof(v)) > 0) {
        }
        BeginDrain();
      } else if (fd == completion_event_fd_) {
        uint64_t v;
        while (::read(completion_event_fd_, &v, sizeof(v)) > 0) {
        }
        ProcessCompletions();
      } else {
        HandleConnectionEvent(fd, events[i].events);
      }
    }
    // Completions may have been signalled while we were busy in this batch.
    ProcessCompletions();
    if (draining_) {
      const bool grace_expired =
          Clock::now() >=
          drain_start_ + std::chrono::milliseconds(config_.drain_grace_ms);
      if (DrainComplete() || grace_expired) FinishShutdown();
    }
  }
  running_.store(false, std::memory_order_release);
}

void Server::HandleAccept() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient error: nothing to accept
    if (draining_ || conns_.size() >= config_.max_connections) {
      metrics_.refused->Increment();
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    metrics_.accepted->Increment();
    conns_[fd] =
        std::make_unique<Connection>(fd, next_gen_++, config_.limits);
    read_shutdown_[fd] = false;
  }
}

void Server::HandleConnectionEvent(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;  // already closed within this batch
  Connection* conn = it->second.get();

  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConnection(fd);
    return;
  }
  if (events & EPOLLOUT) {
    FlushWrites(conn);
    if (conns_.find(fd) == conns_.end()) return;  // closed by flush
  }
  if (!(events & EPOLLIN)) return;

  uint8_t buf[65536];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      metrics_.bytes_read->Increment(static_cast<uint64_t>(n));
      std::vector<Connection::Frame> frames;
      util::Status st = conn->Ingest(buf, static_cast<size_t>(n), &frames);
      if (!st.ok()) {
        // Framing is broken: the stream can't be re-aligned, so the reply
        // contract is "clean close".
        metrics_.protocol_errors->Increment();
        CloseConnection(fd);
        return;
      }
      for (const Connection::Frame& f : frames) {
        HandleFrame(conn, f);
        if (conns_.find(fd) == conns_.end()) return;  // closed mid-batch
      }
    } else if (n == 0) {
      // Peer half-closed. Finish what it is owed (queued replies and
      // in-flight requests), then close.
      read_shutdown_[fd] = true;
      conn->set_close_after_flush();
      if (!conn->has_pending_write() && conn->inflight() == 0) {
        CloseConnection(fd);
      } else {
        UpdateEpollInterest(conn);
      }
      return;
    } else {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(fd);
      return;
    }
  }
  FlushWrites(conn);
}

bool Server::QueueError(Connection* conn, uint64_t request_id,
                        uint16_t version, WireError code,
                        const std::string& message) {
  metrics_.protocol_errors->Increment();
  std::vector<uint8_t> payload = EncodeError({code, message});
  if (!conn->QueueReply(MessageKind::kError, request_id, payload, version)) {
    CloseConnection(conn->fd());
    return false;
  }
  return true;
}

void Server::HandleFrame(Connection* conn, const Connection::Frame& frame) {
  const FrameHeader& h = frame.header;
  if (h.version < kMinProtocolVersion || h.version > kProtocolVersion) {
    if (QueueError(conn, h.request_id, kProtocolVersion,
                   WireError::kUnsupportedVersion,
                   "server speaks protocol v" +
                       std::to_string(kMinProtocolVersion) + "-v" +
                       std::to_string(kProtocolVersion) + ", client sent v" +
                       std::to_string(h.version))) {
      conn->set_close_after_flush();
      FlushWrites(conn);
    }
    return;
  }
  if (util::Status st = VerifyPayloadCrc(h, frame.payload); !st.ok()) {
    QueueError(conn, h.request_id, h.version, WireError::kBadFrame,
               st.message());
    return;
  }

  switch (h.kind) {
    case MessageKind::kPing:
      if (!conn->QueueReply(MessageKind::kPong, h.request_id, {},
                            h.version)) {
        CloseConnection(conn->fd());
      }
      return;
    case MessageKind::kStats: {
      std::vector<uint8_t> payload = EncodeStats(StatsNow(), h.version);
      if (!conn->QueueReply(MessageKind::kStatsResult, h.request_id, payload,
                            h.version)) {
        CloseConnection(conn->fd());
      }
      return;
    }
    case MessageKind::kMetrics: {
      // v2+ op: render the whole registry (engine + net series) as
      // Prometheus text. Rendered inline on the event loop — exposition is
      // a rare, operator-driven request.
      if (h.version < 2) {
        QueueError(conn, h.request_id, h.version, WireError::kUnknownKind,
                   "METRICS requires protocol v2");
        return;
      }
      std::string text = obs::RenderPrometheus(*registry_);
      if (text.size() + 4 > config_.limits.max_payload_bytes) {
        text.resize(config_.limits.max_payload_bytes > 4
                        ? config_.limits.max_payload_bytes - 4
                        : 0);
        // Truncate at a line boundary so the exposition stays parseable.
        size_t nl = text.rfind('\n');
        text.resize(nl == std::string::npos ? 0 : nl + 1);
      }
      std::vector<uint8_t> payload = EncodeMetricsResult(text);
      if (!conn->QueueReply(MessageKind::kMetricsResult, h.request_id,
                            payload, h.version)) {
        CloseConnection(conn->fd());
      }
      return;
    }
    case MessageKind::kShutdown:
      if (!conn->QueueReply(MessageKind::kShutdownAck, h.request_id, {},
                            h.version)) {
        CloseConnection(conn->fd());
        return;
      }
      conn->set_close_after_flush();
      FlushWrites(conn);
      BeginDrain();
      return;
    case MessageKind::kFollow:
    case MessageKind::kUnfollow:
    case MessageKind::kRelabel:
      // v3+ ops; same gating shape as METRICS so a v1/v2 peer that never
      // learned these kinds sees the same error it would for any unknown
      // kind.
      if (h.version < 3) {
        QueueError(conn, h.request_id, h.version, WireError::kUnknownKind,
                   "mutation ops require protocol v3");
        return;
      }
      break;  // work requests, handled below
    case MessageKind::kRecommendPartial:
      // v4+ shard op; only a shard-configured server knows which users it
      // homes and which stored lists to inline.
      if (h.version < 4) {
        QueueError(conn, h.request_id, h.version, WireError::kUnknownKind,
                   "shard ops require protocol v4");
        return;
      }
      if (config_.shard_owned == nullptr || config_.shard_index == nullptr) {
        QueueError(conn, h.request_id, h.version, WireError::kInvalidArgument,
                   "RECOMMEND_PARTIAL requires a shard-configured server");
        return;
      }
      break;  // work request, handled below
    case MessageKind::kLandmarkFetch: {
      // v4+ shard op, answered inline on the event loop: shard serving is
      // read-only, so the restricted index and the epoch are stable and
      // the reply is a straight copy of stored lists.
      if (h.version < 4) {
        QueueError(conn, h.request_id, h.version, WireError::kUnknownKind,
                   "shard ops require protocol v4");
        return;
      }
      if (config_.shard_owned == nullptr || config_.shard_index == nullptr) {
        QueueError(conn, h.request_id, h.version, WireError::kInvalidArgument,
                   "LANDMARK_FETCH requires a shard-configured server");
        return;
      }
      LandmarkFetchRequest fetch;
      if (util::Status st =
              DecodeLandmarkFetch(frame.payload, config_.limits, &fetch);
          !st.ok()) {
        QueueError(conn, h.request_id, h.version, WireError::kBadFrame,
                   st.message());
        return;
      }
      if (fetch.topic >= engine_->num_topics()) {
        QueueError(conn, h.request_id, h.version, WireError::kInvalidArgument,
                   "topic " + std::to_string(fetch.topic) + " out of range");
        return;
      }
      LandmarkVectorsReply vectors;
      vectors.graph_epoch = engine_->params_epoch();
      for (uint32_t lm : fetch.landmarks) {
        if (lm >= config_.shard_owned->size() ||
            !config_.shard_index->IsLandmark(lm)) {
          QueueError(conn, h.request_id, h.version,
                     WireError::kInvalidArgument,
                     "node " + std::to_string(lm) + " is not a landmark");
          return;
        }
        // Landmarks homed elsewhere are silently skipped: the reply names
        // each list, so the router sees exactly which it got.
        if (!(*config_.shard_owned)[lm]) continue;
        LandmarkList list;
        list.landmark = lm;
        const std::vector<landmark::StoredRec>& stored =
            config_.shard_index->Recommendations(
                lm, static_cast<topics::TopicId>(fetch.topic));
        list.entries.reserve(stored.size());
        for (const landmark::StoredRec& rec : stored) {
          list.entries.push_back({rec.node, rec.sigma, rec.topo_beta});
        }
        vectors.lists.push_back(std::move(list));
      }
      std::vector<uint8_t> payload = EncodeLandmarkVectors(vectors);
      if (payload.size() > config_.limits.max_payload_bytes) {
        QueueError(conn, h.request_id, h.version, WireError::kInvalidArgument,
                   "landmark vectors reply would exceed the frame cap");
        return;
      }
      if (!conn->QueueReply(MessageKind::kLandmarkVectors, h.request_id,
                            payload, h.version)) {
        CloseConnection(conn->fd());
      }
      return;
    }
    case MessageKind::kRecommend:
    case MessageKind::kRecommendBatch:
      break;  // work requests, handled below
    default:
      QueueError(conn, h.request_id, h.version, WireError::kUnknownKind,
                 "unhandled message kind " +
                     std::to_string(static_cast<uint16_t>(h.kind)));
      return;
  }

  if (draining_) {
    QueueError(conn, h.request_id, h.version, WireError::kShuttingDown,
               "server is draining");
    return;
  }

  // Decode and validate against the engine's current bounds before
  // admission — QueryEngine treats out-of-range queries as hard
  // precondition violations, the wire layer must make them soft errors.
  PendingRequest req;
  req.conn_fd = conn->fd();
  req.conn_gen = conn->gen();
  req.request_id = h.request_id;
  req.version = h.version;
  req.kind = h.kind;
  if (IsMutationKind(h.kind)) {
    // Decode fully BEFORE touching the applier: a malformed mutation frame
    // is answered with BAD_FRAME and can never bump the graph epoch.
    std::vector<MutationRecord> records;
    if (util::Status st =
            DecodeMutation(frame.payload, config_.limits, h.kind, &records);
        !st.ok()) {
      QueueError(conn, h.request_id, h.version, WireError::kBadFrame,
                 st.message());
      return;
    }
    if (config_.applier == nullptr) {
      QueueError(conn, h.request_id, h.version, WireError::kInvalidArgument,
                 "server is read-only (mutations disabled)");
      return;
    }
    const service::MutationOp op =
        h.kind == MessageKind::kFollow     ? service::MutationOp::kFollow
        : h.kind == MessageKind::kUnfollow ? service::MutationOp::kUnfollow
                                           : service::MutationOp::kRelabel;
    req.mutations.reserve(records.size());
    for (const MutationRecord& rec : records) {
      service::Mutation m;
      m.op = op;
      m.src = rec.src;
      m.dst = rec.dst;
      m.labels = topics::TopicSet(rec.labels);
      req.mutations.push_back(m);
    }
    if (config_.request_deadline_ms > 0) {
      req.has_deadline = true;
      req.deadline = Clock::now() +
                     std::chrono::milliseconds(config_.request_deadline_ms);
    }
    uint32_t cur_inflight = inflight_.load(std::memory_order_relaxed);
    if (cur_inflight >= config_.max_inflight) {
      metrics_.shed_overload->Increment();
      if (!conn->QueueReply(MessageKind::kOverloaded, h.request_id, {},
                            h.version)) {
        CloseConnection(conn->fd());
      }
      return;
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);
    metrics_.requests->Increment();
    conn->add_inflight();
    {
      std::lock_guard<std::mutex> lock(dispatch_mu_);
      dispatch_queue_.push_back(std::move(req));
    }
    dispatch_cv_.notify_one();
    return;
  }
  std::vector<RecommendRequest> decoded;
  if (h.kind == MessageKind::kRecommend ||
      h.kind == MessageKind::kRecommendPartial) {
    RecommendRequest r;
    if (util::Status st =
            DecodeRecommend(frame.payload, config_.limits, h.version, &r);
        !st.ok()) {
      QueueError(conn, h.request_id, h.version, WireError::kBadFrame,
                 st.message());
      return;
    }
    decoded.push_back(std::move(r));
  } else {
    if (util::Status st = DecodeRecommendBatch(frame.payload, config_.limits,
                                               h.version, &decoded);
        !st.ok()) {
      QueueError(conn, h.request_id, h.version, WireError::kBadFrame,
                 st.message());
      return;
    }
  }
  // A reply the client's own frame cap would reject must never be
  // produced: bound the worst-case result payload up front. At v3 every
  // list additionally carries its 8-byte graph epoch; at v4 the frame
  // carries one coordinator trailer. A PARTIAL reply's size depends on
  // the exploration, not top_n — it is bounded after execution instead.
  if (h.kind != MessageKind::kRecommendPartial) {
    // v3 adds the 8-byte per-list epoch, v5 the per-list tier byte.
    const size_t per_list_overhead =
        h.version >= 5 ? 13 : h.version >= 3 ? 12 : 4;
    size_t reply_bytes = 4;  // list-count prefix
    if (h.version >= 4) reply_bytes += kCoordTrailerBytes;
    for (const RecommendRequest& r : decoded) {
      reply_bytes += per_list_overhead +
                     static_cast<size_t>(r.top_n) * kResultEntryBytes;
    }
    if (reply_bytes > config_.limits.max_payload_bytes) {
      QueueError(conn, h.request_id, h.version, WireError::kInvalidArgument,
                 "reply would exceed the " +
                     std::to_string(config_.limits.max_payload_bytes) +
                     "-byte frame payload cap");
      return;
    }
  }
  const uint32_t num_nodes = engine_->num_nodes();
  const uint32_t num_topics = engine_->num_topics();
  // The effective deadline is the tighter of the server-wide bound and the
  // client's per-request deadline_ms (v2 field; 0 = none either way).
  uint32_t deadline_ms = config_.request_deadline_ms;
  for (const RecommendRequest& r : decoded) {
    if (r.deadline_ms > 0 &&
        (deadline_ms == 0 || r.deadline_ms < deadline_ms)) {
      deadline_ms = r.deadline_ms;
    }
  }
  if (deadline_ms > 0) {
    req.has_deadline = true;
    req.deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  }
  req.queries.reserve(decoded.size());
  for (RecommendRequest& r : decoded) {
    if (r.user >= num_nodes || r.topic >= num_topics) {
      QueueError(conn, h.request_id, h.version, WireError::kInvalidArgument,
                 "query out of range: user " + std::to_string(r.user) +
                     " (nodes " + std::to_string(num_nodes) + "), topic " +
                     std::to_string(r.topic) + " (topics " +
                     std::to_string(num_topics) + ")");
      return;
    }
    service::Query q;
    q.user = r.user;
    q.topic = static_cast<topics::TopicId>(r.topic);
    q.top_n = r.top_n;
    q.exclude = std::move(r.exclude);
    if (req.has_deadline) q.deadline = req.deadline;
    req.queries.push_back(std::move(q));
  }
  // A partial exploration only makes sense on the user's home shard — the
  // halo guarantees byte-identity for owned users and nothing else.
  if (h.kind == MessageKind::kRecommendPartial &&
      !(*config_.shard_owned)[req.queries.front().user]) {
    QueueError(conn, h.request_id, h.version, WireError::kInvalidArgument,
               "user " + std::to_string(req.queries.front().user) +
                   " is not homed on shard " + std::to_string(config_.shard));
    return;
  }

  // Admission control: bounded in-flight, explicit shed beyond it.
  uint32_t cur = inflight_.load(std::memory_order_relaxed);
  if (cur >= config_.max_inflight) {
    metrics_.shed_overload->Increment();
    if (!conn->QueueReply(MessageKind::kOverloaded, h.request_id, {},
                          h.version)) {
      CloseConnection(conn->fd());
    }
    return;
  }
  inflight_.fetch_add(1, std::memory_order_relaxed);
  metrics_.requests->Increment();
  conn->add_inflight();
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    dispatch_queue_.push_back(std::move(req));
  }
  dispatch_cv_.notify_one();
}

void Server::ProcessCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    auto it = conns_.find(c.conn_fd);
    if (it == conns_.end() || it->second->gen() != c.conn_gen) {
      continue;  // connection died while the request was in flight
    }
    Connection* conn = it->second.get();
    conn->sub_inflight();
    if (!conn->QueueEncoded(c.frame)) {
      CloseConnection(c.conn_fd);
      continue;
    }
    FlushWrites(conn);
  }
}

void Server::FlushWrites(Connection* conn) {
  const int fd = conn->fd();
  while (conn->has_pending_write()) {
    std::span<const uint8_t> out = conn->pending_write();
    ssize_t n = ::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      metrics_.bytes_written->Increment(static_cast<uint64_t>(n));
      conn->ConsumeWritten(static_cast<size_t>(n));
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      CloseConnection(fd);
      return;
    }
  }
  if (conn->close_after_flush() && !conn->has_pending_write() &&
      conn->inflight() == 0) {
    CloseConnection(fd);
    return;
  }
  UpdateEpollInterest(conn);
}

void Server::UpdateEpollInterest(Connection* conn) {
  epoll_event ev{};
  ev.data.fd = conn->fd();
  ev.events = 0;
  if (!read_shutdown_[conn->fd()]) ev.events |= EPOLLIN;
  if (conn->has_pending_write()) ev.events |= EPOLLOUT;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &ev);
}

void Server::CloseConnection(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
  read_shutdown_.erase(fd);
  metrics_.closed->Increment();
}

void Server::BeginDrain() {
  if (draining_) return;
  draining_ = true;
  drain_start_ = Clock::now();
  // Closing the listen socket refuses new connections at the kernel.
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool Server::DrainComplete() {
  if (inflight_.load(std::memory_order_acquire) != 0) return false;
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    if (!dispatch_queue_.empty()) return false;
  }
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    if (!completions_.empty()) return false;
  }
  for (const auto& [fd, conn] : conns_) {
    if (conn->has_pending_write()) return false;
  }
  return true;
}

void Server::FinishShutdown() {
  // Final completion sweep so a reply that raced the checks is not lost
  // for connections that can still take it.
  ProcessCompletions();
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it != conns_.end()) FlushWrites(it->second.get());
    CloseConnection(fd);
  }
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    dispatch_stop_ = true;
    dispatch_queue_.clear();
  }
  dispatch_cv_.notify_all();
  loop_done_ = true;
}

// ---------------------------------------------------------------------------
// Dispatchers.

void Server::DispatchLoop() {
  for (;;) {
    PendingRequest req;
    {
      std::unique_lock<std::mutex> lock(dispatch_mu_);
      dispatch_cv_.wait(lock, [this] {
        return dispatch_stop_ || !dispatch_queue_.empty();
      });
      if (dispatch_queue_.empty()) return;  // stopping, queue drained
      req = std::move(dispatch_queue_.front());
      dispatch_queue_.pop_front();
    }

    std::vector<uint8_t> frame;
    if (req.has_deadline && Clock::now() > req.deadline) {
      metrics_.shed_deadline->Increment();
      std::vector<uint8_t> payload =
          EncodeError({WireError::kDeadlineExceeded,
                       "deadline expired before execution"});
      AppendFrame(MessageKind::kError, req.request_id, payload, &frame,
                  req.version);
    } else if (IsMutationKind(req.kind)) {
      util::WallTimer timer;
      const service::MutationOutcome outcome =
          config_.applier->Apply(req.mutations);
      MutateAck ack;
      ack.applied = outcome.applied;
      ack.rejected = outcome.rejected;
      ack.graph_epoch = outcome.graph_epoch;
      std::vector<uint8_t> payload = EncodeMutateAck(ack);
      AppendFrame(MessageKind::kMutateAck, req.request_id, payload, &frame,
                  req.version);
      metrics_.mutate_latency_us->Record(
          static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6));
    } else if (req.kind == MessageKind::kRecommendPartial) {
      util::WallTimer timer;
      const service::Query& q = req.queries.front();
      util::Result<service::QueryEngine::PartialExploration> partial =
          engine_->ExplorePartial(q);
      if (!partial.ok()) {
        const util::StatusCode code = partial.status().code();
        const WireError wire =
            code == util::StatusCode::kDeadlineExceeded
                ? WireError::kDeadlineExceeded
                : code == util::StatusCode::kInvalidArgument
                      ? WireError::kInvalidArgument
                      : WireError::kInternal;
        std::vector<uint8_t> payload =
            EncodeError({wire, partial.status().message()});
        AppendFrame(MessageKind::kError, req.request_id, payload, &frame,
                    req.version);
      } else {
        PartialReply reply;
        reply.graph_epoch = partial->graph_epoch;
        reply.records.reserve(partial->records.size());
        for (const landmark::DecomposedRecord& dr : partial->records) {
          PartialRecord pr;
          pr.node = dr.node;
          pr.sigma = dr.sigma;
          if (dr.is_landmark) {
            pr.flags |= kPartialFlagLandmark;
            pr.topo_alphabeta = dr.topo_alphabeta;
            if ((*config_.shard_owned)[dr.node]) {
              // Locally-homed landmark: ship its stored list inline so the
              // router's common case needs no second round trip.
              pr.flags |= kPartialFlagInline;
              LandmarkList list;
              list.landmark = dr.node;
              const std::vector<landmark::StoredRec>& stored =
                  config_.shard_index->Recommendations(dr.node, q.topic);
              list.entries.reserve(stored.size());
              for (const landmark::StoredRec& rec : stored) {
                list.entries.push_back({rec.node, rec.sigma, rec.topo_beta});
              }
              reply.lists.push_back(std::move(list));
            }
          }
          reply.records.push_back(pr);
        }
        if (reply.records.size() > config_.limits.max_partial) {
          std::vector<uint8_t> payload = EncodeError(
              {WireError::kInvalidArgument,
               "exploration reached " + std::to_string(reply.records.size()) +
                   " nodes, over the " +
                   std::to_string(config_.limits.max_partial) +
                   "-record partial cap"});
          AppendFrame(MessageKind::kError, req.request_id, payload, &frame,
                      req.version);
        } else {
          std::vector<uint8_t> payload = EncodePartialReply(reply);
          if (payload.size() > config_.limits.max_payload_bytes) {
            payload = EncodeError(
                {WireError::kInvalidArgument,
                 "partial reply would exceed the frame payload cap"});
            AppendFrame(MessageKind::kError, req.request_id, payload, &frame,
                        req.version);
          } else {
            AppendFrame(MessageKind::kPartialResult, req.request_id, payload,
                        &frame, req.version);
          }
        }
      }
      metrics_.partial_latency_us->Record(
          static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6));
    } else {
      util::WallTimer timer;
      std::vector<util::Result<service::Response>> results =
          engine_->RecommendMany(req.queries);
      // RESULT/RESULT_BATCH have no per-item error channel; the whole
      // request shares one deadline, so the first failure speaks for the
      // batch.
      const util::Result<service::Response>* failed = nullptr;
      for (const util::Result<service::Response>& r : results) {
        if (!r.ok()) {
          failed = &r;
          break;
        }
      }
      if (failed != nullptr) {
        const bool deadline = failed->status().code() ==
                              util::StatusCode::kDeadlineExceeded;
        std::vector<uint8_t> payload = EncodeError(
            {deadline ? WireError::kDeadlineExceeded : WireError::kInternal,
             failed->status().message()});
        AppendFrame(MessageKind::kError, req.request_id, payload, &frame,
                    req.version);
      } else if (req.kind == MessageKind::kRecommend) {
        const service::Response& resp = results.front().value();
        std::vector<uint8_t> payload = EncodeResult(
            resp.ranking.entries, resp.meta.graph_epoch, req.version, {},
            static_cast<uint8_t>(resp.meta.served_tier));
        AppendFrame(MessageKind::kResult, req.request_id, payload, &frame,
                    req.version);
      } else {
        std::vector<RankedList> lists;
        std::vector<uint64_t> epochs;
        std::vector<uint8_t> tiers;
        lists.reserve(results.size());
        epochs.reserve(results.size());
        tiers.reserve(results.size());
        for (util::Result<service::Response>& r : results) {
          epochs.push_back(r.value().meta.graph_epoch);
          tiers.push_back(static_cast<uint8_t>(r.value().meta.served_tier));
          lists.push_back(std::move(r.value().ranking.entries));
        }
        std::vector<uint8_t> payload =
            EncodeResultBatch(lists, epochs, req.version, {}, tiers);
        AppendFrame(MessageKind::kResultBatch, req.request_id, payload,
                    &frame, req.version);
      }
      obs::Histogram* h = req.kind == MessageKind::kRecommend
                              ? metrics_.recommend_latency_us
                              : metrics_.batch_latency_us;
      h->Record(static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6));
    }

    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      completions_.push_back({req.conn_fd, req.conn_gen, std::move(frame)});
    }
    inflight_.fetch_sub(1, std::memory_order_release);
    uint64_t v = 1;
    [[maybe_unused]] ssize_t n =
        ::write(completion_event_fd_, &v, sizeof(v));
  }
}

}  // namespace mbr::net
