#include "net/connection.h"

#include <cstring>

namespace mbr::net {

util::Status Connection::Ingest(const uint8_t* data, size_t size,
                                std::vector<Frame>* out) {
  read_buf_.insert(read_buf_.end(), data, data + size);

  size_t pos = 0;
  for (;;) {
    FrameHeader h;
    HeaderParse p = ParseFrameHeader(
        {read_buf_.data() + pos, read_buf_.size() - pos}, limits_, &h);
    if (p == HeaderParse::kMalformed) {
      return util::Status::InvalidArgument("malformed frame header");
    }
    if (p == HeaderParse::kNeedMore) break;
    const size_t frame_total = kFrameHeaderBytes + h.payload_len;
    if (read_buf_.size() - pos < frame_total) break;  // payload still partial
    Frame f;
    f.header = h;
    f.payload.assign(
        read_buf_.begin() + static_cast<ptrdiff_t>(pos + kFrameHeaderBytes),
        read_buf_.begin() + static_cast<ptrdiff_t>(pos + frame_total));
    out->push_back(std::move(f));
    pos += frame_total;
  }
  if (pos > 0) {
    read_buf_.erase(read_buf_.begin(),
                    read_buf_.begin() + static_cast<ptrdiff_t>(pos));
  }
  // Whatever remains is at most one partial frame, whose declared length
  // ParseFrameHeader already capped — anything bigger means the peer is
  // streaming bytes that can never frame-align.
  if (read_buf_.size() > kFrameHeaderBytes + limits_.max_payload_bytes) {
    return util::Status::InvalidArgument("read buffer cap exceeded");
  }
  return util::Status::Ok();
}

bool Connection::QueueReply(MessageKind kind, uint64_t request_id,
                            std::span<const uint8_t> payload,
                            uint16_t version) {
  std::vector<uint8_t> frame;
  AppendFrame(kind, request_id, payload, &frame, version);
  return QueueEncoded(frame);
}

bool Connection::QueueEncoded(std::span<const uint8_t> frame_bytes) {
  // Write cap: a handful of max-size frames. Beyond that the peer is not
  // consuming replies and buffering more would be unbounded queueing.
  const size_t write_cap =
      4 * (kFrameHeaderBytes + static_cast<size_t>(limits_.max_payload_bytes));
  if ((write_buf_.size() - write_off_) + frame_bytes.size() > write_cap) {
    return false;
  }
  write_buf_.insert(write_buf_.end(), frame_bytes.begin(), frame_bytes.end());
  return true;
}

void Connection::ConsumeWritten(size_t n) {
  write_off_ += n;
  if (write_off_ == write_buf_.size()) {
    write_buf_.clear();
    write_off_ = 0;
  } else if (write_off_ > (1u << 16) && write_off_ > write_buf_.size() / 2) {
    write_buf_.erase(write_buf_.begin(),
                     write_buf_.begin() + static_cast<ptrdiff_t>(write_off_));
    write_off_ = 0;
  }
}

}  // namespace mbr::net
