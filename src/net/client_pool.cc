#include "net/client_pool.h"

#include <utility>

#include "util/logging.h"

namespace mbr::net {

ClientPool::ClientPool(std::vector<ClientConfig> endpoints, size_t max_idle)
    : endpoints_(std::move(endpoints)), max_idle_(max_idle) {
  slots_.reserve(endpoints_.size());
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

util::Result<std::unique_ptr<Client>> ClientPool::Checkout(size_t i) {
  MBR_CHECK(i < slots_.size());
  {
    std::lock_guard<std::mutex> lock(slots_[i]->mu);
    if (!slots_[i]->idle.empty()) {
      std::unique_ptr<Client> c = std::move(slots_[i]->idle.back());
      slots_[i]->idle.pop_back();
      return c;
    }
  }
  auto dialed = Client::Connect(endpoints_[i]);
  if (!dialed.ok()) return dialed.status();
  return std::make_unique<Client>(std::move(*dialed));
}

void ClientPool::Return(size_t i, std::unique_ptr<Client> client) {
  MBR_CHECK(i < slots_.size());
  if (client == nullptr) return;
  std::lock_guard<std::mutex> lock(slots_[i]->mu);
  if (slots_[i]->idle.size() < max_idle_) {
    slots_[i]->idle.push_back(std::move(client));
  }
  // else: drop — the connection closes on destruction.
}

void ClientPool::Clear() {
  for (auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->idle.clear();
  }
}

}  // namespace mbr::net
