#ifndef MBR_NET_CLIENT_POOL_H_
#define MBR_NET_CLIENT_POOL_H_

// A small per-endpoint connection pool over net::Client.
//
// Client is deliberately single-request (one connection, one in-flight
// round trip); the router fans one client query out to every shard from
// whichever front-end thread owns it, so it needs a connection per
// (shard, concurrent request). The pool keeps an idle stack per endpoint:
// Checkout() pops an idle connection or dials a new one; Return() pushes
// it back for reuse. A caller whose round trip failed drops the client
// instead of returning it (the connection state is unknown after an I/O
// error), so broken connections never get back into the pool — the next
// Checkout redials, with Client's bounded backoff handling a restarting
// shard.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/client.h"
#include "util/status.h"

namespace mbr::net {

class ClientPool {
 public:
  // One ClientConfig per endpoint (host/port/timeouts/backoff). `max_idle`
  // bounds the idle connections kept per endpoint; extra returns close.
  ClientPool(std::vector<ClientConfig> endpoints, size_t max_idle = 4);

  size_t num_endpoints() const { return endpoints_.size(); }
  const ClientConfig& endpoint(size_t i) const { return endpoints_[i]; }

  // An idle pooled connection to endpoint `i`, or a freshly dialed one.
  // Connect failures surface as the Client::Connect status (kUnavailable
  // after the configured retries for a down shard).
  util::Result<std::unique_ptr<Client>> Checkout(size_t i);

  // Returns a healthy connection for reuse. Only call after a successful
  // round trip; on failure simply destroy the client instead.
  void Return(size_t i, std::unique_ptr<Client> client);

  // Drops all idle connections (e.g. after an endpoint table rewrite).
  void Clear();

 private:
  struct Slot {
    std::mutex mu;
    std::vector<std::unique_ptr<Client>> idle;
  };

  std::vector<ClientConfig> endpoints_;
  size_t max_idle_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace mbr::net

#endif  // MBR_NET_CLIENT_POOL_H_
