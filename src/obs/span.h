#ifndef MBR_OBS_SPAN_H_
#define MBR_OBS_SPAN_H_

// Lightweight trace spans.
//
//   void Scorer::Explore(...) {
//     MBR_SPAN("scorer.explore");
//     ...
//   }
//
// Each MBR_SPAN site resolves its histogram once (function-local static
// into the default registry, series `mbr_stage_latency_us{stage="..."}`)
// and then pays one steady_clock read on entry and one on exit. The elapsed
// microseconds are recorded into the stage histogram and appended to the
// active slow-query trace, if any (see slow_query_log.h).
//
// Spans honor the runtime switch (obs::SetEnabled(false) makes them skip
// the clock reads) and compile out entirely under -DMBR_OBS_NOOP.

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace mbr::obs {

// Registers `mbr_stage_latency_us{stage=<stage>}` in Registry::Default().
// `stage` must be a string literal (kept by pointer in trace entries).
Histogram* StageHistogram(const char* stage);

class SpanTimer {
 public:
  SpanTimer(Histogram* hist, const char* stage)
      : hist_(Enabled() ? hist : nullptr), stage_(stage) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~SpanTimer();

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  Histogram* hist_;
  const char* stage_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mbr::obs

#define MBR_OBS_CONCAT_INNER(a, b) a##b
#define MBR_OBS_CONCAT(a, b) MBR_OBS_CONCAT_INNER(a, b)

#ifdef MBR_OBS_NOOP
#define MBR_SPAN(stage) \
  do {                  \
  } while (0)
#else
#define MBR_SPAN(stage)                                                      \
  static ::mbr::obs::Histogram* MBR_OBS_CONCAT(mbr_span_hist_, __LINE__) =   \
      ::mbr::obs::StageHistogram(stage);                                     \
  ::mbr::obs::SpanTimer MBR_OBS_CONCAT(mbr_span_timer_, __LINE__)(           \
      MBR_OBS_CONCAT(mbr_span_hist_, __LINE__), stage)
#endif

#endif  // MBR_OBS_SPAN_H_
