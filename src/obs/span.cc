#include "obs/span.h"

#include "obs/slow_query_log.h"

namespace mbr::obs {

Histogram* StageHistogram(const char* stage) {
  return Registry::Default().GetHistogram(
      "mbr_stage_latency_us", "Per-stage latency in microseconds.",
      {{"stage", stage}});
}

SpanTimer::~SpanTimer() {
  if (hist_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
  hist_->Record(us);
  QueryTrace::AppendStage(stage_, us);
}

}  // namespace mbr::obs
