#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mbr::obs {

namespace {

std::atomic<bool> g_enabled{true};

// Series identity: name + sorted labels, joined with bytes that cannot
// appear in a metric name or label ('\x1f' unit, '\x1e' record separators).
std::string SeriesKey(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1e';
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

}  // namespace

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }
bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

double Histogram::Snapshot::PercentileLowerBound(double p) const {
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  const uint64_t rank =
      static_cast<uint64_t>(std::ceil(p * static_cast<double>(total)));
  uint64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank && seen > 0) {
      return static_cast<double>(uint64_t{1} << b);
    }
  }
  return static_cast<double>(uint64_t{1} << (kHistogramBuckets - 1));
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

Registry::Series& Registry::Lookup(std::string_view name,
                                   std::string_view help, Labels labels,
                                   Kind kind) {
  std::sort(labels.begin(), labels.end());
  const std::string key = SeriesKey(name, labels);
  for (Series& s : series_) {
    if (SeriesKey(s.meta.name, s.meta.labels) == key) {
      // Same series re-registered: must be the same instrument kind.
      MBR_CHECK(s.kind == kind);
      return s;
    }
    // One family (name) cannot mix instrument kinds.
    MBR_CHECK(s.meta.name != name || s.kind == kind);
  }
  Series s;
  s.meta.name = std::string(name);
  s.meta.help = std::string(help);
  s.meta.labels = std::move(labels);
  s.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      s.index = counters_.size();
      counters_.emplace_back();
      break;
    case Kind::kGauge:
      s.index = gauges_.size();
      gauges_.emplace_back();
      break;
    case Kind::kHistogram:
      s.index = histograms_.size();
      histograms_.emplace_back();
      break;
  }
  series_.push_back(std::move(s));
  return series_.back();
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help,
                              Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return &counters_[Lookup(name, help, std::move(labels), Kind::kCounter)
                        .index];
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help,
                          Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return &gauges_[Lookup(name, help, std::move(labels), Kind::kGauge).index];
}

Histogram* Registry::GetHistogram(std::string_view name, std::string_view help,
                                  Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return &histograms_[Lookup(name, help, std::move(labels), Kind::kHistogram)
                          .index];
}

std::vector<std::pair<MetricMeta, uint64_t>> Registry::SnapshotCounters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<MetricMeta, uint64_t>> out;
  for (const Series& s : series_) {
    if (s.kind != Kind::kCounter) continue;
    out.emplace_back(s.meta, counters_[s.index].Value());
  }
  return out;
}

std::vector<std::pair<MetricMeta, int64_t>> Registry::SnapshotGauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<MetricMeta, int64_t>> out;
  for (const Series& s : series_) {
    if (s.kind != Kind::kGauge) continue;
    out.emplace_back(s.meta, gauges_[s.index].Value());
  }
  return out;
}

std::vector<std::pair<MetricMeta, Histogram::Snapshot>>
Registry::SnapshotHistograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<MetricMeta, Histogram::Snapshot>> out;
  for (const Series& s : series_) {
    if (s.kind != Kind::kHistogram) continue;
    out.emplace_back(s.meta, histograms_[s.index].TakeSnapshot());
  }
  return out;
}

Registry& Registry::Default() {
  static Registry* r = new Registry();  // never destroyed: handles outlive exit
  return *r;
}

}  // namespace mbr::obs
