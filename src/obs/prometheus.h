#ifndef MBR_OBS_PROMETHEUS_H_
#define MBR_OBS_PROMETHEUS_H_

// Prometheus text exposition (version 0.0.4) for an obs::Registry.
//
// Families are emitted in registration order, `# HELP` / `# TYPE` once per
// family, one sample line per series. Histograms render as cumulative
// `_bucket{le="..."}` series with integer upper bounds 2^(b+1)-1 (the last
// value bucket b holds), a final `le="+Inf"`, plus `_sum` and `_count`.

#include <string>

#include "obs/metrics.h"

namespace mbr::obs {

std::string RenderPrometheus(const Registry& registry);

}  // namespace mbr::obs

#endif  // MBR_OBS_PROMETHEUS_H_
