#include "obs/prometheus.h"

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

namespace mbr::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

// Renders `{k="v",...}` including one extra label, or "" when empty.
std::string LabelBlock(const Labels& labels, const char* extra_key = nullptr,
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    AppendEscaped(&out, v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    AppendEscaped(&out, extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

void AppendHeader(std::string* out, bool* emitted, const MetricMeta& meta,
                  const char* type) {
  if (*emitted) return;
  *emitted = true;
  *out += "# HELP " + meta.name + " " + meta.help + "\n";
  *out += "# TYPE " + meta.name + " ";
  *out += type;
  *out += '\n';
}

}  // namespace

std::string RenderPrometheus(const Registry& registry) {
  const auto counters = registry.SnapshotCounters();
  const auto gauges = registry.SnapshotGauges();
  const auto histograms = registry.SnapshotHistograms();

  std::string out;
  char buf[64];

  // All series of a family must form one contiguous block after its
  // # HELP/# TYPE header, so walk each kind grouped by family name
  // (first-registration order, then every series of that family).
  std::vector<std::string> done;
  auto family_starts_here = [&done](const std::string& name) {
    for (const std::string& d : done) {
      if (d == name) return false;
    }
    done.push_back(name);
    return true;
  };

  for (size_t i = 0; i < counters.size(); ++i) {
    if (!family_starts_here(counters[i].first.name)) continue;
    bool emitted = false;
    for (size_t j = i; j < counters.size(); ++j) {
      const auto& [meta, value] = counters[j];
      if (meta.name != counters[i].first.name) continue;
      AppendHeader(&out, &emitted, meta, "counter");
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
      out += meta.name + LabelBlock(meta.labels) + buf;
    }
  }
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (!family_starts_here(gauges[i].first.name)) continue;
    bool emitted = false;
    for (size_t j = i; j < gauges.size(); ++j) {
      const auto& [meta, value] = gauges[j];
      if (meta.name != gauges[i].first.name) continue;
      AppendHeader(&out, &emitted, meta, "gauge");
      std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", value);
      out += meta.name + LabelBlock(meta.labels) + buf;
    }
  }
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (!family_starts_here(histograms[i].first.name)) continue;
    bool emitted = false;
    for (size_t j = i; j < histograms.size(); ++j) {
      const auto& [meta, snap] = histograms[j];
      if (meta.name != histograms[i].first.name) continue;
      AppendHeader(&out, &emitted, meta, "histogram");
      uint64_t cumulative = 0;
      for (int b = 0; b < kHistogramBuckets; ++b) {
        cumulative += snap.buckets[b];
        std::string le;
        if (b == kHistogramBuckets - 1) {
          le = "+Inf";
        } else {
          // Bucket b holds [2^b, 2^(b+1)): largest integer it admits.
          std::snprintf(buf, sizeof(buf), "%" PRIu64,
                        (uint64_t{1} << (b + 1)) - 1);
          le = buf;
        }
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", cumulative);
        out += meta.name + "_bucket" + LabelBlock(meta.labels, "le", le) + buf;
      }
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", snap.sum);
      out += meta.name + "_sum" + LabelBlock(meta.labels) + buf;
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", snap.count);
      out += meta.name + "_count" + LabelBlock(meta.labels) + buf;
    }
  }
  return out;
}

}  // namespace mbr::obs
