#ifndef MBR_OBS_METRICS_H_
#define MBR_OBS_METRICS_H_

// Lock-free metrics registry: monotonic counters, gauges, and log2
// histograms with named registration.
//
// Registration (GetCounter / GetGauge / GetHistogram) takes a mutex and is
// expected to happen once per call site (cache the returned pointer, or let
// a function-local static do it). Recording on the returned handle is a
// relaxed atomic add — safe from any thread, no locks, pointers stay valid
// for the registry's lifetime (instruments live in std::deques).
//
// The histogram uses the same floor-log2 bucketing the QueryEngine latency
// histogram pinned in PR 2: bucket b holds [2^b, 2^(b+1)) with bucket 0
// absorbing 0 and sub-unit values, and the last bucket clamping the tail.
// `service::LatencyBucket` is now an alias of `obs::Log2Bucket`.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mbr::obs {

// ---------------------------------------------------------------------------
// Runtime enable switch. Gates span timing and the slow-query log (the
// optional, per-request-path costs). Counters and explicit Record() calls
// are NOT gated: engine logic (cache stats, shed accounting) depends on
// them. Compile-time removal is MBR_OBS_NOOP (see span.h).
// ---------------------------------------------------------------------------

void SetEnabled(bool on);
bool Enabled();

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

inline constexpr int kHistogramBuckets = 32;

// Floor-log2 bucket index: 0 -> 0, 1 -> 0, 2^k -> k, clamped to the last
// bucket. Bucket b therefore holds values in [2^b, 2^(b+1)).
inline int Log2Bucket(uint64_t v) {
  if (v == 0) return 0;
  int b = 63 - std::countl_zero(v);
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

class Histogram {
 public:
  struct Snapshot {
    std::array<uint64_t, kHistogramBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sum = 0;

    // Lower bound (2^b) of the bucket holding the p-quantile sample;
    // 0 for an empty histogram. Same readout EngineStats pinned in PR 2.
    double PercentileLowerBound(double p) const;
  };

  void Record(uint64_t v) {
    buckets_[Log2Bucket(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  double PercentileLowerBound(double p) const {
    return TakeSnapshot().PercentileLowerBound(p);
  }

  Snapshot TakeSnapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// Sorted at registration so {a=1,b=2} and {b=2,a=1} are the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

struct MetricMeta {
  std::string name;
  std::string help;
  Labels labels;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Registers (or finds) the series identified by (name, labels). The help
  // string of the first registration wins. Registering the same name with a
  // different instrument kind is a programmer error and aborts.
  Counter* GetCounter(std::string_view name, std::string_view help,
                      Labels labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  Labels labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          Labels labels = {});

  // Value snapshots in registration order, for exposition and tests.
  std::vector<std::pair<MetricMeta, uint64_t>> SnapshotCounters() const;
  std::vector<std::pair<MetricMeta, int64_t>> SnapshotGauges() const;
  std::vector<std::pair<MetricMeta, Histogram::Snapshot>> SnapshotHistograms()
      const;

  // Process-wide registry: spans and the CLI serve path register here so a
  // single RenderPrometheus() call shows every stage of the request path.
  static Registry& Default();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    MetricMeta meta;
    Kind kind;
    size_t index;  // into the deque for its kind
  };

  // Returns the series slot for (name, labels, kind), creating it if new.
  Series& Lookup(std::string_view name, std::string_view help, Labels labels,
                 Kind kind);

  mutable std::mutex mu_;
  std::vector<Series> series_;  // registration order
  // Deques: handle pointers must survive later registrations.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace mbr::obs

#endif  // MBR_OBS_METRICS_H_
