#include "obs/slow_query_log.h"

#include <cinttypes>
#include <cstdio>

#include "util/logging.h"

namespace mbr::obs {

namespace {

// The thread-local entry under construction; null when no trace is active.
thread_local SlowQueryEntry* t_active_entry = nullptr;

}  // namespace

std::string SlowQueryEntry::Format() const {
  char head[128];
  std::snprintf(head, sizeof(head),
                "slow-query user=%" PRIu64 " topic=%" PRIu64 " top_n=%" PRIu64
                " total=%" PRIu64 "us",
                user, topic, top_n, total_micros);
  std::string out = head;
  if (tier != nullptr) {
    out += " tier=";
    out += tier;
  }
  for (const StageTiming& s : stages) {
    char part[96];
    std::snprintf(part, sizeof(part), " %s=%" PRIu64 "us", s.stage, s.micros);
    out += part;
  }
  return out;
}

void SlowQueryLog::Configure(Config c) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = c;
  ring_.clear();
  next_ = 0;
}

uint64_t SlowQueryLog::threshold_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_.threshold_micros;
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryEntry> out;
  out.reserve(ring_.size());
  // Oldest first: [next_, end) then [0, next_).
  for (size_t i = next_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (size_t i = 0; i < next_; ++i) out.push_back(ring_[i]);
  return out;
}

void SlowQueryLog::Append(SlowQueryEntry e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.capacity == 0) return;
  if (ring_.size() < config_.capacity) {
    ring_.push_back(std::move(e));
  } else {
    ring_[next_] = std::move(e);
    next_ = (next_ + 1) % config_.capacity;
  }
}

SlowQueryLog& SlowQueryLog::Default() {
  static SlowQueryLog* log = new SlowQueryLog();
  return *log;
}

QueryTrace::QueryTrace(SlowQueryLog* log, uint64_t user, uint64_t topic,
                       uint64_t top_n)
    : log_(log), start_(std::chrono::steady_clock::now()) {
  MBR_CHECK(t_active_entry == nullptr);  // traces do not nest
  entry_.user = user;
  entry_.topic = topic;
  entry_.top_n = top_n;
  if (log_ != nullptr) t_active_entry = &entry_;
}

QueryTrace::~QueryTrace() {
  t_active_entry = nullptr;
  if (log_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  entry_.total_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
  if (entry_.total_micros >= log_->threshold_micros()) {
    log_->Append(std::move(entry_));
  }
}

void QueryTrace::AppendStage(const char* stage, uint64_t micros) {
  if (t_active_entry != nullptr) {
    t_active_entry->stages.push_back({stage, micros});
  }
}

void QueryTrace::SetServedTier(const char* tier) {
  if (t_active_entry != nullptr) {
    t_active_entry->tier = tier;
  }
}

}  // namespace mbr::obs
