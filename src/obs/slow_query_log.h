#ifndef MBR_OBS_SLOW_QUERY_LOG_H_
#define MBR_OBS_SLOW_QUERY_LOG_H_

// Sampled slow-query log: a bounded ring of the most recent queries whose
// end-to-end time crossed a threshold, each with its per-stage span
// breakdown.
//
// The engine wraps each query execution in a QueryTrace; MBR_SPAN sites
// that run under it append (stage, micros) entries to a thread-local
// scratch buffer. On destruction the trace either discards the buffer
// (fast path) or, if total time >= threshold, pushes one SlowQueryEntry
// into the log under a mutex. Queries below the threshold never touch a
// lock.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mbr::obs {

struct StageTiming {
  const char* stage;  // string literal from the MBR_SPAN site
  uint64_t micros = 0;
};

struct SlowQueryEntry {
  uint64_t user = 0;
  uint64_t topic = 0;
  uint64_t top_n = 0;
  uint64_t total_micros = 0;
  // Degradation-ladder tier that served the query ("exact", "approx",
  // "stale"); nullptr when the traced path never stamped one. A literal,
  // like StageTiming::stage. Makes a degraded burst diagnosable: a slow
  // window whose entries all say tier=approx was pressure, not regression.
  const char* tier = nullptr;
  std::vector<StageTiming> stages;

  // "slow-query user=7 topic=3 top_n=10 total=15632us tier=exact
  //  scorer.explore=15000us"
  std::string Format() const;
};

class SlowQueryLog {
 public:
  struct Config {
    uint64_t threshold_micros = 50'000;  // 50 ms
    size_t capacity = 64;
  };

  SlowQueryLog() = default;
  explicit SlowQueryLog(Config c) : config_(c) {}

  void Configure(Config c);
  uint64_t threshold_micros() const;

  // Most recent entries, oldest first (at most Config::capacity).
  std::vector<SlowQueryEntry> Entries() const;

  // Process-wide log used by QueryTrace's default constructor path.
  static SlowQueryLog& Default();

  void Append(SlowQueryEntry e);

 private:
  mutable std::mutex mu_;
  Config config_;
  std::vector<SlowQueryEntry> ring_;
  size_t next_ = 0;  // ring insertion point once at capacity
};

// RAII scope marking "a query is being traced on this thread". At most one
// may be active per thread (nested traces are a programmer error).
class QueryTrace {
 public:
  QueryTrace(SlowQueryLog* log, uint64_t user, uint64_t topic,
             uint64_t top_n);
  ~QueryTrace();

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  // Called by SpanTimer when a span closes inside an active trace.
  // No-op when no trace is active on this thread.
  static void AppendStage(const char* stage, uint64_t micros);

  // Records the serving tier on the active trace (a string literal, e.g.
  // core::TierName()). No-op when no trace is active on this thread.
  static void SetServedTier(const char* tier);

 private:
  SlowQueryLog* log_;
  SlowQueryEntry entry_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mbr::obs

#endif  // MBR_OBS_SLOW_QUERY_LOG_H_
