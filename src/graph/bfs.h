#ifndef MBR_GRAPH_BFS_H_
#define MBR_GRAPH_BFS_H_

// Breadth-first exploration utilities: the k-vicinity Υk(u) of §4.1 and the
// seed-coverage counts used by the Central / Out-Cen landmark strategies.

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"

namespace mbr::graph {

struct VisitedNode {
  NodeId node = kInvalidNode;
  uint32_t depth = 0;  // hops from the source
};

enum class Direction {
  kOut,  // follow edges u -> followee (paths u ❀ v of the scores)
  kIn,   // reverse edges (who can reach me)
};

// Nodes reachable from `source` within `max_depth` hops, in BFS order; the
// source itself is the first entry with depth 0. Υ∞ is obtained with
// max_depth = num_nodes().
std::vector<VisitedNode> KVicinity(const LabeledGraph& g, NodeId source,
                                   uint32_t max_depth,
                                   Direction dir = Direction::kOut);

// For each node, how many of `seeds` reach it within `max_depth` hops
// (dir = kOut explores forward from the seeds). Used by the coverage-based
// landmark selection strategies.
std::vector<uint32_t> SeedCoverageCounts(const LabeledGraph& g,
                                         const std::vector<NodeId>& seeds,
                                         uint32_t max_depth, Direction dir);

}  // namespace mbr::graph

#endif  // MBR_GRAPH_BFS_H_
