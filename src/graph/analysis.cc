#include "graph/analysis.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace mbr::graph {

double Reciprocity(const LabeledGraph& g) {
  if (g.num_edges() == 0) return 0.0;
  uint64_t reciprocated = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (g.HasEdge(v, u)) ++reciprocated;
    }
  }
  return static_cast<double>(reciprocated) /
         static_cast<double>(g.num_edges());
}

double EstimateClusteringCoefficient(const LabeledGraph& g, uint32_t samples,
                                     util::Rng* rng) {
  MBR_CHECK(rng != nullptr);
  double total = 0.0;
  uint32_t measured = 0;
  uint32_t attempts = samples * 20 + 100;
  while (measured < samples && attempts-- > 0) {
    NodeId u = static_cast<NodeId>(rng->UniformU64(g.num_nodes()));
    auto nbrs = g.OutNeighbors(u);
    if (nbrs.size() < 2) continue;
    // Sample a handful of followee pairs instead of all O(d^2).
    uint32_t pair_samples = 16;
    uint32_t connected = 0;
    for (uint32_t i = 0; i < pair_samples; ++i) {
      NodeId a = nbrs[rng->UniformU64(nbrs.size())];
      NodeId b;
      do {
        b = nbrs[rng->UniformU64(nbrs.size())];
      } while (b == a);  // nbrs.size() >= 2, so a distinct pick exists
      if (g.HasEdge(a, b) || g.HasEdge(b, a)) ++connected;
    }
    total += static_cast<double>(connected) / pair_samples;
    ++measured;
  }
  return measured == 0 ? 0.0 : total / measured;
}

std::vector<uint32_t> WeaklyConnectedComponents(const LabeledGraph& g,
                                                uint32_t* num_components) {
  std::vector<uint32_t> comp(g.num_nodes(), 0xffffffff);
  uint32_t next_id = 0;
  std::deque<NodeId> queue;
  for (NodeId seed = 0; seed < g.num_nodes(); ++seed) {
    if (comp[seed] != 0xffffffff) continue;
    comp[seed] = next_id;
    queue.push_back(seed);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.OutNeighbors(u)) {
        if (comp[v] == 0xffffffff) {
          comp[v] = next_id;
          queue.push_back(v);
        }
      }
      for (NodeId v : g.InNeighbors(u)) {
        if (comp[v] == 0xffffffff) {
          comp[v] = next_id;
          queue.push_back(v);
        }
      }
    }
    ++next_id;
  }
  if (num_components != nullptr) *num_components = next_id;
  return comp;
}

uint64_t LargestComponentSize(const LabeledGraph& g) {
  uint32_t count = 0;
  std::vector<uint32_t> comp = WeaklyConnectedComponents(g, &count);
  std::vector<uint64_t> sizes(count, 0);
  for (uint32_t c : comp) ++sizes[c];
  return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

std::vector<uint64_t> InDegreeHistogram(const LabeledGraph& g) {
  std::vector<uint64_t> buckets;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    uint32_t d = g.InDegree(v);
    uint32_t bucket = d < 2 ? 0 : static_cast<uint32_t>(std::log2(d));
    if (bucket >= buckets.size()) buckets.resize(bucket + 1, 0);
    ++buckets[bucket];
  }
  return buckets;
}

double EstimatePowerLawExponent(const std::vector<uint64_t>& histogram) {
  // Least squares over (log2 midpoint, log2 count) of non-empty buckets,
  // skipping bucket 0 (degrees 0-1 are not in the power-law regime).
  std::vector<std::pair<double, double>> points;
  for (size_t i = 1; i < histogram.size(); ++i) {
    if (histogram[i] == 0) continue;
    double x = static_cast<double>(i) + 0.5;  // log2 of bucket midpoint
    double y = std::log2(static_cast<double>(histogram[i]));
    points.push_back({x, y});
  }
  if (points.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (auto [x, y] : points) {
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  double n = static_cast<double>(points.size());
  double denom = n * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (n * sxy - sx * sy) / denom;
}

}  // namespace mbr::graph
