#include "graph/edgelist.h"

#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace mbr::graph {

namespace {

std::string JoinTopics(topics::TopicSet set,
                       const topics::Vocabulary& vocab) {
  std::string out;
  for (topics::TopicId t : set) {
    if (!out.empty()) out.push_back(',');
    out += vocab.Name(t);
  }
  return out;
}

// Parses "a,b,c" into a TopicSet; returns std::nullopt on unknown names.
std::optional<topics::TopicSet> ParseTopics(
    const std::string& spec, const topics::Vocabulary& vocab) {
  topics::TopicSet set;
  std::string name;
  std::stringstream ss(spec);
  while (std::getline(ss, name, ',')) {
    if (name.empty()) continue;
    topics::TopicId t = vocab.Id(name);
    if (t == topics::kInvalidTopic) return std::nullopt;
    set.Add(t);
  }
  return set;
}

}  // namespace

util::Status WriteEdgeList(const LabeledGraph& g,
                           const topics::Vocabulary& vocab,
                           const std::string& path) {
  MBR_CHECK(vocab.size() >= g.num_topics());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Status::IoError("cannot open for write: " + path);
  }
  bool ok = true;
  ok = ok && std::fprintf(f, "# microblogrec labeled edge list\n") > 0;
  ok = ok && std::fprintf(f, "G %u\n", g.num_nodes()) > 0;
  for (NodeId u = 0; u < g.num_nodes() && ok; ++u) {
    topics::TopicSet labels = g.NodeLabels(u);
    if (!labels.empty()) {
      ok = std::fprintf(f, "N %u %s\n", u,
                        JoinTopics(labels, vocab).c_str()) > 0;
    }
  }
  for (NodeId u = 0; u < g.num_nodes() && ok; ++u) {
    auto nbrs = g.OutNeighbors(u);
    auto labs = g.OutEdgeLabels(u);
    for (size_t i = 0; i < nbrs.size() && ok; ++i) {
      if (labs[i].empty()) {
        ok = std::fprintf(f, "E %u %u\n", u, nbrs[i]) > 0;
      } else {
        ok = std::fprintf(f, "E %u %u %s\n", u, nbrs[i],
                          JoinTopics(labs[i], vocab).c_str()) > 0;
      }
    }
  }
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return util::Status::IoError("short write: " + path);
  return util::Status::Ok();
}

util::Result<LabeledGraph> ReadEdgeList(const std::string& path,
                                        const topics::Vocabulary& vocab) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return util::Status::IoError("cannot open for read: " + path);
  }
  std::optional<GraphBuilder> builder;
  char line[4096];
  uint64_t lineno = 0;
  auto fail = [&](const std::string& msg) -> util::Status {
    std::fclose(f);
    return util::Status::InvalidArgument(
        path + ":" + std::to_string(lineno) + ": " + msg);
  };

  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++lineno;
    std::stringstream ss(line);
    std::string tag;
    if (!(ss >> tag) || tag[0] == '#') continue;
    if (tag == "G") {
      uint64_t n = 0;
      if (!(ss >> n) || n == 0) return fail("bad G record");
      if (builder.has_value()) return fail("duplicate G record");
      builder.emplace(static_cast<NodeId>(n), vocab.size());
      continue;
    }
    if (!builder.has_value()) return fail("record before G header");
    if (tag == "N") {
      uint64_t u;
      std::string spec;
      if (!(ss >> u >> spec)) return fail("bad N record");
      if (u >= builder->num_nodes()) return fail("node id out of range");
      auto set = ParseTopics(spec, vocab);
      if (!set.has_value()) return fail("unknown topic in N record");
      builder->SetNodeLabels(static_cast<NodeId>(u), *set);
    } else if (tag == "E") {
      uint64_t u, v;
      if (!(ss >> u >> v)) return fail("bad E record");
      if (u >= builder->num_nodes() || v >= builder->num_nodes()) {
        return fail("node id out of range");
      }
      topics::TopicSet labels;
      std::string spec;
      if (ss >> spec) {
        auto set = ParseTopics(spec, vocab);
        if (!set.has_value()) return fail("unknown topic in E record");
        labels = *set;
      }
      builder->AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v),
                       labels);
    } else {
      return fail("unknown record tag '" + tag + "'");
    }
  }
  std::fclose(f);
  if (!builder.has_value()) {
    return util::Status::InvalidArgument(path + ": missing G header");
  }
  return std::move(*builder).Build();
}

}  // namespace mbr::graph
