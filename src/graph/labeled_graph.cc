#include "graph/labeled_graph.h"

#include <algorithm>
#include <cstring>

#include "graph/snapshot.h"

namespace mbr::graph {

GraphBuilder::GraphBuilder(NodeId num_nodes, int num_topics)
    : num_nodes_(num_nodes),
      num_topics_(num_topics),
      node_labels_(num_nodes) {
  MBR_CHECK(num_topics > 0 && num_topics <= topics::kMaxTopics);
}

void GraphBuilder::SetNodeLabels(NodeId u, topics::TopicSet labels) {
  MBR_CHECK(u < num_nodes_);
  node_labels_[u] = labels;
}

bool GraphBuilder::AddEdge(NodeId u, NodeId v, topics::TopicSet labels) {
  MBR_CHECK(u < num_nodes_);
  MBR_CHECK(v < num_nodes_);
  if (u == v) return false;
  edges_.push_back({u, v, labels});
  return true;
}

LabeledGraph GraphBuilder::Build() && {
  // Sort by (src, dst) then merge duplicates by unioning labels.
  std::sort(edges_.begin(), edges_.end(),
            [](const RawEdge& a, const RawEdge& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  size_t w = 0;
  for (size_t r = 0; r < edges_.size(); ++r) {
    if (w > 0 && edges_[w - 1].src == edges_[r].src &&
        edges_[w - 1].dst == edges_[r].dst) {
      edges_[w - 1].labels = edges_[w - 1].labels.Union(edges_[r].labels);
    } else {
      edges_[w++] = edges_[r];
    }
  }
  edges_.resize(w);

  LabeledGraph g;
  g.num_nodes_ = num_nodes_;
  g.num_topics_ = num_topics_;
  g.node_labels_ = std::move(node_labels_);

  const uint64_t m = edges_.size();
  g.out_off_.assign(num_nodes_ + 1, 0);
  g.in_off_.assign(num_nodes_ + 1, 0);
  for (const RawEdge& e : edges_) {
    ++g.out_off_[e.src + 1];
    ++g.in_off_[e.dst + 1];
  }
  for (NodeId i = 0; i < num_nodes_; ++i) {
    g.out_off_[i + 1] += g.out_off_[i];
    g.in_off_[i + 1] += g.in_off_[i];
  }
  g.out_dst_.resize(m);
  g.out_lab_.resize(m);
  g.in_src_.resize(m);
  g.in_lab_.resize(m);

  // Out arrays: edges_ is already (src, dst)-sorted, fill sequentially.
  for (uint64_t i = 0; i < m; ++i) {
    g.out_dst_[i] = edges_[i].dst;
    g.out_lab_[i] = edges_[i].labels;
  }
  // In arrays: bucket by dst; since we iterate edges in ascending src order,
  // each in-list comes out sorted by src.
  std::vector<uint64_t> cursor(g.in_off_.begin(), g.in_off_.end() - 1);
  for (const RawEdge& e : edges_) {
    uint64_t pos = cursor[e.dst]++;
    g.in_src_[pos] = e.src;
    g.in_lab_[pos] = e.labels;
  }

  edges_.clear();
  edges_.shrink_to_fit();
  return g;
}

topics::TopicSet LabeledGraph::EdgeLabels(NodeId u, NodeId v) const {
  auto nbrs = OutNeighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return topics::TopicSet();
  return OutEdgeLabels(u)[static_cast<size_t>(it - nbrs.begin())];
}

bool LabeledGraph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

LabeledGraph LabeledGraph::WithoutEdges(
    const std::vector<std::pair<NodeId, NodeId>>& removed) const {
  std::vector<std::pair<NodeId, NodeId>> sorted = removed;
  std::sort(sorted.begin(), sorted.end());
  GraphBuilder b(num_nodes_, num_topics_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    b.SetNodeLabels(u, node_labels_[u]);
    auto nbrs = OutNeighbors(u);
    auto labs = OutEdgeLabels(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (std::binary_search(sorted.begin(), sorted.end(),
                             std::make_pair(u, nbrs[i]))) {
        continue;
      }
      b.AddEdge(u, nbrs[i], labs[i]);
    }
  }
  return std::move(b).Build();
}

namespace {

// Splices patched rows into one CSR direction: offsets/ids/labels for
// every node either copied from prev or replaced by its patch. Patches
// must be sorted by node, unique, each row sorted by neighbor id.
void SpliceDirection(NodeId num_nodes, const std::vector<uint64_t>& prev_off,
                     const std::vector<NodeId>& prev_ids,
                     const std::vector<topics::TopicSet>& prev_lab,
                     std::span<const LabeledGraph::RowPatch> patches,
                     std::vector<uint64_t>* off, std::vector<NodeId>* ids,
                     std::vector<topics::TopicSet>* lab) {
  int64_t delta = 0;
  for (size_t p = 0; p < patches.size(); ++p) {
    const LabeledGraph::RowPatch& rp = patches[p];
    MBR_CHECK(rp.node < num_nodes);
    MBR_CHECK(rp.nbrs.size() == rp.labs.size());
    MBR_DCHECK(p == 0 || patches[p - 1].node < rp.node);
    MBR_DCHECK(std::is_sorted(rp.nbrs.begin(), rp.nbrs.end()));
    MBR_DCHECK(std::adjacent_find(rp.nbrs.begin(), rp.nbrs.end()) ==
               rp.nbrs.end());
    delta += static_cast<int64_t>(rp.nbrs.size()) -
             static_cast<int64_t>(prev_off[rp.node + 1] - prev_off[rp.node]);
  }
  const uint64_t m = static_cast<uint64_t>(
      static_cast<int64_t>(prev_ids.size()) + delta);
  off->assign(num_nodes + 1, 0);
  ids->resize(m);
  lab->resize(m);
  uint64_t w = 0;
  size_t p = 0;
  for (NodeId u = 0; u < num_nodes; ++u) {
    (*off)[u] = w;
    if (p < patches.size() && patches[p].node == u) {
      const LabeledGraph::RowPatch& rp = patches[p++];
      std::copy(rp.nbrs.begin(), rp.nbrs.end(), ids->begin() + w);
      std::copy(rp.labs.begin(), rp.labs.end(), lab->begin() + w);
      w += rp.nbrs.size();
    } else {
      const uint64_t b = prev_off[u], e = prev_off[u + 1];
      std::copy(prev_ids.begin() + b, prev_ids.begin() + e, ids->begin() + w);
      std::copy(prev_lab.begin() + b, prev_lab.begin() + e, lab->begin() + w);
      w += e - b;
    }
  }
  (*off)[num_nodes] = w;
  MBR_CHECK(w == m);
}

}  // namespace

LabeledGraph LabeledGraph::PatchAdjacency(
    const LabeledGraph& prev, std::span<const RowPatch> out_patches,
    std::span<const RowPatch> in_patches) {
  LabeledGraph g;
  g.num_nodes_ = prev.num_nodes_;
  g.num_topics_ = prev.num_topics_;
  g.node_labels_ = prev.node_labels_;
  SpliceDirection(prev.num_nodes_, prev.out_off_, prev.out_dst_,
                  prev.out_lab_, out_patches, &g.out_off_, &g.out_dst_,
                  &g.out_lab_);
  SpliceDirection(prev.num_nodes_, prev.in_off_, prev.in_src_, prev.in_lab_,
                  in_patches, &g.in_off_, &g.in_src_, &g.in_lab_);
  // Both directions must describe the same edge set.
  MBR_CHECK(g.out_dst_.size() == g.in_src_.size());
  return g;
}

util::Status LabeledGraph::SaveTo(const std::string& path) const {
  return Snapshot::Save(*this, path);
}

util::Result<LabeledGraph> LabeledGraph::LoadFrom(const std::string& path) {
  return Snapshot::Load(path);
}

size_t LabeledGraph::StorageBytes() const {
  return node_labels_.size() * sizeof(topics::TopicSet) +
         (out_off_.size() + in_off_.size()) * sizeof(uint64_t) +
         (out_dst_.size() + in_src_.size()) * sizeof(NodeId) +
         (out_lab_.size() + in_lab_.size()) * sizeof(topics::TopicSet);
}

DegreeStatistics ComputeDegreeStatistics(const LabeledGraph& g) {
  DegreeStatistics s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  if (g.num_nodes() == 0) return s;
  // Averages are taken over nodes that *have* the respective degree, which
  // is why Table 2 reports different avg in- and out-degrees for the same
  // edge count.
  uint64_t with_out = 0, with_in = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    uint32_t od = g.OutDegree(u), id = g.InDegree(u);
    s.max_out_degree = std::max(s.max_out_degree, od);
    s.max_in_degree = std::max(s.max_in_degree, id);
    if (od > 0) ++with_out;
    if (id > 0) ++with_in;
  }
  s.avg_out_degree = with_out == 0 ? 0.0
                                   : static_cast<double>(g.num_edges()) /
                                         static_cast<double>(with_out);
  s.avg_in_degree = with_in == 0 ? 0.0
                                 : static_cast<double>(g.num_edges()) /
                                       static_cast<double>(with_in);
  return s;
}

}  // namespace mbr::graph
