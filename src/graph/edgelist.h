#ifndef MBR_GRAPH_EDGELIST_H_
#define MBR_GRAPH_EDGELIST_H_

// Human-readable labeled edge-list format, the adoption path for real
// datasets (crawls, DBLP dumps): topics are spelled by name against a
// Vocabulary, so files are self-describing and diffable.
//
//   # any comment
//   G <num_nodes>
//   N <node> <topic>[,<topic>...]          (publisher profile; optional)
//   E <src> <dst> [<topic>[,<topic>...]]   (follow edge + interest labels)

#include <string>

#include "graph/labeled_graph.h"
#include "topics/vocabulary.h"
#include "util/status.h"

namespace mbr::graph {

// Writes `g` in the text format, naming topics via `vocab`.
// Preconditions: vocab.size() >= g.num_topics().
util::Status WriteEdgeList(const LabeledGraph& g,
                           const topics::Vocabulary& vocab,
                           const std::string& path);

// Parses the text format; unknown topic names, malformed records, missing
// G header or out-of-range node ids produce an error Status.
util::Result<LabeledGraph> ReadEdgeList(const std::string& path,
                                        const topics::Vocabulary& vocab);

}  // namespace mbr::graph

#endif  // MBR_GRAPH_EDGELIST_H_
