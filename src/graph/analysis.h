#ifndef MBR_GRAPH_ANALYSIS_H_
#define MBR_GRAPH_ANALYSIS_H_

// Structural analysis of follow graphs, used to validate the generated
// datasets against the published structure of the real Twitter follow
// graph (Myers et al., WWW 2014 [18], which the paper cites as the
// reference for its Table 2 properties): clustering, reciprocity,
// component structure and degree histograms.

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"
#include "util/rng.h"

namespace mbr::graph {

// Fraction of edges (u, v) for which (v, u) also exists. Myers et al.
// report ~44% for the real follow graph.
double Reciprocity(const LabeledGraph& g);

// Average local clustering coefficient over `samples` random nodes with
// out-degree >= 2, treating edges as undirected: the probability that two
// random followees of a node are connected (either direction).
double EstimateClusteringCoefficient(const LabeledGraph& g, uint32_t samples,
                                     util::Rng* rng);

// Weakly connected components (edges treated as undirected). Returns the
// component id per node; *num_components receives the count.
std::vector<uint32_t> WeaklyConnectedComponents(const LabeledGraph& g,
                                                uint32_t* num_components);

// Size of the largest weakly connected component.
uint64_t LargestComponentSize(const LabeledGraph& g);

// Log2-bucketed in-degree histogram: bucket[i] counts nodes with in-degree
// in [2^i, 2^(i+1)) (bucket 0 additionally holds degree 0 and 1).
std::vector<uint64_t> InDegreeHistogram(const LabeledGraph& g);

// Least-squares slope of log(count) vs log(degree) over the non-empty
// histogram buckets — a crude power-law exponent estimate (Myers et al.
// report an in-degree exponent near -1.35 in the plotted range).
double EstimatePowerLawExponent(const std::vector<uint64_t>& histogram);

}  // namespace mbr::graph

#endif  // MBR_GRAPH_ANALYSIS_H_
