#ifndef MBR_GRAPH_LABELED_GRAPH_H_
#define MBR_GRAPH_LABELED_GRAPH_H_

// The labeled social graph G = (N, E, T, labelN, labelE) of §3.1.
//
// Nodes are users (accounts); a directed edge (u, v) means "u follows v",
// i.e., u receives v's publications. labelN maps a user to the topics of his
// posts (publisher profile); labelE maps a follow edge to the topics of the
// follower's interest in the publisher.
//
// Storage is immutable CSR in both directions: out-adjacency (followees,
// used for the path exploration u ❀ v) and in-adjacency (followers, used
// for authority counts |Γu| and |Γu(t)|). Adjacency lists are sorted by
// neighbor id, with per-edge TopicSets stored alongside.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "topics/topic.h"
#include "util/status.h"

namespace mbr::graph {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffff;

class LabeledGraph;
class Snapshot;

// Accumulates nodes and edges, then freezes them into a LabeledGraph.
// Duplicate (src, dst) edges are merged by unioning their label sets;
// self-loops are rejected (a user cannot follow himself).
class GraphBuilder {
 public:
  GraphBuilder(NodeId num_nodes, int num_topics);

  NodeId num_nodes() const { return num_nodes_; }

  // Publisher profile of `u` (labelN).
  void SetNodeLabels(NodeId u, topics::TopicSet labels);

  // Adds `u` follows `v` with interest labels (labelE). Returns false (and
  // adds nothing) for self-loops. Preconditions: u, v < num_nodes.
  bool AddEdge(NodeId u, NodeId v, topics::TopicSet labels);

  uint64_t num_edges_added() const { return edges_.size(); }

  // Freezes into an immutable graph. The builder is consumed.
  LabeledGraph Build() &&;

 private:
  struct RawEdge {
    NodeId src;
    NodeId dst;
    topics::TopicSet labels;
  };

  NodeId num_nodes_;
  int num_topics_;
  std::vector<topics::TopicSet> node_labels_;
  std::vector<RawEdge> edges_;
};

class LabeledGraph {
 public:
  LabeledGraph() = default;

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return out_dst_.size(); }
  int num_topics() const { return num_topics_; }

  // ---- Out direction: v in OutNeighbors(u) <=> u follows v.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    MBR_DCHECK(u < num_nodes_);
    return {out_dst_.data() + out_off_[u], out_off_[u + 1] - out_off_[u]};
  }
  std::span<const topics::TopicSet> OutEdgeLabels(NodeId u) const {
    MBR_DCHECK(u < num_nodes_);
    return {out_lab_.data() + out_off_[u], out_off_[u + 1] - out_off_[u]};
  }
  uint32_t OutDegree(NodeId u) const {
    MBR_DCHECK(u < num_nodes_);
    return static_cast<uint32_t>(out_off_[u + 1] - out_off_[u]);
  }

  // ---- In direction: w in InNeighbors(v) <=> w follows v (w ∈ Γv).
  std::span<const NodeId> InNeighbors(NodeId v) const {
    MBR_DCHECK(v < num_nodes_);
    return {in_src_.data() + in_off_[v], in_off_[v + 1] - in_off_[v]};
  }
  std::span<const topics::TopicSet> InEdgeLabels(NodeId v) const {
    MBR_DCHECK(v < num_nodes_);
    return {in_lab_.data() + in_off_[v], in_off_[v + 1] - in_off_[v]};
  }
  // |Γv|: total number of followers of v.
  uint32_t InDegree(NodeId v) const {
    MBR_DCHECK(v < num_nodes_);
    return static_cast<uint32_t>(in_off_[v + 1] - in_off_[v]);
  }

  // Publisher profile labelN(u).
  topics::TopicSet NodeLabels(NodeId u) const {
    MBR_DCHECK(u < num_nodes_);
    return node_labels_[u];
  }

  // labelE(u -> v), or empty set if the edge does not exist.
  topics::TopicSet EdgeLabels(NodeId u, NodeId v) const;

  // Whether u follows v. O(log OutDegree(u)).
  bool HasEdge(NodeId u, NodeId v) const;

  // A copy of this graph with the given (src, dst) edges removed. Used by
  // the evaluation protocol (§5.3: "All edges from T are then removed from
  // the graph"). Unknown edges are ignored.
  LabeledGraph WithoutEdges(
      const std::vector<std::pair<NodeId, NodeId>>& removed) const;

  // One replacement adjacency row for PatchAdjacency: `nbrs` sorted
  // ascending with no duplicates, `labs` parallel to it.
  struct RowPatch {
    NodeId node = 0;
    std::vector<NodeId> nbrs;
    std::vector<topics::TopicSet> labs;
  };

  // The incremental-materialization seam (DESIGN.md §6.9): a copy of
  // `prev` where the out-rows listed in `out_patches` and the in-rows in
  // `in_patches` are replaced wholesale and every other row is copied from
  // `prev`'s arrays unchanged. Patches must be sorted by node with no
  // duplicate nodes, and the two directions must describe the same edge
  // set (total edge counts are checked). Node labels are carried over.
  // The result is byte-identical to rebuilding the full graph through
  // GraphBuilder with the same live edge set, because builder output is
  // exactly "rows sorted by node, out-rows sorted by dst, in-rows sorted
  // by src" — the representation this splices into.
  static LabeledGraph PatchAdjacency(const LabeledGraph& prev,
                                     std::span<const RowPatch> out_patches,
                                     std::span<const RowPatch> in_patches);

  // ---- Binary serialisation (delegates to graph::Snapshot, the versioned
  // and checksummed serde container; see graph/snapshot.h).
  util::Status SaveTo(const std::string& path) const;
  static util::Result<LabeledGraph> LoadFrom(const std::string& path);

  // Approximate resident bytes of the CSR arrays.
  size_t StorageBytes() const;

 private:
  friend class GraphBuilder;
  friend class Snapshot;  // persistence (graph/snapshot.h)

  NodeId num_nodes_ = 0;
  int num_topics_ = 0;
  std::vector<topics::TopicSet> node_labels_;

  // CSR, both directions. Offsets have num_nodes_+1 entries.
  std::vector<uint64_t> out_off_;
  std::vector<NodeId> out_dst_;
  std::vector<topics::TopicSet> out_lab_;
  std::vector<uint64_t> in_off_;
  std::vector<NodeId> in_src_;
  std::vector<topics::TopicSet> in_lab_;
};

// Topological properties reported in Table 2 of the paper.
struct DegreeStatistics {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  double avg_out_degree = 0.0;
  double avg_in_degree = 0.0;
  uint32_t max_in_degree = 0;
  uint32_t max_out_degree = 0;
};

DegreeStatistics ComputeDegreeStatistics(const LabeledGraph& g);

}  // namespace mbr::graph

#endif  // MBR_GRAPH_LABELED_GRAPH_H_
