#include "graph/bfs.h"

#include <deque>

namespace mbr::graph {

std::vector<VisitedNode> KVicinity(const LabeledGraph& g, NodeId source,
                                   uint32_t max_depth, Direction dir) {
  MBR_CHECK(source < g.num_nodes());
  std::vector<VisitedNode> order;
  std::vector<bool> seen(g.num_nodes(), false);
  std::deque<VisitedNode> queue;
  queue.push_back({source, 0});
  seen[source] = true;
  while (!queue.empty()) {
    VisitedNode cur = queue.front();
    queue.pop_front();
    order.push_back(cur);
    if (cur.depth == max_depth) continue;
    auto nbrs = dir == Direction::kOut ? g.OutNeighbors(cur.node)
                                       : g.InNeighbors(cur.node);
    for (NodeId nxt : nbrs) {
      if (!seen[nxt]) {
        seen[nxt] = true;
        queue.push_back({nxt, cur.depth + 1});
      }
    }
  }
  return order;
}

std::vector<uint32_t> SeedCoverageCounts(const LabeledGraph& g,
                                         const std::vector<NodeId>& seeds,
                                         uint32_t max_depth, Direction dir) {
  std::vector<uint32_t> counts(g.num_nodes(), 0);
  for (NodeId seed : seeds) {
    for (const VisitedNode& v : KVicinity(g, seed, max_depth, dir)) {
      ++counts[v.node];
    }
  }
  return counts;
}

}  // namespace mbr::graph
