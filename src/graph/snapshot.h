#ifndef MBR_GRAPH_SNAPSHOT_H_
#define MBR_GRAPH_SNAPSHOT_H_

// Versioned, checksummed persistence of a LabeledGraph — the warm-start
// artifact of a serving worker.
//
// A worker that boots from a snapshot skips edge-list parsing and CSR
// construction entirely: the file holds the frozen CSR arrays (both
// directions) plus node/edge topic labels, framed by the util::serde
// container (magic, format version, per-section CRC32). Loading validates
// the structural invariants the rest of the system relies on — offsets
// monotone and consistent, adjacency sorted and in-range, no self-loops,
// label bits within the topic vocabulary — so a loaded graph is always safe
// to hand to Scorer / AuthorityIndex, and any malformed byte comes back as
// a util::Status instead of UB (see tests/serde_corruption_test.cc).
//
// LabeledGraph::SaveTo / LoadFrom delegate here; `mbrec save-graph`
// converts any readable graph (including .edges text) into this format.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/labeled_graph.h"
#include "util/status.h"

namespace mbr::util::serde {
class Reader;
}  // namespace mbr::util::serde

namespace mbr::graph {

class Snapshot {
 public:
  // Bump when the section schema changes; loaders reject other versions.
  static constexpr uint32_t kFormatVersion = 1;

  static util::Status Save(const LabeledGraph& g, const std::string& path);
  static util::Result<LabeledGraph> Load(const std::string& path);

  // In-memory variants, used by the corruption-injection tests and usable
  // for shipping snapshots over RPC.
  static std::vector<uint8_t> Serialize(const LabeledGraph& g);
  static util::Result<LabeledGraph> LoadFromBuffer(
      std::span<const uint8_t> bytes);

 private:
  static util::Result<LabeledGraph> FromReader(util::serde::Reader reader);
};

}  // namespace mbr::graph

#endif  // MBR_GRAPH_SNAPSHOT_H_
