#include "graph/snapshot.h"

#include <cstdio>

#include "util/serde.h"

namespace mbr::graph {

namespace {

using util::serde::ArtifactKind;
using util::serde::Reader;
using util::serde::Writer;

// Section ids of format version 1.
enum : uint32_t {
  kSecHeader = 1,      // u64 num_nodes, u32 num_topics
  kSecNodeLabels = 2,  // TopicSet[num_nodes]
  kSecOutOff = 3,      // u64[num_nodes + 1]
  kSecOutDst = 4,      // NodeId[m]
  kSecOutLab = 5,      // TopicSet[m]
  kSecInOff = 6,       // u64[num_nodes + 1]
  kSecInSrc = 7,       // NodeId[m]
  kSecInLab = 8,       // TopicSet[m]
};

// Magic of the unversioned pre-serde graph format, recognised only to give
// a clear error instead of "bad container magic".
constexpr uint64_t kLegacyMagic = 0x4d42524752415048ULL;  // "MBRGRAPH"

bool StartsWithLegacyMagic(std::span<const uint8_t> bytes) {
  uint64_t magic = 0;
  if (bytes.size() < sizeof(magic)) return false;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  return magic == kLegacyMagic;
}

// Checks one CSR direction: offsets are monotone and anchored, adjacency is
// strictly increasing per node (sorted, duplicate-free), ids are in range
// and never self-loops.
util::Status ValidateCsr(const std::vector<uint64_t>& off,
                         const std::vector<NodeId>& adj, NodeId num_nodes,
                         const char* dir) {
  const std::string d(dir);
  if (off.size() != static_cast<size_t>(num_nodes) + 1 || off.front() != 0 ||
      off.back() != adj.size()) {
    return util::Status::InvalidArgument("snapshot: bad " + d + " offsets");
  }
  // Full monotonicity pass first: with front/back anchored it bounds every
  // offset by adj.size(), so the adjacency pass below cannot index OOB.
  for (NodeId u = 0; u < num_nodes; ++u) {
    if (off[u] > off[u + 1]) {
      return util::Status::InvalidArgument(
          "snapshot: non-monotone " + d + " offsets at node " +
          std::to_string(u));
    }
  }
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (uint64_t i = off[u]; i < off[u + 1]; ++i) {
      if (adj[i] >= num_nodes || adj[i] == u ||
          (i > off[u] && adj[i] <= adj[i - 1])) {
        return util::Status::InvalidArgument(
            "snapshot: bad " + d + " adjacency at node " + std::to_string(u));
      }
    }
  }
  return util::Status::Ok();
}

util::Status ValidateLabels(const std::vector<topics::TopicSet>& labels,
                            int num_topics, const char* what) {
  const uint64_t mask = num_topics >= 64
                            ? ~uint64_t{0}
                            : (uint64_t{1} << num_topics) - 1;
  for (const topics::TopicSet& s : labels) {
    if ((s.bits() & ~mask) != 0) {
      return util::Status::InvalidArgument(
          std::string("snapshot: ") + what + " labels outside vocabulary");
    }
  }
  return util::Status::Ok();
}

}  // namespace

util::Result<LabeledGraph> Snapshot::FromReader(Reader reader) {
  if (reader.version() != Snapshot::kFormatVersion) {
    return util::Status::InvalidArgument(
        "unsupported graph snapshot version " +
        std::to_string(reader.version()));
  }
  MBR_RETURN_IF_ERROR(reader.EnterSection(kSecHeader));
  uint64_t num_nodes64 = 0;
  uint32_t num_topics = 0;
  MBR_RETURN_IF_ERROR(reader.ReadU64(&num_nodes64));
  MBR_RETURN_IF_ERROR(reader.ReadU32(&num_topics));
  MBR_RETURN_IF_ERROR(reader.ExitSection());
  if (num_nodes64 >= kInvalidNode || num_topics == 0 ||
      num_topics > static_cast<uint32_t>(topics::kMaxTopics)) {
    return util::Status::InvalidArgument("snapshot: implausible header");
  }
  const NodeId n = static_cast<NodeId>(num_nodes64);

  // All array reads are bounded: counts derived from the (checksummed)
  // header, and never beyond the section's own byte size.
  LabeledGraph g;
  g.num_nodes_ = n;
  g.num_topics_ = static_cast<int>(num_topics);
  MBR_RETURN_IF_ERROR(reader.EnterSection(kSecNodeLabels));
  MBR_RETURN_IF_ERROR(reader.ReadPodArray(&g.node_labels_, n));
  MBR_RETURN_IF_ERROR(reader.ExitSection());
  if (g.node_labels_.size() != n) {
    return util::Status::InvalidArgument("snapshot: node label count");
  }

  const uint64_t max_off = static_cast<uint64_t>(n) + 1;
  MBR_RETURN_IF_ERROR(reader.EnterSection(kSecOutOff));
  MBR_RETURN_IF_ERROR(reader.ReadPodArray(&g.out_off_, max_off));
  MBR_RETURN_IF_ERROR(reader.ExitSection());
  if (g.out_off_.size() != max_off) {
    return util::Status::InvalidArgument("snapshot: out offset count");
  }
  const uint64_t m = g.out_off_.back();
  MBR_RETURN_IF_ERROR(reader.EnterSection(kSecOutDst));
  MBR_RETURN_IF_ERROR(reader.ReadPodArray(&g.out_dst_, m));
  MBR_RETURN_IF_ERROR(reader.ExitSection());
  MBR_RETURN_IF_ERROR(reader.EnterSection(kSecOutLab));
  MBR_RETURN_IF_ERROR(reader.ReadPodArray(&g.out_lab_, m));
  MBR_RETURN_IF_ERROR(reader.ExitSection());

  MBR_RETURN_IF_ERROR(reader.EnterSection(kSecInOff));
  MBR_RETURN_IF_ERROR(reader.ReadPodArray(&g.in_off_, max_off));
  MBR_RETURN_IF_ERROR(reader.ExitSection());
  if (g.in_off_.size() != max_off) {
    return util::Status::InvalidArgument("snapshot: in offset count");
  }
  MBR_RETURN_IF_ERROR(reader.EnterSection(kSecInSrc));
  MBR_RETURN_IF_ERROR(reader.ReadPodArray(&g.in_src_, m));
  MBR_RETURN_IF_ERROR(reader.ExitSection());
  MBR_RETURN_IF_ERROR(reader.EnterSection(kSecInLab));
  MBR_RETURN_IF_ERROR(reader.ReadPodArray(&g.in_lab_, m));
  MBR_RETURN_IF_ERROR(reader.ExitSection());
  MBR_RETURN_IF_ERROR(reader.ExpectEnd());

  if (g.out_dst_.size() != m || g.out_lab_.size() != m ||
      g.in_src_.size() != m || g.in_lab_.size() != m ||
      g.in_off_.back() != m) {
    return util::Status::InvalidArgument("snapshot: edge array counts");
  }
  MBR_RETURN_IF_ERROR(ValidateCsr(g.out_off_, g.out_dst_, n, "out"));
  MBR_RETURN_IF_ERROR(ValidateCsr(g.in_off_, g.in_src_, n, "in"));
  MBR_RETURN_IF_ERROR(
      ValidateLabels(g.node_labels_, g.num_topics_, "node"));
  MBR_RETURN_IF_ERROR(ValidateLabels(g.out_lab_, g.num_topics_, "out edge"));
  MBR_RETURN_IF_ERROR(ValidateLabels(g.in_lab_, g.num_topics_, "in edge"));
  return g;
}

std::vector<uint8_t> Snapshot::Serialize(const LabeledGraph& g) {
  static_assert(sizeof(topics::TopicSet) == sizeof(uint64_t));
  Writer w(ArtifactKind::kGraphSnapshot, kFormatVersion);
  w.BeginSection(kSecHeader);
  w.PutU64(g.num_nodes_);
  w.PutU32(static_cast<uint32_t>(g.num_topics_));
  w.EndSection();
  w.BeginSection(kSecNodeLabels);
  w.PutPodArray(g.node_labels_);
  w.EndSection();
  w.BeginSection(kSecOutOff);
  w.PutPodArray(g.out_off_);
  w.EndSection();
  w.BeginSection(kSecOutDst);
  w.PutPodArray(g.out_dst_);
  w.EndSection();
  w.BeginSection(kSecOutLab);
  w.PutPodArray(g.out_lab_);
  w.EndSection();
  w.BeginSection(kSecInOff);
  w.PutPodArray(g.in_off_);
  w.EndSection();
  w.BeginSection(kSecInSrc);
  w.PutPodArray(g.in_src_);
  w.EndSection();
  w.BeginSection(kSecInLab);
  w.PutPodArray(g.in_lab_);
  w.EndSection();
  return w.buffer();
}

util::Status Snapshot::Save(const LabeledGraph& g, const std::string& path) {
  std::vector<uint8_t> bytes = Serialize(g);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open for write: " + path);
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return util::Status::IoError("short write: " + path);
  return util::Status::Ok();
}

util::Result<LabeledGraph> Snapshot::Load(const std::string& path) {
  auto reader = Reader::FromFile(path, ArtifactKind::kGraphSnapshot);
  if (!reader.ok()) {
    // Distinguish the unversioned pre-serde format from random garbage.
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f != nullptr) {
      uint8_t head[8] = {};
      size_t got = std::fread(head, 1, sizeof(head), f);
      std::fclose(f);
      if (StartsWithLegacyMagic({head, got})) {
        return util::Status::InvalidArgument(
            "pre-versioned graph file (no checksum/version): regenerate it "
            "with `mbrec save-graph`: " +
            path);
      }
    }
    return reader.status();
  }
  return FromReader(std::move(*reader));
}

util::Result<LabeledGraph> Snapshot::LoadFromBuffer(
    std::span<const uint8_t> bytes) {
  if (StartsWithLegacyMagic(bytes)) {
    return util::Status::InvalidArgument(
        "pre-versioned graph buffer (no checksum/version)");
  }
  auto reader = Reader::FromBuffer(bytes, ArtifactKind::kGraphSnapshot);
  if (!reader.ok()) return reader.status();
  return FromReader(std::move(*reader));
}

}  // namespace mbr::graph
