#include "topics/similarity_matrix.h"

#include <cmath>
#include <utility>

namespace mbr::topics {

SimilarityMatrix::SimilarityMatrix(const Vocabulary& vocab,
                                   const Taxonomy& tax)
    : SimilarityMatrix(
          FromTaxonomy(vocab, tax, SimilarityMeasure::kWuPalmer)) {}

SimilarityMatrix SimilarityMatrix::FromTaxonomy(const Vocabulary& vocab,
                                                const Taxonomy& tax,
                                                SimilarityMeasure measure) {
  MBR_CHECK(tax.Covers(vocab));
  SimilarityMatrix m;
  m.n_ = vocab.size();
  m.tri_.resize(static_cast<size_t>(m.n_) * (m.n_ + 1) / 2);
  for (TopicId a = 0; a < m.n_; ++a) {
    for (TopicId b = 0; b <= a; ++b) {
      double s = 0.0;
      switch (measure) {
        case SimilarityMeasure::kWuPalmer:
          s = tax.WuPalmer(a, b);
          break;
        case SimilarityMeasure::kInversePath:
          s = 1.0 / (1.0 + tax.PathLength(a, b));
          break;
        case SimilarityMeasure::kExactMatch:
          s = (a == b) ? 1.0 : 0.0;
          break;
      }
      m.tri_[m.IndexOf(a, b)] = s;
    }
  }
  return m;
}

SimilarityMatrix SimilarityMatrix::FromDense(int n,
                                             const std::vector<double>& full) {
  MBR_CHECK(n > 0 && n <= kMaxTopics);
  MBR_CHECK(full.size() == static_cast<size_t>(n) * n);
  SimilarityMatrix m;
  m.n_ = n;
  m.tri_.resize(static_cast<size_t>(n) * (n + 1) / 2);
  for (TopicId a = 0; a < n; ++a) {
    for (TopicId b = 0; b <= a; ++b) {
      double ab = full[static_cast<size_t>(a) * n + b];
      double ba = full[static_cast<size_t>(b) * n + a];
      MBR_CHECK(std::fabs(ab - ba) < 1e-12);  // symmetric
      if (a == b) MBR_CHECK(std::fabs(ab - 1.0) < 1e-12);
      m.tri_[m.IndexOf(a, b)] = ab;
    }
  }
  return m;
}

const SimilarityMatrix& TwitterSimilarity() {
  static const SimilarityMatrix& m =
      *new SimilarityMatrix(TwitterVocabulary(), TwitterTaxonomy());
  return m;
}

const SimilarityMatrix& DblpSimilarity() {
  static const SimilarityMatrix& m =
      *new SimilarityMatrix(DblpVocabulary(), DblpTaxonomy());
  return m;
}

}  // namespace mbr::topics
