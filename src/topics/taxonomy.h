#ifndef MBR_TOPICS_TAXONOMY_H_
#define MBR_TOPICS_TAXONOMY_H_

// IS-A taxonomy over topics and the Wu & Palmer similarity measure.
//
// The paper computes semantic similarity between topics with Wu & Palmer
// (ACL 1994) on top of WordNet. We build an explicit small IS-A tree whose
// leaves are the vocabulary topics (plus internal category nodes), and
// implement
//
//   sim(a, b) = 2 * depth(lcs(a, b)) / (depth(a) + depth(b))
//
// with the root at depth 1, so sim is in (0, 1] and sim(t, t) = 1.

#include <string>
#include <string_view>
#include <vector>

#include "topics/topic.h"
#include "topics/vocabulary.h"
#include "util/status.h"

namespace mbr::topics {

class Taxonomy {
 public:
  // Incrementally builds a tree. The root is created by the constructor.
  Taxonomy();

  // Adds an internal (non-topic) category node under `parent_node`.
  // Returns the new node index. Preconditions: parent_node is valid.
  int AddCategory(std::string name, int parent_node);

  // Attaches vocabulary topic `t` as a leaf under `parent_node`.
  // Preconditions: t not yet attached.
  void AttachTopic(TopicId t, int parent_node);

  int root() const { return 0; }

  // Whether every topic of `vocab` is attached.
  bool Covers(const Vocabulary& vocab) const;

  // Depth of the tree node a topic is attached to (root = 1).
  // Preconditions: topic attached.
  int Depth(TopicId t) const;

  // Depth of the lowest common subsumer of a and b.
  int LcsDepth(TopicId a, TopicId b) const;

  // Wu & Palmer similarity in (0, 1]. Preconditions: both attached.
  double WuPalmer(TopicId a, TopicId b) const;

  // Number of tree edges on the path between a and b:
  // depth(a) + depth(b) - 2 * depth(lcs).
  int PathLength(TopicId a, TopicId b) const;

 private:
  struct Node {
    std::string name;
    int parent;  // -1 for root
    int depth;   // root = 1
  };

  int NodeOf(TopicId t) const;

  std::vector<Node> nodes_;
  std::vector<int> topic_node_;  // TopicId -> node index, -1 if unattached
};

// Taxonomy over TwitterVocabulary(): 5 thematic categories under the root.
// Mirrors the coarse structure of web-directory classifications (the paper
// compares its label distribution to the Yahoo! Directory).
const Taxonomy& TwitterTaxonomy();

// Taxonomy over DblpVocabulary(): data-centric / systems / theory-AI
// groupings of research areas.
const Taxonomy& DblpTaxonomy();

}  // namespace mbr::topics

#endif  // MBR_TOPICS_TAXONOMY_H_
