#ifndef MBR_TOPICS_VOCABULARY_H_
#define MBR_TOPICS_VOCABULARY_H_

// Topic vocabulary: dense TopicId <-> name mapping.

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "topics/topic.h"
#include "util/status.h"

namespace mbr::topics {

class Vocabulary {
 public:
  Vocabulary() = default;

  // Builds a vocabulary from unique names. Preconditions: no duplicates,
  // 0 < names.size() <= kMaxTopics (checked).
  static Vocabulary FromNames(std::vector<std::string> names);

  int size() const { return static_cast<int>(names_.size()); }

  // Preconditions: t < size().
  const std::string& Name(TopicId t) const {
    MBR_CHECK(t < names_.size());
    return names_[t];
  }

  // kInvalidTopic if unknown.
  TopicId Id(std::string_view name) const;

  // A TopicSet containing every topic of the vocabulary.
  TopicSet AllTopics() const;

  // All ids, ascending; convenient for range-for over the vocabulary.
  std::vector<TopicId> Ids() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TopicId> ids_;
};

// The 18-topic web-document vocabulary standing in for the OpenCalais
// category list the paper uses on Twitter (§5.1). Includes the topics named
// in the paper's running examples and experiments: technology, bigdata,
// social, leisure, health, politics, sports.
const Vocabulary& TwitterVocabulary();

// Research-area vocabulary standing in for the Singapore conference
// classification the paper uses on DBLP (§5.1).
const Vocabulary& DblpVocabulary();

}  // namespace mbr::topics

#endif  // MBR_TOPICS_VOCABULARY_H_
