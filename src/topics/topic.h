#ifndef MBR_TOPICS_TOPIC_H_
#define MBR_TOPICS_TOPIC_H_

// Topic identifiers and sets.
//
// The paper labels its graphs with a small topic vocabulary: 18 OpenCalais
// web-document categories for Twitter and a comparable number of research
// areas (Singapore classification) for DBLP. We exploit that smallness: a
// TopicId is a dense index into a Vocabulary and a TopicSet is a 64-bit
// bitmask, so per-edge label sets cost 8 bytes and set operations are single
// instructions. Vocabularies larger than 64 topics are rejected at build
// time (the paper's own similarity-matrix sizing argument, §5.2, assumes a
// small vocabulary too).

#include <cstdint>

#include "util/logging.h"

namespace mbr::topics {

using TopicId = uint16_t;

inline constexpr TopicId kInvalidTopic = 0xffff;
inline constexpr int kMaxTopics = 64;

// A set of topics, stored as a bitmask over TopicIds < kMaxTopics.
class TopicSet {
 public:
  constexpr TopicSet() : bits_(0) {}
  explicit constexpr TopicSet(uint64_t bits) : bits_(bits) {}

  static TopicSet Single(TopicId t) {
    MBR_DCHECK(t < kMaxTopics);
    return TopicSet(uint64_t{1} << t);
  }

  void Add(TopicId t) {
    MBR_DCHECK(t < kMaxTopics);
    bits_ |= uint64_t{1} << t;
  }
  void Remove(TopicId t) {
    MBR_DCHECK(t < kMaxTopics);
    bits_ &= ~(uint64_t{1} << t);
  }
  bool Contains(TopicId t) const {
    MBR_DCHECK(t < kMaxTopics);
    return (bits_ >> t) & 1;
  }

  bool empty() const { return bits_ == 0; }
  int size() const { return __builtin_popcountll(bits_); }
  uint64_t bits() const { return bits_; }

  TopicSet Union(TopicSet o) const { return TopicSet(bits_ | o.bits_); }
  TopicSet Intersect(TopicSet o) const { return TopicSet(bits_ & o.bits_); }

  // Iteration over member TopicIds, ascending.
  class Iterator {
   public:
    explicit Iterator(uint64_t bits) : bits_(bits) {}
    TopicId operator*() const {
      return static_cast<TopicId>(__builtin_ctzll(bits_));
    }
    Iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return bits_ != o.bits_; }

   private:
    uint64_t bits_;
  };
  Iterator begin() const { return Iterator(bits_); }
  Iterator end() const { return Iterator(0); }

  friend bool operator==(TopicSet a, TopicSet b) { return a.bits_ == b.bits_; }

 private:
  uint64_t bits_;
};

}  // namespace mbr::topics

#endif  // MBR_TOPICS_TOPIC_H_
