#include "topics/taxonomy.h"

#include <algorithm>

namespace mbr::topics {

Taxonomy::Taxonomy() : topic_node_(kMaxTopics, -1) {
  nodes_.push_back({"<root>", -1, 1});
}

int Taxonomy::AddCategory(std::string name, int parent_node) {
  MBR_CHECK(parent_node >= 0 &&
            parent_node < static_cast<int>(nodes_.size()));
  nodes_.push_back(
      {std::move(name), parent_node, nodes_[parent_node].depth + 1});
  return static_cast<int>(nodes_.size()) - 1;
}

void Taxonomy::AttachTopic(TopicId t, int parent_node) {
  MBR_CHECK(t < kMaxTopics);
  MBR_CHECK(topic_node_[t] == -1);
  MBR_CHECK(parent_node >= 0 &&
            parent_node < static_cast<int>(nodes_.size()));
  nodes_.push_back({"", parent_node, nodes_[parent_node].depth + 1});
  topic_node_[t] = static_cast<int>(nodes_.size()) - 1;
}

bool Taxonomy::Covers(const Vocabulary& vocab) const {
  for (TopicId t : vocab.Ids()) {
    if (topic_node_[t] == -1) return false;
  }
  return true;
}

int Taxonomy::NodeOf(TopicId t) const {
  MBR_CHECK(t < kMaxTopics);
  int n = topic_node_[t];
  MBR_CHECK(n != -1);
  return n;
}

int Taxonomy::Depth(TopicId t) const { return nodes_[NodeOf(t)].depth; }

int Taxonomy::LcsDepth(TopicId a, TopicId b) const {
  int na = NodeOf(a), nb = NodeOf(b);
  while (nodes_[na].depth > nodes_[nb].depth) na = nodes_[na].parent;
  while (nodes_[nb].depth > nodes_[na].depth) nb = nodes_[nb].parent;
  while (na != nb) {
    na = nodes_[na].parent;
    nb = nodes_[nb].parent;
  }
  return nodes_[na].depth;
}

double Taxonomy::WuPalmer(TopicId a, TopicId b) const {
  double lcs = LcsDepth(a, b);
  return 2.0 * lcs / (Depth(a) + Depth(b));
}

int Taxonomy::PathLength(TopicId a, TopicId b) const {
  return Depth(a) + Depth(b) - 2 * LcsDepth(a, b);
}

namespace {

Taxonomy* BuildTwitterTaxonomy() {
  const Vocabulary& v = TwitterVocabulary();
  auto* tax = new Taxonomy();
  int stem = tax->AddCategory("stem", tax->root());
  int society = tax->AddCategory("society", tax->root());
  int lifestyle = tax->AddCategory("lifestyle", tax->root());
  int economy = tax->AddCategory("economy", tax->root());
  int world = tax->AddCategory("world", tax->root());

  auto attach = [&](const char* name, int parent) {
    TopicId t = v.Id(name);
    MBR_CHECK(t != kInvalidTopic);
    tax->AttachTopic(t, parent);
  };
  // Computing/science cluster: technology and bigdata are siblings, so the
  // paper's Fig. 1 example (an edge labeled `bigdata` contributing to a
  // `technology` query) gets a high but non-1 similarity.
  int computing = tax->AddCategory("computing", stem);
  attach("technology", computing);
  attach("bigdata", computing);
  attach("science", stem);

  attach("social", society);
  attach("politics", society);
  attach("religion", society);
  attach("law", society);
  attach("education", society);

  attach("leisure", lifestyle);
  attach("sports", lifestyle);
  attach("entertainment", lifestyle);
  attach("travel", lifestyle);
  attach("food", lifestyle);

  attach("business", economy);
  attach("finance", economy);

  attach("health", world);
  attach("environment", world);
  attach("weather", world);

  MBR_CHECK(tax->Covers(v));
  return tax;
}

Taxonomy* BuildDblpTaxonomy() {
  const Vocabulary& v = DblpVocabulary();
  auto* tax = new Taxonomy();
  int data = tax->AddCategory("data-management", tax->root());
  int intel = tax->AddCategory("intelligence", tax->root());
  int systems = tax->AddCategory("systems", tax->root());
  int foundations = tax->AddCategory("foundations", tax->root());
  int interaction = tax->AddCategory("interaction", tax->root());

  auto attach = [&](const char* name, int parent) {
    TopicId t = v.Id(name);
    MBR_CHECK(t != kInvalidTopic);
    tax->AttachTopic(t, parent);
  };
  attach("databases", data);
  attach("datamining", data);
  attach("ir", data);

  attach("ai", intel);
  attach("ml", intel);
  attach("bioinformatics", intel);

  attach("networks", systems);
  attach("security", systems);
  attach("systems", systems);
  attach("software", systems);
  attach("distributed", systems);

  attach("theory", foundations);

  attach("graphics", interaction);
  attach("hci", interaction);

  MBR_CHECK(tax->Covers(v));
  return tax;
}

}  // namespace

const Taxonomy& TwitterTaxonomy() {
  static const Taxonomy& t = *BuildTwitterTaxonomy();
  return t;
}

const Taxonomy& DblpTaxonomy() {
  static const Taxonomy& t = *BuildDblpTaxonomy();
  return t;
}

}  // namespace mbr::topics
