#ifndef MBR_TOPICS_SIMILARITY_MATRIX_H_
#define MBR_TOPICS_SIMILARITY_MATRIX_H_

// Precomputed triangular topic-similarity matrix.
//
// §5.2: "The topic similarities given by the Wu and Palmer similarity scores
// are pre-computed and stored in memory as a triangular similarity matrix."
// For n topics we store n(n+1)/2 doubles; MaxSim implements the
// max_{t' ∈ label(e)} sim(t', t) term of the edge relevance (Equation 3).

#include <cstddef>
#include <vector>

#include "topics/taxonomy.h"
#include "topics/topic.h"
#include "topics/vocabulary.h"

namespace mbr::topics {

// Semantic similarity measures over the taxonomy. The paper uses Wu &
// Palmer and notes other measures (Resnik, Disco, ...) would work; the
// choice is evaluated by bench/ext_ablation_similarity.
enum class SimilarityMeasure {
  kWuPalmer,    // 2·depth(lcs) / (depth(a)+depth(b))     — the paper's
  kInversePath, // 1 / (1 + path_length(a, b))            — Leacock-Chodorow
                //                                           flavoured
  kExactMatch,  // 1 iff a == b                            — no semantics
};

class SimilarityMatrix {
 public:
  // Precomputes all pairwise Wu-Palmer similarities for `vocab` over `tax`.
  // Preconditions: tax covers vocab.
  SimilarityMatrix(const Vocabulary& vocab, const Taxonomy& tax);

  // Same, with an explicit measure.
  static SimilarityMatrix FromTaxonomy(const Vocabulary& vocab,
                                       const Taxonomy& tax,
                                       SimilarityMeasure measure);

  // Builds from an explicit symmetric matrix (tests / custom measures).
  // Preconditions: full.size() == n*n, symmetric, diagonal == 1.
  static SimilarityMatrix FromDense(int n, const std::vector<double>& full);

  int num_topics() const { return n_; }

  // sim(a, b) in [0, 1]. Preconditions: a, b < num_topics().
  double Sim(TopicId a, TopicId b) const {
    MBR_DCHECK(a < n_ && b < n_);
    return tri_[IndexOf(a, b)];
  }

  // max_{t' in set} Sim(t', t); 0 for the empty set.
  double MaxSim(TopicSet set, TopicId t) const {
    double best = 0.0;
    for (TopicId x : set) {
      double s = Sim(x, t);
      if (s > best) best = s;
    }
    return best;
  }

  // Bytes used by the triangular storage (paper §5.2 sizes this: ~2.5 KB for
  // 18 topics, ~750 MB for 10,000).
  size_t StorageBytes() const { return tri_.size() * sizeof(double); }

 private:
  SimilarityMatrix() = default;

  size_t IndexOf(TopicId a, TopicId b) const {
    if (a < b) std::swap(a, b);
    return static_cast<size_t>(a) * (a + 1) / 2 + b;
  }

  int n_ = 0;
  std::vector<double> tri_;
};

// Process-wide matrices for the builtin vocabularies.
const SimilarityMatrix& TwitterSimilarity();
const SimilarityMatrix& DblpSimilarity();

}  // namespace mbr::topics

#endif  // MBR_TOPICS_SIMILARITY_MATRIX_H_
