#include "topics/vocabulary.h"

namespace mbr::topics {

Vocabulary Vocabulary::FromNames(std::vector<std::string> names) {
  MBR_CHECK(!names.empty());
  MBR_CHECK(names.size() <= static_cast<size_t>(kMaxTopics));
  Vocabulary v;
  v.names_ = std::move(names);
  for (size_t i = 0; i < v.names_.size(); ++i) {
    auto [it, inserted] =
        v.ids_.emplace(v.names_[i], static_cast<TopicId>(i));
    MBR_CHECK(inserted);  // duplicate topic name
  }
  return v;
}

TopicId Vocabulary::Id(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kInvalidTopic : it->second;
}

TopicSet Vocabulary::AllTopics() const {
  TopicSet s;
  for (int i = 0; i < size(); ++i) s.Add(static_cast<TopicId>(i));
  return s;
}

std::vector<TopicId> Vocabulary::Ids() const {
  std::vector<TopicId> ids(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) ids[i] = static_cast<TopicId>(i);
  return ids;
}

const Vocabulary& TwitterVocabulary() {
  // Order = popularity rank: the dataset generators draw topics from a
  // Zipf distribution over TopicIds, so earlier names label more edges
  // (Figure 3). The paper's probe topics land where its Figure 9 needs
  // them: technology popular, leisure medium, social infrequent.
  static const Vocabulary& v = *new Vocabulary(Vocabulary::FromNames({
      "technology", "entertainment", "sports",      "politics",
      "business",   "finance",       "health",      "leisure",
      "education",  "science",       "travel",      "food",
      "bigdata",    "environment",   "law",         "weather",
      "religion",   "social",
  }));
  return v;
}

const Vocabulary& DblpVocabulary() {
  static const Vocabulary& v = *new Vocabulary(Vocabulary::FromNames({
      "databases", "datamining", "ir",         "ai",
      "ml",        "networks",   "security",   "systems",
      "software",  "theory",     "graphics",   "hci",
      "bioinformatics", "distributed",
  }));
  return v;
}

}  // namespace mbr::topics
