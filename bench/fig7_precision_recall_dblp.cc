// Figure 7: precision vs recall on the DBLP-like dataset.

#include <cstdio>

#include "bench_common.h"
#include "eval/algorithms.h"
#include "eval/linkpred.h"
#include "topics/similarity_matrix.h"
#include "util/table_printer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader("Figure 7 — Precision vs recall (DBLP)",
                     "EDBT'16 Fig. 7, §5.3");

  datagen::GeneratedDataset ds = datagen::GenerateDblp(bench::BenchDblpConfig());
  core::ScoreParams params;
  auto algos = eval::StandardAlgorithms(topics::DblpSimilarity(), params,
                                        /*include_ablations=*/false);
  eval::LinkPredConfig cfg;
  cfg.test_edges = 100;
  cfg.trials = bench::EnvTrials(3);
  cfg.seed = bench::EnvSeed(2016);
  auto curves = eval::RunLinkPrediction(ds.graph, algos, cfg);

  util::TablePrinter tp({"N", "recall Tr", "prec Tr", "recall Katz",
                         "prec Katz", "recall TWR", "prec TWR"});
  for (uint32_t n = 1; n <= cfg.max_top_n; ++n) {
    tp.AddRow({std::to_string(n),
               util::TablePrinter::Num(curves[0].recall_at[n - 1], 3),
               util::TablePrinter::Num(curves[0].precision_at[n - 1], 4),
               util::TablePrinter::Num(curves[1].recall_at[n - 1], 3),
               util::TablePrinter::Num(curves[1].precision_at[n - 1], 4),
               util::TablePrinter::Num(curves[2].recall_at[n - 1], 3),
               util::TablePrinter::Num(curves[2].precision_at[n - 1], 4)});
  }
  tp.Print("Precision/recall sweep over N (one point per N)");
  std::printf("\nexpected shape: Tr above Katz above TwitterRank across the "
              "whole precision-recall trade-off\n");
  return 0;
}
