// EXTENSION (paper §6 future work): graph dynamicity and landmark
// staleness.
//
// "As future work we intend to study updating strategies since many
//  following links have a short lifespan. This graph dynamicity may impact
//  the scores stored by the landmarks."
//
// We churn the follow graph (x% unfollows + x% new follows per round) and
// measure, per cumulative churn level, the Kendall-tau distance between the
// exact ranking on the *current* graph and (a) a stale landmark index built
// before any churn vs (b) a freshly rebuilt index — quantifying how fast
// stored landmark recommendations rot and what a rebuild buys back.
//
// Output: the human-readable tables on stdout plus
// BENCH_dynamic_updates.json (machine-readable drift + refresh-policy
// curves, same convention as BENCH_churn_drift.json) in the working
// directory.

#include <cstdio>

#include "bench_common.h"
#include "core/authority.h"
#include "core/scorer.h"
#include "dynamic/churn.h"
#include "dynamic/delta_graph.h"
#include "dynamic/incremental_authority.h"
#include "dynamic/refresh.h"
#include "landmark/approx.h"
#include "landmark/index.h"
#include "landmark/selection.h"
#include "topics/similarity_matrix.h"
#include "util/kendall.h"
#include "util/table_printer.h"
#include "util/top_k.h"

namespace {

using namespace mbr;

std::vector<uint32_t> TopIds(const std::unordered_map<graph::NodeId, double>& scores,
                             graph::NodeId self, uint32_t k) {
  util::TopK topk(k);
  for (const auto& [v, s] : scores) {
    if (v != self && s > 0.0) topk.Offer(v, s);
  }
  std::vector<uint32_t> ids;
  for (const auto& r : topk.Take()) ids.push_back(r.id);
  return ids;
}

std::vector<uint32_t> ExactTop(const core::Scorer& scorer, graph::NodeId u,
                               topics::TopicId t, uint32_t k) {
  core::ExplorationResult res =
      scorer.Explore(u, topics::TopicSet::Single(t));
  util::TopK topk(k);
  for (graph::NodeId v : res.reached()) {
    if (v != u && res.Sigma(v, t) > 0.0) topk.Offer(v, res.Sigma(v, t));
  }
  std::vector<uint32_t> ids;
  for (const auto& r : topk.Take()) ids.push_back(r.id);
  return ids;
}

// One cumulative-churn checkpoint of the staleness study.
struct RoundSample {
  double cumulative_churn = 0.0;
  double tau_stale = 0.0;
  double tau_fresh = 0.0;
  double max_staleness_err = 0.0;
  double stored_list_tau = 0.0;
};

// One round of the fixed-budget refresh-policy comparison.
struct PolicySample {
  double cumulative_churn = 0.0;
  double drift_none = 0.0;
  double drift_round_robin = 0.0;
  double drift_most_churned = 0.0;
};

void WriteJson(const std::vector<RoundSample>& curve,
               const std::vector<PolicySample>& policies, uint32_t num_nodes,
               uint32_t num_landmarks, uint32_t refresh_budget) {
  FILE* f = std::fopen("BENCH_dynamic_updates.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_dynamic_updates.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ext_dynamic_updates\",\n");
  std::fprintf(f, "  \"num_nodes\": %u,\n  \"num_landmarks\": %u,\n",
               num_nodes, num_landmarks);
  std::fprintf(f, "  \"checkpoints\": [\n");
  for (size_t i = 0; i < curve.size(); ++i) {
    const RoundSample& s = curve[i];
    std::fprintf(f,
                 "    {\"cumulative_churn\": %.4f, \"tau_stale\": %.6f, "
                 "\"tau_fresh\": %.6f, \"max_staleness_err\": %.6f, "
                 "\"stored_list_tau\": %.6f}%s\n",
                 s.cumulative_churn, s.tau_stale, s.tau_fresh,
                 s.max_staleness_err, s.stored_list_tau,
                 i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"refresh_budget_per_round\": %u,\n", refresh_budget);
  std::fprintf(f, "  \"refresh_policies\": [\n");
  for (size_t i = 0; i < policies.size(); ++i) {
    const PolicySample& p = policies[i];
    std::fprintf(f,
                 "    {\"cumulative_churn\": %.4f, \"none\": %.6f, "
                 "\"round_robin\": %.6f, \"most_churned\": %.6f}%s\n",
                 p.cumulative_churn, p.drift_none, p.drift_round_robin,
                 p.drift_most_churned, i + 1 < policies.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_dynamic_updates.json\n");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "EXT — Landmark staleness under follow-graph churn",
      "EDBT'16 §6 future work (updating strategies for dynamic graphs)");

  datagen::GeneratedDataset ds =
      datagen::GenerateTwitter(bench::BenchTwitterConfig(10000));
  const auto& sim = topics::TwitterSimilarity();
  std::printf("dataset: %u nodes, %llu edges; 100 landmarks (Follow), "
              "top-100 stored\n",
              ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()));

  // Landmarks + index built at time zero.
  core::AuthorityIndex auth0(ds.graph);
  landmark::SelectionConfig scfg;
  scfg.num_landmarks = 100;
  auto sel = SelectLandmarks(ds.graph, landmark::SelectionStrategy::kFollow,
                             scfg);
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = 100;
  landmark::LandmarkIndex stale_index(ds.graph, auth0, sim, sel.landmarks,
                                      icfg);

  dynamic::DeltaGraph overlay(&ds.graph);
  dynamic::IncrementalAuthority inc_auth(ds.graph);
  util::Rng rng(bench::EnvSeed(77));
  dynamic::ChurnConfig churn;  // 5% + 5% per round

  const uint32_t queries = bench::EnvTrials(12);
  const uint32_t compare_k = 20;
  util::TablePrinter tp({"cumulative churn", "tau stale index",
                         "tau rebuilt index", "max-staleness err"});
  util::TablePrinter stored_drift(
      {"cumulative churn", "stored-list tau (stale vs fresh)"});

  std::vector<RoundSample> curve;
  double cumulative = 0.0;
  for (int round = 0; round <= 4; ++round) {
    if (round > 0) {
      ApplyChurnRound(&overlay, &inc_auth, churn, &rng);
      cumulative += churn.unfollow_fraction + churn.follow_fraction;
    }
    graph::LabeledGraph current = overlay.Materialize();
    core::AuthorityIndex fresh_auth(current);
    core::ScoreParams params;
    core::Scorer exact(current, fresh_auth, sim, params);

    // Rebuilt index on the current graph (same landmark set).
    landmark::LandmarkIndex fresh_index(current, fresh_auth, sim,
                                        sel.landmarks, icfg);
    landmark::ApproxConfig acfg;
    landmark::ApproxRecommender stale(current, fresh_auth, sim, stale_index,
                                      acfg);
    landmark::ApproxRecommender rebuilt(current, fresh_auth, sim,
                                        fresh_index, acfg);

    double tau_stale = 0, tau_fresh = 0;
    uint32_t done = 0;
    util::Rng qrng(1234);
    for (uint32_t q = 0; q < queries; ++q) {
      graph::NodeId u =
          static_cast<graph::NodeId>(qrng.UniformU64(current.num_nodes()));
      if (current.OutDegree(u) == 0) continue;
      topics::TopicId t =
          static_cast<topics::TopicId>(qrng.UniformU64(current.num_topics()));
      auto exact_ids = ExactTop(exact, u, t, compare_k);
      tau_stale += util::KendallTauTopK(
          TopIds(stale.ApproximateScores(u, t), u, compare_k), exact_ids);
      tau_fresh += util::KendallTauTopK(
          TopIds(rebuilt.ApproximateScores(u, t), u, compare_k), exact_ids);
      ++done;
    }
    if (done > 0) {
      tau_stale /= done;
      tau_fresh /= done;
    }

    // Incremental-authority drift caused by the stale per-topic maxima
    // (exact until RefreshMax is called): max relative error over topics.
    double max_err = 0;
    for (int t = 0; t < current.num_topics(); ++t) {
      double stale_max = inc_auth.MaxFollowersOnTopic(
          static_cast<topics::TopicId>(t));
      double true_max = fresh_auth.MaxFollowersOnTopic(
          static_cast<topics::TopicId>(t));
      if (true_max > 0) {
        max_err = std::max(max_err, (stale_max - true_max) / true_max);
      }
    }

    // Landmark-level staleness: how far the stale stored top-100 lists
    // have drifted from freshly recomputed ones ("the scores stored by the
    // landmarks" the paper worries about).
    double list_tau = 0;
    uint32_t lists = 0;
    for (size_t li = 0; li < sel.landmarks.size(); li += 7) {
      graph::NodeId lm = sel.landmarks[li];
      for (int t = 0; t < current.num_topics(); t += 5) {
        auto ids_of = [](const std::vector<landmark::StoredRec>& recs) {
          std::vector<uint32_t> ids;
          for (const auto& r : recs) ids.push_back(r.node);
          return ids;
        };
        list_tau += util::KendallTauTopK(
            ids_of(stale_index.Recommendations(
                lm, static_cast<topics::TopicId>(t))),
            ids_of(fresh_index.Recommendations(
                lm, static_cast<topics::TopicId>(t))));
        ++lists;
      }
    }
    if (lists > 0) list_tau /= lists;

    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.0f%%", cumulative * 100);
    tp.AddRow({pct, util::TablePrinter::Num(tau_stale, 3),
               util::TablePrinter::Num(tau_fresh, 3),
               util::TablePrinter::Num(max_err, 3)});
    stored_drift.AddRow({pct, util::TablePrinter::Num(list_tau, 3)});
    curve.push_back({cumulative, tau_stale, tau_fresh, max_err, list_tau});
  }
  tp.Print("Approximation quality vs cumulative churn");
  stored_drift.Print("Stored landmark-list drift vs cumulative churn");

  std::printf(
      "\nexpected shape: the stale index degrades as churn accumulates "
      "while a rebuilt index stays at its time-zero quality; the paper's "
      "periodic-refresh argument for max_v|Γv(t)| shows up as a small "
      "max-staleness error that a RefreshMax() would clear\n");

  // ---- Refresh policies: with a fixed budget of 10 landmark recomputes
  // per round (10% of the index), which selection rule keeps the stored
  // lists freshest?
  std::vector<PolicySample> policy_curve;
  const uint32_t budget = 10;
  {
    auto make_index = [&]() {
      return landmark::LandmarkIndex(ds.graph, auth0, sim, sel.landmarks,
                                     icfg);
    };
    std::vector<dynamic::LandmarkRefresher> refreshers;
    refreshers.emplace_back(make_index(), dynamic::RefreshPolicy::kNone,
                            budget);
    refreshers.emplace_back(make_index(),
                            dynamic::RefreshPolicy::kRoundRobin, budget);
    refreshers.emplace_back(make_index(),
                            dynamic::RefreshPolicy::kMostChurned, budget);

    util::TablePrinter rp({"cumulative churn", "None", "RoundRobin-10",
                           "MostChurned-10"});
    dynamic::DeltaGraph overlay2(&ds.graph);
    util::Rng rng2(bench::EnvSeed(78));
    double cum = 0.0;
    size_t add_cursor = 0, rem_cursor = 0;
    for (int round = 1; round <= 4; ++round) {
      ApplyChurnRound(&overlay2, nullptr, churn, &rng2);
      cum += churn.unfollow_fraction + churn.follow_fraction;
      graph::LabeledGraph current = overlay2.Materialize();
      core::AuthorityIndex fresh_auth(current);

      // Changes applied this round (the logs are cumulative).
      std::vector<dynamic::EdgeChange> round_changes;
      {
        const auto& adds = overlay2.additions();
        const auto& rems = overlay2.removals();
        for (size_t i = add_cursor; i < adds.size(); ++i) {
          round_changes.push_back(adds[i]);
        }
        for (size_t i = rem_cursor; i < rems.size(); ++i) {
          round_changes.push_back(rems[i]);
        }
        add_cursor = adds.size();
        rem_cursor = rems.size();
      }

      landmark::LandmarkIndex fresh_index(current, fresh_auth, sim,
                                          sel.landmarks, icfg);
      std::vector<std::string> row = {
          util::TablePrinter::Num(cum * 100, 0) + "%"};
      std::vector<double> drifts;
      for (auto& refresher : refreshers) {
        refresher.RefreshRound(current, fresh_auth, sim, round_changes);
        // Stored-list drift vs the fresh index (sampled).
        double drift = 0;
        uint32_t lists = 0;
        for (size_t li = 0; li < sel.landmarks.size(); li += 7) {
          graph::NodeId lm = sel.landmarks[li];
          for (int t = 0; t < current.num_topics(); t += 5) {
            auto ids_of = [](const std::vector<landmark::StoredRec>& recs) {
              std::vector<uint32_t> ids;
              for (const auto& r : recs) ids.push_back(r.node);
              return ids;
            };
            drift += util::KendallTauTopK(
                ids_of(refresher.index().Recommendations(
                    lm, static_cast<topics::TopicId>(t))),
                ids_of(fresh_index.Recommendations(
                    lm, static_cast<topics::TopicId>(t))));
            ++lists;
          }
        }
        row.push_back(util::TablePrinter::Num(drift / lists, 3));
        drifts.push_back(drift / lists);
      }
      rp.AddRow(std::move(row));
      policy_curve.push_back({cum, drifts[0], drifts[1], drifts[2]});
    }
    rp.Print(
        "Stored-list drift under a 10-landmark/round refresh budget "
        "(lower = fresher)");
    std::printf(
        "\nexpected shape: MostChurned spends the same budget as RoundRobin "
        "but targets the landmarks the churn actually touched, keeping "
        "drift lowest; None degrades steadily — the §6 'updating "
        "strategies' question, answered\n");
  }
  WriteJson(curve, policy_curve, ds.graph.num_nodes(), scfg.num_landmarks,
            budget);
  return 0;
}
