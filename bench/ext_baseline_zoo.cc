// EXTENSION: the full recommender zoo on one link-prediction run — the
// paper's three contenders (Tr, Katz, TwitterRank), the Tr ablations, the
// classic neighborhood predictors of Liben-Nowell & Kleinberg [16], and
// Twitter's WTF/SALSA [10] — with recall@{1,10}, MRR and nDCG@10.
//
// Positions every related-work family the paper discusses on the same
// footing: global popularity (TwitterRank, PrefAttachment), personalised
// topology (Katz, CommonNeighbors, AdamicAdar, Jaccard, WTF-SALSA), and
// personalised topology + content (Tr and ablations).

#include <cstdio>
#include <memory>

#include "baselines/neighborhood.h"
#include "baselines/wtf_salsa.h"
#include "bench_common.h"
#include "eval/algorithms.h"
#include "eval/linkpred.h"
#include "topics/similarity_matrix.h"
#include "util/table_printer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader("EXT — Recommender zoo (link prediction, Twitter)",
                     "extends EDBT'16 Fig. 4 with the related-work families "
                     "of §2");

  datagen::GeneratedDataset ds =
      datagen::GenerateTwitter(bench::BenchTwitterConfig(10000));
  std::printf("dataset: %u nodes, %llu edges\n", ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()));

  core::ScoreParams params;
  auto algos = eval::StandardAlgorithms(topics::TwitterSimilarity(), params,
                                        /*include_ablations=*/true);
  auto add_neigh = [&](baselines::NeighborhoodScore score) {
    algos.push_back({baselines::NeighborhoodScoreName(score),
                     [score](const graph::LabeledGraph& g) {
                       return std::unique_ptr<core::Recommender>(
                           new baselines::NeighborhoodRecommender(g, score));
                     }});
  };
  add_neigh(baselines::NeighborhoodScore::kCommonNeighbors);
  add_neigh(baselines::NeighborhoodScore::kAdamicAdar);
  add_neigh(baselines::NeighborhoodScore::kJaccard);
  add_neigh(baselines::NeighborhoodScore::kPreferentialAttachment);
  algos.push_back({"WTF-SALSA", [](const graph::LabeledGraph& g) {
                     return std::unique_ptr<core::Recommender>(
                         new baselines::WtfSalsa(g));
                   }});

  eval::LinkPredConfig cfg;
  cfg.test_edges = 80;
  cfg.trials = bench::EnvTrials(2);
  cfg.seed = bench::EnvSeed(2016);
  auto curves = eval::RunLinkPrediction(ds.graph, algos, cfg);

  util::TablePrinter tp(
      {"algorithm", "recall@1", "recall@10", "MRR", "nDCG@10"});
  for (const auto& c : curves) {
    tp.AddRow({c.name, util::TablePrinter::Num(c.recall_at[0], 3),
               util::TablePrinter::Num(c.recall_at[9], 3),
               util::TablePrinter::Num(c.mrr, 3),
               util::TablePrinter::Num(c.ndcg_at_10, 3)});
  }
  tp.Print("All recommenders, identical protocol");

  std::printf(
      "\nexpected shape: Tr on top; the personalised-topology family "
      "(Katz, AdamicAdar, CommonNeighbors, WTF-SALSA) in the middle; the "
      "popularity family (TwitterRank, PrefAttachment) last — content + "
      "personalisation beats either alone\n");
  return 0;
}
