// Table 5: cost of determining landmarks, per selection strategy — the
// per-landmark selection time and the per-landmark Algorithm 1
// pre-processing time.
//
// Paper anchors (2.2M nodes, 100 landmarks): random-flavoured strategies
// select in ~2 ms/landmark; degree-weighted draws in seconds; the
// centrality/coverage strategies are orders of magnitude slower. The
// recommendation pre-computation per landmark is nearly independent of the
// strategy (735-919 s at full scale).

#include <cstdio>

#include "bench_common.h"
#include "core/authority.h"
#include "landmark/index.h"
#include "landmark/selection.h"
#include "topics/similarity_matrix.h"
#include "util/table_printer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader("Table 5 — Determining landmarks w.r.t. strategies",
                     "EDBT'16 Table 5, §5.4");

  datagen::GeneratedDataset ds =
      datagen::GenerateTwitter(bench::BenchTwitterConfig());
  core::AuthorityIndex auth(ds.graph);

  landmark::SelectionConfig scfg;
  scfg.num_landmarks = bench::EnvTrials(50);
  scfg.band_min = 5;
  scfg.band_max = 500;

  util::TablePrinter tp(
      {"Strategy", "select. (ms/landmark)", "comput. (s/landmark)"});
  double min_build = 1e18, max_build = 0.0;
  for (auto strategy : landmark::AllStrategies()) {
    landmark::SelectionResult sel =
        SelectLandmarks(ds.graph, strategy, scfg);
    landmark::LandmarkIndexConfig icfg;
    icfg.top_n = 100;
    landmark::LandmarkIndex index(ds.graph, auth,
                                  topics::TwitterSimilarity(),
                                  sel.landmarks, icfg);
    double build = index.build_seconds_per_landmark();
    min_build = std::min(min_build, build);
    max_build = std::max(max_build, build);
    tp.AddRow({landmark::StrategyName(strategy),
               util::TablePrinter::Num(sel.millis_per_landmark, 4),
               util::TablePrinter::Num(build, 4)});
  }
  tp.Print("Landmark selection + pre-processing cost");

  std::printf(
      "\nexpected shape: random/band strategies select orders of magnitude "
      "faster than coverage (Central/Out-Cen/Combine); per-landmark "
      "pre-processing nearly strategy-independent (measured spread: "
      "%.2fx)\n",
      min_build > 0 ? max_build / min_build : 0.0);
  std::printf(
      "paper: selection 2 ms (Random/Btw-*) to 130 s (Combine) per "
      "landmark; computation 735-919 s for every strategy at 2.2M nodes\n");
  return 0;
}
