// EXTENSION (observability): what does the obs instrumentation cost on the
// serving hot path?
//
// The acceptance bar for the observability subsystem is < 3% end-to-end
// overhead. This bench measures the same query stream through a
// QueryEngine three ways:
//   1. spans on   — obs::SetEnabled(true), the shipped default;
//   2. spans off  — obs::SetEnabled(false): span sites skip both clock
//      reads, counters still run (they are engine logic);
//   3. raw scorer — no engine, no registry: the floor.
// A fourth configuration, -DMBR_OBS_NOOP, compiles the span sites out
// entirely; build a separate tree to measure it (same workload applies).

#include <cstdio>

#include "bench_common.h"
#include "core/authority.h"
#include "core/recommender.h"
#include "obs/metrics.h"
#include "service/query_engine.h"
#include "topics/similarity_matrix.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader("EXT — Observability overhead on the serving path",
                     "obs subsystem acceptance (< 3% overhead)");

  datagen::GeneratedDataset ds =
      datagen::GenerateTwitter(bench::BenchTwitterConfig(10000));
  const auto& sim = topics::TwitterSimilarity();
  core::AuthorityIndex auth(ds.graph);

  const uint32_t queries = bench::EnvTrials(400);
  util::Rng rng(bench::EnvSeed(9));
  std::vector<core::Query> stream;
  stream.reserve(queries);
  for (uint32_t q = 0; q < queries; ++q) {
    stream.push_back(core::Query::TopN(
        static_cast<graph::NodeId>(rng.UniformU64(ds.graph.num_nodes())),
        static_cast<topics::TopicId>(rng.UniformU64(ds.graph.num_topics())),
        10));
  }

  // Cache off so every query pays a full scorer run: the worst case for
  // relative span overhead would be cheap queries, so also run a cached
  // pass where most queries are sub-microsecond hits.
  auto run_engine = [&](bool spans_on, size_t cache) {
    service::EngineConfig ec;
    ec.num_threads = 1;
    ec.cache_capacity = cache;
    service::QueryEngine engine(ds.graph, auth, sim, ec);
    obs::SetEnabled(spans_on);
    engine.Recommend(stream[0]);  // warm the worker's scorer scratch
    util::WallTimer tm;
    for (const core::Query& q : stream) {
      auto r = engine.Recommend(q);
      if (!r.ok()) std::abort();
    }
    double ms = tm.ElapsedMillis();
    obs::SetEnabled(true);
    return ms;
  };

  // The floor: one scorer, no engine, no registry traffic on the path
  // except the MBR_SPAN sites inside the scorer itself (gated off below).
  auto run_raw = [&](bool spans_on) {
    core::TrRecommender rec(ds.graph, sim);
    obs::SetEnabled(spans_on);
    rec.Recommend(stream[0]);
    util::WallTimer tm;
    for (const core::Query& q : stream) {
      auto r = rec.Recommend(q);
      if (!r.ok()) std::abort();
    }
    double ms = tm.ElapsedMillis();
    obs::SetEnabled(true);
    return ms;
  };

  util::TablePrinter tp({"configuration", "total ms", "us/query", "vs off"});
  struct Row {
    const char* name;
    double ms;
    double baseline_ms;  // <= 0: is its own baseline
  };
  const double engine_off = run_engine(false, 0);
  const double engine_on = run_engine(true, 0);
  const double cached_off = run_engine(false, 4096);
  const double cached_on = run_engine(true, 4096);
  const double raw_off = run_raw(false);
  const double raw_on = run_raw(true);
  for (const Row& r : {Row{"engine, spans off", engine_off, 0.0},
                       Row{"engine, spans on", engine_on, engine_off},
                       Row{"engine+cache, spans off", cached_off, 0.0},
                       Row{"engine+cache, spans on", cached_on, cached_off},
                       Row{"raw scorer, spans off", raw_off, 0.0},
                       Row{"raw scorer, spans on", raw_on, raw_off}}) {
    const double rel =
        r.baseline_ms > 0.0 ? 100.0 * (r.ms / r.baseline_ms - 1.0) : 0.0;
    char rel_s[32];
    std::snprintf(rel_s, sizeof(rel_s), "%+.2f%%", rel);
    tp.AddRow({r.name, util::TablePrinter::Num(r.ms, 2),
               util::TablePrinter::Num(1000.0 * r.ms / queries, 2),
               r.baseline_ms > 0.0 ? rel_s : "baseline"});
  }
  tp.Print("Span overhead (one steady_clock pair per MBR_SPAN site)");

  std::printf(
      "\nexpected shape: scored queries dwarf the span cost (two clock "
      "reads + one relaxed histogram add per stage), so 'spans on' should "
      "sit well under the 3%% bar; the cached pass is the stress case — "
      "sub-microsecond hits against a fixed per-query cost. For the true "
      "zero-cost floor rebuild with -DMBR_OBS_NOOP=ON and rerun.\n");
  return 0;
}
