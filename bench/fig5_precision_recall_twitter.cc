// Figure 5: precision vs recall on the Twitter-like dataset.
//
// Paper anchors: for recall >= 0.4, Tr's precision is at least 2x Katz's
// and one order of magnitude above TwitterRank's.

#include <cstdio>

#include "bench_common.h"
#include "eval/algorithms.h"
#include "eval/linkpred.h"
#include "topics/similarity_matrix.h"
#include "util/table_printer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader("Figure 5 — Precision vs recall (Twitter)",
                     "EDBT'16 Fig. 5, §5.3");

  datagen::GeneratedDataset ds =
      datagen::GenerateTwitter(bench::BenchTwitterConfig());
  core::ScoreParams params;
  auto algos = eval::StandardAlgorithms(topics::TwitterSimilarity(), params,
                                        /*include_ablations=*/false);
  eval::LinkPredConfig cfg;
  cfg.test_edges = 100;
  cfg.trials = bench::EnvTrials(3);
  cfg.max_top_n = 20;
  cfg.seed = bench::EnvSeed(2016);
  auto curves = eval::RunLinkPrediction(ds.graph, algos, cfg);

  util::TablePrinter tp({"N", "recall Tr", "prec Tr", "recall Katz",
                         "prec Katz", "recall TWR", "prec TWR"});
  for (uint32_t n = 1; n <= cfg.max_top_n; ++n) {
    tp.AddRow({std::to_string(n),
               util::TablePrinter::Num(curves[0].recall_at[n - 1], 3),
               util::TablePrinter::Num(curves[0].precision_at[n - 1], 4),
               util::TablePrinter::Num(curves[1].recall_at[n - 1], 3),
               util::TablePrinter::Num(curves[1].precision_at[n - 1], 4),
               util::TablePrinter::Num(curves[2].recall_at[n - 1], 3),
               util::TablePrinter::Num(curves[2].precision_at[n - 1], 4)});
  }
  tp.Print("Precision/recall sweep over N (one point per N)");

  // Precision comparison at comparable recall ~0.4: find the first N where
  // each algorithm's recall crosses 0.4.
  auto prec_at_recall = [&](const eval::AccuracyCurve& c, double r) {
    for (size_t i = 0; i < c.recall_at.size(); ++i) {
      if (c.recall_at[i] >= r) return c.precision_at[i];
    }
    return c.precision_at.back();
  };
  std::printf(
      "\nprecision at recall>=0.4: Tr %.4f, Katz %.4f, TwitterRank %.4f\n"
      "paper: Tr >= 2x Katz and ~10x TwitterRank at comparable recall\n",
      prec_at_recall(curves[0], 0.4), prec_at_recall(curves[1], 0.4),
      prec_at_recall(curves[2], 0.4));
  return 0;
}
