// Table 2: topological properties of the datasets.
//
// Paper (full scale):            Twitter      DBLP
//   nodes                        2,182,867    525,567
//   edges                        125,451,980  20,526,843
//   avg out-degree               57.8         47.3
//   avg in-degree                69.4         53.6
//   max in-degree                348,595      9,897
//   max out-degree               185,401      5,052
//
// Our generators run at laptop scale; the comparison targets are the
// *ratios* (avg in vs out, max-in/avg-in skew — much larger on Twitter
// than DBLP — and max-out/avg-out).

#include <cstdio>

#include "bench_common.h"
#include "graph/analysis.h"
#include "graph/labeled_graph.h"
#include "util/rng.h"
#include "util/table_printer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader("Table 2 — Datasets topological properties",
                     "EDBT'16 Table 2, §5.1");

  datagen::GeneratedDataset tw =
      datagen::GenerateTwitter(bench::BenchTwitterConfig());
  datagen::GeneratedDataset db = datagen::GenerateDblp(bench::BenchDblpConfig());

  graph::DegreeStatistics st = ComputeDegreeStatistics(tw.graph);
  graph::DegreeStatistics sd = ComputeDegreeStatistics(db.graph);

  util::TablePrinter tp(
      {"Property", "Twitter (ours)", "DBLP (ours)", "Twitter (paper)",
       "DBLP (paper)"});
  auto I = util::TablePrinter::Int;
  auto N = [](double v) { return util::TablePrinter::Num(v, 1); };
  tp.AddRow({"Total number of nodes", I(st.num_nodes), I(sd.num_nodes),
             "2,182,867", "525,567"});
  tp.AddRow({"Total number of edges", I(st.num_edges), I(sd.num_edges),
             "125,451,980", "20,526,843"});
  tp.AddRow({"Avg. out-degree", N(st.avg_out_degree), N(sd.avg_out_degree),
             "57.8", "47.3"});
  tp.AddRow({"Avg. in-degree", N(st.avg_in_degree), N(sd.avg_in_degree),
             "69.4", "53.6"});
  tp.AddRow({"max in-degree", I(st.max_in_degree), I(sd.max_in_degree),
             "348,595", "9,897"});
  tp.AddRow({"max out-degree", I(st.max_out_degree), I(sd.max_out_degree),
             "185,401", "5,052"});
  tp.Print("Table 2");

  // Structure checks against Myers et al. (WWW 2014), the paper's source
  // for the real follow graph's shape.
  util::Rng rng(7);
  util::TablePrinter sp({"structure", "Twitter (ours)", "reference"});
  sp.AddRow({"reciprocity",
             util::TablePrinter::Num(Reciprocity(tw.graph), 3),
             "0.44 (Myers et al.)"});
  sp.AddRow({"clustering coefficient",
             util::TablePrinter::Num(
                 EstimateClusteringCoefficient(tw.graph, 300, &rng), 3),
             "high for social graphs"});
  sp.AddRow({"largest weak component",
             util::TablePrinter::Num(
                 static_cast<double>(LargestComponentSize(tw.graph)) /
                     tw.graph.num_nodes(),
                 3),
             "~1.0 (giant component)"});
  sp.AddRow({"in-degree power-law slope",
             util::TablePrinter::Num(
                 graph::EstimatePowerLawExponent(
                     graph::InDegreeHistogram(tw.graph)),
                 2),
             "negative, heavy-tailed"});
  sp.Print("Follow-graph structure (generated vs published shape)");

  double tw_skew = st.max_in_degree / st.avg_in_degree;
  double db_skew = sd.max_in_degree / sd.avg_in_degree;
  std::printf(
      "\nin-degree skew (max/avg): Twitter %.0fx vs DBLP %.0fx "
      "(paper: %.0fx vs %.0fx) — Twitter must dominate\n",
      tw_skew, db_skew, 348595.0 / 69.4, 9897.0 / 53.6);
  return 0;
}
