// EXTENSION (ISSUE 10): mutation apply latency — O(Δ) incremental
// pipeline vs full per-batch rebuild.
//
// The MutationApplier turns each applied FOLLOW/UNFOLLOW/RELABEL batch
// into a new serving generation. The kFullRebuild pipeline re-materializes
// the whole graph and rescans the authority index per batch — O(graph)
// regardless of batch size. The kIncremental pipeline patches only the
// touched adjacency rows (DeltaGraph::MaterializeFrom) and snapshots the
// authority from incremental counters — O(Δ). This bench streams identical
// mutation traces through both pipelines at several batch sizes and
// reports the apply latency, i.e. the mutation-to-visibility cost the
// serving path pays while queries keep draining.
//
// Output: a human-readable table on stdout plus BENCH_mutation.json
// (machine-readable latencies + per-batch-size speedups, same convention
// as BENCH_churn_drift.json) in the working directory. `--smoke` shrinks
// the graph and round counts for CI.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/authority.h"
#include "service/mutation.h"
#include "service/query_engine.h"
#include "topics/similarity_matrix.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace mbr;

// Follow-heavy mix so small batches almost always apply something (an
// unfollow/relabel of a random absent edge is rejected by design).
service::Mutation RandomMutation(util::Rng* rng, uint32_t n, int num_topics) {
  service::Mutation m;
  const uint64_t roll = rng->UniformU64(100);
  m.op = roll < 70   ? service::MutationOp::kFollow
         : roll < 90 ? service::MutationOp::kUnfollow
                     : service::MutationOp::kRelabel;
  m.src = static_cast<graph::NodeId>(rng->UniformU64(n));
  m.dst = static_cast<graph::NodeId>(rng->UniformU64(n));
  const uint64_t vocab_mask = (uint64_t{1} << num_topics) - 1;
  m.labels = topics::TopicSet(1 + rng->UniformU64(vocab_mask));
  return m;
}

struct ApplySample {
  const char* pipeline = "";
  size_t batch_len = 0;
  uint32_t rounds = 0;
  double mean_apply_ms = 0.0;
  double max_apply_ms = 0.0;
  double mutations_per_s = 0.0;
};

// Streams `rounds` applied batches of `batch_len` random mutations through
// a fresh applier on `pipeline`, timing each Apply(). The trace is
// regenerated from `seed`, so both pipelines see byte-identical input.
ApplySample RunConfig(const datagen::GeneratedDataset& ds,
                      const core::AuthorityIndex& auth,
                      service::MutationConfig::Pipeline pipeline,
                      size_t batch_len, uint32_t rounds, uint64_t seed) {
  const uint32_t n = ds.graph.num_nodes();
  const int num_topics = ds.graph.num_topics();

  service::EngineConfig ec;
  ec.num_threads = 1;
  ec.cache_capacity = 0;
  service::QueryEngine engine(ds.graph, auth, topics::TwitterSimilarity(),
                              ec);
  service::MutationConfig mcfg;
  mcfg.pipeline = pipeline;
  service::MutationApplier applier(ds.graph, auth, engine, mcfg);

  util::Rng rng(seed);
  ApplySample s;
  s.pipeline = pipeline == service::MutationConfig::Pipeline::kIncremental
                   ? "incremental"
                   : "full_rebuild";
  s.batch_len = batch_len;
  double total_s = 0.0;
  uint64_t mutations_applied = 0;
  uint32_t done = 0;
  // A batch where nothing applied skips materialization on both
  // pipelines; retry (bounded) so every timed round rebuilds.
  for (uint32_t attempts = 0; done < rounds && attempts < rounds * 20;
       ++attempts) {
    std::vector<service::Mutation> batch;
    batch.reserve(batch_len);
    for (size_t i = 0; i < batch_len; ++i) {
      batch.push_back(RandomMutation(&rng, n, num_topics));
    }
    util::WallTimer timer;
    service::MutationOutcome out = applier.Apply(batch);
    const double elapsed = timer.ElapsedSeconds();
    if (out.applied == 0) continue;
    total_s += elapsed;
    s.max_apply_ms = std::max(s.max_apply_ms, elapsed * 1e3);
    mutations_applied += out.applied;
    ++done;
  }
  s.rounds = done;
  if (done > 0) {
    s.mean_apply_ms = total_s / done * 1e3;
    s.mutations_per_s =
        total_s > 0 ? static_cast<double>(mutations_applied) / total_s : 0.0;
  }
  return s;
}

void WriteJson(const std::vector<ApplySample>& samples, uint32_t num_nodes,
               uint64_t num_edges) {
  FILE* f = std::fopen("BENCH_mutation.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_mutation.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ext_mutation_apply\",\n");
  std::fprintf(f, "  \"num_nodes\": %u,\n  \"num_edges\": %llu,\n", num_nodes,
               static_cast<unsigned long long>(num_edges));
  std::fprintf(f, "  \"configs\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const ApplySample& s = samples[i];
    std::fprintf(f,
                 "    {\"pipeline\": \"%s\", \"batch\": %zu, \"rounds\": %u, "
                 "\"mean_apply_ms\": %.6f, \"max_apply_ms\": %.6f, "
                 "\"mutations_per_s\": %.1f}%s\n",
                 s.pipeline, s.batch_len, s.rounds, s.mean_apply_ms,
                 s.max_apply_ms, s.mutations_per_s,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedups\": [\n");
  // Pair up the pipelines per batch size: full_rebuild mean over
  // incremental mean (the headline O(graph)/O(Δ) ratio).
  bool first = true;
  for (const ApplySample& full : samples) {
    if (std::strcmp(full.pipeline, "full_rebuild") != 0) continue;
    for (const ApplySample& inc : samples) {
      if (std::strcmp(inc.pipeline, "incremental") != 0 ||
          inc.batch_len != full.batch_len || inc.mean_apply_ms <= 0.0) {
        continue;
      }
      std::fprintf(f, "%s    {\"batch\": %zu, \"speedup\": %.2f}",
                   first ? "" : ",\n", full.batch_len,
                   full.mean_apply_ms / inc.mean_apply_ms);
      first = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_mutation.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::PrintHeader(
      "ext_mutation_apply: O(Δ) incremental pipeline vs full rebuild",
      "EXTENSION of §6 (graph dynamicity): mutation-to-visibility latency");

  datagen::TwitterConfig cfg = bench::BenchTwitterConfig(smoke ? 800 : 20000);
  auto ds = datagen::GenerateTwitter(cfg);
  core::AuthorityIndex auth(ds.graph);
  std::printf("dataset: %u nodes, %llu edges\n", ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()));

  const std::vector<size_t> batch_lens = {1, 16, 256, 4096};
  const uint64_t seed = bench::EnvSeed(1013);

  std::printf("%-13s %-7s %-7s %-15s %-14s %s\n", "pipeline", "batch",
              "rounds", "mean_apply_ms", "max_apply_ms", "mutations/s");
  std::vector<ApplySample> samples;
  for (service::MutationConfig::Pipeline pipeline :
       {service::MutationConfig::Pipeline::kFullRebuild,
        service::MutationConfig::Pipeline::kIncremental}) {
    for (size_t batch_len : batch_lens) {
      uint32_t rounds =
          batch_len <= 16 ? 24 : batch_len <= 256 ? 8 : 3;
      if (smoke) rounds = batch_len <= 16 ? 4 : 2;
      ApplySample s = RunConfig(ds, auth, pipeline, batch_len, rounds, seed);
      samples.push_back(s);
      std::printf("%-13s %-7zu %-7u %-15.4f %-14.4f %.1f\n", s.pipeline,
                  s.batch_len, s.rounds, s.mean_apply_ms, s.max_apply_ms,
                  s.mutations_per_s);
    }
  }

  std::printf(
      "\nexpected shape: full_rebuild pays the same O(graph) materialize + "
      "authority rescan per batch regardless of size, so small batches are "
      "pathological; incremental patches only the touched rows and repairs "
      "only dirty per-topic maxima, so batch<=16 applies should land >=5x "
      "faster on the large config while batch=4096 converges (Δ approaches "
      "the graph)\n");

  WriteJson(samples, ds.graph.num_nodes(), ds.graph.num_edges());
  return 0;
}
