// EXTENSION (ablation): the semantic-similarity measure inside Tr.
//
// §3.2: "We use in the present paper the Wu and Palmer similarity measure
// on top of the Wordnet database ... but other semantic distance measures,
// such as Resnik or Disco could also be used. The choice of the best
// similarity function is beyond the scope of the current paper."
//
// We put that choice in scope: link-prediction accuracy of Tr with Wu &
// Palmer, an inverse-path-length measure, and exact-match-only similarity
// (sim(t, t') = [t == t'] — i.e. labels must match the query literally).

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/recommender.h"
#include "eval/linkpred.h"
#include "topics/similarity_matrix.h"
#include "topics/taxonomy.h"
#include "topics/vocabulary.h"
#include "util/table_printer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader("EXT — Ablation: semantic similarity measures in Tr",
                     "EDBT'16 §3.2 (similarity-function choice)");

  // Labels come from the §5.1 text pipeline (classifier noise + profile
  // intersections), not from ground truth: semantic similarity earns its
  // keep exactly when an edge's labels only approximate the query topic.
  datagen::TwitterConfig gc = bench::BenchTwitterConfig(10000);
  gc.label_mode = datagen::LabelMode::kTextPipeline;
  datagen::GeneratedDataset ds = datagen::GenerateTwitter(gc);
  std::printf("dataset: %u nodes, %llu edges (text-pipeline labels, "
              "classifier precision %.2f)\n",
              ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()),
              ds.pipeline_metrics.precision);

  struct Variant {
    const char* name;
    topics::SimilarityMeasure measure;
  };
  const Variant variants[] = {
      {"Wu-Palmer (paper)", topics::SimilarityMeasure::kWuPalmer},
      {"inverse-path", topics::SimilarityMeasure::kInversePath},
      {"exact-match", topics::SimilarityMeasure::kExactMatch},
  };

  // All matrices must outlive the factories.
  std::vector<topics::SimilarityMatrix> matrices;
  for (const Variant& v : variants) {
    matrices.push_back(topics::SimilarityMatrix::FromTaxonomy(
        topics::TwitterVocabulary(), topics::TwitterTaxonomy(), v.measure));
  }

  core::ScoreParams params;
  std::vector<eval::Algorithm> algos;
  for (size_t i = 0; i < matrices.size(); ++i) {
    const topics::SimilarityMatrix* sim = &matrices[i];
    algos.push_back({variants[i].name,
                     [sim, params](const graph::LabeledGraph& g) {
                       return std::unique_ptr<core::Recommender>(
                           new core::TrRecommender(g, *sim, params));
                     }});
  }

  eval::LinkPredConfig cfg;
  cfg.test_edges = 80;
  cfg.trials = bench::EnvTrials(3);
  cfg.seed = bench::EnvSeed(2016);
  auto curves = eval::RunLinkPrediction(ds.graph, algos, cfg);

  util::TablePrinter tp(
      {"similarity", "recall@1", "recall@10", "recall@20", "MRR"});
  for (const auto& c : curves) {
    tp.AddRow({c.name, util::TablePrinter::Num(c.recall_at[0], 3),
               util::TablePrinter::Num(c.recall_at[9], 3),
               util::TablePrinter::Num(c.recall_at[19], 3),
               util::TablePrinter::Num(c.mrr, 3)});
  }
  tp.Print("Tr under different similarity measures");

  std::printf(
      "\nexpected shape: taxonomy-aware measures (Wu-Palmer, inverse-path) "
      "beat exact-match — an edge labeled `bigdata` should still support a "
      "`technology` query (the paper's Fig. 1 example); Wu-Palmer and "
      "inverse-path should land close to each other, supporting the "
      "paper's claim that the precise function is secondary\n");
  return 0;
}
