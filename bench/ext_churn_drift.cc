// EXTENSION (ISSUE 6 / paper §6): landmark drift under LIVE churn with
// lazy repair.
//
// ext_dynamic_updates measures how a frozen landmark index rots under
// offline churn. This bench measures the *serving-side* story introduced
// by the mutation path: FOLLOW/UNFOLLOW/RELABEL batches stream through a
// service::MutationApplier (each applied batch rebinds the engine and
// bumps the graph epoch), a service::LandmarkRepairer marks touched
// landmark slots stale, and we track — per cumulative-churn checkpoint —
// recall@10 and Kendall-tau of the live approx answers against an index
// freshly rebuilt on the current graph, alongside the repairer's stale
// telemetry. After the trace, Quiesce() drains the stale set and the
// post-quiesce row documents the repair-lag bound the differential test
// asserts.
//
// Output: a human-readable table on stdout plus BENCH_churn_drift.json
// (machine-readable drift curve) in the working directory.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/authority.h"
#include "landmark/index.h"
#include "landmark/selection.h"
#include "service/landmark_repair.h"
#include "service/mutation.h"
#include "service/query_engine.h"
#include "topics/similarity_matrix.h"
#include "util/kendall.h"
#include "util/rng.h"

namespace {

using namespace mbr;

struct Probe {
  graph::NodeId user;
  topics::TopicId topic;
};

struct DriftSample {
  uint64_t mutations_sent = 0;
  uint64_t applied_total = 0;
  double recall_at10 = 0.0;
  double kendall_tau = 0.0;
  size_t stale_slots = 0;
  uint64_t stale_reads = 0;
  uint64_t graph_epoch = 0;
};

core::ScoreParams DriftParams() {
  core::ScoreParams p;
  p.beta = 0.1;
  return p;
}

service::Mutation RandomMutation(util::Rng* rng, uint32_t n, int num_topics) {
  service::Mutation m;
  const uint64_t roll = rng->UniformU64(100);
  m.op = roll < 45   ? service::MutationOp::kFollow
         : roll < 80 ? service::MutationOp::kUnfollow
                     : service::MutationOp::kRelabel;
  m.src = static_cast<graph::NodeId>(rng->UniformU64(n));
  m.dst = static_cast<graph::NodeId>(rng->UniformU64(n));
  const uint64_t vocab_mask = (uint64_t{1} << num_topics) - 1;
  m.labels = topics::TopicSet(1 + rng->UniformU64(vocab_mask));
  return m;
}

// Mean recall@10 / Kendall-tau of the live engine vs a reference engine
// over the probe panel.
void MeasureDrift(service::QueryEngine& live, service::QueryEngine& ref,
                  const std::vector<Probe>& probes, double* recall,
                  double* tau) {
  double recall_sum = 0.0, tau_sum = 0.0;
  int scored = 0;
  for (const Probe& p : probes) {
    auto live_list = live.TopN(p.user, p.topic, 10).value();
    auto ref_list = ref.TopN(p.user, p.topic, 10).value();
    if (live_list.empty() && ref_list.empty()) continue;
    std::vector<uint32_t> live_ids, ref_ids;
    for (const auto& e : live_list) live_ids.push_back(e.id);
    for (const auto& e : ref_list) ref_ids.push_back(e.id);
    size_t hits = 0;
    for (uint32_t id : live_ids) {
      for (uint32_t rid : ref_ids) {
        if (id == rid) {
          ++hits;
          break;
        }
      }
    }
    const size_t denom = ref_ids.empty() ? 1 : ref_ids.size();
    recall_sum += static_cast<double>(hits) / static_cast<double>(denom);
    tau_sum += util::KendallTauTopK(live_ids, ref_ids);
    ++scored;
  }
  *recall = scored == 0 ? 1.0 : recall_sum / scored;
  *tau = scored == 0 ? 0.0 : tau_sum / scored;
}

void WriteJson(const std::vector<DriftSample>& curve,
               const DriftSample& post_quiesce, uint32_t num_nodes,
               uint32_t num_landmarks, uint64_t repairs_done) {
  FILE* f = std::fopen("BENCH_churn_drift.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_churn_drift.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ext_churn_drift\",\n");
  std::fprintf(f, "  \"num_nodes\": %u,\n  \"num_landmarks\": %u,\n",
               num_nodes, num_landmarks);
  std::fprintf(f, "  \"checkpoints\": [\n");
  for (size_t i = 0; i < curve.size(); ++i) {
    const DriftSample& s = curve[i];
    std::fprintf(f,
                 "    {\"mutations\": %llu, \"applied\": %llu, "
                 "\"recall_at10\": %.6f, \"kendall_tau\": %.6f, "
                 "\"stale_slots\": %zu, \"stale_reads\": %llu, "
                 "\"graph_epoch\": %llu}%s\n",
                 static_cast<unsigned long long>(s.mutations_sent),
                 static_cast<unsigned long long>(s.applied_total),
                 s.recall_at10, s.kendall_tau, s.stale_slots,
                 static_cast<unsigned long long>(s.stale_reads),
                 static_cast<unsigned long long>(s.graph_epoch),
                 i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"post_quiesce\": {\"recall_at10\": %.6f, "
               "\"kendall_tau\": %.6f, \"repairs_done\": %llu}\n}\n",
               post_quiesce.recall_at10, post_quiesce.kendall_tau,
               static_cast<unsigned long long>(repairs_done));
  std::fclose(f);
  std::printf("\nwrote BENCH_churn_drift.json\n");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "ext_churn_drift: live-mutation landmark drift + lazy repair",
      "EXTENSION of §6 (graph dynamicity) over the PR-6 mutation path");

  datagen::TwitterConfig cfg = bench::BenchTwitterConfig(2000);
  auto ds = datagen::GenerateTwitter(cfg);
  const uint32_t n = ds.graph.num_nodes();
  const int num_topics = ds.graph.num_topics();
  core::AuthorityIndex auth(ds.graph);

  landmark::SelectionConfig sel;
  sel.num_landmarks = 24;
  auto landmarks =
      landmark::SelectLandmarks(ds.graph, landmark::SelectionStrategy::kOutDeg,
                                sel)
          .landmarks;
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = 50;
  icfg.params = DriftParams();
  landmark::LandmarkIndex index(ds.graph, auth, topics::TwitterSimilarity(),
                                landmarks, icfg);

  service::EngineConfig ec;
  ec.num_threads = 1;
  ec.cache_capacity = 0;
  ec.params = DriftParams();
  ec.landmarks = &index;
  service::QueryEngine engine(ds.graph, auth, topics::TwitterSimilarity(),
                              ec);
  service::MutationApplier applier(ds.graph, auth, engine);
  service::RepairConfig rc;
  rc.mode = service::RepairConfig::Mode::kTouched;
  service::LandmarkRepairer repairer(index, engine,
                                     topics::TwitterSimilarity(),
                                     applier.current_graph(),
                                     applier.current_authority(), rc);
  applier.SetRepairer(&repairer);
  engine.SetStaleProbe(repairer.MakeStaleProbe());
  obs::Counter* stale_reads = engine.registry().GetCounter(
      "mbr_repair_stale_reads_total", "");

  util::Rng rng(bench::EnvSeed(42));
  util::Rng probe_rng = rng.Fork(9);
  std::vector<Probe> probes;
  for (int i = 0; i < 25; ++i) {
    probes.push_back(
        {static_cast<graph::NodeId>(probe_rng.UniformU64(n)),
         static_cast<topics::TopicId>(
             probe_rng.UniformU64(static_cast<uint64_t>(num_topics)))});
  }

  const int kCheckpoints = 10;
  const int kBatchesPerCheckpoint = 10;
  const size_t kBatchLen = 50;  // 10 * 10 * 50 = 5000 mutations
  uint64_t sent = 0;

  std::printf("%-10s %-9s %-10s %-12s %-11s %-11s %s\n", "mutations",
              "applied", "epoch", "recall@10", "kendall", "stale_slots",
              "stale_reads");
  std::vector<DriftSample> curve;
  for (int c = 0; c < kCheckpoints; ++c) {
    for (int b = 0; b < kBatchesPerCheckpoint; ++b) {
      std::vector<service::Mutation> batch;
      batch.reserve(kBatchLen);
      for (size_t i = 0; i < kBatchLen; ++i) {
        batch.push_back(RandomMutation(&rng, n, num_topics));
      }
      sent += batch.size();
      applier.Apply(batch);
    }

    // Reference: an index freshly rebuilt on the live generation (what a
    // full offline recompute would serve right now).
    auto g = applier.current_graph();
    auto a = applier.current_authority();
    landmark::LandmarkIndex fresh(*g, *a, topics::TwitterSimilarity(),
                                  landmarks, icfg);
    service::EngineConfig ref_ec = ec;
    ref_ec.landmarks = &fresh;
    service::QueryEngine reference(*g, *a, topics::TwitterSimilarity(),
                                   ref_ec);

    DriftSample s;
    s.mutations_sent = sent;
    s.applied_total = applier.batches_applied();
    s.graph_epoch = engine.params_epoch();
    s.stale_slots = repairer.stale_count();
    MeasureDrift(engine, reference, probes, &s.recall_at10, &s.kendall_tau);
    s.stale_reads = stale_reads->Value();
    curve.push_back(s);
    std::printf("%-10llu %-9llu %-10llu %-12.4f %-11.4f %-11zu %llu\n",
                static_cast<unsigned long long>(s.mutations_sent),
                static_cast<unsigned long long>(s.applied_total),
                static_cast<unsigned long long>(s.graph_epoch), s.recall_at10,
                s.kendall_tau, s.stale_slots,
                static_cast<unsigned long long>(s.stale_reads));
  }

  // Drain every stale slot, then measure the repair-lag floor: how close
  // lazy kTouched repair gets to a fresh rebuild once it has caught up.
  repairer.Quiesce();
  auto g = applier.current_graph();
  auto a = applier.current_authority();
  landmark::LandmarkIndex fresh(*g, *a, topics::TwitterSimilarity(),
                                landmarks, icfg);
  service::EngineConfig ref_ec = ec;
  ref_ec.landmarks = &fresh;
  service::QueryEngine reference(*g, *a, topics::TwitterSimilarity(),
                                 ref_ec);
  DriftSample post;
  MeasureDrift(engine, reference, probes, &post.recall_at10,
               &post.kendall_tau);
  std::printf("post-quiesce          recall@10=%.4f kendall=%.4f "
              "(repairs_done=%llu)\n",
              post.recall_at10, post.kendall_tau,
              static_cast<unsigned long long>(repairer.repairs_done()));

  WriteJson(curve, post, n, sel.num_landmarks, repairer.repairs_done());
  return 0;
}
