// EXTENSION (coordinator tier): loopback throughput/latency of routed
// scatter-gather serving (src/coord/) versus a single-node server over the
// full graph.
//
// Boots complete partitioned stacks over {1, 2, 4} shards — shard plan,
// `serve --shard`-equivalent shard servers, and a router — and drives the
// same Zipf-skewed query mix through each, reporting q/s and p50/p99
// round-trip latency next to the single-node baseline (the router's merge
// is byte-identical to single-node, so the delta is pure coordination
// cost). A final saturation phase throttles the shard fleet
// (max_inflight=1) and hammers the router: shard OVERLOADED sheds surface
// as partial merges (v4 trailer partial=1, counted by
// mbr_coord_partial_total), never as client failures.
//
// Output: a human-readable table on stdout plus BENCH_coord.json.
// Scaling knobs (bench_common.h): MBR_SCALE multiplies the graph size,
// MBR_TRIALS overrides the query count, MBR_SEED the dataset seed.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "coord/router.h"
#include "coord/shard_plan.h"
#include "coord/shard_replica.h"
#include "core/authority.h"
#include "distributed/partition.h"
#include "landmark/index.h"
#include "landmark/selection.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_engine.h"
#include "topics/similarity_matrix.h"
#include "util/rng.h"
#include "util/timer.h"
#include "util/zipf.h"

namespace {

using namespace mbr;

struct Lat {
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t ok = 0;
  uint64_t partial = 0;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * (v->size() - 1));
  return (*v)[idx];
}

// One partitioned deployment on loopback.
struct Stack {
  coord::ShardPlan plan;
  std::vector<std::unique_ptr<coord::ShardContext>> contexts;
  std::vector<std::unique_ptr<net::Server>> servers;
  std::unique_ptr<coord::Router> router;

  ~Stack() {
    if (router) {
      router->RequestStop();
      router->Wait();
    }
    for (auto& s : servers) {
      if (s) {
        s->RequestStop();
        s->Wait();
      }
    }
  }
};

std::unique_ptr<Stack> MakeStack(const graph::LabeledGraph& g,
                                 const landmark::LandmarkIndex& index,
                                 uint32_t shards, uint32_t max_inflight) {
  distributed::PartitionConfig pcfg;
  pcfg.num_partitions = shards;
  distributed::Partitioning p = PartitionGraph(
      g, distributed::PartitionStrategy::kCommunity, pcfg);
  auto stack = std::make_unique<Stack>();
  stack->plan =
      coord::ShardPlan(std::move(p), distributed::PartitionStrategy::kCommunity,
                       /*halo_depth=*/1, g.num_topics(),
                       std::vector<coord::ShardEndpoint>(shards));
  for (uint32_t s = 0; s < shards; ++s) {
    service::EngineConfig ec;
    ec.num_threads = 1;
    ec.cache_capacity = 1u << 14;
    auto ctx = coord::BuildShardContext(g, topics::TwitterSimilarity(),
                                        stack->plan, s, &index, ec);
    if (!ctx.ok()) {
      std::fprintf(stderr, "shard %u warm start failed: %s\n", s,
                   ctx.status().ToString().c_str());
      return nullptr;
    }
    stack->contexts.push_back(std::move(*ctx));
    coord::ShardContext& sc = *stack->contexts.back();
    net::ServerConfig scfg;
    scfg.dispatch_threads = 1;
    scfg.max_inflight = max_inflight;
    scfg.request_deadline_ms = 0;
    scfg.shard_owned = &sc.owned;
    scfg.shard_index = sc.index.get();
    scfg.shard = s;
    scfg.shards_total = shards;
    stack->servers.push_back(std::make_unique<net::Server>(*sc.engine, scfg));
    if (!stack->servers.back()->Start().ok()) {
      std::fprintf(stderr, "shard %u server failed to start\n", s);
      return nullptr;
    }
    stack->plan.SetEndpoint(s, {"127.0.0.1", stack->servers.back()->port()});
  }
  coord::RouterConfig rcfg;
  rcfg.shard_timeout_ms = 10000;
  stack->router = std::make_unique<coord::Router>(stack->plan, rcfg);
  if (!stack->router->Start().ok()) {
    std::fprintf(stderr, "router failed to start\n");
    return nullptr;
  }
  return stack;
}

// Drives `mix` through `port` from `conns` blocking connections.
Lat Drive(uint16_t port, const std::vector<net::RecommendRequest>& mix,
          uint32_t conns) {
  std::vector<std::vector<double>> lat(conns);
  std::atomic<uint64_t> ok{0}, partial{0};
  util::WallTimer timer;
  std::vector<std::thread> workers;
  for (uint32_t c = 0; c < conns; ++c) {
    workers.emplace_back([&, c] {
      net::ClientConfig cc;
      cc.port = port;
      cc.request_timeout_ms = 60000;
      auto client = net::Client::Connect(cc);
      if (!client.ok()) return;
      for (size_t i = c; i < mix.size(); i += conns) {
        util::WallTimer t;
        auto r = client->RecommendEx(mix[i]);
        if (r.ok()) {
          lat[c].push_back(t.ElapsedSeconds() * 1e6);
          ok.fetch_add(1);
          if (r->coord.partial != 0) partial.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = timer.ElapsedSeconds();
  std::vector<double> all;
  for (auto& l : lat) all.insert(all.end(), l.begin(), l.end());
  Lat out;
  out.qps = elapsed > 0 ? static_cast<double>(ok.load()) / elapsed : 0;
  out.p50_us = Percentile(&all, 0.5);
  out.p99_us = Percentile(&all, 0.99);
  out.ok = ok.load();
  out.partial = partial.load();
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "ext_coord_throughput — routed scatter-gather vs single-node serving",
      "extension beyond the paper: the coordinator tier of DESIGN.md §6.7");

  datagen::TwitterConfig cfg = bench::BenchTwitterConfig(2000);
  datagen::GeneratedDataset ds = datagen::GenerateTwitter(cfg);
  core::AuthorityIndex auth(ds.graph);
  const topics::SimilarityMatrix& sim = topics::TwitterSimilarity();

  landmark::SelectionConfig sel;
  sel.num_landmarks = 32;
  std::vector<graph::NodeId> landmarks =
      landmark::SelectLandmarks(ds.graph,
                                landmark::SelectionStrategy::kOutDeg, sel)
          .landmarks;
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = 40;
  icfg.num_threads = 1;
  landmark::LandmarkIndex index(ds.graph, auth, sim, landmarks, icfg);
  std::printf("graph: %u nodes, %llu edges | %zu landmarks\n",
              ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()),
              landmarks.size());

  const uint32_t num_queries = bench::EnvTrials(800);
  util::Rng rng(bench::EnvSeed(20160316));
  util::ZipfDistribution user_zipf(ds.graph.num_nodes(), 1.1);
  util::ZipfDistribution topic_zipf(
      static_cast<uint32_t>(ds.graph.num_topics()), 1.0);
  std::vector<net::RecommendRequest> mix;
  mix.reserve(num_queries);
  for (uint32_t i = 0; i < num_queries; ++i) {
    net::RecommendRequest q;
    q.user = user_zipf.Sample(&rng);
    q.topic = static_cast<uint32_t>(topic_zipf.Sample(&rng));
    q.top_n = 10;
    mix.push_back(std::move(q));
  }
  const uint32_t kConns = 2;

  // Single-node baseline: one server over the full graph, same mix.
  Lat single;
  {
    service::EngineConfig ec;
    ec.num_threads = 1;
    ec.cache_capacity = 1u << 14;
    ec.landmarks = &index;
    service::QueryEngine engine(ds.graph, auth, sim, ec);
    net::ServerConfig scfg;
    scfg.dispatch_threads = 1;
    scfg.request_deadline_ms = 0;
    net::Server server(engine, scfg);
    if (!server.Start().ok()) {
      std::fprintf(stderr, "single-node server failed to start\n");
      return 1;
    }
    single = Drive(server.port(), mix, kConns);
    server.RequestStop();
    server.Wait();
  }

  struct RoutedRow {
    uint32_t shards;
    Lat lat;
  };
  std::vector<RoutedRow> routed;
  for (uint32_t shards : {1u, 2u, 4u}) {
    auto stack = MakeStack(ds.graph, index, shards, /*max_inflight=*/64);
    if (stack == nullptr) return 1;
    routed.push_back({shards, Drive(stack->router->port(), mix, kConns)});
  }

  std::printf("\n%12s %12s %10s %10s %9s\n", "config", "q/s", "p50(us)",
              "p99(us)", "partial");
  std::printf("%12s %12.0f %10.0f %10.0f %9llu\n", "single-node", single.qps,
              single.p50_us, single.p99_us,
              static_cast<unsigned long long>(single.partial));
  for (const RoutedRow& r : routed) {
    char label[32];
    std::snprintf(label, sizeof(label), "%u-shard", r.shards);
    std::printf("%12s %12.0f %10.0f %10.0f %9llu\n", label, r.lat.qps,
                r.lat.p50_us, r.lat.p99_us,
                static_cast<unsigned long long>(r.lat.partial));
  }

  // Saturation: throttled shard fleet (max_inflight=1) under 8
  // connections. Shard sheds must degrade to partial merges, not errors.
  Lat sat;
  uint64_t sat_partial_counter = 0;
  uint64_t sat_shard_errors = 0;
  {
    auto stack = MakeStack(ds.graph, index, /*shards=*/2, /*max_inflight=*/1);
    if (stack == nullptr) return 1;
    sat = Drive(stack->router->port(), mix, /*conns=*/8);
    sat_partial_counter = stack->router->registry()
                              .GetCounter("mbr_coord_partial_total", "")
                              ->Value();
    sat_shard_errors = stack->router->registry()
                           .GetCounter("mbr_coord_shard_errors_total", "")
                           ->Value();
  }
  std::printf(
      "\nsaturation (2 shards, max_inflight=1, 8 conns): %llu answered, "
      "%llu partial (%.1f%%), %llu shard RPC errors — zero client "
      "failures by policy\n",
      static_cast<unsigned long long>(sat.ok),
      static_cast<unsigned long long>(sat.partial),
      sat.ok > 0 ? 100.0 * static_cast<double>(sat.partial) /
                       static_cast<double>(sat.ok)
                 : 0.0,
      static_cast<unsigned long long>(sat_shard_errors));

  FILE* f = std::fopen("BENCH_coord.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_coord.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ext_coord_throughput\",\n");
  std::fprintf(f, "  \"num_nodes\": %u,\n  \"num_queries\": %u,\n",
               ds.graph.num_nodes(), num_queries);
  std::fprintf(f,
               "  \"single_node\": {\"qps\": %.1f, \"p50_us\": %.1f, "
               "\"p99_us\": %.1f},\n",
               single.qps, single.p50_us, single.p99_us);
  std::fprintf(f, "  \"routed\": [\n");
  for (size_t i = 0; i < routed.size(); ++i) {
    const RoutedRow& r = routed[i];
    std::fprintf(f,
                 "    {\"shards\": %u, \"qps\": %.1f, \"p50_us\": %.1f, "
                 "\"p99_us\": %.1f, \"partial\": %llu}%s\n",
                 r.shards, r.lat.qps, r.lat.p50_us, r.lat.p99_us,
                 static_cast<unsigned long long>(r.lat.partial),
                 i + 1 < routed.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"saturation\": {\"shards\": 2, \"max_inflight\": 1, "
               "\"conns\": 8, \"answered\": %llu, \"partial\": %llu, "
               "\"partial_counter\": %llu, \"shard_errors\": %llu, "
               "\"qps\": %.1f, \"p99_us\": %.1f}\n}\n",
               static_cast<unsigned long long>(sat.ok),
               static_cast<unsigned long long>(sat.partial),
               static_cast<unsigned long long>(sat_partial_counter),
               static_cast<unsigned long long>(sat_shard_errors), sat.qps,
               sat.p99_us);
  std::fclose(f);
  std::printf("wrote BENCH_coord.json\n");
  return 0;
}
