// EXTENSION (network layer): loopback throughput/latency of the epoll
// serving front end (src/net/) versus the same engine called in-process.
//
// Sweeps {1, 4, 16} client connections x {RECOMMEND, RECOMMEND_BATCH}
// over the same Zipf-skewed query mix as ext_serving_throughput. Each
// connection runs a blocking request/reply loop (the client library), so
// single-connection RECOMMEND measures full round-trip cost per query and
// batching shows how much of that is frame overhead. A final saturation
// phase hammers a max_inflight=1 server from 16 connections and reports
// the OVERLOADED shed rate — admission control visibly working.
//
// Scaling knobs (bench_common.h): MBR_SCALE multiplies the graph size,
// MBR_TRIALS overrides the query count, MBR_SEED the dataset seed.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/authority.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_engine.h"
#include "topics/similarity_matrix.h"
#include "util/rng.h"
#include "util/timer.h"
#include "util/zipf.h"

namespace {

using namespace mbr;

struct Row {
  uint32_t conns;
  const char* mode;
  double qps;
  double p50_us;
  double p99_us;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * (v->size() - 1));
  return (*v)[idx];
}

net::ClientConfig ClientFor(uint16_t port) {
  net::ClientConfig cc;
  cc.port = port;
  cc.request_timeout_ms = 60000;
  return cc;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "ext_net_throughput — epoll serving front end over loopback",
      "extension beyond the paper: network serving vs in-process engine");

  datagen::TwitterConfig cfg = bench::BenchTwitterConfig(2000);
  datagen::GeneratedDataset ds = datagen::GenerateTwitter(cfg);
  core::AuthorityIndex auth(ds.graph);
  const topics::SimilarityMatrix& sim = topics::TwitterSimilarity();

  service::EngineConfig ec;
  ec.num_threads = 2;
  ec.cache_capacity = 1u << 15;
  service::QueryEngine engine(ds.graph, auth, sim, ec);
  std::printf("graph: %u nodes, %llu edges | hardware threads: %u\n",
              ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()),
              std::thread::hardware_concurrency());

  const uint32_t num_queries = bench::EnvTrials(2000);
  util::Rng rng(bench::EnvSeed(20160316));
  util::ZipfDistribution user_zipf(ds.graph.num_nodes(), 1.1);
  util::ZipfDistribution topic_zipf(
      static_cast<uint32_t>(ds.graph.num_topics()), 1.0);
  std::vector<net::RecommendRequest> mix;
  mix.reserve(num_queries);
  for (uint32_t i = 0; i < num_queries; ++i) {
    mix.push_back({user_zipf.Sample(&rng),
                   static_cast<uint32_t>(topic_zipf.Sample(&rng)), 10});
  }

  // In-process baseline on the identical mix. The cold pass warms the
  // cache; the warm pass is the fair comparison with the network passes
  // below, which run against the same (already-warm) engine.
  double inproc_cold_qps = 0;
  double inproc_warm_qps = 0;
  {
    std::vector<service::Query> batch;
    batch.reserve(mix.size());
    for (const auto& q : mix) {
      batch.push_back({q.user, static_cast<topics::TopicId>(q.topic),
                       q.top_n});
    }
    util::WallTimer timer;
    engine.RecommendMany(batch);
    inproc_cold_qps = num_queries / timer.ElapsedSeconds();
    timer.Restart();
    engine.RecommendMany(batch);
    inproc_warm_qps = num_queries / timer.ElapsedSeconds();
  }

  net::ServerConfig scfg;
  scfg.max_inflight = 128;
  scfg.dispatch_threads = 2;
  scfg.request_deadline_ms = 0;  // measuring latency, not enforcing SLOs
  net::Server server(engine, scfg);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server failed to start\n");
    return 1;
  }

  std::vector<Row> rows;
  for (uint32_t conns : {1u, 4u, 16u}) {
    for (bool batched : {false, true}) {
      std::vector<std::vector<double>> lat(conns);
      util::WallTimer timer;
      std::vector<std::thread> workers;
      for (uint32_t c = 0; c < conns; ++c) {
        workers.emplace_back([&, c] {
          auto client = net::Client::Connect(ClientFor(server.port()));
          if (!client.ok()) return;
          // Strided share of the mix so every connection sees the skew.
          std::vector<net::RecommendRequest> share;
          for (size_t i = c; i < mix.size(); i += conns) {
            share.push_back(mix[i]);
          }
          if (batched) {
            constexpr size_t kChunk = 64;
            for (size_t i = 0; i < share.size(); i += kChunk) {
              std::vector<net::RecommendRequest> chunk(
                  share.begin() + i,
                  share.begin() + std::min(i + kChunk, share.size()));
              util::WallTimer t;
              auto r = client->RecommendBatch(chunk);
              if (r.ok()) {
                lat[c].push_back(t.ElapsedSeconds() * 1e6 / chunk.size());
              }
            }
          } else {
            for (const auto& q : share) {
              util::WallTimer t;
              auto r = client->Recommend(q.user, q.topic, q.top_n);
              if (r.ok()) lat[c].push_back(t.ElapsedSeconds() * 1e6);
            }
          }
        });
      }
      for (auto& w : workers) w.join();
      const double elapsed = timer.ElapsedSeconds();
      std::vector<double> all;
      for (auto& l : lat) all.insert(all.end(), l.begin(), l.end());
      rows.push_back({conns, batched ? "BATCH" : "RECOMMEND",
                      num_queries / elapsed, Percentile(&all, 0.5),
                      Percentile(&all, 0.99)});
    }
  }
  server.RequestStop();
  server.Wait();

  std::printf("\n%6s %10s %12s %10s %10s\n", "conns", "mode", "q/s",
              "p50(us)", "p99(us)");
  for (const Row& r : rows) {
    std::printf("%6u %10s %12.0f %10.0f %10.0f\n", r.conns, r.mode, r.qps,
                r.p50_us, r.p99_us);
  }
  std::printf("in-process RecommendMany baseline: %.0f q/s cold, %.0f q/s "
              "warm\n",
              inproc_cold_qps, inproc_warm_qps);
  for (const Row& r : rows) {
    if (r.conns == 1 && std::string(r.mode) == "RECOMMEND") {
      std::printf("network round-trip overhead at 1 conn (warm cache): "
                  "%.1fx slower than in-process\n",
                  r.qps > 0 ? inproc_warm_qps / r.qps : 0.0);
    }
  }

  // Saturation: a deliberately tiny server (one in-flight slot, one
  // dispatcher) hammered by 16 connections. OVERLOADED replies are the
  // admission controller shedding instead of queueing unboundedly.
  net::ServerConfig tight;
  tight.max_inflight = 1;
  tight.dispatch_threads = 1;
  tight.request_deadline_ms = 0;
  net::Server small(engine, tight);
  if (!small.Start().ok()) {
    std::fprintf(stderr, "saturation server failed to start\n");
    return 1;
  }
  std::atomic<uint64_t> ok_count{0}, shed_count{0};
  {
    std::vector<std::thread> workers;
    for (uint32_t c = 0; c < 16; ++c) {
      workers.emplace_back([&, c] {
        auto client = net::Client::Connect(ClientFor(small.port()));
        if (!client.ok()) return;
        for (uint32_t i = 0; i < 50; ++i) {
          const auto& q = mix[(c * 997 + i * 131) % mix.size()];
          auto r = client->Recommend(q.user, q.topic, q.top_n);
          if (r.ok()) {
            ok_count.fetch_add(1);
          } else if (r.status().code() == util::StatusCode::kUnavailable) {
            shed_count.fetch_add(1);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  service::StatsSnapshot sat = small.StatsNow();
  small.RequestStop();
  small.Wait();
  const uint64_t total = ok_count.load() + shed_count.load();
  std::printf(
      "\nsaturation (max_inflight=1, 16 conns): %llu served, %llu shed "
      "(%.1f%% OVERLOADED), server shed counter %llu\n",
      static_cast<unsigned long long>(ok_count.load()),
      static_cast<unsigned long long>(shed_count.load()),
      total > 0 ? 100.0 * static_cast<double>(shed_count.load()) /
                      static_cast<double>(total)
                : 0.0,
      static_cast<unsigned long long>(sat.shed_overload));
  return 0;
}
