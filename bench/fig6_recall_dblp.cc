// Figure 6: Recall@N on the DBLP-like citation dataset.
//
// Paper: similar ordering to Twitter (Tr > Katz > TwitterRank), but with a
// faster recall rise for Tr and Katz due to the self-citation /
// shared-bibliography phenomenon, and TwitterRank slightly worse than on
// Twitter (popularity is less informative on the more uniform in-degree).

#include <cstdio>

#include "bench_common.h"
#include "eval/algorithms.h"
#include "eval/linkpred.h"
#include "topics/similarity_matrix.h"
#include "util/table_printer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader("Figure 6 — Recall at N (DBLP)", "EDBT'16 Fig. 6, §5.3");

  datagen::GeneratedDataset ds = datagen::GenerateDblp(bench::BenchDblpConfig());
  std::printf("dataset: %u nodes, %llu edges\n", ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()));

  core::ScoreParams params;
  auto algos = eval::StandardAlgorithms(topics::DblpSimilarity(), params,
                                        /*include_ablations=*/false);
  eval::LinkPredConfig cfg;
  cfg.test_edges = 100;
  cfg.trials = bench::EnvTrials(3);
  cfg.seed = bench::EnvSeed(2016);
  auto curves = eval::RunLinkPrediction(ds.graph, algos, cfg);

  util::TablePrinter tp({"N", "Tr", "Katz", "TwitterRank"});
  for (uint32_t n : {1u, 2u, 5u, 10u, 15u, 20u}) {
    tp.AddRow({std::to_string(n),
               util::TablePrinter::Num(curves[0].recall_at[n - 1], 3),
               util::TablePrinter::Num(curves[1].recall_at[n - 1], 3),
               util::TablePrinter::Num(curves[2].recall_at[n - 1], 3)});
  }
  tp.Print("Recall@N (measured, DBLP)");

  std::printf(
      "\nexpected shape: Tr > Katz > TwitterRank, with a faster early rise "
      "than on Twitter for the path-based scores\n");
  return 0;
}
