// Figure 3: distribution of edges per topic on the Twitter dataset.
//
// The paper reports a strongly biased distribution "similar to the one
// observed for Web sites in Yahoo! Directory": few head topics label a
// large share of the edges, with a long tail. We print the per-topic edge
// counts (descending) with a text bar chart and the head/tail ratio.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "topics/vocabulary.h"
#include "util/table_printer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader("Figure 3 — Distribution of edges per topic (Twitter)",
                     "EDBT'16 Fig. 3, §5.1");

  datagen::GeneratedDataset ds =
      datagen::GenerateTwitter(bench::BenchTwitterConfig());
  const auto& g = ds.graph;
  const auto& vocab = topics::TwitterVocabulary();

  std::vector<uint64_t> edges_per_topic(g.num_topics(), 0);
  uint64_t total_labels = 0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (topics::TopicSet lab : g.OutEdgeLabels(u)) {
      for (topics::TopicId t : lab) {
        ++edges_per_topic[t];
        ++total_labels;
      }
    }
  }

  std::vector<int> order(g.num_topics());
  for (int i = 0; i < g.num_topics(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return edges_per_topic[a] > edges_per_topic[b];
  });

  util::TablePrinter tp({"rank", "topic", "#edge labels", "share", "bar"});
  uint64_t max_count = edges_per_topic[order[0]];
  for (size_t r = 0; r < order.size(); ++r) {
    int t = order[r];
    double share = static_cast<double>(edges_per_topic[t]) / total_labels;
    int bar_len =
        static_cast<int>(40.0 * edges_per_topic[t] / std::max<uint64_t>(1, max_count));
    tp.AddRow({std::to_string(r + 1),
               vocab.Name(static_cast<topics::TopicId>(t)),
               util::TablePrinter::Int(static_cast<int64_t>(edges_per_topic[t])),
               util::TablePrinter::Num(share, 3), std::string(bar_len, '#')});
  }
  tp.Print("Edges per topic (descending)");

  uint64_t tail = edges_per_topic[order.back()];
  std::printf(
      "\nhead/tail ratio: %.1fx (paper: strongly biased, Yahoo!-Directory-"
      "like; a Zipf-shaped head dominating the tail)\n",
      tail > 0 ? static_cast<double>(max_count) / tail : 0.0);
  return 0;
}
