// google-benchmark micro benchmarks for the core primitives: graph
// construction, authority indexing, score exploration (exact and pruned),
// TwitterRank power iteration, landmark index build and approximate
// queries, Wu-Palmer similarity lookups.

#include <benchmark/benchmark.h>

#include "baselines/twitterrank.h"
#include "core/authority.h"
#include "core/recommender.h"
#include "core/scorer.h"
#include "datagen/twitter_generator.h"
#include "landmark/approx.h"
#include "landmark/index.h"
#include "landmark/selection.h"
#include "topics/similarity_matrix.h"
#include "distributed/partition.h"
#include "dynamic/churn.h"
#include "graph/edgelist.h"
#include "text/naive_bayes.h"
#include "util/rng.h"

namespace {

using namespace mbr;

const datagen::GeneratedDataset& Dataset(uint32_t nodes) {
  static std::map<uint32_t, datagen::GeneratedDataset>& cache =
      *new std::map<uint32_t, datagen::GeneratedDataset>();
  auto it = cache.find(nodes);
  if (it == cache.end()) {
    datagen::TwitterConfig c;
    c.num_nodes = nodes;
    it = cache.emplace(nodes, datagen::GenerateTwitter(c)).first;
  }
  return it->second;
}

void BM_GenerateTwitter(benchmark::State& state) {
  datagen::TwitterConfig c;
  c.num_nodes = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto ds = datagen::GenerateTwitter(c);
    benchmark::DoNotOptimize(ds.graph.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * c.num_nodes);
}
BENCHMARK(BM_GenerateTwitter)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_BuildAuthorityIndex(benchmark::State& state) {
  const auto& ds = Dataset(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    core::AuthorityIndex idx(ds.graph);
    benchmark::DoNotOptimize(idx.Authority(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * ds.graph.num_edges());
}
BENCHMARK(BM_BuildAuthorityIndex)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_ExactExploreSingleTopic(benchmark::State& state) {
  const auto& ds = Dataset(static_cast<uint32_t>(state.range(0)));
  core::AuthorityIndex auth(ds.graph);
  core::ScoreParams params;
  core::Scorer scorer(ds.graph, auth, topics::TwitterSimilarity(), params);
  util::Rng rng(1);
  for (auto _ : state) {
    graph::NodeId u =
        static_cast<graph::NodeId>(rng.UniformU64(ds.graph.num_nodes()));
    auto res = scorer.Explore(u, topics::TopicSet::Single(0));
    benchmark::DoNotOptimize(res.reached().size());
  }
}
BENCHMARK(BM_ExactExploreSingleTopic)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_ExactExploreAllTopics(benchmark::State& state) {
  const auto& ds = Dataset(static_cast<uint32_t>(state.range(0)));
  core::AuthorityIndex auth(ds.graph);
  core::ScoreParams params;
  core::Scorer scorer(ds.graph, auth, topics::TwitterSimilarity(), params);
  topics::TopicSet all;
  for (int t = 0; t < ds.graph.num_topics(); ++t) {
    all.Add(static_cast<topics::TopicId>(t));
  }
  util::Rng rng(1);
  for (auto _ : state) {
    graph::NodeId u =
        static_cast<graph::NodeId>(rng.UniformU64(ds.graph.num_nodes()));
    auto res = scorer.Explore(u, all);
    benchmark::DoNotOptimize(res.reached().size());
  }
}
BENCHMARK(BM_ExactExploreAllTopics)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_ApproxQuery(benchmark::State& state) {
  const auto& ds = Dataset(8000);
  core::AuthorityIndex auth(ds.graph);
  landmark::SelectionConfig scfg;
  scfg.num_landmarks = static_cast<uint32_t>(state.range(0));
  auto sel = SelectLandmarks(ds.graph, landmark::SelectionStrategy::kFollow,
                             scfg);
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = 100;
  landmark::LandmarkIndex index(ds.graph, auth, topics::TwitterSimilarity(),
                                sel.landmarks, icfg);
  landmark::ApproxConfig acfg;
  landmark::ApproxRecommender approx(ds.graph, auth,
                                     topics::TwitterSimilarity(), index,
                                     acfg);
  util::Rng rng(1);
  for (auto _ : state) {
    graph::NodeId u =
        static_cast<graph::NodeId>(rng.UniformU64(ds.graph.num_nodes()));
    auto recs = approx.TopN(u, 0, 10);
    benchmark::DoNotOptimize(recs.size());
  }
}
BENCHMARK(BM_ApproxQuery)->Arg(20)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_LandmarkIndexBuild(benchmark::State& state) {
  const auto& ds = Dataset(2000);
  core::AuthorityIndex auth(ds.graph);
  landmark::SelectionConfig scfg;
  scfg.num_landmarks = 10;
  auto sel = SelectLandmarks(ds.graph, landmark::SelectionStrategy::kRandom,
                             scfg);
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    landmark::LandmarkIndex index(ds.graph, auth,
                                  topics::TwitterSimilarity(),
                                  sel.landmarks, icfg);
    benchmark::DoNotOptimize(index.StorageBytes());
  }
}
BENCHMARK(BM_LandmarkIndexBuild)->Arg(10)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_TwitterRankBuild(benchmark::State& state) {
  const auto& ds = Dataset(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    baselines::TwitterRank twr(ds.graph);
    benchmark::DoNotOptimize(twr.Score(0, 0));
  }
}
BENCHMARK(BM_TwitterRankBuild)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_WuPalmerMatrixLookup(benchmark::State& state) {
  const auto& sim = topics::TwitterSimilarity();
  util::Rng rng(1);
  for (auto _ : state) {
    topics::TopicId a = static_cast<topics::TopicId>(rng.UniformU64(18));
    topics::TopicId b = static_cast<topics::TopicId>(rng.UniformU64(18));
    benchmark::DoNotOptimize(sim.Sim(a, b));
  }
}
BENCHMARK(BM_WuPalmerMatrixLookup);


void BM_PartitionGraph(benchmark::State& state) {
  const auto& ds = Dataset(8000);
  distributed::PartitionConfig c;
  c.num_partitions = 4;
  auto strategy = static_cast<distributed::PartitionStrategy>(state.range(0));
  for (auto _ : state) {
    auto part = PartitionGraph(ds.graph, strategy, c);
    benchmark::DoNotOptimize(part.edge_cut);
  }
}
BENCHMARK(BM_PartitionGraph)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_DeltaGraphChurnRound(benchmark::State& state) {
  const auto& ds = Dataset(8000);
  for (auto _ : state) {
    dynamic::DeltaGraph overlay(&ds.graph);
    util::Rng rng(7);
    dynamic::ChurnConfig churn;
    auto stats = ApplyChurnRound(&overlay, nullptr, churn, &rng);
    benchmark::DoNotOptimize(stats.edges_added);
  }
}
BENCHMARK(BM_DeltaGraphChurnRound)->Unit(benchmark::kMillisecond);

void BM_EdgeListRoundTrip(benchmark::State& state) {
  const auto& ds = Dataset(2000);
  std::string path = "/tmp/mbr_bench_edges.txt";
  for (auto _ : state) {
    (void)graph::WriteEdgeList(ds.graph, topics::TwitterVocabulary(), path);
    auto r = graph::ReadEdgeList(path, topics::TwitterVocabulary());
    benchmark::DoNotOptimize(r.ok());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_EdgeListRoundTrip)->Unit(benchmark::kMillisecond);

void BM_NaiveBayesTrain(benchmark::State& state) {
  text::TopicLanguageModel lm = text::MakeTwitterLanguageModel(3);
  util::Rng rng(4);
  std::vector<text::LabeledDocument> docs;
  for (int t = 0; t < 18; ++t) {
    for (int d = 0; d < 20; ++d) {
      topics::TopicSet labels =
          topics::TopicSet::Single(static_cast<topics::TopicId>(t));
      std::string txt;
      for (const auto& tw : lm.GenerateUserTweets(labels, 10, &rng)) {
        txt += tw;
        txt.push_back(' ');
      }
      docs.push_back({std::move(txt), labels});
    }
  }
  for (auto _ : state) {
    text::NaiveBayesClassifier nb(18);
    nb.Train(docs);
    benchmark::DoNotOptimize(nb.trained());
  }
}
BENCHMARK(BM_NaiveBayesTrain)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
