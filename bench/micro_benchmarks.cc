// google-benchmark micro benchmarks for the core primitives: graph
// construction, authority indexing, score exploration (exact and pruned),
// TwitterRank power iteration, landmark index build and approximate
// queries, Wu-Palmer similarity lookups.
//
// Extras beyond plain google-benchmark:
//   --smoke                runs the hot-path probes on a small graph and
//                          FAILS (exit 1) if a warm query heap-allocates —
//                          the zero-allocation CI gate (tools/check.sh).
//   --hotpath_json=PATH    measures the zero-allocation hot paths (exact
//                          exploration + landmark approximation) and
//                          writes ns/query, allocations/query and frontier
//                          widths as JSON (checked in as
//                          BENCH_hotpath.json), then exits.
// Heap traffic is observed by replacing global operator new/delete with
// counting forwarders — only in this binary.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "util/timer.h"
#include "util/top_k.h"

// ---------------------------------------------------------------------------
// Allocation-counting global new/delete (bench binary only).

namespace {
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_alloc_bytes{0};

void* CountedAlloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#include "baselines/twitterrank.h"
#include "core/authority.h"
#include "core/recommender.h"
#include "core/scorer.h"
#include "datagen/twitter_generator.h"
#include "landmark/approx.h"
#include "landmark/index.h"
#include "landmark/selection.h"
#include "topics/similarity_matrix.h"
#include "distributed/partition.h"
#include "dynamic/churn.h"
#include "graph/edgelist.h"
#include "text/naive_bayes.h"
#include "util/rng.h"

namespace {

using namespace mbr;

const datagen::GeneratedDataset& Dataset(uint32_t nodes) {
  static std::map<uint32_t, datagen::GeneratedDataset>& cache =
      *new std::map<uint32_t, datagen::GeneratedDataset>();
  auto it = cache.find(nodes);
  if (it == cache.end()) {
    datagen::TwitterConfig c;
    c.num_nodes = nodes;
    it = cache.emplace(nodes, datagen::GenerateTwitter(c)).first;
  }
  return it->second;
}

void BM_GenerateTwitter(benchmark::State& state) {
  datagen::TwitterConfig c;
  c.num_nodes = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto ds = datagen::GenerateTwitter(c);
    benchmark::DoNotOptimize(ds.graph.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * c.num_nodes);
}
BENCHMARK(BM_GenerateTwitter)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_BuildAuthorityIndex(benchmark::State& state) {
  const auto& ds = Dataset(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    core::AuthorityIndex idx(ds.graph);
    benchmark::DoNotOptimize(idx.Authority(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * ds.graph.num_edges());
}
BENCHMARK(BM_BuildAuthorityIndex)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_ExactExploreSingleTopic(benchmark::State& state) {
  const auto& ds = Dataset(static_cast<uint32_t>(state.range(0)));
  core::AuthorityIndex auth(ds.graph);
  core::ScoreParams params;
  core::Scorer scorer(ds.graph, auth, topics::TwitterSimilarity(), params);
  util::Rng rng(1);
  for (auto _ : state) {
    graph::NodeId u =
        static_cast<graph::NodeId>(rng.UniformU64(ds.graph.num_nodes()));
    auto res = scorer.Explore(u, topics::TopicSet::Single(0));
    benchmark::DoNotOptimize(res.reached().size());
  }
}
BENCHMARK(BM_ExactExploreSingleTopic)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_ExactExploreAllTopics(benchmark::State& state) {
  const auto& ds = Dataset(static_cast<uint32_t>(state.range(0)));
  core::AuthorityIndex auth(ds.graph);
  core::ScoreParams params;
  core::Scorer scorer(ds.graph, auth, topics::TwitterSimilarity(), params);
  topics::TopicSet all;
  for (int t = 0; t < ds.graph.num_topics(); ++t) {
    all.Add(static_cast<topics::TopicId>(t));
  }
  util::Rng rng(1);
  for (auto _ : state) {
    graph::NodeId u =
        static_cast<graph::NodeId>(rng.UniformU64(ds.graph.num_nodes()));
    auto res = scorer.Explore(u, all);
    benchmark::DoNotOptimize(res.reached().size());
  }
}
BENCHMARK(BM_ExactExploreAllTopics)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_ApproxQuery(benchmark::State& state) {
  const auto& ds = Dataset(8000);
  core::AuthorityIndex auth(ds.graph);
  landmark::SelectionConfig scfg;
  scfg.num_landmarks = static_cast<uint32_t>(state.range(0));
  auto sel = SelectLandmarks(ds.graph, landmark::SelectionStrategy::kFollow,
                             scfg);
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = 100;
  landmark::LandmarkIndex index(ds.graph, auth, topics::TwitterSimilarity(),
                                sel.landmarks, icfg);
  landmark::ApproxConfig acfg;
  landmark::ApproxRecommender approx(ds.graph, auth,
                                     topics::TwitterSimilarity(), index,
                                     acfg);
  util::Rng rng(1);
  for (auto _ : state) {
    graph::NodeId u =
        static_cast<graph::NodeId>(rng.UniformU64(ds.graph.num_nodes()));
    auto recs = approx.TopN(u, 0, 10);
    benchmark::DoNotOptimize(recs.size());
  }
}
BENCHMARK(BM_ApproxQuery)->Arg(20)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_LandmarkIndexBuild(benchmark::State& state) {
  const auto& ds = Dataset(2000);
  core::AuthorityIndex auth(ds.graph);
  landmark::SelectionConfig scfg;
  scfg.num_landmarks = 10;
  auto sel = SelectLandmarks(ds.graph, landmark::SelectionStrategy::kRandom,
                             scfg);
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    landmark::LandmarkIndex index(ds.graph, auth,
                                  topics::TwitterSimilarity(),
                                  sel.landmarks, icfg);
    benchmark::DoNotOptimize(index.StorageBytes());
  }
}
BENCHMARK(BM_LandmarkIndexBuild)->Arg(10)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_TwitterRankBuild(benchmark::State& state) {
  const auto& ds = Dataset(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    baselines::TwitterRank twr(ds.graph);
    benchmark::DoNotOptimize(twr.Score(0, 0));
  }
}
BENCHMARK(BM_TwitterRankBuild)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_WuPalmerMatrixLookup(benchmark::State& state) {
  const auto& sim = topics::TwitterSimilarity();
  util::Rng rng(1);
  for (auto _ : state) {
    topics::TopicId a = static_cast<topics::TopicId>(rng.UniformU64(18));
    topics::TopicId b = static_cast<topics::TopicId>(rng.UniformU64(18));
    benchmark::DoNotOptimize(sim.Sim(a, b));
  }
}
BENCHMARK(BM_WuPalmerMatrixLookup);


void BM_PartitionGraph(benchmark::State& state) {
  const auto& ds = Dataset(8000);
  distributed::PartitionConfig c;
  c.num_partitions = 4;
  auto strategy = static_cast<distributed::PartitionStrategy>(state.range(0));
  for (auto _ : state) {
    auto part = PartitionGraph(ds.graph, strategy, c);
    benchmark::DoNotOptimize(part.edge_cut);
  }
}
BENCHMARK(BM_PartitionGraph)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_DeltaGraphChurnRound(benchmark::State& state) {
  const auto& ds = Dataset(8000);
  for (auto _ : state) {
    dynamic::DeltaGraph overlay(&ds.graph);
    util::Rng rng(7);
    dynamic::ChurnConfig churn;
    auto stats = ApplyChurnRound(&overlay, nullptr, churn, &rng);
    benchmark::DoNotOptimize(stats.edges_added);
  }
}
BENCHMARK(BM_DeltaGraphChurnRound)->Unit(benchmark::kMillisecond);

void BM_EdgeListRoundTrip(benchmark::State& state) {
  const auto& ds = Dataset(2000);
  std::string path = "/tmp/mbr_bench_edges.txt";
  for (auto _ : state) {
    (void)graph::WriteEdgeList(ds.graph, topics::TwitterVocabulary(), path);
    auto r = graph::ReadEdgeList(path, topics::TwitterVocabulary());
    benchmark::DoNotOptimize(r.ok());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_EdgeListRoundTrip)->Unit(benchmark::kMillisecond);

void BM_NaiveBayesTrain(benchmark::State& state) {
  text::TopicLanguageModel lm = text::MakeTwitterLanguageModel(3);
  util::Rng rng(4);
  std::vector<text::LabeledDocument> docs;
  for (int t = 0; t < 18; ++t) {
    for (int d = 0; d < 20; ++d) {
      topics::TopicSet labels =
          topics::TopicSet::Single(static_cast<topics::TopicId>(t));
      std::string txt;
      for (const auto& tw : lm.GenerateUserTweets(labels, 10, &rng)) {
        txt += tw;
        txt.push_back(' ');
      }
      docs.push_back({std::move(txt), labels});
    }
  }
  for (auto _ : state) {
    text::NaiveBayesClassifier nb(18);
    nb.Train(docs);
    benchmark::DoNotOptimize(nb.trained());
  }
}
BENCHMARK(BM_NaiveBayesTrain)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Zero-allocation hot-path probes (DESIGN.md §6.6).
//
// Each probe runs a fixed cycle of query sources: one full warmup pass
// brings every reusable buffer (arena scratch, ExplorationResult vectors,
// FlatMap tables, TopK heap + output list) to its high-water mark, then the
// measured passes replay the same sources. In steady state a warm query
// must not touch the heap at all — the probes report the observed
// allocations/query so the gate is a measurement, not an assertion in the
// library.

struct HotpathResult {
  double ns_per_query = 0.0;
  double allocs_per_query = 0.0;
  double mean_frontier = 0.0;  // nodes reached per query
  uint64_t queries = 0;
};

std::vector<graph::NodeId> SourceCycle(uint32_t num_nodes, int cycle,
                                       uint64_t seed) {
  util::Rng rng(seed);
  std::vector<graph::NodeId> sources;
  sources.reserve(static_cast<size_t>(cycle));
  for (int i = 0; i < cycle; ++i) {
    sources.push_back(static_cast<graph::NodeId>(rng.UniformU64(num_nodes)));
  }
  return sources;
}

HotpathResult MeasureExactHotpath(const datagen::GeneratedDataset& ds,
                                  int cycle, int passes) {
  core::AuthorityIndex auth(ds.graph);
  core::ScoreParams params;
  util::QueryArena arena;
  core::Scorer scorer(ds.graph, auth, topics::TwitterSimilarity(), params,
                      &arena);
  util::TopK topk(10);
  std::vector<util::ScoredId> ranked;
  std::vector<graph::NodeId> sources = SourceCycle(ds.graph.num_nodes(), cycle, 1);

  uint64_t frontier = 0;
  auto run = [&](graph::NodeId u) {
    const core::ExplorationResult& res =
        scorer.Explore(u, topics::TopicSet::Single(0));
    topk.Reset(10);
    for (graph::NodeId v : res.reached()) {
      if (v == u) continue;
      double s = res.Sigma(v, 0);
      if (s > 0.0) topk.Offer(v, s);
    }
    topk.TakeInto(&ranked);
    frontier += res.reached().size();
    benchmark::DoNotOptimize(ranked.data());
  };

  for (graph::NodeId u : sources) run(u);  // warmup pass
  frontier = 0;
  const uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  util::WallTimer timer;
  for (int p = 0; p < passes; ++p) {
    for (graph::NodeId u : sources) run(u);
  }
  const double seconds = timer.ElapsedSeconds();
  const uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;

  HotpathResult r;
  r.queries = static_cast<uint64_t>(passes) * sources.size();
  r.ns_per_query = seconds * 1e9 / static_cast<double>(r.queries);
  r.allocs_per_query =
      static_cast<double>(allocs) / static_cast<double>(r.queries);
  r.mean_frontier =
      static_cast<double>(frontier) / static_cast<double>(r.queries);
  return r;
}

HotpathResult MeasureApproxHotpath(const datagen::GeneratedDataset& ds,
                                   uint32_t num_landmarks, int cycle,
                                   int passes) {
  core::AuthorityIndex auth(ds.graph);
  landmark::SelectionConfig scfg;
  scfg.num_landmarks = num_landmarks;
  auto sel =
      SelectLandmarks(ds.graph, landmark::SelectionStrategy::kFollow, scfg);
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = 100;
  landmark::LandmarkIndex index(ds.graph, auth, topics::TwitterSimilarity(),
                                sel.landmarks, icfg);
  landmark::ApproxConfig acfg;
  util::QueryArena arena;
  landmark::ApproxRecommender approx(ds.graph, auth,
                                     topics::TwitterSimilarity(), index, acfg,
                                     &arena);
  util::TopK topk(10);
  std::vector<util::ScoredId> ranked;
  std::vector<graph::NodeId> sources = SourceCycle(ds.graph.num_nodes(), cycle, 1);

  uint64_t frontier = 0;
  auto run = [&](graph::NodeId u) {
    landmark::QueryStats qs;
    const util::FlatMap<graph::NodeId, double>& scores =
        approx.ScoresFlat(u, 0, &qs);
    topk.Reset(10);
    for (const auto& [v, s] : scores) {
      if (s > 0.0) topk.Offer(v, s);
    }
    topk.TakeInto(&ranked);
    frontier += qs.nodes_reached;
    benchmark::DoNotOptimize(ranked.data());
  };

  for (graph::NodeId u : sources) run(u);  // warmup pass
  frontier = 0;
  const uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  util::WallTimer timer;
  for (int p = 0; p < passes; ++p) {
    for (graph::NodeId u : sources) run(u);
  }
  const double seconds = timer.ElapsedSeconds();
  const uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;

  HotpathResult r;
  r.queries = static_cast<uint64_t>(passes) * sources.size();
  r.ns_per_query = seconds * 1e9 / static_cast<double>(r.queries);
  r.allocs_per_query =
      static_cast<double>(allocs) / static_cast<double>(r.queries);
  r.mean_frontier =
      static_cast<double>(frontier) / static_cast<double>(r.queries);
  return r;
}

// Hot-path probes are also visible as plain benchmarks, so before/after
// comparisons fall out of a normal --benchmark_filter=Hotpath run.
void BM_HotpathExactQuery(benchmark::State& state) {
  const auto& ds = Dataset(static_cast<uint32_t>(state.range(0)));
  core::AuthorityIndex auth(ds.graph);
  core::ScoreParams params;
  util::QueryArena arena;
  core::Scorer scorer(ds.graph, auth, topics::TwitterSimilarity(), params,
                      &arena);
  util::TopK topk(10);
  std::vector<util::ScoredId> ranked;
  std::vector<graph::NodeId> sources = SourceCycle(ds.graph.num_nodes(), 32, 1);
  size_t i = 0;
  auto run = [&](graph::NodeId u) {
    const core::ExplorationResult& res =
        scorer.Explore(u, topics::TopicSet::Single(0));
    topk.Reset(10);
    for (graph::NodeId v : res.reached()) {
      if (v == u) continue;
      double s = res.Sigma(v, 0);
      if (s > 0.0) topk.Offer(v, s);
    }
    topk.TakeInto(&ranked);
    benchmark::DoNotOptimize(ranked.data());
  };
  for (graph::NodeId u : sources) run(u);  // warm the scratch
  const uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    run(sources[i++ % sources.size()]);
  }
  const uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_query"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_HotpathExactQuery)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_HotpathApproxQuery(benchmark::State& state) {
  const auto& ds = Dataset(8000);
  core::AuthorityIndex auth(ds.graph);
  landmark::SelectionConfig scfg;
  scfg.num_landmarks = static_cast<uint32_t>(state.range(0));
  auto sel =
      SelectLandmarks(ds.graph, landmark::SelectionStrategy::kFollow, scfg);
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = 100;
  landmark::LandmarkIndex index(ds.graph, auth, topics::TwitterSimilarity(),
                                sel.landmarks, icfg);
  landmark::ApproxConfig acfg;
  util::QueryArena arena;
  landmark::ApproxRecommender approx(ds.graph, auth,
                                     topics::TwitterSimilarity(), index, acfg,
                                     &arena);
  util::TopK topk(10);
  std::vector<util::ScoredId> ranked;
  std::vector<graph::NodeId> sources = SourceCycle(ds.graph.num_nodes(), 32, 1);
  size_t i = 0;
  auto run = [&](graph::NodeId u) {
    const util::FlatMap<graph::NodeId, double>& scores =
        approx.ScoresFlat(u, 0);
    topk.Reset(10);
    for (const auto& [v, s] : scores) {
      if (s > 0.0) topk.Offer(v, s);
    }
    topk.TakeInto(&ranked);
    benchmark::DoNotOptimize(ranked.data());
  };
  for (graph::NodeId u : sources) run(u);  // warm the scratch
  const uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    run(sources[i++ % sources.size()]);
  }
  const uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_query"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_HotpathApproxQuery)->Arg(20)->Arg(100)->Unit(benchmark::kMicrosecond);

void PrintHotpathResult(const char* name, const HotpathResult& r) {
  std::printf("%-28s %12.0f ns/query  %6.2f allocs/query  frontier %8.1f  (%llu queries)\n",
              name, r.ns_per_query, r.allocs_per_query, r.mean_frontier,
              static_cast<unsigned long long>(r.queries));
}

// --smoke: the CI gate. Small graph, few passes; fails if a warm query on
// either hot path allocates.
int RunSmoke() {
  datagen::TwitterConfig c;
  c.num_nodes = 1000;
  auto ds = datagen::GenerateTwitter(c);
  HotpathResult exact = MeasureExactHotpath(ds, /*cycle=*/8, /*passes=*/2);
  HotpathResult approx =
      MeasureApproxHotpath(ds, /*num_landmarks=*/10, /*cycle=*/8, /*passes=*/2);
  PrintHotpathResult("exact_explore(1000)", exact);
  PrintHotpathResult("landmark_approx(1000,10)", approx);
  int failures = 0;
  if (exact.allocs_per_query != 0.0) {
    std::fprintf(stderr,
                 "FAIL: exact hot path allocated (%.2f allocs/query)\n",
                 exact.allocs_per_query);
    ++failures;
  }
  if (approx.allocs_per_query != 0.0) {
    std::fprintf(stderr,
                 "FAIL: landmark hot path allocated (%.2f allocs/query)\n",
                 approx.allocs_per_query);
    ++failures;
  }
  if (failures == 0) std::printf("smoke OK: zero allocations on warm hot paths\n");
  return failures == 0 ? 0 : 1;
}

void AppendHotpathJson(std::string* out, const char* path_name,
                       const char* size_key, uint64_t size_value,
                       const HotpathResult& r, bool last) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"path\": \"%s\", \"%s\": %llu, \"ns_per_query\": %.0f, "
                "\"allocs_per_query\": %.4f, \"mean_frontier_nodes\": %.1f, "
                "\"queries\": %llu}%s\n",
                path_name, size_key,
                static_cast<unsigned long long>(size_value), r.ns_per_query,
                r.allocs_per_query, r.mean_frontier,
                static_cast<unsigned long long>(r.queries), last ? "" : ",");
  *out += buf;
}

int RunHotpathReport(const std::string& path) {
  std::string json = "{\n  \"benchmark\": \"hotpath\",\n  \"samples\": [\n";
  const uint32_t exact_sizes[] = {2000, 8000};
  for (uint32_t n : exact_sizes) {
    HotpathResult r = MeasureExactHotpath(Dataset(n), /*cycle=*/32, /*passes=*/4);
    char name[64];
    std::snprintf(name, sizeof(name), "exact_explore(%u)", n);
    PrintHotpathResult(name, r);
    AppendHotpathJson(&json, "exact_explore", "num_nodes", n, r, false);
  }
  const uint32_t landmark_counts[] = {20, 100};
  for (size_t i = 0; i < 2; ++i) {
    uint32_t lm = landmark_counts[i];
    HotpathResult r =
        MeasureApproxHotpath(Dataset(8000), lm, /*cycle=*/64, /*passes=*/16);
    char name[64];
    std::snprintf(name, sizeof(name), "landmark_approx(8000,%u)", lm);
    PrintHotpathResult(name, r);
    AppendHotpathJson(&json, "landmark_approx", "num_landmarks", lm, r,
                      i + 1 == 2);
  }
  json += "  ]\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
    if (std::strncmp(argv[i], "--hotpath_json=", 15) == 0) {
      return RunHotpathReport(std::string(argv[i] + 15));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
