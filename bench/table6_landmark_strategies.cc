// Table 6: quality/efficiency comparison of the 11 landmark selection
// strategies — average number of landmarks met by the depth-2 exploration,
// approximate query time with its gain over the exact computation, and the
// Kendall tau distance to the exact top-100 when landmarks store the
// top-10 / top-100 / top-1000 per topic.
//
// Paper anchors (100 landmarks): #lnd ranges from 2.9 (Random/Btw-Pub) to
// 58.9 (In-Deg); queries run in 0.54-0.93 s — a gain of 338x-585x (2-3
// orders of magnitude); tau between 0.06 (Btw-Fol) and 0.52 (In-Deg@L10),
// improving with larger stored lists for the degree-based strategies.

#include <cstdio>

#include "bench_common.h"
#include "core/authority.h"
#include "eval/approx_eval.h"
#include "topics/similarity_matrix.h"
#include "util/table_printer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader(
      "Table 6 — Comparison of the landmark selection strategies",
      "EDBT'16 Table 6, §5.4");

  datagen::GeneratedDataset ds =
      datagen::GenerateTwitter(bench::BenchTwitterConfig());
  core::AuthorityIndex auth(ds.graph);

  eval::ApproxEvalConfig cfg;
  cfg.selection.num_landmarks = 100;
  cfg.selection.band_min = 5;
  cfg.selection.band_max = 500;
  cfg.stored_top_ns = {10, 100, 1000};
  cfg.num_queries = bench::EnvTrials(15);
  // Comparison depth scaled to the laptop-size graph (the paper compares
  // top-100 at 2.2M nodes; at 20k nodes the strong-signal region is the
  // first few dozen ranks, deeper ranks are near-ties).
  cfg.compare_top_n = 20;
  cfg.seed = bench::EnvSeed(5);

  util::TablePrinter tp({"Strategy", "#lnd", "time in ms (gain)", "L10",
                         "L100", "L1000"});
  size_t l1000_bytes_per_landmark = 0;
  for (auto strategy : landmark::AllStrategies()) {
    eval::StrategyEvaluation ev = EvaluateStrategy(
        ds.graph, auth, topics::TwitterSimilarity(), strategy, cfg);
    l1000_bytes_per_landmark = ev.index_bytes_largest / 100;
    char timing[64];
    std::snprintf(timing, sizeof(timing), "%.3f (%.0f)",
                  ev.avg_query_seconds * 1e3, ev.gain);
    tp.AddRow({landmark::StrategyName(strategy),
               util::TablePrinter::Num(ev.avg_landmarks_met, 1), timing,
               util::TablePrinter::Num(ev.kendall_tau[0], 3),
               util::TablePrinter::Num(ev.kendall_tau[1], 3),
               util::TablePrinter::Num(ev.kendall_tau[2], 3)});
  }
  tp.Print("Landmark strategy comparison (100 landmarks)");
  std::printf(
      "\nstored top-1000 lists: %.2f MB per landmark (paper §5.4: ~1.4 MB "
      "per landmark, 'can easily fit in memory')\n",
      static_cast<double>(l1000_bytes_per_landmark) / (1024.0 * 1024.0));

  // ---- Gain scaling: the approximate query cost is bounded by the depth-2
  // vicinity while the exact computation explores the whole graph, so the
  // speed-up grows with |N| — the paper's 2-3 orders of magnitude hold at
  // 2.2M nodes; we show the trend toward it.
  {
    util::TablePrinter sp({"graph nodes", "exact (ms)", "approx (ms)",
                           "gain"});
    for (uint32_t nodes : {5000u, 15000u, 40000u}) {
      datagen::TwitterConfig gc = bench::BenchTwitterConfig(nodes);
      gc.num_nodes = nodes;  // sweep ignores MBR_SCALE
      datagen::GeneratedDataset d = datagen::GenerateTwitter(gc);
      core::AuthorityIndex a(d.graph);
      eval::ApproxEvalConfig c;
      c.selection.num_landmarks = 100;
      c.stored_top_ns = {100};
      c.num_queries = 10;
      c.compare_top_n = 20;
      eval::StrategyEvaluation e =
          EvaluateStrategy(d.graph, a, topics::TwitterSimilarity(),
                           landmark::SelectionStrategy::kRandom, c);
      sp.AddRow({util::TablePrinter::Int(nodes),
                 util::TablePrinter::Num(e.avg_exact_seconds * 1e3, 3),
                 util::TablePrinter::Num(e.avg_query_seconds * 1e3, 3),
                 util::TablePrinter::Num(e.gain, 0)});
    }
    sp.Print("Exact-vs-approximate gain as the graph grows (Random)");
  }

  std::printf(
      "\npaper row examples — Random: 2.9 lnd, gain 338, tau 0.130/0.124/"
      "0.125; In-Deg: 58.9 lnd, gain 373, tau 0.523/0.149/0.066; Btw-Fol: "
      "3.5 lnd, gain 577, tau ~0.06\n");
  std::printf(
      "expected shape: degree-heavy strategies meet many landmarks; all "
      "strategies gain 2-3 orders of magnitude over the exact computation; "
      "storing more recommendations never hurts tau for the degree-based "
      "strategies\n");
  return 0;
}
