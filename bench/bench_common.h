#ifndef MBR_BENCH_BENCH_COMMON_H_
#define MBR_BENCH_BENCH_COMMON_H_

// Shared helpers for the per-table / per-figure benchmark binaries.
//
// Every binary runs standalone with laptop-scale defaults and prints the
// paper's rows/series next to our measured values. Environment variables
// scale the workloads:
//   MBR_SCALE   — multiplies the default node counts (default 1.0)
//   MBR_TRIALS  — link-prediction trials (default per bench)
//   MBR_SEED    — dataset seed override

#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/dblp_generator.h"
#include "datagen/twitter_generator.h"

namespace mbr::bench {

inline double EnvScale() {
  const char* s = std::getenv("MBR_SCALE");
  return s == nullptr ? 1.0 : std::atof(s);
}

inline uint32_t EnvTrials(uint32_t def) {
  const char* s = std::getenv("MBR_TRIALS");
  return s == nullptr ? def : static_cast<uint32_t>(std::atoi(s));
}

inline uint64_t EnvSeed(uint64_t def) {
  const char* s = std::getenv("MBR_SEED");
  return s == nullptr ? def : static_cast<uint64_t>(std::atoll(s));
}

// The default benchmark datasets: scaled-down analogues of the paper's
// Twitter crawl and DBLP dump (see DESIGN.md).
inline datagen::TwitterConfig BenchTwitterConfig(uint32_t base_nodes = 20000) {
  datagen::TwitterConfig c;
  c.num_nodes = static_cast<uint32_t>(base_nodes * EnvScale());
  c.seed = EnvSeed(c.seed);
  return c;
}

inline datagen::DblpConfig BenchDblpConfig(uint32_t base_nodes = 10000) {
  datagen::DblpConfig c;
  c.num_nodes = static_cast<uint32_t>(base_nodes * EnvScale());
  c.seed = EnvSeed(c.seed);
  return c;
}

inline void PrintHeader(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace mbr::bench

#endif  // MBR_BENCH_BENCH_COMMON_H_
