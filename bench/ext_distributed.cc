// EXTENSION (paper §6 future work): distributed recommendation.
//
// "distribution implies to split the graph by taking into account
//  connectivity, but also to perform landmark selections and distributions
//  that allow a node to evaluate the recommendation scores 'locally'
//  minimizing network transfer costs."
//
// We shard the follow graph across 4 simulated workers under three
// partitioners, home each landmark's lists on its node's partition, and
// measure per partitioner: the edge cut, the network messages a
// full-fidelity query would ship, and how much quality a zero-network
// partition-local query retains.

#include <cstdio>

#include "bench_common.h"
#include "core/authority.h"
#include "core/scorer.h"
#include "distributed/cluster.h"
#include "distributed/partition.h"
#include "landmark/selection.h"
#include "topics/similarity_matrix.h"
#include "util/kendall.h"
#include "util/table_printer.h"
#include "util/top_k.h"

namespace {

using namespace mbr;

std::vector<uint32_t> TopIds(
    const util::FlatMap<graph::NodeId, double>& scores,
    graph::NodeId self, uint32_t k) {
  util::TopK topk(k);
  for (const auto& [v, s] : scores) {
    if (v != self && s > 0.0) topk.Offer(v, s);
  }
  std::vector<uint32_t> ids;
  for (const auto& r : topk.Take()) ids.push_back(r.id);
  return ids;
}

}  // namespace

int main() {
  bench::PrintHeader("EXT — Distributed recommendation across 4 workers",
                     "EDBT'16 §6 future work (graph splitting + local "
                     "evaluation)");

  datagen::GeneratedDataset ds =
      datagen::GenerateTwitter(bench::BenchTwitterConfig(10000));
  const auto& sim = topics::TwitterSimilarity();
  core::AuthorityIndex auth(ds.graph);

  landmark::SelectionConfig scfg;
  scfg.num_landmarks = 100;
  auto sel = SelectLandmarks(ds.graph, landmark::SelectionStrategy::kFollow,
                             scfg);
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = 100;
  landmark::LandmarkIndex index(ds.graph, auth, sim, sel.landmarks, icfg);

  core::ScoreParams params;
  core::Scorer exact(ds.graph, auth, sim, params);

  const uint32_t queries = bench::EnvTrials(25);
  const uint32_t compare_k = 20;

  util::TablePrinter tp({"partitioner", "edge cut", "balance",
                         "msgs/query", "lm fetches", "parts touched",
                         "local tau@20", "global tau@20"});
  for (auto strategy :
       {distributed::PartitionStrategy::kHash,
        distributed::PartitionStrategy::kBfsChunks,
        distributed::PartitionStrategy::kCommunity,
        distributed::PartitionStrategy::kCommunityPopularity}) {
    distributed::PartitionConfig pcfg;
    pcfg.num_partitions = 4;
    distributed::Partitioning partitioning =
        PartitionGraph(ds.graph, strategy, pcfg);
    distributed::SimulatedCluster cluster(ds.graph, auth, sim, index,
                                          partitioning);

    double msgs = 0, fetches = 0, parts = 0, local_tau = 0, global_tau = 0;
    uint32_t done = 0;
    util::Rng rng(bench::EnvSeed(99));
    for (uint32_t q = 0; q < queries; ++q) {
      graph::NodeId u =
          static_cast<graph::NodeId>(rng.UniformU64(ds.graph.num_nodes()));
      if (ds.graph.OutDegree(u) == 0) continue;
      topics::TopicId t =
          static_cast<topics::TopicId>(rng.UniformU64(ds.graph.num_topics()));

      // Exact reference top-k.
      core::ExplorationResult res =
          exact.Explore(u, topics::TopicSet::Single(t));
      util::TopK topk(compare_k);
      for (graph::NodeId v : res.reached()) {
        if (v != u && res.Sigma(v, t) > 0.0) topk.Offer(v, res.Sigma(v, t));
      }
      std::vector<uint32_t> exact_ids;
      for (const auto& r : topk.Take()) exact_ids.push_back(r.id);

      distributed::QueryCost cost;
      const auto& global_scores = cluster.Query(u, t, &cost);
      const auto& local_scores = cluster.LocalQuery(u, t);
      msgs += static_cast<double>(cost.edge_messages);
      fetches += static_cast<double>(cost.landmark_fetches);
      parts += static_cast<double>(cost.partitions_touched);
      global_tau += util::KendallTauTopK(
          TopIds(global_scores, u, compare_k), exact_ids);
      local_tau += util::KendallTauTopK(
          TopIds(local_scores, u, compare_k), exact_ids);
      ++done;
    }
    if (done > 0) {
      msgs /= done;
      fetches /= done;
      parts /= done;
      local_tau /= done;
      global_tau /= done;
    }
    tp.AddRow({distributed::PartitionStrategyName(strategy),
               util::TablePrinter::Num(partitioning.edge_cut, 3),
               util::TablePrinter::Num(partitioning.balance, 2),
               util::TablePrinter::Num(msgs, 1),
               util::TablePrinter::Num(fetches, 1),
               util::TablePrinter::Num(parts, 2),
               util::TablePrinter::Num(local_tau, 3),
               util::TablePrinter::Num(global_tau, 3)});
  }
  tp.Print("Partitioner comparison (4 workers, 100 landmarks)");

  std::printf(
      "\nobserved trade-off: connectivity-aware partitioning (Community-*) "
      "cuts ~40%% fewer edges and ships ~35%% fewer messages per query "
      "than hashing — but its partitions align with *topical* communities, "
      "so zero-network local evaluation fails for queries about topics "
      "outside the user's own community (their authorities live on other "
      "workers); reachability chunking (BFS) keeps mixed neighbourhoods "
      "together and degrades local quality the least. This is the paper's "
      "§6 point made concrete: distribution needs connectivity-aware "
      "splitting AND topic/landmark-aware placement, because the two pull "
      "in different directions\n");
  return 0;
}
