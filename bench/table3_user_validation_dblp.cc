// Table 3: the (simulated) DBLP user-validation study — researchers rate
// the top-3 author recommendations of each method for their own profile,
// with recommended authors capped at 100 citations to avoid obvious
// celebrities.
//
// Paper:                 Katz   Tr     TWR
//   average mark         2.38   2.47   1.51
//   # 4 and 5 marks      46     47     11
//   best answer (%)      0.38   0.50   0.12

#include <cstdio>

#include "baselines/katz.h"
#include "baselines/twitterrank.h"
#include "bench_common.h"
#include "core/recommender.h"
#include "eval/user_study.h"
#include "topics/similarity_matrix.h"
#include "topics/vocabulary.h"
#include "util/table_printer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader(
      "Table 3 — User validation (DBLP, simulated raters)",
      "EDBT'16 Table 3, §5.3 — see DESIGN.md for the rater-simulation "
      "substitution");

  datagen::GeneratedDataset ds = datagen::GenerateDblp(bench::BenchDblpConfig());

  core::ScoreParams params;
  core::TrRecommender tr(ds.graph, topics::DblpSimilarity(), params);
  baselines::KatzRecommender katz(ds.graph, topics::DblpSimilarity(), params);
  baselines::TwitterRank twr(ds.graph);
  std::vector<core::Recommender*> algos = {&katz, &tr, &twr};

  eval::UserStudyConfig cfg;
  cfg.num_raters = 47;  // the paper collected 47 answers
  cfg.num_queries = bench::EnvTrials(47);
  cfg.seed = bench::EnvSeed(47);
  // Research areas are only mildly ambiguous; mark dispersion comes from
  // relevance, not attribution.
  cfg.default_ambiguity = 0.30;
  // "we limit to 100 the number of citations of the authors returned" —
  // scaled to our graph (≈100 * our-avg-in / paper-avg-in).
  cfg.max_target_in_degree = 40;
  // Citation plausibility: distant authors are unlikely "could-have-cited"
  // candidates (drives the paper's poor TwitterRank marks).
  cfg.distant_relevance_penalty = 0.35;

  // Aggregate over a spread of areas (the paper's panel spans IR, DB, OR,
  // networks, software engineering, ...).
  const auto& vocab = topics::DblpVocabulary();
  std::vector<eval::StudyOutcome> total(algos.size());
  for (size_t a = 0; a < algos.size(); ++a) total[a].name = algos[a]->name();
  int topics_used = 0;
  for (const char* area : {"databases", "ir", "networks", "software",
                           "theory"}) {
    auto outcomes = RunUserStudy(ds, algos, vocab.Id(area), cfg);
    for (size_t a = 0; a < algos.size(); ++a) {
      total[a].avg_mark += outcomes[a].avg_mark;
      total[a].marks_4_or_5 += outcomes[a].marks_4_or_5;
      total[a].best_answer_frac += outcomes[a].best_answer_frac;
      total[a].accounts_rated += outcomes[a].accounts_rated;
    }
    ++topics_used;
  }
  for (auto& o : total) {
    o.avg_mark /= topics_used;
    o.best_answer_frac /= topics_used;
  }

  util::TablePrinter tp({"", "Katz", "Tr", "TWR", "paper (Katz/Tr/TWR)"});
  tp.AddRow({"average mark", util::TablePrinter::Num(total[0].avg_mark, 2),
             util::TablePrinter::Num(total[1].avg_mark, 2),
             util::TablePrinter::Num(total[2].avg_mark, 2),
             "2.38 / 2.47 / 1.51"});
  tp.AddRow({"# 4 and 5-mark",
             util::TablePrinter::Int(static_cast<int64_t>(total[0].marks_4_or_5)),
             util::TablePrinter::Int(static_cast<int64_t>(total[1].marks_4_or_5)),
             util::TablePrinter::Int(static_cast<int64_t>(total[2].marks_4_or_5)),
             "46 / 47 / 11"});
  tp.AddRow({"best answer (%)",
             util::TablePrinter::Num(total[0].best_answer_frac, 2),
             util::TablePrinter::Num(total[1].best_answer_frac, 2),
             util::TablePrinter::Num(total[2].best_answer_frac, 2),
             "0.38 / 0.50 / 0.12"});
  tp.Print("Table 3 (simulated)");

  std::printf(
      "\nexpected shape: Katz ~ Tr (topically closed communities), both far "
      "above TwitterRank, and Tr winning the most queries\n");
  return 0;
}
