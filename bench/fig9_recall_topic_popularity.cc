// Figure 9: recall@10 as a function of the query topic's popularity
// (Twitter; topics social < leisure < technology by edge share in Fig. 3).
//
// Paper anchors: infrequent topic social — Tr 0.959, Katz 0.751, TWR 0.253;
// popular topic technology — Tr 0.462, Katz 0.424, TWR 0.09. Two expected
// effects: (1) the rarer the topic, the easier the retrieval; (2) Tr on top
// for every topic.

#include <cstdio>

#include "bench_common.h"
#include "eval/algorithms.h"
#include "eval/linkpred.h"
#include "topics/similarity_matrix.h"
#include "topics/vocabulary.h"
#include "util/table_printer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader("Figure 9 — Recall@10 w.r.t. topic popularity",
                     "EDBT'16 Fig. 9, §5.3");

  datagen::GeneratedDataset ds =
      datagen::GenerateTwitter(bench::BenchTwitterConfig());
  const auto& vocab = topics::TwitterVocabulary();
  core::ScoreParams params;
  auto algos = eval::StandardAlgorithms(topics::TwitterSimilarity(), params,
                                        /*include_ablations=*/false);

  // Per-topic edge share, to report each probed topic's actual popularity.
  std::vector<uint64_t> edges_per_topic(ds.graph.num_topics(), 0);
  for (graph::NodeId u = 0; u < ds.graph.num_nodes(); ++u) {
    for (topics::TopicSet lab : ds.graph.OutEdgeLabels(u)) {
      for (topics::TopicId t : lab) ++edges_per_topic[t];
    }
  }

  util::TablePrinter tp(
      {"topic", "#edges", "Tr", "Katz", "TwitterRank", "paper (Tr/Katz/TWR)"});
  struct Probe {
    const char* topic;
    const char* paper;
  };
  for (const Probe& p :
       {Probe{"social", "0.959 / 0.751 / 0.253"},
        Probe{"leisure", "mid"},
        Probe{"technology", "0.462 / 0.424 / 0.090"}}) {
    topics::TopicId t = vocab.Id(p.topic);
    eval::LinkPredConfig cfg;
    cfg.test_edges = 60;
    cfg.trials = bench::EnvTrials(3);
    cfg.max_top_n = 10;
    cfg.fixed_topic = t;
    cfg.seed = bench::EnvSeed(2016);
    auto curves = eval::RunLinkPrediction(ds.graph, algos, cfg);
    tp.AddRow({p.topic,
               util::TablePrinter::Int(static_cast<int64_t>(edges_per_topic[t])),
               util::TablePrinter::Num(curves[0].recall_at[9], 3),
               util::TablePrinter::Num(curves[1].recall_at[9], 3),
               util::TablePrinter::Num(curves[2].recall_at[9], 3), p.paper});
  }
  tp.Print("Recall@10 by query topic");

  std::printf(
      "\nexpected shape: the less popular the topic, the better the recall; "
      "Tr always on top\n");
  return 0;
}
