// Figure 8: recall@10 as a function of the removed account's popularity
// (top-10% vs bottom-10% most-followed eligible targets), on both datasets.
//
// Paper anchors (Twitter): bottom decile — Katz 0.15, TwitterRank 0.03,
// Tr 0.18; top decile — all strategies between 0.9 and 0.95, with
// TwitterRank best. DBLP: bottom-decile recall higher than Twitter's for
// Katz/Tr (denser graph), TwitterRank failing on both slices.

#include <cstdio>

#include "bench_common.h"
#include "eval/algorithms.h"
#include "eval/linkpred.h"
#include "topics/similarity_matrix.h"
#include "util/table_printer.h"

namespace {

using namespace mbr;

std::vector<double> RecallAt10(const graph::LabeledGraph& g,
                               const topics::SimilarityMatrix& sim,
                               eval::PopularityFilter filter, uint32_t trials,
                               uint64_t seed) {
  core::ScoreParams params;
  auto algos = eval::StandardAlgorithms(sim, params, false);
  eval::LinkPredConfig cfg;
  cfg.test_edges = 80;
  cfg.trials = trials;
  cfg.max_top_n = 10;
  cfg.popularity = filter;
  cfg.seed = seed;
  auto curves = eval::RunLinkPrediction(g, algos, cfg);
  return {curves[0].recall_at[9], curves[1].recall_at[9],
          curves[2].recall_at[9]};
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 8 — Recall@10 w.r.t. account popularity",
                     "EDBT'16 Fig. 8, §5.3");

  datagen::GeneratedDataset tw =
      datagen::GenerateTwitter(bench::BenchTwitterConfig());
  datagen::GeneratedDataset db = datagen::GenerateDblp(bench::BenchDblpConfig());
  uint32_t trials = bench::EnvTrials(3);
  uint64_t seed = bench::EnvSeed(2016);

  auto tw_min = RecallAt10(tw.graph, topics::TwitterSimilarity(),
                           eval::PopularityFilter::kBottom10Percent, trials,
                           seed);
  auto tw_max = RecallAt10(tw.graph, topics::TwitterSimilarity(),
                           eval::PopularityFilter::kTop10Percent, trials,
                           seed);
  auto db_min = RecallAt10(db.graph, topics::DblpSimilarity(),
                           eval::PopularityFilter::kBottom10Percent, trials,
                           seed);
  auto db_max = RecallAt10(db.graph, topics::DblpSimilarity(),
                           eval::PopularityFilter::kTop10Percent, trials,
                           seed);

  util::TablePrinter tp({"slice", "Tr", "Katz", "TwitterRank", "paper (Tr/Katz/TWR)"});
  auto N = [](double v) { return util::TablePrinter::Num(v, 3); };
  tp.AddRow({"TW min (bottom 10%)", N(tw_min[0]), N(tw_min[1]), N(tw_min[2]),
             "0.18 / 0.15 / 0.03"});
  tp.AddRow({"TW max (top 10%)", N(tw_max[0]), N(tw_max[1]), N(tw_max[2]),
             "0.90-0.95 all"});
  tp.AddRow({"DBLP min (bottom 10%)", N(db_min[0]), N(db_min[1]),
             N(db_min[2]), "higher than TW min for Tr/Katz; TWR fails"});
  tp.AddRow({"DBLP max (top 10%)", N(db_max[0]), N(db_max[1]), N(db_max[2]),
             "TWR below its TW max"});
  tp.Print("Recall@10 by target popularity");

  std::printf(
      "\nexpected shape: popular accounts near-perfectly retrievable by all "
      "strategies; unpopular ones hard, with Tr best and TwitterRank "
      "worst\n");
  return 0;
}
