// EXTENSION (serving layer): batched-query throughput of the concurrent
// QueryEngine.
//
// Sweeps worker count {1, 2, 4, 8} x cache {off, on} over a Zipf-skewed
// query mix (skewed users AND skewed topics — the shape of real "who to
// follow" traffic) against a datagen Twitter graph. For each setting the
// same batch runs twice: cold (every query scored) and warm (repeats can
// hit the cache). Reported: queries/s for both passes, the warm hit rate,
// and p50/p99 serving latency.
//
// Scaling knobs (bench_common.h): MBR_SCALE multiplies the graph size,
// MBR_TRIALS overrides the query count, MBR_SEED the dataset seed.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/authority.h"
#include "service/query_engine.h"
#include "topics/similarity_matrix.h"
#include "util/rng.h"
#include "util/timer.h"
#include "util/zipf.h"

namespace {

using namespace mbr;

struct Row {
  uint32_t threads;
  bool cache;
  double cold_qps;
  double warm_qps;
  double hit_rate;
  double p50_us;
  double p99_us;
};

}  // namespace

int main() {
  bench::PrintHeader(
      "ext_serving_throughput — concurrent QueryEngine sweep",
      "extension beyond the paper: serving-layer scaling (threads x cache)");

  datagen::TwitterConfig cfg = bench::BenchTwitterConfig(4000);
  datagen::GeneratedDataset ds = datagen::GenerateTwitter(cfg);
  core::AuthorityIndex auth(ds.graph);
  const topics::SimilarityMatrix& sim = topics::TwitterSimilarity();
  std::printf("graph: %u nodes, %llu edges, %d topics | hardware threads: %u\n",
              ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()),
              ds.graph.num_topics(), std::thread::hardware_concurrency());

  // Zipf-skewed query mix: popular users are asked about far more often,
  // popular topics dominate — this is what makes a serving cache pay.
  const uint32_t num_queries = bench::EnvTrials(3000);
  util::Rng rng(bench::EnvSeed(20160316));
  util::ZipfDistribution user_zipf(ds.graph.num_nodes(), 1.1);
  util::ZipfDistribution topic_zipf(
      static_cast<uint32_t>(ds.graph.num_topics()), 1.0);
  std::vector<service::Query> batch;
  batch.reserve(num_queries);
  for (uint32_t i = 0; i < num_queries; ++i) {
    service::Query q;
    q.user = user_zipf.Sample(&rng);
    q.topic = static_cast<topics::TopicId>(topic_zipf.Sample(&rng));
    q.top_n = 10;
    batch.push_back(q);
  }

  std::vector<Row> rows;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    for (bool cache : {false, true}) {
      service::EngineConfig ec;
      ec.num_threads = threads;
      ec.cache_capacity = cache ? 1u << 15 : 0;
      service::QueryEngine engine(ds.graph, auth, sim, ec);

      util::WallTimer timer;
      engine.RecommendMany(batch);
      const double cold = timer.ElapsedSeconds();
      const service::EngineStats after_cold = engine.Stats();
      timer.Restart();
      engine.RecommendMany(batch);
      const double warm = timer.ElapsedSeconds();
      const service::EngineStats s = engine.Stats();

      // Warm-pass hit rate: of the repeated batch's queries, how many were
      // O(1) cache lookups.
      const double warm_hit_rate =
          static_cast<double>(s.cache_hits - after_cold.cache_hits) /
          static_cast<double>(num_queries);
      rows.push_back({threads, cache, num_queries / cold,
                      num_queries / warm, warm_hit_rate,
                      s.LatencyPercentileMicros(0.5),
                      s.LatencyPercentileMicros(0.99)});
    }
  }

  std::printf("\n%8s %6s %12s %12s %9s %9s %9s\n", "threads", "cache",
              "cold q/s", "warm q/s", "warm-hit", "p50(us)", "p99(us)");
  for (const Row& r : rows) {
    std::printf("%8u %6s %12.0f %12.0f %8.1f%% %9.0f %9.0f\n", r.threads,
                r.cache ? "on" : "off", r.cold_qps, r.warm_qps,
                100.0 * r.hit_rate, r.p50_us, r.p99_us);
  }

  // Headline numbers the acceptance criteria track.
  double qps1 = 0, qps4 = 0, warm_hit = 0;
  for (const Row& r : rows) {
    if (!r.cache && r.threads == 1) qps1 = r.cold_qps;
    if (!r.cache && r.threads == 4) qps4 = r.cold_qps;
    if (r.cache && r.threads == 4) warm_hit = r.hit_rate;
  }
  std::printf(
      "\nbatched speedup 4t vs 1t (cache off, cold): %.2fx "
      "(needs >= 4 hardware threads to show parallel scaling)\n",
      qps1 > 0 ? qps4 / qps1 : 0.0);
  std::printf("warm-pass hit rate at 4t with cache on: %.1f%%\n",
              100.0 * warm_hit);
  return 0;
}
