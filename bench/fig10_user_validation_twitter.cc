// Figure 10: relevance scores from the (simulated) Twitter user-validation
// task — 54 raters mark the top-3 recommendations of Katz, Tr and
// TwitterRank for the topics technology, social and leisure on a 1-5 scale.
//
// Paper anchors: social is ambiguous and compresses to 2.7 (TWR) / 2.8
// (Katz) / 2.9 (Tr); on the clearer topics Tr and TwitterRank beat Katz;
// TwitterRank is slightly better on the most popular topic (technology),
// Tr better on medium-popularity leisure.

#include <cstdio>

#include "baselines/katz.h"
#include "baselines/twitterrank.h"
#include "bench_common.h"
#include "core/recommender.h"
#include "eval/user_study.h"
#include "topics/similarity_matrix.h"
#include "topics/vocabulary.h"
#include "util/table_printer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader(
      "Figure 10 — Relevance scores (user validation, Twitter, simulated "
      "raters)",
      "EDBT'16 Fig. 10, §5.3 — see DESIGN.md for the rater-simulation "
      "substitution");

  datagen::GeneratedDataset ds =
      datagen::GenerateTwitter(bench::BenchTwitterConfig(8000));
  const auto& vocab = topics::TwitterVocabulary();

  core::ScoreParams params;
  core::TrRecommender tr(ds.graph, topics::TwitterSimilarity(), params);
  baselines::KatzRecommender katz(ds.graph, topics::TwitterSimilarity(),
                                  params);
  baselines::TwitterRank twr(ds.graph);
  std::vector<core::Recommender*> algos = {&katz, &tr, &twr};

  eval::UserStudyConfig cfg;
  cfg.num_raters = 54;  // the paper's panel size
  cfg.num_queries = bench::EnvTrials(30);
  cfg.seed = bench::EnvSeed(54);
  // Ambiguity per topic: the paper's raters found social hard to judge
  // (mixed with health / politics), technology and leisure clear.
  cfg.topic_ambiguity.assign(vocab.size(), 0.35);
  cfg.topic_ambiguity[vocab.Id("social")] = 0.70;
  cfg.topic_ambiguity[vocab.Id("technology")] = 0.15;
  cfg.topic_ambiguity[vocab.Id("leisure")] = 0.20;

  util::TablePrinter tp(
      {"topic", "Katz", "Tr", "TwitterRank", "paper (Katz/Tr/TWR)"});
  struct Probe {
    const char* topic;
    const char* paper;
  };
  for (const Probe& p : {Probe{"technology", "Tr ~ TWR > Katz; TWR best"},
                         Probe{"social", "2.8 / 2.9 / 2.7 (all mid-scale)"},
                         Probe{"leisure", "Tr best, TWR close, Katz behind"}}) {
    auto outcomes = RunUserStudy(ds, algos, vocab.Id(p.topic), cfg);
    tp.AddRow({p.topic, util::TablePrinter::Num(outcomes[0].avg_mark, 2),
               util::TablePrinter::Num(outcomes[1].avg_mark, 2),
               util::TablePrinter::Num(outcomes[2].avg_mark, 2), p.paper});
  }
  tp.Print("Average relevance mark (1-5 scale, 54 simulated raters)");

  std::printf(
      "\nexpected shape: social compressed to the 2-3 midpoint for all "
      "algorithms; on clear topics the content-aware scores (Tr, TWR) beat "
      "the purely topological Katz\n");
  return 0;
}
