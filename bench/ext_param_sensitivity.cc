// EXTENSION (ablation): sensitivity to the decay parameters β and α.
//
// §5.2 fixes β = 0.0005 and α = 0.85 by citing the Katz and TwitterRank
// conventions, without a sweep. This bench probes both: recall@10 of Tr on
// the Twitter-like dataset across a β grid (path-length decay) and an α
// grid (within-path edge-distance decay).
//
// Expectation: a broad plateau — the ranking is dominated by short paths
// for any β ≪ 1/σmax, so the paper's "borrowed" constants are safe; only
// β approaching the Proposition 3 bound (where long walks stop vanishing)
// or α → 0 (which zeroes every edge contribution beyond the first hop's
// authority products) should move the needle.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/recommender.h"
#include "core/spectral.h"
#include "eval/linkpred.h"
#include "topics/similarity_matrix.h"
#include "util/table_printer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader("EXT — Ablation: decay parameters β and α",
                     "EDBT'16 §5.2 (parameter choice)");

  datagen::GeneratedDataset ds =
      datagen::GenerateTwitter(bench::BenchTwitterConfig(10000));
  double bound = core::MaxConvergentBeta(ds.graph);
  std::printf("dataset: %u nodes, %llu edges; Proposition 3 bound: beta < "
              "%.4f\n",
              ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()), bound);

  eval::LinkPredConfig cfg;
  cfg.test_edges = 60;
  cfg.trials = bench::EnvTrials(2);
  cfg.max_top_n = 10;
  cfg.seed = bench::EnvSeed(2016);

  auto run = [&](double beta, double alpha) {
    core::ScoreParams p;
    p.beta = beta;
    p.alpha = alpha;
    std::vector<eval::Algorithm> algos = {
        {"Tr", [p](const graph::LabeledGraph& g) {
           return std::unique_ptr<core::Recommender>(
               new core::TrRecommender(g, topics::TwitterSimilarity(), p));
         }}};
    return RunLinkPrediction(ds.graph, algos, cfg)[0].recall_at[9];
  };

  {
    util::TablePrinter tp({"beta (alpha = 0.85)", "recall@10"});
    for (double beta : {0.00005, 0.0005, 0.005, 0.05}) {
      tp.AddRow({util::TablePrinter::Num(beta, 5),
                 util::TablePrinter::Num(run(beta, 0.85), 3)});
    }
    tp.Print("beta sweep (paper value: 0.0005)");
  }
  {
    util::TablePrinter tp({"alpha (beta = 0.0005)", "recall@10"});
    for (double alpha : {0.1, 0.25, 0.5, 0.85, 1.0}) {
      tp.AddRow({util::TablePrinter::Num(alpha, 2),
                 util::TablePrinter::Num(run(0.0005, alpha), 3)});
    }
    tp.Print("alpha sweep (paper value: 0.85)");
  }

  std::printf(
      "\nexpected shape: a wide plateau around the paper's (0.0005, 0.85) — "
      "the constants borrowed from [16] and [26] are not load-bearing\n");
  return 0;
}
