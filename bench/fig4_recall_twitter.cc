// Figure 4: Recall@N on the Twitter-like dataset for Tr, Katz, TwitterRank
// and the two ablations (Tr−auth, Tr−sim).
//
// Paper anchors (2.2M-node crawl): recall@1 — TwitterRank 0.04, Katz 0.29,
// Tr 0.34 (gains 8.5x / 1.2x); at top-10 the Tr gains are 3.8x / 1.3x.
// Expected shape at our scale: Tr > Katz > TwitterRank, with the ablations
// between Katz and Tr.

#include <cstdio>

#include "bench_common.h"
#include "eval/algorithms.h"
#include "eval/linkpred.h"
#include "topics/similarity_matrix.h"
#include "util/table_printer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader("Figure 4 — Recall at N (Twitter)",
                     "EDBT'16 Fig. 4, §5.3");

  datagen::GeneratedDataset ds =
      datagen::GenerateTwitter(bench::BenchTwitterConfig());
  std::printf("dataset: %u nodes, %llu edges\n", ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()));

  core::ScoreParams params;  // β = 0.0005, α = 0.85 (paper §5.2)
  auto algos = eval::StandardAlgorithms(topics::TwitterSimilarity(), params,
                                        /*include_ablations=*/true);
  eval::LinkPredConfig cfg;
  cfg.test_edges = 100;
  cfg.trials = bench::EnvTrials(3);
  cfg.seed = bench::EnvSeed(2016);
  auto curves = eval::RunLinkPrediction(ds.graph, algos, cfg);

  util::TablePrinter tp({"N", "Tr", "Katz", "TwitterRank", "Tr-auth",
                         "Tr-sim"});
  for (uint32_t n : {1u, 2u, 5u, 10u, 15u, 20u}) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const auto& c : curves) {
      row.push_back(util::TablePrinter::Num(c.recall_at[n - 1], 3));
    }
    tp.AddRow(std::move(row));
  }
  tp.Print("Recall@N (measured)");

  std::printf(
      "\npaper@top-1: Tr 0.34, Katz 0.29, TwitterRank 0.04"
      "  |  measured@top-1: Tr %.2f, Katz %.2f, TwitterRank %.2f\n",
      curves[0].recall_at[0], curves[1].recall_at[0],
      curves[2].recall_at[0]);
  std::printf(
      "paper gain Tr/TWR at top-1: 8.5x; top-10: 3.8x"
      "  |  measured: %.1fx; %.1fx\n",
      curves[2].recall_at[0] > 0
          ? curves[0].recall_at[0] / curves[2].recall_at[0]
          : 0.0,
      curves[2].recall_at[9] > 0
          ? curves[0].recall_at[9] / curves[2].recall_at[9]
          : 0.0);
  return 0;
}
