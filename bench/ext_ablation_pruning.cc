// EXTENSION (ablation): the landmark-pruning design choice of §5.4.
//
// "we perform pruning when we encounter a landmark during the BFS, to avoid
//  considering twice paths from the BFS which pass through a landmark.
//  Since the recommendation computation is dominated by the BFS exploration
//  and computation, this pruning largely reduces the whole processing time."
//
// This bench isolates that choice: with pruning the approximate score is a
// clean lower bound and the BFS is smaller; without it, walks through
// landmarks are both re-explored (slower) and double-counted (scores
// inflated above the exact value). Rows per landmark-heavy strategy.

#include <cstdio>

#include "bench_common.h"
#include "core/authority.h"
#include "core/recommender.h"
#include "landmark/approx.h"
#include "landmark/index.h"
#include "landmark/selection.h"
#include "topics/similarity_matrix.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace mbr;
  bench::PrintHeader("EXT — Ablation: landmark pruning on/off",
                     "EDBT'16 §5.4 pruning remark");

  datagen::GeneratedDataset ds =
      datagen::GenerateTwitter(bench::BenchTwitterConfig(10000));
  const auto& sim = topics::TwitterSimilarity();
  core::AuthorityIndex auth(ds.graph);
  core::TrRecommender exact(ds.graph, sim);

  util::TablePrinter tp({"strategy", "pruned ms", "unpruned ms",
                         "nodes pruned/unpruned", "overcount rate",
                         "max overshoot"});
  for (auto strategy : {landmark::SelectionStrategy::kInDeg,
                        landmark::SelectionStrategy::kFollow,
                        landmark::SelectionStrategy::kRandom}) {
    landmark::SelectionConfig scfg;
    scfg.num_landmarks = 100;
    auto sel = SelectLandmarks(ds.graph, strategy, scfg);
    landmark::LandmarkIndexConfig icfg;
    icfg.top_n = 100;
    landmark::LandmarkIndex index(ds.graph, auth, sim, sel.landmarks, icfg);

    landmark::ApproxConfig pruned_cfg;
    landmark::ApproxConfig unpruned_cfg;
    unpruned_cfg.prune_at_landmarks = false;
    landmark::ApproxRecommender pruned(ds.graph, auth, sim, index,
                                       pruned_cfg);
    landmark::ApproxRecommender unpruned(ds.graph, auth, sim, index,
                                         unpruned_cfg);

    double ms_p = 0, ms_u = 0, nodes_p = 0, nodes_u = 0;
    uint64_t overcounted = 0, compared = 0;
    double max_overshoot = 0.0;
    util::Rng rng(bench::EnvSeed(4));
    const uint32_t queries = bench::EnvTrials(15);
    // Warm both recommenders (scratch allocation happens on first use).
    pruned.ApproximateScores(0, 0);
    unpruned.ApproximateScores(0, 0);
    for (uint32_t q = 0; q < queries; ++q) {
      graph::NodeId u =
          static_cast<graph::NodeId>(rng.UniformU64(ds.graph.num_nodes()));
      topics::TopicId t =
          static_cast<topics::TopicId>(rng.UniformU64(ds.graph.num_topics()));
      landmark::QueryStats sp, su;
      util::WallTimer tm;
      auto scores_p = pruned.ApproximateScores(u, t, &sp);
      ms_p += tm.ElapsedMillis();
      tm.Restart();
      auto scores_u = unpruned.ApproximateScores(u, t, &su);
      ms_u += tm.ElapsedMillis();
      nodes_p += sp.nodes_reached;
      nodes_u += su.nodes_reached;

      // Overcounting: unpruned scores exceeding the exact σ.
      std::vector<graph::NodeId> nodes;
      nodes.reserve(scores_u.size());
      for (const auto& [v, s] : scores_u) nodes.push_back(v);
      auto exact_scores = exact.CandidateScores(u, t, nodes);
      size_t i = 0;
      for (const auto& [v, s] : scores_u) {
        if (exact_scores[i] > 0.0) {
          ++compared;
          if (s > exact_scores[i] * (1 + 1e-9)) {
            ++overcounted;
            max_overshoot =
                std::max(max_overshoot, s / exact_scores[i] - 1.0);
          }
        }
        ++i;
      }
    }
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.0f / %.0f", nodes_p / queries,
                  nodes_u / queries);
    tp.AddRow({landmark::StrategyName(strategy),
               util::TablePrinter::Num(ms_p / queries, 3),
               util::TablePrinter::Num(ms_u / queries, 3), ratio,
               util::TablePrinter::Num(
                   compared ? static_cast<double>(overcounted) / compared
                            : 0.0,
                   3),
               util::TablePrinter::Num(max_overshoot, 3)});
  }
  tp.Print("Pruning ablation (100 landmarks, depth-2 queries)");

  std::printf(
      "\nexpected shape: without pruning a share of scores exceed the exact "
      "value (up to ~2x: the same walk counted by the BFS and by a landmark "
      "composition) — pruning keeps every score a lower bound, which is its "
      "main value at laptop scale. The exploration savings the paper "
      "reports kick in when hub landmarks gate a 100-odd-degree graph; our "
      "small vicinities shrink only slightly\n");
  return 0;
}
