// EXTENSION (overload behavior): closed-loop SLO ramp over the graceful
// degradation ladder (DESIGN.md §6.8).
//
// Three server configurations face the same paced Zipf workload at an
// identical ramp of offered load levels:
//   off    — exact engine, effectively unbounded admission: overload turns
//            into queueing and the p99 explodes.
//   shed   — exact engine behind the admission cap: overload turns into
//            OVERLOADED sheds (the pre-ladder policy).
//   ladder — the same cap plus the degradation ladder: under pressure the
//            engine steps exact -> landmark-approximate -> stale-cache-hit
//            before shedding, and every reply is stamped with its tier.
//
// A level passes the SLO when p99 <= target AND sheds <= 1% AND goodput
// >= 95% of offered. The headline number is the max sustainable offered
// load per config; the ladder must beat shed-only. Before the ramp, an
// unpressured probe pass asserts that ladder replies stamped `exact` are
// byte-identical to a plain exact engine (tier honesty is the contract
// the whole feature rests on) — any mismatch fails the run.
//
// Output: a human-readable table on stdout plus BENCH_slo.json.
// `--smoke` shrinks the graph, ramp, and windows for CI. Scaling knobs
// (bench_common.h): MBR_SCALE, MBR_TRIALS, MBR_SEED.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/authority.h"
#include "landmark/index.h"
#include "landmark/selection.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_engine.h"
#include "topics/similarity_matrix.h"
#include "util/rng.h"
#include "util/timer.h"
#include "util/zipf.h"

namespace {

using namespace mbr;

// One core drives everything here: a handful of closed-loop connections
// against a deliberately small admission cap keeps the saturation point
// low enough to cross within a short ramp.
constexpr uint32_t kConns = 8;
constexpr uint32_t kDispatchThreads = 4;
constexpr uint32_t kMaxInflight = 6;

struct LevelResult {
  double offered = 0;     // scheduled q/s
  double goodput = 0;     // OK replies / s
  double p50_us = 0;
  double p99_us = 0;
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  uint64_t tiers[3] = {0, 0, 0};  // exact / approx / stale
  bool pass = false;
};

struct ConfigResult {
  std::string name;
  std::vector<LevelResult> levels;
  double max_sustainable = 0;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * (v->size() - 1));
  return (*v)[idx];
}

net::ClientConfig ClientFor(uint16_t port) {
  net::ClientConfig cc;
  cc.port = port;
  cc.request_timeout_ms = 60000;
  return cc;
}

// The query stream: queries are drawn on the fly so the hot Zipf head
// stays cacheable while the tail keeps missing — a fixed replayed mix
// would go 100% warm after one level and no config would ever feel
// pressure. Seeding per (level, connection) gives every config the
// identical stream at the identical level.
struct QueryGen {
  util::Rng rng;
  util::ZipfDistribution users;
  util::ZipfDistribution topics;
  QueryGen(uint64_t seed, uint32_t num_nodes, uint32_t num_topics)
      : rng(seed), users(num_nodes, 1.1), topics(num_topics, 1.0) {}
  net::RecommendRequest Next() {
    net::RecommendRequest q;
    q.user = users.Sample(&rng);
    q.topic = static_cast<uint32_t>(topics.Sample(&rng));
    q.top_n = 10;
    return q;
  }
};

// Paced closed-loop driver: each connection fires on a fixed schedule
// derived from the offered rate and falls back to as-fast-as-possible
// when the server can't keep up (the schedule keeps advancing, so
// "offered" stays honest while goodput sags).
LevelResult DriveLevel(uint16_t port, uint32_t num_nodes, uint32_t num_topics,
                       double offered_qps, double window_s,
                       uint64_t level_seed) {
  std::vector<LevelResult> per(kConns);
  std::vector<std::vector<double>> lat(kConns);
  const auto t0 = std::chrono::steady_clock::now();
  const auto window = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      window_s));
  const auto gap = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      kConns / offered_qps));
  std::vector<std::thread> workers;
  for (uint32_t c = 0; c < kConns; ++c) {
    workers.emplace_back([&, c] {
      auto client = net::Client::Connect(ClientFor(port));
      if (!client.ok()) return;
      QueryGen gen(level_seed * 1000 + c, num_nodes, num_topics);
      auto next = t0 + gap * c / kConns;  // staggered start
      while (std::chrono::steady_clock::now() - t0 < window) {
        if (next > std::chrono::steady_clock::now()) {
          std::this_thread::sleep_until(next);
        }
        next += gap;
        const net::RecommendRequest q = gen.Next();
        util::WallTimer t;
        auto r = client->RecommendEx(q);
        ++per[c].sent;
        if (r.ok()) {
          ++per[c].ok;
          lat[c].push_back(t.ElapsedSeconds() * 1e6);
          ++per[c].tiers[std::min<uint8_t>(r->served_tier, 2)];
        } else if (r.status().code() == util::StatusCode::kUnavailable) {
          ++per[c].shed;
        } else {
          ++per[c].errors;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  LevelResult out;
  out.offered = offered_qps;
  std::vector<double> all;
  for (uint32_t c = 0; c < kConns; ++c) {
    out.sent += per[c].sent;
    out.ok += per[c].ok;
    out.shed += per[c].shed;
    out.errors += per[c].errors;
    for (int tier = 0; tier < 3; ++tier) out.tiers[tier] += per[c].tiers[tier];
    all.insert(all.end(), lat[c].begin(), lat[c].end());
  }
  out.goodput = elapsed > 0 ? static_cast<double>(out.ok) / elapsed : 0;
  out.p50_us = Percentile(&all, 0.5);
  out.p99_us = Percentile(&all, 0.99);
  return out;
}

bool PassesSlo(const LevelResult& r, double p99_target_us) {
  if (r.sent == 0) return false;
  const double shed_frac =
      static_cast<double>(r.shed + r.errors) / static_cast<double>(r.sent);
  return r.p99_us <= p99_target_us && shed_frac <= 0.01 &&
         r.goodput >= 0.95 * r.offered;
}

// Warm an engine's cache with the head of the query stream — strictly one
// query at a time. Batching the warmup would admit many misses at once;
// on a ladder engine the pressure monitor counts them all, the warmup
// queries would score (and cache) at the APPROX tier, and the unpressured
// probe pass below would never see an exact-tier reply. Sequential
// warmup keeps inflight at 1 (the query itself), under the approx
// watermark, so the cache holds exact-tier entries.
void WarmEngine(service::QueryEngine* engine, uint32_t n, uint32_t num_nodes,
                uint32_t num_topics) {
  QueryGen gen(bench::EnvSeed(20160316), num_nodes, num_topics);
  for (uint32_t i = 0; i < n; ++i) {
    const net::RecommendRequest q = gen.Next();
    const service::Query one = {q.user, static_cast<topics::TopicId>(q.topic),
                                q.top_n};
    engine->Recommend(one);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::PrintHeader(
      "ext_slo_ladder — graceful degradation ladder under an SLO ramp",
      "extension beyond the paper: overload behavior of DESIGN.md §6.8");

  datagen::TwitterConfig cfg = bench::BenchTwitterConfig(smoke ? 800 : 2000);
  datagen::GeneratedDataset ds = datagen::GenerateTwitter(cfg);
  core::AuthorityIndex auth(ds.graph);
  const topics::SimilarityMatrix& sim = topics::TwitterSimilarity();
  const uint32_t num_nodes = ds.graph.num_nodes();
  const uint32_t num_topics = static_cast<uint32_t>(ds.graph.num_topics());

  landmark::SelectionConfig sel;
  sel.num_landmarks = 32;
  std::vector<graph::NodeId> landmarks =
      landmark::SelectLandmarks(ds.graph,
                                landmark::SelectionStrategy::kOutDeg, sel)
          .landmarks;
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = 40;
  icfg.num_threads = 1;
  landmark::LandmarkIndex index(ds.graph, auth, sim, landmarks, icfg);
  std::printf("graph: %u nodes, %llu edges | %zu landmarks | %u conns, "
              "cap %u, %u dispatchers\n",
              num_nodes, static_cast<unsigned long long>(ds.graph.num_edges()),
              landmarks.size(), kConns, kMaxInflight, kDispatchThreads);

  // Every config serves from its own engine so no config inherits cache
  // warmth from another's ramp; calibration gets a throwaway engine for
  // the same reason. All are warmed with the identical Zipf head.
  service::EngineConfig exact_cfg;
  exact_cfg.num_threads = 1;
  exact_cfg.cache_capacity = 1u << 12;
  service::QueryEngine calib_engine(ds.graph, auth, sim, exact_cfg);
  service::QueryEngine off_engine(ds.graph, auth, sim, exact_cfg);
  service::QueryEngine shed_engine(ds.graph, auth, sim, exact_cfg);

  service::EngineConfig ladder_cfg = exact_cfg;
  ladder_cfg.landmarks = &index;
  ladder_cfg.degrade.enabled = true;
  // The tier is chosen after the miss itself is counted inflight, so
  // approx_at=2 means "this miss plus at least one other" — the minimal
  // overlap trigger for a 2-dispatcher server. The p99 signal supplies
  // the extra step down to stale.
  ladder_cfg.degrade.pressure.approx_at = 2;
  ladder_cfg.degrade.pressure.stale_at = 4;
  ladder_cfg.degrade.stale_keep_epochs = 4;
  // p99_target_us is filled in below once the target is calibrated; the
  // ladder engine is built after that.

  const uint32_t warm_n = smoke ? 500 : 2000;
  WarmEngine(&calib_engine, warm_n, num_nodes, num_topics);
  WarmEngine(&off_engine, warm_n, num_nodes, num_topics);
  WarmEngine(&shed_engine, warm_n, num_nodes, num_topics);

  // Calibration against a shed-style exact server: closed-loop capacity
  // sets the ramp's scale, the unloaded p99 sets the SLO target. Both are
  // measured, not assumed, so the ramp lands on the saturation knee on
  // any machine.
  double capacity_qps = 0;
  double p99_target_us = 0;
  {
    net::ServerConfig scfg;
    scfg.max_inflight = kMaxInflight;
    scfg.dispatch_threads = kDispatchThreads;
    scfg.request_deadline_ms = 0;
    net::Server server(calib_engine, scfg);
    if (!server.Start().ok()) {
      std::fprintf(stderr, "calibration server failed to start\n");
      return 1;
    }
    // Unloaded latency: one connection, sequential.
    {
      auto client = net::Client::Connect(ClientFor(server.port()));
      if (!client.ok()) return 1;
      QueryGen gen(11, num_nodes, num_topics);
      std::vector<double> lat;
      const uint32_t n = smoke ? 100 : 300;
      for (uint32_t i = 0; i < n; ++i) {
        const net::RecommendRequest q = gen.Next();
        util::WallTimer t;
        if (client->RecommendEx(q).ok()) {
          lat.push_back(t.ElapsedSeconds() * 1e6);
        }
      }
      // Tight enough that queueing a handful of exact-cost misses blows
      // it — the knee the ladder is built to push past.
      p99_target_us = std::max(2000.0, 3.0 * Percentile(&lat, 0.99));
    }
    // Capacity: every connection as fast as it can.
    {
      std::vector<uint64_t> done(kConns, 0);
      util::WallTimer timer;
      std::vector<std::thread> workers;
      const uint32_t per_conn = smoke ? 60 : 250;
      for (uint32_t c = 0; c < kConns; ++c) {
        workers.emplace_back([&, c] {
          auto client = net::Client::Connect(ClientFor(server.port()));
          if (!client.ok()) return;
          QueryGen gen(100 + c, num_nodes, num_topics);
          for (uint32_t i = 0; i < per_conn; ++i) {
            if (client->RecommendEx(gen.Next()).ok()) ++done[c];
          }
        });
      }
      for (auto& w : workers) w.join();
      uint64_t total = 0;
      for (uint64_t d : done) total += d;
      capacity_qps = static_cast<double>(total) / timer.ElapsedSeconds();
    }
    server.RequestStop();
    server.Wait();
  }
  if (capacity_qps <= 0) {
    std::fprintf(stderr, "calibration produced zero capacity\n");
    return 1;
  }
  std::printf("calibrated: %.0f q/s closed-loop capacity, p99 target %.0f us\n",
              capacity_qps, p99_target_us);

  // Build the ladder engine with the latency signal armed at the
  // calibrated target. Warm, invalidate once so a dead generation exists
  // (the stale rung's inventory), then warm again so the fresh-epoch
  // cache is as hot as every other config's at the start of the ramp.
  ladder_cfg.degrade.pressure.p99_target_us =
      static_cast<uint64_t>(p99_target_us);
  service::QueryEngine ladder_armed(ds.graph, auth, sim, ladder_cfg);
  WarmEngine(&ladder_armed, warm_n, num_nodes, num_topics);
  ladder_armed.Invalidate();
  WarmEngine(&ladder_armed, warm_n, num_nodes, num_topics);

  // The shared ramp: identical offered levels for every config.
  std::vector<double> levels;
  for (double f = 0.4; f <= 3.01 && levels.size() < (smoke ? 2u : 8u);
       f *= 1.4) {
    levels.push_back(capacity_qps * f);
  }
  const double window_s = smoke ? 0.15 : 0.5;

  struct Config {
    const char* name;
    service::QueryEngine* engine;
    uint32_t max_inflight;
  };
  const Config configs[] = {
      {"off", &off_engine, 100000},
      {"shed", &shed_engine, kMaxInflight},
      {"ladder", &ladder_armed, kMaxInflight},
  };

  uint32_t probes_checked = 0;
  std::vector<ConfigResult> results;
  for (const Config& conf : configs) {
    net::ServerConfig scfg;
    scfg.max_inflight = conf.max_inflight;
    scfg.dispatch_threads = kDispatchThreads;
    scfg.request_deadline_ms = 0;
    net::Server server(*conf.engine, scfg);
    if (!server.Start().ok()) {
      std::fprintf(stderr, "%s server failed to start\n", conf.name);
      return 1;
    }

    if (conf.engine == &ladder_armed) {
      // Tier honesty: unpressured, the ladder serves exact — and "exact"
      // must mean bit-for-bit what the plain engine computes.
      auto client = net::Client::Connect(ClientFor(server.port()));
      if (!client.ok()) return 1;
      QueryGen gen(7, num_nodes, num_topics);
      const uint32_t n = smoke ? 10 : 40;
      std::vector<net::RecommendRequest> reqs;
      std::vector<service::Query> refs;
      for (uint32_t i = 0; i < n; ++i) {
        const net::RecommendRequest q = gen.Next();
        reqs.push_back(q);
        refs.push_back(
            {q.user, static_cast<topics::TopicId>(q.topic), q.top_n});
      }
      auto expected = calib_engine.RecommendMany(refs);
      for (uint32_t i = 0; i < n; ++i) {
        auto got = client->RecommendEx(reqs[i]);
        if (!got.ok() || !expected[i].ok()) {
          std::fprintf(stderr, "probe %u failed outright\n", i);
          return 1;
        }
        if (got->served_tier != 0) continue;  // only exact claims checked
        const auto& want = expected[i].value().ranking.entries;
        if (got->entries.size() != want.size()) {
          std::fprintf(stderr, "probe %u: exact-tier size mismatch\n", i);
          return 1;
        }
        for (size_t k = 0; k < want.size(); ++k) {
          if (got->entries[k].id != want[k].id ||
              got->entries[k].score != want[k].score) {
            std::fprintf(stderr,
                         "probe %u entry %zu: exact-tier reply is not "
                         "byte-identical to the exact engine\n",
                         i, k);
            return 1;
          }
        }
        ++probes_checked;
      }
      if (probes_checked == 0) {
        std::fprintf(stderr,
                     "no unpressured probe served the exact tier — the "
                     "byte-identity check never ran\n");
        return 1;
      }
    }

    ConfigResult cr;
    cr.name = conf.name;
    uint32_t consecutive_fails = 0;
    for (size_t li = 0; li < levels.size(); ++li) {
      LevelResult lr = DriveLevel(server.port(), num_nodes, num_topics,
                                  levels[li], window_s,
                                  /*level_seed=*/li + 1);
      lr.pass = PassesSlo(lr, p99_target_us);
      if (lr.pass) {
        cr.max_sustainable = std::max(cr.max_sustainable, lr.offered);
        consecutive_fails = 0;
      } else if (++consecutive_fails >= 2) {
        cr.levels.push_back(lr);
        break;
      }
      cr.levels.push_back(lr);
    }
    results.push_back(std::move(cr));
    server.RequestStop();
    server.Wait();
  }

  std::printf("\n%8s %10s %10s %9s %9s %7s %7s %7s %7s %5s\n", "config",
              "offered", "goodput", "p50(us)", "p99(us)", "shed", "exact",
              "approx", "stale", "SLO");
  for (const ConfigResult& cr : results) {
    for (const LevelResult& lr : cr.levels) {
      std::printf("%8s %10.0f %10.0f %9.0f %9.0f %7llu %7llu %7llu %7llu "
                  "%5s\n",
                  cr.name.c_str(), lr.offered, lr.goodput, lr.p50_us,
                  lr.p99_us, static_cast<unsigned long long>(lr.shed),
                  static_cast<unsigned long long>(lr.tiers[0]),
                  static_cast<unsigned long long>(lr.tiers[1]),
                  static_cast<unsigned long long>(lr.tiers[2]),
                  lr.pass ? "pass" : "FAIL");
    }
  }
  std::printf("\nmax sustainable at p99 <= %.0f us:\n", p99_target_us);
  double shed_max = 0, ladder_max = 0;
  for (const ConfigResult& cr : results) {
    std::printf("  %-6s %10.0f q/s\n", cr.name.c_str(), cr.max_sustainable);
    if (cr.name == "shed") shed_max = cr.max_sustainable;
    if (cr.name == "ladder") ladder_max = cr.max_sustainable;
  }
  std::printf("byte-identical exact-tier probes: %u\n", probes_checked);
  if (!smoke && ladder_max <= shed_max) {
    std::printf("WARNING: ladder did not beat shed-only on this run "
                "(noise-prone box?)\n");
  }

  FILE* f = std::fopen("BENCH_slo.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_slo.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ext_slo_ladder\",\n");
  std::fprintf(f, "  \"num_nodes\": %u,\n  \"conns\": %u,\n", num_nodes,
               kConns);
  std::fprintf(f, "  \"dispatch_threads\": %u,\n  \"max_inflight\": %u,\n",
               kDispatchThreads, kMaxInflight);
  std::fprintf(f, "  \"p99_target_us\": %.1f,\n", p99_target_us);
  std::fprintf(f, "  \"calibrated_capacity_qps\": %.1f,\n", capacity_qps);
  std::fprintf(f, "  \"byte_identical_exact_probes\": %u,\n", probes_checked);
  std::fprintf(f, "  \"configs\": [\n");
  for (size_t ci = 0; ci < results.size(); ++ci) {
    const ConfigResult& cr = results[ci];
    std::fprintf(f, "    {\"name\": \"%s\", \"max_sustainable_qps\": %.1f, "
                 "\"levels\": [\n",
                 cr.name.c_str(), cr.max_sustainable);
    for (size_t li = 0; li < cr.levels.size(); ++li) {
      const LevelResult& lr = cr.levels[li];
      std::fprintf(
          f,
          "      {\"offered_qps\": %.1f, \"goodput_qps\": %.1f, "
          "\"p50_us\": %.1f, \"p99_us\": %.1f, \"sent\": %llu, "
          "\"ok\": %llu, \"shed\": %llu, \"errors\": %llu, "
          "\"tier_exact\": %llu, \"tier_approx\": %llu, "
          "\"tier_stale\": %llu, \"slo_pass\": %s}%s\n",
          lr.offered, lr.goodput, lr.p50_us, lr.p99_us,
          static_cast<unsigned long long>(lr.sent),
          static_cast<unsigned long long>(lr.ok),
          static_cast<unsigned long long>(lr.shed),
          static_cast<unsigned long long>(lr.errors),
          static_cast<unsigned long long>(lr.tiers[0]),
          static_cast<unsigned long long>(lr.tiers[1]),
          static_cast<unsigned long long>(lr.tiers[2]),
          lr.pass ? "true" : "false",
          li + 1 < cr.levels.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", ci + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"ladder_vs_shed_gain\": %.3f\n}\n",
               shed_max > 0 ? ladder_max / shed_max : 0.0);
  std::fclose(f);
  std::printf("wrote BENCH_slo.json\n");
  return 0;
}
