add_test([=[IntegrationTest.FullPipelineEndToEnd]=]  /root/repo/build/tests/integration_test [==[--gtest_filter=IntegrationTest.FullPipelineEndToEnd]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[IntegrationTest.FullPipelineEndToEnd]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_test_TESTS IntegrationTest.FullPipelineEndToEnd)
