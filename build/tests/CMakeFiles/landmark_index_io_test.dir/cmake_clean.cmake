file(REMOVE_RECURSE
  "CMakeFiles/landmark_index_io_test.dir/landmark_index_io_test.cc.o"
  "CMakeFiles/landmark_index_io_test.dir/landmark_index_io_test.cc.o.d"
  "landmark_index_io_test"
  "landmark_index_io_test.pdb"
  "landmark_index_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landmark_index_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
