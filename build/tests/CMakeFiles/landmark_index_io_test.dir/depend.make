# Empty dependencies file for landmark_index_io_test.
# This may be replaced when dependencies are built.
