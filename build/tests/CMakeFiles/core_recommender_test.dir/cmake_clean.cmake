file(REMOVE_RECURSE
  "CMakeFiles/core_recommender_test.dir/core_recommender_test.cc.o"
  "CMakeFiles/core_recommender_test.dir/core_recommender_test.cc.o.d"
  "core_recommender_test"
  "core_recommender_test.pdb"
  "core_recommender_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_recommender_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
