# Empty dependencies file for core_recommender_test.
# This may be replaced when dependencies are built.
