file(REMOVE_RECURSE
  "CMakeFiles/recommender_contract_test.dir/recommender_contract_test.cc.o"
  "CMakeFiles/recommender_contract_test.dir/recommender_contract_test.cc.o.d"
  "recommender_contract_test"
  "recommender_contract_test.pdb"
  "recommender_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommender_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
