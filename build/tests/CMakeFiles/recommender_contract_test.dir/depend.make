# Empty dependencies file for recommender_contract_test.
# This may be replaced when dependencies are built.
