# Empty dependencies file for landmark_selection_test.
# This may be replaced when dependencies are built.
