file(REMOVE_RECURSE
  "CMakeFiles/landmark_selection_test.dir/landmark_selection_test.cc.o"
  "CMakeFiles/landmark_selection_test.dir/landmark_selection_test.cc.o.d"
  "landmark_selection_test"
  "landmark_selection_test.pdb"
  "landmark_selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landmark_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
