file(REMOVE_RECURSE
  "CMakeFiles/landmark_approx_test.dir/landmark_approx_test.cc.o"
  "CMakeFiles/landmark_approx_test.dir/landmark_approx_test.cc.o.d"
  "landmark_approx_test"
  "landmark_approx_test.pdb"
  "landmark_approx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landmark_approx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
