file(REMOVE_RECURSE
  "CMakeFiles/eval_linkpred_test.dir/eval_linkpred_test.cc.o"
  "CMakeFiles/eval_linkpred_test.dir/eval_linkpred_test.cc.o.d"
  "eval_linkpred_test"
  "eval_linkpred_test.pdb"
  "eval_linkpred_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_linkpred_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
