# Empty dependencies file for eval_linkpred_test.
# This may be replaced when dependencies are built.
