# Empty dependencies file for eval_approx_user_test.
# This may be replaced when dependencies are built.
