file(REMOVE_RECURSE
  "CMakeFiles/eval_approx_user_test.dir/eval_approx_user_test.cc.o"
  "CMakeFiles/eval_approx_user_test.dir/eval_approx_user_test.cc.o.d"
  "eval_approx_user_test"
  "eval_approx_user_test.pdb"
  "eval_approx_user_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_approx_user_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
