file(REMOVE_RECURSE
  "CMakeFiles/graph_edgelist_test.dir/graph_edgelist_test.cc.o"
  "CMakeFiles/graph_edgelist_test.dir/graph_edgelist_test.cc.o.d"
  "graph_edgelist_test"
  "graph_edgelist_test.pdb"
  "graph_edgelist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_edgelist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
