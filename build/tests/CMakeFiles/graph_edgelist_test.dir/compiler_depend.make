# Empty compiler generated dependencies file for graph_edgelist_test.
# This may be replaced when dependencies are built.
