file(REMOVE_RECURSE
  "CMakeFiles/dynamic_model_test.dir/dynamic_model_test.cc.o"
  "CMakeFiles/dynamic_model_test.dir/dynamic_model_test.cc.o.d"
  "dynamic_model_test"
  "dynamic_model_test.pdb"
  "dynamic_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
