file(REMOVE_RECURSE
  "CMakeFiles/util_properties_test.dir/util_properties_test.cc.o"
  "CMakeFiles/util_properties_test.dir/util_properties_test.cc.o.d"
  "util_properties_test"
  "util_properties_test.pdb"
  "util_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
