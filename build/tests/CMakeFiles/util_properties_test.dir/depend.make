# Empty dependencies file for util_properties_test.
# This may be replaced when dependencies are built.
