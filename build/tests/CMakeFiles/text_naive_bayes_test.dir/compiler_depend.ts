# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for text_naive_bayes_test.
