# Empty compiler generated dependencies file for text_naive_bayes_test.
# This may be replaced when dependencies are built.
