file(REMOVE_RECURSE
  "CMakeFiles/text_naive_bayes_test.dir/text_naive_bayes_test.cc.o"
  "CMakeFiles/text_naive_bayes_test.dir/text_naive_bayes_test.cc.o.d"
  "text_naive_bayes_test"
  "text_naive_bayes_test.pdb"
  "text_naive_bayes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_naive_bayes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
