# Empty dependencies file for util_kendall_test.
# This may be replaced when dependencies are built.
