file(REMOVE_RECURSE
  "CMakeFiles/util_kendall_test.dir/util_kendall_test.cc.o"
  "CMakeFiles/util_kendall_test.dir/util_kendall_test.cc.o.d"
  "util_kendall_test"
  "util_kendall_test.pdb"
  "util_kendall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_kendall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
