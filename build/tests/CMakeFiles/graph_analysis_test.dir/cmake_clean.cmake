file(REMOVE_RECURSE
  "CMakeFiles/graph_analysis_test.dir/graph_analysis_test.cc.o"
  "CMakeFiles/graph_analysis_test.dir/graph_analysis_test.cc.o.d"
  "graph_analysis_test"
  "graph_analysis_test.pdb"
  "graph_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
