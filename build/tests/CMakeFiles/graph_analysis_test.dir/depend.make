# Empty dependencies file for graph_analysis_test.
# This may be replaced when dependencies are built.
