file(REMOVE_RECURSE
  "CMakeFiles/baselines_extra_test.dir/baselines_extra_test.cc.o"
  "CMakeFiles/baselines_extra_test.dir/baselines_extra_test.cc.o.d"
  "baselines_extra_test"
  "baselines_extra_test.pdb"
  "baselines_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
