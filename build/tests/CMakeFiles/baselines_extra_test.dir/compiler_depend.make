# Empty compiler generated dependencies file for baselines_extra_test.
# This may be replaced when dependencies are built.
