file(REMOVE_RECURSE
  "CMakeFiles/core_authority_test.dir/core_authority_test.cc.o"
  "CMakeFiles/core_authority_test.dir/core_authority_test.cc.o.d"
  "core_authority_test"
  "core_authority_test.pdb"
  "core_authority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_authority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
