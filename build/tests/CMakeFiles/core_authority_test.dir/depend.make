# Empty dependencies file for core_authority_test.
# This may be replaced when dependencies are built.
