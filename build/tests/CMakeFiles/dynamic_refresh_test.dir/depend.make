# Empty dependencies file for dynamic_refresh_test.
# This may be replaced when dependencies are built.
