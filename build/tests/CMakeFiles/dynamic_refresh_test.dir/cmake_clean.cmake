file(REMOVE_RECURSE
  "CMakeFiles/dynamic_refresh_test.dir/dynamic_refresh_test.cc.o"
  "CMakeFiles/dynamic_refresh_test.dir/dynamic_refresh_test.cc.o.d"
  "dynamic_refresh_test"
  "dynamic_refresh_test.pdb"
  "dynamic_refresh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_refresh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
