file(REMOVE_RECURSE
  "CMakeFiles/topics_test.dir/topics_test.cc.o"
  "CMakeFiles/topics_test.dir/topics_test.cc.o.d"
  "topics_test"
  "topics_test.pdb"
  "topics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
