# Empty dependencies file for topics_test.
# This may be replaced when dependencies are built.
