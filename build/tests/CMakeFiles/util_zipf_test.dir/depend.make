# Empty dependencies file for util_zipf_test.
# This may be replaced when dependencies are built.
