file(REMOVE_RECURSE
  "CMakeFiles/util_zipf_test.dir/util_zipf_test.cc.o"
  "CMakeFiles/util_zipf_test.dir/util_zipf_test.cc.o.d"
  "util_zipf_test"
  "util_zipf_test.pdb"
  "util_zipf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_zipf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
