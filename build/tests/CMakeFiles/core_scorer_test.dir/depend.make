# Empty dependencies file for core_scorer_test.
# This may be replaced when dependencies are built.
