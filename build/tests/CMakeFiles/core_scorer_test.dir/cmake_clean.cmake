file(REMOVE_RECURSE
  "CMakeFiles/core_scorer_test.dir/core_scorer_test.cc.o"
  "CMakeFiles/core_scorer_test.dir/core_scorer_test.cc.o.d"
  "core_scorer_test"
  "core_scorer_test.pdb"
  "core_scorer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_scorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
