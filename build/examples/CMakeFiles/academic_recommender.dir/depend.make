# Empty dependencies file for academic_recommender.
# This may be replaced when dependencies are built.
