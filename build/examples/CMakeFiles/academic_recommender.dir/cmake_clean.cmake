file(REMOVE_RECURSE
  "CMakeFiles/academic_recommender.dir/academic_recommender.cpp.o"
  "CMakeFiles/academic_recommender.dir/academic_recommender.cpp.o.d"
  "academic_recommender"
  "academic_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/academic_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
