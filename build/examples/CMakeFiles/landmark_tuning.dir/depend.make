# Empty dependencies file for landmark_tuning.
# This may be replaced when dependencies are built.
