file(REMOVE_RECURSE
  "CMakeFiles/landmark_tuning.dir/landmark_tuning.cpp.o"
  "CMakeFiles/landmark_tuning.dir/landmark_tuning.cpp.o.d"
  "landmark_tuning"
  "landmark_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landmark_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
