# Empty compiler generated dependencies file for distributed_cluster.
# This may be replaced when dependencies are built.
