file(REMOVE_RECURSE
  "CMakeFiles/distributed_cluster.dir/distributed_cluster.cpp.o"
  "CMakeFiles/distributed_cluster.dir/distributed_cluster.cpp.o.d"
  "distributed_cluster"
  "distributed_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
