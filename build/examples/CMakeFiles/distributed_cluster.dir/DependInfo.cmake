
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/distributed_cluster.cpp" "examples/CMakeFiles/distributed_cluster.dir/distributed_cluster.cpp.o" "gcc" "examples/CMakeFiles/distributed_cluster.dir/distributed_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dynamic/CMakeFiles/mbr_dynamic.dir/DependInfo.cmake"
  "/root/repo/build/src/distributed/CMakeFiles/mbr_distributed.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mbr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/mbr_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mbr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mbr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/landmark/CMakeFiles/mbr_landmark.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mbr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mbr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/topics/CMakeFiles/mbr_topics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mbr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
