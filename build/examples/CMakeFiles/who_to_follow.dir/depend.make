# Empty dependencies file for who_to_follow.
# This may be replaced when dependencies are built.
