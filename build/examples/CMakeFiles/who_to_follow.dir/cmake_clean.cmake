file(REMOVE_RECURSE
  "CMakeFiles/who_to_follow.dir/who_to_follow.cpp.o"
  "CMakeFiles/who_to_follow.dir/who_to_follow.cpp.o.d"
  "who_to_follow"
  "who_to_follow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/who_to_follow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
