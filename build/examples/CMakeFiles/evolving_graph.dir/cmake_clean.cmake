file(REMOVE_RECURSE
  "CMakeFiles/evolving_graph.dir/evolving_graph.cpp.o"
  "CMakeFiles/evolving_graph.dir/evolving_graph.cpp.o.d"
  "evolving_graph"
  "evolving_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolving_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
