# Empty dependencies file for evolving_graph.
# This may be replaced when dependencies are built.
