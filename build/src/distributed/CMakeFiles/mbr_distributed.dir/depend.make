# Empty dependencies file for mbr_distributed.
# This may be replaced when dependencies are built.
