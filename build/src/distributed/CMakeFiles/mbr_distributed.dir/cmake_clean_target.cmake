file(REMOVE_RECURSE
  "libmbr_distributed.a"
)
