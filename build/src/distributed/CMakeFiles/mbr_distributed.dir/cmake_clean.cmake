file(REMOVE_RECURSE
  "CMakeFiles/mbr_distributed.dir/cluster.cc.o"
  "CMakeFiles/mbr_distributed.dir/cluster.cc.o.d"
  "CMakeFiles/mbr_distributed.dir/partition.cc.o"
  "CMakeFiles/mbr_distributed.dir/partition.cc.o.d"
  "libmbr_distributed.a"
  "libmbr_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
