file(REMOVE_RECURSE
  "CMakeFiles/mbr_datagen.dir/dblp_generator.cc.o"
  "CMakeFiles/mbr_datagen.dir/dblp_generator.cc.o.d"
  "CMakeFiles/mbr_datagen.dir/twitter_generator.cc.o"
  "CMakeFiles/mbr_datagen.dir/twitter_generator.cc.o.d"
  "libmbr_datagen.a"
  "libmbr_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
