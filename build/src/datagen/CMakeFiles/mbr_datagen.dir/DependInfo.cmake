
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/dblp_generator.cc" "src/datagen/CMakeFiles/mbr_datagen.dir/dblp_generator.cc.o" "gcc" "src/datagen/CMakeFiles/mbr_datagen.dir/dblp_generator.cc.o.d"
  "/root/repo/src/datagen/twitter_generator.cc" "src/datagen/CMakeFiles/mbr_datagen.dir/twitter_generator.cc.o" "gcc" "src/datagen/CMakeFiles/mbr_datagen.dir/twitter_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topics/CMakeFiles/mbr_topics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mbr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mbr_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
