file(REMOVE_RECURSE
  "libmbr_datagen.a"
)
