# Empty compiler generated dependencies file for mbr_datagen.
# This may be replaced when dependencies are built.
