file(REMOVE_RECURSE
  "CMakeFiles/mbr_landmark.dir/approx.cc.o"
  "CMakeFiles/mbr_landmark.dir/approx.cc.o.d"
  "CMakeFiles/mbr_landmark.dir/index.cc.o"
  "CMakeFiles/mbr_landmark.dir/index.cc.o.d"
  "CMakeFiles/mbr_landmark.dir/selection.cc.o"
  "CMakeFiles/mbr_landmark.dir/selection.cc.o.d"
  "libmbr_landmark.a"
  "libmbr_landmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_landmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
