# Empty compiler generated dependencies file for mbr_landmark.
# This may be replaced when dependencies are built.
