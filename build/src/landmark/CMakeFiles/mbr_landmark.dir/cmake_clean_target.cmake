file(REMOVE_RECURSE
  "libmbr_landmark.a"
)
