file(REMOVE_RECURSE
  "libmbr_topics.a"
)
