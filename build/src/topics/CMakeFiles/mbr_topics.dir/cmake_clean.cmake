file(REMOVE_RECURSE
  "CMakeFiles/mbr_topics.dir/similarity_matrix.cc.o"
  "CMakeFiles/mbr_topics.dir/similarity_matrix.cc.o.d"
  "CMakeFiles/mbr_topics.dir/taxonomy.cc.o"
  "CMakeFiles/mbr_topics.dir/taxonomy.cc.o.d"
  "CMakeFiles/mbr_topics.dir/vocabulary.cc.o"
  "CMakeFiles/mbr_topics.dir/vocabulary.cc.o.d"
  "libmbr_topics.a"
  "libmbr_topics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_topics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
