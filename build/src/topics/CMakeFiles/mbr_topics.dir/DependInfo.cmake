
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topics/similarity_matrix.cc" "src/topics/CMakeFiles/mbr_topics.dir/similarity_matrix.cc.o" "gcc" "src/topics/CMakeFiles/mbr_topics.dir/similarity_matrix.cc.o.d"
  "/root/repo/src/topics/taxonomy.cc" "src/topics/CMakeFiles/mbr_topics.dir/taxonomy.cc.o" "gcc" "src/topics/CMakeFiles/mbr_topics.dir/taxonomy.cc.o.d"
  "/root/repo/src/topics/vocabulary.cc" "src/topics/CMakeFiles/mbr_topics.dir/vocabulary.cc.o" "gcc" "src/topics/CMakeFiles/mbr_topics.dir/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mbr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
