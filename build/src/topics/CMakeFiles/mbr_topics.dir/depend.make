# Empty dependencies file for mbr_topics.
# This may be replaced when dependencies are built.
