file(REMOVE_RECURSE
  "CMakeFiles/mbr_dynamic.dir/churn.cc.o"
  "CMakeFiles/mbr_dynamic.dir/churn.cc.o.d"
  "CMakeFiles/mbr_dynamic.dir/delta_graph.cc.o"
  "CMakeFiles/mbr_dynamic.dir/delta_graph.cc.o.d"
  "CMakeFiles/mbr_dynamic.dir/incremental_authority.cc.o"
  "CMakeFiles/mbr_dynamic.dir/incremental_authority.cc.o.d"
  "CMakeFiles/mbr_dynamic.dir/refresh.cc.o"
  "CMakeFiles/mbr_dynamic.dir/refresh.cc.o.d"
  "libmbr_dynamic.a"
  "libmbr_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
