# Empty dependencies file for mbr_dynamic.
# This may be replaced when dependencies are built.
