
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dynamic/churn.cc" "src/dynamic/CMakeFiles/mbr_dynamic.dir/churn.cc.o" "gcc" "src/dynamic/CMakeFiles/mbr_dynamic.dir/churn.cc.o.d"
  "/root/repo/src/dynamic/delta_graph.cc" "src/dynamic/CMakeFiles/mbr_dynamic.dir/delta_graph.cc.o" "gcc" "src/dynamic/CMakeFiles/mbr_dynamic.dir/delta_graph.cc.o.d"
  "/root/repo/src/dynamic/incremental_authority.cc" "src/dynamic/CMakeFiles/mbr_dynamic.dir/incremental_authority.cc.o" "gcc" "src/dynamic/CMakeFiles/mbr_dynamic.dir/incremental_authority.cc.o.d"
  "/root/repo/src/dynamic/refresh.cc" "src/dynamic/CMakeFiles/mbr_dynamic.dir/refresh.cc.o" "gcc" "src/dynamic/CMakeFiles/mbr_dynamic.dir/refresh.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topics/CMakeFiles/mbr_topics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mbr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mbr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/landmark/CMakeFiles/mbr_landmark.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
