file(REMOVE_RECURSE
  "libmbr_dynamic.a"
)
