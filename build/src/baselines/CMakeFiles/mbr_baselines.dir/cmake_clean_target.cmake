file(REMOVE_RECURSE
  "libmbr_baselines.a"
)
