# Empty compiler generated dependencies file for mbr_baselines.
# This may be replaced when dependencies are built.
