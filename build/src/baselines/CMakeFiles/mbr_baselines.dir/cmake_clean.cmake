file(REMOVE_RECURSE
  "CMakeFiles/mbr_baselines.dir/katz.cc.o"
  "CMakeFiles/mbr_baselines.dir/katz.cc.o.d"
  "CMakeFiles/mbr_baselines.dir/neighborhood.cc.o"
  "CMakeFiles/mbr_baselines.dir/neighborhood.cc.o.d"
  "CMakeFiles/mbr_baselines.dir/twitterrank.cc.o"
  "CMakeFiles/mbr_baselines.dir/twitterrank.cc.o.d"
  "CMakeFiles/mbr_baselines.dir/wtf_salsa.cc.o"
  "CMakeFiles/mbr_baselines.dir/wtf_salsa.cc.o.d"
  "libmbr_baselines.a"
  "libmbr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
