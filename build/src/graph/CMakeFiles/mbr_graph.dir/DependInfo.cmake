
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/analysis.cc" "src/graph/CMakeFiles/mbr_graph.dir/analysis.cc.o" "gcc" "src/graph/CMakeFiles/mbr_graph.dir/analysis.cc.o.d"
  "/root/repo/src/graph/bfs.cc" "src/graph/CMakeFiles/mbr_graph.dir/bfs.cc.o" "gcc" "src/graph/CMakeFiles/mbr_graph.dir/bfs.cc.o.d"
  "/root/repo/src/graph/edgelist.cc" "src/graph/CMakeFiles/mbr_graph.dir/edgelist.cc.o" "gcc" "src/graph/CMakeFiles/mbr_graph.dir/edgelist.cc.o.d"
  "/root/repo/src/graph/labeled_graph.cc" "src/graph/CMakeFiles/mbr_graph.dir/labeled_graph.cc.o" "gcc" "src/graph/CMakeFiles/mbr_graph.dir/labeled_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topics/CMakeFiles/mbr_topics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
