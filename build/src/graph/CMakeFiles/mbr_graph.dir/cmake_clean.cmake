file(REMOVE_RECURSE
  "CMakeFiles/mbr_graph.dir/analysis.cc.o"
  "CMakeFiles/mbr_graph.dir/analysis.cc.o.d"
  "CMakeFiles/mbr_graph.dir/bfs.cc.o"
  "CMakeFiles/mbr_graph.dir/bfs.cc.o.d"
  "CMakeFiles/mbr_graph.dir/edgelist.cc.o"
  "CMakeFiles/mbr_graph.dir/edgelist.cc.o.d"
  "CMakeFiles/mbr_graph.dir/labeled_graph.cc.o"
  "CMakeFiles/mbr_graph.dir/labeled_graph.cc.o.d"
  "libmbr_graph.a"
  "libmbr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
