# Empty dependencies file for mbr_graph.
# This may be replaced when dependencies are built.
