file(REMOVE_RECURSE
  "libmbr_graph.a"
)
