file(REMOVE_RECURSE
  "CMakeFiles/mbr_text.dir/classifier.cc.o"
  "CMakeFiles/mbr_text.dir/classifier.cc.o.d"
  "CMakeFiles/mbr_text.dir/corpus.cc.o"
  "CMakeFiles/mbr_text.dir/corpus.cc.o.d"
  "CMakeFiles/mbr_text.dir/naive_bayes.cc.o"
  "CMakeFiles/mbr_text.dir/naive_bayes.cc.o.d"
  "CMakeFiles/mbr_text.dir/pipeline.cc.o"
  "CMakeFiles/mbr_text.dir/pipeline.cc.o.d"
  "CMakeFiles/mbr_text.dir/tokenizer.cc.o"
  "CMakeFiles/mbr_text.dir/tokenizer.cc.o.d"
  "libmbr_text.a"
  "libmbr_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
