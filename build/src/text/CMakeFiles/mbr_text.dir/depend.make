# Empty dependencies file for mbr_text.
# This may be replaced when dependencies are built.
