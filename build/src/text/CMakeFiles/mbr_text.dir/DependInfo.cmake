
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/classifier.cc" "src/text/CMakeFiles/mbr_text.dir/classifier.cc.o" "gcc" "src/text/CMakeFiles/mbr_text.dir/classifier.cc.o.d"
  "/root/repo/src/text/corpus.cc" "src/text/CMakeFiles/mbr_text.dir/corpus.cc.o" "gcc" "src/text/CMakeFiles/mbr_text.dir/corpus.cc.o.d"
  "/root/repo/src/text/naive_bayes.cc" "src/text/CMakeFiles/mbr_text.dir/naive_bayes.cc.o" "gcc" "src/text/CMakeFiles/mbr_text.dir/naive_bayes.cc.o.d"
  "/root/repo/src/text/pipeline.cc" "src/text/CMakeFiles/mbr_text.dir/pipeline.cc.o" "gcc" "src/text/CMakeFiles/mbr_text.dir/pipeline.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/mbr_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/mbr_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topics/CMakeFiles/mbr_topics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mbr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
