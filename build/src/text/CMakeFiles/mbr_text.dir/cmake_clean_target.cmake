file(REMOVE_RECURSE
  "libmbr_text.a"
)
