# Empty compiler generated dependencies file for mbr_util.
# This may be replaced when dependencies are built.
