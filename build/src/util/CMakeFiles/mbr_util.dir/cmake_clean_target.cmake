file(REMOVE_RECURSE
  "libmbr_util.a"
)
