file(REMOVE_RECURSE
  "CMakeFiles/mbr_util.dir/kendall.cc.o"
  "CMakeFiles/mbr_util.dir/kendall.cc.o.d"
  "CMakeFiles/mbr_util.dir/rng.cc.o"
  "CMakeFiles/mbr_util.dir/rng.cc.o.d"
  "CMakeFiles/mbr_util.dir/status.cc.o"
  "CMakeFiles/mbr_util.dir/status.cc.o.d"
  "CMakeFiles/mbr_util.dir/table_printer.cc.o"
  "CMakeFiles/mbr_util.dir/table_printer.cc.o.d"
  "CMakeFiles/mbr_util.dir/zipf.cc.o"
  "CMakeFiles/mbr_util.dir/zipf.cc.o.d"
  "libmbr_util.a"
  "libmbr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
