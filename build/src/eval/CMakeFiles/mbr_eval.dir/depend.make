# Empty dependencies file for mbr_eval.
# This may be replaced when dependencies are built.
