file(REMOVE_RECURSE
  "CMakeFiles/mbr_eval.dir/approx_eval.cc.o"
  "CMakeFiles/mbr_eval.dir/approx_eval.cc.o.d"
  "CMakeFiles/mbr_eval.dir/linkpred.cc.o"
  "CMakeFiles/mbr_eval.dir/linkpred.cc.o.d"
  "CMakeFiles/mbr_eval.dir/user_study.cc.o"
  "CMakeFiles/mbr_eval.dir/user_study.cc.o.d"
  "libmbr_eval.a"
  "libmbr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
