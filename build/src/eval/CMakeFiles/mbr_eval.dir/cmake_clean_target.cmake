file(REMOVE_RECURSE
  "libmbr_eval.a"
)
