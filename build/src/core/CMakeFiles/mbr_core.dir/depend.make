# Empty dependencies file for mbr_core.
# This may be replaced when dependencies are built.
