
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/authority.cc" "src/core/CMakeFiles/mbr_core.dir/authority.cc.o" "gcc" "src/core/CMakeFiles/mbr_core.dir/authority.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/core/CMakeFiles/mbr_core.dir/oracle.cc.o" "gcc" "src/core/CMakeFiles/mbr_core.dir/oracle.cc.o.d"
  "/root/repo/src/core/recommender.cc" "src/core/CMakeFiles/mbr_core.dir/recommender.cc.o" "gcc" "src/core/CMakeFiles/mbr_core.dir/recommender.cc.o.d"
  "/root/repo/src/core/scorer.cc" "src/core/CMakeFiles/mbr_core.dir/scorer.cc.o" "gcc" "src/core/CMakeFiles/mbr_core.dir/scorer.cc.o.d"
  "/root/repo/src/core/spectral.cc" "src/core/CMakeFiles/mbr_core.dir/spectral.cc.o" "gcc" "src/core/CMakeFiles/mbr_core.dir/spectral.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topics/CMakeFiles/mbr_topics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mbr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
