file(REMOVE_RECURSE
  "libmbr_core.a"
)
