file(REMOVE_RECURSE
  "CMakeFiles/mbr_core.dir/authority.cc.o"
  "CMakeFiles/mbr_core.dir/authority.cc.o.d"
  "CMakeFiles/mbr_core.dir/oracle.cc.o"
  "CMakeFiles/mbr_core.dir/oracle.cc.o.d"
  "CMakeFiles/mbr_core.dir/recommender.cc.o"
  "CMakeFiles/mbr_core.dir/recommender.cc.o.d"
  "CMakeFiles/mbr_core.dir/scorer.cc.o"
  "CMakeFiles/mbr_core.dir/scorer.cc.o.d"
  "CMakeFiles/mbr_core.dir/spectral.cc.o"
  "CMakeFiles/mbr_core.dir/spectral.cc.o.d"
  "libmbr_core.a"
  "libmbr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
