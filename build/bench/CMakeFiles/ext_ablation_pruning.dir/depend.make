# Empty dependencies file for ext_ablation_pruning.
# This may be replaced when dependencies are built.
