file(REMOVE_RECURSE
  "CMakeFiles/ext_ablation_pruning.dir/ext_ablation_pruning.cc.o"
  "CMakeFiles/ext_ablation_pruning.dir/ext_ablation_pruning.cc.o.d"
  "ext_ablation_pruning"
  "ext_ablation_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ablation_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
