# Empty dependencies file for fig7_precision_recall_dblp.
# This may be replaced when dependencies are built.
