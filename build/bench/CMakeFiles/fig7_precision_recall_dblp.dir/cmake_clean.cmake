file(REMOVE_RECURSE
  "CMakeFiles/fig7_precision_recall_dblp.dir/fig7_precision_recall_dblp.cc.o"
  "CMakeFiles/fig7_precision_recall_dblp.dir/fig7_precision_recall_dblp.cc.o.d"
  "fig7_precision_recall_dblp"
  "fig7_precision_recall_dblp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_precision_recall_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
