file(REMOVE_RECURSE
  "CMakeFiles/fig10_user_validation_twitter.dir/fig10_user_validation_twitter.cc.o"
  "CMakeFiles/fig10_user_validation_twitter.dir/fig10_user_validation_twitter.cc.o.d"
  "fig10_user_validation_twitter"
  "fig10_user_validation_twitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_user_validation_twitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
