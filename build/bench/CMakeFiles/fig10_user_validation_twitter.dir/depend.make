# Empty dependencies file for fig10_user_validation_twitter.
# This may be replaced when dependencies are built.
