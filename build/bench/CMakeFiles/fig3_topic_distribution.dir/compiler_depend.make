# Empty compiler generated dependencies file for fig3_topic_distribution.
# This may be replaced when dependencies are built.
