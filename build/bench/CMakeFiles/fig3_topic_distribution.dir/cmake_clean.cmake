file(REMOVE_RECURSE
  "CMakeFiles/fig3_topic_distribution.dir/fig3_topic_distribution.cc.o"
  "CMakeFiles/fig3_topic_distribution.dir/fig3_topic_distribution.cc.o.d"
  "fig3_topic_distribution"
  "fig3_topic_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_topic_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
