file(REMOVE_RECURSE
  "CMakeFiles/ext_baseline_zoo.dir/ext_baseline_zoo.cc.o"
  "CMakeFiles/ext_baseline_zoo.dir/ext_baseline_zoo.cc.o.d"
  "ext_baseline_zoo"
  "ext_baseline_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_baseline_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
