# Empty dependencies file for ext_baseline_zoo.
# This may be replaced when dependencies are built.
