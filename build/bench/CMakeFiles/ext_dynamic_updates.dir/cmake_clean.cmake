file(REMOVE_RECURSE
  "CMakeFiles/ext_dynamic_updates.dir/ext_dynamic_updates.cc.o"
  "CMakeFiles/ext_dynamic_updates.dir/ext_dynamic_updates.cc.o.d"
  "ext_dynamic_updates"
  "ext_dynamic_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dynamic_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
