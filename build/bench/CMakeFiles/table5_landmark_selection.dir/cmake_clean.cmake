file(REMOVE_RECURSE
  "CMakeFiles/table5_landmark_selection.dir/table5_landmark_selection.cc.o"
  "CMakeFiles/table5_landmark_selection.dir/table5_landmark_selection.cc.o.d"
  "table5_landmark_selection"
  "table5_landmark_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_landmark_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
