# Empty dependencies file for table5_landmark_selection.
# This may be replaced when dependencies are built.
