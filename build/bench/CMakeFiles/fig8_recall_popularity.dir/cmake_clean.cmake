file(REMOVE_RECURSE
  "CMakeFiles/fig8_recall_popularity.dir/fig8_recall_popularity.cc.o"
  "CMakeFiles/fig8_recall_popularity.dir/fig8_recall_popularity.cc.o.d"
  "fig8_recall_popularity"
  "fig8_recall_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_recall_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
