# Empty compiler generated dependencies file for fig8_recall_popularity.
# This may be replaced when dependencies are built.
