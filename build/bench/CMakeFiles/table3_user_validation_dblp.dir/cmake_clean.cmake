file(REMOVE_RECURSE
  "CMakeFiles/table3_user_validation_dblp.dir/table3_user_validation_dblp.cc.o"
  "CMakeFiles/table3_user_validation_dblp.dir/table3_user_validation_dblp.cc.o.d"
  "table3_user_validation_dblp"
  "table3_user_validation_dblp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_user_validation_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
