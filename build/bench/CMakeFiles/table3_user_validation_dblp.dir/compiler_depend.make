# Empty compiler generated dependencies file for table3_user_validation_dblp.
# This may be replaced when dependencies are built.
