# Empty dependencies file for ext_ablation_similarity.
# This may be replaced when dependencies are built.
