file(REMOVE_RECURSE
  "CMakeFiles/ext_ablation_similarity.dir/ext_ablation_similarity.cc.o"
  "CMakeFiles/ext_ablation_similarity.dir/ext_ablation_similarity.cc.o.d"
  "ext_ablation_similarity"
  "ext_ablation_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ablation_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
