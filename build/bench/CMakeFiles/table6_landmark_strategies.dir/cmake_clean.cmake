file(REMOVE_RECURSE
  "CMakeFiles/table6_landmark_strategies.dir/table6_landmark_strategies.cc.o"
  "CMakeFiles/table6_landmark_strategies.dir/table6_landmark_strategies.cc.o.d"
  "table6_landmark_strategies"
  "table6_landmark_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_landmark_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
