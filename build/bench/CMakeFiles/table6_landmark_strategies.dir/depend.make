# Empty dependencies file for table6_landmark_strategies.
# This may be replaced when dependencies are built.
