file(REMOVE_RECURSE
  "CMakeFiles/ext_distributed.dir/ext_distributed.cc.o"
  "CMakeFiles/ext_distributed.dir/ext_distributed.cc.o.d"
  "ext_distributed"
  "ext_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
