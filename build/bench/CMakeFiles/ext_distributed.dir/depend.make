# Empty dependencies file for ext_distributed.
# This may be replaced when dependencies are built.
