# Empty compiler generated dependencies file for fig6_recall_dblp.
# This may be replaced when dependencies are built.
