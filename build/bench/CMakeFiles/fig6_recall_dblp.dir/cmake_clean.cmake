file(REMOVE_RECURSE
  "CMakeFiles/fig6_recall_dblp.dir/fig6_recall_dblp.cc.o"
  "CMakeFiles/fig6_recall_dblp.dir/fig6_recall_dblp.cc.o.d"
  "fig6_recall_dblp"
  "fig6_recall_dblp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_recall_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
