file(REMOVE_RECURSE
  "CMakeFiles/fig9_recall_topic_popularity.dir/fig9_recall_topic_popularity.cc.o"
  "CMakeFiles/fig9_recall_topic_popularity.dir/fig9_recall_topic_popularity.cc.o.d"
  "fig9_recall_topic_popularity"
  "fig9_recall_topic_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_recall_topic_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
