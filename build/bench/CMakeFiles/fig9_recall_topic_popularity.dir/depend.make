# Empty dependencies file for fig9_recall_topic_popularity.
# This may be replaced when dependencies are built.
