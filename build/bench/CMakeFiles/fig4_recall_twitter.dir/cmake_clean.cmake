file(REMOVE_RECURSE
  "CMakeFiles/fig4_recall_twitter.dir/fig4_recall_twitter.cc.o"
  "CMakeFiles/fig4_recall_twitter.dir/fig4_recall_twitter.cc.o.d"
  "fig4_recall_twitter"
  "fig4_recall_twitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_recall_twitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
