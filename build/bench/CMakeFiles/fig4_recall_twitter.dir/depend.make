# Empty dependencies file for fig4_recall_twitter.
# This may be replaced when dependencies are built.
