# Empty dependencies file for table2_dataset_properties.
# This may be replaced when dependencies are built.
