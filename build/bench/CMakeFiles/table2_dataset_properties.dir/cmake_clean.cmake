file(REMOVE_RECURSE
  "CMakeFiles/table2_dataset_properties.dir/table2_dataset_properties.cc.o"
  "CMakeFiles/table2_dataset_properties.dir/table2_dataset_properties.cc.o.d"
  "table2_dataset_properties"
  "table2_dataset_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dataset_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
