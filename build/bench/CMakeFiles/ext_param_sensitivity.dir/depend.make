# Empty dependencies file for ext_param_sensitivity.
# This may be replaced when dependencies are built.
