file(REMOVE_RECURSE
  "CMakeFiles/ext_param_sensitivity.dir/ext_param_sensitivity.cc.o"
  "CMakeFiles/ext_param_sensitivity.dir/ext_param_sensitivity.cc.o.d"
  "ext_param_sensitivity"
  "ext_param_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_param_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
