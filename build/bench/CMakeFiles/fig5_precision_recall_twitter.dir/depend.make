# Empty dependencies file for fig5_precision_recall_twitter.
# This may be replaced when dependencies are built.
