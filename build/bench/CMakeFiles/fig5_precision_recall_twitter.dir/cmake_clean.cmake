file(REMOVE_RECURSE
  "CMakeFiles/fig5_precision_recall_twitter.dir/fig5_precision_recall_twitter.cc.o"
  "CMakeFiles/fig5_precision_recall_twitter.dir/fig5_precision_recall_twitter.cc.o.d"
  "fig5_precision_recall_twitter"
  "fig5_precision_recall_twitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_precision_recall_twitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
