file(REMOVE_RECURSE
  "CMakeFiles/mbrec.dir/mbrec.cc.o"
  "CMakeFiles/mbrec.dir/mbrec.cc.o.d"
  "mbrec"
  "mbrec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbrec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
