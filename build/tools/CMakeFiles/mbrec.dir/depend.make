# Empty dependencies file for mbrec.
# This may be replaced when dependencies are built.
