#ifndef MBR_TOOLS_ARGS_H_
#define MBR_TOOLS_ARGS_H_

// Tiny --key value argument parser shared by the mbrec subcommands,
// extracted so its edge cases are unit-testable (tests/tools_args_test.cc).

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace mbr::tools {

// Parses strictly alternating "--flag value" pairs. Each malformed command
// line yields a descriptive InvalidArgument status instead of silently
// dropping tokens:
//   * a positional token where a --flag was expected,
//   * a trailing --flag with no value,
//   * a flag not in `allowed` (when a non-empty list is given),
//   * the same flag given twice.
class Args {
 public:
  static util::Result<Args> Parse(int argc, const char* const* argv,
                                  int first,
                                  const std::vector<std::string>& allowed) {
    Args out;
    for (int i = first; i < argc; i += 2) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) != 0 || token.size() <= 2) {
        return util::Status::InvalidArgument("expected --flag, got '" +
                                             token + "'");
      }
      const std::string key = token.substr(2);
      if (i + 1 >= argc) {
        return util::Status::InvalidArgument("flag --" + key +
                                             " is missing its value");
      }
      if (!allowed.empty() &&
          std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
        std::string msg = "unknown flag --" + key + " (expected one of:";
        for (const std::string& a : allowed) msg += " --" + a;
        msg += ")";
        return util::Status::InvalidArgument(msg);
      }
      if (!out.values_.emplace(key, argv[i + 1]).second) {
        return util::Status::InvalidArgument("flag --" + key +
                                             " given more than once");
      }
    }
    return out;
  }

  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::atoll(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values_.count(key) != 0; }
  util::Result<std::string> Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return util::Status::InvalidArgument("missing required flag --" + key);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace mbr::tools

#endif  // MBR_TOOLS_ARGS_H_
