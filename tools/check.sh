#!/usr/bin/env bash
# Repo-wide check runner:
#   1. tier-1: full build + full ctest suite       (build/)
#   2. ASan:   serde + net + dynamic + hotpath + coord + slo
#              + incremental                         (build-asan/)
#   3. TSan:   obs + service + net + dynamic + coord + slo
#              + incremental                         (build-tsan/)
#   4. UBSan:  core + landmark + service           (build-ubsan/)
#   5. bench-smoke: micro_benchmarks --smoke + ext_slo_ladder --smoke
#                   + ext_mutation_apply --smoke     (build/)
#
# The sanitizer passes reuse the persistent build-asan/, build-tsan/ and
# build-ubsan/ trees (configured here on first run) and only build/run the
# labeled suites they exist to harden: byte-level parsers under ASan, the
# metrics registry + concurrent engine + epoll server under TSan, the
# floating-point scoring kernels + landmark composition + serving arithmetic
# under UBSan. The `dynamic` label (mutation path, delta graph, landmark
# repair) runs under both ASan and TSan: ASan for the mutation wire parsing,
# TSan for mutators racing readers and the background repair thread. The
# `hotpath` label (arena/flat-map scratch reuse, scorer differential suite)
# runs under ASan so a buffer carved too small or a stale span surfaces as a
# hard error rather than a wrong score. The `coord` label (shard plan serde,
# router scatter-gather, reconnect backoff) runs under both ASan (wire and
# artifact parsing) and TSan (router accept/connection threads against the
# shard servers). The `slo` label (pressure monitor, degradation ladder)
# runs under both ASan (stale-cache retention and tier bookkeeping) and TSan
# (the lock-free PressureMonitor hammered from concurrent writers/readers).
# The `incremental` label (O(Δ) mutation pipeline: row-patched
# materialization, counter-snapshot authority, delta-aware rebind) runs
# under both ASan (spliced CSR rows, spans into previous generations) and
# TSan (the apply/rebind lock split against concurrent generation readers).
#
# bench-smoke runs the allocation-counting smoke gate of the zero-allocation
# hot path (DESIGN.md §6.6): a warm exact query and a warm landmark query
# must report 0 heap allocations, else the step fails. It then runs the SLO
# ladder harness (DESIGN.md §6.8) in --smoke form: a tiny ramp that still
# exercises calibration, the exact-tier byte-identity probes (a mismatch
# fails the binary), and the BENCH_slo.json writer.
#
# Usage: tools/check.sh [tier1|asan|tsan|ubsan|bench-smoke|all] (default: all)
set -e

REPO="$(cd "$(dirname "$0")/.." && pwd)"
MODE="${1:-all}"
JOBS="${JOBS:-$(nproc)}"

run_tier1() {
  echo "==> tier-1: full build + ctest"
  cmake -B "$REPO/build" -S "$REPO" >/dev/null
  cmake --build "$REPO/build" -j "$JOBS"
  (cd "$REPO/build" && ctest --output-on-failure -j "$JOBS")
}

run_sanitized() {  # $1=sanitizer $2=build-dir $3=label-regex
  echo "==> $1: suites matching -L '$3'"
  cmake -B "$2" -S "$REPO" -DMBR_SANITIZE="$1" >/dev/null
  cmake --build "$2" -j "$JOBS"
  (cd "$2" && ctest -L "$3" --output-on-failure -j "$JOBS")
}

run_bench_smoke() {
  echo "==> bench-smoke: micro_benchmarks --smoke (zero-allocation gate)"
  cmake -B "$REPO/build" -S "$REPO" >/dev/null
  cmake --build "$REPO/build" -j "$JOBS" --target micro_benchmarks
  "$REPO/build/bench/micro_benchmarks" --smoke
  echo "==> bench-smoke: ext_slo_ladder --smoke (degradation ladder gate)"
  cmake --build "$REPO/build" -j "$JOBS" --target ext_slo_ladder
  (cd "$REPO/build/bench" && ./ext_slo_ladder --smoke)
  echo "==> bench-smoke: ext_mutation_apply --smoke (O(Δ) apply pipeline)"
  cmake --build "$REPO/build" -j "$JOBS" --target ext_mutation_apply
  (cd "$REPO/build/bench" && ./ext_mutation_apply --smoke)
}

case "$MODE" in
  tier1) run_tier1 ;;
  asan)  run_sanitized address "$REPO/build-asan" 'serde|net|dynamic|hotpath|coord|slo|incremental' ;;
  tsan)  run_sanitized thread "$REPO/build-tsan" 'obs|service|net|dynamic|coord|slo|incremental' ;;
  ubsan) run_sanitized undefined "$REPO/build-ubsan" 'core|landmark|service' ;;
  bench-smoke) run_bench_smoke ;;
  all)
    run_tier1
    run_sanitized address "$REPO/build-asan" 'serde|net|dynamic|hotpath|coord|slo|incremental'
    run_sanitized thread "$REPO/build-tsan" 'obs|service|net|dynamic|coord|slo|incremental'
    run_sanitized undefined "$REPO/build-ubsan" 'core|landmark|service'
    run_bench_smoke
    ;;
  *)
    echo "usage: tools/check.sh [tier1|asan|tsan|ubsan|bench-smoke|all]" >&2
    exit 2
    ;;
esac
echo "==> check.sh: $MODE OK"
