#!/usr/bin/env bash
# Repo-wide check runner:
#   1. tier-1: full build + full ctest suite   (build/)
#   2. ASan:   serde + net + dynamic suites    (build-asan/)
#   3. TSan:   obs + service + net + dynamic   (build-tsan/)
#
# The sanitizer passes reuse the persistent build-asan/ and build-tsan/
# trees (configured here on first run) and only build/run the labeled
# suites they exist to harden: byte-level parsers under ASan, the
# metrics registry + concurrent engine + epoll server under TSan. The
# `dynamic` label (mutation path, delta graph, landmark repair) runs under
# both: ASan for the mutation wire parsing, TSan for mutators racing
# readers and the background repair thread.
#
# Usage: tools/check.sh [tier1|asan|tsan|all]   (default: all)
set -e

REPO="$(cd "$(dirname "$0")/.." && pwd)"
MODE="${1:-all}"
JOBS="${JOBS:-$(nproc)}"

run_tier1() {
  echo "==> tier-1: full build + ctest"
  cmake -B "$REPO/build" -S "$REPO" >/dev/null
  cmake --build "$REPO/build" -j "$JOBS"
  (cd "$REPO/build" && ctest --output-on-failure -j "$JOBS")
}

run_sanitized() {  # $1=sanitizer $2=build-dir $3=label-regex
  echo "==> $1: suites matching -L '$3'"
  cmake -B "$2" -S "$REPO" -DMBR_SANITIZE="$1" >/dev/null
  cmake --build "$2" -j "$JOBS"
  (cd "$2" && ctest -L "$3" --output-on-failure -j "$JOBS")
}

case "$MODE" in
  tier1) run_tier1 ;;
  asan)  run_sanitized address "$REPO/build-asan" 'serde|net|dynamic' ;;
  tsan)  run_sanitized thread "$REPO/build-tsan" 'obs|service|net|dynamic' ;;
  all)
    run_tier1
    run_sanitized address "$REPO/build-asan" 'serde|net|dynamic'
    run_sanitized thread "$REPO/build-tsan" 'obs|service|net|dynamic'
    ;;
  *) echo "usage: tools/check.sh [tier1|asan|tsan|all]" >&2; exit 2 ;;
esac
echo "==> check.sh: $MODE OK"
