// mbrec — command-line front end to the microblogrec library.
//
//   mbrec generate  --dataset twitter|dblp --nodes N [--seed S]
//                   --out graph.{bin|edges}
//   mbrec stats     --graph graph.{bin|edges} [--vocab twitter|dblp]
//   mbrec landmarks --graph graph.bin --count 100 [--strategy Follow]
//                   [--top-n 100] --out index.bin
//   mbrec recommend --graph graph.bin --user U --topic technology
//                   [--algo tr|katz|twitterrank] [--index index.bin]
//                   [--top 10] [--vocab twitter|dblp]
//   mbrec eval      --graph graph.bin [--tests 50] [--trials 1]
//                   [--vocab twitter|dblp]
//   mbrec partition --graph graph.bin [--parts 4]
//   mbrec analyze   --graph graph.bin
//   mbrec save-graph --graph graph.{bin|edges} --out snapshot.bin
//   mbrec load      --graph snapshot.bin [--index index.bin] [--user U]
//                   [--topic technology] [--top 10] [--vocab twitter|dblp]
//
// Binary graphs (.bin) round-trip exactly; .edges files use the
// human-readable labeled edge-list format. `save-graph` converts any
// readable graph into the versioned+checksummed snapshot format and `load`
// warm-starts a QueryEngine replica from a snapshot (plus an optional
// landmark index) and serves one query through it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "baselines/katz.h"
#include "baselines/twitterrank.h"
#include "core/recommender.h"
#include "datagen/dblp_generator.h"
#include "datagen/twitter_generator.h"
#include "eval/algorithms.h"
#include "eval/linkpred.h"
#include "graph/edgelist.h"
#include "graph/labeled_graph.h"
#include "graph/snapshot.h"
#include "service/warm_start.h"
#include "landmark/approx.h"
#include "landmark/index.h"
#include "distributed/partition.h"
#include "graph/analysis.h"
#include "landmark/selection.h"
#include "util/rng.h"
#include "topics/similarity_matrix.h"
#include "topics/vocabulary.h"
#include "util/table_printer.h"

namespace {

using namespace mbr;

// ---- Tiny --key value argument parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        std::exit(2);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
  }

  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::atoll(it->second.c_str());
  }
  std::string Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

const topics::Vocabulary& VocabFor(const std::string& name) {
  if (name == "dblp") return topics::DblpVocabulary();
  return topics::TwitterVocabulary();
}
const topics::SimilarityMatrix& SimFor(const std::string& name) {
  if (name == "dblp") return topics::DblpSimilarity();
  return topics::TwitterSimilarity();
}

graph::LabeledGraph LoadGraph(const std::string& path,
                              const topics::Vocabulary& vocab) {
  if (EndsWith(path, ".edges")) {
    auto r = graph::ReadEdgeList(path, vocab);
    if (!r.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                   r.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(*r);
  }
  auto r = graph::LabeledGraph::LoadFrom(path);
  if (!r.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*r);
}

int CmdGenerate(const Args& args) {
  std::string dataset = args.Get("dataset", "twitter");
  std::string out = args.Require("out");
  uint32_t nodes = static_cast<uint32_t>(args.GetInt("nodes", 20000));
  uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 0));

  graph::LabeledGraph g;
  const topics::Vocabulary* vocab;
  if (dataset == "dblp") {
    datagen::DblpConfig c;
    c.num_nodes = nodes;
    if (seed != 0) c.seed = seed;
    g = datagen::GenerateDblp(c).graph;
    vocab = &topics::DblpVocabulary();
  } else {
    datagen::TwitterConfig c;
    c.num_nodes = nodes;
    if (seed != 0) c.seed = seed;
    g = datagen::GenerateTwitter(c).graph;
    vocab = &topics::TwitterVocabulary();
  }

  util::Status st = EndsWith(out, ".edges")
                        ? graph::WriteEdgeList(g, *vocab, out)
                        : g.SaveTo(out);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u nodes, %llu edges (%s)\n", out.c_str(),
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              dataset.c_str());
  return 0;
}

int CmdStats(const Args& args) {
  const auto& vocab = VocabFor(args.Get("vocab", "twitter"));
  graph::LabeledGraph g = LoadGraph(args.Require("graph"), vocab);
  graph::DegreeStatistics s = ComputeDegreeStatistics(g);
  util::TablePrinter tp({"property", "value"});
  tp.AddRow({"nodes", util::TablePrinter::Int(s.num_nodes)});
  tp.AddRow({"edges", util::TablePrinter::Int(s.num_edges)});
  tp.AddRow({"avg out-degree", util::TablePrinter::Num(s.avg_out_degree, 1)});
  tp.AddRow({"avg in-degree", util::TablePrinter::Num(s.avg_in_degree, 1)});
  tp.AddRow({"max in-degree", util::TablePrinter::Int(s.max_in_degree)});
  tp.AddRow({"max out-degree", util::TablePrinter::Int(s.max_out_degree)});
  tp.Print("graph statistics");

  std::vector<uint64_t> per_topic(g.num_topics(), 0);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (topics::TopicSet lab : g.OutEdgeLabels(u)) {
      for (topics::TopicId t : lab) ++per_topic[t];
    }
  }
  util::TablePrinter topics_tp({"topic", "#edge labels"});
  for (int t = 0; t < g.num_topics(); ++t) {
    topics_tp.AddRow({vocab.Name(static_cast<topics::TopicId>(t)),
                      util::TablePrinter::Int(
                          static_cast<int64_t>(per_topic[t]))});
  }
  topics_tp.Print("edges per topic");
  return 0;
}

int CmdLandmarks(const Args& args) {
  const auto& vocab = VocabFor(args.Get("vocab", "twitter"));
  const auto& sim = SimFor(args.Get("vocab", "twitter"));
  graph::LabeledGraph g = LoadGraph(args.Require("graph"), vocab);
  std::string out = args.Require("out");

  landmark::SelectionStrategy strategy = landmark::SelectionStrategy::kFollow;
  std::string name = args.Get("strategy", "Follow");
  bool found = false;
  for (auto s : landmark::AllStrategies()) {
    if (name == landmark::StrategyName(s)) {
      strategy = s;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown strategy '%s'\n", name.c_str());
    return 2;
  }

  core::AuthorityIndex auth(g);
  landmark::SelectionConfig scfg;
  scfg.num_landmarks = static_cast<uint32_t>(args.GetInt("count", 100));
  landmark::SelectionResult sel = SelectLandmarks(g, strategy, scfg);
  landmark::LandmarkIndexConfig icfg;
  icfg.top_n = static_cast<uint32_t>(args.GetInt("top-n", 100));
  landmark::LandmarkIndex index(g, auth, sim, sel.landmarks, icfg);
  util::Status st = index.SaveTo(out);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s: %zu landmarks (%s), top-%u per topic, %.1f KB, built in "
      "%.2f s\n",
      out.c_str(), index.landmarks().size(), name.c_str(),
      index.config().top_n, index.StorageBytes() / 1024.0,
      index.build_seconds_total());
  return 0;
}

int CmdRecommend(const Args& args) {
  std::string vocab_name = args.Get("vocab", "twitter");
  const auto& vocab = VocabFor(vocab_name);
  const auto& sim = SimFor(vocab_name);
  graph::LabeledGraph g = LoadGraph(args.Require("graph"), vocab);
  graph::NodeId user = static_cast<graph::NodeId>(args.GetInt("user", 0));
  if (user >= g.num_nodes()) {
    std::fprintf(stderr, "user %u out of range\n", user);
    return 2;
  }
  topics::TopicId topic = vocab.Id(args.Require("topic"));
  if (topic == topics::kInvalidTopic) {
    std::fprintf(stderr, "unknown topic '%s'\n",
                 args.Require("topic").c_str());
    return 2;
  }
  size_t top = static_cast<size_t>(args.GetInt("top", 10));
  std::string algo = args.Get("algo", "tr");

  std::unique_ptr<core::Recommender> rec;
  std::unique_ptr<core::AuthorityIndex> auth;
  std::unique_ptr<landmark::LandmarkIndex> index;
  if (!args.Get("index").empty()) {
    auth = std::make_unique<core::AuthorityIndex>(g);
    auto loaded =
        landmark::LandmarkIndex::LoadFrom(args.Get("index"), g.num_nodes());
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot read index: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    index = std::make_unique<landmark::LandmarkIndex>(std::move(*loaded));
    rec = std::make_unique<landmark::ApproxRecommender>(
        g, *auth, sim, *index, landmark::ApproxConfig{});
  } else if (algo == "katz") {
    rec = std::make_unique<baselines::KatzRecommender>(g, sim,
                                                       core::ScoreParams{});
  } else if (algo == "twitterrank") {
    rec = std::make_unique<baselines::TwitterRank>(g);
  } else {
    rec = std::make_unique<core::TrRecommender>(g, sim);
  }

  auto results = rec->RecommendTopN(user, topic, top);
  std::printf("%s recommendations for user %u on '%s':\n",
              rec->name().c_str(), user, vocab.Name(topic).c_str());
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("  %2zu. user %-8u score %.4e  (followers: %u)\n", i + 1,
                results[i].id, results[i].score,
                g.InDegree(results[i].id));
  }
  if (results.empty()) std::printf("  (no reachable candidates)\n");
  return 0;
}

int CmdPartition(const Args& args) {
  const auto& vocab = VocabFor(args.Get("vocab", "twitter"));
  graph::LabeledGraph g = LoadGraph(args.Require("graph"), vocab);
  uint32_t parts = static_cast<uint32_t>(args.GetInt("parts", 4));
  util::TablePrinter tp({"strategy", "edge cut", "balance"});
  for (auto strategy : {distributed::PartitionStrategy::kHash,
                        distributed::PartitionStrategy::kBfsChunks,
                        distributed::PartitionStrategy::kCommunity,
                        distributed::PartitionStrategy::kCommunityPopularity}) {
    distributed::PartitionConfig pcfg;
    pcfg.num_partitions = parts;
    auto p = PartitionGraph(g, strategy, pcfg);
    tp.AddRow({distributed::PartitionStrategyName(strategy),
               util::TablePrinter::Num(p.edge_cut, 3),
               util::TablePrinter::Num(p.balance, 2)});
  }
  char title[64];
  std::snprintf(title, sizeof(title), "partitioners (%u workers)", parts);
  tp.Print(title);
  return 0;
}

int CmdAnalyze(const Args& args) {
  const auto& vocab = VocabFor(args.Get("vocab", "twitter"));
  graph::LabeledGraph g = LoadGraph(args.Require("graph"), vocab);
  util::Rng rng(static_cast<uint64_t>(args.GetInt("seed", 7)));
  util::TablePrinter tp({"metric", "value"});
  tp.AddRow({"reciprocity",
             util::TablePrinter::Num(Reciprocity(g), 3)});
  tp.AddRow({"clustering coefficient (sampled)",
             util::TablePrinter::Num(
                 EstimateClusteringCoefficient(g, 300, &rng), 3)});
  uint32_t components = 0;
  WeaklyConnectedComponents(g, &components);
  tp.AddRow({"weak components", util::TablePrinter::Int(components)});
  tp.AddRow({"largest component",
             util::TablePrinter::Int(
                 static_cast<int64_t>(LargestComponentSize(g)))});
  tp.AddRow({"in-degree power-law slope",
             util::TablePrinter::Num(
                 graph::EstimatePowerLawExponent(
                     graph::InDegreeHistogram(g)),
                 2)});
  tp.Print("structure");
  return 0;
}

int CmdSaveGraph(const Args& args) {
  const auto& vocab = VocabFor(args.Get("vocab", "twitter"));
  graph::LabeledGraph g = LoadGraph(args.Require("graph"), vocab);
  std::string out = args.Require("out");
  util::Status st = graph::Snapshot::Save(g, out);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote snapshot %s: %u nodes, %llu edges, format v%u (CRC32 per "
      "section)\n",
      out.c_str(), g.num_nodes(),
      static_cast<unsigned long long>(g.num_edges()),
      graph::Snapshot::kFormatVersion);
  return 0;
}

int CmdLoad(const Args& args) {
  std::string vocab_name = args.Get("vocab", "twitter");
  const auto& vocab = VocabFor(vocab_name);
  const auto& sim = SimFor(vocab_name);

  service::EngineConfig cfg;
  cfg.cache_capacity = 4096;
  auto replica = service::WarmStart(args.Require("graph"),
                                    args.Get("index"), sim, cfg);
  if (!replica.ok()) {
    std::fprintf(stderr, "warm start failed: %s\n",
                 replica.status().ToString().c_str());
    return 1;
  }
  service::ServingReplica& rep = **replica;
  std::printf("warm-started replica: %u nodes, %llu edges, %s scoring, %u "
              "workers\n",
              rep.graph.num_nodes(),
              static_cast<unsigned long long>(rep.graph.num_edges()),
              rep.landmarks != nullptr ? "landmark-approximate" : "exact",
              rep.engine->num_workers());

  graph::NodeId user = static_cast<graph::NodeId>(args.GetInt("user", 0));
  if (user >= rep.graph.num_nodes()) {
    std::fprintf(stderr, "user %u out of range\n", user);
    return 2;
  }
  std::string topic_name = args.Get("topic", "technology");
  topics::TopicId topic = vocab.Id(topic_name);
  if (topic == topics::kInvalidTopic ||
      topic >= rep.graph.num_topics()) {
    std::fprintf(stderr, "unknown topic '%s'\n", topic_name.c_str());
    return 2;
  }
  uint32_t top = static_cast<uint32_t>(args.GetInt("top", 10));

  auto results = rep.engine->Recommend(user, topic, top);
  std::printf("recommendations for user %u on '%s':\n", user,
              topic_name.c_str());
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("  %2zu. user %-8u score %.4e\n", i + 1, results[i].id,
                results[i].score);
  }
  if (results.empty()) std::printf("  (no reachable candidates)\n");
  service::EngineStats stats = rep.engine->Stats();
  std::printf("served %llu queries, p50 latency >= %.0f us\n",
              static_cast<unsigned long long>(stats.queries),
              stats.LatencyPercentileMicros(0.5));
  return 0;
}

int CmdEval(const Args& args) {
  std::string vocab_name = args.Get("vocab", "twitter");
  const auto& vocab = VocabFor(vocab_name);
  const auto& sim = SimFor(vocab_name);
  graph::LabeledGraph g = LoadGraph(args.Require("graph"), vocab);

  core::ScoreParams params;
  auto algos = eval::StandardAlgorithms(sim, params, false);
  eval::LinkPredConfig cfg;
  cfg.test_edges = static_cast<uint32_t>(args.GetInt("tests", 50));
  cfg.trials = static_cast<uint32_t>(args.GetInt("trials", 1));
  auto curves = RunLinkPrediction(g, algos, cfg);
  util::TablePrinter tp({"algorithm", "recall@1", "recall@10", "MRR"});
  for (const auto& c : curves) {
    tp.AddRow({c.name, util::TablePrinter::Num(c.recall_at[0], 3),
               util::TablePrinter::Num(c.recall_at[9], 3),
               util::TablePrinter::Num(c.mrr, 3)});
  }
  tp.Print("link prediction");
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: mbrec <generate|stats|landmarks|recommend|eval|partition|analyze|"
               "save-graph|load> "
               "[--flag value ...]\n(see the header of tools/mbrec.cc)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string cmd = argv[1];
  Args args(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "landmarks") return CmdLandmarks(args);
  if (cmd == "recommend") return CmdRecommend(args);
  if (cmd == "eval") return CmdEval(args);
  if (cmd == "partition") return CmdPartition(args);
  if (cmd == "analyze") return CmdAnalyze(args);
  if (cmd == "save-graph") return CmdSaveGraph(args);
  if (cmd == "load") return CmdLoad(args);
  Usage();
  return 2;
}
